module github.com/plcwifi/wolt

go 1.22
