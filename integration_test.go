package wolt_test

import (
	"math"
	"testing"
	"time"

	wolt "github.com/plcwifi/wolt"
	"github.com/plcwifi/wolt/internal/experiments"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/topology"
)

// TestEndToEndPipeline drives the complete system the way a deployment
// would: generate a physical topology, derive the association inputs
// through the radio model, associate every user through the real TCP
// control plane, realize the result as shaped TCP flows on the emulated
// testbed, and check the measurement against the analytic model.
func TestEndToEndPipeline(t *testing.T) {
	scen := experiments.NewTestbedScenario(4242)
	topo, err := topology.Generate(scen.Topology)
	if err != nil {
		t.Fatal(err)
	}
	inst := netsim.Build(topo, scen.Radio)

	// 1. Control plane: controller + one agent per user over loopback.
	server, err := wolt.NewController("127.0.0.1:0", wolt.ControllerConfig{
		PLCCaps: inst.Net.PLCCaps,
		Policy:  wolt.ControllerWOLT,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = server.Close() }()

	agents := make([]*wolt.Agent, len(inst.UserIDs))
	for i, id := range inst.UserIDs {
		agent, err := wolt.DialAgent(server.Addr(), id)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = agent.Close() }()
		agents[i] = agent
		if _, err := agent.Join(inst.Net.WiFiRates[i], inst.RSSI[i], 5*time.Second); err != nil {
			t.Fatalf("user %d join: %v", id, err)
		}
	}
	// Let trailing re-association directives land.
	time.Sleep(50 * time.Millisecond)

	stats := server.StatsSnapshot()
	if stats.Users != len(inst.UserIDs) {
		t.Fatalf("controller tracks %d users, want %d", stats.Users, len(inst.UserIDs))
	}

	// 2. The controller's association must equal the library's direct
	// WOLT answer on the same inputs.
	direct, err := wolt.Assign(inst.Net, wolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	assign := make(wolt.Assignment, len(inst.UserIDs))
	for i, id := range inst.UserIDs {
		ext, ok := stats.Assignment[id]
		if !ok {
			t.Fatalf("user %d missing from controller", id)
		}
		assign[i] = ext
	}
	evalOpts := wolt.EvalOptions{Redistribute: true}
	directAgg, err := wolt.Evaluate(inst.Net, direct.Assign, evalOpts)
	if err != nil {
		t.Fatal(err)
	}
	controlAgg, err := wolt.Evaluate(inst.Net, assign, evalOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The controller recomputes per join over user subsets, so the exact
	// assignment may differ from the one-shot answer, but the aggregate
	// quality must match closely.
	if controlAgg.Aggregate < 0.95*directAgg.Aggregate {
		t.Errorf("control-plane aggregate %v well below direct %v",
			controlAgg.Aggregate, directAgg.Aggregate)
	}

	// 3. Realize the association with real shaped TCP flows and compare
	// measurement against the model.
	run, err := wolt.RunTestbed(wolt.TestbedConfig{
		Net:      inst.Net,
		Assign:   assign,
		Opts:     evalOpts,
		Duration: 400 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if rel := math.Abs(run.AggregateMbps-run.ModelAggregateMbps) / run.ModelAggregateMbps; rel > 0.25 {
		t.Errorf("measured %v vs model %v: %.0f%% apart",
			run.AggregateMbps, run.ModelAggregateMbps, rel*100)
	}
}

// TestChurnThenIncrementalReassociation chains the dynamic simulator
// with the incremental re-association extension: after an epoch of
// churn, a small move budget recovers most of the full-recompute gain.
func TestChurnThenIncrementalReassociation(t *testing.T) {
	scen := experiments.NewEnterpriseScenario(6, 18, 99)
	topo, err := topology.Generate(scen.Topology)
	if err != nil {
		t.Fatal(err)
	}
	inst := netsim.Build(topo, scen.Radio)
	evalOpts := wolt.EvalOptions{Redistribute: true}

	// Start from the commodity default: strongest signal.
	prev := make(wolt.Assignment, inst.Net.NumUsers())
	for i := range prev {
		best, bestSig := 0, inst.RSSI[i][0]
		for j, sig := range inst.RSSI[i] {
			if sig > bestSig {
				best, bestSig = j, sig
			}
		}
		prev[i] = best
	}
	prevAgg, err := wolt.Evaluate(inst.Net, prev, evalOpts)
	if err != nil {
		t.Fatal(err)
	}

	res, err := wolt.AssignIncremental(inst.Net, prev, 3, wolt.Options{}, evalOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) > 3 {
		t.Fatalf("budget exceeded: %d moves", len(res.Moves))
	}
	if res.AchievedAggregate < prevAgg.Aggregate-1e-9 {
		t.Errorf("incremental run decreased aggregate: %v -> %v",
			prevAgg.Aggregate, res.AchievedAggregate)
	}
	if res.TargetAggregate > prevAgg.Aggregate {
		// When full WOLT improves on RSSI, three moves should recover a
		// majority of that gap on this instance.
		recovered := (res.AchievedAggregate - prevAgg.Aggregate) /
			(res.TargetAggregate - prevAgg.Aggregate)
		if recovered < 0.5 {
			t.Errorf("3 moves recovered only %.0f%% of the gap", recovered*100)
		}
	}
}
