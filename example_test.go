package wolt_test

import (
	"fmt"

	wolt "github.com/plcwifi/wolt"
)

// The paper's Fig 3 case study: two extenders with PLC isolation
// capacities 60 and 20 Mbps, two users. WOLT finds the optimal
// association (40 Mbps), which strongest-signal association misses by
// almost 2×.
func ExampleAssign() {
	network := &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10}, // user 0's PHY rates to extenders 0 and 1
			{40, 20}, // user 1
		},
		PLCCaps: []float64{60, 20},
	}
	res, err := wolt.Assign(network, wolt.Options{})
	if err != nil {
		fmt.Println(err)
		return
	}
	eval, err := wolt.Evaluate(network, res.Assign, wolt.EvalOptions{Redistribute: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("assignment: %v\n", res.Assign)
	fmt.Printf("aggregate: %.0f Mbps\n", eval.Aggregate)
	// Output:
	// assignment: [1 0]
	// aggregate: 40 Mbps
}

// Evaluating the commodity default — both users on the strongest-signal
// extender — shows the WiFi cell become the bottleneck at ~22 Mbps.
func ExampleEvaluate() {
	network := &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
	eval, err := wolt.Evaluate(network, wolt.Assignment{0, 0}, wolt.EvalOptions{Redistribute: true})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("aggregate: %.1f Mbps\n", eval.Aggregate)
	fmt.Printf("per user: %.1f / %.1f Mbps\n", eval.PerUser[0], eval.PerUser[1])
	// Output:
	// aggregate: 21.8 Mbps
	// per user: 10.9 / 10.9 Mbps
}

// A guaranteed-rate user is admitted onto a TDMA reservation; the
// best-effort user rides WOLT over the remaining CSMA period.
func ExampleBuildQoSPlan() {
	network := &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
	plan, err := wolt.BuildQoSPlan(wolt.QoSConfig{
		Net:      network,
		Priority: []wolt.QoSDemand{{User: 1, Mbps: 20}},
		Eval:     wolt.EvalOptions{Redistribute: true},
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("user 1 guaranteed: %.0f Mbps on extender %d\n", plan.Guaranteed[1], plan.Assign[1])
	fmt.Printf("reserved medium time: %.0f%%\n", plan.TotalReserved*100)
	// Output:
	// user 1 guaranteed: 20 Mbps on extender 0
	// reserved medium time: 33%
}

// Comparing the paper's three association policies on Fig 3.
func ExampleAssignGreedy() {
	network := &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
	opts := wolt.EvalOptions{Redistribute: true}
	greedy, err := wolt.AssignGreedy(network, nil, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	eval, err := wolt.Evaluate(network, greedy, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("greedy: %v at %.0f Mbps\n", greedy, eval.Aggregate)
	// Output:
	// greedy: [0 1] at 30 Mbps
}

// An incremental re-association recovers the optimal configuration from
// the commodity default with a single move.
func ExampleAssignIncremental() {
	network := &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
	opts := wolt.EvalOptions{Redistribute: true}
	// Both users currently sit on extender 0 (strongest signal).
	res, err := wolt.AssignIncremental(network, wolt.Assignment{0, 0}, 1, wolt.Options{}, opts)
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Printf("moves: %d, achieved %.1f of target %.1f Mbps\n",
		len(res.Moves), res.AchievedAggregate, res.TargetAggregate)
	// Output:
	// moves: 1, achieved 40.0 of target 40.0 Mbps
}
