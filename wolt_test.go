package wolt_test

import (
	"math"
	"math/rand"
	"testing"
	"time"

	wolt "github.com/plcwifi/wolt"
)

// fig3 is the paper's case-study network.
func fig3() *wolt.Network {
	return &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
}

var redistribute = wolt.EvalOptions{Redistribute: true}

func TestFacadeAssignAndEvaluate(t *testing.T) {
	res, err := wolt.Assign(fig3(), wolt.Options{})
	if err != nil {
		t.Fatal(err)
	}
	eval, err := wolt.Evaluate(fig3(), res.Assign, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eval.Aggregate-40) > 1e-9 {
		t.Errorf("WOLT aggregate = %v, want 40", eval.Aggregate)
	}
}

func TestFacadeBaselines(t *testing.T) {
	n := fig3()
	greedy, err := wolt.AssignGreedy(n, nil, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	selfish, err := wolt.AssignSelfish(n, nil, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	rssi, err := wolt.AssignRSSI(n, [][]float64{{-50, -60}, {-50, -60}})
	if err != nil {
		t.Fatal(err)
	}
	optimal, agg, err := wolt.AssignOptimal(n, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	random, err := wolt.AssignRandom(n, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if agg != 40 || optimal[0] != 1 {
		t.Errorf("optimal = %v (%v Mbps)", optimal, agg)
	}
	for name, a := range map[string]wolt.Assignment{
		"greedy": greedy, "selfish": selfish, "rssi": rssi, "random": random,
	} {
		if a.NumAssigned() != 2 {
			t.Errorf("%s left users unassigned: %v", name, a)
		}
	}
}

func TestFacadeSimulation(t *testing.T) {
	cfg := wolt.StaticConfig{
		Topology: wolt.TopologyConfig{NumExtenders: 3, NumUsers: 9, Seed: 5},
		Trials:   2,
	}
	cfg.ModelOpts = redistribute
	results, err := wolt.RunStatic(cfg, []wolt.Policy{wolt.WOLTPolicy{}, wolt.RSSIPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || len(results[0].Trials) != 2 {
		t.Fatalf("unexpected result shape: %+v", results)
	}
}

func TestFacadeTopologyAndInstance(t *testing.T) {
	topo, err := wolt.GenerateTopology(wolt.TopologyConfig{NumExtenders: 2, NumUsers: 4, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	inst := wolt.BuildInstance(topo, wolt.DefaultRadioModel())
	if inst.Net.NumUsers() != 4 || inst.Net.NumExtenders() != 2 {
		t.Fatalf("instance shape %dx%d", inst.Net.NumUsers(), inst.Net.NumExtenders())
	}
}

func TestFacadeControlPlane(t *testing.T) {
	cc, err := wolt.NewController("127.0.0.1:0", wolt.ControllerConfig{
		PLCCaps: []float64{60, 20},
		Policy:  wolt.ControllerWOLT,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cc.Close() }()
	agent, err := wolt.DialAgent(cc.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = agent.Close() }()
	ext, err := agent.Join([]float64{15, 10}, nil, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if ext != 0 {
		t.Errorf("lone user on %d, want 0", ext)
	}
}

func TestFacadeTestbed(t *testing.T) {
	res, err := wolt.RunTestbed(wolt.TestbedConfig{
		Net:      fig3(),
		Assign:   wolt.Assignment{1, 0},
		Opts:     redistribute,
		Duration: 120 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.ModelAggregateMbps != 40 {
		t.Errorf("model aggregate = %v, want 40", res.ModelAggregateMbps)
	}
	if res.AggregateMbps <= 0 {
		t.Errorf("measured aggregate = %v", res.AggregateMbps)
	}
}

func TestFacadeQoS(t *testing.T) {
	plan, err := wolt.BuildQoSPlan(wolt.QoSConfig{
		Net:      fig3(),
		Priority: []wolt.QoSDemand{{User: 1, Mbps: 20}},
		Eval:     redistribute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Guaranteed[1] != 20 {
		t.Errorf("guaranteed = %v, want 20", plan.Guaranteed[1])
	}
	if plan.AggregateMbps() <= 20 {
		t.Errorf("aggregate %v should exceed the lone guarantee", plan.AggregateMbps())
	}
}

func TestFacadeMobility(t *testing.T) {
	topo, err := wolt.GenerateTopology(wolt.TopologyConfig{NumExtenders: 2, NumUsers: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	fleet, err := wolt.NewFleet(topo, wolt.DefaultMobilityConfig())
	if err != nil {
		t.Fatal(err)
	}
	before := topo.Users[0].Pos
	if err := fleet.Advance(30); err != nil {
		t.Fatal(err)
	}
	if topo.Users[0].Pos == before {
		t.Error("user did not move")
	}
}
