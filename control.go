package wolt

import (
	"time"

	"github.com/plcwifi/wolt/internal/control"
	"github.com/plcwifi/wolt/internal/emu"
	"github.com/plcwifi/wolt/internal/qos"
)

// Control-plane types (the distributed WOLT system: a central controller
// and per-user agents speaking JSON over TCP).
type (
	// Controller is the WOLT Central Controller.
	Controller = control.Server
	// ControllerConfig configures a controller.
	ControllerConfig = control.ServerConfig
	// Agent is a user-side client of the controller.
	Agent = control.Agent
	// ControllerStats is a controller snapshot.
	ControllerStats = control.Stats
	// ControllerPolicy selects the controller's association policy.
	ControllerPolicy = control.PolicyKind
)

// Controller policies.
const (
	// ControllerWOLT runs the two-phase algorithm and re-associates
	// existing users when beneficial.
	ControllerWOLT = control.PolicyWOLT
	// ControllerGreedy places each arrival greedily and never moves
	// anyone.
	ControllerGreedy = control.PolicyGreedy
	// ControllerRSSI assigns by strongest reported signal.
	ControllerRSSI = control.PolicyRSSI
)

// NewController starts a central controller listening on addr.
func NewController(addr string, cfg ControllerConfig) (*Controller, error) {
	return control.NewServer(addr, cfg)
}

// DialAgent connects a user agent to the controller at addr.
func DialAgent(addr string, userID int) (*Agent, error) {
	return control.Dial(addr, userID)
}

// Emulated-testbed types (real shaped TCP flows over loopback).
type (
	// TestbedConfig describes one emulated-testbed run.
	TestbedConfig = emu.Config
	// TestbedResult is a measured run.
	TestbedResult = emu.Result
	// FlowResult is one user's measured throughput.
	FlowResult = emu.FlowResult
)

// RunTestbed realizes an association as real shaped TCP flows and
// measures per-user and aggregate goodput.
func RunTestbed(cfg TestbedConfig) (*TestbedResult, error) {
	return emu.Run(cfg)
}

// MeasureCapacity performs the offline iperf-style PLC capacity
// estimation on the emulated testbed.
func MeasureCapacity(capacityMbps float64, duration time.Duration) (float64, error) {
	return emu.MeasureCapacity(capacityMbps, duration)
}

// QoS types (the IEEE 1901 TDMA guaranteed-slot extension).
type (
	// QoSDemand is one priority user's guaranteed-rate requirement.
	QoSDemand = qos.Demand
	// QoSConfig parameterizes QoS-aware planning.
	QoSConfig = qos.Config
	// QoSPlan is a complete QoS-aware association with reservations.
	QoSPlan = qos.Plan
)

// ErrQoSInfeasible is returned when priority demands cannot be
// guaranteed within the TDMA budget.
var ErrQoSInfeasible = qos.ErrInfeasible

// BuildQoSPlan admits priority users onto TDMA reservations (largest
// demand first), then associates best-effort users with WOLT over the
// remaining CSMA period.
func BuildQoSPlan(cfg QoSConfig) (*QoSPlan, error) {
	return qos.Build(cfg)
}
