#!/bin/sh
# Benchmarks the event-driven city harness on the sharded control plane
# and records BENCH_city.json at the repo root:
#
#   BenchmarkCitySmoke     — CI-sized run (8 shards, ~4k users, roaming)
#   BenchmarkCitySustained — acceptance-scale run: 32 shards, 10^5 users
#       sustained under diurnal arrivals and roaming; one iteration
#       drives several hundred thousand plane operations
#   BenchmarkCitySustained1M — north-star run: 256 shards, 10^6 users
#       sustained on the lock-striped coordinator with placement-only
#       warm joins, 4 dispatch lanes and fixed-memory latency sketches;
#       over a million plane operations, takes minutes (WOLT_CITY_1M
#       gates it inside the test binary)
#   BenchmarkEngineChurnEvent — the per-event engine path (leave + join
#       + 2 updates on a 400-user shard); its allocs/op pins the O(1)
#       steady-state allocation discipline of the pooled user table
#
# Each city row reports joins/sec (sustained join throughput), p50_us /
# p99_us (directive latency percentiles), handoff_rate (cross-shard
# handoffs per roam update) and users_peak (population actually
# sustained). Acceptance: the sustained row must show users_peak >= 1e5
# and the 1M row users_peak >= 1e6.
# Usage: scripts/bench-city.sh [count]   (count applies to the smoke and
# engine rows; the sustained runs always execute once)
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_city.json"
cores="$(go env GONUMCPU 2>/dev/null || true)"
[ -n "$cores" ] || cores="$(getconf _NPROCESSORS_ONLN)"

go test -run '^$' -bench 'CitySmoke' -count "$count" \
	./internal/city | tee /tmp/bench_city.txt
go test -run '^$' -bench 'CitySustained$' -benchtime 1x -count 1 \
	./internal/city | tee -a /tmp/bench_city.txt
WOLT_CITY_1M=1 go test -run '^$' -bench 'CitySustained1M' -benchtime 1x -count 1 \
	-timeout 2h ./internal/city | tee -a /tmp/bench_city.txt
go test -run '^$' -bench 'EngineChurnEvent' -benchmem -count "$count" \
	./internal/control | tee -a /tmp/bench_city.txt

awk -v cores="$cores" '
BEGIN { printf "{\n  \"cores\": %s,\n  \"runs\": [\n", cores }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	jps = "null"; p50 = "null"; p99 = "null"; hr = "null"
	peak = "null"; ev = "null"; bpo = "null"; apo = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "joins/sec") jps = $(i - 1)
		if ($(i) == "p50_us") p50 = $(i - 1)
		if ($(i) == "p99_us") p99 = $(i - 1)
		if ($(i) == "handoff_rate") hr = $(i - 1)
		if ($(i) == "users_peak") peak = $(i - 1)
		if ($(i) == "events") ev = $(i - 1)
		if ($(i) == "B/op") bpo = $(i - 1)
		if ($(i) == "allocs/op") apo = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"joins_per_sec\": %s, \"p50_us\": %s, \"p99_us\": %s, \"handoff_rate\": %s, \"users_peak\": %s, \"events\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, jps, p50, p99, hr, peak, ev, bpo, apo
}
END { print "\n  ]\n}" }
' /tmp/bench_city.txt > "$out"

echo "wrote $out"
