#!/bin/sh
# Benchmarks the parallel evaluation engine (sweep + static trial
# fan-out) and records the runs as JSON in BENCH_sweep.json at the repo
# root. Usage: scripts/bench.sh [count]
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_sweep.json"

go test -run '^$' -bench 'Sweep|Static' -benchmem -count "$count" \
	./internal/sweep ./internal/netsim | tee /tmp/bench_sweep.txt

awk '
BEGIN { print "[" }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3; bpo = "null"; apo = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op") bpo = $(i - 1)
		if ($(i) == "allocs/op") apo = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, bpo, apo
}
END { print "\n]" }
' /tmp/bench_sweep.txt > "$out"

echo "wrote $out"
