#!/bin/sh
# Benchmarks the sharded control plane and records BENCH_shard.json at
# the repo root: per-join latency of the coordinator at 1/2/4 shards
# (from the Go benchmark's ns/join metric) plus the aggregate-throughput
# gap each shard count pays vs the single global WOLT solve (from a
# small deterministic run of the woltsim "shard" experiment — the gap is
# bit-identical for any worker count, so this is stable across machines;
# only the latencies are wall-clock).
# Usage: scripts/bench-shard.sh [count]
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_shard.json"
cores="$(go env GONUMCPU 2>/dev/null || true)"
[ -n "$cores" ] || cores="$(getconf _NPROCESSORS_ONLN)"

go test -run '^$' -bench CoordinatorJoin -count "$count" \
	./internal/shard | tee /tmp/bench_shard.txt

csvdir="$(mktemp -d)"
trap 'rm -rf "$csvdir"' EXIT
go run ./cmd/woltsim -csv "$csvdir" -trials 2 -users 18 -extenders 8 shard \
	> /tmp/bench_shard_exp.txt
csv="$(find "$csvdir" -name '*.csv' | head -n 1)"

awk -v cores="$cores" -v csv="$csv" '
BEGIN {
	printf "{\n  \"cores\": %s,\n  \"joins\": [\n", cores
	# Gap per shard count at the largest user population (last row wins
	# per K as the CSV is ordered by ascending users).
	FS = ","
	while ((getline line < csv) > 0) {
		nf = split(line, f, ",")
		if (f[1] == "users" || nf < 5) continue
		gap[f[2]] = f[5]
	}
	FS = " "
}
/^Benchmark/ {
	name = $1; iters = $2
	ns = "null"; join = "null"
	for (i = 3; i <= NF; i++) {
		if ($(i) == "ns/op") ns = $(i - 1)
		if ($(i) == "ns/join") join = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"ns_per_join\": %s}", \
		name, iters, ns, join
}
END {
	printf "\n  ],\n  \"gap_pct\": {"
	m = 0
	for (k = 1; k <= 4; k++) {
		if (k in gap) {
			if (m++) printf ", "
			printf "\"%s\": %s", k, gap[k]
		}
	}
	print "}\n}"
}
' /tmp/bench_shard.txt > "$out"

echo "wrote $out"
