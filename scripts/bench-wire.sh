#!/bin/sh
# Benchmarks the binary wire codec and the TCP-plane city harness and
# records BENCH_wire.json at the repo root:
#
#   BenchmarkWireEncodeDecode — one full-message encode+decode round
#       trip through the length-prefixed binary framing into pooled
#       buffers; allocs/op MUST be 0 (the codec's whole point)
#   BenchmarkJSONEncodeDecode — the same round trip through the legacy
#       newline-delimited JSON framing (the baseline the codec replaces)
#   BenchmarkCityTCPSmoke     — CI-sized city run over real sockets
#       (2 shard members in-process, ~300 users, binary codec)
#   BenchmarkCityTCP10K       — acceptance-scale run: 8 shard members in
#       separate processes (the 20k-fd limit rules out one process at
#       this scale), 10^4 sustained users joining/roaming/leaving over
#       TCP with the binary codec (WOLT_CITY_TCP gates it in-binary)
#   BenchmarkCityTCP10KJSON   — the same run on the JSON codec; the
#       price of the old framing under identical churn
#
# City rows report joins/sec, p50_us/p99_us (join directive latency),
# users_peak, dropped_pushes and redirects. Acceptance: the wire round
# trip is 0 allocs/op, both 10K rows sustain users_peak >= 1e4, and the
# binary row beats the JSON row on joins/sec and p99_us.
# Usage: scripts/bench-wire.sh [count]   (count applies to the codec and
# smoke rows; the 10K runs always execute once)
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_wire.json"
cores="$(go env GONUMCPU 2>/dev/null || true)"
[ -n "$cores" ] || cores="$(getconf _NPROCESSORS_ONLN)"

go test -run '^$' -bench 'EncodeDecode' -benchmem -count "$count" \
	./internal/wire | tee /tmp/bench_wire.txt
go test -run '^$' -bench 'CityTCPSmoke' -count "$count" \
	./internal/city | tee -a /tmp/bench_wire.txt
WOLT_CITY_TCP=1 go test -run '^$' -bench 'CityTCP10K' -benchtime 1x -count 1 \
	-timeout 1h ./internal/city | tee -a /tmp/bench_wire.txt

awk -v cores="$cores" '
BEGIN { printf "{\n  \"cores\": %s,\n  \"runs\": [\n", cores }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	jps = "null"; p50 = "null"; p99 = "null"; peak = "null"
	ev = "null"; dir = "null"; drop = "null"; red = "null"
	bpo = "null"; apo = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "joins/sec") jps = $(i - 1)
		if ($(i) == "p50_us") p50 = $(i - 1)
		if ($(i) == "p99_us") p99 = $(i - 1)
		if ($(i) == "users_peak") peak = $(i - 1)
		if ($(i) == "events") ev = $(i - 1)
		if ($(i) == "directives") dir = $(i - 1)
		if ($(i) == "dropped_pushes") drop = $(i - 1)
		if ($(i) == "redirects") red = $(i - 1)
		if ($(i) == "B/op") bpo = $(i - 1)
		if ($(i) == "allocs/op") apo = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"joins_per_sec\": %s, \"p50_us\": %s, \"p99_us\": %s, \"users_peak\": %s, \"events\": %s, \"directives\": %s, \"dropped_pushes\": %s, \"redirects\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, jps, p50, p99, peak, ev, dir, drop, red, bpo, apo
}
END { print "\n  ]\n}" }
' /tmp/bench_wire.txt > "$out"

# Acceptance gates (mirrors bench-frontier.sh): the codec must be
# allocation-free and must beat JSON under identical 10^4-user churn.
awk '
/^BenchmarkWireEncodeDecode/ {
	for (i = 4; i <= NF; i++) if ($(i) == "allocs/op") wa = $(i - 1) + 0
	wire_seen = 1
}
/^BenchmarkCityTCP10K-|^BenchmarkCityTCP10K / {
	for (i = 4; i <= NF; i++) {
		if ($(i) == "joins/sec") bj = $(i - 1) + 0
		if ($(i) == "p99_us") bp = $(i - 1) + 0
		if ($(i) == "users_peak") bu = $(i - 1) + 0
	}
	bin_seen = 1
}
/^BenchmarkCityTCP10KJSON/ {
	for (i = 4; i <= NF; i++) {
		if ($(i) == "joins/sec") jj = $(i - 1) + 0
		if ($(i) == "p99_us") jp = $(i - 1) + 0
		if ($(i) == "users_peak") ju = $(i - 1) + 0
	}
	json_seen = 1
}
END {
	fail = 0
	if (!wire_seen) { print "FAIL: BenchmarkWireEncodeDecode missing"; fail = 1 }
	else if (wa != 0) { printf "FAIL: wire round trip allocates (%d allocs/op, want 0)\n", wa; fail = 1 }
	if (!bin_seen || !json_seen) { print "FAIL: CityTCP10K rows missing (WOLT_CITY_TCP run failed?)"; fail = 1 }
	else {
		if (bu < 10000 || ju < 10000) { printf "FAIL: users_peak below 1e4 (binary %d, json %d)\n", bu, ju; fail = 1 }
		if (bj <= jj) { printf "FAIL: binary joins/sec %.0f does not beat json %.0f\n", bj, jj; fail = 1 }
		if (bp >= jp) { printf "FAIL: binary p99_us %.0f does not beat json %.0f\n", bp, jp; fail = 1 }
		if (!fail) printf "OK: binary vs json at 10^4 users: joins/sec %.0f vs %.0f, p99_us %.0f vs %.0f\n", bj, jj, bp, jp
	}
	exit fail
}
' /tmp/bench_wire.txt

echo "wrote $out"
