#!/bin/sh
# Benchmarks the α-fair utility frontier: one full two-phase wolt-alpha
# solve per utility member (α = 0, 0.5, 1, 2, 4, ∞) on the enterprise
# instance (10 extenders × 40 users), recording the runs as JSON in
# BENCH_frontier.json at the repo root:
#
#   BenchmarkFrontierAlpha/alpha=G — solve latency plus the headline
#       frontier quantities: aggregate_Mbps (the sum-rate the α-solve
#       pays), jain (the fairness it buys) and utility (the achieved
#       U_α objective value).
#
# Acceptance: the alpha=1 row (wolt-pf) must show a strictly higher
# Jain index than the alpha=0 row (plain wolt) — fairness members must
# actually buy fairness, not just cost throughput.
# Usage: scripts/bench-frontier.sh [count]
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_frontier.json"
cores="$(go env GONUMCPU 2>/dev/null || true)"
[ -n "$cores" ] || cores="$(getconf _NPROCESSORS_ONLN)"

go test -run '^$' -bench 'FrontierAlpha' -benchmem -count "$count" \
	. | tee /tmp/bench_frontier.txt

awk -v cores="$cores" '
BEGIN { printf "{\n  \"cores\": %s,\n  \"runs\": [\n", cores }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	bpo = "null"; apo = "null"; agg = "null"; jain = "null"; util = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op") bpo = $(i - 1)
		if ($(i) == "allocs/op") apo = $(i - 1)
		if ($(i) == "aggregate_Mbps") agg = $(i - 1)
		if ($(i) == "jain") jain = $(i - 1)
		if ($(i) == "utility") util = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"aggregate_mbps\": %s, \"jain\": %s, \"utility\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, agg, jain, util, bpo, apo
}
END { print "\n  ]\n}" }
' /tmp/bench_frontier.txt > "$out"

# Enforce the acceptance criterion recorded above: on at least one
# recorded run the α=1 member strictly improves Jain over α=0.
awk '
/^BenchmarkFrontierAlpha\/alpha=0 / || /^BenchmarkFrontierAlpha\/alpha=0-/ {
	for (i = 4; i <= NF; i++) if ($(i) == "jain" && $(i - 1) > j0) j0 = $(i - 1)
}
/^BenchmarkFrontierAlpha\/alpha=1 / || /^BenchmarkFrontierAlpha\/alpha=1-/ {
	for (i = 4; i <= NF; i++) if ($(i) == "jain" && $(i - 1) > j1) j1 = $(i - 1)
}
END {
	if (!(j1 > j0)) { printf "FAIL: wolt-pf jain %s <= wolt jain %s\n", j1, j0; exit 1 }
	printf "ok: wolt-pf jain %s > wolt jain %s\n", j1, j0
}
' /tmp/bench_frontier.txt

echo "wrote $out"
