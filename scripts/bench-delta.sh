#!/bin/sh
# Benchmarks the delta-evaluation core on the dense 2k-user x 32-extender
# probe workload and records the runs as JSON in BENCH_delta.json at the
# repo root, tagged with the machine's core count:
#
#   BenchmarkDeltaProbe     — one O(Δ) single-move what-if (must be 0 allocs)
#   BenchmarkDeltaFullProbe — the same what-if via a full EvaluateWith,
#                             the cost every probe loop paid pre-delta
#   BenchmarkDeltaCommit    — one applied move (member edit + water-fill)
#   BenchmarkLargeSolve     — the end-to-end solve the delta core speeds up,
#                             compared against the committed BENCH_solve.json
#
# The ns_per_op ratio FullProbe/Probe is the delta speedup recorded in
# the acceptance criteria (>= 10x); LargeSolve vs BENCH_solve.json is the
# end-to-end improvement (>= 2x).
# Usage: scripts/bench-delta.sh [count]
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_delta.json"
cores="$(go env GONUMCPU 2>/dev/null || true)"
[ -n "$cores" ] || cores="$(getconf _NPROCESSORS_ONLN)"

go test -run '^$' -bench 'Delta(Probe|FullProbe|Commit)$' -benchmem -count "$count" \
	./internal/model | tee /tmp/bench_delta.txt
go test -run '^$' -bench 'LargeSolve' -benchmem -benchtime=1x -count "$count" \
	./internal/core | tee -a /tmp/bench_delta.txt

awk -v cores="$cores" '
BEGIN { printf "{\n  \"cores\": %s,\n  \"runs\": [\n", cores }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3; bpo = "null"; apo = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op") bpo = $(i - 1)
		if ($(i) == "allocs/op") apo = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, bpo, apo
}
END { print "\n  ]\n}" }
' /tmp/bench_delta.txt > "$out"

echo "wrote $out"
