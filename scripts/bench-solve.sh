#!/bin/sh
# Benchmarks one full WOLT solve (2k users x 32 extenders) at one
# worker vs all cores and records the runs as JSON in BENCH_solve.json
# at the repo root, tagged with the machine's core count. The two
# configurations return bit-identical assignments (DESIGN.md par.7);
# only wall-clock differs, and only when the machine has >1 core.
# Usage: scripts/bench-solve.sh [count]
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_solve.json"
cores="$(go env GONUMCPU 2>/dev/null || true)"
[ -n "$cores" ] || cores="$(getconf _NPROCESSORS_ONLN)"

go test -run '^$' -bench LargeSolve -benchmem -count "$count" \
	./internal/core | tee /tmp/bench_solve.txt

awk -v cores="$cores" '
BEGIN { printf "{\n  \"cores\": %s,\n  \"runs\": [\n", cores }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3; bpo = "null"; apo = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op") bpo = $(i - 1)
		if ($(i) == "allocs/op") apo = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, bpo, apo
}
END { print "\n  ]\n}" }
' /tmp/bench_solve.txt > "$out"

echo "wrote $out"
