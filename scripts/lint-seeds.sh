#!/bin/sh
# lint-seeds.sh — forbid ad-hoc additive seed arithmetic.
#
# All seed derivation must go through seed.Derive(base, stream, index)
# (internal/seed): additive schemes like Seed+int64(trial) or
# NewSource(opts.Seed+100+...) can collide across streams and silently
# replay each other's randomness (see DESIGN.md §7). Comment lines are
# ignored so the history of the bug can be documented.
set -eu
cd "$(dirname "$0")/.."

pattern='Seed *\+= *|Seed *\+ *int64\(|Seed *\+ *[0-9]|NewSource\([A-Za-z_.]*Seed *\+|Seed *\* *[0-9]'
bad=$(grep -rnE "$pattern" --include='*.go' . \
	| grep -v '^\./internal/seed/' \
	| grep -vE ':[0-9]+:\s*//' || true)

if [ -n "$bad" ]; then
	echo "seed lint: additive seed arithmetic found — use seed.Derive instead:" >&2
	echo "$bad" >&2
	exit 1
fi

# Raw rng construction bypasses the stream discipline entirely: every
# non-test *rand.Rand must come from seed.Rand(base, stream, index) or
# seed.Root(base) so fan-out cannot alias streams. Tests may build
# throwaway rngs directly.
raw=$(grep -rnF 'rand.New(rand.NewSource(' --include='*.go' . \
	| grep -v '^\./internal/seed/' \
	| grep -v '_test\.go:' \
	| grep -vE ':[0-9]+:\s*//' || true)

if [ -n "$raw" ]; then
	echo "seed lint: raw rand.New(rand.NewSource(...)) found — use seed.Rand or seed.Root instead:" >&2
	echo "$raw" >&2
	exit 1
fi
echo "seed lint: clean"
