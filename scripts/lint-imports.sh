#!/bin/sh
# lint-imports.sh — keep internal/baseline an implementation detail of
# the strategy layer.
#
# Every consumer (simulator, experiments, control plane, CLI, facade)
# must go through internal/strategy: one registry, one instrumentation
# point, one scratch discipline. Direct baseline imports are allowed
# only inside internal/strategy and internal/baseline themselves, and
# in test files (which compare strategies against the raw algorithms).
set -eu
cd "$(dirname "$0")/.."

bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/baseline"' --include='*.go' . \
	| grep -v '^\./internal/baseline/' \
	| grep -v '^\./internal/strategy/' \
	| grep -v '_test\.go:' || true)

if [ -n "$bad" ]; then
	echo "import lint: direct internal/baseline import outside the strategy layer:" >&2
	echo "$bad" >&2
	echo "route it through internal/strategy (registry name or passthrough)" >&2
	exit 1
fi

# The shard layer gets no test-file exemption: shards must observe
# policies strictly through control.Engine (and thus the strategy
# registry), so internal/baseline stays unreachable from internal/shard
# in any file.
bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/baseline"' --include='*.go' ./internal/shard/ || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/shard must not reach internal/baseline (not even in tests):" >&2
	echo "$bad" >&2
	echo "shard members drive policies only through control.Engine" >&2
	exit 1
fi

# model.DeltaEval is the stateful O(Δ) evaluator behind the algorithm
# layers' probe loops. Its re-attach discipline (generation counter,
# Matches) is easy to hold inside a solver and easy to violate from ad
# hoc call sites, so only the algorithm packages — internal/baseline,
# internal/core, internal/localsearch, internal/nlp, internal/netsim —
# may construct one (internal/model owns it). Everyone else consumes
# delta-evaluated results through the strategy registry's
# instrumentation. Test files are exempt.
bad=$(grep -rn 'model\.DeltaEval' --include='*.go' . \
	| grep -v '^\./internal/model/' \
	| grep -v '^\./internal/baseline/' \
	| grep -v '^\./internal/core/' \
	| grep -v '^\./internal/localsearch/' \
	| grep -v '^\./internal/nlp/' \
	| grep -v '^\./internal/netsim/' \
	| grep -v '_test\.go:' || true)
if [ -n "$bad" ]; then
	echo "import lint: model.DeltaEval constructed outside the algorithm layers:" >&2
	echo "$bad" >&2
	echo "only internal/{baseline,core,localsearch,nlp,netsim} may hold a delta evaluator; use the strategy registry" >&2
	exit 1
fi

# internal/localsearch is pure algorithm layer: it sits below core and
# strategy (both import it for the warm paths), so it may depend only
# on internal/model and internal/seed. An import of the registry, the
# solver pipeline, or any plane above them would be a layering cycle
# waiting to happen. Test files are exempt (bench_test.go prices the
# warm re-solve against the full solve in internal/core).
bad=$(grep -rnE '"github.com/plcwifi/wolt/internal/(strategy|core|control|shard|netsim|experiments|baseline|nlp)"' \
	--include='*.go' ./internal/localsearch/ \
	| grep -v '_test\.go:' || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/localsearch must stay in the algorithm layer (model+seed only):" >&2
	echo "$bad" >&2
	echo "hand results up through internal/core or the strategy registry instead" >&2
	exit 1
fi
# internal/city is a pure harness: it composes the planes (shard,
# control) with the workload generators (workload, eventsim, seed) and
# carries a strategy.Budget through to the engines. It must never reach
# into the model or algorithm layers directly — a city that builds its
# own model.Network or calls a solver is no longer measuring the plane
# it claims to. No test-file exemption: the differential tests compare
# planes against each other, not against raw algorithms.
bad=$(grep -rnE '"github.com/plcwifi/wolt/internal/(model|baseline|core|nlp|localsearch|netsim|hungarian|topology|radio|plc)"' \
	--include='*.go' ./internal/city/ || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/city must drive the plane only via shard/control/workload/eventsim/seed:" >&2
	echo "$bad" >&2
	echo "scan reports and budgets are the only interface; do not reach the model or algorithm layers" >&2
	exit 1
fi
# internal/model is the evaluation-layer leaf: the network model, the
# delta evaluator, and the utility family (model.Utility — every α-fair
# objective definition) all live here, beneath every solver. Utility
# semantics must not leak upward into nlp/core/localsearch-specific
# definitions, and model must not reach up either: its non-test files
# are stdlib-only (tests may use internal/seed for derived streams).
bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/' --include='*.go' ./internal/model/ \
	| grep -v '_test\.go:' || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/model must stay a stdlib-only leaf package:" >&2
	echo "$bad" >&2
	echo "utility/objective definitions belong in internal/model; solvers adapt to them, not vice versa" >&2
	exit 1
fi
# internal/wire is the binary wire codec: a stdlib-only leaf beneath
# the control plane. It defines the frame layout and the Message/Stats
# types that internal/control re-exports as aliases; pulling any other
# internal package into it would couple the on-the-wire format to model
# or plane internals. No test-file exemption — even its fuzzers need
# nothing above stdlib.
bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/' --include='*.go' ./internal/wire/ || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/wire must stay a stdlib-only leaf package:" >&2
	echo "$bad" >&2
	echo "the wire codec defines the protocol; planes adapt to it, not vice versa" >&2
	exit 1
fi
# Conversely, only the transport layers — internal/control (links,
# codec negotiation) and internal/shard (redirect framing) — may import
# internal/wire directly. Everyone above them uses the control-package
# aliases (control.Message, control.Stats), so the codec can evolve
# behind one seam. Test files inside those two packages are covered by
# the path allowlist; tests elsewhere must also go through control.
bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/wire"' --include='*.go' . \
	| grep -v '^\./internal/wire/' \
	| grep -v '^\./internal/control/' \
	| grep -v '^\./internal/shard/' || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/wire imported outside the transport layer (control, shard):" >&2
	echo "$bad" >&2
	echo "use the control-package aliases (control.Message, control.Stats) instead" >&2
	exit 1
fi
# internal/stats is a leaf utility (streaming quantile sketches for
# host-side measurements): stdlib only, so every layer — harness, CLI,
# experiments — may use it without dragging plane or algorithm code
# along. Any internal import from it is a layering violation. No
# test-file exemption; even its tests need nothing above stdlib.
bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/' --include='*.go' ./internal/stats/ || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/stats must stay a stdlib-only leaf package:" >&2
	echo "$bad" >&2
	echo "move anything needing plane or algorithm types out of internal/stats" >&2
	exit 1
fi
echo "import lint: clean"
