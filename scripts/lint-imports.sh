#!/bin/sh
# lint-imports.sh — keep internal/baseline an implementation detail of
# the strategy layer.
#
# Every consumer (simulator, experiments, control plane, CLI, facade)
# must go through internal/strategy: one registry, one instrumentation
# point, one scratch discipline. Direct baseline imports are allowed
# only inside internal/strategy and internal/baseline themselves, and
# in test files (which compare strategies against the raw algorithms).
set -eu
cd "$(dirname "$0")/.."

bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/baseline"' --include='*.go' . \
	| grep -v '^\./internal/baseline/' \
	| grep -v '^\./internal/strategy/' \
	| grep -v '_test\.go:' || true)

if [ -n "$bad" ]; then
	echo "import lint: direct internal/baseline import outside the strategy layer:" >&2
	echo "$bad" >&2
	echo "route it through internal/strategy (registry name or passthrough)" >&2
	exit 1
fi

# The shard layer gets no test-file exemption: shards must observe
# policies strictly through control.Engine (and thus the strategy
# registry), so internal/baseline stays unreachable from internal/shard
# in any file.
bad=$(grep -rnF '"github.com/plcwifi/wolt/internal/baseline"' --include='*.go' ./internal/shard/ || true)
if [ -n "$bad" ]; then
	echo "import lint: internal/shard must not reach internal/baseline (not even in tests):" >&2
	echo "$bad" >&2
	echo "shard members drive policies only through control.Engine" >&2
	exit 1
fi
echo "import lint: clean"
