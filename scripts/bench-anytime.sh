#!/bin/sh
# Benchmarks the anytime warm re-solve path on the 2k-user x 32-extender
# instance (the BenchmarkLargeSolve shape, PLC caps scaled into the
# WiFi-bound regime so the objective responds to association choices)
# and records the runs as JSON in BENCH_anytime.json at the repo root:
#
#   BenchmarkWarmResolve/hillclimb/probes=N — one warm hill-climb repair
#       of a 20-user churn burst at probe budget N (the budget-vs-quality
#       curve; each row reports gap_pct vs the full two-phase solve and
#       startgap_pct, the damage the churn did)
#   BenchmarkWarmResolveKOpt   — the k-opt form at the headline budget
#   BenchmarkWarmResolveAnneal — the annealer (diversification method;
#       from a warm start it returns best-so-far, i.e. the start)
#
# Acceptance: the sub-1000-probe rows must show ns_per_op < 1ms with
# gap_pct <= 3 — a warm re-solve under churn at a fraction of the
# ~100ms full solve (BENCH_delta.json's LargeSolve).
# Usage: scripts/bench-anytime.sh [count]
set -eu

cd "$(dirname "$0")/.."
count="${1:-3}"
out="BENCH_anytime.json"
cores="$(go env GONUMCPU 2>/dev/null || true)"
[ -n "$cores" ] || cores="$(getconf _NPROCESSORS_ONLN)"

go test -run '^$' -bench 'WarmResolve' -benchmem -count "$count" \
	./internal/localsearch | tee /tmp/bench_anytime.txt

awk -v cores="$cores" '
BEGIN { printf "{\n  \"cores\": %s,\n  \"runs\": [\n", cores }
/^Benchmark/ {
	name = $1; iters = $2; ns = $3
	bpo = "null"; apo = "null"; gap = "null"; startgap = "null"; probes = "null"
	for (i = 4; i <= NF; i++) {
		if ($(i) == "B/op") bpo = $(i - 1)
		if ($(i) == "allocs/op") apo = $(i - 1)
		if ($(i) == "gap_pct") gap = $(i - 1)
		if ($(i) == "startgap_pct") startgap = $(i - 1)
		if ($(i) == "probes/op") probes = $(i - 1)
	}
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s, \"gap_pct\": %s, \"startgap_pct\": %s, \"probes_per_op\": %s, \"b_per_op\": %s, \"allocs_per_op\": %s}", \
		name, iters, ns, gap, startgap, probes, bpo, apo
}
END { print "\n  ]\n}" }
' /tmp/bench_anytime.txt > "$out"

echo "wrote $out"
