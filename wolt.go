// Package wolt is a Go implementation of WOLT (ICDCS 2020):
// auto-configuration of integrated enterprise PLC-WiFi networks.
//
// PLC-WiFi extenders plug into power outlets and bridge WiFi clients to a
// master router over the powerline backhaul. Unlike Ethernet, the PLC
// backhaul is capacity-constrained and time-shared across extenders, so
// naive strongest-signal association wastes most of the network's
// potential. WOLT assigns users to extenders to maximize the aggregate
// end-to-end throughput over both concatenated link segments:
//
//	Phase I  — solve a relaxed association exactly as an assignment
//	           problem with utilities min(c_j/|A|, r_ij) (Hungarian
//	           algorithm, O(|A|³));
//	Phase II — place the remaining users by maximizing total WiFi
//	           throughput, a nonlinear program with provably integral
//	           optima.
//
// The package is a facade over the implementation packages:
//
//   - the association algorithms (WOLT plus the paper's RSSI, Greedy,
//     Selfish, Optimal and Random baselines),
//   - the concatenated PLC+WiFi throughput model with time-fair PLC
//     sharing and leftover redistribution,
//   - physical substrates (radio channel + rate adaptation, PLC line
//     model, IEEE 1901 and 802.11 MAC simulators),
//   - a flow-level network simulator with Poisson churn,
//   - a distributed control plane (central controller + user agents over
//     TCP), and
//   - an emulated testbed measuring associations with real shaped TCP
//     flows.
//
// Quickstart:
//
//	n := &wolt.Network{
//	    WiFiRates: [][]float64{{15, 10}, {40, 20}}, // r_ij (Mbps)
//	    PLCCaps:   []float64{60, 20},               // c_j (Mbps)
//	}
//	res, err := wolt.Assign(n, wolt.Options{})
//	// res.Assign[i] is user i's extender.
//	eval, err := wolt.Evaluate(n, res.Assign, wolt.EvalOptions{Redistribute: true})
//	// eval.Aggregate is the end-to-end network throughput.
package wolt

import (
	"math/rand"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/mobility"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/topology"
	"github.com/plcwifi/wolt/internal/workload"
)

// Core problem types.
type (
	// Network is the association-problem input: the WiFi PHY rate matrix
	// r_ij and the PLC isolation capacities c_j.
	Network = model.Network
	// Assignment maps each user index to an extender index (or
	// Unassigned).
	Assignment = model.Assignment
	// EvalOptions selects the PLC sharing behaviour during evaluation.
	EvalOptions = model.Options
	// EvalResult is the evaluated throughput of an assignment.
	EvalResult = model.Result

	// Options configures the WOLT algorithm.
	Options = core.Options
	// Result is a complete WOLT association with diagnostics.
	Result = core.Result
)

// Unassigned marks a user without an extender.
const Unassigned = model.Unassigned

// Phase II solver choices.
const (
	// Phase2ProjectedGradient solves Phase II's continuous relaxation by
	// projected gradient (the paper's interior-point role) and extracts
	// an integral solution. The default.
	Phase2ProjectedGradient = core.Phase2ProjectedGradient
	// Phase2Coordinate uses the discrete best-response solver.
	Phase2Coordinate = core.Phase2Coordinate
)

// Phase I solver choices.
const (
	// Phase1Hungarian is the paper's O(|A|³) assignment solver. Default.
	Phase1Hungarian = core.Phase1Hungarian
	// Phase1Auction uses Bertsekas' auction algorithm.
	Phase1Auction = core.Phase1Auction
)

// IncrementalResult is the outcome of a budgeted re-association.
type IncrementalResult = core.IncrementalResult

// Assign runs the two-phase WOLT algorithm.
func Assign(n *Network, opts Options) (*Result, error) {
	return core.Assign(n, opts)
}

// AssignIncremental moves the network toward the WOLT association while
// re-associating at most budget existing users (arrivals are free;
// negative budget = unlimited). An extension of the paper's Fig 6c
// re-assignment-overhead discussion.
func AssignIncremental(n *Network, prev Assignment, budget int, opts Options, evalOpts EvalOptions) (*IncrementalResult, error) {
	return core.AssignIncremental(n, prev, budget, opts, evalOpts)
}

// AssignProportionalFair runs WOLT with a proportional-fairness Phase II:
// remaining users are placed to maximize Σ log(throughput) instead of
// total WiFi throughput.
func AssignProportionalFair(n *Network, opts Options) (*Result, error) {
	return core.AssignProportionalFair(n, opts)
}

// Evaluate computes per-user, per-extender and aggregate end-to-end
// throughputs of an assignment under the PLC+WiFi sharing model.
func Evaluate(n *Network, a Assignment, opts EvalOptions) (*EvalResult, error) {
	return model.Evaluate(n, a, opts)
}

// AssignRSSI associates every user with the extender of strongest signal
// (signal[i][j] in dBm); the commodity default behaviour.
func AssignRSSI(n *Network, signal [][]float64) (Assignment, error) {
	return strategy.RSSI(n, signal)
}

// AssignGreedy runs the paper's online greedy baseline: users arrive in
// the given order (nil = index order) and each picks the extender
// maximizing the aggregate throughput so far.
func AssignGreedy(n *Network, order []int, opts EvalOptions) (Assignment, error) {
	return strategy.Greedy(n, order, opts)
}

// AssignSelfish runs the §III-B online greedy: each arrival maximizes its
// own end-to-end throughput.
func AssignSelfish(n *Network, order []int, opts EvalOptions) (Assignment, error) {
	return strategy.Selfish(n, order, opts)
}

// AssignOptimal exhaustively searches all associations (small networks
// only) and returns the optimum and its aggregate throughput.
func AssignOptimal(n *Network, opts EvalOptions) (Assignment, float64, error) {
	return strategy.Optimal(n, opts)
}

// AssignRandom associates every user uniformly at random.
func AssignRandom(n *Network, rng *rand.Rand) (Assignment, error) {
	return strategy.Random(n, rng)
}

// Strategy-registry types: every association algorithm (WOLT variants
// and baselines) is available as a named, instrumented Strategy.
type (
	// Strategy computes associations; instances carry their own scratch
	// and rng (give each goroutine its own).
	Strategy = strategy.Strategy
	// StrategyConfig parameterizes a strategy instance.
	StrategyConfig = strategy.Config
	// StrategyStats is the per-solve instrumentation record.
	StrategyStats = strategy.Stats
)

// NewStrategy builds a configured instance of a named strategy from the
// registry (see StrategyNames).
func NewStrategy(name string, cfg StrategyConfig) (Strategy, error) {
	return strategy.New(name, cfg)
}

// StrategyNames lists the registered strategy names, sorted.
func StrategyNames() []string {
	return strategy.Names()
}

// Simulation types.
type (
	// Topology is a physical floor plan with extenders and users.
	Topology = topology.Topology
	// TopologyConfig parameterizes random topology generation.
	TopologyConfig = topology.Config
	// RadioModel maps user-extender distance (plus shadowing) to WiFi
	// PHY rate and RSSI.
	RadioModel = radio.Model
	// Instance is a topology with derived rate/RSSI matrices.
	Instance = netsim.Instance
	// Policy is an association policy driven by the simulator.
	Policy = netsim.Policy
	// StaticConfig parameterizes independent-trial simulations.
	StaticConfig = netsim.StaticConfig
	// StaticResult aggregates a policy's outcomes across trials.
	StaticResult = netsim.StaticResult
	// DynamicConfig parameterizes churn simulations.
	DynamicConfig = netsim.DynamicConfig
	// EpochResult is the network state at one epoch boundary.
	EpochResult = netsim.EpochResult
	// ChurnConfig drives Poisson arrival/departure traces.
	ChurnConfig = workload.Config

	// WOLTPolicy recomputes the full association at epoch boundaries.
	WOLTPolicy = netsim.WOLTPolicy
	// GreedyPolicy assigns each arrival to maximize aggregate throughput.
	GreedyPolicy = netsim.GreedyPolicy
	// SelfishPolicy assigns each arrival to maximize its own throughput.
	SelfishPolicy = netsim.SelfishPolicy
	// RSSIPolicy assigns each arrival by strongest signal.
	RSSIPolicy = netsim.RSSIPolicy
	// RandomPolicy assigns each arrival uniformly at random.
	RandomPolicy = netsim.RandomPolicy
)

// Mobility types (random-waypoint user motion).
type (
	// MobilityConfig parameterizes the random-waypoint model.
	MobilityConfig = mobility.Config
	// Fleet animates a topology's users.
	Fleet = mobility.Fleet
)

// DefaultMobilityConfig returns pedestrian motion (0.5–1.5 m/s).
func DefaultMobilityConfig() MobilityConfig {
	return mobility.DefaultConfig()
}

// NewFleet builds random-waypoint walkers for every user of a topology;
// Fleet.Advance moves them and updates the topology in place.
func NewFleet(topo *Topology, cfg MobilityConfig) (*Fleet, error) {
	return mobility.NewFleet(topo, cfg)
}

// GenerateTopology builds a seeded random topology.
func GenerateTopology(cfg TopologyConfig) (*Topology, error) {
	return topology.Generate(cfg)
}

// DefaultRadioModel returns the indoor channel + 802.11g rate table used
// throughout the experiments.
func DefaultRadioModel() RadioModel {
	return radio.DefaultModel()
}

// BuildInstance derives the association-problem inputs from a topology.
func BuildInstance(topo *Topology, rm RadioModel) *Instance {
	return netsim.Build(topo, rm)
}

// RunStatic evaluates policies over independent random topologies.
func RunStatic(cfg StaticConfig, policies []Policy) ([]StaticResult, error) {
	return netsim.RunStatic(cfg, policies)
}

// RunDynamic replays a Poisson churn trace against one policy,
// recomputing at epoch boundaries.
func RunDynamic(cfg DynamicConfig, policy Policy) ([]EpochResult, error) {
	return netsim.RunDynamic(cfg, policy)
}
