// Enterprise: the paper's large-scale simulation scenario through the
// public API. A 100 m × 100 m floor with 10 PLC-WiFi extenders on
// AV2-class powerline links and 36 users; WOLT is compared against the
// Greedy, Selfish and RSSI baselines over independent random topologies,
// reporting mean aggregate throughput, the throughput CDF and Jain's
// fairness index (the paper's Fig 6a and §V-E fairness discussion).
//
// Run with:
//
//	go run ./examples/enterprise [-trials 30] [-users 36] [-extenders 10]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	wolt "github.com/plcwifi/wolt"
)

func main() {
	trials := flag.Int("trials", 30, "independent random topologies")
	users := flag.Int("users", 36, "users per topology")
	extenders := flag.Int("extenders", 10, "extenders per topology")
	seed := flag.Int64("seed", 2020, "random seed")
	flag.Parse()

	// Enterprise calibration: AV2-class PLC links (300–800 Mbps) and a
	// lossy indoor channel with wall shadowing, so that user channel
	// qualities span the full good-to-poor range.
	radio := wolt.DefaultRadioModel()
	radio.Channel.TxPowerDBm = 14
	radio.Channel.PathLossExponent = 3.5
	radio.ShadowSeed = *seed

	evalOpts := wolt.EvalOptions{Redistribute: true}
	cfg := wolt.StaticConfig{
		Topology: wolt.TopologyConfig{
			Width: 100, Height: 100,
			NumExtenders:       *extenders,
			NumUsers:           *users,
			PLCCapacityMinMbps: 300,
			PLCCapacityMaxMbps: 800,
			Seed:               *seed,
		},
		Radio:     &radio,
		Trials:    *trials,
		ModelOpts: evalOpts,
	}
	policies := []wolt.Policy{
		wolt.WOLTPolicy{},
		wolt.GreedyPolicy{ModelOpts: evalOpts},
		wolt.SelfishPolicy{ModelOpts: evalOpts},
		wolt.RSSIPolicy{},
	}

	results, err := wolt.RunStatic(cfg, policies)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("enterprise simulation: %d extenders, %d users, %d trials\n\n",
		*extenders, *users, *trials)
	fmt.Printf("%-8s  %-10s  %-10s  %-10s  %-6s\n", "policy", "mean Mbps", "min Mbps", "max Mbps", "Jain")
	woltMean := results[0].MeanAggregate()
	for _, r := range results {
		aggs := r.Aggregates()
		sort.Float64s(aggs)
		fmt.Printf("%-8s  %-10.1f  %-10.1f  %-10.1f  %.2f",
			r.Policy, r.MeanAggregate(), aggs[0], aggs[len(aggs)-1], r.MeanJain())
		if r.Policy != "WOLT" {
			fmt.Printf("   (WOLT ×%.2f)", woltMean/r.MeanAggregate())
		}
		fmt.Println()
	}

	fmt.Println("\naggregate-throughput CDF (Mbps at deciles):")
	fmt.Printf("%-8s", "policy")
	for p := 10; p <= 90; p += 20 {
		fmt.Printf("  p%-6d", p)
	}
	fmt.Println()
	for _, r := range results {
		aggs := r.Aggregates()
		sort.Float64s(aggs)
		fmt.Printf("%-8s", r.Policy)
		for p := 10; p <= 90; p += 20 {
			idx := p * (len(aggs) - 1) / 100
			fmt.Printf("  %-7.1f", aggs[idx])
		}
		fmt.Println()
	}
}
