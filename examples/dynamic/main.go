// Dynamic: online operation of WOLT under user churn (the paper's
// Fig 6b/6c). Users arrive as a Poisson process (rate 3) and depart
// (rate 1); arrivals first associate by strongest signal to reach the
// controller, and at every epoch boundary WOLT recomputes the full
// association. The run prints per-epoch population, aggregate throughput
// against the never-reassigning Greedy baseline, and WOLT's
// re-association overhead.
//
// Run with:
//
//	go run ./examples/dynamic [-epochs 3] [-users 36]
package main

import (
	"flag"
	"fmt"
	"log"

	wolt "github.com/plcwifi/wolt"
)

func main() {
	epochs := flag.Int("epochs", 3, "number of 16-time-unit epochs")
	users := flag.Int("users", 36, "initial user population")
	extenders := flag.Int("extenders", 10, "extenders")
	seed := flag.Int64("seed", 2020, "random seed")
	flag.Parse()

	radio := wolt.DefaultRadioModel()
	radio.Channel.TxPowerDBm = 14
	radio.Channel.PathLossExponent = 3.5
	radio.ShadowSeed = *seed

	evalOpts := wolt.EvalOptions{Redistribute: true}
	const epochLen = 16.0
	cfg := wolt.DynamicConfig{
		Topology: wolt.TopologyConfig{
			Width: 100, Height: 100,
			NumExtenders:       *extenders,
			NumUsers:           *users,
			PLCCapacityMinMbps: 300,
			PLCCapacityMaxMbps: 800,
			Seed:               *seed,
		},
		Radio: &radio,
		Churn: wolt.ChurnConfig{
			ArrivalRate:   3,
			DepartureRate: 1,
			Horizon:       epochLen * float64(*epochs),
			Seed:          *seed,
		},
		EpochLen:  epochLen,
		ModelOpts: evalOpts,
	}

	woltEpochs, err := wolt.RunDynamic(cfg, wolt.WOLTPolicy{})
	if err != nil {
		log.Fatal(err)
	}
	greedyEpochs, err := wolt.RunDynamic(cfg, wolt.GreedyPolicy{ModelOpts: evalOpts})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("dynamic run: %d extenders, %d initial users, arrival rate 3 / departure rate 1\n\n",
		*extenders, *users)
	fmt.Printf("%-6s  %-6s  %-9s  %-9s  %-11s  %-12s  %-12s\n",
		"epoch", "users", "arrivals", "departs", "WOLT Mbps", "Greedy Mbps", "reassigned")
	for k := range woltEpochs {
		w, g := woltEpochs[k], greedyEpochs[k]
		fmt.Printf("%-6d  %-6d  %-9d  %-9d  %-11.1f  %-12.1f  %d (%.1f/arrival)\n",
			k+1, w.Users, w.Arrivals, w.Departures, w.Aggregate, g.Aggregate,
			w.Reassignments, perArrival(w.Reassignments, w.Arrivals))
	}
}

func perArrival(reassigned, arrivals int) float64 {
	if arrivals == 0 {
		return 0
	}
	return float64(reassigned) / float64(arrivals)
}
