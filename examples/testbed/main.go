// Testbed: the full distributed system end-to-end through the public
// API. A central controller listens on a real TCP socket; user agents
// connect, send their scan reports, and receive association directives —
// including WOLT pushing a re-association to user 1 once user 2 appears
// (the paper's Fig 3 story). The resulting association is then measured
// with real shaped TCP flows on the emulated testbed.
//
// Run with:
//
//	go run ./examples/testbed
package main

import (
	"fmt"
	"log"
	"time"

	wolt "github.com/plcwifi/wolt"
)

func main() {
	network := &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}

	// Start the central controller (in production: cmd/woltcc).
	controller, err := wolt.NewController("127.0.0.1:0", wolt.ControllerConfig{
		PLCCaps: network.PLCCaps,
		Policy:  wolt.ControllerWOLT,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = controller.Close() }()
	fmt.Printf("central controller on %s\n", controller.Addr())

	// User 1 arrives and joins (in production: cmd/woltagent).
	agent1, err := wolt.DialAgent(controller.Addr(), 1)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = agent1.Close() }()
	ext1, err := agent1.Join(network.WiFiRates[0], []float64{-60, -70}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 1 joined -> extender %d\n", ext1)

	// User 2 arrives; WOLT recomputes and re-associates user 1.
	agent2, err := wolt.DialAgent(controller.Addr(), 2)
	if err != nil {
		log.Fatal(err)
	}
	defer func() { _ = agent2.Close() }()
	ext2, err := agent2.Join(network.WiFiRates[1], []float64{-55, -65}, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("user 2 joined -> extender %d\n", ext2)

	moved, err := agent1.WaitForMove(ext1, 5*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller re-associated user 1: extender %d -> %d\n", ext1, moved)

	stats, err := agent2.Stats(5 * time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("controller stats: users=%d joins=%d reassociations=%d\n",
		stats.Users, stats.Joins, stats.Reassociations)

	// Measure the final association with real shaped TCP flows.
	assign := wolt.Assignment{stats.Assignment[1], stats.Assignment[2]}
	run, err := wolt.RunTestbed(wolt.TestbedConfig{
		Net:      network,
		Assign:   assign,
		Opts:     wolt.EvalOptions{Redistribute: true},
		Duration: 500 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nemulated-testbed measurement of %v:\n", assign)
	for _, f := range run.Flows {
		fmt.Printf("  user %d: target %.1f Mbps, measured %.1f Mbps\n",
			f.User+1, f.TargetMbps, f.MeasuredMbps)
	}
	fmt.Printf("  aggregate: %.1f Mbps (model predicts %.1f)\n",
		run.AggregateMbps, run.ModelAggregateMbps)
}
