// Mobility: users walk around the floor (random waypoint), their WiFi
// rates drift, and re-association strategy determines how much of the
// network's capacity survives. Four strategies are compared:
//
//   - static: WOLT once at t=0, never touched again;
//   - roaming: every tick each user hops to the strongest signal (what
//     unmanaged clients do);
//   - full WOLT: the controller recomputes the complete association every
//     tick (maximum throughput, maximum disruption);
//   - incremental WOLT: at most 3 re-associations per tick, chosen by
//     marginal aggregate gain (this repository's extension).
//
// Run with:
//
//	go run ./examples/mobility [-ticks 20] [-users 24]
package main

import (
	"flag"
	"fmt"
	"log"

	wolt "github.com/plcwifi/wolt"
)

func main() {
	ticks := flag.Int("ticks", 20, "10-second mobility ticks")
	users := flag.Int("users", 24, "walking users")
	extenders := flag.Int("extenders", 6, "extenders")
	budget := flag.Int("budget", 3, "incremental re-association budget per tick")
	seed := flag.Int64("seed", 2020, "random seed")
	flag.Parse()

	radioModel := wolt.DefaultRadioModel()
	radioModel.Channel.TxPowerDBm = 14
	radioModel.Channel.PathLossExponent = 3.5
	radioModel.ShadowSeed = *seed

	evalOpts := wolt.EvalOptions{Redistribute: true}

	// Two identical worlds: one re-associated in full each tick, one on
	// a move budget. (Static and roaming omitted here for brevity — see
	// `woltsim mobility` for the four-way comparison.)
	type world struct {
		topo   *wolt.Topology
		fleet  *wolt.Fleet
		assign wolt.Assignment
	}
	mkWorld := func() *world {
		topo, err := wolt.GenerateTopology(wolt.TopologyConfig{
			Width: 100, Height: 100,
			NumExtenders:       *extenders,
			NumUsers:           *users,
			PLCCapacityMinMbps: 300,
			PLCCapacityMaxMbps: 800,
			Seed:               *seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		mcfg := wolt.DefaultMobilityConfig()
		mcfg.Seed = *seed
		fleet, err := wolt.NewFleet(topo, mcfg)
		if err != nil {
			log.Fatal(err)
		}
		inst := wolt.BuildInstance(topo, radioModel)
		res, err := wolt.Assign(inst.Net, wolt.Options{})
		if err != nil {
			log.Fatal(err)
		}
		return &world{topo: topo, fleet: fleet, assign: res.Assign}
	}
	full, budgeted := mkWorld(), mkWorld()

	fmt.Printf("mobility run: %d users walking among %d extenders, budget %d moves/tick\n\n",
		*users, *extenders, *budget)
	fmt.Printf("%-5s  %-15s  %-12s  %-17s  %-12s\n",
		"tick", "full Mbps", "full moves", "budgeted Mbps", "budget moves")

	var fullMoves, budgetMoves int
	for tick := 1; tick <= *ticks; tick++ {
		// Advance both fleets identically.
		if err := full.fleet.Advance(10); err != nil {
			log.Fatal(err)
		}
		if err := budgeted.fleet.Advance(10); err != nil {
			log.Fatal(err)
		}

		instFull := wolt.BuildInstance(full.topo, radioModel)
		res, err := wolt.Assign(instFull.Net, wolt.Options{})
		if err != nil {
			log.Fatal(err)
		}
		movesNow := full.assign.Diff(res.Assign)
		fullMoves += movesNow
		full.assign = res.Assign
		fullAgg, err := wolt.Evaluate(instFull.Net, full.assign, evalOpts)
		if err != nil {
			log.Fatal(err)
		}

		instBudget := wolt.BuildInstance(budgeted.topo, radioModel)
		inc, err := wolt.AssignIncremental(instBudget.Net, budgeted.assign, *budget, wolt.Options{}, evalOpts)
		if err != nil {
			log.Fatal(err)
		}
		budgetMoves += len(inc.Moves)
		budgeted.assign = inc.Assign

		fmt.Printf("%-5d  %-15.1f  %-12d  %-17.1f  %-12d\n",
			tick, fullAgg.Aggregate, movesNow, inc.AchievedAggregate, len(inc.Moves))
	}
	fmt.Printf("\ntotals: full recompute %d moves, budgeted %d moves\n", fullMoves, budgetMoves)
}
