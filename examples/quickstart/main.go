// Quickstart: solve the paper's Fig 3 case study with the public API.
//
// Two PLC-WiFi extenders (backhaul isolation capacities 60 and 20 Mbps)
// serve two users. Strongest-signal association crowds both users onto
// extender 1 and delivers ~22 Mbps; WOLT swaps the users across the two
// extenders and delivers 40 Mbps — the brute-force optimum.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	wolt "github.com/plcwifi/wolt"
)

func main() {
	// The association-problem input: WiFi PHY rates r_ij (user i to
	// extender j) and PLC isolation capacities c_j, all in Mbps.
	network := &wolt.Network{
		WiFiRates: [][]float64{
			{15, 10}, // user 1
			{40, 20}, // user 2
		},
		PLCCaps: []float64{60, 20},
	}
	eval := wolt.EvalOptions{Redistribute: true}

	// The commodity default: strongest signal wins.
	rssi, err := wolt.AssignRSSI(network, [][]float64{
		{-55, -70},
		{-50, -65},
	})
	if err != nil {
		log.Fatal(err)
	}
	report(network, "RSSI ", rssi, eval)

	// The paper's online greedy baseline.
	greedy, err := wolt.AssignGreedy(network, nil, eval)
	if err != nil {
		log.Fatal(err)
	}
	report(network, "Greedy", greedy, eval)

	// WOLT's two-phase assignment.
	res, err := wolt.Assign(network, wolt.Options{})
	if err != nil {
		log.Fatal(err)
	}
	report(network, "WOLT ", res.Assign, eval)

	// Cross-check against brute force.
	optimal, optMbps, err := wolt.AssignOptimal(network, eval)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nbrute-force optimum: %v at %.1f Mbps\n", optimal, optMbps)
}

func report(n *wolt.Network, name string, assign wolt.Assignment, opts wolt.EvalOptions) {
	eval, err := wolt.Evaluate(n, assign, opts)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s  assignment=%v  per-user=", name, assign)
	for i, tp := range eval.PerUser {
		if i > 0 {
			fmt.Print("/")
		}
		fmt.Printf("%.1f", tp)
	}
	fmt.Printf(" Mbps  aggregate=%.1f Mbps\n", eval.Aggregate)
}
