package workload

import (
	"math"
	"reflect"
	"sort"
	"testing"
)

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "negative rate", cfg: Config{ArrivalRate: -1, Horizon: 1}},
		{name: "both zero", cfg: Config{Horizon: 1}},
		{name: "zero horizon", cfg: Config{ArrivalRate: 1}},
		{name: "negative initial", cfg: Config{ArrivalRate: 1, Horizon: 1, InitialUsers: -2}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 9
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestEventsSortedAndWithinHorizon(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 3
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no events generated")
	}
	if !sort.SliceIsSorted(events, func(i, j int) bool { return events[i].Time < events[j].Time }) {
		t.Error("events not time-sorted")
	}
	for _, ev := range events {
		if ev.Time < 0 || ev.Time > cfg.Horizon {
			t.Errorf("event outside horizon: %+v", ev)
		}
	}
}

func TestArrivalIDsFreshAndSequential(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 4
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	next := cfg.InitialUsers
	for _, ev := range events {
		if ev.Kind != Arrival {
			continue
		}
		if ev.UserID != next {
			t.Fatalf("arrival ID %d, want %d", ev.UserID, next)
		}
		next++
	}
}

func TestDeparturesOnlyRemovePresent(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Seed = 5
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[int]bool)
	for i := 0; i < cfg.InitialUsers; i++ {
		present[i] = true
	}
	for _, ev := range events {
		switch ev.Kind {
		case Arrival:
			if present[ev.UserID] {
				t.Fatalf("arrival of already-present user %d", ev.UserID)
			}
			present[ev.UserID] = true
		case Departure:
			if !present[ev.UserID] {
				t.Fatalf("departure of absent user %d", ev.UserID)
			}
			delete(present, ev.UserID)
		}
	}
}

func TestGrowthMatchesPaperTrajectory(t *testing.T) {
	// Arrival rate 3, departure rate 1: expected drift +2 per unit time,
	// so with 16-unit epochs the population should track 36 → ~68 → ~100,
	// within generous stochastic slack. This is the paper's Fig 6b shape.
	cfg := DefaultConfig()
	cfg.Seed = 6
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	epochs, err := Epochs(cfg.InitialUsers, events, 16, cfg.Horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 {
		t.Fatalf("got %d epochs, want 3", len(epochs))
	}
	wants := []float64{68, 100, 132}
	for i, e := range epochs {
		if math.Abs(float64(e.EndPopulation)-wants[i]) > 25 {
			t.Errorf("epoch %d population %d, want ≈%v", i, e.EndPopulation, wants[i])
		}
		if e.Arrivals == 0 {
			t.Errorf("epoch %d has no arrivals", i)
		}
	}
}

func TestPopulation(t *testing.T) {
	events := []Event{
		{Time: 1, Kind: Arrival, UserID: 10},
		{Time: 2, Kind: Arrival, UserID: 11},
		{Time: 3, Kind: Departure, UserID: 10},
	}
	tests := []struct {
		t    float64
		want int
	}{
		{0, 5},
		{1, 6},
		{2.5, 7},
		{3, 6},
		{99, 6},
	}
	for _, tt := range tests {
		if got := Population(5, events, tt.t); got != tt.want {
			t.Errorf("Population(t=%v) = %d, want %d", tt.t, got, tt.want)
		}
	}
}

func TestEpochs(t *testing.T) {
	events := []Event{
		{Time: 0.5, Kind: Arrival, UserID: 3},
		{Time: 1.5, Kind: Departure, UserID: 0},
		{Time: 2.5, Kind: Arrival, UserID: 4},
	}
	epochs, err := Epochs(3, events, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(epochs) != 3 {
		t.Fatalf("got %d epochs", len(epochs))
	}
	if epochs[0].Arrivals != 1 || epochs[0].EndPopulation != 4 {
		t.Errorf("epoch 0 = %+v", epochs[0])
	}
	if epochs[1].Departures != 1 || epochs[1].EndPopulation != 3 {
		t.Errorf("epoch 1 = %+v", epochs[1])
	}
	if epochs[2].Arrivals != 1 || epochs[2].EndPopulation != 4 {
		t.Errorf("epoch 2 = %+v", epochs[2])
	}
}

func TestEpochsEventFreeCarryPopulation(t *testing.T) {
	epochs, err := Epochs(7, nil, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, e := range epochs {
		if e.EndPopulation != 7 {
			t.Errorf("epoch %d population %d, want 7", i, e.EndPopulation)
		}
	}
}

func TestEpochsErrors(t *testing.T) {
	if _, err := Epochs(1, nil, 0, 1); err == nil {
		t.Error("zero epoch length: want error")
	}
	if _, err := Epochs(1, nil, 1, 0); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestEventKindString(t *testing.T) {
	if Arrival.String() != "arrival" || Departure.String() != "departure" {
		t.Error("EventKind strings wrong")
	}
	if EventKind(9).String() != "EventKind(9)" {
		t.Errorf("unknown kind string = %q", EventKind(9).String())
	}
}

func TestPureDeathProcess(t *testing.T) {
	cfg := Config{
		DepartureRate: 5,
		Horizon:       100,
		InitialUsers:  10,
		Seed:          8,
	}
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	departures := 0
	for _, ev := range events {
		if ev.Kind == Arrival {
			t.Fatal("arrival in pure-death process")
		}
		departures++
	}
	if departures != 10 {
		t.Errorf("departures = %d, want 10 (population must not go negative)", departures)
	}
}

// TestDwellModeValidation pins the dwell/departure exclusivity and shape
// preconditions.
func TestDwellModeValidation(t *testing.T) {
	bad := []Config{
		{ArrivalRate: 1, DepartureRate: 1, DwellRate: 1, Horizon: 10},
		{ArrivalRate: 1, DwellRate: -1, Horizon: 10},
		{DwellRate: 0, DepartureRate: 0, ArrivalRate: 0, Horizon: 10},
		{RateShape: Diurnal(24, 0.2), DepartureRate: 1, Horizon: 10},
	}
	for i, cfg := range bad {
		if _, err := Generate(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

// TestDwellDeparturesAreConsistent checks the M/M/∞ trace invariants:
// every departure names a user that arrived (or was initial) and is still
// present, each user departs at most once, and the mean population over
// the second half of the horizon sits near ArrivalRate/DwellRate.
func TestDwellDeparturesAreConsistent(t *testing.T) {
	cfg := Config{
		ArrivalRate:  50,
		DwellRate:    5, // steady state ≈ 10 users
		Horizon:      200,
		InitialUsers: 10,
		Seed:         99,
	}
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	present := make(map[int]bool, cfg.InitialUsers)
	for i := 0; i < cfg.InitialUsers; i++ {
		present[i] = true
	}
	departed := make(map[int]bool)
	for _, ev := range events {
		switch ev.Kind {
		case Arrival:
			if present[ev.UserID] || departed[ev.UserID] {
				t.Fatalf("user %d arrived twice", ev.UserID)
			}
			present[ev.UserID] = true
		case Departure:
			if !present[ev.UserID] {
				t.Fatalf("user %d departed while absent", ev.UserID)
			}
			if departed[ev.UserID] {
				t.Fatalf("user %d departed twice", ev.UserID)
			}
			delete(present, ev.UserID)
			departed[ev.UserID] = true
		}
	}
	// Time-averaged population over the settled second half.
	sum, samples := 0.0, 0
	for ts := cfg.Horizon / 2; ts <= cfg.Horizon; ts += 1 {
		sum += float64(Population(cfg.InitialUsers, events, ts))
		samples++
	}
	mean := sum / float64(samples)
	want := cfg.ArrivalRate / cfg.DwellRate
	if mean < want*0.7 || mean > want*1.3 {
		t.Errorf("steady-state population %.1f, want ≈ %.1f (M/M/∞)", mean, want)
	}
}

// TestDiurnalShapeThinsArrivals checks the inhomogeneous generator: with
// a day/night shape the peak half-period must see substantially more
// arrivals than the trough, and the total must land near the shape's
// integral, not the peak rate.
func TestDiurnalShapeThinsArrivals(t *testing.T) {
	const period = 24.0
	cfg := Config{
		ArrivalRate: 40,
		DwellRate:   2,
		RateShape:   Diurnal(period, 0.1),
		Horizon:     period,
		Seed:        7,
	}
	events, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	trough, peak := 0, 0 // quarters around t=0/24 vs t=12
	total := 0
	for _, ev := range events {
		if ev.Kind != Arrival {
			continue
		}
		total++
		switch {
		case ev.Time < period/4 || ev.Time > 3*period/4:
			trough++
		default:
			peak++
		}
	}
	if peak <= 2*trough {
		t.Errorf("diurnal shape: %d peak-half arrivals vs %d trough-half, want a clear day/night ratio", peak, trough)
	}
	// Integral of the shape over one period = floor + (1-floor)/2 = 0.55.
	want := 0.55 * cfg.ArrivalRate * period
	if f := float64(total); f < want*0.7 || f > want*1.3 {
		t.Errorf("total arrivals %d, want ≈ %.0f from the thinned rate", total, want)
	}

	// Same seed, same shape: byte-for-byte deterministic.
	again, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, again) {
		t.Error("shaped trace not deterministic for a fixed seed")
	}
}
