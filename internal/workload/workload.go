// Package workload generates user arrival/departure traces for the
// dynamic experiments. The paper's simulation (§V-A) drives association
// requests with Poisson arrivals (rate 3) and departures (rate 1); §V-E
// evaluates WOLT at the end of every epoch as the population grows
// (36 → 66 → 102 users across epochs).
package workload

import (
	"fmt"
	"math"

	"github.com/plcwifi/wolt/internal/eventsim"
	"github.com/plcwifi/wolt/internal/seed"
)

// EventKind distinguishes arrivals from departures.
type EventKind int

const (
	// Arrival is a new user joining the network.
	Arrival EventKind = iota + 1
	// Departure is an existing user leaving.
	Departure
)

func (k EventKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Departure:
		return "departure"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one churn event.
type Event struct {
	Time   float64
	Kind   EventKind
	UserID int
}

// Config parameterizes trace generation.
type Config struct {
	// ArrivalRate is the Poisson arrival rate (users per unit time).
	// The paper uses 3.
	ArrivalRate float64
	// DepartureRate is the Poisson departure rate (departures per unit
	// time while at least one user is present). The paper uses 1.
	DepartureRate float64
	// Horizon is the simulated duration.
	Horizon float64
	// InitialUsers are present at time 0 (IDs 0..InitialUsers-1).
	InitialUsers int
	Seed         int64
}

// DefaultConfig mirrors the paper's setting: arrival rate 3, departure
// rate 1. With epoch length 16 the expected net growth is +32 users per
// epoch, matching the paper's 36 → 66 → 102 trajectory.
func DefaultConfig() Config {
	return Config{
		ArrivalRate:   3,
		DepartureRate: 1,
		Horizon:       48,
		InitialUsers:  36,
	}
}

func (c Config) validate() error {
	if c.ArrivalRate < 0 || c.DepartureRate < 0 {
		return fmt.Errorf("workload: negative rate in %+v", c)
	}
	if c.ArrivalRate == 0 && c.DepartureRate == 0 {
		return fmt.Errorf("workload: both rates zero")
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("workload: non-positive horizon %v", c.Horizon)
	}
	if c.InitialUsers < 0 {
		return fmt.Errorf("workload: negative initial users %d", c.InitialUsers)
	}
	return nil
}

// Generate builds a churn trace. Arrivals carry fresh sequential user IDs
// (continuing after the initial users); each departure removes a
// uniformly random present user. Deterministic for a given seed.
func Generate(cfg Config) ([]Event, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := seed.Root(cfg.Seed)
	sim := eventsim.New()

	var (
		events  []Event
		present []int
		nextID  = cfg.InitialUsers
	)
	for i := 0; i < cfg.InitialUsers; i++ {
		present = append(present, i)
	}

	exp := func(rate float64) float64 {
		return rng.ExpFloat64() / rate
	}

	var scheduleArrival, scheduleDeparture func(sim *eventsim.Sim)
	scheduleArrival = func(s *eventsim.Sim) {
		if cfg.ArrivalRate <= 0 {
			return
		}
		if err := s.Schedule(exp(cfg.ArrivalRate), func(s2 *eventsim.Sim) {
			events = append(events, Event{Time: s2.Now(), Kind: Arrival, UserID: nextID})
			present = append(present, nextID)
			nextID++
			scheduleArrival(s2)
		}); err != nil {
			panic(err) // delays are non-negative by construction
		}
	}
	scheduleDeparture = func(s *eventsim.Sim) {
		if cfg.DepartureRate <= 0 {
			return
		}
		if err := s.Schedule(exp(cfg.DepartureRate), func(s2 *eventsim.Sim) {
			if len(present) > 0 {
				k := rng.Intn(len(present))
				events = append(events, Event{Time: s2.Now(), Kind: Departure, UserID: present[k]})
				present[k] = present[len(present)-1]
				present = present[:len(present)-1]
			}
			scheduleDeparture(s2)
		}); err != nil {
			panic(err)
		}
	}
	scheduleArrival(sim)
	scheduleDeparture(sim)
	sim.RunUntil(cfg.Horizon)

	return events, nil
}

// Population replays a trace and returns the number of users present just
// after time t (initial population included).
func Population(initial int, events []Event, t float64) int {
	n := initial
	for _, ev := range events {
		if ev.Time > t {
			break
		}
		switch ev.Kind {
		case Arrival:
			n++
		case Departure:
			n--
		}
	}
	return n
}

// EpochStats summarizes churn within one epoch.
type EpochStats struct {
	Arrivals   int
	Departures int
	// EndPopulation is the population at the end of the epoch.
	EndPopulation int
}

// Epochs splits a trace into consecutive epochs of the given length and
// tallies per-epoch churn. The number of epochs is ceil(horizon/epochLen)
// inferred from the last event (at least one).
func Epochs(initial int, events []Event, epochLen, horizon float64) ([]EpochStats, error) {
	if epochLen <= 0 {
		return nil, fmt.Errorf("workload: non-positive epoch length %v", epochLen)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon %v", horizon)
	}
	numEpochs := int(math.Ceil(horizon / epochLen))
	out := make([]EpochStats, numEpochs)
	pop := initial
	for _, ev := range events {
		idx := int(ev.Time / epochLen)
		if idx >= numEpochs {
			break
		}
		switch ev.Kind {
		case Arrival:
			out[idx].Arrivals++
			pop++
		case Departure:
			out[idx].Departures++
			pop--
		}
		out[idx].EndPopulation = pop
	}
	// Carry populations through event-free epochs.
	pop = initial
	for i := range out {
		if out[i].Arrivals == 0 && out[i].Departures == 0 {
			out[i].EndPopulation = pop
		}
		pop = out[i].EndPopulation
	}
	return out, nil
}
