// Package workload generates user arrival/departure traces for the
// dynamic experiments. The paper's simulation (§V-A) drives association
// requests with Poisson arrivals (rate 3) and departures (rate 1); §V-E
// evaluates WOLT at the end of every epoch as the population grows
// (36 → 66 → 102 users across epochs).
package workload

import (
	"fmt"
	"math"

	"github.com/plcwifi/wolt/internal/eventsim"
	"github.com/plcwifi/wolt/internal/seed"
)

// EventKind distinguishes arrivals from departures.
type EventKind int

const (
	// Arrival is a new user joining the network.
	Arrival EventKind = iota + 1
	// Departure is an existing user leaving.
	Departure
)

func (k EventKind) String() string {
	switch k {
	case Arrival:
		return "arrival"
	case Departure:
		return "departure"
	default:
		return fmt.Sprintf("EventKind(%d)", int(k))
	}
}

// Event is one churn event.
type Event struct {
	Time   float64
	Kind   EventKind
	UserID int
}

// Config parameterizes trace generation.
type Config struct {
	// ArrivalRate is the Poisson arrival rate (users per unit time).
	// The paper uses 3. With RateShape set it is the PEAK rate; the
	// instantaneous rate is ArrivalRate*RateShape(t).
	ArrivalRate float64
	// DepartureRate is the Poisson departure rate (departures per unit
	// time while at least one user is present, removing a uniformly
	// random present user). The paper uses 1. Mutually exclusive with
	// DwellRate.
	DepartureRate float64
	// DwellRate gives each user an independent Exp(DwellRate) dwell time
	// from its arrival (initial users dwell from time 0) — the M/M/∞
	// model whose steady-state population is ArrivalRate/DwellRate. The
	// city harness uses this form: per-user dwell makes departures
	// open-loop (no global coupling through the present-set), which is
	// how real clients behave. Mutually exclusive with DepartureRate.
	DwellRate float64
	// RateShape modulates the arrival rate over time (diurnal load
	// curves): the instantaneous rate is ArrivalRate*RateShape(t).
	// The shape must be deterministic and stay within [0, 1] (arrivals
	// are generated at the peak rate and thinned — values above 1 are
	// clamped, silently flattening the curve). Nil means constant rate.
	RateShape func(t float64) float64
	// Horizon is the simulated duration.
	Horizon float64
	// InitialUsers are present at time 0 (IDs 0..InitialUsers-1).
	InitialUsers int
	Seed         int64
}

// Diurnal returns a sinusoidal day/night RateShape with the given period:
// 1 at mid-period (afternoon peak), floor at the period boundaries
// (night), shaped as floor + (1-floor)·(1-cos(2πt/period))/2.
func Diurnal(period, floor float64) func(float64) float64 {
	return func(t float64) float64 {
		return floor + (1-floor)*(1-math.Cos(2*math.Pi*t/period))/2
	}
}

// DefaultConfig mirrors the paper's setting: arrival rate 3, departure
// rate 1. With epoch length 16 the expected net growth is +32 users per
// epoch, matching the paper's 36 → 66 → 102 trajectory.
func DefaultConfig() Config {
	return Config{
		ArrivalRate:   3,
		DepartureRate: 1,
		Horizon:       48,
		InitialUsers:  36,
	}
}

func (c Config) validate() error {
	if c.ArrivalRate < 0 || c.DepartureRate < 0 || c.DwellRate < 0 {
		return fmt.Errorf("workload: negative rate in %+v", c)
	}
	if c.ArrivalRate == 0 && c.DepartureRate == 0 && c.DwellRate == 0 {
		return fmt.Errorf("workload: all rates zero")
	}
	if c.DepartureRate > 0 && c.DwellRate > 0 {
		return fmt.Errorf("workload: DepartureRate and DwellRate are mutually exclusive")
	}
	if c.RateShape != nil && c.ArrivalRate <= 0 {
		return fmt.Errorf("workload: RateShape set with no arrival rate")
	}
	if c.Horizon <= 0 {
		return fmt.Errorf("workload: non-positive horizon %v", c.Horizon)
	}
	if c.InitialUsers < 0 {
		return fmt.Errorf("workload: negative initial users %d", c.InitialUsers)
	}
	return nil
}

// Generate builds a churn trace. Arrivals carry fresh sequential user IDs
// (continuing after the initial users). Departures follow one of two
// models: DepartureRate removes a uniformly random present user at a
// network-level Poisson rate (the paper's §V-A setting), while DwellRate
// expires each user independently after an exponential dwell (M/M/∞).
// With RateShape set, arrivals are generated at the peak rate and thinned
// to the instantaneous one (Lewis-Shedler). Deterministic for a given
// seed: every draw comes from one root stream consumed in event order,
// and eventsim breaks time ties FIFO.
func Generate(cfg Config) ([]Event, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	rng := seed.Root(cfg.Seed)
	sim := eventsim.New()

	var (
		events  []Event
		present []int
		nextID  = cfg.InitialUsers
	)

	exp := func(rate float64) float64 {
		return rng.ExpFloat64() / rate
	}

	var scheduleDwell func(s *eventsim.Sim, id int)
	scheduleDwell = func(s *eventsim.Sim, id int) {
		if err := s.Schedule(exp(cfg.DwellRate), func(s2 *eventsim.Sim) {
			events = append(events, Event{Time: s2.Now(), Kind: Departure, UserID: id})
		}); err != nil {
			panic(err) // delays are non-negative by construction
		}
	}

	for i := 0; i < cfg.InitialUsers; i++ {
		if cfg.DwellRate > 0 {
			scheduleDwell(sim, i)
		} else {
			present = append(present, i)
		}
	}

	var scheduleArrival, scheduleDeparture func(sim *eventsim.Sim)
	scheduleArrival = func(s *eventsim.Sim) {
		if cfg.ArrivalRate <= 0 {
			return
		}
		if err := s.Schedule(exp(cfg.ArrivalRate), func(s2 *eventsim.Sim) {
			// Lewis-Shedler thinning: candidate arrivals run at the peak
			// rate; each survives with probability shape(t). Only shaped
			// runs consume the acceptance draw, so unshaped traces match
			// the pre-shape generator byte for byte.
			accept := true
			if cfg.RateShape != nil {
				p := cfg.RateShape(s2.Now())
				if p < 1 {
					if p < 0 {
						p = 0
					}
					accept = rng.Float64() < p
				}
			}
			if accept {
				events = append(events, Event{Time: s2.Now(), Kind: Arrival, UserID: nextID})
				if cfg.DwellRate > 0 {
					scheduleDwell(s2, nextID)
				} else {
					present = append(present, nextID)
				}
				nextID++
			}
			scheduleArrival(s2)
		}); err != nil {
			panic(err)
		}
	}
	scheduleDeparture = func(s *eventsim.Sim) {
		if cfg.DepartureRate <= 0 {
			return
		}
		if err := s.Schedule(exp(cfg.DepartureRate), func(s2 *eventsim.Sim) {
			if len(present) > 0 {
				k := rng.Intn(len(present))
				events = append(events, Event{Time: s2.Now(), Kind: Departure, UserID: present[k]})
				present[k] = present[len(present)-1]
				present = present[:len(present)-1]
			}
			scheduleDeparture(s2)
		}); err != nil {
			panic(err)
		}
	}
	scheduleArrival(sim)
	scheduleDeparture(sim)
	sim.RunUntil(cfg.Horizon)

	return events, nil
}

// Population replays a trace and returns the number of users present just
// after time t (initial population included).
func Population(initial int, events []Event, t float64) int {
	n := initial
	for _, ev := range events {
		if ev.Time > t {
			break
		}
		switch ev.Kind {
		case Arrival:
			n++
		case Departure:
			n--
		}
	}
	return n
}

// EpochStats summarizes churn within one epoch.
type EpochStats struct {
	Arrivals   int
	Departures int
	// EndPopulation is the population at the end of the epoch.
	EndPopulation int
}

// Epochs splits a trace into consecutive epochs of the given length and
// tallies per-epoch churn. The number of epochs is ceil(horizon/epochLen)
// inferred from the last event (at least one).
func Epochs(initial int, events []Event, epochLen, horizon float64) ([]EpochStats, error) {
	if epochLen <= 0 {
		return nil, fmt.Errorf("workload: non-positive epoch length %v", epochLen)
	}
	if horizon <= 0 {
		return nil, fmt.Errorf("workload: non-positive horizon %v", horizon)
	}
	numEpochs := int(math.Ceil(horizon / epochLen))
	out := make([]EpochStats, numEpochs)
	pop := initial
	for _, ev := range events {
		idx := int(ev.Time / epochLen)
		if idx >= numEpochs {
			break
		}
		switch ev.Kind {
		case Arrival:
			out[idx].Arrivals++
			pop++
		case Departure:
			out[idx].Departures++
			pop--
		}
		out[idx].EndPopulation = pop
	}
	// Carry populations through event-free epochs.
	pop = initial
	for i := range out {
		if out[i].Arrivals == 0 && out[i].Departures == 0 {
			out[i].EndPopulation = pop
		}
		pop = out[i].EndPopulation
	}
	return out, nil
}
