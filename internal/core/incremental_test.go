package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/stats"
)

var redistribute = model.Options{Redistribute: true}

func TestIncrementalValidation(t *testing.T) {
	n := fig3Network()
	if _, err := AssignIncremental(n, model.Assignment{0}, 1, Options{}, redistribute); err == nil {
		t.Error("short prev: want error")
	}
	if _, err := AssignIncremental(&model.Network{}, nil, 1, Options{}, redistribute); err == nil {
		t.Error("invalid network: want error")
	}
}

func TestIncrementalZeroBudgetOnlyPlacesArrivals(t *testing.T) {
	n := fig3Network()
	// Both users currently on extender 0 (the RSSI state); zero budget.
	prev := model.Assignment{0, 0}
	res, err := AssignIncremental(n, prev, 0, Options{}, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) != 0 {
		t.Errorf("moved %v with zero budget", res.Moves)
	}
	if res.Assign.Diff(prev) != 0 {
		t.Errorf("assignment changed: %v", res.Assign)
	}
	if math.Abs(res.AchievedAggregate-240.0/11.0) > 1e-9 {
		t.Errorf("achieved = %v, want RSSI's 21.8", res.AchievedAggregate)
	}
	if math.Abs(res.TargetAggregate-40) > 1e-9 {
		t.Errorf("target = %v, want 40", res.TargetAggregate)
	}
}

func TestIncrementalArrivalsAreFree(t *testing.T) {
	n := fig3Network()
	prev := model.Assignment{model.Unassigned, model.Unassigned}
	res, err := AssignIncremental(n, prev, 0, Options{}, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Placed) != 2 {
		t.Errorf("placed = %v, want both users", res.Placed)
	}
	if len(res.Moves) != 0 {
		t.Errorf("moves = %v, want none", res.Moves)
	}
	// Arrivals land on the WOLT target directly: aggregate 40.
	if math.Abs(res.AchievedAggregate-40) > 1e-9 {
		t.Errorf("achieved = %v, want 40", res.AchievedAggregate)
	}
}

func TestIncrementalUnlimitedBudgetReachesTarget(t *testing.T) {
	n := fig3Network()
	res, err := AssignIncremental(n, model.Assignment{0, 0}, -1, Options{}, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	if res.AchievedAggregate < res.TargetAggregate-1e-9 {
		t.Errorf("achieved %v below target %v with unlimited budget",
			res.AchievedAggregate, res.TargetAggregate)
	}
}

func TestIncrementalMonotoneInBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 10; trial++ {
		n := randomNetwork(rng, 4, 12)
		prev, err := randomValid(n, rng)
		if err != nil {
			t.Fatal(err)
		}
		prevAgg := model.Aggregate(n, prev, redistribute)
		last := prevAgg
		for budget := 0; budget <= 6; budget++ {
			res, err := AssignIncremental(n, prev, budget, Options{}, redistribute)
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Moves) > budget {
				t.Fatalf("budget %d: %d moves", budget, len(res.Moves))
			}
			if res.AchievedAggregate < last-1e-9 {
				t.Fatalf("trial %d: aggregate decreased with budget %d: %v -> %v",
					trial, budget, last, res.AchievedAggregate)
			}
			last = res.AchievedAggregate
		}
		if last < prevAgg-1e-9 {
			t.Fatalf("incremental made things worse: %v -> %v", prevAgg, last)
		}
	}
}

func TestIncrementalEveryMoveHelps(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := randomNetwork(rng, 3, 10)
	prev, err := randomValid(n, rng)
	if err != nil {
		t.Fatal(err)
	}
	res, err := AssignIncremental(n, prev, -1, Options{}, redistribute)
	if err != nil {
		t.Fatal(err)
	}
	// Replay the moves one at a time: the aggregate must be
	// non-decreasing after each.
	assign := prev.Clone()
	agg := model.Aggregate(n, assign, redistribute)
	targetRes, err := Assign(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, user := range res.Moves {
		assign[user] = targetRes.Assign[user]
		next := model.Aggregate(n, assign, redistribute)
		if next < agg-1e-9 {
			t.Fatalf("move of user %d decreased aggregate %v -> %v", user, agg, next)
		}
		agg = next
	}
}

func TestProportionalFairTradeoff(t *testing.T) {
	// The fair variant should give up little aggregate throughput and
	// not be less fair (Jain) than plain WOLT on random instances,
	// on average.
	rng := rand.New(rand.NewSource(44))
	var aggPlain, aggFair, jainPlain, jainFair float64
	const trials = 15
	for trial := 0; trial < trials; trial++ {
		n := randomNetwork(rng, 4, 16)
		plain, err := Assign(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fair, err := AssignProportionalFair(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		evalPlain, err := model.Evaluate(n, plain.Assign, redistribute)
		if err != nil {
			t.Fatal(err)
		}
		evalFair, err := model.Evaluate(n, fair.Assign, redistribute)
		if err != nil {
			t.Fatal(err)
		}
		aggPlain += evalPlain.Aggregate
		aggFair += evalFair.Aggregate
		jainPlain += stats.JainIndex(evalPlain.PerUser)
		jainFair += stats.JainIndex(evalFair.PerUser)
	}
	if jainFair < jainPlain {
		t.Errorf("fair variant less fair on average: Jain %v vs %v",
			jainFair/trials, jainPlain/trials)
	}
	if aggFair < 0.6*aggPlain {
		t.Errorf("fair variant sacrificed too much throughput: %v vs %v",
			aggFair/trials, aggPlain/trials)
	}
}

func TestProportionalFairCompleteAssignment(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := randomNetwork(rng, 3, 9)
	res, err := AssignProportionalFair(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, j := range res.Assign {
		if j == model.Unassigned || n.WiFiRates[i][j] <= 0 {
			t.Fatalf("user %d invalidly assigned to %d", i, j)
		}
	}
	// Phase I users keep their seats.
	for _, i := range res.PhaseIUsers {
		if res.Assign[i] == model.Unassigned {
			t.Fatalf("phase-I user %d lost its seat", i)
		}
	}
}

func TestProportionalFairFewUsers(t *testing.T) {
	// |U| <= |A|: the fair variant degenerates to plain Phase I.
	rng := rand.New(rand.NewSource(3))
	n := randomNetwork(rng, 5, 3)
	res, err := AssignProportionalFair(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign.NumAssigned() != 3 {
		t.Errorf("assigned %d users, want 3", res.Assign.NumAssigned())
	}
}

func TestPhase1AuctionMatchesHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(66))
	for trial := 0; trial < 20; trial++ {
		n := randomNetwork(rng, 3+rng.Intn(3), 6+rng.Intn(10))
		h, err := Assign(n, Options{Phase1: Phase1Hungarian})
		if err != nil {
			t.Fatal(err)
		}
		a, err := Assign(n, Options{Phase1: Phase1Auction})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(h.PhaseIUtility-a.PhaseIUtility) > 1e-6 {
			t.Fatalf("trial %d: phase-I utilities differ: hungarian %v, auction %v",
				trial, h.PhaseIUtility, a.PhaseIUtility)
		}
	}
	if _, err := Assign(fig3Network(), Options{Phase1: Phase1Solver(9)}); err == nil {
		t.Error("unknown phase-I solver: want error")
	}
}

// randomValid draws a random complete assignment over reachable extenders.
func randomValid(n *model.Network, rng *rand.Rand) (model.Assignment, error) {
	assign := make(model.Assignment, n.NumUsers())
	for i := range assign {
		var reachable []int
		for j, r := range n.WiFiRates[i] {
			if r > 0 {
				reachable = append(reachable, j)
			}
		}
		assign[i] = reachable[rng.Intn(len(reachable))]
	}
	return assign, nil
}
