package core

import (
	"fmt"
	"math"

	"github.com/plcwifi/wolt/internal/model"
)

// IncrementalResult is the outcome of a budgeted re-association.
type IncrementalResult struct {
	// Assign is the new association.
	Assign model.Assignment
	// Moves lists the already-associated users that changed extender, in
	// the order the moves were applied.
	Moves []int
	// Placed lists previously unassociated users given an extender
	// (arrivals; these do not count against the budget).
	Placed []int
	// TargetAggregate is the aggregate throughput of the unconstrained
	// WOLT association; AchievedAggregate is the budgeted result's.
	TargetAggregate   float64
	AchievedAggregate float64
	// Target carries the unconstrained WOLT solve the moves steer
	// toward, including its phase diagnostics.
	Target *Result
}

// AssignIncremental moves the network toward the full WOLT association
// while re-associating at most budget existing users — the knob the
// paper's Fig 6c motivates: full recomputation may move many users, and
// every move disrupts a client's traffic.
//
// New users (prev[i] == Unassigned) are always placed and do not consume
// budget. Among the existing users whose WOLT target differs from their
// current extender, moves are applied greedily by marginal aggregate
// gain under the evaluation model, stopping at the budget or when no
// remaining move improves the aggregate. A negative budget means
// unlimited (equivalent to full recomputation restricted to
// target-directed moves).
func AssignIncremental(n *model.Network, prev model.Assignment, budget int, opts Options, evalOpts model.Options) (*IncrementalResult, error) {
	return AssignIncrementalWith(nil, nil, n, prev, budget, opts, evalOpts)
}

// AssignIncrementalWith is AssignIncremental with optional caller-provided
// scratches: cs backs the inner unconstrained WOLT solve and es the
// candidate-move evaluations. Nil scratches behave exactly like
// AssignIncremental.
func AssignIncrementalWith(cs *Scratch, es *model.EvalScratch, n *model.Network, prev model.Assignment, budget int, opts Options, evalOpts model.Options) (*IncrementalResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(prev) != n.NumUsers() {
		return nil, fmt.Errorf("core: previous assignment covers %d users, network has %d",
			len(prev), n.NumUsers())
	}

	target, err := AssignWith(cs, n, opts)
	if err != nil {
		return nil, err
	}
	res := &IncrementalResult{Assign: prev.Clone(), Target: target}

	// Arrivals go straight to their target (free).
	for i, j := range prev {
		if j == model.Unassigned {
			res.Assign[i] = target.Assign[i]
			res.Placed = append(res.Placed, i)
		}
	}

	// Candidate moves: existing users whose target differs.
	var candidates []int
	for i, j := range prev {
		if j != model.Unassigned && target.Assign[i] != j {
			candidates = append(candidates, i)
		}
	}

	// Only aggregates are read from the candidate evaluations, so one
	// scratch serves the whole greedy search without re-allocating the
	// evaluation buffers per candidate.
	if es == nil {
		es = &model.EvalScratch{}
	}
	current, err := model.EvaluateWith(es, n, res.Assign, evalOpts)
	if err != nil {
		return nil, err
	}
	currentAgg := current.Aggregate
	remaining := budget
	for remaining != 0 && len(candidates) > 0 {
		bestIdx, bestAgg := -1, currentAgg
		for idx, user := range candidates {
			old := res.Assign[user]
			res.Assign[user] = target.Assign[user]
			eval, err := model.EvaluateWith(es, n, res.Assign, evalOpts)
			res.Assign[user] = old
			if err != nil {
				return nil, err
			}
			if eval.Aggregate > bestAgg+1e-12 {
				bestIdx, bestAgg = idx, eval.Aggregate
			}
		}
		if bestIdx < 0 {
			break // no remaining single move helps
		}
		user := candidates[bestIdx]
		res.Assign[user] = target.Assign[user]
		res.Moves = append(res.Moves, user)
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		currentAgg = bestAgg
		if remaining > 0 {
			remaining--
		}
	}

	res.AchievedAggregate = currentAgg
	res.TargetAggregate = model.Aggregate(n, target.Assign, evalOpts)
	if math.IsNaN(res.TargetAggregate) {
		return nil, fmt.Errorf("core: target aggregate is NaN")
	}
	return res, nil
}
