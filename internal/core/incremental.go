package core

import (
	"fmt"
	"math"

	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
)

// assignWarm is the warm re-solve path: no target solve at all — the
// previous assignment seeds an anytime local search whose every state
// is already known valid, so the entire re-solve is O(probes) delta
// work. At enterprise scale that is the difference between ~1.25s
// (two-phase) and well under a millisecond (BENCH_anytime.json).
//
// The budget argument keeps its cold-path meaning (moves of existing
// users; negative = unlimited; arrivals free) and overrides
// warm.Search.Budget.Moves. Result fields that only exist relative to
// a target (Target, TargetAggregate as a distinct value) degrade
// gracefully: Target is nil and TargetAggregate equals
// AchievedAggregate.
func assignWarm(cs *Scratch, n *model.Network, prev model.Assignment, budget int, warm WarmOptions, evalOpts model.Options) (*IncrementalResult, error) {
	sopts := warm.Search
	sopts.Model = evalOpts
	switch {
	case budget > 0:
		sopts.Budget.Moves = budget
	case budget == 0:
		sopts.Budget.Moves = -1 // placement only
	default:
		sopts.Budget.Moves = 0 // unlimited
	}
	sr, err := cs.warm.Search(warm.Ctx, n, prev, warm.Method, sopts)
	if err != nil {
		return nil, err
	}
	res := &IncrementalResult{
		Assign:            sr.Assign,
		TargetAggregate:   sr.Aggregate,
		AchievedAggregate: sr.Aggregate,
		Evals:             sr.Attaches,
		DeltaProbes:       sr.Probes,
		Search:            sr,
	}
	for i, j := range prev {
		switch {
		case j == model.Unassigned && sr.Assign[i] != model.Unassigned:
			res.Placed = append(res.Placed, i)
		case j != model.Unassigned && sr.Assign[i] != j:
			res.Moves = append(res.Moves, i)
		}
	}
	return res, nil
}

// IncrementalResult is the outcome of a budgeted re-association.
type IncrementalResult struct {
	// Assign is the new association.
	Assign model.Assignment
	// Moves lists the already-associated users that changed extender, in
	// the order the moves were applied.
	Moves []int
	// Placed lists previously unassociated users given an extender
	// (arrivals; these do not count against the budget).
	Placed []int
	// TargetAggregate is the aggregate throughput of the unconstrained
	// WOLT association; AchievedAggregate is the budgeted result's.
	TargetAggregate   float64
	AchievedAggregate float64
	// Target carries the unconstrained WOLT solve the moves steer
	// toward, including its phase diagnostics.
	Target *Result
	// Evals counts full evaluator builds (DeltaEval attaches) and
	// DeltaProbes the O(Δ) candidate-move probes of the greedy
	// move-selection loop.
	Evals       int
	DeltaProbes int
	// Search carries the local-search diagnostics of the warm path
	// (Options.Warm): commits, improving-move counts, the best-so-far
	// trajectory and the stop reason. Nil on the cold target-directed
	// path.
	Search *localsearch.Result
}

// AssignIncremental moves the network toward the full WOLT association
// while re-associating at most budget existing users — the knob the
// paper's Fig 6c motivates: full recomputation may move many users, and
// every move disrupts a client's traffic.
//
// New users (prev[i] == Unassigned) are always placed and do not consume
// budget. Among the existing users whose WOLT target differs from their
// current extender, moves are applied greedily by marginal aggregate
// gain under the evaluation model, stopping at the budget or when no
// remaining move improves the aggregate. A negative budget means
// unlimited (equivalent to full recomputation restricted to
// target-directed moves).
func AssignIncremental(n *model.Network, prev model.Assignment, budget int, opts Options, evalOpts model.Options) (*IncrementalResult, error) {
	return AssignIncrementalWith(nil, n, prev, budget, opts, evalOpts)
}

// AssignIncrementalWith is AssignIncremental with an optional
// caller-provided Scratch backing both the inner unconstrained WOLT
// solve and the candidate-move delta evaluator. A nil scratch behaves
// exactly like AssignIncremental.
func AssignIncrementalWith(cs *Scratch, n *model.Network, prev model.Assignment, budget int, opts Options, evalOpts model.Options) (*IncrementalResult, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(prev) != n.NumUsers() {
		return nil, fmt.Errorf("core: previous assignment covers %d users, network has %d",
			len(prev), n.NumUsers())
	}

	if cs == nil {
		cs = &Scratch{}
	}
	if opts.Warm != nil {
		return assignWarm(cs, n, prev, budget, *opts.Warm, evalOpts)
	}
	target, err := AssignWith(cs, n, opts)
	if err != nil {
		return nil, err
	}
	res := &IncrementalResult{Assign: prev.Clone(), Target: target}

	// Arrivals go straight to their target (free).
	for i, j := range prev {
		if j == model.Unassigned {
			res.Assign[i] = target.Assign[i]
			res.Placed = append(res.Placed, i)
		}
	}

	// Candidate moves: existing users whose target differs.
	var candidates []int
	for i, j := range prev {
		if j != model.Unassigned && target.Assign[i] != j {
			candidates = append(candidates, i)
		}
	}

	// One delta-evaluator attach validates and builds the accumulators
	// for the post-arrival state; every candidate move is then an O(Δ)
	// probe and every applied move an O(Δ) commit, instead of a full
	// model evaluation each.
	d := &cs.delta
	evals0, probes0 := d.Evals, d.Probes
	if err := d.Attach(n, res.Assign, evalOpts); err != nil {
		return nil, err
	}
	// Moves are ranked by the evaluation options' lexicographic Score;
	// under the zero sum-rate utility both components are the aggregate
	// and the selection reduces bit-for-bit to the old aggregate-greedy
	// loop.
	currentScore := d.Score()
	remaining := budget
	for remaining != 0 && len(candidates) > 0 {
		bestIdx, bestScore := -1, currentScore
		for idx, user := range candidates {
			sc := d.ProbeMoveScore(user, res.Assign[user], target.Assign[user])
			if sc.BetterEps(bestScore, 1e-12) {
				bestIdx, bestScore = idx, sc
			}
		}
		if bestIdx < 0 {
			break // no remaining single move helps
		}
		user := candidates[bestIdx]
		d.Commit(user, res.Assign[user], target.Assign[user])
		res.Assign[user] = target.Assign[user]
		res.Moves = append(res.Moves, user)
		candidates = append(candidates[:bestIdx], candidates[bestIdx+1:]...)
		currentScore = bestScore
		if remaining > 0 {
			remaining--
		}
	}

	res.Evals = d.Evals - evals0
	res.DeltaProbes = d.Probes - probes0
	res.AchievedAggregate = currentScore.Tie
	// The network was validated above and target.Assign was produced by
	// AssignWith against this same network, so the full evaluation can
	// skip re-validating the pair (model.Options.SkipValidate contract).
	targetOpts := evalOpts
	targetOpts.SkipValidate = true
	res.TargetAggregate = model.Aggregate(n, target.Assign, targetOpts)
	if math.IsNaN(res.TargetAggregate) {
		return nil, fmt.Errorf("core: target aggregate is NaN")
	}
	return res, nil
}
