package core

import (
	"fmt"
	"runtime"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/nlp"
	"github.com/plcwifi/wolt/internal/seed"
)

// benchNetwork builds a paper-scale enterprise instance: dense enough
// that Phase II dominates, sparse enough to exercise the reachability
// handling.
func benchNetwork(users, extenders int) *model.Network {
	rng := seed.Root(2020)
	steps := []float64{6, 9, 12, 18, 24, 36, 48, 54}
	n := &model.Network{
		WiFiRates: make([][]float64, users),
		PLCCaps:   make([]float64, extenders),
	}
	for j := range n.PLCCaps {
		n.PLCCaps[j] = 300 + 500*rng.Float64()
	}
	for i := range n.WiFiRates {
		n.WiFiRates[i] = make([]float64, extenders)
		reachable := false
		for j := range n.WiFiRates[i] {
			if rng.Float64() < 0.5 {
				n.WiFiRates[i][j] = steps[rng.Intn(len(steps))]
				reachable = true
			}
		}
		if !reachable {
			n.WiFiRates[i][rng.Intn(extenders)] = steps[rng.Intn(len(steps))]
		}
	}
	return n
}

// BenchmarkLargeSolve measures one full WOLT solve (Phase I Hungarian +
// deterministic-parallel Phase II) on a 2k-user, 32-extender instance at
// one worker vs every core. Results are bit-identical across the two
// (see TestProjectedGradientWorkerBitIdentity); only wall-clock differs.
func BenchmarkLargeSolve(b *testing.B) {
	n := benchNetwork(2000, 32)
	for _, workers := range []int{1, runtime.NumCPU()} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			var ws Scratch
			opts := Options{NLP: nlp.Options{Workers: workers}}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := AssignWith(&ws, n, opts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
