package core

import "github.com/plcwifi/wolt/internal/model"

// AssignProportionalFair is the fairness extension of WOLT: Phase I is
// unchanged (it seeds every extender with one well-matched user), but
// Phase II places the remaining users to maximize Σ_i log(throughput_i)
// instead of Σ_j T_WiFi_j. Under throughput-fair WiFi sharing every user
// on extender j receives 1/S_j, so the objective is -Σ_j N_j·ln(S_j).
//
// The paper optimizes efficiency and accepts the fairness that falls out
// (§V-D); this variant makes the efficiency/fairness trade-off explicit
// and is benchmarked against plain Assign in BenchmarkFairnessVariant.
// It is now a fixed point of the pluggable utility machinery — the
// α=1 member of Options.Utility over the coordinate Phase II solver —
// kept as a named entry point for its callers and docs; the general
// family (any α, plus max-min) goes through Options.Utility directly.
func AssignProportionalFair(n *model.Network, opts Options) (*Result, error) {
	opts.Utility = model.ProportionalFairness()
	opts.Solver = Phase2Coordinate
	return Assign(n, opts)
}
