package core

import (
	"fmt"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/nlp"
)

// AssignProportionalFair is the fairness extension of WOLT: Phase I is
// unchanged (it seeds every extender with one well-matched user), but
// Phase II places the remaining users to maximize Σ_i log(throughput_i)
// instead of Σ_j T_WiFi_j. Under throughput-fair WiFi sharing every user
// on extender j receives 1/S_j, so the objective is -Σ_j N_j·ln(S_j).
//
// The paper optimizes efficiency and accepts the fairness that falls out
// (§V-D); this variant makes the efficiency/fairness trade-off explicit
// and is benchmarked against plain Assign in BenchmarkFairnessVariant.
func AssignProportionalFair(n *model.Network, opts Options) (*Result, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.NumUsers() == 0 {
		return &Result{Assign: model.Assignment{}}, nil
	}

	// Phase I: identical to Assign.
	plain := opts
	plain.Solver = Phase2Coordinate
	base, err := Assign(n, plain)
	if err != nil {
		return nil, err
	}
	if len(base.PhaseIUsers) == n.NumUsers() {
		return base, nil
	}

	// Rebuild the Phase I pinning and run the proportional-fair Phase II.
	fixed := make(model.Assignment, n.NumUsers())
	for i := range fixed {
		fixed[i] = model.Unassigned
	}
	for _, i := range base.PhaseIUsers {
		fixed[i] = base.Assign[i]
	}
	phase2Start := time.Now()
	sol, err := nlp.SolveCoordinateWith(
		nlp.Problem{Rates: n.WiFiRates, Fixed: fixed},
		nlp.ProportionalFair,
	)
	if err != nil {
		return nil, fmt.Errorf("fair phase II: %w", err)
	}
	return &Result{
		Assign:              sol.Assign,
		PhaseIUsers:         base.PhaseIUsers,
		PhaseIUtility:       base.PhaseIUtility,
		Phase2:              sol,
		Phase1Time:          base.Phase1Time,
		Phase2Time:          time.Since(phase2Start),
		Phase1Augmentations: base.Phase1Augmentations,
	}, nil
}
