package core

import (
	"math"
	"math/rand"
	"testing"

	"github.com/plcwifi/wolt/internal/baseline"
	"github.com/plcwifi/wolt/internal/model"
)

// fig3Network is the paper's Fig 3 case study.
func fig3Network() *model.Network {
	return &model.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
}

func TestUtilitiesFig3(t *testing.T) {
	// u_ij = min(c_j/|A|, r_ij) with c/|A| = 30 and 10.
	u := Utilities(fig3Network())
	want := [][]float64{
		{15, 10},
		{30, 10},
	}
	for i := range want {
		for j := range want[i] {
			if u[i][j] != want[i][j] {
				t.Errorf("u[%d][%d] = %v, want %v", i, j, u[i][j], want[i][j])
			}
		}
	}
}

func TestUtilitiesUnreachable(t *testing.T) {
	n := &model.Network{
		WiFiRates: [][]float64{{0, 20}},
		PLCCaps:   []float64{50, 50},
	}
	u := Utilities(n)
	if u[0][0] != unreachableUtility {
		t.Errorf("unreachable utility = %v", u[0][0])
	}
	if u[0][1] != 20 {
		t.Errorf("u[0][1] = %v, want 20", u[0][1])
	}
}

func TestAssignFig3FindsOptimal(t *testing.T) {
	// Phase I alone solves Fig 3 optimally: user 1 -> extender 2,
	// user 2 -> extender 1, total 40 Mbps (the paper's Fig 3d).
	res, err := Assign(fig3Network(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Assign[0] != 1 || res.Assign[1] != 0 {
		t.Fatalf("assign = %v, want [1 0]", res.Assign)
	}
	agg := model.Aggregate(fig3Network(), res.Assign, model.Options{Redistribute: true})
	if math.Abs(agg-40) > 1e-9 {
		t.Errorf("aggregate = %v, want 40", agg)
	}
	if len(res.PhaseIUsers) != 2 {
		t.Errorf("PhaseIUsers = %v, want both users", res.PhaseIUsers)
	}
	if res.PhaseIUtility != 40 {
		t.Errorf("PhaseIUtility = %v, want 40", res.PhaseIUtility)
	}
	if res.Phase2 != nil {
		t.Error("Phase2 should be nil when Phase I covers all users")
	}
}

func TestAssignEmptyNetworkUsers(t *testing.T) {
	n := &model.Network{WiFiRates: nil, PLCCaps: []float64{10}}
	res, err := Assign(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 0 {
		t.Errorf("assign = %v, want empty", res.Assign)
	}
}

func TestAssignInvalidNetwork(t *testing.T) {
	if _, err := Assign(&model.Network{}, Options{}); err == nil {
		t.Error("want error for empty network")
	}
	if _, err := Assign(fig3Network(), Options{Solver: Phase2Solver(99)}); err == nil {
		t.Error("want error for unknown solver")
	}
}

func TestAssignMoreUsersThanExtenders(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	n := randomNetwork(rng, 3, 9)
	for _, solver := range []Phase2Solver{Phase2ProjectedGradient, Phase2Coordinate} {
		res, err := Assign(n, Options{Solver: solver})
		if err != nil {
			t.Fatal(err)
		}
		if got := len(res.PhaseIUsers); got != 3 {
			t.Errorf("solver %d: phase I selected %d users, want 3", solver, got)
		}
		if res.Phase2 == nil {
			t.Fatalf("solver %d: missing phase II diagnostics", solver)
		}
		// Every user assigned and reachable.
		for i, j := range res.Assign {
			if j == model.Unassigned {
				t.Fatalf("solver %d: user %d unassigned", solver, i)
			}
			if n.WiFiRates[i][j] <= 0 {
				t.Fatalf("solver %d: user %d on unreachable extender %d", solver, i, j)
			}
		}
		// Phase I users keep their extender through Phase II.
		groups := res.Assign.Groups(n.NumExtenders())
		for j, g := range groups {
			if len(g) == 0 {
				t.Errorf("solver %d: extender %d has no users despite |U|>|A|", solver, j)
			}
		}
	}
}

func TestAssignFewerUsersThanExtenders(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := randomNetwork(rng, 6, 3)
	res, err := Assign(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseIUsers) != 3 {
		t.Errorf("phase I selected %d users, want all 3", len(res.PhaseIUsers))
	}
	if res.Assign.NumAssigned() != 3 {
		t.Errorf("assigned %d users, want 3", res.Assign.NumAssigned())
	}
}

func TestAssignNearOptimalSmallInstances(t *testing.T) {
	// WOLT is a heuristic for an NP-hard problem; on small random
	// instances it should stay close to the brute-force optimum under
	// the full redistribution model.
	rng := rand.New(rand.NewSource(77))
	opts := model.Options{Redistribute: true}
	var totalWolt, totalOpt float64
	for trial := 0; trial < 40; trial++ {
		n := randomNetwork(rng, 2+rng.Intn(2), 3+rng.Intn(4))
		res, err := Assign(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		woltAgg := model.Aggregate(n, res.Assign, opts)
		_, optAgg, err := baseline.Optimal(n, opts)
		if err != nil {
			t.Fatal(err)
		}
		if woltAgg > optAgg+1e-9 {
			t.Fatalf("trial %d: WOLT %v beats brute force %v (impossible)", trial, woltAgg, optAgg)
		}
		if woltAgg < 0.6*optAgg {
			t.Errorf("trial %d: WOLT %v far below optimum %v", trial, woltAgg, optAgg)
		}
		totalWolt += woltAgg
		totalOpt += optAgg
	}
	if totalWolt < 0.85*totalOpt {
		t.Errorf("aggregate optimality ratio %v below 0.85", totalWolt/totalOpt)
	}
}

func TestAssignBeatsRSSIOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	opts := model.Options{Redistribute: true}
	var wolt, rssi float64
	for trial := 0; trial < 30; trial++ {
		n := randomNetwork(rng, 3, 10)
		res, err := Assign(n, Options{})
		if err != nil {
			t.Fatal(err)
		}
		wolt += model.Aggregate(n, res.Assign, opts)
		ra, err := baseline.RSSIByRate(n)
		if err != nil {
			t.Fatal(err)
		}
		rssi += model.Aggregate(n, ra, opts)
	}
	if wolt <= rssi {
		t.Errorf("WOLT total %v not above RSSI total %v", wolt, rssi)
	}
}

func TestLemma1Improves(t *testing.T) {
	tests := []struct {
		name    string
		members []float64
		r       float64
		want    bool
	}{
		{name: "empty cell always improves", members: nil, r: 10, want: true},
		{name: "equal rate preserves", members: []float64{10, 10}, r: 10, want: true},
		{name: "faster user improves", members: []float64{10}, r: 50, want: true},
		{name: "slower user degrades", members: []float64{50}, r: 10, want: false},
		{name: "non-positive rate", members: []float64{10}, r: 0, want: false},
		{name: "broken member", members: []float64{0}, r: 10, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Lemma1Improves(tt.members, tt.r); got != tt.want {
				t.Errorf("Lemma1Improves = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestLemma1MatchesObjective(t *testing.T) {
	// Property: when Lemma1Improves says yes, adding the user must not
	// decrease the cell's aggregate WiFi throughput, and vice versa.
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 500; trial++ {
		k := 1 + rng.Intn(5)
		members := make([]float64, k)
		for i := range members {
			members[i] = 1 + rng.Float64()*53
		}
		r := 1 + rng.Float64()*53
		before := model.WiFiAggregate(members)
		after := model.WiFiAggregate(append(append([]float64(nil), members...), r))
		improves := Lemma1Improves(members, r)
		if improves && after < before-1e-9 {
			t.Fatalf("lemma says improves but %v -> %v (members %v, r %v)", before, after, members, r)
		}
		if !improves && after > before+1e-9 {
			t.Fatalf("lemma says degrades but %v -> %v (members %v, r %v)", before, after, members, r)
		}
	}
}

// randomNetwork builds a random dense network with rates in (1,54] and
// PLC capacities in [20,160].
func randomNetwork(rng *rand.Rand, numExt, numUsers int) *model.Network {
	caps := make([]float64, numExt)
	for j := range caps {
		caps[j] = 20 + rng.Float64()*140
	}
	rates := make([][]float64, numUsers)
	for i := range rates {
		rates[i] = make([]float64, numExt)
		for j := range rates[i] {
			rates[i][j] = 1 + rng.Float64()*53
		}
	}
	return &model.Network{WiFiRates: rates, PLCCaps: caps}
}
