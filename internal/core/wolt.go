// Package core implements WOLT's user-association algorithm (Algorithm 1
// in the paper), the paper's primary contribution.
//
// The full problem (Problem 1) — maximize Σ_j min(T_WiFi_j, T_PLC_j) over
// all associations — is NP-hard (Theorem 1, reduction from PARTITION).
// WOLT therefore solves it in two polynomial phases:
//
//	Phase I: relax "every user must connect" and require "every extender
//	serves ≥1 user". Lemma 2 shows an optimum then assigns exactly one
//	user per extender, and Theorem 2 shows the relaxed problem is exactly
//	an assignment problem with utilities u_ij = min(c_j/|A|, r_ij) —
//	solved optimally by the Hungarian algorithm in O(|A|³).
//
//	Phase II: pin the Phase I users and place the remaining users to
//	maximize the total WiFi throughput (Problem 2), a nonlinear program
//	with provably integral optima (Theorem 3), solved by internal/nlp.
package core

import (
	"context"
	"fmt"
	"time"

	"github.com/plcwifi/wolt/internal/hungarian"
	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/nlp"
)

// unreachableUtility marks user-extender pairs with no WiFi connectivity
// in the Phase I utility matrix. It is finite (the Hungarian solver
// rejects infinities) but dominated by any real pairing, so such a pair is
// only matched when a user or extender has no alternative; those matches
// are discarded afterwards.
const unreachableUtility = -1e12

// Phase2Solver selects the Phase II engine.
type Phase2Solver int

const (
	// Phase2ProjectedGradient solves the continuous relaxation with
	// projected gradient ascent and extracts an integral solution
	// (the paper's approach). The default.
	Phase2ProjectedGradient Phase2Solver = iota + 1
	// Phase2Coordinate uses the discrete best-response solver.
	Phase2Coordinate
)

// Phase1Solver selects the assignment-problem engine for Phase I.
type Phase1Solver int

const (
	// Phase1Hungarian is the O(|A|³) shortest-augmenting-path solver the
	// paper specifies. The default.
	Phase1Hungarian Phase1Solver = iota + 1
	// Phase1Auction uses Bertsekas' auction algorithm with ε-scaling —
	// an alternative with different practical scaling and a natural
	// distributed implementation.
	Phase1Auction
)

// Options configures Assign.
type Options struct {
	// Phase1 selects the assignment engine (default Hungarian).
	Phase1 Phase1Solver
	// Solver selects the Phase II engine (default projected gradient).
	Solver Phase2Solver
	// NLP tunes the projected-gradient solver.
	NLP nlp.Options
	// Utility selects the Phase II objective family (the zero value is
	// the paper's sum-throughput, bit-identical to the pre-utility
	// solver). It overrides NLP.Utility when non-zero and drives the
	// coordinate solver's cell objective; Phase I is utility-agnostic
	// (its Lemma 2 seeding is about coverage, not the objective).
	Utility model.Utility
	// Warm, when non-nil, switches AssignIncrementalWith to the warm
	// local-search path: the previous assignment seeds an anytime
	// search (internal/localsearch) instead of re-running the two-phase
	// solve for a target. Sub-millisecond at enterprise scale, at a
	// small objective gap (BENCH_anytime.json). AssignWith ignores it.
	Warm *WarmOptions
}

// WarmOptions configures the warm incremental path.
type WarmOptions struct {
	// Search tunes the local search (probe/time budget, neighborhood
	// size, method-specific knobs). Search.Model is overwritten with
	// the evalOpts of the AssignIncrementalWith call, and
	// Search.Budget.Moves with its budget argument, so the move cap
	// stays a single knob across both paths.
	Search localsearch.Options
	// Method selects the family member (default HillClimbing).
	Method localsearch.Method
	// Ctx makes the re-solve interruptible under the anytime contract;
	// nil means context.Background().
	Ctx context.Context
}

// Result is a complete WOLT association.
type Result struct {
	// Assign maps every user to an extender.
	Assign model.Assignment
	// PhaseIUsers lists the users selected in Phase I (the set U1),
	// one per extender where possible.
	PhaseIUsers []int
	// PhaseIUtility is the total assignment utility Σ u_ij of Phase I.
	PhaseIUtility float64
	// Phase2 carries the Phase II solver diagnostics (nil when every
	// user was already placed in Phase I).
	Phase2 *nlp.Solution
	// Phase1Time and Phase2Time are the wall-clock durations of the two
	// phases (utility build + matching, and the NLP solve).
	Phase1Time time.Duration
	Phase2Time time.Duration
	// Phase1Augmentations counts the Hungarian solver's shortest-
	// augmenting-path steps; zero when the auction solver ran.
	Phase1Augmentations int
}

// Scratch holds reusable buffers for repeated WOLT solves: the Phase I
// utility matrix and the Hungarian solver's workspace. The zero value is
// ready to use; buffers grow to the largest network seen and are
// retained. A Scratch is not safe for concurrent use; give each worker
// goroutine its own.
type Scratch struct {
	util    [][]float64
	utilBuf []float64
	hung    hungarian.Workspace
	// delta backs AssignIncrementalWith's candidate-move probes; it is
	// re-attached per call and its buffers persist across calls.
	delta model.DeltaEval
	// warm backs the warm incremental path's local search; its
	// evaluator, neighborhood cache and best-so-far buffers persist
	// across re-solves, which is what keeps the steady state
	// allocation-free.
	warm localsearch.Searcher
}

// matrix shapes the scratch's utility buffer to rows×cols.
func (s *Scratch) matrix(rows, cols int) [][]float64 {
	if cap(s.utilBuf) < rows*cols {
		s.utilBuf = make([]float64, rows*cols)
	}
	s.utilBuf = s.utilBuf[:rows*cols]
	if cap(s.util) < rows {
		s.util = make([][]float64, rows)
	}
	s.util = s.util[:rows]
	for i := 0; i < rows; i++ {
		s.util[i] = s.utilBuf[i*cols : (i+1)*cols]
	}
	return s.util
}

// Utilities returns the Phase I utility matrix u_ij = min(c_j/|A|, r_ij)
// (Algorithm 1 lines 1–3). Unreachable pairs get unreachableUtility.
func Utilities(n *model.Network) [][]float64 {
	return UtilitiesWith(nil, n)
}

// UtilitiesWith is Utilities with an optional caller-provided scratch.
// When s is non-nil the returned matrix is owned by the scratch and is
// overwritten by the next UtilitiesWith/AssignWith call on it; a nil
// scratch allocates a caller-owned matrix, exactly like Utilities.
func UtilitiesWith(s *Scratch, n *model.Network) [][]float64 {
	numExt := float64(n.NumExtenders())
	var u [][]float64
	if s != nil {
		u = s.matrix(n.NumUsers(), n.NumExtenders())
	} else {
		u = make([][]float64, n.NumUsers())
		for i := range u {
			u[i] = make([]float64, n.NumExtenders())
		}
	}
	for i, row := range n.WiFiRates {
		ui := u[i]
		for j, r := range row {
			if r <= 0 {
				ui[j] = unreachableUtility
				continue
			}
			fair := n.PLCCaps[j] / numExt
			if r < fair {
				ui[j] = r
			} else {
				ui[j] = fair
			}
		}
	}
	return u
}

// Assign runs the full two-phase WOLT algorithm on a network.
func Assign(n *model.Network, opts Options) (*Result, error) {
	return AssignWith(nil, n, opts)
}

// AssignWith is Assign with an optional caller-provided Scratch, reusing
// the Phase I utility matrix and the Hungarian workspace across calls.
// The returned Result is always caller-owned; only the intermediate
// solver state lives in the scratch. A nil scratch behaves exactly like
// Assign.
func AssignWith(s *Scratch, n *model.Network, opts Options) (*Result, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if n.NumUsers() == 0 {
		return &Result{Assign: model.Assignment{}}, nil
	}
	switch opts.Solver {
	case 0:
		opts.Solver = Phase2ProjectedGradient
	case Phase2ProjectedGradient, Phase2Coordinate:
	default:
		return nil, fmt.Errorf("core: unknown phase II solver %d", opts.Solver)
	}
	switch opts.Phase1 {
	case 0:
		opts.Phase1 = Phase1Hungarian
	case Phase1Hungarian, Phase1Auction:
	default:
		return nil, fmt.Errorf("core: unknown phase I solver %d", opts.Phase1)
	}

	// Phase I: assignment problem over u_ij.
	phase1Start := time.Now()
	var local Scratch
	if s == nil {
		s = &local
	}
	utilities := UtilitiesWith(s, n)
	// The solver's total is not used directly: forced unreachable
	// pairings are discarded below, so the utility is re-summed over the
	// retained pairs only.
	var (
		match         []int
		err           error
		augmentations int
	)
	if opts.Phase1 == Phase1Auction {
		match, _, err = hungarian.AuctionMaximize(utilities)
	} else {
		match, _, err = s.hung.Maximize(utilities)
		augmentations = s.hung.Augmentations()
	}
	if err != nil {
		return nil, fmt.Errorf("phase I: %w", err)
	}

	fixed := make(model.Assignment, n.NumUsers())
	var phase1 []int
	phase1Utility := 0.0
	for i, j := range match {
		if j == hungarian.Unmatched || n.WiFiRates[i][j] <= 0 {
			// Either more users than extenders (left for Phase II) or a
			// forced unreachable pairing (discarded).
			fixed[i] = model.Unassigned
			continue
		}
		fixed[i] = j
		phase1 = append(phase1, i)
		phase1Utility += utilities[i][j]
	}

	res := &Result{
		PhaseIUsers:         phase1,
		PhaseIUtility:       phase1Utility,
		Phase1Time:          time.Since(phase1Start),
		Phase1Augmentations: augmentations,
	}

	// Phase II: place the remaining users.
	if len(phase1) == n.NumUsers() {
		res.Assign = fixed
		return res, nil
	}
	phase2Start := time.Now()
	problem := nlp.Problem{Rates: n.WiFiRates, Fixed: fixed}
	utility := opts.Utility
	if utility.IsSumRate() {
		utility = opts.NLP.Utility
	}
	var sol *nlp.Solution
	switch opts.Solver {
	case Phase2ProjectedGradient:
		nlpOpts := opts.NLP
		nlpOpts.Utility = utility
		sol, err = nlp.SolveProjectedGradient(problem, nlpOpts)
	case Phase2Coordinate:
		// AlphaFairCell of the zero utility is SumThroughput itself, so
		// the default path is exactly the old SolveCoordinate.
		sol, err = nlp.SolveCoordinateWith(problem, nlp.AlphaFairCell(utility))
	default:
		return nil, fmt.Errorf("core: unknown phase II solver %d", opts.Solver)
	}
	if err != nil {
		return nil, fmt.Errorf("phase II: %w", err)
	}
	res.Assign = sol.Assign
	res.Phase2 = sol
	res.Phase2Time = time.Since(phase2Start)
	return res, nil
}

// Lemma1Improves reports whether, per Lemma 1, connecting a user with WiFi
// rate r to a cell whose current members have the given rates increases
// (or preserves) the cell's aggregate WiFi throughput. The condition is
// that the user's inverse rate does not exceed the cell's mean inverse
// rate: 1/r ≤ (1/|N|)·Σ 1/r_i.
func Lemma1Improves(memberRates []float64, r float64) bool {
	if r <= 0 {
		return false
	}
	if len(memberRates) == 0 {
		return true
	}
	var invSum float64
	for _, m := range memberRates {
		if m <= 0 {
			return false
		}
		invSum += 1 / m
	}
	return 1/r <= invSum/float64(len(memberRates))
}
