package core

import (
	"testing"

	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
)

// TestWarmIncrementalNeverLosesGround: the warm path seeds from prev
// and only keeps improvements, so re-solving from the full WOLT
// solution can never end below it — and the result matches a fresh
// full evaluation bit for bit.
func TestWarmIncrementalNeverLosesGround(t *testing.T) {
	n := fig3Network()
	evalOpts := model.Options{Redistribute: true}
	full, err := Assign(n, Options{})
	if err != nil {
		t.Fatal(err)
	}
	fullAgg := model.Aggregate(n, full.Assign, evalOpts)

	opts := Options{Warm: &WarmOptions{Search: localsearch.Options{Budget: localsearch.Budget{Probes: 2000}}}}
	res, err := AssignIncremental(n, full.Assign, -1, opts, evalOpts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Target != nil {
		t.Error("warm path must not run a target solve")
	}
	if res.Search == nil {
		t.Fatal("warm path must carry search diagnostics")
	}
	if res.AchievedAggregate < fullAgg {
		t.Errorf("warm re-solve lost ground: %v < %v", res.AchievedAggregate, fullAgg)
	}
	if got := model.Aggregate(n, res.Assign, evalOpts); got != res.AchievedAggregate {
		t.Errorf("achieved %v != fresh evaluation %v (bit-identity)", res.AchievedAggregate, got)
	}
}

// TestWarmIncrementalBudgetSemantics: the budget argument keeps its
// cold-path meaning on the warm path — 0 places arrivals only, k caps
// existing-user moves at k.
func TestWarmIncrementalBudgetSemantics(t *testing.T) {
	n := fig3Network()
	evalOpts := model.Options{Redistribute: true}
	// A deliberately bad previous state with one arrival.
	prev := make(model.Assignment, n.NumUsers())
	for i := range prev {
		prev[i] = model.Unassigned
		for j, r := range n.WiFiRates[i] {
			if r > 0 {
				prev[i] = j // first reachable, typically not the best
				break
			}
		}
	}
	prev[0] = model.Unassigned
	warm := Options{Warm: &WarmOptions{Search: localsearch.Options{Budget: localsearch.Budget{Probes: 5000}}}}

	zero, err := AssignIncremental(n, prev, 0, warm, evalOpts)
	if err != nil {
		t.Fatal(err)
	}
	if len(zero.Moves) != 0 {
		t.Errorf("budget 0 moved %d existing users", len(zero.Moves))
	}
	if len(zero.Placed) != 1 || zero.Assign[0] == model.Unassigned {
		t.Errorf("budget 0 must still place the arrival: placed=%v", zero.Placed)
	}

	for _, budget := range []int{1, 2, 3} {
		res, err := AssignIncremental(n, prev, budget, warm, evalOpts)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Moves) > budget {
			t.Errorf("budget %d moved %d users", budget, len(res.Moves))
		}
		if res.AchievedAggregate < zero.AchievedAggregate {
			t.Errorf("budget %d ended below the zero-budget state", budget)
		}
	}
}
