package nlp

import (
	"math"
	"math/rand"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
)

func TestValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Problem
	}{
		{name: "no users", p: Problem{}},
		{name: "no extenders", p: Problem{Rates: [][]float64{{}}, Fixed: model.Assignment{model.Unassigned}}},
		{name: "length mismatch", p: Problem{Rates: [][]float64{{1}}, Fixed: model.Assignment{}}},
		{name: "ragged", p: Problem{Rates: [][]float64{{1, 2}, {3}}, Fixed: model.Assignment{0, 0}}},
		{name: "fixed out of range", p: Problem{Rates: [][]float64{{1}}, Fixed: model.Assignment{5}}},
		{name: "fixed unreachable", p: Problem{Rates: [][]float64{{0, 5}}, Fixed: model.Assignment{0}}},
		{name: "free unreachable", p: Problem{Rates: [][]float64{{0, 0}}, Fixed: model.Assignment{model.Unassigned}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, _, err := tt.p.validate(); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestNoFreeUsers(t *testing.T) {
	p := Problem{
		Rates: [][]float64{{10, 20}, {30, 40}},
		Fixed: model.Assignment{0, 1},
	}
	sol, err := SolveProjectedGradient(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Assign[0] != 0 || sol.Assign[1] != 1 {
		t.Errorf("assign = %v, want fixed [0 1]", sol.Assign)
	}
	if math.Abs(sol.Objective-(10+40)) > 1e-9 {
		t.Errorf("objective = %v, want 50", sol.Objective)
	}
}

func TestSingleFreeUserPicksBestCell(t *testing.T) {
	// One fixed user on each extender; the free user has a much better
	// rate to extender 1 and joining it does not hurt (equal rates), so
	// the best move is extender 1.
	p := Problem{
		Rates: [][]float64{
			{50, 1},  // fixed on 0
			{1, 50},  // fixed on 1
			{50, 10}, // free
		},
		Fixed: model.Assignment{0, 1, model.Unassigned},
	}
	for name, solve := range solvers() {
		t.Run(name, func(t *testing.T) {
			sol, err := solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Assign[2] != 0 {
				t.Errorf("free user assigned to %d, want 0 (objective %v)", sol.Assign[2], sol.Objective)
			}
			// Objective: cell 0 has two 50 Mbps users -> 50; cell 1 -> 50.
			if math.Abs(sol.Objective-100) > 1e-6 {
				t.Errorf("objective = %v, want 100", sol.Objective)
			}
		})
	}
}

func TestAnomalyTradeoff(t *testing.T) {
	// Counter-intuitive consequence of throughput-fair sharing: the free
	// fast user (54/48 Mbps) is better placed on the extender with the
	// slow fixed user. Joining the fast cell drags its aggregate from 54
	// to ~50.8 (performance anomaly costs 3.2), while joining the slow
	// cell lifts that cell's total by ~1.9: 57.86 total vs 52.82.
	p := Problem{
		Rates: [][]float64{
			{2, 1},   // slow user fixed on 0
			{1, 54},  // fast user fixed on 1
			{54, 48}, // free fast user
		},
		Fixed: model.Assignment{0, 1, model.Unassigned},
	}
	for name, solve := range solvers() {
		t.Run(name, func(t *testing.T) {
			sol, err := solve(p)
			if err != nil {
				t.Fatal(err)
			}
			if sol.Assign[2] != 0 {
				t.Errorf("free user assigned to %d, want 0", sol.Assign[2])
			}
			want := 2/(0.5+1.0/54) + 54
			if math.Abs(sol.Objective-want) > 1e-6 {
				t.Errorf("objective = %v, want %v", sol.Objective, want)
			}
		})
	}
}

func TestSolversAgreeWithBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 60; trial++ {
		numExt := 2 + rng.Intn(2)  // 2-3 extenders
		numFree := 1 + rng.Intn(4) // 1-4 free users
		p := randomProblem(rng, numExt, numFree)
		want := bruteForceBest(p, numExt)

		for name, solve := range solvers() {
			sol, err := solve(p)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, name, err)
			}
			// Best-response local search can in principle stop at a local
			// optimum; on these small instances we require near-optimality
			// (within 2%) and usually exact agreement.
			if sol.Objective < want*0.98-1e-9 {
				t.Errorf("trial %d %s: objective %v, brute force %v\nrates=%v fixed=%v assign=%v",
					trial, name, sol.Objective, want, p.Rates, p.Fixed, sol.Assign)
			}
		}
	}
}

func TestProjectedGradientReportsIntegral(t *testing.T) {
	// On a clear-cut instance the continuous optimum is integral
	// (Theorem 3) and the solver should find it so.
	p := Problem{
		Rates: [][]float64{
			{54, 1},
			{1, 54},
			{54, 2},
		},
		Fixed: model.Assignment{0, 1, model.Unassigned},
	}
	sol, err := SolveProjectedGradient(p, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !sol.IntegralAtConvergence {
		t.Error("expected integral convergence on clear-cut instance")
	}
}

func TestCompleteAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 30; trial++ {
		p := randomProblem(rng, 3, 5)
		for name, solve := range solvers() {
			sol, err := solve(p)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			for i, j := range sol.Assign {
				if j == model.Unassigned {
					t.Fatalf("%s left user %d unassigned", name, i)
				}
				if p.Rates[i][j] <= 0 {
					t.Fatalf("%s assigned user %d to unreachable extender %d", name, i, j)
				}
			}
			// Fixed users must not move.
			for i, j := range p.Fixed {
				if j != model.Unassigned && sol.Assign[i] != j {
					t.Fatalf("%s moved fixed user %d from %d to %d", name, i, j, sol.Assign[i])
				}
			}
		}
	}
}

func TestProjectSimplex(t *testing.T) {
	tests := []struct {
		name  string
		row   []float64
		rates []float64
		want  []float64
	}{
		{
			name:  "already on simplex",
			row:   []float64{0.5, 0.5},
			rates: []float64{1, 1},
			want:  []float64{0.5, 0.5},
		},
		{
			name:  "all mass one coord",
			row:   []float64{10, 0},
			rates: []float64{1, 1},
			want:  []float64{1, 0},
		},
		{
			name:  "unreachable zeroed",
			row:   []float64{0.7, 0.7},
			rates: []float64{1, 0},
			want:  []float64{1, 0},
		},
		{
			name:  "negative clipped",
			row:   []float64{-5, 2},
			rates: []float64{1, 1},
			want:  []float64{0, 1},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			row := append([]float64(nil), tt.row...)
			projectSimplex(row, tt.rates)
			for j := range tt.want {
				if math.Abs(row[j]-tt.want[j]) > 1e-9 {
					t.Errorf("row = %v, want %v", row, tt.want)
					break
				}
			}
		})
	}
}

func TestProjectSimplexSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		row := make([]float64, n)
		rates := make([]float64, n)
		reachable := 0
		for j := range row {
			row[j] = rng.NormFloat64() * 3
			if rng.Float64() < 0.8 || (j == n-1 && reachable == 0) {
				rates[j] = 1
				reachable++
			}
		}
		projectSimplex(row, rates)
		var sum float64
		for j, v := range row {
			if v < -1e-12 {
				t.Fatalf("negative mass %v", v)
			}
			if rates[j] <= 0 && v != 0 {
				t.Fatalf("mass on unreachable extender")
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mass sums to %v", sum)
		}
	}
}

func TestJoinGain(t *testing.T) {
	// Joining an empty cell yields the user's full rate.
	if got := joinGain(0, 0, 54); math.Abs(got-54) > 1e-12 {
		t.Errorf("joinGain empty = %v, want 54", got)
	}
	// A slow user joining a fast cell reduces the aggregate (anomaly):
	// gain is negative.
	if got := joinGain(1, 1.0/54, 1); got >= 0 {
		t.Errorf("slow joiner gain = %v, want negative", got)
	}
	// An equal-rate user joining leaves the aggregate unchanged.
	if got := joinGain(1, 1.0/10, 10); math.Abs(got) > 1e-12 {
		t.Errorf("equal joiner gain = %v, want 0", got)
	}
}

func solvers() map[string]func(Problem) (*Solution, error) {
	return map[string]func(Problem) (*Solution, error){
		"projected-gradient": func(p Problem) (*Solution, error) {
			return SolveProjectedGradient(p, Options{})
		},
		"coordinate": SolveCoordinate,
	}
}

func randomProblem(rng *rand.Rand, numExt, numFree int) Problem {
	// One fixed user per extender (Phase I invariant) plus free users.
	numUsers := numExt + numFree
	rates := make([][]float64, numUsers)
	fixed := make(model.Assignment, numUsers)
	for i := range rates {
		rates[i] = make([]float64, numExt)
		for j := range rates[i] {
			rates[i][j] = 1 + rng.Float64()*53
		}
		if i < numExt {
			fixed[i] = i
		} else {
			fixed[i] = model.Unassigned
		}
	}
	return Problem{Rates: rates, Fixed: fixed}
}

// bruteForceBest exhaustively tries every placement of the free users.
func bruteForceBest(p Problem, numExt int) float64 {
	var free []int
	for i, j := range p.Fixed {
		if j == model.Unassigned {
			free = append(free, i)
		}
	}
	assign := p.Fixed.Clone()
	best := math.Inf(-1)
	var rec func(k int)
	rec = func(k int) {
		if k == len(free) {
			obj := discreteObjective(p, assign, numExt)
			if obj > best {
				best = obj
			}
			return
		}
		for j := 0; j < numExt; j++ {
			if p.Rates[free[k]][j] <= 0 {
				continue
			}
			assign[free[k]] = j
			rec(k + 1)
		}
		assign[free[k]] = model.Unassigned
	}
	rec(0)
	return best
}

func TestCellObjectives(t *testing.T) {
	n := []float64{2, 1}
	s := []float64{1.0 / 10, 1.0 / 40} // cell 0: two users at 20 Mbps each... (s=0.1 -> T=20)
	if got, want := Total(SumThroughput, n, s), 2/0.1+1/(1.0/40); math.Abs(got-want) > 1e-9 {
		t.Errorf("Total(SumThroughput) = %v, want %v", got, want)
	}
	want := -(2*math.Log(0.1) + 1*math.Log(1.0/40))
	if got := Total(ProportionalFair, n, s); math.Abs(got-want) > 1e-9 {
		t.Errorf("Total(ProportionalFair) = %v, want %v", got, want)
	}
	// Per-cell terms: a single-user cell's throughput term is its rate.
	if got := SumThroughput(1, 1.0/40); math.Abs(got-40) > 1e-9 {
		t.Errorf("SumThroughput term = %v, want 40", got)
	}
	// Empty cells contribute exactly nothing to either objective.
	if got := SumThroughput(0, 0); got != 0 {
		t.Errorf("SumThroughput empty = %v", got)
	}
	if got := ProportionalFair(0, 0); got != 0 {
		t.Errorf("ProportionalFair empty = %v", got)
	}
}

func TestSolveCoordinateWithValidation(t *testing.T) {
	p := Problem{Rates: [][]float64{{10}}, Fixed: model.Assignment{model.Unassigned}}
	if _, err := SolveCoordinateWith(p, nil); err == nil {
		t.Error("nil objective: want error")
	}
}

func TestProportionalFairSpreadsUsers(t *testing.T) {
	// Two identical extenders, two fixed seeds, four identical free
	// users: the fair objective must balance 3/3, as must the throughput
	// objective here (symmetric case), and all users end up assigned.
	p := Problem{
		Rates: [][]float64{
			{20, 20}, {20, 20}, // seeds
			{20, 20}, {20, 20}, {20, 20}, {20, 20},
		},
		Fixed: model.Assignment{0, 1, model.Unassigned, model.Unassigned, model.Unassigned, model.Unassigned},
	}
	sol, err := SolveCoordinateWith(p, ProportionalFair)
	if err != nil {
		t.Fatal(err)
	}
	counts := [2]int{}
	for _, j := range sol.Assign {
		counts[j]++
	}
	if counts[0] != 3 || counts[1] != 3 {
		t.Errorf("fair placement unbalanced: %v", counts)
	}
}

func TestProportionalFairAvoidsStarvation(t *testing.T) {
	// One strong cell (fast seed) and one weak cell (slow seed); a slow
	// free user. The throughput objective parks the slow user with the
	// slow seed (protecting the fast cell); the fair objective must not
	// leave anyone unassigned either way.
	p := Problem{
		Rates: [][]float64{
			{54, 1},
			{1, 6},
			{2, 2},
		},
		Fixed: model.Assignment{0, 1, model.Unassigned},
	}
	for name, obj := range map[string]CellObjective{
		"throughput": SumThroughput,
		"fair":       ProportionalFair,
	} {
		sol, err := SolveCoordinateWith(p, obj)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if sol.Assign[2] == model.Unassigned {
			t.Errorf("%s: user left unassigned", name)
		}
	}
}
