// Package nlp solves WOLT's Phase II nonlinear program (Problem 2 in the
// paper): with the Phase I users pinned to their extenders, place the
// remaining users so that the total WiFi throughput Σ_j T_WiFi_j is
// maximized, where
//
//	T_WiFi_j = N_j / S_j,   N_j = #users on j,   S_j = Σ_{i∈N_j} 1/r_ij.
//
// The paper solves the continuous relaxation with an interior-point method
// and stops when the improvement drops below 1e-5; Theorem 3 proves the
// relaxation has integral optima. This package provides:
//
//   - SolveProjectedGradient: a first-order interior solver over per-user
//     simplices using the paper's stopping criterion, followed by the
//     Theorem-3 mass-shifting argument to extract an integral solution.
//
//   - SolveCoordinate: a purely discrete best-response (coordinate ascent)
//     solver used for cross-validation and as a cheap alternative.
//
// Both return complete assignments; tests assert they agree on optima.
package nlp

import (
	"fmt"
	"math"
	"sort"

	"github.com/plcwifi/wolt/internal/model"
)

// Problem is a Phase II instance.
type Problem struct {
	// Rates is the full user × extender WiFi rate matrix r_ij.
	// Non-positive entries mark unreachable extenders.
	Rates [][]float64
	// Fixed holds the Phase I decisions: Fixed[i] is user i's pinned
	// extender, or model.Unassigned for the users Phase II must place.
	Fixed model.Assignment
}

func (p Problem) validate() (numExt int, free []int, err error) {
	if len(p.Rates) == 0 {
		return 0, nil, fmt.Errorf("nlp: no users")
	}
	numExt = len(p.Rates[0])
	if numExt == 0 {
		return 0, nil, fmt.Errorf("nlp: no extenders")
	}
	if len(p.Fixed) != len(p.Rates) {
		return 0, nil, fmt.Errorf("nlp: fixed assignment covers %d users, rates cover %d",
			len(p.Fixed), len(p.Rates))
	}
	for i, row := range p.Rates {
		if len(row) != numExt {
			return 0, nil, fmt.Errorf("nlp: user %d has %d rates, want %d", i, len(row), numExt)
		}
		j := p.Fixed[i]
		switch {
		case j == model.Unassigned:
			reachable := false
			for _, r := range row {
				if r > 0 {
					reachable = true
					break
				}
			}
			if !reachable {
				return 0, nil, fmt.Errorf("nlp: free user %d reaches no extender", i)
			}
			free = append(free, i)
		case j < 0 || j >= numExt:
			return 0, nil, fmt.Errorf("nlp: user %d fixed to invalid extender %d", i, j)
		case row[j] <= 0:
			return 0, nil, fmt.Errorf("nlp: user %d fixed to unreachable extender %d", i, j)
		}
	}
	return numExt, free, nil
}

// Options tunes the projected-gradient solver.
type Options struct {
	// Tol is the stopping criterion: iteration stops when the objective
	// improves by less than Tol. The paper uses 1e-5.
	Tol float64
	// MaxIter caps gradient iterations (default 2000).
	MaxIter int
	// Step is the initial gradient step size (default 0.5); the solver
	// backtracks when a step does not improve the objective.
	Step float64
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Step <= 0 {
		o.Step = 0.5
	}
	return o
}

// Solution is a completed Phase II placement.
type Solution struct {
	// Assign is the complete assignment (fixed users keep their Phase I
	// extender).
	Assign model.Assignment
	// Objective is Σ_j T_WiFi_j of the final integral assignment.
	Objective float64
	// Iterations is the number of solver iterations performed.
	Iterations int
	// IntegralAtConvergence reports whether the continuous iterate was
	// already (numerically) integral when the gradient solver stopped —
	// the empirical observation the paper makes about Theorem 3.
	IntegralAtConvergence bool
}

// cellState tracks per-extender user count and inverse-rate sum.
type cellState struct {
	n []float64 // N_j including fractional mass
	s []float64 // S_j = Σ 1/r (weighted by mass for fractional users)
}

func newCellState(numExt int) *cellState {
	return &cellState{n: make([]float64, numExt), s: make([]float64, numExt)}
}

func (c *cellState) objective() float64 {
	var total float64
	for j := range c.n {
		if c.s[j] > 0 {
			total += c.n[j] / c.s[j]
		}
	}
	return total
}

// SolveProjectedGradient solves the Phase II relaxation by projected
// gradient ascent over the free users' assignment simplices and extracts
// an integral solution.
func SolveProjectedGradient(p Problem, opts Options) (*Solution, error) {
	numExt, free, err := p.validate()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	fixedN, fixedS := fixedLoad(p, numExt)

	if len(free) == 0 {
		assign := p.Fixed.Clone()
		obj := discreteObjective(p, assign, numExt)
		return &Solution{Assign: assign, Objective: obj, IntegralAtConvergence: true}, nil
	}

	// x[k][j]: fractional assignment of free user k to extender j,
	// initialized uniformly over reachable extenders.
	x := make([][]float64, len(free))
	for k, i := range free {
		x[k] = make([]float64, numExt)
		reachable := 0
		for j, r := range p.Rates[i] {
			if r > 0 {
				reachable++
				_ = j
			}
		}
		for j, r := range p.Rates[i] {
			if r > 0 {
				x[k][j] = 1 / float64(reachable)
			}
		}
	}

	objAt := func(x [][]float64) float64 {
		cells := newCellState(numExt)
		copy(cells.n, fixedN)
		copy(cells.s, fixedS)
		for k, i := range free {
			for j, mass := range x[k] {
				if mass > 0 {
					cells.n[j] += mass
					cells.s[j] += mass / p.Rates[i][j]
				}
			}
		}
		return cells.objective()
	}

	prev := objAt(x)
	step := opts.Step
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// Gradient of Σ N_j/S_j wrt x_kj: (S_j - N_j/r_ij) / S_j².
		cells := newCellState(numExt)
		copy(cells.n, fixedN)
		copy(cells.s, fixedS)
		for k, i := range free {
			for j, mass := range x[k] {
				if mass > 0 {
					cells.n[j] += mass
					cells.s[j] += mass / p.Rates[i][j]
				}
			}
		}
		grad := make([][]float64, len(free))
		for k, i := range free {
			grad[k] = make([]float64, numExt)
			for j := 0; j < numExt; j++ {
				r := p.Rates[i][j]
				if r <= 0 {
					continue
				}
				s := cells.s[j]
				if s <= 0 {
					// Empty cell: joining it alone yields throughput r.
					grad[k][j] = r
					continue
				}
				grad[k][j] = (s - cells.n[j]/r) / (s * s)
			}
		}

		// Backtracking line search on the projected step.
		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			cand := make([][]float64, len(free))
			for k, i := range free {
				row := make([]float64, numExt)
				for j := range row {
					if p.Rates[i][j] > 0 {
						row[j] = x[k][j] + step*grad[k][j]
					}
				}
				projectSimplex(row, p.Rates[i])
				cand[k] = row
			}
			obj := objAt(cand)
			if obj > prev {
				x = cand
				if obj-prev < opts.Tol {
					prev = obj
					improved = false // converged per the paper's criterion
				} else {
					prev = obj
					improved = true
				}
				break
			}
			step /= 2
			if step < 1e-9 {
				break
			}
		}
		if !improved {
			break
		}
	}

	integral := true
	for k := range x {
		for _, mass := range x[k] {
			if mass > 1e-6 && mass < 1-1e-6 {
				integral = false
			}
		}
	}

	// Theorem 3 extraction: collapse each user's mass onto one extender,
	// then polish with discrete best-response moves (each move increases
	// the objective, so this terminates).
	assign := p.Fixed.Clone()
	for k, i := range free {
		best, bestMass := -1, -1.0
		for j, mass := range x[k] {
			if mass > bestMass {
				best, bestMass = j, mass
			}
		}
		assign[i] = best
	}
	obj := coordinatePolish(p, assign, free, numExt)

	// The relaxation is non-convex, so the gradient iterate can land in a
	// poorer basin than a greedy discrete start. Keep the better of the
	// two (multi-start local search).
	if alt, err := SolveCoordinate(p); err == nil && alt.Objective > obj+1e-12 {
		assign = alt.Assign
		obj = alt.Objective
	}

	return &Solution{
		Assign:                assign,
		Objective:             obj,
		Iterations:            iters,
		IntegralAtConvergence: integral,
	}, nil
}

// CellObjective scores a complete placement from per-extender loads:
// n[j] is the user count on extender j and s[j] the sum of inverse WiFi
// rates. Larger is better.
type CellObjective func(n, s []float64) float64

// SumThroughput is Problem 2's objective: Σ_j T_WiFi_j = Σ_j n_j/s_j.
func SumThroughput(n, s []float64) float64 {
	var total float64
	for j := range n {
		if s[j] > 0 {
			total += n[j] / s[j]
		}
	}
	return total
}

// ProportionalFair is the proportional-fairness extension: under
// throughput-fair sharing every user on extender j receives 1/s_j, so
// Σ_i log(throughput_i) = -Σ_j n_j·ln(s_j). Maximizing it trades a
// little aggregate throughput for a much flatter allocation.
func ProportionalFair(n, s []float64) float64 {
	var total float64
	for j := range n {
		if n[j] > 0 && s[j] > 0 {
			total -= n[j] * math.Log(s[j])
		}
	}
	return total
}

// SolveCoordinate places the free users greedily (each on the extender
// that most increases Σ T_WiFi given current loads) and then runs
// best-response sweeps until no single-user move improves the objective.
func SolveCoordinate(p Problem) (*Solution, error) {
	return SolveCoordinateWith(p, SumThroughput)
}

// SolveCoordinateWith is SolveCoordinate under an arbitrary cell
// objective. The returned Solution's Objective is the given objective's
// value (not Σ T_WiFi) unless the objectives coincide.
func SolveCoordinateWith(p Problem, objective CellObjective) (*Solution, error) {
	if objective == nil {
		return nil, fmt.Errorf("nlp: nil objective")
	}
	numExt, free, err := p.validate()
	if err != nil {
		return nil, err
	}
	assign := p.Fixed.Clone()

	// Greedy seeding in user order, by marginal objective gain.
	for _, i := range free {
		n, s := loadOf(p, assign, numExt)
		before := objective(n, s)
		bestJ, bestGain := -1, math.Inf(-1)
		for j := 0; j < numExt; j++ {
			r := p.Rates[i][j]
			if r <= 0 {
				continue
			}
			n[j]++
			s[j] += 1 / r
			gain := objective(n, s) - before
			n[j]--
			s[j] -= 1 / r
			if gain > bestGain {
				bestJ, bestGain = j, gain
			}
		}
		assign[i] = bestJ
	}

	obj := polishWith(p, assign, free, numExt, objective)
	return &Solution{Assign: assign, Objective: obj, IntegralAtConvergence: true}, nil
}

// coordinatePolish runs discrete best-response sweeps under the Σ T_WiFi
// objective.
func coordinatePolish(p Problem, assign model.Assignment, free []int, numExt int) float64 {
	return polishWith(p, assign, free, numExt, SumThroughput)
}

// polishWith runs discrete best-response sweeps over the free users
// (single moves plus pairwise swaps, which escape the common local optima
// single moves cannot), mutating assign, and returns the final objective.
func polishWith(p Problem, assign model.Assignment, free []int, numExt int, objective CellObjective) float64 {
	const maxSweeps = 100
	obj := objectiveWith(p, assign, numExt, objective)
	for sweep := 0; sweep < maxSweeps; sweep++ {
		changed := false
		// Single-user moves.
		for _, i := range free {
			current := assign[i]
			bestJ, bestObj := current, obj
			for j := 0; j < numExt; j++ {
				if j == current || p.Rates[i][j] <= 0 {
					continue
				}
				assign[i] = j
				cand := objectiveWith(p, assign, numExt, objective)
				if cand > bestObj+1e-12 {
					bestJ, bestObj = j, cand
				}
			}
			assign[i] = bestJ
			if bestJ != current {
				obj = bestObj
				changed = true
			}
		}
		// Pairwise swaps between free users on different extenders.
		for a := 0; a < len(free); a++ {
			for b := a + 1; b < len(free); b++ {
				ia, ib := free[a], free[b]
				ja, jb := assign[ia], assign[ib]
				if ja == jb || p.Rates[ia][jb] <= 0 || p.Rates[ib][ja] <= 0 {
					continue
				}
				assign[ia], assign[ib] = jb, ja
				cand := objectiveWith(p, assign, numExt, objective)
				if cand > obj+1e-12 {
					obj = cand
					changed = true
				} else {
					assign[ia], assign[ib] = ja, jb
				}
			}
		}
		if !changed {
			break
		}
	}
	return obj
}

// joinGain is the change in Σ T_WiFi when a user of rate r joins a cell
// with count n and inverse-rate sum s.
func joinGain(n, s, r float64) float64 {
	before := 0.0
	if s > 0 {
		before = n / s
	}
	return (n+1)/(s+1/r) - before
}

// discreteObjective computes Σ_j T_WiFi_j for an integral assignment.
func discreteObjective(p Problem, assign model.Assignment, numExt int) float64 {
	return objectiveWith(p, assign, numExt, SumThroughput)
}

// objectiveWith evaluates a cell objective on an integral assignment.
func objectiveWith(p Problem, assign model.Assignment, numExt int, objective CellObjective) float64 {
	n, s := loadOf(p, assign, numExt)
	return objective(n, s)
}

func loadOf(p Problem, assign model.Assignment, numExt int) (n, s []float64) {
	n = make([]float64, numExt)
	s = make([]float64, numExt)
	for i, j := range assign {
		if j == model.Unassigned {
			continue
		}
		n[j]++
		s[j] += 1 / p.Rates[i][j]
	}
	return n, s
}

func fixedLoad(p Problem, numExt int) (n, s []float64) {
	return loadOf(p, p.Fixed, numExt)
}

// projectSimplex projects row onto the probability simplex restricted to
// coordinates where rates > 0 (unreachable extenders stay at 0), using the
// sort-based algorithm of Duchi et al.
func projectSimplex(row, rates []float64) {
	var support []int
	for j, r := range rates {
		if r > 0 {
			support = append(support, j)
		} else {
			row[j] = 0
		}
	}
	if len(support) == 0 {
		return
	}
	vals := make([]float64, len(support))
	for k, j := range support {
		vals[k] = row[j]
	}
	sorted := append([]float64(nil), vals...)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cum, theta float64
	rho := -1
	for k, v := range sorted {
		cum += v
		t := (cum - 1) / float64(k+1)
		if v-t > 0 {
			rho = k
			theta = t
		}
	}
	if rho < 0 {
		// Degenerate (all mass far negative): uniform.
		for _, j := range support {
			row[j] = 1 / float64(len(support))
		}
		return
	}
	for k, j := range support {
		v := vals[k] - theta
		if v < 0 {
			v = 0
		}
		row[j] = v
	}
}
