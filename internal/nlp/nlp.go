// Package nlp solves WOLT's Phase II nonlinear program (Problem 2 in the
// paper): with the Phase I users pinned to their extenders, place the
// remaining users so that the total WiFi throughput Σ_j T_WiFi_j is
// maximized, where
//
//	T_WiFi_j = N_j / S_j,   N_j = #users on j,   S_j = Σ_{i∈N_j} 1/r_ij.
//
// The paper solves the continuous relaxation with an interior-point method
// and stops when the improvement drops below 1e-5; Theorem 3 proves the
// relaxation has integral optima. This package provides:
//
//   - SolveProjectedGradient: a first-order interior solver over per-user
//     simplices using the paper's stopping criterion, followed by the
//     Theorem-3 mass-shifting argument to extract an integral solution.
//
//   - SolveCoordinate: a purely discrete best-response (coordinate ascent)
//     solver used for cross-validation and as a cheap alternative.
//
// Both return complete assignments; tests assert they agree on optima.
//
// # Intra-solve parallelism
//
// Options.Workers fans the per-user work of one solve out over
// internal/parallel: gradient rows and simplex projections are
// row-independent and split into fixed-size row chunks. Chunk boundaries
// never depend on the worker count and every row is a pure function of
// the current iterate, so results are bit-identical for every Workers
// value (DESIGN.md §7). The discrete polish phase is sequential: since
// the cell objectives decompose as Σ_j term(n_j, s_j), a candidate move
// is scored by the two affected cells' term deltas in O(1) — cheaper
// than fanning full rescans out ever was.
package nlp

import (
	"context"
	"fmt"
	"math"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/parallel"
)

// Problem is a Phase II instance.
type Problem struct {
	// Rates is the full user × extender WiFi rate matrix r_ij.
	// Non-positive entries mark unreachable extenders.
	Rates [][]float64
	// Fixed holds the Phase I decisions: Fixed[i] is user i's pinned
	// extender, or model.Unassigned for the users Phase II must place.
	Fixed model.Assignment
}

func (p Problem) validate() (numExt int, free []int, err error) {
	if len(p.Rates) == 0 {
		return 0, nil, fmt.Errorf("nlp: no users")
	}
	numExt = len(p.Rates[0])
	if numExt == 0 {
		return 0, nil, fmt.Errorf("nlp: no extenders")
	}
	if len(p.Fixed) != len(p.Rates) {
		return 0, nil, fmt.Errorf("nlp: fixed assignment covers %d users, rates cover %d",
			len(p.Fixed), len(p.Rates))
	}
	for i, row := range p.Rates {
		if len(row) != numExt {
			return 0, nil, fmt.Errorf("nlp: user %d has %d rates, want %d", i, len(row), numExt)
		}
		j := p.Fixed[i]
		switch {
		case j == model.Unassigned:
			reachable := false
			for _, r := range row {
				if r > 0 {
					reachable = true
					break
				}
			}
			if !reachable {
				return 0, nil, fmt.Errorf("nlp: free user %d reaches no extender", i)
			}
			free = append(free, i)
		case j < 0 || j >= numExt:
			return 0, nil, fmt.Errorf("nlp: user %d fixed to invalid extender %d", i, j)
		case row[j] <= 0:
			return 0, nil, fmt.Errorf("nlp: user %d fixed to unreachable extender %d", i, j)
		}
	}
	return numExt, free, nil
}

// Options tunes the projected-gradient solver.
type Options struct {
	// Tol is the stopping criterion: iteration stops when the objective
	// improves by less than Tol. The paper uses 1e-5.
	Tol float64
	// MaxIter caps gradient iterations (default 2000).
	MaxIter int
	// Step is the initial gradient step size (default 0.5); the solver
	// backtracks when a step does not improve the objective.
	Step float64
	// Workers bounds the goroutines used inside one solve (gradient
	// rows, simplex projections). <= 1 runs fully sequentially; results
	// are bit-identical for every value.
	Workers int
	// Utility selects the objective family the relaxation ascends and
	// the polish/coordinate cross-check optimize: the zero value is
	// Problem 2's sum-throughput (bit-identical to the pre-utility
	// solver), finite α uses the α-fair cell term n·u_α(1/s), and
	// max-min is approximated by the smooth MaxMinSurrogateAlpha member
	// (see AlphaFairCell).
	Utility model.Utility
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Step <= 0 {
		o.Step = 0.5
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Solution is a completed Phase II placement.
type Solution struct {
	// Assign is the complete assignment (fixed users keep their Phase I
	// extender).
	Assign model.Assignment
	// Objective is Σ_j T_WiFi_j of the final integral assignment.
	Objective float64
	// Iterations is the number of solver iterations performed.
	Iterations int
	// PolishSweeps is the total number of discrete best-response sweeps
	// (single moves + pairwise swaps) run while polishing the integral
	// solution, summed over every polish pass of the solve.
	PolishSweeps int
	// IntegralAtConvergence reports whether the continuous iterate was
	// already (numerically) integral when the gradient solver stopped —
	// the empirical observation the paper makes about Theorem 3.
	IntegralAtConvergence bool
}

// rowChunk is the fixed number of free-user rows per parallel task. It
// must not depend on the worker count (chunk boundaries are part of the
// deterministic schedule); it only bounds task granularity.
const rowChunk = 64

// forRows runs fn over [0, n) split into rowChunk-sized ranges on the
// given number of workers. fn must only write state owned by its range.
func forRows(n, workers int, fn func(lo, hi int)) {
	chunks := (n + rowChunk - 1) / rowChunk
	if chunks <= 1 || workers <= 1 {
		fn(0, n)
		return
	}
	_ = parallel.ForEach(context.Background(), chunks, workers, func(c int) error {
		lo := c * rowChunk
		hi := lo + rowChunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
		return nil
	})
}

// pgState holds the projected-gradient solver's reusable buffers so the
// per-iteration loop allocates nothing.
type pgState struct {
	x, cand, grad  [][]float64
	xb, cb, gb     []float64
	cellsN, cellsS []float64
	fixedN, fixedS []float64
	proj           []projScratch
	// invR[k][j] is 1/Rates[free[k]][j] (0 when unreachable) and invS2
	// the per-extender 1/S_j² of the current iterate: the gradient's
	// inner loop runs on multiplications instead of two divisions per
	// matrix element.
	invR  [][]float64
	invRb []float64
	invS2 []float64
	// supports[k] lists free user k's reachable extenders (ascending),
	// computed once so the per-projection support scan disappears from
	// the line-search hot loop.
	supports [][]int
	supBuf   []int
	// alpha is the (surrogate) fairness exponent and obj the matching
	// cell objective; alpha == 0 keeps the original multiply-only
	// sum-throughput gradient verbatim. gN/gS hold the per-extender
	// partials ∂f/∂N_j and ∂f/∂S_j of the α-fair objective, hoisted out
	// of the row loop exactly like invS2 is for sum-throughput.
	alpha  float64
	obj    CellObjective
	gN, gS []float64
}

func matrixOver(buf []float64, rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = buf[i*cols : (i+1)*cols]
	}
	return m
}

func newPGState(p Problem, free []int, numExt int, u model.Utility) *pgState {
	f := len(free)
	st := &pgState{
		xb:     make([]float64, f*numExt),
		cb:     make([]float64, f*numExt),
		gb:     make([]float64, f*numExt),
		cellsN: make([]float64, numExt),
		cellsS: make([]float64, numExt),
		proj:   make([]projScratch, (f+rowChunk-1)/rowChunk),
		invRb:  make([]float64, f*numExt),
		invS2:  make([]float64, numExt),
		alpha:  surrogateAlpha(u),
		obj:    AlphaFairCell(u),
		gN:     make([]float64, numExt),
		gS:     make([]float64, numExt),
	}
	st.x = matrixOver(st.xb, f, numExt)
	st.cand = matrixOver(st.cb, f, numExt)
	st.grad = matrixOver(st.gb, f, numExt)
	st.invR = matrixOver(st.invRb, f, numExt)
	reachable := 0
	for k, i := range free {
		for j, r := range p.Rates[i] {
			if r > 0 {
				st.invR[k][j] = 1 / r
				reachable++
			}
		}
	}
	st.supports = make([][]int, f)
	st.supBuf = make([]int, 0, reachable)
	for k, i := range free {
		lo := len(st.supBuf)
		for j, r := range p.Rates[i] {
			if r > 0 {
				st.supBuf = append(st.supBuf, j)
			}
		}
		st.supports[k] = st.supBuf[lo:len(st.supBuf):len(st.supBuf)]
	}
	st.fixedN, st.fixedS = fixedLoad(p, numExt)
	return st
}

// cells recomputes the fractional per-extender loads of iterate x into
// the state's cell buffers and returns the relaxation objective. The
// accumulation order (fixed load first, then free rows in ascending k)
// is fixed, so the result is bit-identical however the caller
// parallelizes the rest of the iteration.
func (st *pgState) cells(p Problem, free []int, x [][]float64) float64 {
	copy(st.cellsN, st.fixedN)
	copy(st.cellsS, st.fixedS)
	for k := range free {
		row := x[k]
		invR := st.invR[k]
		// Unreachable coordinates hold mass 0, and adding 0.0 to a
		// non-negative accumulator is exact — so the loop runs
		// branch-free on the precomputed inverse rates.
		for j, mass := range row {
			st.cellsN[j] += mass
			st.cellsS[j] += mass * invR[j]
		}
	}
	return Total(st.obj, st.cellsN, st.cellsS)
}

// SolveProjectedGradient solves the Phase II relaxation by projected
// gradient ascent over the free users' assignment simplices and extracts
// an integral solution.
func SolveProjectedGradient(p Problem, opts Options) (*Solution, error) {
	numExt, free, err := p.validate()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	if len(free) == 0 {
		assign := p.Fixed.Clone()
		obj := discreteObjective(p, assign, numExt)
		return &Solution{Assign: assign, Objective: obj, IntegralAtConvergence: true}, nil
	}

	st := newPGState(p, free, numExt, opts.Utility)

	// x[k][j]: fractional assignment of free user k to extender j,
	// initialized uniformly over reachable extenders.
	for k, i := range free {
		reachable := 0
		for _, r := range p.Rates[i] {
			if r > 0 {
				reachable++
			}
		}
		for j, r := range p.Rates[i] {
			if r > 0 {
				st.x[k][j] = 1 / float64(reachable)
			}
		}
	}

	prev := st.cells(p, free, st.x)
	step := opts.Step
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// Per-extender loads of the current iterate, then the gradient of
		// Σ N_j/S_j wrt x_kj: (S_j - N_j/r_ij) / S_j². Rows are
		// independent given the loads, so they fan out. The per-extender
		// 1/S_j² factor is hoisted out of the row loop and the rate
		// divisions were precomputed at attach, so the inner loop is
		// multiply-only.
		st.cells(p, free, st.x)
		if st.alpha == 0 {
			for j := 0; j < numExt; j++ {
				if s := st.cellsS[j]; s > 0 {
					st.invS2[j] = 1 / (s * s)
				} else {
					st.invS2[j] = 0
				}
			}
			forRows(len(free), opts.Workers, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					i := free[k]
					row := st.grad[k]
					invR := st.invR[k]
					for j := 0; j < numExt; j++ {
						if invR[j] == 0 {
							row[j] = 0
							continue
						}
						s := st.cellsS[j]
						if s <= 0 {
							// Empty cell: joining it alone yields throughput r.
							row[j] = p.Rates[i][j]
							continue
						}
						row[j] = (s - st.cellsN[j]*invR[j]) * st.invS2[j]
					}
				}
			})
		} else {
			// α-fair gradient of f = Σ_j N_j·u_α(1/S_j): the chain rule
			// gives ∂f/∂x_kj = ∂f/∂N_j + ∂f/∂S_j·(1/r_ij) with
			// ∂f/∂N_j = u_α(1/S_j) and ∂f/∂S_j = −N_j·S_j^(α−2), both
			// per-extender quantities hoisted out of the row loop so the
			// inner loop stays one multiply-add per matrix element.
			for j := 0; j < numExt; j++ {
				if s := st.cellsS[j]; s > 0 {
					st.gN[j] = perUserUtil(st.alpha, 1/s)
					st.gS[j] = -st.cellsN[j] * math.Pow(s, st.alpha-2)
				} else {
					st.gN[j], st.gS[j] = 0, 0
				}
			}
			forRows(len(free), opts.Workers, func(lo, hi int) {
				for k := lo; k < hi; k++ {
					i := free[k]
					row := st.grad[k]
					invR := st.invR[k]
					for j := 0; j < numExt; j++ {
						if invR[j] == 0 {
							row[j] = 0
							continue
						}
						if st.cellsS[j] <= 0 {
							// Empty cell: joining it alone yields u_α(r).
							row[j] = perUserUtil(st.alpha, p.Rates[i][j])
							continue
						}
						row[j] = st.gN[j] + st.gS[j]*invR[j]
					}
				}
			})
		}

		// Backtracking line search on the projected step. The candidate
		// build + per-row simplex projection is row-independent and fans
		// out; the accept/backtrack decision is sequential.
		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			stepNow := step
			forRows(len(free), opts.Workers, func(lo, hi int) {
				ps := &st.proj[lo/rowChunk]
				for k := lo; k < hi; k++ {
					row := st.cand[k]
					x, grad := st.x[k], st.grad[k]
					// Unreachable coordinates hold x = 0 and grad = 0,
					// so the unconditional (vectorizable) build writes 0
					// there and the on-support projection leaves them be.
					for j := range row {
						row[j] = x[j] + stepNow*grad[j]
					}
					projectOnSupport(ps, row, st.supports[k])
				}
			})
			obj := st.cells(p, free, st.cand)
			if obj > prev {
				st.x, st.cand = st.cand, st.x
				if obj-prev < opts.Tol {
					prev = obj
					improved = false // converged per the paper's criterion
				} else {
					prev = obj
					improved = true
				}
				break
			}
			step /= 2
			if step < 1e-9 {
				break
			}
		}
		if !improved {
			break
		}
	}

	integral := true
	for k := range st.x {
		for _, mass := range st.x[k] {
			if mass > 1e-6 && mass < 1-1e-6 {
				integral = false
			}
		}
	}

	// Theorem 3 extraction: collapse each user's mass onto one extender,
	// then polish with discrete best-response moves (each move increases
	// the objective, so this terminates).
	assign := p.Fixed.Clone()
	for k, i := range free {
		best, bestMass := -1, -1.0
		for j, mass := range st.x[k] {
			if mass > bestMass {
				best, bestMass = j, mass
			}
		}
		assign[i] = best
	}
	obj, sweeps := polish(p, assign, free, numExt, st.obj)

	// The relaxation is non-convex, so the gradient iterate can land in a
	// poorer basin than a greedy discrete start. Keep the better of the
	// two (multi-start local search).
	if alt, err := solveCoordinate(p, st.obj); err == nil {
		sweeps += alt.PolishSweeps
		if alt.Objective > obj+1e-12 {
			assign = alt.Assign
			obj = alt.Objective
		}
	}

	return &Solution{
		Assign:                assign,
		Objective:             obj,
		Iterations:            iters,
		PolishSweeps:          sweeps,
		IntegralAtConvergence: integral,
	}, nil
}

// CellObjective is one extender's term of a separable placement
// objective: given the cell's load — user count (or fractional mass) n
// and inverse-rate sum s — it returns the cell's contribution, and the
// placement scores Σ_j term(n_j, s_j) (see Total). Larger is better.
// The separable form is what makes O(1) delta scoring possible: a
// single-user move touches two cells, so its effect on the objective is
// the two affected terms' deltas.
type CellObjective func(n, s float64) float64

// SumThroughput is Problem 2's objective term: T_WiFi_j = n_j/s_j, zero
// for an empty cell. n may be fractional (the relaxation's cell masses).
func SumThroughput(n, s float64) float64 {
	if s > 0 {
		return n / s
	}
	return 0
}

// ProportionalFair is the proportional-fairness extension's term: under
// throughput-fair sharing every user on extender j receives 1/s_j, so
// Σ_i log(throughput_i) = -Σ_j n_j·ln(s_j). Maximizing it trades a
// little aggregate throughput for a much flatter allocation.
func ProportionalFair(n, s float64) float64 {
	if n > 0 && s > 0 {
		return -n * math.Log(s)
	}
	return 0
}

// MaxMinSurrogateAlpha is the finite fairness exponent the smooth
// solvers substitute for the α→∞ max-min utility: the true max-min
// objective is non-smooth (a min over cells) and has no useful
// gradient, while the α-fair family converges to it as α grows. α=8 is
// steep enough that starving any user dominates every aggregate gain
// the solvers can express, yet keeps S^(α−2) within float64 range on
// realistic rate spreads. Exact max-min semantics (lexicographic
// Score comparisons) live in the discrete probe loops, not here.
const MaxMinSurrogateAlpha = 8.0

// surrogateAlpha maps a utility to the finite exponent the smooth
// solvers use: its own α, or MaxMinSurrogateAlpha for max-min.
func surrogateAlpha(u model.Utility) float64 {
	if u.MaxMin {
		return MaxMinSurrogateAlpha
	}
	return u.Alpha
}

// perUserUtil is u_α(x) for a finite exponent α ≥ 0 and x > 0 — the
// solver-local scalar the α-fair gradient and cell terms are built
// from (model.Utility.PerUser without the max-min and non-positive
// special cases, which cannot occur inside the relaxation).
func perUserUtil(a, x float64) float64 {
	switch a {
	case 0:
		return x
	case 1:
		return math.Log(x)
	}
	return math.Pow(x, 1-a) / (1 - a)
}

// AlphaFairCell returns the separable cell term of the α-fair
// objective for the given utility: every user on a cell with
// inverse-rate sum s receives throughput 1/s, so a cell of mass n
// contributes n·u_α(1/s) = n·s^(α−1)/(1−α). α=0 returns SumThroughput
// itself (same function value, same bit patterns — the zero utility
// keeps the solver bit-identical to the pre-utility code) and α=1
// returns ProportionalFair; max-min maps to its smooth surrogate
// exponent (MaxMinSurrogateAlpha).
func AlphaFairCell(u model.Utility) CellObjective {
	a := surrogateAlpha(u)
	switch a {
	case 0:
		return SumThroughput
	case 1:
		return ProportionalFair
	}
	return func(n, s float64) float64 {
		if n > 0 && s > 0 {
			return n * math.Pow(s, a-1) / (1 - a)
		}
		return 0
	}
}

// Total evaluates a separable objective on per-extender loads, summing
// the cell terms in ascending extender order. The fixed summation order
// keeps totals bit-identical wherever they are computed (empty cells add
// exactly 0.0, which is exact).
func Total(objective CellObjective, n, s []float64) float64 {
	var total float64
	for j := range n {
		total += objective(n[j], s[j])
	}
	return total
}

// SolveCoordinate places the free users greedily (each on the extender
// that most increases Σ T_WiFi given current loads) and then runs
// best-response sweeps until no single-user move improves the objective.
func SolveCoordinate(p Problem) (*Solution, error) {
	return SolveCoordinateWith(p, SumThroughput)
}

// SolveCoordinateWith is SolveCoordinate under an arbitrary cell
// objective. The returned Solution's Objective is the given objective's
// value (not Σ T_WiFi) unless the objectives coincide.
func SolveCoordinateWith(p Problem, objective CellObjective) (*Solution, error) {
	return solveCoordinate(p, objective)
}

func solveCoordinate(p Problem, objective CellObjective) (*Solution, error) {
	if objective == nil {
		return nil, fmt.Errorf("nlp: nil objective")
	}
	numExt, free, err := p.validate()
	if err != nil {
		return nil, err
	}
	assign := p.Fixed.Clone()

	// Greedy seeding in user order, by marginal objective gain. The
	// objective is separable per cell, so joining extender j changes
	// only j's term — the gain is one term delta, O(1) per candidate.
	n, s := loadOf(p, assign, numExt)
	for _, i := range free {
		bestJ, bestGain := -1, math.Inf(-1)
		for j := 0; j < numExt; j++ {
			r := p.Rates[i][j]
			if r <= 0 {
				continue
			}
			gain := objective(n[j]+1, s[j]+1/r) - objective(n[j], s[j])
			if gain > bestGain {
				bestJ, bestGain = j, gain
			}
		}
		assign[i] = bestJ
		n[bestJ], s[bestJ] = n[bestJ]+1, s[bestJ]+1/p.Rates[i][bestJ]
	}

	obj, sweeps := polish(p, assign, free, numExt, objective)
	return &Solution{Assign: assign, Objective: obj, PolishSweeps: sweeps, IntegralAtConvergence: true}, nil
}

// polish runs discrete best-response sweeps over the free users (single
// moves plus pairwise swaps, which escape the common local optima single
// moves cannot), mutating assign, and returns the final objective and
// the number of sweeps performed.
//
// Scoring leans on the objective's separability: contrib[j] caches
// extender j's term of the current placement, so a candidate move is
// scored as obj plus the two affected terms' deltas — O(1) per
// candidate instead of a full rescan of every cell. The per-extender
// loads (n, s) are maintained across moves, and after each applied move
// the two dirty contribs are refreshed and the objective re-summed over
// all cells in ascending order (O(numExt), exact with respect to the
// cached terms — no drift accumulates across moves).
func polish(p Problem, assign model.Assignment, free []int, numExt int, objective CellObjective) (float64, int) {
	const maxSweeps = 100
	n, s := loadOf(p, assign, numExt)
	contrib := make([]float64, numExt)
	for j := 0; j < numExt; j++ {
		contrib[j] = objective(n[j], s[j])
	}
	resum := func() float64 {
		var total float64
		for j := 0; j < numExt; j++ {
			total += contrib[j]
		}
		return total
	}
	obj := resum()

	sweeps := 0
	for sweep := 0; sweep < maxSweeps; sweep++ {
		sweeps++
		changed := false

		// Single-user moves: per user, score every candidate extender
		// against the current loads and take the best (lowest index wins
		// ties through the strict epsilon comparison). Leaving the
		// current cell contributes the same delta to every candidate, so
		// it is computed once per user.
		for _, i := range free {
			current := assign[i]
			invCur := 1 / p.Rates[i][current]
			fromDelta := objective(n[current]-1, s[current]-invCur) - contrib[current]
			bestJ, bestObj := current, obj
			for j := 0; j < numExt; j++ {
				if j == current || p.Rates[i][j] <= 0 {
					continue
				}
				cand := obj + fromDelta + objective(n[j]+1, s[j]+1/p.Rates[i][j]) - contrib[j]
				if cand > bestObj+1e-12 {
					bestJ, bestObj = j, cand
				}
			}
			if bestJ != current {
				n[current], s[current] = n[current]-1, s[current]-invCur
				n[bestJ], s[bestJ] = n[bestJ]+1, s[bestJ]+1/p.Rates[i][bestJ]
				contrib[current] = objective(n[current], s[current])
				contrib[bestJ] = objective(n[bestJ], s[bestJ])
				obj = resum()
				assign[i] = bestJ
				changed = true
			}
		}

		// Pairwise swaps between free users on different extenders,
		// first-improvement in fixed pair order: an improving swap is
		// applied immediately and the scan resumes at the next pair.
		// Counts are unchanged by a swap; only the two cells' inverse-
		// rate sums move.
		cursor := pairCursor{a: 0, b: 1}
		for {
			a, b, ok := cursor.next(len(free))
			if !ok {
				break
			}
			ia, ib := free[a], free[b]
			ja, jb := assign[ia], assign[ib]
			if ja == jb || p.Rates[ia][jb] <= 0 || p.Rates[ib][ja] <= 0 {
				continue
			}
			sa := s[ja] - 1/p.Rates[ia][ja] + 1/p.Rates[ib][ja]
			sb := s[jb] - 1/p.Rates[ib][jb] + 1/p.Rates[ia][jb]
			cand := obj - contrib[ja] - contrib[jb] + objective(n[ja], sa) + objective(n[jb], sb)
			if cand > obj+1e-12 {
				s[ja], s[jb] = sa, sb
				assign[ia], assign[ib] = jb, ja
				contrib[ja] = objective(n[ja], s[ja])
				contrib[jb] = objective(n[jb], s[jb])
				obj = resum()
				changed = true
			}
		}

		if !changed {
			break
		}
	}
	return obj, sweeps
}

// pairCursor walks the strict upper triangle (a < b) of the free-user
// pair space in fixed row-major order.
type pairCursor struct{ a, b int }

// next returns the cursor's pair and advances it; ok is false when the
// triangle is exhausted.
func (c *pairCursor) next(nFree int) (a, b int, ok bool) {
	for c.a < nFree-1 {
		if c.b >= nFree {
			c.a++
			c.b = c.a + 1
			continue
		}
		a, b = c.a, c.b
		c.b++
		return a, b, true
	}
	return 0, 0, false
}

// joinGain is the change in Σ T_WiFi when a user of rate r joins a cell
// with count n and inverse-rate sum s.
func joinGain(n, s, r float64) float64 {
	before := 0.0
	if s > 0 {
		before = n / s
	}
	return (n+1)/(s+1/r) - before
}

// discreteObjective computes Σ_j T_WiFi_j for an integral assignment.
func discreteObjective(p Problem, assign model.Assignment, numExt int) float64 {
	return objectiveWith(p, assign, numExt, SumThroughput)
}

// objectiveWith evaluates a cell objective on an integral assignment.
func objectiveWith(p Problem, assign model.Assignment, numExt int, objective CellObjective) float64 {
	n, s := loadOf(p, assign, numExt)
	return Total(objective, n, s)
}

func loadOf(p Problem, assign model.Assignment, numExt int) (n, s []float64) {
	n = make([]float64, numExt)
	s = make([]float64, numExt)
	for i, j := range assign {
		if j == model.Unassigned {
			continue
		}
		n[j]++
		s[j] += 1 / p.Rates[i][j]
	}
	return n, s
}

func fixedLoad(p Problem, numExt int) (n, s []float64) {
	return loadOf(p, p.Fixed, numExt)
}

// projScratch holds the reusable buffers of projectSimplexWith.
type projScratch struct {
	support []int
	vals    []float64
	work    []float64
}

// projectSimplex projects row onto the probability simplex restricted to
// coordinates where rates > 0 (unreachable extenders stay at 0), using
// Michelot's deterministic fixed-point filter.
func projectSimplex(row, rates []float64) {
	var ps projScratch
	projectSimplexWith(&ps, row, rates)
}

// projectSimplexWith is projectSimplex with caller-owned scratch buffers,
// for hot loops that project many rows.
//
// Michelot's algorithm: starting from the full support, repeatedly set
// θ = (Σ active − 1)/|active| and drop the values ≤ θ; at the fixed point
// θ is exactly the sort-based Duchi et al. threshold, found in O(n) per
// pass (typically 2–4 passes) with no sort. The maximum always survives
// a pass — θ = (Σ−1)/m ≤ max − 1/m < max — so the active set never
// empties and shrinks strictly until the fixed point. Values are scanned
// in ascending-coordinate order every pass, so θ's arithmetic is a fixed
// function of the input (bit-deterministic across runs and workers).
func projectSimplexWith(ps *projScratch, row, rates []float64) {
	support := ps.support[:0]
	for j, r := range rates {
		if r > 0 {
			support = append(support, j)
		} else {
			row[j] = 0
		}
	}
	ps.support = support
	projectOnSupport(ps, row, support)
}

// projectOnSupport is the projection's hot inner form: the caller owns
// the (precomputed) support list and guarantees every non-support
// coordinate of row is already 0, so only the support coordinates are
// read or written.
func projectOnSupport(ps *projScratch, row []float64, support []int) {
	if len(support) == 0 {
		return
	}
	if cap(ps.vals) < len(support) {
		ps.vals = make([]float64, len(support))
		ps.work = make([]float64, len(support))
	}
	vals := ps.vals[:len(support)]
	act := ps.work[:len(support)]
	sum := 0.0
	for k, j := range support {
		v := row[j]
		vals[k] = v
		act[k] = v
		sum += v
	}
	var theta float64
	for {
		theta = (sum - 1) / float64(len(act))
		kept := 0
		newSum := 0.0
		for _, v := range act {
			if v > theta {
				act[kept] = v
				kept++
				newSum += v
			}
		}
		if kept == len(act) {
			break
		}
		act = act[:kept]
		sum = newSum
	}
	for k, j := range support {
		v := vals[k] - theta
		if v < 0 {
			v = 0
		}
		row[j] = v
	}
}
