// Package nlp solves WOLT's Phase II nonlinear program (Problem 2 in the
// paper): with the Phase I users pinned to their extenders, place the
// remaining users so that the total WiFi throughput Σ_j T_WiFi_j is
// maximized, where
//
//	T_WiFi_j = N_j / S_j,   N_j = #users on j,   S_j = Σ_{i∈N_j} 1/r_ij.
//
// The paper solves the continuous relaxation with an interior-point method
// and stops when the improvement drops below 1e-5; Theorem 3 proves the
// relaxation has integral optima. This package provides:
//
//   - SolveProjectedGradient: a first-order interior solver over per-user
//     simplices using the paper's stopping criterion, followed by the
//     Theorem-3 mass-shifting argument to extract an integral solution.
//
//   - SolveCoordinate: a purely discrete best-response (coordinate ascent)
//     solver used for cross-validation and as a cheap alternative.
//
// Both return complete assignments; tests assert they agree on optima.
//
// # Intra-solve parallelism
//
// Options.Workers fans the per-user work of one solve out over
// internal/parallel: gradient rows and simplex projections are
// row-independent and split into fixed-size row chunks, and the polish
// phase's pairwise-swap candidates are scored concurrently in fixed-size
// chunks folded sequentially in pair order (lowest improving index wins,
// exactly like the sequential scan). Chunk boundaries never depend on the
// worker count, every score is a pure function of the current iterate,
// and all mutation happens in the sequential fold — so results are
// bit-identical for every Workers value (DESIGN.md §7).
package nlp

import (
	"context"
	"fmt"
	"math"
	"sort"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/parallel"
)

// Problem is a Phase II instance.
type Problem struct {
	// Rates is the full user × extender WiFi rate matrix r_ij.
	// Non-positive entries mark unreachable extenders.
	Rates [][]float64
	// Fixed holds the Phase I decisions: Fixed[i] is user i's pinned
	// extender, or model.Unassigned for the users Phase II must place.
	Fixed model.Assignment
}

func (p Problem) validate() (numExt int, free []int, err error) {
	if len(p.Rates) == 0 {
		return 0, nil, fmt.Errorf("nlp: no users")
	}
	numExt = len(p.Rates[0])
	if numExt == 0 {
		return 0, nil, fmt.Errorf("nlp: no extenders")
	}
	if len(p.Fixed) != len(p.Rates) {
		return 0, nil, fmt.Errorf("nlp: fixed assignment covers %d users, rates cover %d",
			len(p.Fixed), len(p.Rates))
	}
	for i, row := range p.Rates {
		if len(row) != numExt {
			return 0, nil, fmt.Errorf("nlp: user %d has %d rates, want %d", i, len(row), numExt)
		}
		j := p.Fixed[i]
		switch {
		case j == model.Unassigned:
			reachable := false
			for _, r := range row {
				if r > 0 {
					reachable = true
					break
				}
			}
			if !reachable {
				return 0, nil, fmt.Errorf("nlp: free user %d reaches no extender", i)
			}
			free = append(free, i)
		case j < 0 || j >= numExt:
			return 0, nil, fmt.Errorf("nlp: user %d fixed to invalid extender %d", i, j)
		case row[j] <= 0:
			return 0, nil, fmt.Errorf("nlp: user %d fixed to unreachable extender %d", i, j)
		}
	}
	return numExt, free, nil
}

// Options tunes the projected-gradient solver.
type Options struct {
	// Tol is the stopping criterion: iteration stops when the objective
	// improves by less than Tol. The paper uses 1e-5.
	Tol float64
	// MaxIter caps gradient iterations (default 2000).
	MaxIter int
	// Step is the initial gradient step size (default 0.5); the solver
	// backtracks when a step does not improve the objective.
	Step float64
	// Workers bounds the goroutines used inside one solve (gradient
	// rows, simplex projections, polish swap scoring). <= 1 runs fully
	// sequentially; results are bit-identical for every value.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-5
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 2000
	}
	if o.Step <= 0 {
		o.Step = 0.5
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// Solution is a completed Phase II placement.
type Solution struct {
	// Assign is the complete assignment (fixed users keep their Phase I
	// extender).
	Assign model.Assignment
	// Objective is Σ_j T_WiFi_j of the final integral assignment.
	Objective float64
	// Iterations is the number of solver iterations performed.
	Iterations int
	// PolishSweeps is the total number of discrete best-response sweeps
	// (single moves + pairwise swaps) run while polishing the integral
	// solution, summed over every polish pass of the solve.
	PolishSweeps int
	// IntegralAtConvergence reports whether the continuous iterate was
	// already (numerically) integral when the gradient solver stopped —
	// the empirical observation the paper makes about Theorem 3.
	IntegralAtConvergence bool
}

// rowChunk is the fixed number of free-user rows per parallel task. It
// must not depend on the worker count (chunk boundaries are part of the
// deterministic schedule); it only bounds task granularity.
const rowChunk = 64

// swapChunk is the fixed number of candidate pair-swaps scored per
// parallel round during polish. Like rowChunk it is workers-independent.
const swapChunk = 1024

// swapSubTasks is the fixed number of scoring sub-ranges one swap chunk
// is split into; each sub-range owns a private scratch copy of the
// per-extender loads.
const swapSubTasks = 16

// forRows runs fn over [0, n) split into rowChunk-sized ranges on the
// given number of workers. fn must only write state owned by its range.
func forRows(n, workers int, fn func(lo, hi int)) {
	chunks := (n + rowChunk - 1) / rowChunk
	if chunks <= 1 || workers <= 1 {
		fn(0, n)
		return
	}
	_ = parallel.ForEach(context.Background(), chunks, workers, func(c int) error {
		lo := c * rowChunk
		hi := lo + rowChunk
		if hi > n {
			hi = n
		}
		fn(lo, hi)
		return nil
	})
}

// pgState holds the projected-gradient solver's reusable buffers so the
// per-iteration loop allocates nothing.
type pgState struct {
	x, cand, grad  [][]float64
	xb, cb, gb     []float64
	cellsN, cellsS []float64
	fixedN, fixedS []float64
	proj           []projScratch
}

func matrixOver(buf []float64, rows, cols int) [][]float64 {
	m := make([][]float64, rows)
	for i := range m {
		m[i] = buf[i*cols : (i+1)*cols]
	}
	return m
}

func newPGState(p Problem, free []int, numExt int) *pgState {
	f := len(free)
	st := &pgState{
		xb:     make([]float64, f*numExt),
		cb:     make([]float64, f*numExt),
		gb:     make([]float64, f*numExt),
		cellsN: make([]float64, numExt),
		cellsS: make([]float64, numExt),
		proj:   make([]projScratch, (f+rowChunk-1)/rowChunk),
	}
	st.x = matrixOver(st.xb, f, numExt)
	st.cand = matrixOver(st.cb, f, numExt)
	st.grad = matrixOver(st.gb, f, numExt)
	st.fixedN, st.fixedS = fixedLoad(p, numExt)
	return st
}

// cells recomputes the fractional per-extender loads of iterate x into
// the state's cell buffers and returns the relaxation objective. The
// accumulation order (fixed load first, then free rows in ascending k)
// is fixed, so the result is bit-identical however the caller
// parallelizes the rest of the iteration.
func (st *pgState) cells(p Problem, free []int, x [][]float64) float64 {
	copy(st.cellsN, st.fixedN)
	copy(st.cellsS, st.fixedS)
	for k, i := range free {
		row := x[k]
		rates := p.Rates[i]
		for j, mass := range row {
			if mass > 0 {
				st.cellsN[j] += mass
				st.cellsS[j] += mass / rates[j]
			}
		}
	}
	return SumThroughput(st.cellsN, st.cellsS)
}

// SolveProjectedGradient solves the Phase II relaxation by projected
// gradient ascent over the free users' assignment simplices and extracts
// an integral solution.
func SolveProjectedGradient(p Problem, opts Options) (*Solution, error) {
	numExt, free, err := p.validate()
	if err != nil {
		return nil, err
	}
	opts = opts.withDefaults()

	if len(free) == 0 {
		assign := p.Fixed.Clone()
		obj := discreteObjective(p, assign, numExt)
		return &Solution{Assign: assign, Objective: obj, IntegralAtConvergence: true}, nil
	}

	st := newPGState(p, free, numExt)

	// x[k][j]: fractional assignment of free user k to extender j,
	// initialized uniformly over reachable extenders.
	for k, i := range free {
		reachable := 0
		for _, r := range p.Rates[i] {
			if r > 0 {
				reachable++
			}
		}
		for j, r := range p.Rates[i] {
			if r > 0 {
				st.x[k][j] = 1 / float64(reachable)
			}
		}
	}

	prev := st.cells(p, free, st.x)
	step := opts.Step
	iters := 0
	for ; iters < opts.MaxIter; iters++ {
		// Per-extender loads of the current iterate, then the gradient of
		// Σ N_j/S_j wrt x_kj: (S_j - N_j/r_ij) / S_j². Rows are
		// independent given the loads, so they fan out.
		st.cells(p, free, st.x)
		forRows(len(free), opts.Workers, func(lo, hi int) {
			for k := lo; k < hi; k++ {
				i := free[k]
				row := st.grad[k]
				for j := 0; j < numExt; j++ {
					r := p.Rates[i][j]
					if r <= 0 {
						row[j] = 0
						continue
					}
					s := st.cellsS[j]
					if s <= 0 {
						// Empty cell: joining it alone yields throughput r.
						row[j] = r
						continue
					}
					row[j] = (s - st.cellsN[j]/r) / (s * s)
				}
			}
		})

		// Backtracking line search on the projected step. The candidate
		// build + per-row simplex projection is row-independent and fans
		// out; the accept/backtrack decision is sequential.
		improved := false
		for attempt := 0; attempt < 20; attempt++ {
			stepNow := step
			forRows(len(free), opts.Workers, func(lo, hi int) {
				ps := &st.proj[lo/rowChunk]
				for k := lo; k < hi; k++ {
					i := free[k]
					row := st.cand[k]
					for j := range row {
						if p.Rates[i][j] > 0 {
							row[j] = st.x[k][j] + stepNow*st.grad[k][j]
						}
					}
					projectSimplexWith(ps, row, p.Rates[i])
				}
			})
			obj := st.cells(p, free, st.cand)
			if obj > prev {
				st.x, st.cand = st.cand, st.x
				if obj-prev < opts.Tol {
					prev = obj
					improved = false // converged per the paper's criterion
				} else {
					prev = obj
					improved = true
				}
				break
			}
			step /= 2
			if step < 1e-9 {
				break
			}
		}
		if !improved {
			break
		}
	}

	integral := true
	for k := range st.x {
		for _, mass := range st.x[k] {
			if mass > 1e-6 && mass < 1-1e-6 {
				integral = false
			}
		}
	}

	// Theorem 3 extraction: collapse each user's mass onto one extender,
	// then polish with discrete best-response moves (each move increases
	// the objective, so this terminates).
	assign := p.Fixed.Clone()
	for k, i := range free {
		best, bestMass := -1, -1.0
		for j, mass := range st.x[k] {
			if mass > bestMass {
				best, bestMass = j, mass
			}
		}
		assign[i] = best
	}
	obj, sweeps := polish(p, assign, free, numExt, SumThroughput, opts.Workers)

	// The relaxation is non-convex, so the gradient iterate can land in a
	// poorer basin than a greedy discrete start. Keep the better of the
	// two (multi-start local search).
	if alt, err := solveCoordinate(p, SumThroughput, opts.Workers); err == nil {
		sweeps += alt.PolishSweeps
		if alt.Objective > obj+1e-12 {
			assign = alt.Assign
			obj = alt.Objective
		}
	}

	return &Solution{
		Assign:                assign,
		Objective:             obj,
		Iterations:            iters,
		PolishSweeps:          sweeps,
		IntegralAtConvergence: integral,
	}, nil
}

// CellObjective scores a complete placement from per-extender loads:
// n[j] is the user count on extender j and s[j] the sum of inverse WiFi
// rates. Larger is better.
type CellObjective func(n, s []float64) float64

// SumThroughput is Problem 2's objective: Σ_j T_WiFi_j = Σ_j n_j/s_j.
func SumThroughput(n, s []float64) float64 {
	var total float64
	for j := range n {
		if s[j] > 0 {
			total += n[j] / s[j]
		}
	}
	return total
}

// ProportionalFair is the proportional-fairness extension: under
// throughput-fair sharing every user on extender j receives 1/s_j, so
// Σ_i log(throughput_i) = -Σ_j n_j·ln(s_j). Maximizing it trades a
// little aggregate throughput for a much flatter allocation.
func ProportionalFair(n, s []float64) float64 {
	var total float64
	for j := range n {
		if n[j] > 0 && s[j] > 0 {
			total -= n[j] * math.Log(s[j])
		}
	}
	return total
}

// SolveCoordinate places the free users greedily (each on the extender
// that most increases Σ T_WiFi given current loads) and then runs
// best-response sweeps until no single-user move improves the objective.
func SolveCoordinate(p Problem) (*Solution, error) {
	return SolveCoordinateWith(p, SumThroughput)
}

// SolveCoordinateWith is SolveCoordinate under an arbitrary cell
// objective. The returned Solution's Objective is the given objective's
// value (not Σ T_WiFi) unless the objectives coincide.
func SolveCoordinateWith(p Problem, objective CellObjective) (*Solution, error) {
	return solveCoordinate(p, objective, 1)
}

func solveCoordinate(p Problem, objective CellObjective, workers int) (*Solution, error) {
	if objective == nil {
		return nil, fmt.Errorf("nlp: nil objective")
	}
	numExt, free, err := p.validate()
	if err != nil {
		return nil, err
	}
	assign := p.Fixed.Clone()

	// Greedy seeding in user order, by marginal objective gain. The
	// per-extender loads are maintained incrementally: probe moves
	// mutate and exactly restore them (save/restore, not add-subtract,
	// so restoration is bit-exact).
	n, s := loadOf(p, assign, numExt)
	for _, i := range free {
		before := objective(n, s)
		bestJ, bestGain := -1, math.Inf(-1)
		for j := 0; j < numExt; j++ {
			r := p.Rates[i][j]
			if r <= 0 {
				continue
			}
			nj, sj := n[j], s[j]
			n[j], s[j] = nj+1, sj+1/r
			gain := objective(n, s) - before
			n[j], s[j] = nj, sj
			if gain > bestGain {
				bestJ, bestGain = j, gain
			}
		}
		assign[i] = bestJ
		n[bestJ], s[bestJ] = n[bestJ]+1, s[bestJ]+1/p.Rates[i][bestJ]
	}

	obj, sweeps := polish(p, assign, free, numExt, objective, workers)
	return &Solution{Assign: assign, Objective: obj, PolishSweeps: sweeps, IntegralAtConvergence: true}, nil
}

// polish runs discrete best-response sweeps over the free users (single
// moves plus pairwise swaps, which escape the common local optima single
// moves cannot), mutating assign, and returns the final objective and
// the number of sweeps performed.
//
// Scoring is incremental: the per-extender loads (n, s) are maintained
// across moves, a candidate is scored by writing the (at most two)
// affected cells and restoring their saved values afterwards, and an
// accepted move re-applies exactly the arithmetic that produced its
// score. Swap candidates are enumerated in fixed pair order and scored
// swapChunk at a time: every pair in a chunk is scored against the same
// state (concurrently when workers > 1, each sub-range on a private copy
// of s), then the lowest improving pair index is applied and the scan
// resumes right after it — exactly the sequential first-improvement
// schedule, for any worker count.
func polish(p Problem, assign model.Assignment, free []int, numExt int, objective CellObjective, workers int) (float64, int) {
	const maxSweeps = 100
	if workers < 1 {
		workers = 1
	}
	n, s := loadOf(p, assign, numExt)
	obj := objective(n, s)

	var (
		chunkA = make([]int, swapChunk)
		chunkB = make([]int, swapChunk)
		scores = make([]float64, swapChunk)
		sBufs  = make([][]float64, swapSubTasks)
	)
	for t := range sBufs {
		sBufs[t] = make([]float64, numExt)
	}

	sweeps := 0
	for sweep := 0; sweep < maxSweeps; sweep++ {
		sweeps++
		changed := false

		// Single-user moves: per user, score every candidate extender
		// against the current loads and take the best (lowest index wins
		// ties through the strict epsilon comparison).
		for _, i := range free {
			current := assign[i]
			invCur := 1 / p.Rates[i][current]
			nCur, sCur := n[current], s[current]
			bestJ, bestObj := current, obj
			for j := 0; j < numExt; j++ {
				if j == current || p.Rates[i][j] <= 0 {
					continue
				}
				nj, sj := n[j], s[j]
				n[current], s[current] = nCur-1, sCur-invCur
				n[j], s[j] = nj+1, sj+1/p.Rates[i][j]
				cand := objective(n, s)
				n[current], s[current] = nCur, sCur
				n[j], s[j] = nj, sj
				if cand > bestObj+1e-12 {
					bestJ, bestObj = j, cand
				}
			}
			if bestJ != current {
				n[current], s[current] = nCur-1, sCur-invCur
				n[bestJ], s[bestJ] = n[bestJ]+1, s[bestJ]+1/p.Rates[i][bestJ]
				assign[i] = bestJ
				obj = bestObj
				changed = true
			}
		}

		// Pairwise swaps between free users on different extenders,
		// first-improvement in fixed pair order via chunked scans.
		cursor := pairCursor{a: 0, b: 1}
		for {
			cnt := 0
			for cnt < swapChunk {
				a, b, ok := cursor.next(len(free))
				if !ok {
					break
				}
				chunkA[cnt], chunkB[cnt] = a, b
				cnt++
			}
			if cnt == 0 {
				break
			}

			stride := (cnt + swapSubTasks - 1) / swapSubTasks
			_ = parallel.ForEach(context.Background(), swapSubTasks, workers, func(t int) error {
				lo := t * stride
				hi := lo + stride
				if hi > cnt {
					hi = cnt
				}
				if lo >= hi {
					return nil
				}
				buf := sBufs[t]
				copy(buf, s)
				for g := lo; g < hi; g++ {
					ia, ib := free[chunkA[g]], free[chunkB[g]]
					ja, jb := assign[ia], assign[ib]
					if ja == jb || p.Rates[ia][jb] <= 0 || p.Rates[ib][ja] <= 0 {
						scores[g] = math.Inf(-1)
						continue
					}
					buf[ja] = s[ja] - 1/p.Rates[ia][ja] + 1/p.Rates[ib][ja]
					buf[jb] = s[jb] - 1/p.Rates[ib][jb] + 1/p.Rates[ia][jb]
					scores[g] = objective(n, buf)
					buf[ja], buf[jb] = s[ja], s[jb]
				}
				return nil
			})

			applied := false
			for g := 0; g < cnt; g++ {
				if scores[g] > obj+1e-12 {
					ia, ib := free[chunkA[g]], free[chunkB[g]]
					ja, jb := assign[ia], assign[ib]
					s[ja] = s[ja] - 1/p.Rates[ia][ja] + 1/p.Rates[ib][ja]
					s[jb] = s[jb] - 1/p.Rates[ib][jb] + 1/p.Rates[ia][jb]
					assign[ia], assign[ib] = jb, ja
					obj = scores[g]
					changed = true
					applied = true
					cursor = pairCursor{a: chunkA[g], b: chunkB[g] + 1}
					break
				}
			}
			if !applied && cnt < swapChunk {
				break // triangle exhausted with no improvement left
			}
		}

		if !changed {
			break
		}
	}
	return obj, sweeps
}

// pairCursor walks the strict upper triangle (a < b) of the free-user
// pair space in fixed row-major order.
type pairCursor struct{ a, b int }

// next returns the cursor's pair and advances it; ok is false when the
// triangle is exhausted.
func (c *pairCursor) next(nFree int) (a, b int, ok bool) {
	for c.a < nFree-1 {
		if c.b >= nFree {
			c.a++
			c.b = c.a + 1
			continue
		}
		a, b = c.a, c.b
		c.b++
		return a, b, true
	}
	return 0, 0, false
}

// joinGain is the change in Σ T_WiFi when a user of rate r joins a cell
// with count n and inverse-rate sum s.
func joinGain(n, s, r float64) float64 {
	before := 0.0
	if s > 0 {
		before = n / s
	}
	return (n+1)/(s+1/r) - before
}

// discreteObjective computes Σ_j T_WiFi_j for an integral assignment.
func discreteObjective(p Problem, assign model.Assignment, numExt int) float64 {
	return objectiveWith(p, assign, numExt, SumThroughput)
}

// objectiveWith evaluates a cell objective on an integral assignment.
func objectiveWith(p Problem, assign model.Assignment, numExt int, objective CellObjective) float64 {
	n, s := loadOf(p, assign, numExt)
	return objective(n, s)
}

func loadOf(p Problem, assign model.Assignment, numExt int) (n, s []float64) {
	n = make([]float64, numExt)
	s = make([]float64, numExt)
	for i, j := range assign {
		if j == model.Unassigned {
			continue
		}
		n[j]++
		s[j] += 1 / p.Rates[i][j]
	}
	return n, s
}

func fixedLoad(p Problem, numExt int) (n, s []float64) {
	return loadOf(p, p.Fixed, numExt)
}

// projScratch holds the reusable buffers of projectSimplexWith.
type projScratch struct {
	support []int
	vals    []float64
	sorted  []float64
}

// projectSimplex projects row onto the probability simplex restricted to
// coordinates where rates > 0 (unreachable extenders stay at 0), using the
// sort-based algorithm of Duchi et al.
func projectSimplex(row, rates []float64) {
	var ps projScratch
	projectSimplexWith(&ps, row, rates)
}

// projectSimplexWith is projectSimplex with caller-owned scratch buffers,
// for hot loops that project many rows.
func projectSimplexWith(ps *projScratch, row, rates []float64) {
	support := ps.support[:0]
	for j, r := range rates {
		if r > 0 {
			support = append(support, j)
		} else {
			row[j] = 0
		}
	}
	ps.support = support
	if len(support) == 0 {
		return
	}
	if cap(ps.vals) < len(support) {
		ps.vals = make([]float64, len(support))
		ps.sorted = make([]float64, len(support))
	}
	vals := ps.vals[:len(support)]
	sorted := ps.sorted[:len(support)]
	for k, j := range support {
		vals[k] = row[j]
	}
	copy(sorted, vals)
	sort.Sort(sort.Reverse(sort.Float64Slice(sorted)))
	var cum, theta float64
	rho := -1
	for k, v := range sorted {
		cum += v
		t := (cum - 1) / float64(k+1)
		if v-t > 0 {
			rho = k
			theta = t
		}
	}
	if rho < 0 {
		// Degenerate (all mass far negative): uniform.
		for _, j := range support {
			row[j] = 1 / float64(len(support))
		}
		return
	}
	for k, j := range support {
		v := vals[k] - theta
		if v < 0 {
			v = 0
		}
		row[j] = v
	}
}
