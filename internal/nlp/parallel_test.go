package nlp

import (
	"math"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/seed"
)

// largeProblem builds a deterministic Phase II instance: users users
// over numExt extenders, the first numExt users pinned (as Phase I
// would), everyone else free.
func largeProblem(users, numExt int) Problem {
	rng := seed.Root(42)
	rates := make([][]float64, users)
	fixed := make(model.Assignment, users)
	steps := []float64{6, 9, 12, 18, 24, 36, 48, 54}
	for i := range rates {
		rates[i] = make([]float64, numExt)
		reachable := false
		for j := range rates[i] {
			// Sparse reachability with 802.11g-like rate steps.
			if rng.Float64() < 0.6 {
				rates[i][j] = steps[rng.Intn(len(steps))]
				reachable = true
			}
		}
		if !reachable {
			rates[i][rng.Intn(numExt)] = steps[rng.Intn(len(steps))]
		}
		fixed[i] = model.Unassigned
	}
	for j := 0; j < numExt; j++ {
		// Pin user j to extender j, making the pair reachable if needed.
		if rates[j][j] <= 0 {
			rates[j][j] = steps[rng.Intn(len(steps))]
		}
		fixed[j] = j
	}
	return Problem{Rates: rates, Fixed: fixed}
}

// TestProjectedGradientWorkerBitIdentity is the DESIGN.md §7 contract
// for intra-solve parallelism: a 1k-user solve is bit-identical — same
// assignment, bit-equal objective, same iteration and sweep counts —
// for every worker count.
func TestProjectedGradientWorkerBitIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("1k-user solve in -short mode")
	}
	p := largeProblem(1000, 12)
	ref, err := SolveProjectedGradient(p, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8} {
		got, err := SolveProjectedGradient(p, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != ref.Objective {
			t.Errorf("workers=%d: objective %v != %v (diff %g)",
				workers, got.Objective, ref.Objective, got.Objective-ref.Objective)
		}
		if got.Iterations != ref.Iterations {
			t.Errorf("workers=%d: iterations %d != %d", workers, got.Iterations, ref.Iterations)
		}
		if got.PolishSweeps != ref.PolishSweeps {
			t.Errorf("workers=%d: polish sweeps %d != %d", workers, got.PolishSweeps, ref.PolishSweeps)
		}
		for i := range got.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("workers=%d: user %d assigned to %d, want %d",
					workers, i, got.Assign[i], ref.Assign[i])
			}
		}
	}
}

// TestWorkerBitIdentitySmall covers the boundary shapes (fewer rows than
// one chunk, exactly one chunk, just past a chunk) quickly.
func TestWorkerBitIdentitySmall(t *testing.T) {
	for _, users := range []int{5, rowChunk, rowChunk + 1, 3 * rowChunk} {
		p := largeProblem(users, 4)
		ref, err := SolveProjectedGradient(p, Options{Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		got, err := SolveProjectedGradient(p, Options{Workers: 8})
		if err != nil {
			t.Fatal(err)
		}
		if got.Objective != ref.Objective || got.Iterations != ref.Iterations ||
			got.PolishSweeps != ref.PolishSweeps {
			t.Fatalf("users=%d: (obj, iters, sweeps) = (%v,%d,%d) != (%v,%d,%d)",
				users, got.Objective, got.Iterations, got.PolishSweeps,
				ref.Objective, ref.Iterations, ref.PolishSweeps)
		}
		for i := range got.Assign {
			if got.Assign[i] != ref.Assign[i] {
				t.Fatalf("users=%d: assignment diverged at user %d", users, i)
			}
		}
	}
}

// FuzzProjectSimplex checks the three invariants of the capped-support
// simplex projection: the result is a distribution over the reachable
// support (sums to one, non-negative), unreachable coordinates stay
// zero, and the projection is idempotent.
func FuzzProjectSimplex(f *testing.F) {
	f.Add(0.3, -0.2, 1.5, 0.1, int64(1))
	f.Add(0.0, 0.0, 0.0, 0.0, int64(2))
	f.Add(-5.0, 10.0, 0.25, 0.25, int64(3))
	f.Add(1e9, -1e9, 1e-9, 0.5, int64(4))
	f.Fuzz(func(t *testing.T, a, b, c, d float64, seedV int64) {
		row := []float64{a, b, c, d}
		for _, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Skip()
			}
		}
		rng := seed.Root(seedV)
		rates := make([]float64, len(row))
		support := 0
		for j := range rates {
			if rng.Intn(3) > 0 { // ~2/3 reachable
				rates[j] = 6 + 48*rng.Float64()
				support++
			}
		}
		projectSimplex(row, rates)

		if support == 0 {
			for j, r := range rates {
				if r <= 0 && row[j] != 0 {
					t.Fatalf("unreachable coordinate %d = %v, want 0", j, row[j])
				}
			}
			return
		}
		sum := 0.0
		for j, v := range row {
			if rates[j] <= 0 {
				if v != 0 {
					t.Fatalf("unreachable coordinate %d = %v, want 0", j, v)
				}
				continue
			}
			if v < 0 {
				t.Fatalf("negative mass %v at %d", v, j)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-6 {
			t.Fatalf("mass sums to %v, want 1 (row=%v rates=%v)", sum, row, rates)
		}

		again := append([]float64(nil), row...)
		projectSimplex(again, rates)
		for j := range row {
			if math.Abs(again[j]-row[j]) > 1e-9 {
				t.Fatalf("not idempotent at %d: %v -> %v", j, row[j], again[j])
			}
		}
	})
}
