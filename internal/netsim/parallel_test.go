package netsim

import (
	"math/rand"
	"reflect"
	"testing"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/topology"
)

func staticPolicies() []Policy {
	return []Policy{
		WOLTPolicy{},
		GreedyPolicy{ModelOpts: redistribute},
		SelfishPolicy{ModelOpts: redistribute},
		RSSIPolicy{},
	}
}

// TestRunStaticDeterministicAcrossWorkers asserts the determinism
// contract: the full result — every per-trial aggregate, per-user
// vector, Jain index and saturation fraction — is bit-identical no
// matter how many workers run the trials.
func TestRunStaticDeterministicAcrossWorkers(t *testing.T) {
	cfg := StaticConfig{
		Topology:  topology.Config{NumExtenders: 5, NumUsers: 20, Seed: 77},
		Trials:    12,
		ModelOpts: redistribute,
	}
	cfg.Workers = 1
	want, err := RunStatic(cfg, staticPolicies())
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8, 0} {
		cfg.Workers = workers
		got, err := RunStatic(cfg, staticPolicies())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers:%d result differs from Workers:1", workers)
		}
	}
}

// TestRunStaticRandomForcedSequential: a policy set containing
// RandomPolicy (shared *rand.Rand) must produce the sequential result
// even when many workers are requested.
func TestRunStaticRandomForcedSequential(t *testing.T) {
	run := func(workers int) []StaticResult {
		t.Helper()
		cfg := StaticConfig{
			Topology:  smallTopoCfg(5),
			Trials:    6,
			ModelOpts: redistribute,
			Workers:   workers,
		}
		policies := []Policy{
			RandomPolicy{Rng: rand.New(rand.NewSource(9))},
			RSSIPolicy{},
		}
		res, err := RunStatic(cfg, policies)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	if !reflect.DeepEqual(run(8), run(1)) {
		t.Fatal("RandomPolicy run not forced sequential")
	}
}

// TestRunTrialMatchesRunStatic: the exported per-trial unit of work
// agrees bit-for-bit with the corresponding RunStatic row.
func TestRunTrialMatchesRunStatic(t *testing.T) {
	topoCfg := topology.Config{NumExtenders: 4, NumUsers: 16, Seed: 31}
	cfg := StaticConfig{Topology: topoCfg, Trials: 3, ModelOpts: redistribute, Workers: 1}
	static, err := RunStatic(cfg, staticPolicies())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		tc := topoCfg
		tc.Seed = seed.Derive(topoCfg.Seed, seed.NetsimTrial, int64(trial))
		trs, err := RunTrial(tc, radio.DefaultModel(), staticPolicies(), redistribute)
		if err != nil {
			t.Fatal(err)
		}
		for p := range trs {
			if !reflect.DeepEqual(trs[p], static[p].Trials[trial]) {
				t.Fatalf("trial %d policy %d: RunTrial differs from RunStatic", trial, p)
			}
		}
	}
}

// TestRunStaticSaturationFractionBounds sanity-checks the new per-trial
// saturation signal and its aggregate helper.
func TestRunStaticSaturationFractionBounds(t *testing.T) {
	cfg := StaticConfig{
		Topology: topology.Config{
			NumExtenders: 4, NumUsers: 24, Seed: 11,
			// Starved backhaul: saturation should be common.
			PLCCapacityMinMbps: 5, PLCCapacityMaxMbps: 10,
		},
		Trials:    5,
		ModelOpts: redistribute,
	}
	results, err := RunStatic(cfg, []Policy{WOLTPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range results[0].Trials {
		if tr.SaturationFraction < 0 || tr.SaturationFraction > 1 {
			t.Fatalf("saturation fraction %v out of [0,1]", tr.SaturationFraction)
		}
	}
	if m := results[0].MeanSaturation(); m <= 0 {
		t.Fatalf("starved PLC backhaul should saturate some extenders, mean %v", m)
	}
}

func BenchmarkStatic(b *testing.B) {
	cfg := StaticConfig{
		Topology:  topology.Config{NumExtenders: 8, NumUsers: 48, Seed: 3},
		Trials:    16,
		ModelOpts: redistribute,
	}
	policies := []Policy{
		WOLTPolicy{Options: core.Options{}},
		GreedyPolicy{ModelOpts: redistribute},
		RSSIPolicy{},
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"Workers1", 1}, {"WorkersAll", 0}} {
		cfg.Workers = bc.workers
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := RunStatic(cfg, policies); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
