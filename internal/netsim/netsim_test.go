package netsim

import (
	"math"
	"math/rand"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/topology"
)

var redistribute = model.Options{Redistribute: true}

func smallTopoCfg(seed int64) topology.Config {
	return topology.Config{NumExtenders: 4, NumUsers: 12, Seed: seed}
}

func TestBuildShapes(t *testing.T) {
	topo, err := topology.Generate(smallTopoCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	inst := Build(topo, radio.DefaultModel())
	if inst.Net.NumUsers() != 12 || inst.Net.NumExtenders() != 4 {
		t.Fatalf("network shape %dx%d", inst.Net.NumUsers(), inst.Net.NumExtenders())
	}
	if err := inst.Net.Validate(); err != nil {
		t.Fatal(err)
	}
	for i, row := range inst.Net.WiFiRates {
		for j, r := range row {
			if r <= 0 {
				t.Errorf("rate[%d][%d] = %v, want positive (floor rate)", i, j, r)
			}
		}
	}
	if len(inst.RSSI) != 12 || len(inst.RSSI[0]) != 4 {
		t.Fatal("RSSI matrix shape wrong")
	}
	for i, id := range inst.UserIDs {
		if id != topo.Users[i].ID {
			t.Errorf("UserIDs[%d] = %d, want %d", i, id, topo.Users[i].ID)
		}
	}
}

func TestRSSIAndRateOrderingAgree(t *testing.T) {
	// With a monotone rate table, the strongest-RSSI extender also has
	// the highest (or tied) rate.
	topo, err := topology.Generate(smallTopoCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	inst := Build(topo, radio.DefaultModel())
	for i := range inst.RSSI {
		bestSig, bestJ := math.Inf(-1), -1
		for j, sig := range inst.RSSI[i] {
			if sig > bestSig {
				bestSig, bestJ = sig, j
			}
		}
		maxRate := 0.0
		for _, r := range inst.Net.WiFiRates[i] {
			if r > maxRate {
				maxRate = r
			}
		}
		if inst.Net.WiFiRates[i][bestJ] != maxRate {
			t.Errorf("user %d: strongest-RSSI extender rate %v below max %v",
				i, inst.Net.WiFiRates[i][bestJ], maxRate)
		}
	}
}

func TestRunStaticValidation(t *testing.T) {
	if _, err := RunStatic(StaticConfig{Trials: 0}, []Policy{RSSIPolicy{}}); err == nil {
		t.Error("zero trials: want error")
	}
	if _, err := RunStatic(StaticConfig{Topology: smallTopoCfg(1), Trials: 1}, nil); err == nil {
		t.Error("no policies: want error")
	}
}

func TestRunStaticAllPolicies(t *testing.T) {
	cfg := StaticConfig{
		Topology:  smallTopoCfg(10),
		Trials:    5,
		ModelOpts: redistribute,
	}
	policies := []Policy{
		WOLTPolicy{},
		GreedyPolicy{ModelOpts: redistribute},
		SelfishPolicy{ModelOpts: redistribute},
		RSSIPolicy{},
		RandomPolicy{Rng: rand.New(rand.NewSource(1))},
	}
	results, err := RunStatic(cfg, policies)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if len(r.Trials) != 5 {
			t.Errorf("%s: %d trials, want 5", r.Policy, len(r.Trials))
		}
		for i, tr := range r.Trials {
			if tr.Aggregate <= 0 {
				t.Errorf("%s trial %d: non-positive aggregate %v", r.Policy, i, tr.Aggregate)
			}
			if tr.Jain <= 0 || tr.Jain > 1 {
				t.Errorf("%s trial %d: Jain %v outside (0,1]", r.Policy, i, tr.Jain)
			}
			if len(tr.PerUser) != 12 {
				t.Errorf("%s trial %d: %d per-user entries", r.Policy, i, len(tr.PerUser))
			}
		}
	}
}

func TestWOLTBeatsBaselinesAtScale(t *testing.T) {
	// The headline claim (Fig 6a shape): in the enterprise simulation
	// regime — AV2-class PLC links, so WiFi is frequently the bottleneck
	// and association quality matters — WOLT's mean aggregate exceeds
	// Selfish's, Greedy's and RSSI's. (When the PLC backhaul saturates
	// everywhere, all spreading policies collapse to Σc_j/A and the
	// association problem is degenerate; see DESIGN.md.)
	rm := radio.DefaultModel()
	rm.Channel.PathLossExponent = 3.5
	rm.Channel.TxPowerDBm = 14
	cfg := StaticConfig{
		Topology: topology.Config{
			NumExtenders: 10, NumUsers: 36, Seed: 100,
			PLCCapacityMinMbps: 300, PLCCapacityMaxMbps: 800,
		},
		Radio:     &rm,
		Trials:    8,
		ModelOpts: redistribute,
	}
	results, err := RunStatic(cfg, []Policy{
		WOLTPolicy{},
		GreedyPolicy{ModelOpts: redistribute},
		SelfishPolicy{ModelOpts: redistribute},
		RSSIPolicy{},
	})
	if err != nil {
		t.Fatal(err)
	}
	wolt := results[0].MeanAggregate()
	for _, other := range results[1:] {
		if wolt <= other.MeanAggregate() {
			t.Errorf("WOLT mean %v not above %s mean %v", wolt, other.Policy, other.MeanAggregate())
		}
	}
}

func TestStaticDeterministic(t *testing.T) {
	cfg := StaticConfig{Topology: smallTopoCfg(42), Trials: 3, ModelOpts: redistribute}
	a, err := RunStatic(cfg, []Policy{WOLTPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunStatic(cfg, []Policy{WOLTPolicy{}})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a[0].Trials {
		if a[0].Trials[i].Aggregate != b[0].Trials[i].Aggregate {
			t.Fatalf("trial %d aggregate differs across identical runs", i)
		}
	}
}

func TestOnArrivalErrors(t *testing.T) {
	topo, err := topology.Generate(smallTopoCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	inst := Build(topo, radio.DefaultModel())
	assign := newUnassigned(len(topo.Users))
	if err := (WOLTPolicy{}).OnArrival(inst, assign, 99); err == nil {
		t.Error("out-of-range user: want error")
	}
	if err := (WOLTPolicy{}).OnArrival(inst, assign, -1); err == nil {
		t.Error("negative user: want error")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"WOLT":    WOLTPolicy{},
		"Greedy":  GreedyPolicy{},
		"Selfish": SelfishPolicy{},
		"RSSI":    RSSIPolicy{},
		"Random":  RandomPolicy{},
	}
	for want, p := range names {
		if p.Name() != want {
			t.Errorf("policy name = %q, want %q", p.Name(), want)
		}
	}
}

func TestBaselineOnEpochIsIdentity(t *testing.T) {
	topo, err := topology.Generate(smallTopoCfg(9))
	if err != nil {
		t.Fatal(err)
	}
	inst := Build(topo, radio.DefaultModel())
	assign := newUnassigned(len(topo.Users))
	for i := range topo.Users {
		if err := (RSSIPolicy{}).OnArrival(inst, assign, i); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range []Policy{
		GreedyPolicy{ModelOpts: redistribute},
		SelfishPolicy{ModelOpts: redistribute},
		RSSIPolicy{},
		RandomPolicy{Rng: rand.New(rand.NewSource(1))},
	} {
		out, err := p.OnEpoch(inst, assign)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if out.Diff(assign) != 0 {
			t.Errorf("%s OnEpoch changed the assignment", p.Name())
		}
	}
}

func TestSelfishPolicyOnArrival(t *testing.T) {
	topo, err := topology.Generate(smallTopoCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	inst := Build(topo, radio.DefaultModel())
	assign := newUnassigned(len(topo.Users))
	for i := range topo.Users {
		if err := (SelfishPolicy{ModelOpts: redistribute}).OnArrival(inst, assign, i); err != nil {
			t.Fatal(err)
		}
		if assign[i] == model.Unassigned {
			t.Fatalf("user %d left unassigned", i)
		}
	}
}
