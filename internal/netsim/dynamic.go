package netsim

import (
	"fmt"
	"math"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
	"github.com/plcwifi/wolt/internal/workload"
)

// DynamicConfig parameterizes churn experiments (the paper's Fig 6b/6c).
type DynamicConfig struct {
	// Topology describes the floor plan and extender deployment;
	// Topology.NumUsers is the initial population.
	Topology topology.Config
	// Radio is the WiFi model; nil selects radio.DefaultModel.
	Radio *radio.Model
	// Churn drives arrivals/departures. Churn.InitialUsers is overridden
	// with Topology.NumUsers.
	Churn workload.Config
	// EpochLen is the time between controller recomputations. The
	// paper's growth trajectory (36→66→102 with rates 3/1) corresponds
	// to epochs of ~16 time units.
	EpochLen  float64
	ModelOpts model.Options
}

func (c DynamicConfig) radioModel() radio.Model {
	if c.Radio != nil {
		return *c.Radio
	}
	return radio.DefaultModel()
}

// EpochResult is the network state at one epoch boundary, after the
// policy's recomputation.
type EpochResult struct {
	Epoch      int
	Users      int
	Arrivals   int
	Departures int
	Aggregate  float64
	Jain       float64
	// Reassignments counts users whose extender changed in the epoch-end
	// recomputation (arrival-time initial associations do not count).
	Reassignments int
}

// RunDynamic replays a churn trace against one policy: arrivals are
// placed by the policy's online rule the moment they appear, departures
// free their extender, and at every epoch boundary the policy may
// recompute the full association (WOLT does; the baselines do not).
func RunDynamic(cfg DynamicConfig, policy Policy) ([]EpochResult, error) {
	if cfg.EpochLen <= 0 {
		return nil, fmt.Errorf("netsim: non-positive epoch length %v", cfg.EpochLen)
	}
	churn := cfg.Churn
	churn.InitialUsers = cfg.Topology.NumUsers
	if churn.Horizon <= 0 {
		return nil, fmt.Errorf("netsim: non-positive churn horizon %v", churn.Horizon)
	}
	events, err := workload.Generate(churn)
	if err != nil {
		return nil, err
	}

	topo, err := topology.Generate(cfg.Topology)
	if err != nil {
		return nil, err
	}
	// Positions for arriving users come from a dedicated stream so the
	// trace and the geometry stay independently reproducible.
	posRng := seed.Rand(cfg.Topology.Seed, seed.NetsimPositions, 0)

	// Current association, keyed by topology user ID.
	current := make(map[int]int, len(topo.Users))

	// One workspace serves the whole trace: the cached strategy instance
	// (and its delta evaluator / solver scratches) persists across
	// arrivals and epochs instead of being rebuilt per event, and full
	// evaluations share one scratch.
	ws := &trialWorkspace{}

	rm := cfg.radioModel()
	inst := Build(topo, rm)
	assign := newUnassigned(len(topo.Users))
	for i := range topo.Users {
		if err := policyArrival(policy, inst, assign, i, ws, 0); err != nil {
			return nil, err
		}
		current[inst.UserIDs[i]] = assign[i]
	}

	numEpochs := int(math.Ceil(churn.Horizon / cfg.EpochLen))
	results := make([]EpochResult, 0, numEpochs)
	evIdx := 0
	for epoch := 0; epoch < numEpochs; epoch++ {
		boundary := float64(epoch+1) * cfg.EpochLen
		arrivals, departures := 0, 0
		for evIdx < len(events) && events[evIdx].Time <= boundary {
			ev := events[evIdx]
			evIdx++
			switch ev.Kind {
			case workload.Arrival:
				if err := topo.AddUserWithID(ev.UserID, topo.RandomPoint(posRng)); err != nil {
					return nil, err
				}
				inst = Build(topo, rm)
				assign = assignFromMap(inst, current)
				row := rowOf(inst, ev.UserID)
				if row < 0 {
					return nil, fmt.Errorf("netsim: arrived user %d missing from topology", ev.UserID)
				}
				if err := policyArrival(policy, inst, assign, row, ws, 0); err != nil {
					return nil, err
				}
				current[ev.UserID] = assign[row]
				arrivals++
			case workload.Departure:
				topo.RemoveUser(ev.UserID)
				delete(current, ev.UserID)
				departures++
			}
		}

		inst = Build(topo, rm)
		assign = assignFromMap(inst, current)
		newAssign, err := policyEpoch(policy, inst, assign, ws, 0)
		if err != nil {
			return nil, err
		}
		reassigned := assign.Diff(newAssign)
		for i, j := range newAssign {
			current[inst.UserIDs[i]] = j
		}

		res, err := model.EvaluateWith(&ws.eval, inst.Net, newAssign, cfg.ModelOpts)
		if err != nil {
			return nil, err
		}
		results = append(results, EpochResult{
			Epoch:         epoch,
			Users:         len(topo.Users),
			Arrivals:      arrivals,
			Departures:    departures,
			Aggregate:     res.Aggregate,
			Jain:          stats.JainIndex(res.PerUser),
			Reassignments: reassigned,
		})
	}
	return results, nil
}

func assignFromMap(inst *Instance, current map[int]int) model.Assignment {
	assign := newUnassigned(len(inst.UserIDs))
	for i, id := range inst.UserIDs {
		if j, ok := current[id]; ok {
			assign[i] = j
		}
	}
	return assign
}

func rowOf(inst *Instance, userID int) int {
	for i, id := range inst.UserIDs {
		if id == userID {
			return i
		}
	}
	return -1
}
