// Package netsim is the flow-level network simulator used for the paper's
// large-scale evaluation (§V-E): it combines a physical topology, the
// WiFi radio model and the PLC capacity model into a model.Network,
// applies an association policy (WOLT or a baseline), and evaluates
// end-to-end throughputs under the PLC+WiFi sharing model.
//
// Two experiment drivers are provided: RunStatic (independent trials with
// a fixed user population — Fig 6a and the fairness table) and RunDynamic
// (Poisson arrival/departure churn evaluated at epoch boundaries —
// Fig 6b/6c).
package netsim

import (
	"context"
	"fmt"
	"math/rand"
	"sync"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/topology"
)

// Instance is a concrete network: topology plus derived rate matrices.
type Instance struct {
	Topo *topology.Topology
	// Net is the association-problem input (r_ij, c_j) derived from the
	// topology through the radio model.
	Net *model.Network
	// RSSI[i][j] is the received signal strength used by RSSI-based
	// association.
	RSSI [][]float64
	// UserIDs maps network row index to topology user ID.
	UserIDs []int
}

// Build derives the model inputs from a topology using the radio model.
// Shadowing offsets are keyed by stable user and extender IDs, so a
// link's quality does not change when the topology is rebuilt after churn.
func Build(topo *topology.Topology, rm radio.Model) *Instance {
	distances := topo.Distances()
	inst := &Instance{
		Topo: topo,
		Net: &model.Network{
			WiFiRates: make([][]float64, len(distances)),
			PLCCaps:   topo.PLCCapacities(),
		},
		RSSI:    make([][]float64, len(distances)),
		UserIDs: make([]int, len(topo.Users)),
	}
	for i, row := range distances {
		uid := topo.Users[i].ID
		inst.Net.WiFiRates[i] = make([]float64, len(row))
		inst.RSSI[i] = make([]float64, len(row))
		for j, d := range row {
			eid := topo.Extenders[j].ID
			inst.Net.WiFiRates[i][j] = rm.LinkRate(d, uid, eid)
			inst.RSSI[i][j] = rm.LinkRSSI(d, uid, eid)
		}
	}
	for i, u := range topo.Users {
		inst.UserIDs[i] = u.ID
	}
	return inst
}

// Policy is an association policy driven by the simulator. OnArrival
// handles a single user joining (online step); OnEpoch runs at epoch
// boundaries and may recompute the complete association.
type Policy interface {
	Name() string
	// OnArrival associates the newly arrived user (a row index into
	// inst.Net), mutating assign in place.
	OnArrival(inst *Instance, assign model.Assignment, user int) error
	// OnEpoch optionally recomputes the full association and returns it;
	// policies that never reassign return assign unchanged.
	OnEpoch(inst *Instance, assign model.Assignment) (model.Assignment, error)
}

// WOLTPolicy implements the paper's system: arrivals connect to the
// strongest-RSSI extender to reach the central controller, and the
// controller recomputes the full two-phase assignment at epoch ends.
type WOLTPolicy struct {
	Options core.Options
}

// Name implements Policy.
func (WOLTPolicy) Name() string { return "WOLT" }

// newStrategy implements strategyBacked: the epoch recomputation is the
// "wolt" registry strategy (arrivals stay signal-based — the strategy
// layer sees rates, not RSSI).
func (p WOLTPolicy) newStrategy() (strategy.Strategy, error) {
	return strategy.New("wolt", strategy.Config{Core: p.Options})
}

// OnArrival implements Policy: initial contact via strongest RSSI.
func (WOLTPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	return assignBestRSSI(inst, assign, user)
}

// OnEpoch implements Policy: full two-phase recomputation.
func (p WOLTPolicy) OnEpoch(inst *Instance, assign model.Assignment) (model.Assignment, error) {
	st, err := p.newStrategy()
	if err != nil {
		return nil, err
	}
	return strategyEpoch(st, inst, assign)
}

// GreedyPolicy is the paper's online baseline: each arrival picks the
// extender maximizing the aggregate throughput; nobody ever moves.
type GreedyPolicy struct {
	ModelOpts model.Options
}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "Greedy" }

// newStrategy implements strategyBacked.
func (p GreedyPolicy) newStrategy() (strategy.Strategy, error) {
	return strategy.New("greedy", strategy.Config{ModelOpts: p.ModelOpts})
}

// OnArrival implements Policy.
func (p GreedyPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	st, err := p.newStrategy()
	if err != nil {
		return err
	}
	return strategyArrival(st, inst, assign, user)
}

// OnEpoch implements Policy: greedy never reassigns.
func (GreedyPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

// SelfishPolicy is the online greedy of the paper's §III-B case study:
// each arriving user picks the extender maximizing its own end-to-end
// throughput; nobody ever moves.
type SelfishPolicy struct {
	ModelOpts model.Options
}

// Name implements Policy.
func (SelfishPolicy) Name() string { return "Selfish" }

// newStrategy implements strategyBacked.
func (p SelfishPolicy) newStrategy() (strategy.Strategy, error) {
	return strategy.New("selfish", strategy.Config{ModelOpts: p.ModelOpts})
}

// OnArrival implements Policy.
func (p SelfishPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	st, err := p.newStrategy()
	if err != nil {
		return err
	}
	return strategyArrival(st, inst, assign, user)
}

// OnEpoch implements Policy: selfish users never move.
func (SelfishPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

// RSSIPolicy is the commodity default: strongest signal wins, forever.
type RSSIPolicy struct{}

// Name implements Policy.
func (RSSIPolicy) Name() string { return "RSSI" }

// OnArrival implements Policy.
func (RSSIPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	return assignBestRSSI(inst, assign, user)
}

// OnEpoch implements Policy: RSSI never reassigns.
func (RSSIPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

// RandomPolicy associates arrivals uniformly at random; a sanity floor.
type RandomPolicy struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (RandomPolicy) Name() string { return "Random" }

// newStrategy implements strategyBacked. Every instance shares the
// policy's rng, which is why the policy is sequentialOnly.
func (p RandomPolicy) newStrategy() (strategy.Strategy, error) {
	return strategy.New("random", strategy.Config{Rng: p.Rng})
}

// OnArrival implements Policy.
func (p RandomPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	st, err := p.newStrategy()
	if err != nil {
		return err
	}
	return strategyArrival(st, inst, assign, user)
}

// OnEpoch implements Policy.
func (RandomPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

// sequentialOnly marks RandomPolicy as unsafe for parallel trials: its
// shared *rand.Rand would race across workers and its draw order would
// depend on scheduling, so RunStatic drops to a single worker when the
// policy set includes it.
func (RandomPolicy) sequentialOnly() {}

// StrategyPolicy adapts any strategy-registry name to the simulator —
// the generic bridge that lets new strategies (notably the anytime
// local-search family) be priced against the built-in policies in the
// dynamic and mobility harnesses without a bespoke Policy type each.
// Epoch boundaries go through the strategy's Reassigner form when it
// has one (warm for the anytime family: the previous association seeds
// the search); arrivals go through Online.Add when available and fall
// back to strongest-RSSI initial contact otherwise.
type StrategyPolicy struct {
	// Strategy is the registry name (strategy.Names()).
	Strategy string
	// Config parameterizes the instance; Config.Budget is how the
	// anytime family gets its per-epoch probe budget here.
	Config strategy.Config
	// Display overrides Name() in result rows; empty means Strategy.
	Display string
}

// Name implements Policy.
func (p StrategyPolicy) Name() string {
	if p.Display != "" {
		return p.Display
	}
	return p.Strategy
}

// newStrategy implements strategyBacked, so trial workspaces cache one
// instance per trial and its scratch warms across epochs.
func (p StrategyPolicy) newStrategy() (strategy.Strategy, error) {
	return strategy.New(p.Strategy, p.Config)
}

// OnArrival implements Policy: Online.Add when the strategy has the
// form, strongest-RSSI contact otherwise. (The workspace path in
// policyArrival routes Online strategies through the cached instance;
// this method is the uncached fallback.)
func (p StrategyPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	st, err := p.newStrategy()
	if err != nil {
		return err
	}
	if _, ok := st.(strategy.Online); ok {
		return strategyArrival(st, inst, assign, user)
	}
	return assignBestRSSI(inst, assign, user)
}

// OnEpoch implements Policy.
func (p StrategyPolicy) OnEpoch(inst *Instance, assign model.Assignment) (model.Assignment, error) {
	st, err := p.newStrategy()
	if err != nil {
		return nil, err
	}
	return strategyEpoch(st, inst, assign)
}

func assignBestRSSI(inst *Instance, assign model.Assignment, user int) error {
	if user < 0 || user >= len(inst.RSSI) {
		return fmt.Errorf("netsim: user %d out of range", user)
	}
	best, bestSig := model.Unassigned, -1e18
	for j, sig := range inst.RSSI[user] {
		if inst.Net.WiFiRates[user][j] <= 0 {
			continue
		}
		if sig > bestSig {
			best, bestSig = j, sig
		}
	}
	if best == model.Unassigned {
		return fmt.Errorf("netsim: user %d reaches no extender", user)
	}
	assign[user] = best
	return nil
}

// StaticConfig parameterizes independent-trial experiments.
type StaticConfig struct {
	Topology topology.Config
	// Radio is the WiFi model; the zero value selects radio.DefaultModel.
	Radio *radio.Model
	// Trials is the number of independent topologies; trial t's topology
	// seed is seed.Derive(Topology.Seed, seed.NetsimTrial, t).
	Trials int
	// ModelOpts selects the evaluation model (redistribution on for all
	// paper experiments).
	ModelOpts model.Options
	// Workers bounds the goroutines running trials concurrently; <= 0
	// uses all available cores. Results are identical for every worker
	// count: each trial's topology seed depends only on its index, and
	// trial t always lands at Trials[t].
	Workers int
	// Ctx cancels a running experiment between trials; nil means
	// context.Background(). On cancellation RunStatic returns promptly
	// with the context's error.
	Ctx context.Context
}

func (c StaticConfig) radioModel() radio.Model {
	if c.Radio != nil {
		return *c.Radio
	}
	return radio.DefaultModel()
}

// TrialResult is one policy's outcome on one topology.
type TrialResult struct {
	Aggregate float64
	PerUser   []float64
	Jain      float64
	// SaturationFraction is the fraction of active extenders (nonzero
	// WiFi demand) whose delivered throughput is PLC-limited — the
	// backhaul share carried strictly less than the WiFi side demanded.
	// Zero when no extender is active.
	SaturationFraction float64
}

// StaticResult aggregates a policy's outcomes across trials.
type StaticResult struct {
	Policy string
	Trials []TrialResult
}

// Aggregates returns the per-trial aggregate throughputs.
func (r StaticResult) Aggregates() []float64 {
	out := make([]float64, len(r.Trials))
	for i, tr := range r.Trials {
		out[i] = tr.Aggregate
	}
	return out
}

// MeanAggregate returns the mean aggregate throughput across trials.
func (r StaticResult) MeanAggregate() float64 {
	return stats.Mean(r.Aggregates())
}

// MeanJain returns the mean Jain fairness index across trials.
func (r StaticResult) MeanJain() float64 {
	xs := make([]float64, len(r.Trials))
	for i, tr := range r.Trials {
		xs[i] = tr.Jain
	}
	return stats.Mean(xs)
}

// MeanSaturation returns the mean saturation fraction across trials.
func (r StaticResult) MeanSaturation() float64 {
	xs := make([]float64, len(r.Trials))
	for i, tr := range r.Trials {
		xs[i] = tr.SaturationFraction
	}
	return stats.Mean(xs)
}

// RunStatic evaluates each policy on the same sequence of random
// topologies. All users are present from the start; they "arrive" in
// index order for the online policies, then each policy's OnEpoch runs
// once (this mirrors the paper's testbed procedure, where users join and
// the controller then issues its directives).
//
// Trials are independent and run on cfg.Workers goroutines; the result
// is bit-identical for every worker count because trial t's topology
// seed is seed.Derive(Topology.Seed, seed.NetsimTrial, t) regardless of
// which worker runs it, and its outcome always lands at Trials[t].
// Policy sets containing a policy with shared mutable state
// (RandomPolicy) are forced onto one worker.
func RunStatic(cfg StaticConfig, policies []Policy) ([]StaticResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("netsim: non-positive trial count %d", cfg.Trials)
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("netsim: no policies")
	}
	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	rm := cfg.radioModel()
	results := make([]StaticResult, len(policies))
	for p, policy := range policies {
		results[p] = StaticResult{Policy: policy.Name(), Trials: make([]TrialResult, cfg.Trials)}
	}
	workers := parallel.Workers(cfg.Workers)
	if forcesSequential(policies) {
		workers = 1
	}
	// The pool is per-run: workspaces cache strategy instances keyed by
	// this run's policy indices, so they must not leak into a later run
	// with a different policy slice.
	wsPool := sync.Pool{New: func() any { return new(trialWorkspace) }}
	err := parallel.ForEach(ctx, cfg.Trials, workers, func(trial int) error {
		topoCfg := cfg.Topology
		topoCfg.Seed = seed.Derive(cfg.Topology.Seed, seed.NetsimTrial, int64(trial))
		ws := wsPool.Get().(*trialWorkspace)
		defer wsPool.Put(ws)
		trs, err := runTrial(topoCfg, rm, policies, cfg.ModelOpts, ws)
		if err != nil {
			return err
		}
		for p := range policies {
			results[p].Trials[trial] = trs[p]
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// RunTrial generates the topology for topoCfg and runs every policy on
// it (arrivals in user index order, then one OnEpoch), returning one
// TrialResult per policy. It is the unit of work RunStatic and the
// sweep engine fan out over.
func RunTrial(topoCfg topology.Config, rm radio.Model, policies []Policy, opts model.Options) ([]TrialResult, error) {
	return runTrial(topoCfg, rm, policies, opts, &trialWorkspace{})
}

// trialWorkspace bundles the per-worker state a trial reuses across its
// policies: the evaluation scratch and one strategy instance per
// strategy-backed policy (keyed by the policy's index in the run's
// policy slice). Strategy instances carry their own solver scratches;
// scratch contents never influence results (only capacity is retained
// between uses), so pooled reuse across goroutines preserves
// determinism.
type trialWorkspace struct {
	eval   model.EvalScratch
	strats []strategy.Strategy
}

// strategyFor returns the workspace's cached strategy instance for the
// policy at index idx, creating it on first use.
func (ws *trialWorkspace) strategyFor(idx int, sb strategyBacked) (strategy.Strategy, error) {
	for len(ws.strats) <= idx {
		ws.strats = append(ws.strats, nil)
	}
	if ws.strats[idx] == nil {
		st, err := sb.newStrategy()
		if err != nil {
			return nil, err
		}
		ws.strats[idx] = st
	}
	return ws.strats[idx], nil
}

func runTrial(topoCfg topology.Config, rm radio.Model, policies []Policy, opts model.Options, ws *trialWorkspace) ([]TrialResult, error) {
	topo, err := topology.Generate(topoCfg)
	if err != nil {
		return nil, err
	}
	inst := Build(topo, rm)
	out := make([]TrialResult, len(policies))
	for p, policy := range policies {
		assign := newUnassigned(len(topo.Users))
		for i := range topo.Users {
			if err := policyArrival(policy, inst, assign, i, ws, p); err != nil {
				return nil, fmt.Errorf("netsim: %s arrival: %w", policy.Name(), err)
			}
		}
		assign, err := policyEpoch(policy, inst, assign, ws, p)
		if err != nil {
			return nil, fmt.Errorf("netsim: %s epoch: %w", policy.Name(), err)
		}
		res, err := model.EvaluateWith(&ws.eval, inst.Net, assign, opts)
		if err != nil {
			return nil, fmt.Errorf("netsim: %s evaluate: %w", policy.Name(), err)
		}
		out[p] = TrialResult{
			Aggregate: res.Aggregate,
			// res is scratch-owned and overwritten by the next policy's
			// evaluation; the per-user vector must be copied out.
			PerUser:            append([]float64(nil), res.PerUser...),
			Jain:               stats.JainIndex(res.PerUser),
			SaturationFraction: saturationFraction(res),
		}
	}
	return out, nil
}

// saturationFraction reports the fraction of active extenders whose
// delivered throughput fell short of WiFi demand, i.e. the PLC backhaul
// was the end-to-end bottleneck.
func saturationFraction(res *model.Result) float64 {
	saturated, active := 0, 0
	for j := range res.PerExtender {
		if res.WiFiDemand[j] <= 0 {
			continue
		}
		active++
		if res.PerExtender[j] < res.WiFiDemand[j]-1e-9 {
			saturated++
		}
	}
	if active == 0 {
		return 0
	}
	return float64(saturated) / float64(active)
}

// strategyBacked marks the built-in policies whose behaviour is
// delegated to a named strategy from the internal/strategy registry.
// The simulator caches one instance per worker workspace, so repeated
// trials reuse the strategy's scratch buffers instead of allocating.
// External Policy implementations fall back to the plain interface.
type strategyBacked interface {
	newStrategy() (strategy.Strategy, error)
}

// strategyArrival routes an arrival through the strategy's online form;
// strategies without one (e.g. WOLT, whose initial contact is handled
// by the policy's own RSSI rule) fall back to the caller.
func strategyArrival(st strategy.Strategy, inst *Instance, assign model.Assignment, user int) error {
	on, ok := st.(strategy.Online)
	if !ok {
		return fmt.Errorf("netsim: strategy %q has no online arrival form: %w",
			st.Name(), strategy.ErrNoOnlineForm)
	}
	_, err := on.Add(inst.Net, assign, user)
	return err
}

// strategyEpoch routes an epoch boundary through the strategy's
// reassignment form; strategies that never reassign leave the
// association unchanged.
func strategyEpoch(st strategy.Strategy, inst *Instance, assign model.Assignment) (model.Assignment, error) {
	if re, ok := st.(strategy.Reassigner); ok {
		return re.Reassign(inst.Net, assign)
	}
	return assign, nil
}

// sequentialPolicy marks policies that must not run trials concurrently
// (shared mutable state, e.g. RandomPolicy's Rng).
type sequentialPolicy interface{ sequentialOnly() }

func forcesSequential(policies []Policy) bool {
	for _, p := range policies {
		if _, ok := p.(sequentialPolicy); ok {
			return true
		}
	}
	return false
}

func policyArrival(p Policy, inst *Instance, assign model.Assignment, user int, ws *trialWorkspace, idx int) error {
	if sb, ok := p.(strategyBacked); ok {
		st, err := ws.strategyFor(idx, sb)
		if err != nil {
			return err
		}
		if _, online := st.(strategy.Online); online {
			return strategyArrival(st, inst, assign, user)
		}
	}
	return p.OnArrival(inst, assign, user)
}

func policyEpoch(p Policy, inst *Instance, assign model.Assignment, ws *trialWorkspace, idx int) (model.Assignment, error) {
	if sb, ok := p.(strategyBacked); ok {
		st, err := ws.strategyFor(idx, sb)
		if err != nil {
			return nil, err
		}
		return strategyEpoch(st, inst, assign)
	}
	return p.OnEpoch(inst, assign)
}

func newUnassigned(n int) model.Assignment {
	assign := make(model.Assignment, n)
	for i := range assign {
		assign[i] = model.Unassigned
	}
	return assign
}
