// Package netsim is the flow-level network simulator used for the paper's
// large-scale evaluation (§V-E): it combines a physical topology, the
// WiFi radio model and the PLC capacity model into a model.Network,
// applies an association policy (WOLT or a baseline), and evaluates
// end-to-end throughputs under the PLC+WiFi sharing model.
//
// Two experiment drivers are provided: RunStatic (independent trials with
// a fixed user population — Fig 6a and the fairness table) and RunDynamic
// (Poisson arrival/departure churn evaluated at epoch boundaries —
// Fig 6b/6c).
package netsim

import (
	"fmt"
	"math/rand"

	"github.com/plcwifi/wolt/internal/baseline"
	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// Instance is a concrete network: topology plus derived rate matrices.
type Instance struct {
	Topo *topology.Topology
	// Net is the association-problem input (r_ij, c_j) derived from the
	// topology through the radio model.
	Net *model.Network
	// RSSI[i][j] is the received signal strength used by RSSI-based
	// association.
	RSSI [][]float64
	// UserIDs maps network row index to topology user ID.
	UserIDs []int
}

// Build derives the model inputs from a topology using the radio model.
// Shadowing offsets are keyed by stable user and extender IDs, so a
// link's quality does not change when the topology is rebuilt after churn.
func Build(topo *topology.Topology, rm radio.Model) *Instance {
	distances := topo.Distances()
	inst := &Instance{
		Topo: topo,
		Net: &model.Network{
			WiFiRates: make([][]float64, len(distances)),
			PLCCaps:   topo.PLCCapacities(),
		},
		RSSI:    make([][]float64, len(distances)),
		UserIDs: make([]int, len(topo.Users)),
	}
	for i, row := range distances {
		uid := topo.Users[i].ID
		inst.Net.WiFiRates[i] = make([]float64, len(row))
		inst.RSSI[i] = make([]float64, len(row))
		for j, d := range row {
			eid := topo.Extenders[j].ID
			inst.Net.WiFiRates[i][j] = rm.LinkRate(d, uid, eid)
			inst.RSSI[i][j] = rm.LinkRSSI(d, uid, eid)
		}
	}
	for i, u := range topo.Users {
		inst.UserIDs[i] = u.ID
	}
	return inst
}

// Policy is an association policy driven by the simulator. OnArrival
// handles a single user joining (online step); OnEpoch runs at epoch
// boundaries and may recompute the complete association.
type Policy interface {
	Name() string
	// OnArrival associates the newly arrived user (a row index into
	// inst.Net), mutating assign in place.
	OnArrival(inst *Instance, assign model.Assignment, user int) error
	// OnEpoch optionally recomputes the full association and returns it;
	// policies that never reassign return assign unchanged.
	OnEpoch(inst *Instance, assign model.Assignment) (model.Assignment, error)
}

// WOLTPolicy implements the paper's system: arrivals connect to the
// strongest-RSSI extender to reach the central controller, and the
// controller recomputes the full two-phase assignment at epoch ends.
type WOLTPolicy struct {
	Options core.Options
}

// Name implements Policy.
func (WOLTPolicy) Name() string { return "WOLT" }

// OnArrival implements Policy: initial contact via strongest RSSI.
func (WOLTPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	return assignBestRSSI(inst, assign, user)
}

// OnEpoch implements Policy: full two-phase recomputation.
func (p WOLTPolicy) OnEpoch(inst *Instance, assign model.Assignment) (model.Assignment, error) {
	res, err := core.Assign(inst.Net, p.Options)
	if err != nil {
		return nil, err
	}
	return res.Assign, nil
}

// GreedyPolicy is the paper's online baseline: each arrival picks the
// extender maximizing the aggregate throughput; nobody ever moves.
type GreedyPolicy struct {
	ModelOpts model.Options
}

// Name implements Policy.
func (GreedyPolicy) Name() string { return "Greedy" }

// OnArrival implements Policy.
func (p GreedyPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	_, err := baseline.GreedyAdd(inst.Net, assign, user, p.ModelOpts)
	return err
}

// OnEpoch implements Policy: greedy never reassigns.
func (GreedyPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

// SelfishPolicy is the online greedy of the paper's §III-B case study:
// each arriving user picks the extender maximizing its own end-to-end
// throughput; nobody ever moves.
type SelfishPolicy struct {
	ModelOpts model.Options
}

// Name implements Policy.
func (SelfishPolicy) Name() string { return "Selfish" }

// OnArrival implements Policy.
func (p SelfishPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	_, err := baseline.SelfishAdd(inst.Net, assign, user, p.ModelOpts)
	return err
}

// OnEpoch implements Policy: selfish users never move.
func (SelfishPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

// RSSIPolicy is the commodity default: strongest signal wins, forever.
type RSSIPolicy struct{}

// Name implements Policy.
func (RSSIPolicy) Name() string { return "RSSI" }

// OnArrival implements Policy.
func (RSSIPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	return assignBestRSSI(inst, assign, user)
}

// OnEpoch implements Policy: RSSI never reassigns.
func (RSSIPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

// RandomPolicy associates arrivals uniformly at random; a sanity floor.
type RandomPolicy struct {
	Rng *rand.Rand
}

// Name implements Policy.
func (RandomPolicy) Name() string { return "Random" }

// OnArrival implements Policy.
func (p RandomPolicy) OnArrival(inst *Instance, assign model.Assignment, user int) error {
	var reachable []int
	for j, r := range inst.Net.WiFiRates[user] {
		if r > 0 {
			reachable = append(reachable, j)
		}
	}
	if len(reachable) == 0 {
		return fmt.Errorf("netsim: user %d reaches no extender", user)
	}
	assign[user] = reachable[p.Rng.Intn(len(reachable))]
	return nil
}

// OnEpoch implements Policy.
func (RandomPolicy) OnEpoch(_ *Instance, assign model.Assignment) (model.Assignment, error) {
	return assign, nil
}

func assignBestRSSI(inst *Instance, assign model.Assignment, user int) error {
	if user < 0 || user >= len(inst.RSSI) {
		return fmt.Errorf("netsim: user %d out of range", user)
	}
	best, bestSig := model.Unassigned, -1e18
	for j, sig := range inst.RSSI[user] {
		if inst.Net.WiFiRates[user][j] <= 0 {
			continue
		}
		if sig > bestSig {
			best, bestSig = j, sig
		}
	}
	if best == model.Unassigned {
		return fmt.Errorf("netsim: user %d reaches no extender", user)
	}
	assign[user] = best
	return nil
}

// StaticConfig parameterizes independent-trial experiments.
type StaticConfig struct {
	Topology topology.Config
	// Radio is the WiFi model; the zero value selects radio.DefaultModel.
	Radio *radio.Model
	// Trials is the number of independent topologies (seeded
	// Topology.Seed, Seed+1, …).
	Trials int
	// ModelOpts selects the evaluation model (redistribution on for all
	// paper experiments).
	ModelOpts model.Options
}

func (c StaticConfig) radioModel() radio.Model {
	if c.Radio != nil {
		return *c.Radio
	}
	return radio.DefaultModel()
}

// TrialResult is one policy's outcome on one topology.
type TrialResult struct {
	Aggregate float64
	PerUser   []float64
	Jain      float64
}

// StaticResult aggregates a policy's outcomes across trials.
type StaticResult struct {
	Policy string
	Trials []TrialResult
}

// Aggregates returns the per-trial aggregate throughputs.
func (r StaticResult) Aggregates() []float64 {
	out := make([]float64, len(r.Trials))
	for i, tr := range r.Trials {
		out[i] = tr.Aggregate
	}
	return out
}

// MeanAggregate returns the mean aggregate throughput across trials.
func (r StaticResult) MeanAggregate() float64 {
	return stats.Mean(r.Aggregates())
}

// MeanJain returns the mean Jain fairness index across trials.
func (r StaticResult) MeanJain() float64 {
	xs := make([]float64, len(r.Trials))
	for i, tr := range r.Trials {
		xs[i] = tr.Jain
	}
	return stats.Mean(xs)
}

// RunStatic evaluates each policy on the same sequence of random
// topologies. All users are present from the start; they "arrive" in
// index order for the online policies, then each policy's OnEpoch runs
// once (this mirrors the paper's testbed procedure, where users join and
// the controller then issues its directives).
func RunStatic(cfg StaticConfig, policies []Policy) ([]StaticResult, error) {
	if cfg.Trials <= 0 {
		return nil, fmt.Errorf("netsim: non-positive trial count %d", cfg.Trials)
	}
	if len(policies) == 0 {
		return nil, fmt.Errorf("netsim: no policies")
	}
	rm := cfg.radioModel()
	results := make([]StaticResult, len(policies))
	for p, policy := range policies {
		results[p] = StaticResult{Policy: policy.Name(), Trials: make([]TrialResult, 0, cfg.Trials)}
	}
	for trial := 0; trial < cfg.Trials; trial++ {
		topoCfg := cfg.Topology
		topoCfg.Seed += int64(trial)
		topo, err := topology.Generate(topoCfg)
		if err != nil {
			return nil, err
		}
		inst := Build(topo, rm)
		for p, policy := range policies {
			assign := newUnassigned(len(topo.Users))
			for i := range topo.Users {
				if err := policy.OnArrival(inst, assign, i); err != nil {
					return nil, fmt.Errorf("netsim: %s arrival: %w", policy.Name(), err)
				}
			}
			assign, err := policy.OnEpoch(inst, assign)
			if err != nil {
				return nil, fmt.Errorf("netsim: %s epoch: %w", policy.Name(), err)
			}
			res, err := model.Evaluate(inst.Net, assign, cfg.ModelOpts)
			if err != nil {
				return nil, fmt.Errorf("netsim: %s evaluate: %w", policy.Name(), err)
			}
			results[p].Trials = append(results[p].Trials, TrialResult{
				Aggregate: res.Aggregate,
				PerUser:   res.PerUser,
				Jain:      stats.JainIndex(res.PerUser),
			})
		}
	}
	return results, nil
}

func newUnassigned(n int) model.Assignment {
	assign := make(model.Assignment, n)
	for i := range assign {
		assign[i] = model.Unassigned
	}
	return assign
}
