package netsim

import (
	"testing"

	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/topology"
	"github.com/plcwifi/wolt/internal/workload"
)

func dynCfg(seed int64) DynamicConfig {
	// Enterprise calibration (see DESIGN.md): AV2-class PLC links so the
	// WiFi side binds often enough for association quality to matter.
	rm := radio.DefaultModel()
	rm.Channel.PathLossExponent = 3.5
	rm.Channel.TxPowerDBm = 14
	return DynamicConfig{
		Topology: topology.Config{
			NumExtenders: 5, NumUsers: 20, Seed: seed,
			PLCCapacityMinMbps: 300, PLCCapacityMaxMbps: 800,
		},
		Radio: &rm,
		Churn: workload.Config{
			ArrivalRate:   3,
			DepartureRate: 1,
			Horizon:       24,
			Seed:          seed,
		},
		EpochLen:  8,
		ModelOpts: redistribute,
	}
}

func TestRunDynamicValidation(t *testing.T) {
	cfg := dynCfg(1)
	cfg.EpochLen = 0
	if _, err := RunDynamic(cfg, WOLTPolicy{}); err == nil {
		t.Error("zero epoch length: want error")
	}
	cfg = dynCfg(1)
	cfg.Churn.Horizon = 0
	if _, err := RunDynamic(cfg, WOLTPolicy{}); err == nil {
		t.Error("zero horizon: want error")
	}
}

func TestRunDynamicWOLT(t *testing.T) {
	results, err := RunDynamic(dynCfg(11), WOLTPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("got %d epochs, want 3", len(results))
	}
	prevUsers := 20
	for _, er := range results {
		if er.Users != prevUsers+er.Arrivals-er.Departures {
			t.Errorf("epoch %d: users %d inconsistent with %d+%d-%d",
				er.Epoch, er.Users, prevUsers, er.Arrivals, er.Departures)
		}
		prevUsers = er.Users
		if er.Aggregate <= 0 {
			t.Errorf("epoch %d: aggregate %v", er.Epoch, er.Aggregate)
		}
		if er.Jain <= 0 || er.Jain > 1 {
			t.Errorf("epoch %d: Jain %v", er.Epoch, er.Jain)
		}
	}
	// Net growth: arrival rate 3 vs departure rate 1 should grow the
	// population over 24 time units.
	if results[len(results)-1].Users <= 20 {
		t.Errorf("population did not grow: %d", results[len(results)-1].Users)
	}
}

func TestGreedyAndRSSINeverReassign(t *testing.T) {
	for _, policy := range []Policy{GreedyPolicy{ModelOpts: redistribute}, RSSIPolicy{}} {
		results, err := RunDynamic(dynCfg(13), policy)
		if err != nil {
			t.Fatalf("%s: %v", policy.Name(), err)
		}
		for _, er := range results {
			if er.Reassignments != 0 {
				t.Errorf("%s epoch %d: %d reassignments, want 0",
					policy.Name(), er.Epoch, er.Reassignments)
			}
		}
	}
}

func TestWOLTReassignmentsBounded(t *testing.T) {
	// Fig 6c claim: WOLT re-assigns a modest number of users — on the
	// order of (and bounded by a small multiple of) the epoch's arrivals
	// plus the initial population for the first epoch.
	results, err := RunDynamic(dynCfg(17), WOLTPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for _, er := range results {
		if er.Reassignments > er.Users {
			t.Errorf("epoch %d: %d reassignments exceed population %d",
				er.Epoch, er.Reassignments, er.Users)
		}
	}
}

func TestWOLTBeatsGreedyOverEpochs(t *testing.T) {
	wolt, err := RunDynamic(dynCfg(19), WOLTPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	greedy, err := RunDynamic(dynCfg(19), GreedyPolicy{ModelOpts: redistribute})
	if err != nil {
		t.Fatal(err)
	}
	var woltTotal, greedyTotal float64
	for i := range wolt {
		woltTotal += wolt[i].Aggregate
		greedyTotal += greedy[i].Aggregate
	}
	if woltTotal <= greedyTotal {
		t.Errorf("WOLT epoch total %v not above Greedy %v", woltTotal, greedyTotal)
	}
}

func TestRunDynamicDeterministic(t *testing.T) {
	a, err := RunDynamic(dynCfg(23), WOLTPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDynamic(dynCfg(23), WOLTPolicy{})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("epoch %d differs across identical runs:\n%+v\n%+v", i, a[i], b[i])
		}
	}
}

func TestDepartureOfHighestIDThenArrival(t *testing.T) {
	// Regression guard for user-ID bookkeeping: traces where the
	// most-recently-arrived user departs before the next arrival must
	// not collide IDs. A long horizon with heavy churn exercises this.
	cfg := dynCfg(29)
	cfg.Churn.ArrivalRate = 2
	cfg.Churn.DepartureRate = 2
	cfg.Churn.Horizon = 40
	cfg.EpochLen = 5
	if _, err := RunDynamic(cfg, RSSIPolicy{}); err != nil {
		t.Fatal(err)
	}
}
