// Package hungarian solves the linear assignment problem in O(n²·m) time
// using the shortest-augmenting-path formulation of the Hungarian
// algorithm (Jonker-Volgenant style with dual potentials).
//
// WOLT's Phase I (Theorem 2) reduces the relaxed user-association problem
// to exactly this problem: extenders are tasks, users are agents, and the
// utility of pairing user i with extender j is min(c_j/|A|, r_ij).
package hungarian

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when the cost matrix has no rows or no columns.
var ErrEmpty = errors.New("hungarian: empty cost matrix")

// Unmatched marks a row or column with no partner in a rectangular
// solution.
const Unmatched = -1

// Minimize finds a minimum-cost matching of rows to columns. Every row of
// the smaller dimension is matched to a distinct column (or row) of the
// larger one; entries of the returned slice are column indices per row,
// with Unmatched for rows left out when rows > columns.
func Minimize(cost [][]float64) (rowToCol []int, total float64, err error) {
	n, m, err := dims(cost)
	if err != nil {
		return nil, 0, err
	}
	if n > m {
		// Transpose so the solver's "assign every row" invariant matches
		// the smaller side; invert the mapping afterwards.
		t := transpose(cost, n, m)
		colToRow, total, err := Minimize(t)
		if err != nil {
			return nil, 0, err
		}
		rowToCol = make([]int, n)
		for i := range rowToCol {
			rowToCol[i] = Unmatched
		}
		for j, i := range colToRow {
			if i != Unmatched {
				rowToCol[i] = j
			}
		}
		return rowToCol, total, nil
	}

	// Shortest augmenting path with potentials; 1-indexed internals.
	u := make([]float64, n+1)
	v := make([]float64, m+1)
	p := make([]int, m+1) // p[j] = row (1-indexed) matched to column j; 0 = free
	way := make([]int, m+1)

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		minv := make([]float64, m+1)
		used := make([]bool, m+1)
		for j := range minv {
			minv[j] = math.Inf(1)
		}
		for {
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = make([]int, n)
	for i := range rowToCol {
		rowToCol[i] = Unmatched
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i, j := range rowToCol {
		if j != Unmatched {
			total += cost[i][j]
		}
	}
	return rowToCol, total, nil
}

// Maximize finds a maximum-utility matching (see Minimize for the matching
// semantics) by negating the utilities.
func Maximize(utility [][]float64) (rowToCol []int, total float64, err error) {
	n, m, err := dims(utility)
	if err != nil {
		return nil, 0, err
	}
	neg := make([][]float64, n)
	for i := range neg {
		neg[i] = make([]float64, m)
		for j := range neg[i] {
			neg[i][j] = -utility[i][j]
		}
	}
	rowToCol, negTotal, err := Minimize(neg)
	return rowToCol, -negTotal, err
}

func dims(cost [][]float64) (rows, cols int, err error) {
	rows = len(cost)
	if rows == 0 {
		return 0, 0, ErrEmpty
	}
	cols = len(cost[0])
	if cols == 0 {
		return 0, 0, ErrEmpty
	}
	for i, row := range cost {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("hungarian: row %d has %d entries, want %d", i, len(row), cols)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return 0, 0, fmt.Errorf("hungarian: non-finite cost at (%d,%d)", i, j)
			}
		}
	}
	return rows, cols, nil
}

func transpose(cost [][]float64, n, m int) [][]float64 {
	t := make([][]float64, m)
	for j := range t {
		t[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			t[j][i] = cost[i][j]
		}
	}
	return t
}
