// Package hungarian solves the linear assignment problem in O(n²·m) time
// using the shortest-augmenting-path formulation of the Hungarian
// algorithm (Jonker-Volgenant style with dual potentials).
//
// WOLT's Phase I (Theorem 2) reduces the relaxed user-association problem
// to exactly this problem: extenders are tasks, users are agents, and the
// utility of pairing user i with extender j is min(c_j/|A|, r_ij).
package hungarian

import (
	"errors"
	"fmt"
	"math"
)

// ErrEmpty is returned when the cost matrix has no rows or no columns.
var ErrEmpty = errors.New("hungarian: empty cost matrix")

// Unmatched marks a row or column with no partner in a rectangular
// solution.
const Unmatched = -1

// Minimize finds a minimum-cost matching of rows to columns. Every row of
// the smaller dimension is matched to a distinct column (or row) of the
// larger one; entries of the returned slice are column indices per row,
// with Unmatched for rows left out when rows > columns.
//
// Minimize allocates fresh internal state per call; repeated solvers on a
// hot path should hold a Workspace and call its Minimize method instead.
func Minimize(cost [][]float64) (rowToCol []int, total float64, err error) {
	var w Workspace
	return w.Minimize(cost)
}

// Maximize finds a maximum-utility matching (see Minimize for the matching
// semantics) by negating the utilities. Like Minimize, it is a thin
// wrapper over a throwaway Workspace.
func Maximize(utility [][]float64) (rowToCol []int, total float64, err error) {
	var w Workspace
	return w.Maximize(utility)
}

// Workspace holds the solver's internal state — dual potentials, matching
// and path arrays, and the negation/transpose buffers — so repeated solves
// reuse one set of allocations. The zero value is ready to use; buffers
// grow to the largest instance seen and are retained. A Workspace is not
// safe for concurrent use; give each worker goroutine its own.
type Workspace struct {
	u, v, minv []float64 // dual potentials and row minima (1-indexed)
	p, way     []int     // column matching and augmenting-path trail
	used       []bool
	neg        []float64 // backing store for the negated matrix (Maximize)
	negRows    [][]float64
	tr         []float64 // backing store for the transposed matrix (rows > cols)
	trRows     [][]float64

	augmentations int
}

// Augmentations reports how many shortest-augmenting-path steps (column
// visits across all rows) the most recent Minimize/Maximize on this
// workspace performed — the solver's dominant work unit, useful as a
// scale-free cost metric for per-solve stats.
func (w *Workspace) Augmentations() int { return w.augmentations }

// Minimize solves the minimum-cost matching reusing the workspace's
// buffers. Only the returned rowToCol slice is freshly allocated (the
// caller owns it); all solver state lives in the workspace.
func (w *Workspace) Minimize(cost [][]float64) (rowToCol []int, total float64, err error) {
	n, m, err := dims(cost)
	if err != nil {
		return nil, 0, err
	}
	if n > m {
		// Transpose so the solver's "assign every row" invariant matches
		// the smaller side; invert the mapping afterwards.
		t := w.transposed(cost, n, m)
		colToRow, total := w.solve(t, m, n)
		rowToCol = make([]int, n)
		for i := range rowToCol {
			rowToCol[i] = Unmatched
		}
		for j, i := range colToRow {
			if i != Unmatched {
				rowToCol[i] = j
			}
		}
		return rowToCol, total, nil
	}
	rowToCol, total = w.solve(cost, n, m)
	return rowToCol, total, nil
}

// Maximize solves the maximum-utility matching reusing the workspace's
// buffers (the utility matrix is negated into an internal buffer).
func (w *Workspace) Maximize(utility [][]float64) (rowToCol []int, total float64, err error) {
	n, m, err := dims(utility)
	if err != nil {
		return nil, 0, err
	}
	neg := growMatrix(&w.negRows, &w.neg, n, m)
	for i, row := range utility {
		dst := neg[i]
		for j, x := range row {
			dst[j] = -x
		}
	}
	rowToCol, negTotal, err := w.Minimize(neg)
	return rowToCol, -negTotal, err
}

// solve runs shortest augmenting path with potentials on an n×m matrix
// with n <= m; 1-indexed internals. Inputs must already be validated.
func (w *Workspace) solve(cost [][]float64, n, m int) (rowToCol []int, total float64) {
	w.augmentations = 0
	u := growFloats(&w.u, n+1)
	v := growFloats(&w.v, m+1)
	minv := growFloats(&w.minv, m+1)
	p := growInts(&w.p, m+1) // p[j] = row (1-indexed) matched to column j; 0 = free
	way := growInts(&w.way, m+1)
	used := growBools(&w.used, m+1)
	for i := range u {
		u[i] = 0
	}
	for j := 0; j <= m; j++ {
		v[j], p[j], way[j] = 0, 0, 0
	}

	for i := 1; i <= n; i++ {
		p[0] = i
		j0 := 0
		for j := 0; j <= m; j++ {
			minv[j] = math.Inf(1)
			used[j] = false
		}
		for {
			w.augmentations++
			used[j0] = true
			i0 := p[j0]
			delta := math.Inf(1)
			j1 := 0
			for j := 1; j <= m; j++ {
				if used[j] {
					continue
				}
				cur := cost[i0-1][j-1] - u[i0] - v[j]
				if cur < minv[j] {
					minv[j] = cur
					way[j] = j0
				}
				if minv[j] < delta {
					delta = minv[j]
					j1 = j
				}
			}
			for j := 0; j <= m; j++ {
				if used[j] {
					u[p[j]] += delta
					v[j] -= delta
				} else {
					minv[j] -= delta
				}
			}
			j0 = j1
			if p[j0] == 0 {
				break
			}
		}
		for j0 != 0 {
			j1 := way[j0]
			p[j0] = p[j1]
			j0 = j1
		}
	}

	rowToCol = make([]int, n)
	for i := range rowToCol {
		rowToCol[i] = Unmatched
	}
	for j := 1; j <= m; j++ {
		if p[j] > 0 {
			rowToCol[p[j]-1] = j - 1
		}
	}
	for i, j := range rowToCol {
		if j != Unmatched {
			total += cost[i][j]
		}
	}
	return rowToCol, total
}

// transposed writes cost's m×n transpose into the workspace's buffer.
func (w *Workspace) transposed(cost [][]float64, n, m int) [][]float64 {
	t := growMatrix(&w.trRows, &w.tr, m, n)
	for j := 0; j < m; j++ {
		row := t[j]
		for i := 0; i < n; i++ {
			row[i] = cost[i][j]
		}
	}
	return t
}

func growFloats(s *[]float64, n int) []float64 {
	if cap(*s) < n {
		*s = make([]float64, n)
	}
	*s = (*s)[:n]
	return *s
}

func growInts(s *[]int, n int) []int {
	if cap(*s) < n {
		*s = make([]int, n)
	}
	*s = (*s)[:n]
	return *s
}

func growBools(s *[]bool, n int) []bool {
	if cap(*s) < n {
		*s = make([]bool, n)
	}
	*s = (*s)[:n]
	return *s
}

// growMatrix shapes a reusable rows×cols matrix over a single backing
// slice, growing both as needed.
func growMatrix(rows *[][]float64, buf *[]float64, r, c int) [][]float64 {
	if cap(*buf) < r*c {
		*buf = make([]float64, r*c)
	}
	*buf = (*buf)[:r*c]
	if cap(*rows) < r {
		*rows = make([][]float64, r)
	}
	*rows = (*rows)[:r]
	for i := 0; i < r; i++ {
		(*rows)[i] = (*buf)[i*c : (i+1)*c]
	}
	return *rows
}

func dims(cost [][]float64) (rows, cols int, err error) {
	rows = len(cost)
	if rows == 0 {
		return 0, 0, ErrEmpty
	}
	cols = len(cost[0])
	if cols == 0 {
		return 0, 0, ErrEmpty
	}
	for i, row := range cost {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("hungarian: row %d has %d entries, want %d", i, len(row), cols)
		}
		for j, c := range row {
			if math.IsNaN(c) || math.IsInf(c, 0) {
				return 0, 0, fmt.Errorf("hungarian: non-finite cost at (%d,%d)", i, j)
			}
		}
	}
	return rows, cols, nil
}

func transpose(cost [][]float64, n, m int) [][]float64 {
	t := make([][]float64, m)
	for j := range t {
		t[j] = make([]float64, n)
		for i := 0; i < n; i++ {
			t[j][i] = cost[i][j]
		}
	}
	return t
}
