package hungarian

import (
	"fmt"
	"math"
)

// AuctionMaximize solves the same maximum-utility matching as Maximize
// using Bertsekas' auction algorithm with ε-scaling. It exists as an
// alternative Phase I engine: auctions are simpler to distribute across a
// fleet of extender controllers than the Hungarian algorithm and their
// practical running time scales differently (see
// BenchmarkAssignmentSolverScaling).
//
// The returned matching is optimal to within n·ε_final, with ε_final
// chosen so that the result is exactly optimal for utilities with a
// bounded number of significant digits; tests cross-validate against
// Maximize on random instances.
func AuctionMaximize(utility [][]float64) (rowToCol []int, total float64, err error) {
	n, m, err := dims(utility)
	if err != nil {
		return nil, 0, err
	}
	if n > m {
		t := transpose(utility, n, m)
		colToRow, total, err := AuctionMaximize(t)
		if err != nil {
			return nil, 0, err
		}
		rowToCol = make([]int, n)
		for i := range rowToCol {
			rowToCol[i] = Unmatched
		}
		for j, i := range colToRow {
			if i != Unmatched {
				rowToCol[i] = j
			}
		}
		return rowToCol, total, nil
	}
	if n < m {
		// Rectangular instances break the auction's optimality argument:
		// a column won during an early ε round keeps its inflated price
		// even if it ends the round unmatched, scaring bidders away from
		// it forever. Pad with indifferent (zero-utility) dummy bidders
		// so every column is always matched — the dummies do not affect
		// the real rows' optimal choices — then strip them.
		padded := make([][]float64, m)
		copy(padded, utility)
		for i := n; i < m; i++ {
			padded[i] = make([]float64, m)
		}
		match, _, err := AuctionMaximize(padded)
		if err != nil {
			return nil, 0, err
		}
		rowToCol = match[:n]
		for i, j := range rowToCol {
			if j != Unmatched {
				total += utility[i][j]
			}
		}
		return rowToCol, total, nil
	}

	// Scale the utilities to integers-ish range for a robust ε schedule.
	maxAbs := 0.0
	for i := 0; i < n; i++ {
		for j := 0; j < m; j++ {
			if v := math.Abs(utility[i][j]); v > maxAbs {
				maxAbs = v
			}
		}
	}
	if maxAbs == 0 {
		maxAbs = 1
	}

	price := make([]float64, m)
	owner := make([]int, m) // column -> row, -1 free
	assigned := make([]int, n)
	for j := range owner {
		owner[j] = -1
	}

	// ε-scaling: start coarse, divide by 4 until fine enough that the
	// assignment is within float tolerance of optimal.
	finalEps := maxAbs * 1e-9 / float64(n+1)
	if finalEps <= 0 {
		finalEps = 1e-12
	}
	for eps := maxAbs / 2; ; eps /= 4 {
		for i := range assigned {
			assigned[i] = Unmatched
		}
		for j := range owner {
			owner[j] = -1
		}
		if err := auctionRound(utility, price, owner, assigned, eps); err != nil {
			return nil, 0, err
		}
		if eps <= finalEps {
			break
		}
	}

	for i, j := range assigned {
		if j != Unmatched {
			total += utility[i][j]
		}
	}
	return assigned, total, nil
}

// auctionRound runs the forward auction until every row is assigned.
func auctionRound(utility [][]float64, price []float64, owner, assigned []int, eps float64) error {
	n := len(assigned)
	m := len(price)
	var queue []int
	for i := 0; i < n; i++ {
		queue = append(queue, i)
	}
	// Each iteration assigns one bidder (possibly displacing another),
	// and prices rise by at least eps per displacement, so the loop
	// terminates; the guard caps pathological float behaviour.
	maxIters := n * m * 10000
	for iters := 0; len(queue) > 0; iters++ {
		if iters > maxIters {
			return fmt.Errorf("hungarian: auction failed to converge (eps=%v)", eps)
		}
		i := queue[len(queue)-1]
		queue = queue[:len(queue)-1]

		// Find the best and second-best net value for bidder i.
		bestJ, bestV, secondV := -1, math.Inf(-1), math.Inf(-1)
		for j := 0; j < m; j++ {
			v := utility[i][j] - price[j]
			if v > bestV {
				secondV = bestV
				bestV, bestJ = v, j
			} else if v > secondV {
				secondV = v
			}
		}
		if bestJ < 0 {
			return fmt.Errorf("hungarian: bidder %d has no columns", i)
		}
		if math.IsInf(secondV, -1) {
			secondV = bestV // single column: bid eps above current price
		}
		price[bestJ] += bestV - secondV + eps
		if prev := owner[bestJ]; prev >= 0 {
			assigned[prev] = Unmatched
			queue = append(queue, prev)
		}
		owner[bestJ] = i
		assigned[i] = bestJ
	}
	return nil
}
