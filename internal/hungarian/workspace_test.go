package hungarian

import (
	"math/rand"
	"testing"
)

func randomMatrix(rng *rand.Rand, n, m int) [][]float64 {
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, m)
		for j := range a[i] {
			a[i][j] = rng.Float64() * 100
		}
	}
	return a
}

// TestWorkspaceMatchesPackageFunctions reuses one workspace across many
// instances of varying shapes and asserts bit-identical agreement with
// the allocating package-level entry points.
func TestWorkspaceMatchesPackageFunctions(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var w Workspace
	shapes := []struct{ n, m int }{
		{1, 1}, {3, 5}, {5, 3}, {8, 8}, {20, 7}, {7, 20}, {30, 30}, {2, 2},
	}
	for trial := 0; trial < 5; trial++ {
		for _, s := range shapes {
			cost := randomMatrix(rng, s.n, s.m)

			wantMatch, wantTotal, err := Minimize(cost)
			if err != nil {
				t.Fatal(err)
			}
			gotMatch, gotTotal, err := w.Minimize(cost)
			if err != nil {
				t.Fatal(err)
			}
			if gotTotal != wantTotal {
				t.Fatalf("%dx%d minimize: workspace total %v, want %v", s.n, s.m, gotTotal, wantTotal)
			}
			for i := range wantMatch {
				if gotMatch[i] != wantMatch[i] {
					t.Fatalf("%dx%d minimize: match[%d] = %d, want %d", s.n, s.m, i, gotMatch[i], wantMatch[i])
				}
			}

			wantMatch, wantTotal, err = Maximize(cost)
			if err != nil {
				t.Fatal(err)
			}
			gotMatch, gotTotal, err = w.Maximize(cost)
			if err != nil {
				t.Fatal(err)
			}
			if gotTotal != wantTotal {
				t.Fatalf("%dx%d maximize: workspace total %v, want %v", s.n, s.m, gotTotal, wantTotal)
			}
			for i := range wantMatch {
				if gotMatch[i] != wantMatch[i] {
					t.Fatalf("%dx%d maximize: match[%d] = %d, want %d", s.n, s.m, i, gotMatch[i], wantMatch[i])
				}
			}
		}
	}
}

func TestWorkspaceRejectsBadInput(t *testing.T) {
	var w Workspace
	if _, _, err := w.Minimize(nil); err == nil {
		t.Error("nil matrix: want error")
	}
	if _, _, err := w.Maximize([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix: want error")
	}
}

// BenchmarkMinimizeAlloc vs BenchmarkMinimizeWorkspace demonstrates the
// allocation reduction of workspace reuse (run with -benchmem).
func BenchmarkMinimizeAlloc(b *testing.B) {
	cost := randomMatrix(rand.New(rand.NewSource(9)), 60, 60)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Minimize(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMinimizeWorkspace(b *testing.B) {
	cost := randomMatrix(rand.New(rand.NewSource(9)), 60, 60)
	var w Workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Minimize(cost); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaximizeWorkspace(b *testing.B) {
	utility := randomMatrix(rand.New(rand.NewSource(10)), 124, 15)
	var w Workspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := w.Maximize(utility); err != nil {
			b.Fatal(err)
		}
	}
}
