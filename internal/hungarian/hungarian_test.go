package hungarian

import (
	"math"
	"math/rand"
	"testing"
)

func TestMinimizeKnownSquare(t *testing.T) {
	tests := []struct {
		name      string
		cost      [][]float64
		wantTotal float64
	}{
		{
			name:      "1x1",
			cost:      [][]float64{{7}},
			wantTotal: 7,
		},
		{
			name: "classic 3x3",
			cost: [][]float64{
				{4, 1, 3},
				{2, 0, 5},
				{3, 2, 2},
			},
			wantTotal: 5, // (0,1)+(1,0)+(2,2) = 1+2+2
		},
		{
			name: "diagonal best",
			cost: [][]float64{
				{1, 10, 10},
				{10, 1, 10},
				{10, 10, 1},
			},
			wantTotal: 3,
		},
		{
			name: "negative costs",
			cost: [][]float64{
				{-5, 0},
				{0, -5},
			},
			wantTotal: -10,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			match, total, err := Minimize(tt.cost)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-tt.wantTotal) > 1e-9 {
				t.Errorf("total = %v, want %v", total, tt.wantTotal)
			}
			assertValidMatching(t, match, len(tt.cost[0]), len(tt.cost))
		})
	}
}

func TestMaximizeKnown(t *testing.T) {
	utility := [][]float64{
		{15, 10},
		{30, 10},
	}
	match, total, err := Maximize(utility)
	if err != nil {
		t.Fatal(err)
	}
	// Fig 3 Phase I utilities: user 2 on extender 1 (30) + user 1 on
	// extender 2 (10) beats 15+10.
	if total != 40 {
		t.Errorf("total = %v, want 40", total)
	}
	if match[0] != 1 || match[1] != 0 {
		t.Errorf("match = %v, want [1 0]", match)
	}
}

func TestRectangularMoreRows(t *testing.T) {
	// 3 users, 2 extenders: exactly 2 users matched.
	utility := [][]float64{
		{5, 1},
		{9, 2},
		{3, 8},
	}
	match, total, err := Maximize(utility)
	if err != nil {
		t.Fatal(err)
	}
	if total != 17 { // 9 + 8
		t.Errorf("total = %v, want 17", total)
	}
	if match[0] != Unmatched || match[1] != 0 || match[2] != 1 {
		t.Errorf("match = %v, want [-1 0 1]", match)
	}
}

func TestRectangularMoreCols(t *testing.T) {
	// 2 rows, 3 cols: every row matched, one column free.
	cost := [][]float64{
		{8, 4, 7},
		{5, 2, 3},
	}
	match, total, err := Minimize(cost)
	if err != nil {
		t.Fatal(err)
	}
	if total != 7 { // 4 + 3
		t.Errorf("total = %v, want 7", total)
	}
	assertValidMatching(t, match, 3, 2)
	for i, j := range match {
		if j == Unmatched {
			t.Errorf("row %d unmatched in rows<=cols instance", i)
		}
	}
}

func TestErrors(t *testing.T) {
	if _, _, err := Minimize(nil); err == nil {
		t.Error("nil matrix: want error")
	}
	if _, _, err := Minimize([][]float64{{}}); err == nil {
		t.Error("zero columns: want error")
	}
	if _, _, err := Minimize([][]float64{{1, 2}, {3}}); err == nil {
		t.Error("ragged matrix: want error")
	}
	if _, _, err := Minimize([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN cost: want error")
	}
	if _, _, err := Minimize([][]float64{{math.Inf(1)}}); err == nil {
		t.Error("Inf cost: want error")
	}
}

// TestAgainstBruteForce cross-validates the solver against exhaustive
// permutation search on random instances.
func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(6)
		m := 1 + rng.Intn(6)
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, m)
			for j := range cost[i] {
				cost[i][j] = math.Round(rng.Float64()*200-100) / 4
			}
		}
		match, total, err := Minimize(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMin(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("trial %d (%dx%d): total %v, brute force %v\ncost=%v\nmatch=%v",
				trial, n, m, total, want, cost, match)
		}
		assertValidMatching(t, match, m, n)
	}
}

func TestMaximizeMatchesNegatedMinimize(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(5)
		m := 1 + rng.Intn(5)
		u := make([][]float64, n)
		neg := make([][]float64, n)
		for i := range u {
			u[i] = make([]float64, m)
			neg[i] = make([]float64, m)
			for j := range u[i] {
				u[i][j] = rng.Float64() * 50
				neg[i][j] = -u[i][j]
			}
		}
		_, maxTotal, err := Maximize(u)
		if err != nil {
			t.Fatal(err)
		}
		_, minTotal, err := Minimize(neg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(maxTotal+minTotal) > 1e-9 {
			t.Fatalf("Maximize %v != -Minimize %v", maxTotal, minTotal)
		}
	}
}

func TestLargeInstanceRuns(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 120
	cost := make([][]float64, n)
	for i := range cost {
		cost[i] = make([]float64, n)
		for j := range cost[i] {
			cost[i][j] = rng.Float64() * 1000
		}
	}
	match, total, err := Minimize(cost)
	if err != nil {
		t.Fatal(err)
	}
	assertValidMatching(t, match, n, n)
	// Sanity bound: optimal total is below the random diagonal's total.
	var diag float64
	for i := range cost {
		diag += cost[i][i]
	}
	if total > diag {
		t.Errorf("optimal total %v worse than arbitrary diagonal %v", total, diag)
	}
}

// assertValidMatching checks that every matched column is used at most
// once and that exactly min(rows,cols) matches exist.
func assertValidMatching(t *testing.T, match []int, cols, rows int) {
	t.Helper()
	seen := make(map[int]bool)
	matched := 0
	for i, j := range match {
		if j == Unmatched {
			continue
		}
		if j < 0 || j >= cols {
			t.Fatalf("row %d matched to invalid column %d", i, j)
		}
		if seen[j] {
			t.Fatalf("column %d matched twice", j)
		}
		seen[j] = true
		matched++
	}
	want := rows
	if cols < rows {
		want = cols
	}
	if matched != want {
		t.Fatalf("%d matches, want %d", matched, want)
	}
}

// bruteForceMin exhaustively minimizes over all injections of the smaller
// dimension into the larger.
func bruteForceMin(cost [][]float64) float64 {
	n, m := len(cost), len(cost[0])
	best := math.Inf(1)
	if n <= m {
		perm := make([]int, m)
		for j := range perm {
			perm[j] = j
		}
		permute(perm, 0, func(p []int) {
			var total float64
			for i := 0; i < n; i++ {
				total += cost[i][p[i]]
			}
			if total < best {
				best = total
			}
		})
		return best
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	permute(perm, 0, func(p []int) {
		var total float64
		for j := 0; j < m; j++ {
			total += cost[p[j]][j]
		}
		if total < best {
			best = total
		}
	})
	return best
}

func permute(xs []int, k int, visit func([]int)) {
	if k == len(xs) {
		visit(xs)
		return
	}
	for i := k; i < len(xs); i++ {
		xs[k], xs[i] = xs[i], xs[k]
		permute(xs, k+1, visit)
		xs[k], xs[i] = xs[i], xs[k]
	}
}
