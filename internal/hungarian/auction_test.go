package hungarian

import (
	"math"
	"math/rand"
	"testing"
)

func TestAuctionKnownInstances(t *testing.T) {
	tests := []struct {
		name      string
		utility   [][]float64
		wantTotal float64
	}{
		{name: "1x1", utility: [][]float64{{7}}, wantTotal: 7},
		{
			name: "fig3 utilities",
			utility: [][]float64{
				{15, 10},
				{30, 10},
			},
			wantTotal: 40,
		},
		{
			name: "diagonal best",
			utility: [][]float64{
				{9, 1, 1},
				{1, 9, 1},
				{1, 1, 9},
			},
			wantTotal: 27,
		},
		{
			name: "negative utilities",
			utility: [][]float64{
				{-1, -10},
				{-10, -1},
			},
			wantTotal: -2,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			match, total, err := AuctionMaximize(tt.utility)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(total-tt.wantTotal) > 1e-6 {
				t.Errorf("total = %v, want %v (match %v)", total, tt.wantTotal, match)
			}
			assertValidMatching(t, match, len(tt.utility[0]), len(tt.utility))
		})
	}
}

func TestAuctionRectangular(t *testing.T) {
	// More rows than columns: two of three users matched.
	utility := [][]float64{
		{5, 1},
		{9, 2},
		{3, 8},
	}
	match, total, err := AuctionMaximize(utility)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-17) > 1e-6 {
		t.Errorf("total = %v, want 17", total)
	}
	assertValidMatching(t, match, 2, 3)

	// More columns than rows: every row matched.
	wide := [][]float64{
		{1, 8, 3},
		{2, 9, 7},
	}
	match, total, err = AuctionMaximize(wide)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(total-15) > 1e-6 { // 8 + 7
		t.Errorf("wide total = %v, want 15", total)
	}
	assertValidMatching(t, match, 3, 2)
}

func TestAuctionErrors(t *testing.T) {
	if _, _, err := AuctionMaximize(nil); err == nil {
		t.Error("nil matrix: want error")
	}
	if _, _, err := AuctionMaximize([][]float64{{math.NaN()}}); err == nil {
		t.Error("NaN: want error")
	}
}

// TestAuctionMatchesHungarian cross-validates the two solvers on random
// instances of both orientations.
func TestAuctionMatchesHungarian(t *testing.T) {
	rng := rand.New(rand.NewSource(314))
	for trial := 0; trial < 100; trial++ {
		n := 1 + rng.Intn(8)
		m := 1 + rng.Intn(8)
		utility := make([][]float64, n)
		for i := range utility {
			utility[i] = make([]float64, m)
			for j := range utility[i] {
				utility[i][j] = math.Round(rng.Float64()*2000-1000) / 8
			}
		}
		_, wantTotal, err := Maximize(utility)
		if err != nil {
			t.Fatal(err)
		}
		match, total, err := AuctionMaximize(utility)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(total-wantTotal) > 1e-6 {
			t.Fatalf("trial %d (%dx%d): auction %v, hungarian %v\nutility=%v\nmatch=%v",
				trial, n, m, total, wantTotal, utility, match)
		}
		assertValidMatching(t, match, m, n)
	}
}

func TestAuctionZeroMatrix(t *testing.T) {
	match, total, err := AuctionMaximize([][]float64{{0, 0}, {0, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if total != 0 {
		t.Errorf("total = %v, want 0", total)
	}
	assertValidMatching(t, match, 2, 2)
}
