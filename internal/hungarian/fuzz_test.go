package hungarian

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzMinimizeMatchesBruteForce cross-checks the Hungarian solver (and
// the auction solver) against exhaustive search on small fuzzed
// instances.
func FuzzMinimizeMatchesBruteForce(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(3))
	f.Add(int64(7), uint8(2), uint8(5))
	f.Add(int64(9), uint8(5), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, rowsRaw, colsRaw uint8) {
		rows := 1 + int(rowsRaw%5)
		cols := 1 + int(colsRaw%5)
		rng := rand.New(rand.NewSource(seed))
		cost := make([][]float64, rows)
		for i := range cost {
			cost[i] = make([]float64, cols)
			for j := range cost[i] {
				// Quantized costs keep brute-force comparisons exact.
				cost[i][j] = math.Round(rng.Float64()*400-200) / 4
			}
		}
		match, total, err := Minimize(cost)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForceMin(cost)
		if math.Abs(total-want) > 1e-9 {
			t.Fatalf("hungarian %v, brute force %v (cost %v, match %v)", total, want, cost, match)
		}

		// Auction solves the max version; negate.
		neg := make([][]float64, rows)
		for i := range neg {
			neg[i] = make([]float64, cols)
			for j := range neg[i] {
				neg[i][j] = -cost[i][j]
			}
		}
		_, maxTotal, err := AuctionMaximize(neg)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(-maxTotal-want) > 1e-6 {
			t.Fatalf("auction %v, brute force %v (cost %v)", -maxTotal, want, cost)
		}
	})
}
