// Package plc models the Power Line Communication backhaul that connects
// PLC-WiFi extenders to the central unit / master router.
//
// Two views are provided:
//
//   - A physical line model (LineModel) mapping powerline wire length,
//     branch taps and noise to a HomePlug-AV2-style PHY rate, from which an
//     isolation capacity (the paper's c_j) follows. This is used to
//     synthesize realistic capacity spreads like the 60–160 Mbps range the
//     paper measured across university outlets (Fig 2b).
//
//   - An offline capacity estimator (Estimator) mirroring §V-A of the
//     paper: saturate each PLC link in isolation (iperf3-style) and treat
//     the sustained throughput as the link's capacity.
package plc

import (
	"fmt"
	"math"
	"math/rand"
)

// Link is one PLC backhaul link between the central unit and an extender's
// outlet.
type Link struct {
	ExtenderID int
	// PHYRateMbps is the raw modulation rate negotiated on the power line.
	PHYRateMbps float64
	// CapacityMbps is the isolation throughput of the link (the paper's
	// c_j): what the link sustains when no other extender is active. It is
	// lower than the PHY rate due to MAC framing and acknowledgement
	// overhead.
	CapacityMbps float64
}

// MACEfficiency is the fraction of PLC PHY rate visible as goodput. The
// paper's TL-WPA8630 units advertise 1200 Mbps PHY yet deliver at most
// ~160 Mbps over a single real link; line attenuation accounts for most of
// the gap and MAC overhead for the rest.
const MACEfficiency = 0.55

// LineModel converts the electrical path between the central unit and an
// outlet into a PHY rate. Powerline attenuation grows with cable length
// and with the number of branch taps (each outlet/junction on the path
// reflects signal).
type LineModel struct {
	// BaseSNRdB is the SNR at (virtually) zero wire length.
	BaseSNRdB float64
	// AttenuationDBPerM is the per-meter cable attenuation. Typical
	// in-building powerline attenuation is 0.4–1 dB/m across the HomePlug
	// band.
	AttenuationDBPerM float64
	// BranchLossDB is the loss per branch tap on the path.
	BranchLossDB float64
	// NoiseSigmaDB is the standard deviation of the lognormal noise term
	// modeling appliance interference.
	NoiseSigmaDB float64
	// MaxPHYRateMbps caps the modulation rate (1200 for HomePlug AV2
	// class devices like the paper's testbed units).
	MaxPHYRateMbps float64
	// BandwidthMHz is the usable HomePlug AV2 spectrum.
	BandwidthMHz float64
}

// DefaultLineModel returns a model calibrated so that typical in-building
// wire runs (10–60 m, 1–6 branch taps) produce isolation capacities in the
// 60–160 Mbps range reported in the paper's Fig 2b.
func DefaultLineModel() LineModel {
	return LineModel{
		BaseSNRdB:         36,
		AttenuationDBPerM: 0.25,
		BranchLossDB:      1.5,
		NoiseSigmaDB:      1.5,
		MaxPHYRateMbps:    1200,
		BandwidthMHz:      28,
	}
}

// PHYRate returns the PHY rate over a path of wireLenM meters with the
// given number of branch taps, using a Shannon-style rate with the model's
// bandwidth. rng supplies the noise term; pass nil for the noiseless rate.
func (m LineModel) PHYRate(wireLenM float64, branches int, rng *rand.Rand) float64 {
	snr := m.BaseSNRdB - m.AttenuationDBPerM*wireLenM - m.BranchLossDB*float64(branches)
	if rng != nil {
		snr += rng.NormFloat64() * m.NoiseSigmaDB
	}
	if snr < 0 {
		snr = 0
	}
	linear := math.Pow(10, snr/10)
	rate := m.BandwidthMHz * math.Log2(1+linear) // Mbps, 1 bit/s/Hz units
	if rate > m.MaxPHYRateMbps {
		rate = m.MaxPHYRateMbps
	}
	return rate
}

// Capacity returns the isolation goodput for a PHY rate.
func Capacity(phyRateMbps float64) float64 {
	return phyRateMbps * MACEfficiency
}

// OutletPath describes the electrical path from the central unit to one
// outlet.
type OutletPath struct {
	ExtenderID int
	WireLenM   float64
	Branches   int
}

// BuildLinks evaluates the line model over a set of outlet paths.
func (m LineModel) BuildLinks(paths []OutletPath, rng *rand.Rand) []Link {
	links := make([]Link, len(paths))
	for i, p := range paths {
		phy := m.PHYRate(p.WireLenM, p.Branches, rng)
		links[i] = Link{
			ExtenderID:   p.ExtenderID,
			PHYRateMbps:  phy,
			CapacityMbps: Capacity(phy),
		}
	}
	return links
}

// RandomPaths draws plausible outlet paths for n extenders: wire runs of
// 10–60 m with 1–6 branch taps. Deterministic for a given rng state.
func RandomPaths(n int, rng *rand.Rand) []OutletPath {
	paths := make([]OutletPath, n)
	for i := range paths {
		paths[i] = OutletPath{
			ExtenderID: i,
			WireLenM:   10 + rng.Float64()*50,
			Branches:   1 + rng.Intn(6),
		}
	}
	return paths
}

// Estimator performs the paper's offline capacity estimation (§V-A): each
// PLC link is saturated in isolation and the sustained throughput is
// recorded as its capacity. Probe is the function that saturates a link
// and reports throughput; in simulation it samples the link capacity with
// measurement noise, on the emulated testbed it runs a real iperf-style
// transfer.
type Estimator struct {
	// Probe measures the isolated throughput of one link once.
	Probe func(link Link) float64
	// Samples is the number of probe runs averaged per link (default 3).
	Samples int
}

// Estimate runs the estimator over all links and returns capacity
// estimates indexed like links.
func (e Estimator) Estimate(links []Link) ([]float64, error) {
	if e.Probe == nil {
		return nil, fmt.Errorf("plc: estimator has no probe")
	}
	samples := e.Samples
	if samples <= 0 {
		samples = 3
	}
	out := make([]float64, len(links))
	for i, link := range links {
		var total float64
		for s := 0; s < samples; s++ {
			total += e.Probe(link)
		}
		out[i] = total / float64(samples)
	}
	return out, nil
}

// NoisyProbe returns a Probe that reports the true capacity perturbed by
// multiplicative Gaussian measurement noise with the given relative sigma,
// clamped to stay positive. It models iperf run-to-run variance.
func NoisyProbe(relSigma float64, rng *rand.Rand) func(Link) float64 {
	return func(link Link) float64 {
		v := link.CapacityMbps * (1 + rng.NormFloat64()*relSigma)
		if v < 0.01*link.CapacityMbps {
			v = 0.01 * link.CapacityMbps
		}
		return v
	}
}
