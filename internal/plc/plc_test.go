package plc

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPHYRateDecreasesWithWireLength(t *testing.T) {
	m := DefaultLineModel()
	prev := m.PHYRate(0, 1, nil)
	for l := 5.0; l <= 100; l += 5 {
		r := m.PHYRate(l, 1, nil)
		if r > prev {
			t.Fatalf("PHY rate increased with wire length at %vm: %v > %v", l, r, prev)
		}
		prev = r
	}
}

func TestPHYRateDecreasesWithBranches(t *testing.T) {
	m := DefaultLineModel()
	prev := m.PHYRate(30, 0, nil)
	for b := 1; b <= 10; b++ {
		r := m.PHYRate(30, b, nil)
		if r > prev {
			t.Fatalf("PHY rate increased with branches at %d: %v > %v", b, r, prev)
		}
		prev = r
	}
}

func TestPHYRateCapped(t *testing.T) {
	m := DefaultLineModel()
	m.BaseSNRdB = 200 // absurdly clean line
	if got := m.PHYRate(0, 0, nil); got != m.MaxPHYRateMbps {
		t.Errorf("PHY rate = %v, want cap %v", got, m.MaxPHYRateMbps)
	}
}

func TestPHYRateNonNegative(t *testing.T) {
	m := DefaultLineModel()
	f := func(wire float64, branches uint8) bool {
		w := math.Abs(wire)
		if math.IsNaN(w) || math.IsInf(w, 0) {
			return true
		}
		return m.PHYRate(w, int(branches), nil) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCapacityBelowPHY(t *testing.T) {
	if got := Capacity(1000); got != 1000*MACEfficiency {
		t.Errorf("Capacity(1000) = %v", got)
	}
	if Capacity(100) >= 100 {
		t.Error("capacity should be strictly below PHY rate")
	}
}

func TestRealisticCapacityRange(t *testing.T) {
	// Typical in-building paths should land in (or near) the paper's
	// measured 60-160 Mbps isolation range.
	m := DefaultLineModel()
	rng := rand.New(rand.NewSource(11))
	links := m.BuildLinks(RandomPaths(100, rng), rng)
	inRange := 0
	for _, l := range links {
		if l.CapacityMbps >= 40 && l.CapacityMbps <= 200 {
			inRange++
		}
		if l.CapacityMbps <= 0 {
			t.Fatalf("non-positive capacity: %+v", l)
		}
		if l.CapacityMbps >= l.PHYRateMbps {
			t.Fatalf("capacity %v not below PHY %v", l.CapacityMbps, l.PHYRateMbps)
		}
	}
	if inRange < 80 {
		t.Errorf("only %d/100 links in the plausible 40-200 Mbps window", inRange)
	}
}

func TestBuildLinksDeterministic(t *testing.T) {
	m := DefaultLineModel()
	paths := RandomPaths(5, rand.New(rand.NewSource(3)))
	a := m.BuildLinks(paths, rand.New(rand.NewSource(4)))
	b := m.BuildLinks(paths, rand.New(rand.NewSource(4)))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("link %d differs across identical seeds", i)
		}
	}
}

func TestRandomPathsShape(t *testing.T) {
	paths := RandomPaths(7, rand.New(rand.NewSource(1)))
	if len(paths) != 7 {
		t.Fatalf("got %d paths", len(paths))
	}
	for i, p := range paths {
		if p.ExtenderID != i {
			t.Errorf("path %d has extender ID %d", i, p.ExtenderID)
		}
		if p.WireLenM < 10 || p.WireLenM > 60 {
			t.Errorf("wire length %v outside [10,60]", p.WireLenM)
		}
		if p.Branches < 1 || p.Branches > 6 {
			t.Errorf("branches %d outside [1,6]", p.Branches)
		}
	}
}

func TestEstimatorAveragesProbes(t *testing.T) {
	calls := 0
	e := Estimator{
		Probe: func(link Link) float64 {
			calls++
			// Alternate above/below truth; average returns truth.
			if calls%2 == 0 {
				return link.CapacityMbps + 10
			}
			return link.CapacityMbps - 10
		},
		Samples: 2,
	}
	links := []Link{{ExtenderID: 0, CapacityMbps: 100}}
	got, err := e.Estimate(links)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 100 {
		t.Errorf("estimate = %v, want 100", got[0])
	}
	if calls != 2 {
		t.Errorf("probe called %d times, want 2", calls)
	}
}

func TestEstimatorDefaultSamples(t *testing.T) {
	calls := 0
	e := Estimator{Probe: func(link Link) float64 {
		calls++
		return link.CapacityMbps
	}}
	if _, err := e.Estimate([]Link{{CapacityMbps: 50}}); err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("default samples = %d, want 3", calls)
	}
}

func TestEstimatorNoProbe(t *testing.T) {
	var e Estimator
	if _, err := e.Estimate(nil); err == nil {
		t.Error("want error for missing probe")
	}
}

func TestNoisyProbeStaysNearTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	probe := NoisyProbe(0.05, rng)
	link := Link{CapacityMbps: 120}
	var sum float64
	const n = 500
	for i := 0; i < n; i++ {
		v := probe(link)
		if v <= 0 {
			t.Fatalf("probe returned non-positive %v", v)
		}
		sum += v
	}
	mean := sum / n
	if math.Abs(mean-120) > 3 {
		t.Errorf("noisy probe mean %v too far from 120", mean)
	}
}
