package qos

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
)

var redistribute = model.Options{Redistribute: true}

func fig3Network() *model.Network {
	return &model.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
}

func TestValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "nil network", cfg: Config{}},
		{name: "invalid network", cfg: Config{Net: &model.Network{}}},
		{name: "bad budget", cfg: Config{Net: fig3Network(), TDMABudget: 1.5}},
		{name: "user out of range", cfg: Config{Net: fig3Network(), Priority: []Demand{{User: 9, Mbps: 5}}}},
		{name: "zero demand", cfg: Config{Net: fig3Network(), Priority: []Demand{{User: 0, Mbps: 0}}}},
		{name: "duplicate demand", cfg: Config{Net: fig3Network(), Priority: []Demand{{User: 0, Mbps: 1}, {User: 0, Mbps: 2}}}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Build(tt.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestNoPriorityUsersMatchesWOLT(t *testing.T) {
	plan, err := Build(Config{Net: fig3Network(), Eval: redistribute})
	if err != nil {
		t.Fatal(err)
	}
	if plan.TotalReserved != 0 {
		t.Errorf("reserved %v with no priority users", plan.TotalReserved)
	}
	// The plan is plain WOLT: users swapped across extenders, 40 Mbps.
	if plan.Assign[0] != 1 || plan.Assign[1] != 0 {
		t.Errorf("assign = %v, want [1 0]", plan.Assign)
	}
	if math.Abs(plan.AggregateMbps()-40) > 1e-9 {
		t.Errorf("aggregate = %v, want 40", plan.AggregateMbps())
	}
}

func TestGuaranteeAdmitted(t *testing.T) {
	// User 2 demands a guaranteed 20 Mbps. The cheapest reservation per
	// bit is on extender 1 (c=60): 20/60 = 1/3 of the medium; its WiFi
	// rate there (40) sustains it.
	plan, err := Build(Config{
		Net:      fig3Network(),
		Priority: []Demand{{User: 1, Mbps: 20}},
		Eval:     redistribute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assign[1] != 0 {
		t.Errorf("priority user on extender %d, want 0", plan.Assign[1])
	}
	if math.Abs(plan.ReservedTime[0]-20.0/60.0) > 1e-9 {
		t.Errorf("reserved time = %v, want 1/3", plan.ReservedTime[0])
	}
	if plan.Guaranteed[1] != 20 {
		t.Errorf("guaranteed = %v, want 20", plan.Guaranteed[1])
	}
	// The best-effort user (user 0) still gets associated and served
	// from the remaining 2/3 CSMA period.
	if plan.Assign[0] == model.Unassigned {
		t.Error("best-effort user left unassigned")
	}
	if plan.BestEffort == nil || plan.BestEffort.Aggregate <= 0 {
		t.Error("best-effort share missing")
	}
}

func TestWiFiHopGatesAdmission(t *testing.T) {
	// A 30 Mbps guarantee: extender 2's PLC could carry it only with
	// r>=30, but user 1's WiFi rates are 15/10 — no extender sustains it.
	_, err := Build(Config{
		Net:      fig3Network(),
		Priority: []Demand{{User: 0, Mbps: 30}},
		Eval:     redistribute,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestBudgetGatesAdmission(t *testing.T) {
	// 20 Mbps on a 60 Mbps link needs 1/3 of the medium; a 0.2 budget
	// cannot hold it.
	_, err := Build(Config{
		Net:        fig3Network(),
		Priority:   []Demand{{User: 1, Mbps: 20}},
		TDMABudget: 0.2,
		Eval:       redistribute,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("err = %v, want ErrInfeasible", err)
	}
}

func TestMultipleGuaranteesSharedBudget(t *testing.T) {
	n := &model.Network{
		WiFiRates: [][]float64{
			{50, 50},
			{50, 50},
			{10, 10},
		},
		PLCCaps: []float64{100, 100},
	}
	plan, err := Build(Config{
		Net: n,
		Priority: []Demand{
			{User: 0, Mbps: 25},
			{User: 1, Mbps: 25},
		},
		TDMABudget: 0.6,
		Eval:       redistribute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plan.TotalReserved-0.5) > 1e-9 {
		t.Errorf("total reserved = %v, want 0.5", plan.TotalReserved)
	}
	if plan.Guaranteed[0] != 25 || plan.Guaranteed[1] != 25 {
		t.Errorf("guarantees = %v", plan.Guaranteed)
	}
	// The best-effort user shares what's left (caps scaled by 0.5).
	if plan.BestEffort.Aggregate <= 0 || plan.BestEffort.Aggregate > 10 {
		t.Errorf("best-effort aggregate = %v, want in (0,10]", plan.BestEffort.Aggregate)
	}
}

func TestLargestDemandPlacedFirst(t *testing.T) {
	// Budget fits both demands only if the big one takes the big link.
	n := &model.Network{
		WiFiRates: [][]float64{
			{60, 60},
			{60, 60},
		},
		PLCCaps: []float64{200, 50},
	}
	plan, err := Build(Config{
		Net: n,
		Priority: []Demand{
			{User: 0, Mbps: 10},
			{User: 1, Mbps: 50},
		},
		TDMABudget: 0.5,
		Eval:       redistribute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.Assign[1] != 0 {
		t.Errorf("large demand on extender %d, want the 200 Mbps link", plan.Assign[1])
	}
}

func TestAllPriorityNoBestEffort(t *testing.T) {
	plan, err := Build(Config{
		Net: fig3Network(),
		Priority: []Demand{
			{User: 0, Mbps: 5},
			{User: 1, Mbps: 5},
		},
		Eval: redistribute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if plan.BestEffort != nil {
		t.Error("no best-effort users, but a best-effort result exists")
	}
	if math.Abs(plan.AggregateMbps()-10) > 1e-9 {
		t.Errorf("aggregate = %v, want 10", plan.AggregateMbps())
	}
}

func TestGuaranteesSurviveRandomInstances(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for trial := 0; trial < 25; trial++ {
		numExt := 2 + rng.Intn(3)
		numUsers := 4 + rng.Intn(8)
		caps := make([]float64, numExt)
		for j := range caps {
			caps[j] = 60 + rng.Float64()*140
		}
		rates := make([][]float64, numUsers)
		for i := range rates {
			rates[i] = make([]float64, numExt)
			for j := range rates[i] {
				rates[i][j] = 5 + rng.Float64()*49
			}
		}
		n := &model.Network{WiFiRates: rates, PLCCaps: caps}
		demands := []Demand{{User: 0, Mbps: 2 + rng.Float64()*4}}
		plan, err := Build(Config{Net: n, Priority: demands, Eval: redistribute})
		if errors.Is(err, ErrInfeasible) {
			continue // legitimately rejected
		}
		if err != nil {
			t.Fatal(err)
		}
		// Invariants: reservations within budget, guarantee sustained by
		// the WiFi hop, every user assigned.
		if plan.TotalReserved > 0.6+1e-9 {
			t.Fatalf("trial %d: reserved %v over budget", trial, plan.TotalReserved)
		}
		j := plan.Assign[0]
		if n.WiFiRates[0][j] < plan.Guaranteed[0] {
			t.Fatalf("trial %d: WiFi rate %v below guarantee %v",
				trial, n.WiFiRates[0][j], plan.Guaranteed[0])
		}
		for i, jj := range plan.Assign {
			if jj == model.Unassigned {
				t.Fatalf("trial %d: user %d unassigned", trial, i)
			}
		}
	}
}
