// Package qos extends WOLT with the IEEE 1901 TDMA QoS mode the paper
// describes in §II: the PLC central coordinator can reserve guaranteed
// time slots, so priority users (e.g. video, the paper's motivating
// bandwidth-intensive application) can be given hard throughput
// guarantees while best-effort users share the remaining CSMA period
// under the usual WOLT association.
//
// Planning proceeds in two stages:
//
//  1. Admission: priority demands are placed greedily (largest first)
//     on the extender that spends the least reserved medium time per
//     delivered bit, subject to the WiFi link sustaining the demand and
//     a global TDMA budget (the standard allocates a bounded contention-
//     free period per beacon cycle). Infeasible demand sets are rejected.
//
//  2. Best-effort association: the remaining users are associated by
//     the ordinary two-phase WOLT algorithm against the capacities left
//     after reservations (the CSMA period shrinks to 1−R of the beacon
//     cycle).
package qos

import (
	"errors"
	"fmt"
	"sort"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/model"
)

// ErrInfeasible is returned when the priority demands cannot all be
// guaranteed within the TDMA budget.
var ErrInfeasible = errors.New("qos: priority demands exceed the TDMA budget")

// Demand is one priority user's guaranteed-rate requirement.
type Demand struct {
	// User is the user's row index in the network.
	User int
	// Mbps is the guaranteed throughput to reserve.
	Mbps float64
}

// Config parameterizes planning.
type Config struct {
	// Net is the complete network (priority and best-effort users).
	Net *model.Network
	// Priority lists the guaranteed-rate users; all other users are
	// best-effort.
	Priority []Demand
	// TDMABudget is the maximum fraction of medium time the coordinator
	// may reserve (default 0.6, leaving ≥40% CSMA per beacon cycle).
	TDMABudget float64
	// Assign configures the best-effort WOLT run.
	Assign core.Options
	// Eval selects the evaluation model for the best-effort share.
	Eval model.Options
}

// Plan is a complete QoS-aware association.
type Plan struct {
	// Assign covers every user: priority users sit on their reserved
	// extender, best-effort users on their WOLT extender.
	Assign model.Assignment
	// ReservedTime[j] is the medium-time fraction reserved for extender
	// j's priority traffic.
	ReservedTime []float64
	// TotalReserved is Σ ReservedTime (≤ TDMABudget).
	TotalReserved float64
	// Guaranteed[user] is the admitted guaranteed rate.
	Guaranteed map[int]float64
	// BestEffort is the evaluated best-effort share (computed against
	// the capacities scaled by the remaining CSMA fraction).
	BestEffort *model.Result
}

// Build computes a QoS plan.
func Build(cfg Config) (*Plan, error) {
	n := cfg.Net
	if n == nil {
		return nil, fmt.Errorf("qos: nil network")
	}
	if err := n.Validate(); err != nil {
		return nil, err
	}
	budget := cfg.TDMABudget
	if budget == 0 {
		budget = 0.6
	}
	if budget < 0 || budget > 1 {
		return nil, fmt.Errorf("qos: TDMA budget %v outside [0,1]", budget)
	}

	isPriority := make(map[int]float64, len(cfg.Priority))
	for _, d := range cfg.Priority {
		if d.User < 0 || d.User >= n.NumUsers() {
			return nil, fmt.Errorf("qos: priority user %d out of range", d.User)
		}
		if d.Mbps <= 0 {
			return nil, fmt.Errorf("qos: non-positive demand %v for user %d", d.Mbps, d.User)
		}
		if _, dup := isPriority[d.User]; dup {
			return nil, fmt.Errorf("qos: duplicate demand for user %d", d.User)
		}
		isPriority[d.User] = d.Mbps
	}

	plan := &Plan{
		Assign:       make(model.Assignment, n.NumUsers()),
		ReservedTime: make([]float64, n.NumExtenders()),
		Guaranteed:   make(map[int]float64, len(cfg.Priority)),
	}
	for i := range plan.Assign {
		plan.Assign[i] = model.Unassigned
	}

	// Stage 1 — admission, largest demand first (hardest to place).
	demands := append([]Demand(nil), cfg.Priority...)
	sort.Slice(demands, func(a, b int) bool {
		if demands[a].Mbps != demands[b].Mbps {
			return demands[a].Mbps > demands[b].Mbps
		}
		return demands[a].User < demands[b].User
	})
	for _, d := range demands {
		bestJ, bestFrac := -1, 0.0
		for j := 0; j < n.NumExtenders(); j++ {
			if n.WiFiRates[d.User][j] < d.Mbps {
				continue // the WiFi hop cannot sustain the guarantee
			}
			frac := d.Mbps / n.PLCCaps[j]
			if plan.TotalReserved+frac > budget+1e-12 {
				continue
			}
			if bestJ < 0 || frac < bestFrac {
				bestJ, bestFrac = j, frac
			}
		}
		if bestJ < 0 {
			return nil, fmt.Errorf("%w: user %d needs %v Mbps (reserved %.2f of %.2f)",
				ErrInfeasible, d.User, d.Mbps, plan.TotalReserved, budget)
		}
		plan.Assign[d.User] = bestJ
		plan.ReservedTime[bestJ] += bestFrac
		plan.TotalReserved += bestFrac
		plan.Guaranteed[d.User] = d.Mbps
	}

	// Stage 2 — best-effort WOLT over the shrunken CSMA period.
	var bestEffort []int
	for i := 0; i < n.NumUsers(); i++ {
		if _, ok := isPriority[i]; !ok {
			bestEffort = append(bestEffort, i)
		}
	}
	if len(bestEffort) == 0 {
		return plan, nil
	}
	csma := 1 - plan.TotalReserved
	sub := &model.Network{
		WiFiRates: make([][]float64, len(bestEffort)),
		PLCCaps:   make([]float64, n.NumExtenders()),
	}
	for j, c := range n.PLCCaps {
		sub.PLCCaps[j] = c * csma
		if sub.PLCCaps[j] <= 0 {
			// Fully reserved medium: a hair of capacity keeps the model
			// valid; best-effort users then get (almost) nothing.
			sub.PLCCaps[j] = 1e-9
		}
	}
	for k, i := range bestEffort {
		sub.WiFiRates[k] = n.WiFiRates[i]
	}
	res, err := core.Assign(sub, cfg.Assign)
	if err != nil {
		return nil, fmt.Errorf("qos: best-effort association: %w", err)
	}
	for k, i := range bestEffort {
		plan.Assign[i] = res.Assign[k]
	}
	eval, err := model.Evaluate(sub, res.Assign, cfg.Eval)
	if err != nil {
		return nil, fmt.Errorf("qos: best-effort evaluation: %w", err)
	}
	plan.BestEffort = eval
	return plan, nil
}

// AggregateMbps returns the plan's total delivered throughput: the sum
// of admitted guarantees plus the best-effort aggregate.
func (p *Plan) AggregateMbps() float64 {
	total := 0.0
	for _, g := range p.Guaranteed {
		total += g
	}
	if p.BestEffort != nil {
		total += p.BestEffort.Aggregate
	}
	return total
}
