// Package stats provides the small statistical toolbox used across the WOLT
// evaluation: summary statistics, empirical CDFs, confidence intervals and
// Jain's fairness index.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return Sum(xs) / float64(len(xs))
}

// Sum returns the sum of xs.
func Sum(xs []float64) float64 {
	var s float64
	for _, x := range xs {
		s += x
	}
	return s
}

// Min returns the smallest element of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Variance returns the unbiased sample variance of xs.
// It returns 0 when fewer than two samples are present.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mean := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the unbiased sample standard deviation of xs.
func StdDev(xs []float64) float64 {
	return math.Sqrt(Variance(xs))
}

// Percentile returns the p-th percentile (p in [0,100]) of xs using linear
// interpolation between closest ranks. It returns an error for empty input
// or an out-of-range p.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, fmt.Errorf("stats: percentile %v out of range [0,100]", p)
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// Median returns the 50th percentile of xs.
func Median(xs []float64) (float64, error) {
	return Percentile(xs, 50)
}

// JainIndex returns Jain's fairness index of the allocations xs:
//
//	J = (Σ x_i)² / (n · Σ x_i²)
//
// J is 1 when all allocations are equal and approaches 1/n under maximal
// unfairness. An empty or all-zero sample yields 0.
func JainIndex(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum, sq float64
	for _, x := range xs {
		sum += x
		sq += x * x
	}
	if sq == 0 {
		return 0
	}
	return sum * sum / (float64(len(xs)) * sq)
}

// CDFPoint is a single point of an empirical CDF.
type CDFPoint struct {
	Value float64 // sample value
	P     float64 // cumulative probability in (0,1]
}

// CDF returns the empirical cumulative distribution of xs as a sorted list
// of (value, probability) points. Duplicate values are merged into one point
// carrying the highest cumulative probability.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	points := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i, v := range sorted {
		p := float64(i+1) / n
		if len(points) > 0 && points[len(points)-1].Value == v {
			points[len(points)-1].P = p
			continue
		}
		points = append(points, CDFPoint{Value: v, P: p})
	}
	return points
}

// MeanCI returns the sample mean of xs together with the half-width of an
// approximate 95% confidence interval (normal approximation).
func MeanCI(xs []float64) (mean, halfWidth float64) {
	mean = Mean(xs)
	if len(xs) < 2 {
		return mean, 0
	}
	const z95 = 1.96
	halfWidth = z95 * StdDev(xs) / math.Sqrt(float64(len(xs)))
	return mean, halfWidth
}

// Ratio returns a/b, or 0 when b is 0. It exists because experiment code
// frequently reports improvement factors over baselines that can be zero in
// degenerate topologies.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
