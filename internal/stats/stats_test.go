package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool {
	return math.Abs(a-b) <= eps
}

func TestMeanSumMinMax(t *testing.T) {
	tests := []struct {
		name     string
		give     []float64
		wantMean float64
		wantSum  float64
		wantMin  float64
		wantMax  float64
	}{
		{name: "empty", give: nil},
		{name: "single", give: []float64{4}, wantMean: 4, wantSum: 4, wantMin: 4, wantMax: 4},
		{name: "several", give: []float64{1, 2, 3, 4}, wantMean: 2.5, wantSum: 10, wantMin: 1, wantMax: 4},
		{name: "negative", give: []float64{-2, 2}, wantMean: 0, wantSum: 0, wantMin: -2, wantMax: 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Mean(tt.give); got != tt.wantMean {
				t.Errorf("Mean = %v, want %v", got, tt.wantMean)
			}
			if got := Sum(tt.give); got != tt.wantSum {
				t.Errorf("Sum = %v, want %v", got, tt.wantSum)
			}
			if got := Min(tt.give); got != tt.wantMin {
				t.Errorf("Min = %v, want %v", got, tt.wantMin)
			}
			if got := Max(tt.give); got != tt.wantMax {
				t.Errorf("Max = %v, want %v", got, tt.wantMax)
			}
		})
	}
}

func TestVarianceAndStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Known dataset: population variance 4, sample variance 32/7.
	if got, want := Variance(xs), 32.0/7.0; !almostEqual(got, want, 1e-12) {
		t.Errorf("Variance = %v, want %v", got, want)
	}
	if got, want := StdDev(xs), math.Sqrt(32.0/7.0); !almostEqual(got, want, 1e-12) {
		t.Errorf("StdDev = %v, want %v", got, want)
	}
	if got := Variance([]float64{1}); got != 0 {
		t.Errorf("Variance of singleton = %v, want 0", got)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{15, 20, 35, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 15},
		{100, 50},
		{50, 35},
		{25, 20},
		{75, 40},
	}
	for _, tt := range tests {
		got, err := Percentile(xs, tt.p)
		if err != nil {
			t.Fatalf("Percentile(%v): %v", tt.p, err)
		}
		if !almostEqual(got, tt.want, 1e-12) {
			t.Errorf("Percentile(%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
	if _, err := Percentile(nil, 50); err == nil {
		t.Error("Percentile on empty input: want error, got nil")
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Error("Percentile(101): want error, got nil")
	}
	if _, err := Percentile(xs, -1); err == nil {
		t.Error("Percentile(-1): want error, got nil")
	}
}

func TestPercentileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}

func TestMedian(t *testing.T) {
	got, err := Median([]float64{1, 3, 2})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("Median = %v, want 2", got)
	}
}

func TestJainIndex(t *testing.T) {
	tests := []struct {
		name string
		give []float64
		want float64
	}{
		{name: "empty", give: nil, want: 0},
		{name: "all zero", give: []float64{0, 0}, want: 0},
		{name: "equal", give: []float64{5, 5, 5, 5}, want: 1},
		{name: "one hog", give: []float64{1, 0, 0, 0}, want: 0.25},
		{name: "paper-ish", give: []float64{10, 20}, want: 900.0 / (2 * 500)},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := JainIndex(tt.give); !almostEqual(got, tt.want, 1e-12) {
				t.Errorf("JainIndex = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestJainIndexBounds(t *testing.T) {
	// Property: for non-negative inputs with at least one positive value,
	// 1/n <= J <= 1.
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		xs := make([]float64, len(raw))
		anyPositive := false
		for i, v := range raw {
			x := math.Abs(v)
			if math.IsNaN(x) || math.IsInf(x, 0) {
				x = 1
			}
			// Keep values in a throughput-like range so squares cannot
			// overflow.
			xs[i] = math.Mod(x, 1e6)
			if xs[i] > 0 {
				anyPositive = true
			}
		}
		if !anyPositive {
			return JainIndex(xs) == 0
		}
		j := JainIndex(xs)
		n := float64(len(xs))
		return j >= 1/n-1e-9 && j <= 1+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCDF(t *testing.T) {
	points := CDF([]float64{3, 1, 2, 2})
	want := []CDFPoint{{1, 0.25}, {2, 0.75}, {3, 1}}
	if len(points) != len(want) {
		t.Fatalf("CDF has %d points, want %d: %v", len(points), len(want), points)
	}
	for i := range want {
		if points[i].Value != want[i].Value || !almostEqual(points[i].P, want[i].P, 1e-12) {
			t.Errorf("point %d = %+v, want %+v", i, points[i], want[i])
		}
	}
	if got := CDF(nil); got != nil {
		t.Errorf("CDF(nil) = %v, want nil", got)
	}
}

func TestCDFIsMonotone(t *testing.T) {
	f := func(xs []float64) bool {
		for i := range xs {
			if math.IsNaN(xs[i]) || math.IsInf(xs[i], 0) {
				xs[i] = 0
			}
		}
		points := CDF(xs)
		for i := 1; i < len(points); i++ {
			if points[i].Value <= points[i-1].Value || points[i].P <= points[i-1].P {
				return false
			}
		}
		if len(points) > 0 && !almostEqual(points[len(points)-1].P, 1, 1e-12) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMeanCI(t *testing.T) {
	mean, hw := MeanCI([]float64{10, 10, 10, 10})
	if mean != 10 || hw != 0 {
		t.Errorf("MeanCI constant = (%v,%v), want (10,0)", mean, hw)
	}
	mean, hw = MeanCI([]float64{0, 10})
	if mean != 5 {
		t.Errorf("mean = %v, want 5", mean)
	}
	if hw <= 0 {
		t.Errorf("half-width = %v, want > 0", hw)
	}
	if _, hw := MeanCI([]float64{1}); hw != 0 {
		t.Errorf("singleton half-width = %v, want 0", hw)
	}
}

func TestRatio(t *testing.T) {
	if got := Ratio(10, 4); got != 2.5 {
		t.Errorf("Ratio(10,4) = %v, want 2.5", got)
	}
	if got := Ratio(10, 0); got != 0 {
		t.Errorf("Ratio(10,0) = %v, want 0", got)
	}
}
