package stats

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuantileValidation(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewQuantile(p); err == nil {
			t.Errorf("NewQuantile(%v): want error", p)
		}
	}
	if _, err := NewQuantile(0.5); err != nil {
		t.Fatalf("NewQuantile(0.5): %v", err)
	}
}

func TestQuantileEmptyAndWarmup(t *testing.T) {
	q := MustQuantile(0.5)
	if got := q.Value(); got != 0 {
		t.Errorf("empty Value() = %v, want 0", got)
	}
	// Below five samples the estimate is the exact nearest-rank value.
	samples := []float64{7, 3, 9, 1}
	for i, x := range samples {
		q.Add(x)
		seen := samples[:i+1]
		if got, want := q.Value(), ExactQuantile(seen, 0.5); got != want {
			t.Errorf("after %d samples: Value() = %v, want exact %v", i+1, got, want)
		}
	}
	if q.Count() != len(samples) {
		t.Errorf("Count() = %d, want %d", q.Count(), len(samples))
	}
}

// TestQuantileAccuracy feeds streams from several distributions and
// requires the P² estimate to land near the exact quantile. Tolerances
// are in quantile rank: the estimate's rank in the sorted sample must be
// within a few percent of the target.
func TestQuantileAccuracy(t *testing.T) {
	const n = 20000
	distributions := []struct {
		name string
		draw func(r *rand.Rand) float64
	}{
		{"uniform", func(r *rand.Rand) float64 { return r.Float64() }},
		{"normal", func(r *rand.Rand) float64 { return r.NormFloat64() }},
		{"exponential", func(r *rand.Rand) float64 { return r.ExpFloat64() }},
		// Latency-shaped: lognormal body with a heavy tail.
		{"lognormal", func(r *rand.Rand) float64 { return math.Exp(r.NormFloat64()) }},
	}
	for _, dist := range distributions {
		for _, p := range []float64{0.5, 0.9, 0.99} {
			r := rand.New(rand.NewSource(42))
			q := MustQuantile(p)
			xs := make([]float64, 0, n)
			for i := 0; i < n; i++ {
				x := dist.draw(r)
				xs = append(xs, x)
				q.Add(x)
			}
			est := q.Value()
			// Rank of the estimate within the sample.
			rank := 0
			for _, x := range xs {
				if x <= est {
					rank++
				}
			}
			gotP := float64(rank) / float64(n)
			if math.Abs(gotP-p) > 0.02 {
				t.Errorf("%s p=%v: estimate %v sits at rank %.4f (off by %.4f)",
					dist.name, p, est, gotP, math.Abs(gotP-p))
			}
		}
	}
}

// TestQuantileDeterministic pins that the estimator is a pure function
// of the observation sequence.
func TestQuantileDeterministic(t *testing.T) {
	feed := func() float64 {
		r := rand.New(rand.NewSource(7))
		q := MustQuantile(0.99)
		for i := 0; i < 5000; i++ {
			q.Add(r.ExpFloat64())
		}
		return q.Value()
	}
	if a, b := feed(), feed(); a != b {
		t.Errorf("same stream gave different estimates: %v vs %v", a, b)
	}
}

func TestQuantileReset(t *testing.T) {
	q := MustQuantile(0.9)
	for i := 0; i < 100; i++ {
		q.Add(float64(i))
	}
	q.Reset()
	if q.Count() != 0 || q.Value() != 0 {
		t.Fatalf("after Reset: Count=%d Value=%v, want 0/0", q.Count(), q.Value())
	}
	if q.P() != 0.9 {
		t.Errorf("Reset lost the target quantile: P=%v", q.P())
	}
	// A reset estimator behaves like a fresh one.
	fresh := MustQuantile(0.9)
	r1, r2 := rand.New(rand.NewSource(3)), rand.New(rand.NewSource(3))
	for i := 0; i < 1000; i++ {
		q.Add(r1.Float64())
		fresh.Add(r2.Float64())
	}
	if q.Value() != fresh.Value() {
		t.Errorf("reset estimator diverged from fresh one: %v vs %v", q.Value(), fresh.Value())
	}
}

// TestQuantileMonotoneInput is the adversarial stream for marker
// algorithms: strictly increasing input.
func TestQuantileMonotoneInput(t *testing.T) {
	q := MustQuantile(0.5)
	xs := make([]float64, 0, 10001)
	for i := 0; i <= 10000; i++ {
		x := float64(i)
		q.Add(x)
		xs = append(xs, x)
	}
	want := ExactQuantile(xs, 0.5)
	if math.Abs(q.Value()-want) > 0.01*want {
		t.Errorf("monotone stream: estimate %v, exact %v", q.Value(), want)
	}
}

func TestExactQuantile(t *testing.T) {
	xs := []float64{5, 1, 4, 2, 3}
	cases := []struct {
		p    float64
		want float64
	}{{0.2, 1}, {0.5, 3}, {0.99, 5}, {0.01, 1}}
	for _, c := range cases {
		if got := ExactQuantile(xs, c.p); got != c.want {
			t.Errorf("ExactQuantile(p=%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if got := ExactQuantile(nil, 0.5); got != 0 {
		t.Errorf("ExactQuantile(nil) = %v, want 0", got)
	}
}
