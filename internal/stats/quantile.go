package stats

import (
	"fmt"
	"math"
	"sort"
)

// Quantile is a streaming estimator of a single quantile using the P²
// algorithm (Jain & Chlamtac, CACM 1985): five markers track the
// minimum, the maximum, the target quantile and its two flanking
// mid-quantiles, adjusted after every observation with piecewise
// parabolic interpolation. Memory is O(1) regardless of stream length —
// the property the million-user city harness needs, where a per-event
// latency sample slice would grow without bound.
//
// For the first five observations the estimate is exact (the samples
// are simply sorted). The estimate is deterministic for a given
// observation sequence; different interleavings of the same samples may
// yield slightly different estimates, which is acceptable for the
// wall-clock measurements it is used on (those are excluded from the
// determinism contract anyway, DESIGN.md §7).
//
// The zero Quantile is not ready for use; construct with NewQuantile.
type Quantile struct {
	p     float64    // target quantile in (0,1)
	n     int        // observations seen
	q     [5]float64 // marker heights
	pos   [5]float64 // actual marker positions (1-based)
	want  [5]float64 // desired marker positions
	dWant [5]float64 // desired-position increments per observation
}

// NewQuantile returns a P² estimator of the p-th quantile, p in (0,1)
// exclusive (e.g. 0.5 for the median, 0.99 for the tail).
func NewQuantile(p float64) (*Quantile, error) {
	if math.IsNaN(p) || p <= 0 || p >= 1 {
		return nil, fmt.Errorf("stats: quantile %v outside (0,1)", p)
	}
	q := &Quantile{p: p}
	q.want = [5]float64{1, 1 + 2*p, 1 + 4*p, 3 + 2*p, 5}
	q.dWant = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return q, nil
}

// MustQuantile is NewQuantile for static, known-valid p; it panics on an
// invalid quantile.
func MustQuantile(p float64) *Quantile {
	q, err := NewQuantile(p)
	if err != nil {
		panic(err)
	}
	return q
}

// P returns the target quantile the estimator tracks.
func (q *Quantile) P() float64 { return q.p }

// Count returns the number of observations added.
func (q *Quantile) Count() int { return q.n }

// Add feeds one observation into the estimator.
func (q *Quantile) Add(x float64) {
	if q.n < 5 {
		q.q[q.n] = x
		q.n++
		// Keep the warm-up markers sorted; five elements, insertion is
		// cheapest and allocation-free.
		for i := q.n - 1; i > 0 && q.q[i] < q.q[i-1]; i-- {
			q.q[i], q.q[i-1] = q.q[i-1], q.q[i]
		}
		if q.n == 5 {
			for i := range q.pos {
				q.pos[i] = float64(i + 1)
			}
		}
		return
	}

	// Locate the cell the observation falls into and update the extreme
	// markers.
	var k int
	switch {
	case x < q.q[0]:
		q.q[0] = x
		k = 0
	case x >= q.q[4]:
		q.q[4] = x
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if x < q.q[k+1] {
				break
			}
		}
	}
	q.n++
	for i := k + 1; i < 5; i++ {
		q.pos[i]++
	}
	for i := range q.want {
		q.want[i] += q.dWant[i]
	}

	// Adjust the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := q.want[i] - q.pos[i]
		if (d >= 1 && q.pos[i+1]-q.pos[i] > 1) || (d <= -1 && q.pos[i-1]-q.pos[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1
			}
			h := q.parabolic(i, sign)
			if q.q[i-1] < h && h < q.q[i+1] {
				q.q[i] = h
			} else {
				q.q[i] = q.linear(i, sign)
			}
			q.pos[i] += sign
		}
	}
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i one position in direction d (±1).
func (q *Quantile) parabolic(i int, d float64) float64 {
	return q.q[i] + d/(q.pos[i+1]-q.pos[i-1])*
		((q.pos[i]-q.pos[i-1]+d)*(q.q[i+1]-q.q[i])/(q.pos[i+1]-q.pos[i])+
			(q.pos[i+1]-q.pos[i]-d)*(q.q[i]-q.q[i-1])/(q.pos[i]-q.pos[i-1]))
}

// linear is the fallback linear height prediction used when the
// parabolic one would violate marker monotonicity.
func (q *Quantile) linear(i int, d float64) float64 {
	j := i + int(d)
	return q.q[i] + d*(q.q[j]-q.q[i])/(q.pos[j]-q.pos[i])
}

// Value returns the current quantile estimate. With fewer than five
// observations it is the exact quantile of what has been seen (nearest
// rank); with none it is 0.
func (q *Quantile) Value() float64 {
	if q.n == 0 {
		return 0
	}
	if q.n < 5 {
		rank := int(math.Ceil(q.p * float64(q.n)))
		if rank < 1 {
			rank = 1
		}
		return q.q[rank-1]
	}
	return q.q[2]
}

// Reset returns the estimator to its initial empty state, keeping the
// target quantile.
func (q *Quantile) Reset() {
	n := q.p
	*q = Quantile{p: n}
	q.want = [5]float64{1, 1 + 2*n, 1 + 4*n, 3 + 2*n, 5}
	q.dWant = [5]float64{0, n / 2, n, (1 + n) / 2, 1}
}

// ExactQuantile is the nearest-rank reference the estimator's tests
// compare against: the ceil(p*n)-th smallest sample. It copies and
// sorts; use it for verification, not hot paths.
func ExactQuantile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	rank := int(math.Ceil(p * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}
