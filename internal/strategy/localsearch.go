package strategy

import (
	"time"

	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
)

func init() {
	Register("wolt-hillclimb", newLocalSearch("wolt-hillclimb", localsearch.HillClimbing))
	Register("wolt-kopt", newLocalSearch("wolt-kopt", localsearch.KOpt))
	Register("wolt-anneal", newLocalSearch("wolt-anneal", localsearch.Annealing))
}

// lsStrategy adapts the internal/localsearch family to the registry:
// Solve searches from an empty association (placement seeds it),
// Reassign searches from the previous one — the warm path that makes
// per-epoch re-solves sub-millisecond — and Add places one arrival
// through the evaluator's Matches fast path. All three forms honor
// Config.Budget and Config.Ctx under the anytime contract (DESIGN.md
// §11): they always return the best-so-far valid association.
type lsStrategy struct {
	name   string
	method localsearch.Method
	cfg    Config
	opts   localsearch.Options
	search localsearch.Searcher
	empty  model.Assignment
}

func newLocalSearch(name string, method localsearch.Method) Factory {
	return func(cfg Config) Strategy {
		opts := localsearch.Options{
			Model:  cfg.ModelOpts,
			Seed:   cfg.Seed,
			Budget: cfg.Budget,
		}
		if cfg.Alpha != 0 {
			// Config.Alpha re-aims the whole search family at the
			// α-fair objective: deficit ordering, move acceptance and
			// annealing temperature all follow the utility's Score.
			opts.Model.Utility = model.AlphaFair(cfg.Alpha)
		}
		if method == localsearch.Annealing {
			// Only the annealer draws randomness; hand it the
			// instance rng so Config.Rng keeps working.
			opts.Rng = cfg.Rng
		}
		return &lsStrategy{name: name, method: method, cfg: cfg, opts: opts}
	}
}

// Name implements Strategy.
func (s *lsStrategy) Name() string { return s.name }

// lsStats builds the Stats record of one search.
func lsStats(name string, n *model.Network, res *localsearch.Result, total time.Duration) Stats {
	return Stats{
		Strategy:    name,
		Users:       n.NumUsers(),
		Extenders:   n.NumExtenders(),
		Total:       total,
		Evaluations: res.Attaches,
		DeltaProbes: res.Probes,
		Commits:     res.Commits,
		Improving:   res.Improving,
		Aggregate:   res.Aggregate,
		Utility:     res.Utility,
		Trajectory:  res.Trajectory,
		Stop:        res.Stop.String(),
	}
}

// Solve implements Strategy: the cold form seeds from an all-unassigned
// association (the free placement pass greedily builds one) and then
// searches. It is not meant to rival the two-phase solve on quality —
// register it for completeness and for the budget-vs-quality curve of
// the anytime experiment.
func (s *lsStrategy) Solve(n *model.Network) (model.Assignment, error) {
	if cap(s.empty) < n.NumUsers() {
		s.empty = make(model.Assignment, n.NumUsers())
	}
	s.empty = s.empty[:n.NumUsers()]
	for i := range s.empty {
		s.empty[i] = model.Unassigned
	}
	return s.run(n, s.empty)
}

// Reassign implements Reassigner: the warm path. The previous
// association seeds the search, arrivals (Unassigned entries) are
// placed for free, and the budgeted climb repairs the rest.
func (s *lsStrategy) Reassign(n *model.Network, prev model.Assignment) (model.Assignment, error) {
	return s.run(n, prev)
}

func (s *lsStrategy) run(n *model.Network, start model.Assignment) (model.Assignment, error) {
	t0 := time.Now()
	res, err := s.search.Search(s.cfg.Ctx, n, start, s.method, s.opts)
	if err != nil {
		return nil, err
	}
	s.cfg.emit(lsStats(s.name, n, res, time.Since(t0)))
	return res.Assign, nil
}

// Add implements Online: one arrival, placed on the candidate extender
// that maximizes the aggregate. Returns the chosen extender (or
// model.Unassigned when the user has no reachable candidate, matching
// the greedy baseline's convention).
func (s *lsStrategy) Add(n *model.Network, assign model.Assignment, user int) (int, error) {
	j, err := s.search.Place(n, assign, user, s.opts)
	if err != nil {
		return model.Unassigned, err
	}
	assign[user] = j
	return j, nil
}
