package strategy

import (
	"time"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
)

func init() {
	Register("wolt", newWOLT("wolt", core.Phase2ProjectedGradient))
	Register("wolt-coordinate", newWOLT("wolt-coordinate", core.Phase2Coordinate))
	Register("wolt-fair", func(cfg Config) Strategy {
		return &fairStrategy{cfg: cfg}
	})
	Register("wolt-incremental", func(cfg Config) Strategy {
		budget := cfg.Budget.Moves
		switch {
		case budget == 0:
			budget = -1 // core's "unlimited"
		case budget < 0:
			budget = 0 // placement only
		}
		s := &incrementalStrategy{cfg: cfg, opts: coreOptions(cfg, 0), budget: budget}
		// A probe or time budget opts Reassign into the warm path: the
		// previous assignment seeds an anytime hill climb instead of a
		// fresh two-phase target solve (core.WarmOptions).
		if cfg.Budget.Probes > 0 || cfg.Budget.Time > 0 {
			s.opts.Warm = &core.WarmOptions{
				Search: localsearch.Options{Seed: cfg.Seed, Budget: cfg.Budget},
				Ctx:    cfg.Ctx,
			}
		}
		return s
	})
}

// coreOptions derives the two-phase solver options of a WOLT variant:
// the named variant's Phase II engine overrides Config.Core.Solver, and
// Config.Workers flows into the NLP solver unless the caller tuned
// NLP.Workers explicitly.
func coreOptions(cfg Config, solver core.Phase2Solver) core.Options {
	opts := cfg.Core
	if solver != 0 {
		opts.Solver = solver
	}
	if opts.NLP.Workers == 0 {
		opts.NLP.Workers = cfg.Workers
	}
	return opts
}

// woltStats builds the Stats record of one two-phase solve.
func woltStats(name string, n *model.Network, res *core.Result, total time.Duration, evals int) Stats {
	st := Stats{
		Strategy:               name,
		Users:                  n.NumUsers(),
		Extenders:              n.NumExtenders(),
		Phase1:                 res.Phase1Time,
		Phase2:                 res.Phase2Time,
		Total:                  total,
		Phase1Users:            len(res.PhaseIUsers),
		HungarianAugmentations: res.Phase1Augmentations,
		Evaluations:            evals,
	}
	if res.Phase2 != nil {
		st.Phase2Iterations = res.Phase2.Iterations
		st.PolishSweeps = res.Phase2.PolishSweeps
	}
	return st
}

// woltStrategy runs the full two-phase algorithm (projected-gradient or
// coordinate Phase II); epochs recompute from scratch.
type woltStrategy struct {
	name    string
	cfg     Config
	opts    core.Options
	scratch core.Scratch
}

func newWOLT(name string, solver core.Phase2Solver) Factory {
	return func(cfg Config) Strategy {
		return &woltStrategy{name: name, cfg: cfg, opts: coreOptions(cfg, solver)}
	}
}

// Name implements Strategy.
func (w *woltStrategy) Name() string { return w.name }

// Solve implements Strategy.
func (w *woltStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	res, err := core.AssignWith(&w.scratch, n, w.opts)
	if err != nil {
		return nil, err
	}
	w.cfg.emit(woltStats(w.name, n, res, time.Since(start), 0))
	return res.Assign, nil
}

// Reassign implements Reassigner: WOLT's controller recomputes the full
// association at every epoch; the previous assignment is ignored.
func (w *woltStrategy) Reassign(n *model.Network, _ model.Assignment) (model.Assignment, error) {
	return w.Solve(n)
}

// fairStrategy is the proportional-fairness variant: Phase I unchanged,
// Phase II maximizes Σ log(throughput).
type fairStrategy struct {
	cfg Config
}

// Name implements Strategy.
func (f *fairStrategy) Name() string { return "wolt-fair" }

// Solve implements Strategy.
func (f *fairStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	res, err := core.AssignProportionalFair(n, f.cfg.Core)
	if err != nil {
		return nil, err
	}
	f.cfg.emit(woltStats("wolt-fair", n, res, time.Since(start), 0))
	return res.Assign, nil
}

// Reassign implements Reassigner.
func (f *fairStrategy) Reassign(n *model.Network, _ model.Assignment) (model.Assignment, error) {
	return f.Solve(n)
}

// incrementalStrategy is the budgeted re-association extension: Reassign
// steers the previous association toward the full WOLT target while
// moving at most Config.Budget.Moves existing users; Solve (no previous
// state) is a plain two-phase solve.
type incrementalStrategy struct {
	cfg     Config
	opts    core.Options
	budget  int
	scratch core.Scratch
}

// Name implements Strategy.
func (s *incrementalStrategy) Name() string { return "wolt-incremental" }

// Solve implements Strategy.
func (s *incrementalStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	res, err := core.AssignWith(&s.scratch, n, s.opts)
	if err != nil {
		return nil, err
	}
	s.cfg.emit(woltStats("wolt-incremental", n, res, time.Since(start), 0))
	return res.Assign, nil
}

// Reassign implements Reassigner.
func (s *incrementalStrategy) Reassign(n *model.Network, prev model.Assignment) (model.Assignment, error) {
	start := time.Now()
	res, err := core.AssignIncrementalWith(&s.scratch, n, prev, s.budget, s.opts, s.cfg.ModelOpts)
	if err != nil {
		return nil, err
	}
	var st Stats
	if res.Target != nil {
		st = woltStats("wolt-incremental", n, res.Target, time.Since(start), res.Evals)
	} else {
		// Warm path: no target solve ran, so there are no phase
		// diagnostics — only the local search's anytime record.
		st = Stats{
			Strategy:    "wolt-incremental",
			Users:       n.NumUsers(),
			Extenders:   n.NumExtenders(),
			Total:       time.Since(start),
			Evaluations: res.Evals,
		}
	}
	if res.Search != nil {
		st.Commits = res.Search.Commits
		st.Improving = res.Search.Improving
		st.Aggregate = res.Search.Aggregate
		st.Trajectory = res.Search.Trajectory
		st.Stop = res.Search.Stop.String()
	}
	st.DeltaProbes = res.DeltaProbes
	s.cfg.emit(st)
	return res.Assign, nil
}
