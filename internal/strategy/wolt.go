package strategy

import (
	"time"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
)

func init() {
	Register("wolt", newWOLT("wolt", core.Phase2ProjectedGradient, model.Utility{}))
	Register("wolt-coordinate", newWOLT("wolt-coordinate", core.Phase2Coordinate, model.Utility{}))
	// The utility family: wolt-pf is the α=1 (proportional-fair) member,
	// wolt-alpha the parameterized one (Config.Alpha; 0 reproduces wolt
	// bit-for-bit, math.Inf(1) is max-min via its smooth Phase II
	// surrogate). Both run the full two-phase machinery — Phase I
	// coverage seeding, then the α-fair projected-gradient Phase II —
	// and emit the same per-solve Stats as every other variant.
	Register("wolt-pf", newWOLT("wolt-pf", 0, model.ProportionalFairness()))
	Register("wolt-alpha", func(cfg Config) Strategy {
		return newWOLT("wolt-alpha", 0, model.AlphaFair(cfg.Alpha))(cfg)
	})
	// Deprecated: wolt-fair is a compatibility alias for the α=1 member
	// (use wolt-pf). It now goes through the common woltStrategy
	// machinery, so — unlike the pre-utility shim it replaces — it
	// emits full per-solve Stats (phase timings, augmentations,
	// aggregate and utility) like the other variants.
	Register("wolt-fair", newWOLT("wolt-fair", 0, model.ProportionalFairness()))
	Register("wolt-incremental", func(cfg Config) Strategy {
		budget := cfg.Budget.Moves
		switch {
		case budget == 0:
			budget = -1 // core's "unlimited"
		case budget < 0:
			budget = 0 // placement only
		}
		s := &incrementalStrategy{cfg: cfg, opts: coreOptions(cfg, 0), budget: budget}
		// A probe or time budget opts Reassign into the warm path: the
		// previous assignment seeds an anytime hill climb instead of a
		// fresh two-phase target solve (core.WarmOptions).
		if cfg.Budget.Probes > 0 || cfg.Budget.Time > 0 {
			s.opts.Warm = &core.WarmOptions{
				Search: localsearch.Options{Seed: cfg.Seed, Budget: cfg.Budget},
				Ctx:    cfg.Ctx,
			}
		}
		return s
	})
}

// coreOptions derives the two-phase solver options of a WOLT variant:
// the named variant's Phase II engine overrides Config.Core.Solver, and
// Config.Workers flows into the NLP solver unless the caller tuned
// NLP.Workers explicitly.
func coreOptions(cfg Config, solver core.Phase2Solver) core.Options {
	opts := cfg.Core
	if solver != 0 {
		opts.Solver = solver
	}
	if opts.NLP.Workers == 0 {
		opts.NLP.Workers = cfg.Workers
	}
	return opts
}

// woltStats builds the Stats record of one two-phase solve.
func woltStats(name string, n *model.Network, res *core.Result, total time.Duration, evals int) Stats {
	st := Stats{
		Strategy:               name,
		Users:                  n.NumUsers(),
		Extenders:              n.NumExtenders(),
		Phase1:                 res.Phase1Time,
		Phase2:                 res.Phase2Time,
		Total:                  total,
		Phase1Users:            len(res.PhaseIUsers),
		HungarianAugmentations: res.Phase1Augmentations,
		Evaluations:            evals,
	}
	if res.Phase2 != nil {
		st.Phase2Iterations = res.Phase2.Iterations
		st.PolishSweeps = res.Phase2.PolishSweeps
	}
	return st
}

// woltStrategy runs the full two-phase algorithm (projected-gradient or
// coordinate Phase II) under a fixed utility member; epochs recompute
// from scratch.
type woltStrategy struct {
	name    string
	cfg     Config
	opts    core.Options
	scratch core.Scratch
	eval    model.EvalScratch
}

// newWOLT builds the factory of a two-phase variant. A zero solver
// keeps Config.Core.Solver (defaulting to projected gradient); a zero
// utility keeps Config.Core.Utility, so the plain variants stay
// bit-identical to the pre-utility registry.
func newWOLT(name string, solver core.Phase2Solver, utility model.Utility) Factory {
	return func(cfg Config) Strategy {
		opts := coreOptions(cfg, solver)
		if !utility.IsSumRate() {
			opts.Utility = utility
		}
		return &woltStrategy{name: name, cfg: cfg, opts: opts}
	}
}

// Name implements Strategy.
func (w *woltStrategy) Name() string { return w.name }

// Solve implements Strategy.
func (w *woltStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	res, err := core.AssignWith(&w.scratch, n, w.opts)
	if err != nil {
		return nil, err
	}
	st := woltStats(w.name, n, res, time.Since(start), 0)
	if w.cfg.Observer != nil {
		// One full evaluation per observed solve prices the result in
		// the caller's model (and its utility member) — the common
		// stats path every variant, including the fairness members,
		// now reports through.
		evalOpts := w.cfg.ModelOpts
		evalOpts.Utility = w.opts.Utility
		if ev, everr := model.EvaluateWith(&w.eval, n, res.Assign, evalOpts); everr == nil {
			st.Aggregate = ev.Aggregate
			st.Utility = ev.Utility
		}
	}
	w.cfg.emit(st)
	return res.Assign, nil
}

// Reassign implements Reassigner: WOLT's controller recomputes the full
// association at every epoch; the previous assignment is ignored.
func (w *woltStrategy) Reassign(n *model.Network, _ model.Assignment) (model.Assignment, error) {
	return w.Solve(n)
}

// incrementalStrategy is the budgeted re-association extension: Reassign
// steers the previous association toward the full WOLT target while
// moving at most Config.Budget.Moves existing users; Solve (no previous
// state) is a plain two-phase solve.
type incrementalStrategy struct {
	cfg     Config
	opts    core.Options
	budget  int
	scratch core.Scratch
}

// Name implements Strategy.
func (s *incrementalStrategy) Name() string { return "wolt-incremental" }

// Solve implements Strategy.
func (s *incrementalStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	res, err := core.AssignWith(&s.scratch, n, s.opts)
	if err != nil {
		return nil, err
	}
	s.cfg.emit(woltStats("wolt-incremental", n, res, time.Since(start), 0))
	return res.Assign, nil
}

// Reassign implements Reassigner.
func (s *incrementalStrategy) Reassign(n *model.Network, prev model.Assignment) (model.Assignment, error) {
	start := time.Now()
	res, err := core.AssignIncrementalWith(&s.scratch, n, prev, s.budget, s.opts, s.cfg.ModelOpts)
	if err != nil {
		return nil, err
	}
	var st Stats
	if res.Target != nil {
		st = woltStats("wolt-incremental", n, res.Target, time.Since(start), res.Evals)
	} else {
		// Warm path: no target solve ran, so there are no phase
		// diagnostics — only the local search's anytime record.
		st = Stats{
			Strategy:    "wolt-incremental",
			Users:       n.NumUsers(),
			Extenders:   n.NumExtenders(),
			Total:       time.Since(start),
			Evaluations: res.Evals,
		}
	}
	if res.Search != nil {
		st.Commits = res.Search.Commits
		st.Improving = res.Search.Improving
		st.Aggregate = res.Search.Aggregate
		st.Utility = res.Search.Utility
		st.Trajectory = res.Search.Trajectory
		st.Stop = res.Search.Stop.String()
	}
	st.DeltaProbes = res.DeltaProbes
	s.cfg.emit(st)
	return res.Assign, nil
}
