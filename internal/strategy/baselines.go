package strategy

import (
	"fmt"
	"math/rand"
	"time"

	"github.com/plcwifi/wolt/internal/baseline"
	"github.com/plcwifi/wolt/internal/model"
)

func init() {
	Register("rssi", func(cfg Config) Strategy { return &rssiStrategy{cfg: cfg} })
	Register("greedy", func(cfg Config) Strategy { return &addStrategy{cfg: cfg, name: "greedy", add: baseline.GreedyAddWith} })
	Register("selfish", func(cfg Config) Strategy {
		return &addStrategy{cfg: cfg, name: "selfish", add: baseline.SelfishAddWith}
	})
	Register("optimal", func(cfg Config) Strategy { return &optimalStrategy{cfg: cfg} })
	Register("random", func(cfg Config) Strategy { return &randomStrategy{cfg: cfg, rng: cfg.rng()} })
}

// baselineStats is the Stats record of a single-phase strategy.
func baselineStats(name string, n *model.Network, total time.Duration, evals, probes int) Stats {
	return Stats{
		Strategy:    name,
		Users:       n.NumUsers(),
		Extenders:   n.NumExtenders(),
		Total:       total,
		Evaluations: evals,
		DeltaProbes: probes,
	}
}

// rssiStrategy models commodity strongest-signal association using the
// WiFi PHY rate as the (monotone) signal metric. Reassign re-places
// every user — per-tick client roaming.
type rssiStrategy struct {
	cfg Config
}

// Name implements Strategy.
func (r *rssiStrategy) Name() string { return "rssi" }

// Solve implements Strategy.
func (r *rssiStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	assign, err := baseline.RSSIByRate(n)
	if err != nil {
		return nil, err
	}
	r.cfg.emit(baselineStats("rssi", n, time.Since(start), 0, 0))
	return assign, nil
}

// Add implements Online: the arriving user picks its highest-rate
// reachable extender, ignoring everyone else.
func (r *rssiStrategy) Add(n *model.Network, assign model.Assignment, user int) (int, error) {
	if user < 0 || user >= n.NumUsers() {
		return 0, fmt.Errorf("strategy: user %d out of range", user)
	}
	best, bestRate := model.Unassigned, 0.0
	for j, rate := range n.WiFiRates[user] {
		if rate > bestRate {
			best, bestRate = j, rate
		}
	}
	if best == model.Unassigned {
		return 0, fmt.Errorf("strategy: user %d reaches no extender", user)
	}
	assign[user] = best
	return best, nil
}

// Reassign implements Reassigner: every user roams to its currently
// strongest extender, regardless of the previous association.
func (r *rssiStrategy) Reassign(n *model.Network, _ model.Assignment) (model.Assignment, error) {
	return r.Solve(n)
}

// addStrategy covers the two arrival-order baselines (greedy and
// selfish): Solve replays an index-order arrival sequence through the
// online step, and Add is that step directly. The shared Adder keeps a
// delta evaluator attached across the arrival sequence, so candidates
// are scored by allocation-free O(Δ) probes instead of full
// evaluations.
type addStrategy struct {
	cfg   Config
	name  string
	add   func(ad *baseline.Adder, n *model.Network, assign model.Assignment, user int, opts model.Options) (int, error)
	adder baseline.Adder
}

// Name implements Strategy.
func (a *addStrategy) Name() string { return a.name }

// Solve implements Strategy.
func (a *addStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	if err := n.Validate(); err != nil {
		return nil, err
	}
	a.adder.ResetStats()
	assign := make(model.Assignment, n.NumUsers())
	for i := range assign {
		assign[i] = model.Unassigned
	}
	for i := range assign {
		if _, err := a.add(&a.adder, n, assign, i, a.cfg.ModelOpts); err != nil {
			return nil, err
		}
	}
	evals, probes := a.adder.Stats()
	a.cfg.emit(baselineStats(a.name, n, time.Since(start), evals, probes))
	return assign, nil
}

// Add implements Online.
func (a *addStrategy) Add(n *model.Network, assign model.Assignment, user int) (int, error) {
	return a.add(&a.adder, n, assign, user, a.cfg.ModelOpts)
}

// optimalStrategy is the exhaustive search — offline-only (neither
// Online nor Reassigner): placing one arrival optimally would mean
// re-solving the whole instance, which is not an online policy.
type optimalStrategy struct {
	cfg    Config
	search baseline.Searcher
}

// Name implements Strategy.
func (o *optimalStrategy) Name() string { return "optimal" }

// Solve implements Strategy.
func (o *optimalStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	o.search.ResetStats()
	assign, _, err := baseline.OptimalBoundedWith(&o.search, n, o.cfg.ModelOpts, o.cfg.Optimal)
	if err != nil {
		return nil, err
	}
	evals, probes := o.search.Stats()
	o.cfg.emit(baselineStats("optimal", n, time.Since(start), evals, probes))
	return assign, nil
}

// randomStrategy associates uniformly at random — the sanity floor.
type randomStrategy struct {
	cfg Config
	rng *rand.Rand
}

// Name implements Strategy.
func (r *randomStrategy) Name() string { return "random" }

// Solve implements Strategy.
func (r *randomStrategy) Solve(n *model.Network) (model.Assignment, error) {
	start := time.Now()
	assign, err := baseline.Random(n, r.rng)
	if err != nil {
		return nil, err
	}
	r.cfg.emit(baselineStats("random", n, time.Since(start), 0, 0))
	return assign, nil
}

// Add implements Online: one uniform draw over the user's reachable
// extenders (the same draw sequence as Solve makes per user).
func (r *randomStrategy) Add(n *model.Network, assign model.Assignment, user int) (int, error) {
	if user < 0 || user >= n.NumUsers() {
		return 0, fmt.Errorf("strategy: user %d out of range", user)
	}
	var reachable []int
	for j, rate := range n.WiFiRates[user] {
		if rate > 0 {
			reachable = append(reachable, j)
		}
	}
	if len(reachable) == 0 {
		return 0, fmt.Errorf("strategy: user %d reaches no extender", user)
	}
	assign[user] = reachable[r.rng.Intn(len(reachable))]
	return assign[user], nil
}

// The facade (package wolt) and other non-registry callers reach the
// baseline algorithms through these passthroughs, keeping
// internal/baseline an implementation detail of this package (enforced
// by scripts/lint-imports.sh).

// RSSI associates each user with the extender of strongest signal
// (signal[i][j] is any monotone metric, dBm RSSI in the experiments).
func RSSI(n *model.Network, signal [][]float64) (model.Assignment, error) {
	return baseline.RSSI(n, signal)
}

// Greedy replays the aggregate-throughput-greedy arrival sequence
// (nil order = index order).
func Greedy(n *model.Network, order []int, opts model.Options) (model.Assignment, error) {
	return baseline.Greedy(n, order, opts)
}

// Selfish replays the own-throughput-greedy arrival sequence.
func Selfish(n *model.Network, order []int, opts model.Options) (model.Assignment, error) {
	return baseline.Selfish(n, order, opts)
}

// Optimal exhaustively searches all associations under the default
// instance-size limits.
func Optimal(n *model.Network, opts model.Options) (model.Assignment, float64, error) {
	return baseline.Optimal(n, opts)
}

// Random associates every user uniformly at random.
func Random(n *model.Network, rng *rand.Rand) (model.Assignment, error) {
	return baseline.Random(n, rng)
}
