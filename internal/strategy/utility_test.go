package strategy

import (
	"reflect"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
)

// TestWoltAlphaZeroMatchesWolt: the α=0 member of the family must
// reproduce plain wolt bit-for-bit — same assignment, and (through the
// observer) the same sum-rate aggregate.
func TestWoltAlphaZeroMatchesWolt(t *testing.T) {
	n := testNetwork(t, 24, 4)
	solve := func(name string, cfg Config) (model.Assignment, Stats) {
		var got []Stats
		cfg.Observer = func(s Stats) { got = append(got, s) }
		st, err := New(name, cfg)
		if err != nil {
			t.Fatal(err)
		}
		assign, err := st.Solve(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 {
			t.Fatalf("%s: observer saw %d records, want 1", name, len(got))
		}
		return assign, got[0]
	}

	base, baseStats := solve("wolt", Config{ModelOpts: model.Options{Redistribute: true}})
	alpha, alphaStats := solve("wolt-alpha", Config{ModelOpts: model.Options{Redistribute: true}, Alpha: 0})
	if !reflect.DeepEqual(base, alpha) {
		t.Fatal("wolt-alpha with Alpha=0 diverged from wolt")
	}
	if alphaStats.Aggregate != baseStats.Aggregate {
		t.Fatalf("wolt-alpha Aggregate %v != wolt %v", alphaStats.Aggregate, baseStats.Aggregate)
	}
	if alphaStats.Utility != alphaStats.Aggregate {
		t.Fatalf("α=0 Utility %v != Aggregate %v", alphaStats.Utility, alphaStats.Aggregate)
	}
}

// TestFairnessVariantsEmitFullStats: the fairness members go through
// the common two-phase machinery, so — unlike the pre-utility wolt-fair
// shim — they report phase timings, augmentations, and the priced
// utility like every other variant.
func TestFairnessVariantsEmitFullStats(t *testing.T) {
	n := testNetwork(t, 24, 4)
	for _, name := range []string{"wolt-pf", "wolt-fair"} {
		var got []Stats
		st, err := New(name, Config{
			ModelOpts: model.Options{Redistribute: true},
			Observer:  func(s Stats) { got = append(got, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Solve(n); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(got) != 1 {
			t.Fatalf("%s: observer saw %d records, want 1", name, len(got))
		}
		s := got[0]
		if s.Phase1 <= 0 || s.Phase2 <= 0 {
			t.Errorf("%s: phase timings = %v, %v; want both > 0", name, s.Phase1, s.Phase2)
		}
		if s.HungarianAugmentations < n.NumExtenders() {
			t.Errorf("%s: HungarianAugmentations = %d, want >= %d",
				name, s.HungarianAugmentations, n.NumExtenders())
		}
		if s.Phase2Iterations <= 0 {
			t.Errorf("%s: Phase2Iterations = %d, want > 0", name, s.Phase2Iterations)
		}
		if s.Aggregate <= 0 {
			t.Errorf("%s: Aggregate = %v, want > 0", name, s.Aggregate)
		}
		if s.Utility == 0 || s.Utility == s.Aggregate {
			t.Errorf("%s: Utility = %v (Aggregate %v), want a distinct PF value",
				name, s.Utility, s.Aggregate)
		}
	}

	// The two names are the same α=1 member: identical assignments.
	pf, err := New("wolt-pf", Config{ModelOpts: model.Options{Redistribute: true}})
	if err != nil {
		t.Fatal(err)
	}
	fair, err := New("wolt-fair", Config{ModelOpts: model.Options{Redistribute: true}})
	if err != nil {
		t.Fatal(err)
	}
	a, err := pf.Solve(n)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fair.Solve(n)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("wolt-fair (deprecated alias) diverged from wolt-pf")
	}
}
