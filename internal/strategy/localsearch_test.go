package strategy

import (
	"context"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
)

var lsNames = []string{"wolt-hillclimb", "wolt-kopt", "wolt-anneal"}

// TestLocalSearchWarmReassign: seeding the search from the full WOLT
// solution must never lose quality — the anytime family's warm path
// starts at the previous assignment and only commits improvements (or,
// for anneal, tracks best-so-far).
func TestLocalSearchWarmReassign(t *testing.T) {
	n := testNetwork(t, 24, 4)
	opts := model.Options{Redistribute: true}
	w, err := New("wolt", Config{ModelOpts: opts})
	if err != nil {
		t.Fatal(err)
	}
	full, err := w.Solve(n)
	if err != nil {
		t.Fatal(err)
	}
	var scratch model.EvalScratch
	fullRes, err := model.EvaluateWith(&scratch, n, full, opts)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range lsNames {
		var last Stats
		st, err := New(name, Config{
			ModelOpts: opts,
			Seed:      7,
			Budget:    Budget{Probes: 5000},
			Observer:  func(s Stats) { last = s },
		})
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.(Reassigner).Reassign(n, full)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res, err := model.EvaluateWith(&scratch, n, got, opts)
		if err != nil {
			t.Fatalf("%s: invalid reassignment: %v", name, err)
		}
		if res.Aggregate < fullRes.Aggregate {
			t.Errorf("%s: warm reassign lost ground: %v < %v", name, res.Aggregate, fullRes.Aggregate)
		}
		if last.Aggregate != res.Aggregate {
			t.Errorf("%s: Stats.Aggregate %v != fresh evaluation %v", name, last.Aggregate, res.Aggregate)
		}
		if last.DeltaProbes == 0 || last.DeltaProbes > 5000 {
			t.Errorf("%s: DeltaProbes = %d, want in (0, 5000]", name, last.DeltaProbes)
		}
		if len(last.Trajectory) == 0 || last.Stop == "" {
			t.Errorf("%s: anytime stats missing: %+v", name, last)
		}
	}
}

// TestLocalSearchCtxCancelled: a cancelled Config.Ctx still yields a
// valid assignment (the anytime contract through the registry).
func TestLocalSearchCtxCancelled(t *testing.T) {
	n := testNetwork(t, 24, 4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, name := range lsNames {
		var last Stats
		st, err := New(name, Config{Seed: 7, Ctx: ctx, Observer: func(s Stats) { last = s }})
		if err != nil {
			t.Fatal(err)
		}
		got, err := st.Solve(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		var scratch model.EvalScratch
		if _, err := model.EvaluateWith(&scratch, n, got, model.Options{}); err != nil {
			t.Fatalf("%s: cancelled solve returned invalid assignment: %v", name, err)
		}
		if last.Stop != "ctx" {
			t.Errorf("%s: Stop = %q, want ctx", name, last.Stop)
		}
	}
}

// TestLocalSearchOnlineAdd: the Add form places an arrival into a
// partial assignment in place and returns the chosen extender.
func TestLocalSearchOnlineAdd(t *testing.T) {
	n := testNetwork(t, 10, 3)
	for _, name := range lsNames {
		st, err := New(name, Config{Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		assign := make(model.Assignment, n.NumUsers())
		for i := range assign {
			assign[i] = model.Unassigned
		}
		for i := 0; i < n.NumUsers(); i++ {
			j, err := st.(Online).Add(n, assign, i)
			if err != nil {
				t.Fatalf("%s: Add(%d): %v", name, i, err)
			}
			if j != assign[i] {
				t.Fatalf("%s: Add returned %d but wrote %d", name, j, assign[i])
			}
		}
		var scratch model.EvalScratch
		if _, err := model.EvaluateWith(&scratch, n, assign, model.Options{}); err != nil {
			t.Fatalf("%s: online-built assignment invalid: %v", name, err)
		}
	}
}
