package strategy

import (
	"errors"
	"reflect"
	"testing"

	"github.com/plcwifi/wolt/internal/baseline"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/topology"
)

// testNetwork builds a deterministic multi-extender network with more
// users than extenders, so WOLT's Phase II actually runs.
func testNetwork(t *testing.T, users, extenders int) *model.Network {
	t.Helper()
	topo, err := topology.Generate(topology.Config{
		Width: 60, Height: 60,
		NumExtenders: extenders, NumUsers: users,
		PLCCapacityMinMbps: 60, PLCCapacityMaxMbps: 160,
		Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	rm := radio.DefaultModel()
	n := &model.Network{
		WiFiRates: make([][]float64, users),
		PLCCaps:   topo.PLCCapacities(),
	}
	for i, row := range topo.Distances() {
		n.WiFiRates[i] = make([]float64, len(row))
		for j, d := range row {
			n.WiFiRates[i][j] = rm.LinkRate(d, topo.Users[i].ID, topo.Extenders[j].ID)
		}
	}
	return n
}

func TestRegistryCoversAllStrategies(t *testing.T) {
	want := []string{
		"greedy", "optimal", "random", "rssi", "selfish",
		"wolt", "wolt-alpha", "wolt-anneal", "wolt-coordinate", "wolt-fair",
		"wolt-hillclimb", "wolt-incremental", "wolt-kopt", "wolt-pf",
	}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for _, name := range want {
		st, err := New(name, Config{})
		if err != nil {
			t.Fatalf("New(%q): %v", name, err)
		}
		if st.Name() != name {
			t.Errorf("New(%q).Name() = %q", name, st.Name())
		}
	}
}

func TestNewUnknownStrategy(t *testing.T) {
	_, err := New("does-not-exist", Config{})
	if !errors.Is(err, ErrUnknown) {
		t.Fatalf("New(unknown) error = %v, want ErrUnknown", err)
	}
}

func TestEveryStrategySolves(t *testing.T) {
	n := testNetwork(t, 10, 3)
	for _, name := range Names() {
		var got []Stats
		st, err := New(name, Config{
			ModelOpts: model.Options{Redistribute: true},
			Observer:  func(s Stats) { got = append(got, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		assign, err := st.Solve(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(assign) != n.NumUsers() {
			t.Fatalf("%s: assignment covers %d users, want %d", name, len(assign), n.NumUsers())
		}
		for i, j := range assign {
			if j < 0 || j >= n.NumExtenders() {
				t.Fatalf("%s: user %d assigned to %d", name, i, j)
			}
		}
		if len(got) != 1 {
			t.Fatalf("%s: observer saw %d records, want 1", name, len(got))
		}
		s := got[0]
		if s.Strategy != name || s.Users != n.NumUsers() || s.Extenders != n.NumExtenders() {
			t.Errorf("%s: stats header = %+v", name, s)
		}
	}
}

// TestWOLTStats asserts every phase field of the Stats record for the
// two-phase strategy: timings, Hungarian augmentations, Phase II
// iterations and polish sweeps.
func TestWOLTStats(t *testing.T) {
	n := testNetwork(t, 24, 4)
	var got []Stats
	st, err := New("wolt", Config{Observer: func(s Stats) { got = append(got, s) }})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Solve(n); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("observer saw %d records, want 1", len(got))
	}
	s := got[0]
	if s.Phase1 <= 0 {
		t.Errorf("Phase1 = %v, want > 0", s.Phase1)
	}
	if s.Phase2 <= 0 {
		t.Errorf("Phase2 = %v, want > 0", s.Phase2)
	}
	if s.Total < s.Phase1+s.Phase2 {
		t.Errorf("Total = %v < Phase1+Phase2 = %v", s.Total, s.Phase1+s.Phase2)
	}
	if s.Phase1Users != n.NumExtenders() {
		t.Errorf("Phase1Users = %d, want %d (one per extender)", s.Phase1Users, n.NumExtenders())
	}
	if s.HungarianAugmentations < n.NumExtenders() {
		t.Errorf("HungarianAugmentations = %d, want >= %d", s.HungarianAugmentations, n.NumExtenders())
	}
	if s.Phase2Iterations <= 0 {
		t.Errorf("Phase2Iterations = %d, want > 0", s.Phase2Iterations)
	}
	if s.PolishSweeps <= 0 {
		t.Errorf("PolishSweeps = %d, want > 0", s.PolishSweeps)
	}
	if s.Evaluations != 0 {
		t.Errorf("Evaluations = %d, want 0 (WOLT does not probe the eval model)", s.Evaluations)
	}
}

// TestEvaluationCounting asserts the Evaluations field for the
// evaluation-driven strategies.
func TestEvaluationCounting(t *testing.T) {
	n := testNetwork(t, 6, 3)
	for _, name := range []string{"greedy", "selfish", "optimal"} {
		var got []Stats
		st, err := New(name, Config{
			ModelOpts: model.Options{Redistribute: true},
			Observer:  func(s Stats) { got = append(got, s) },
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := st.Solve(n); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got[0].Evaluations <= 0 {
			t.Errorf("%s: Evaluations = %d, want > 0", name, got[0].Evaluations)
		}
	}
}

func TestStrategiesMatchDirectAlgorithms(t *testing.T) {
	n := testNetwork(t, 8, 3)
	opts := model.Options{Redistribute: true}

	solve := func(name string) model.Assignment {
		st, err := New(name, Config{ModelOpts: opts})
		if err != nil {
			t.Fatal(err)
		}
		assign, err := st.Solve(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return assign
	}

	if want, _ := baseline.RSSIByRate(n); !reflect.DeepEqual(solve("rssi"), want) {
		t.Error("rssi strategy diverges from baseline.RSSIByRate")
	}
	if want, _ := baseline.Greedy(n, nil, opts); !reflect.DeepEqual(solve("greedy"), want) {
		t.Error("greedy strategy diverges from baseline.Greedy")
	}
	if want, _ := baseline.Selfish(n, nil, opts); !reflect.DeepEqual(solve("selfish"), want) {
		t.Error("selfish strategy diverges from baseline.Selfish")
	}
	if want, _, _ := baseline.Optimal(n, opts); !reflect.DeepEqual(solve("optimal"), want) {
		t.Error("optimal strategy diverges from baseline.Optimal")
	}
	if want, _ := baseline.Random(n, seed.Rand(0, seed.StrategyRand, 0)); !reflect.DeepEqual(solve("random"), want) {
		t.Error("random strategy diverges from baseline.Random on the same derived rng")
	}
}

// TestRepeatedSolvesDeterministic checks the scratch discipline: reusing
// one instance across solves yields identical results, and a fresh
// instance agrees (scratch contents never influence results).
func TestRepeatedSolvesDeterministic(t *testing.T) {
	n := testNetwork(t, 20, 4)
	for _, name := range Names() {
		if name == "optimal" {
			continue // 4^20 exceeds the exhaustive bound
		}
		st, err := New(name, Config{ModelOpts: model.Options{Redistribute: true}, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		first, err := st.Solve(n)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "random" {
			continue // repeated random draws differ by design
		}
		second, err := st.Solve(n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, second) {
			t.Errorf("%s: repeated solve on one instance diverged", name)
		}
		fresh, err := New(name, Config{ModelOpts: model.Options{Redistribute: true}, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		third, err := fresh.Solve(n)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(first, third) {
			t.Errorf("%s: fresh instance diverged from reused instance", name)
		}
	}
}

func TestOnlineAndReassignerForms(t *testing.T) {
	online := map[string]bool{
		"greedy": true, "selfish": true, "rssi": true, "random": true,
		"wolt-hillclimb": true, "wolt-kopt": true, "wolt-anneal": true,
	}
	reassigner := map[string]bool{
		"wolt": true, "wolt-coordinate": true, "wolt-fair": true,
		"wolt-pf": true, "wolt-alpha": true,
		"wolt-incremental": true, "rssi": true,
		"wolt-hillclimb": true, "wolt-kopt": true, "wolt-anneal": true,
	}
	for _, name := range Names() {
		st, err := New(name, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if _, ok := st.(Online); ok != online[name] {
			t.Errorf("%s: Online = %v, want %v", name, ok, online[name])
		}
		if _, ok := st.(Reassigner); ok != reassigner[name] {
			t.Errorf("%s: Reassigner = %v, want %v", name, ok, reassigner[name])
		}
	}
	// The exhaustive strategy is the offline-only case ErrNoOnlineForm
	// exists for.
	st, err := New("optimal", Config{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := st.(Online); ok {
		t.Error("optimal should not have an online form")
	}
}

func TestGreedyAddMatchesBaseline(t *testing.T) {
	n := testNetwork(t, 6, 3)
	opts := model.Options{Redistribute: true}
	st, err := New("greedy", Config{ModelOpts: opts})
	if err != nil {
		t.Fatal(err)
	}
	on := st.(Online)

	got := make(model.Assignment, n.NumUsers())
	want := make(model.Assignment, n.NumUsers())
	for i := range got {
		got[i], want[i] = model.Unassigned, model.Unassigned
	}
	for i := 0; i < n.NumUsers(); i++ {
		gj, err := on.Add(n, got, i)
		if err != nil {
			t.Fatal(err)
		}
		wj, err := baseline.GreedyAdd(n, want, i, opts)
		if err != nil {
			t.Fatal(err)
		}
		if gj != wj {
			t.Fatalf("user %d: strategy placed on %d, baseline on %d", i, gj, wj)
		}
	}
}

func TestIncrementalRespectsBudget(t *testing.T) {
	n := testNetwork(t, 18, 4)
	opts := model.Options{Redistribute: true}

	rssiStart, err := baseline.RSSIByRate(n)
	if err != nil {
		t.Fatal(err)
	}
	const budget = 2
	var got []Stats
	st, err := New("wolt-incremental", Config{
		ModelOpts: opts,
		Budget:    Budget{Moves: budget},
		Observer:  func(s Stats) { got = append(got, s) },
	})
	if err != nil {
		t.Fatal(err)
	}
	next, err := st.(Reassigner).Reassign(n, rssiStart)
	if err != nil {
		t.Fatal(err)
	}
	if moved := rssiStart.Diff(next); moved > budget {
		t.Fatalf("incremental moved %d users, budget %d", moved, budget)
	}
	if len(got) != 1 {
		t.Fatalf("observer saw %d records, want 1", len(got))
	}
	// The Reassign stats carry the inner target solve's phases plus the
	// candidate evaluations of the greedy move search.
	if got[0].Phase1 <= 0 || got[0].Evaluations <= 0 {
		t.Errorf("incremental stats = %+v, want Phase1 > 0 and Evaluations > 0", got[0])
	}
}
