// Package strategy is the unified association-strategy layer: every
// algorithm that maps a network to a user→extender assignment — WOLT and
// its variants as well as the paper's baselines — registers here under a
// stable name, and every consumer (the flow-level simulator, the theory
// and measurement experiments, the mobility experiment, the control
// plane and cmd/woltsim) resolves strategies through this registry
// instead of importing the algorithm packages directly.
//
// A Strategy instance carries its own reusable scratch buffers and, when
// it needs randomness, its own rng derived from Config.Seed — so
// instances are cheap to call repeatedly, never allocate steady-state,
// and remain bit-deterministic when fanned out per-worker under
// internal/parallel (one instance per goroutine; see DESIGN.md §7–§8).
//
// Every Solve/Reassign emits a Stats record through the optional
// Config.Observer hook: phase wall-clock timings, Hungarian
// augmentations, Phase II iterations and polish sweeps, and model
// evaluations — the per-solve instrumentation behind the "solve"
// experiment and BENCH_solve.json.
package strategy

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"time"

	"github.com/plcwifi/wolt/internal/baseline"
	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/seed"
)

// Budget is the one budget vocabulary shared by every budget-aware
// strategy (an alias of localsearch.Budget): Probes caps O(Δ) delta
// probes, Moves caps committed re-associations of already-placed users
// (arrivals are always free; negative Moves means placement only), Time
// caps wall clock. Zero fields are unlimited, so the zero Budget
// preserves every strategy's full-effort behavior. Only Probes and
// Moves are deterministic; Budget.Time depends on machine speed
// (DESIGN.md §7, §11).
type Budget = localsearch.Budget

// Strategy computes a complete association for a network. Instances are
// stateful (scratch buffers, rng) and not safe for concurrent use; give
// each worker goroutine its own instance via New.
type Strategy interface {
	// Name returns the registry name the instance was created under.
	Name() string
	// Solve computes an association from scratch.
	Solve(n *model.Network) (model.Assignment, error)
}

// Online is implemented by strategies with an online arrival form: Add
// places a single new user into an existing partial assignment, mutating
// assign in place, and returns the chosen extender.
type Online interface {
	Strategy
	Add(n *model.Network, assign model.Assignment, user int) (int, error)
}

// Reassigner is implemented by strategies whose operational mode is
// epoch recomputation: Reassign computes a new association given the
// previous one (which full-recompute strategies ignore and the budgeted
// incremental strategy steers from).
type Reassigner interface {
	Strategy
	Reassign(n *model.Network, prev model.Assignment) (model.Assignment, error)
}

// Stats is the per-solve instrumentation record emitted through
// Config.Observer after every Solve or Reassign.
type Stats struct {
	// Strategy is the registry name; Users/Extenders the instance size.
	Strategy  string
	Users     int
	Extenders int
	// Phase1/Phase2 are the wall-clock durations of WOLT's two phases
	// (zero for single-phase baselines); Total is the whole solve.
	Phase1 time.Duration
	Phase2 time.Duration
	Total  time.Duration
	// Phase1Users is the number of users pinned by Phase I.
	Phase1Users int
	// HungarianAugmentations counts Phase I's shortest-augmenting-path
	// steps (zero for the auction solver and the baselines).
	HungarianAugmentations int
	// Phase2Iterations and PolishSweeps are the projected-gradient
	// iteration count and the discrete polish sweep count of Phase II.
	Phase2Iterations int
	PolishSweeps     int
	// Evaluations counts full model evaluations performed through the
	// strategy's evaluation state — since the delta-evaluation rewire,
	// that is the number of DeltaEval attaches (full accumulator
	// builds), typically one per solve.
	Evaluations int
	// DeltaProbes counts O(Δ) single-move probes through the strategy's
	// delta evaluator (greedy/selfish candidate probes, exhaustive
	// search leaves, incremental candidate moves, local-search scans).
	// Probes replace the full evaluations the probe loops performed
	// before the rewire.
	DeltaProbes int
	// Commits counts committed delta moves of the local-search family,
	// including k-opt chain rollbacks (evaluator work, not net moves);
	// Improving counts strict improvements of the best-so-far
	// aggregate. Improving/Commits is the improving-move ratio.
	Commits   int
	Improving int
	// Aggregate is the solve's final total throughput (Mbps) and
	// Utility its value under the solve's utility family (equal to
	// Aggregate for sum-rate); Trajectory is the local-search family's
	// best-so-far curve — entry 0 after seeding, then one entry per
	// improvement. Nil for strategies that do not track it.
	Aggregate  float64
	Utility    float64
	Trajectory []float64
	// Stop records why an anytime solve returned ("optimum", "probes",
	// "moves", "time", "ctx", "frozen"); empty for non-anytime
	// strategies.
	Stop string
}

// Observer receives a Stats record after each solve. Observers run
// synchronously on the solving goroutine; keep them cheap.
type Observer func(Stats)

// Config parameterizes a strategy instance. The zero value is valid for
// every strategy.
type Config struct {
	// ModelOpts selects the evaluation model used by evaluation-driven
	// strategies (greedy, selfish, optimal, incremental candidates).
	ModelOpts model.Options
	// Core tunes the WOLT variants' two-phase solver.
	Core core.Options
	// Workers bounds intra-solve parallelism of WOLT's Phase II; <= 0 or
	// 1 solves sequentially. Results are bit-identical for every value
	// (DESIGN.md §7). It is deliberately NOT defaulted to NumCPU: under
	// per-trial fan-out the trials already saturate the cores.
	Workers int
	// Alpha is the fairness exponent consumed by the parameterized
	// utility strategies: wolt-alpha solves under model.AlphaFair(Alpha)
	// (0 = sum-rate, 1 = proportional fair, math.Inf(1) = max-min), and
	// the local-search family adopts it as ModelOpts.Utility when
	// non-zero. Fixed-utility strategies (wolt, wolt-pf, wolt-fair)
	// ignore it.
	Alpha float64
	// Seed derives the instance's private rng when Rng is nil.
	Seed int64
	// Rng, when non-nil, is used directly by randomized strategies.
	// Sharing one rng across instances serializes them (draw order then
	// depends on call order); prefer Seed for parallel use.
	Rng *rand.Rand
	// Budget bounds the work of budget-aware strategies: the
	// local-search family (wolt-hillclimb, wolt-kopt, wolt-anneal)
	// honors all three dimensions per Solve/Reassign, and
	// wolt-incremental honors Budget.Moves as its per-Reassign move
	// cap. The zero Budget is unlimited. (This replaces the former
	// wolt-incremental-only MoveBudget knob.)
	Budget Budget
	// Ctx, when non-nil, makes the local-search family interruptible:
	// cancellation stops a solve at the next probe checkpoint and the
	// best-so-far valid assignment is returned (the anytime contract,
	// DESIGN.md §11). Other strategies ignore it.
	Ctx context.Context
	// Optimal bounds the exhaustive strategy's instance sizes; zero
	// fields use baseline.DefaultOptimalLimits.
	Optimal baseline.OptimalLimits
	// Observer receives per-solve Stats; nil disables instrumentation.
	Observer Observer
}

// rng returns the instance's random source: Config.Rng when set, else a
// private rng on the dedicated StrategyRand stream of Config.Seed.
func (c Config) rng() *rand.Rand {
	if c.Rng != nil {
		return c.Rng
	}
	return seed.Rand(c.Seed, seed.StrategyRand, 0)
}

// emit forwards a Stats record to the observer, if any.
func (c Config) emit(s Stats) {
	if c.Observer != nil {
		c.Observer(s)
	}
}

// Factory builds a configured strategy instance.
type Factory func(cfg Config) Strategy

// ErrUnknown is wrapped by New when the name is not registered.
var ErrUnknown = errors.New("strategy: unknown strategy")

// ErrNoOnlineForm is the sentinel for strategies that cannot place a
// single arriving user (they implement neither Online nor Reassigner —
// e.g. the exhaustive "optimal" strategy, which only solves offline).
// Consumers wrap it rather than silently falling back to another policy.
var ErrNoOnlineForm = errors.New("strategy: no online form")

var registry = map[string]Factory{}

// Register adds a named factory; registering a duplicate or empty name
// panics (registration is an init-time programming act, not user input).
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("strategy: empty registration")
	}
	if _, dup := registry[name]; dup {
		panic("strategy: duplicate registration of " + name)
	}
	registry[name] = f
}

// New builds a configured instance of the named strategy. The error
// wraps ErrUnknown for unregistered names and lists the valid ones.
func New(name string, cfg Config) (Strategy, error) {
	f, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("%w %q (want one of: %v)", ErrUnknown, name, Names())
	}
	return f(cfg), nil
}

// Names returns the registered strategy names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for name := range registry {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}
