// Package topology models the physical layout of an enterprise PLC-WiFi
// deployment: a rectangular floor plan, power outlets into which PLC-WiFi
// extenders are plugged, and user (client) positions.
//
// The paper's simulation setting (§V-A) is a 100 m × 100 m plane with up to
// 15 extenders and two hundred users placed uniformly at random; this
// package generates such topologies deterministically from a seed.
package topology

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/plcwifi/wolt/internal/seed"
)

// Point is a position on the floor plan in meters.
type Point struct {
	X float64
	Y float64
}

// Distance returns the Euclidean distance between two points in meters.
func (p Point) Distance(q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Hypot(dx, dy)
}

// Extender is a PLC-WiFi extender plugged into a power outlet.
type Extender struct {
	ID  int
	Pos Point
	// PLCCapacityMbps is the isolation capacity of the extender's PLC
	// backhaul link to the central unit (the paper's c_j): the maximum
	// throughput the link sustains when no other extender is active.
	PLCCapacityMbps float64
}

// User is a WiFi client.
type User struct {
	ID  int
	Pos Point
}

// Topology is a complete physical layout.
type Topology struct {
	Width     float64 // meters
	Height    float64 // meters
	Extenders []Extender
	Users     []User
}

// Config controls random topology generation.
type Config struct {
	Width  float64 // plane width in meters (default 100)
	Height float64 // plane height in meters (default 100)

	NumExtenders int
	NumUsers     int

	// PLCCapacityMinMbps and PLCCapacityMaxMbps bound the uniformly drawn
	// isolation capacities of the PLC links. The defaults (60, 160) match
	// the spread measured from real outlets in the paper's Fig 2b.
	PLCCapacityMinMbps float64
	PLCCapacityMaxMbps float64

	Seed int64
}

// Default values applied by Generate when the corresponding Config fields
// are zero.
const (
	DefaultWidth          = 100.0
	DefaultHeight         = 100.0
	DefaultPLCCapacityMin = 60.0
	DefaultPLCCapacityMax = 160.0
)

func (c Config) withDefaults() Config {
	if c.Width == 0 {
		c.Width = DefaultWidth
	}
	if c.Height == 0 {
		c.Height = DefaultHeight
	}
	if c.PLCCapacityMinMbps == 0 {
		c.PLCCapacityMinMbps = DefaultPLCCapacityMin
	}
	if c.PLCCapacityMaxMbps == 0 {
		c.PLCCapacityMaxMbps = DefaultPLCCapacityMax
	}
	return c
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	c = c.withDefaults()
	if c.Width <= 0 || c.Height <= 0 {
		return fmt.Errorf("topology: non-positive plane %vx%v", c.Width, c.Height)
	}
	if c.NumExtenders <= 0 {
		return fmt.Errorf("topology: need at least one extender, got %d", c.NumExtenders)
	}
	if c.NumUsers < 0 {
		return fmt.Errorf("topology: negative user count %d", c.NumUsers)
	}
	if c.PLCCapacityMinMbps <= 0 || c.PLCCapacityMaxMbps < c.PLCCapacityMinMbps {
		return fmt.Errorf("topology: bad PLC capacity range [%v,%v]",
			c.PLCCapacityMinMbps, c.PLCCapacityMaxMbps)
	}
	return nil
}

// Generate builds a random topology from the configuration. The same seed
// always yields the same topology.
func Generate(cfg Config) (*Topology, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.withDefaults()
	rng := seed.Root(cfg.Seed)

	topo := &Topology{
		Width:     cfg.Width,
		Height:    cfg.Height,
		Extenders: make([]Extender, cfg.NumExtenders),
		Users:     make([]User, cfg.NumUsers),
	}
	for j := range topo.Extenders {
		topo.Extenders[j] = Extender{
			ID:              j,
			Pos:             randomPoint(rng, cfg.Width, cfg.Height),
			PLCCapacityMbps: uniform(rng, cfg.PLCCapacityMinMbps, cfg.PLCCapacityMaxMbps),
		}
	}
	for i := range topo.Users {
		topo.Users[i] = User{
			ID:  i,
			Pos: randomPoint(rng, cfg.Width, cfg.Height),
		}
	}
	return topo, nil
}

// AddUser appends a user at the given position and returns its ID.
func (t *Topology) AddUser(pos Point) int {
	id := t.nextUserID()
	t.Users = append(t.Users, User{ID: id, Pos: pos})
	return id
}

// AddRandomUser appends a uniformly placed user using rng and returns its ID.
func (t *Topology) AddRandomUser(rng *rand.Rand) int {
	return t.AddUser(t.RandomPoint(rng))
}

// AddUserWithID appends a user with a caller-chosen ID. It returns an
// error if the ID is already present. Used by trace replay, where user
// IDs are owned by the workload generator.
func (t *Topology) AddUserWithID(id int, pos Point) error {
	if _, ok := t.UserByID(id); ok {
		return fmt.Errorf("topology: user ID %d already present", id)
	}
	t.Users = append(t.Users, User{ID: id, Pos: pos})
	return nil
}

// RandomPoint draws a uniform position on the floor plan.
func (t *Topology) RandomPoint(rng *rand.Rand) Point {
	return randomPoint(rng, t.Width, t.Height)
}

// RemoveUser deletes the user with the given ID. It reports whether a user
// was removed.
func (t *Topology) RemoveUser(id int) bool {
	for i, u := range t.Users {
		if u.ID == id {
			t.Users = append(t.Users[:i], t.Users[i+1:]...)
			return true
		}
	}
	return false
}

// UserByID returns the user with the given ID.
func (t *Topology) UserByID(id int) (User, bool) {
	for _, u := range t.Users {
		if u.ID == id {
			return u, true
		}
	}
	return User{}, false
}

// Distances returns a |Users| × |Extenders| matrix of user-extender
// distances in meters, indexed by position in the Users and Extenders
// slices (not by ID).
func (t *Topology) Distances() [][]float64 {
	d := make([][]float64, len(t.Users))
	for i, u := range t.Users {
		row := make([]float64, len(t.Extenders))
		for j, e := range t.Extenders {
			row[j] = u.Pos.Distance(e.Pos)
		}
		d[i] = row
	}
	return d
}

// PLCCapacities returns the isolation capacities c_j of all extenders in
// extender order.
func (t *Topology) PLCCapacities() []float64 {
	cs := make([]float64, len(t.Extenders))
	for j, e := range t.Extenders {
		cs[j] = e.PLCCapacityMbps
	}
	return cs
}

func (t *Topology) nextUserID() int {
	next := 0
	for _, u := range t.Users {
		if u.ID >= next {
			next = u.ID + 1
		}
	}
	return next
}

func randomPoint(rng *rand.Rand, w, h float64) Point {
	return Point{X: rng.Float64() * w, Y: rng.Float64() * h}
}

func uniform(rng *rand.Rand, lo, hi float64) float64 {
	return lo + rng.Float64()*(hi-lo)
}
