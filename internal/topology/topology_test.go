package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestPointDistance(t *testing.T) {
	tests := []struct {
		name string
		p, q Point
		want float64
	}{
		{name: "same point", p: Point{1, 1}, q: Point{1, 1}, want: 0},
		{name: "3-4-5", p: Point{0, 0}, q: Point{3, 4}, want: 5},
		{name: "axis", p: Point{0, 0}, q: Point{0, 7}, want: 7},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.p.Distance(tt.q); got != tt.want {
				t.Errorf("Distance = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestDistanceIsSymmetric(t *testing.T) {
	f := func(x1, y1, x2, y2 float64) bool {
		if anyBad(x1, y1, x2, y2) {
			return true
		}
		// Keep coordinates floor-plan sized so the squared terms cannot
		// overflow.
		x1, y1 = math.Mod(x1, 1e4), math.Mod(y1, 1e4)
		x2, y2 = math.Mod(x2, 1e4), math.Mod(y2, 1e4)
		p, q := Point{x1, y1}, Point{x2, y2}
		return math.Abs(p.Distance(q)-q.Distance(p)) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func anyBad(xs ...float64) bool {
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return true
		}
	}
	return false
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{NumExtenders: 5, NumUsers: 20, Seed: 42}
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for j := range a.Extenders {
		if a.Extenders[j] != b.Extenders[j] {
			t.Fatalf("extender %d differs across identical seeds", j)
		}
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			t.Fatalf("user %d differs across identical seeds", i)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	a, err := Generate(Config{NumExtenders: 3, NumUsers: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(Config{NumExtenders: 3, NumUsers: 10, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical user placements")
	}
}

func TestGenerateBoundsAndCapacities(t *testing.T) {
	topo, err := Generate(Config{NumExtenders: 15, NumUsers: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(topo.Extenders) != 15 || len(topo.Users) != 200 {
		t.Fatalf("got %d extenders, %d users", len(topo.Extenders), len(topo.Users))
	}
	for _, e := range topo.Extenders {
		if e.Pos.X < 0 || e.Pos.X > DefaultWidth || e.Pos.Y < 0 || e.Pos.Y > DefaultHeight {
			t.Errorf("extender %d out of bounds: %+v", e.ID, e.Pos)
		}
		if e.PLCCapacityMbps < DefaultPLCCapacityMin || e.PLCCapacityMbps > DefaultPLCCapacityMax {
			t.Errorf("extender %d PLC capacity %v outside [%v,%v]",
				e.ID, e.PLCCapacityMbps, DefaultPLCCapacityMin, DefaultPLCCapacityMax)
		}
	}
	for _, u := range topo.Users {
		if u.Pos.X < 0 || u.Pos.X > DefaultWidth || u.Pos.Y < 0 || u.Pos.Y > DefaultHeight {
			t.Errorf("user %d out of bounds: %+v", u.ID, u.Pos)
		}
	}
}

func TestGenerateValidation(t *testing.T) {
	tests := []struct {
		name string
		cfg  Config
	}{
		{name: "no extenders", cfg: Config{NumUsers: 3}},
		{name: "negative users", cfg: Config{NumExtenders: 1, NumUsers: -1}},
		{name: "bad capacity range", cfg: Config{NumExtenders: 1, PLCCapacityMinMbps: 100, PLCCapacityMaxMbps: 50}},
		{name: "negative plane", cfg: Config{NumExtenders: 1, Width: -5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if _, err := Generate(tt.cfg); err == nil {
				t.Error("want error, got nil")
			}
		})
	}
}

func TestAddRemoveUser(t *testing.T) {
	topo, err := Generate(Config{NumExtenders: 2, NumUsers: 3, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	id := topo.AddUser(Point{X: 1, Y: 2})
	if id != 3 {
		t.Errorf("AddUser ID = %d, want 3", id)
	}
	if len(topo.Users) != 4 {
		t.Fatalf("user count = %d, want 4", len(topo.Users))
	}
	u, ok := topo.UserByID(id)
	if !ok || u.Pos != (Point{X: 1, Y: 2}) {
		t.Errorf("UserByID(%d) = %+v, %v", id, u, ok)
	}
	if !topo.RemoveUser(1) {
		t.Error("RemoveUser(1) = false, want true")
	}
	if topo.RemoveUser(999) {
		t.Error("RemoveUser(999) = true, want false")
	}
	if _, ok := topo.UserByID(1); ok {
		t.Error("user 1 still present after removal")
	}
	// Fresh IDs are never reused even after removals.
	id2 := topo.AddRandomUser(rand.New(rand.NewSource(1)))
	if id2 != 4 {
		t.Errorf("AddRandomUser ID = %d, want 4", id2)
	}
}

func TestDistancesMatrix(t *testing.T) {
	topo := &Topology{
		Width:  10,
		Height: 10,
		Extenders: []Extender{
			{ID: 0, Pos: Point{0, 0}},
			{ID: 1, Pos: Point{3, 4}},
		},
		Users: []User{
			{ID: 0, Pos: Point{0, 0}},
		},
	}
	d := topo.Distances()
	if len(d) != 1 || len(d[0]) != 2 {
		t.Fatalf("matrix shape %dx%d, want 1x2", len(d), len(d[0]))
	}
	if d[0][0] != 0 || d[0][1] != 5 {
		t.Errorf("distances = %v, want [0 5]", d[0])
	}
}

func TestPLCCapacities(t *testing.T) {
	topo := &Topology{
		Extenders: []Extender{
			{ID: 0, PLCCapacityMbps: 60},
			{ID: 1, PLCCapacityMbps: 160},
		},
	}
	cs := topo.PLCCapacities()
	if len(cs) != 2 || cs[0] != 60 || cs[1] != 160 {
		t.Errorf("PLCCapacities = %v", cs)
	}
}
