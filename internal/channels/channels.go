// Package channels handles WiFi channel allocation across extenders.
//
// The paper assumes each extender operates on a non-overlapping channel
// (§V-A, citing prior small-deployment measurements). That holds for up
// to three extenders in 2.4 GHz (channels 1/6/11) but not for the 10–15
// extender enterprises the paper simulates, where co-channel cells share
// airtime. This package provides:
//
//   - Allocate: greedy interference-aware coloring (largest-degree
//     first) of extenders onto a fixed set of orthogonal channels, and
//
//   - EvaluateWithChannels: the concatenated-link evaluation extended
//     with co-channel contention — cells on the same channel within
//     interference range time-share the air, scaling each cell's WiFi
//     capacity by its co-channel contender count.
package channels

import (
	"fmt"
	"sort"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/topology"
)

// DefaultChannels is the 2.4 GHz orthogonal set (1, 6, 11).
var DefaultChannels = []int{1, 6, 11}

// Allocation maps extender index to channel.
type Allocation []int

// Allocate colors extenders onto the given channels so that extenders
// within interferenceRange of each other avoid sharing a channel where
// possible. Greedy largest-degree-first coloring: optimal coloring is
// NP-hard, and the greedy bound suffices for channel planning. With
// len(channels) == 0 the default 2.4 GHz set is used.
func Allocate(topo *topology.Topology, channels []int, interferenceRange float64) (Allocation, error) {
	if topo == nil || len(topo.Extenders) == 0 {
		return nil, fmt.Errorf("channels: no extenders")
	}
	if interferenceRange <= 0 {
		return nil, fmt.Errorf("channels: non-positive interference range %v", interferenceRange)
	}
	if len(channels) == 0 {
		channels = DefaultChannels
	}
	n := len(topo.Extenders)

	// Interference graph.
	adj := make([][]bool, n)
	degree := make([]int, n)
	for j := range adj {
		adj[j] = make([]bool, n)
	}
	for a := 0; a < n; a++ {
		for b := a + 1; b < n; b++ {
			if topo.Extenders[a].Pos.Distance(topo.Extenders[b].Pos) <= interferenceRange {
				adj[a][b], adj[b][a] = true, true
				degree[a]++
				degree[b]++
			}
		}
	}

	order := make([]int, n)
	for j := range order {
		order[j] = j
	}
	sort.Slice(order, func(a, b int) bool {
		if degree[order[a]] != degree[order[b]] {
			return degree[order[a]] > degree[order[b]]
		}
		return order[a] < order[b]
	})

	alloc := make(Allocation, n)
	for j := range alloc {
		alloc[j] = -1
	}
	for _, j := range order {
		// Count conflicts per candidate channel; pick the least used.
		bestCh, bestConflicts := channels[0], n+1
		for _, ch := range channels {
			conflicts := 0
			for k := 0; k < n; k++ {
				if adj[j][k] && alloc[k] == ch {
					conflicts++
				}
			}
			if conflicts < bestConflicts {
				bestCh, bestConflicts = ch, conflicts
			}
		}
		alloc[j] = bestCh
	}
	return alloc, nil
}

// Contenders returns, for each extender, the number of extenders (itself
// included) sharing its channel within interference range. A value of 1
// means an interference-free cell — the paper's assumption.
func Contenders(topo *topology.Topology, alloc Allocation, interferenceRange float64) ([]int, error) {
	n := len(topo.Extenders)
	if len(alloc) != n {
		return nil, fmt.Errorf("channels: allocation covers %d extenders, topology has %d",
			len(alloc), n)
	}
	out := make([]int, n)
	for a := 0; a < n; a++ {
		out[a] = 1
		for b := 0; b < n; b++ {
			if a == b || alloc[a] != alloc[b] {
				continue
			}
			if topo.Extenders[a].Pos.Distance(topo.Extenders[b].Pos) <= interferenceRange {
				out[a]++
			}
		}
	}
	return out, nil
}

// EvaluateWithChannels evaluates an assignment under co-channel
// contention: each cell's WiFi side is scaled by 1/contenders before the
// PLC time-sharing is applied. With every contender count at 1 this is
// exactly model.Evaluate.
func EvaluateWithChannels(n *model.Network, assign model.Assignment, contenders []int, opts model.Options) (*model.Result, error) {
	if len(contenders) != n.NumExtenders() {
		return nil, fmt.Errorf("channels: %d contender counts for %d extenders",
			len(contenders), n.NumExtenders())
	}
	// Scale each user's rate on extender j by the cell's airtime share:
	// co-channel cells time-share the air, so every frame takes
	// contenders[j]× longer in wall-clock terms.
	scaled := &model.Network{
		WiFiRates: make([][]float64, n.NumUsers()),
		PLCCaps:   n.PLCCaps,
	}
	for i, row := range n.WiFiRates {
		scaled.WiFiRates[i] = make([]float64, len(row))
		for j, r := range row {
			c := contenders[j]
			if c < 1 {
				return nil, fmt.Errorf("channels: contender count %d < 1 for extender %d", c, j)
			}
			scaled.WiFiRates[i][j] = r / float64(c)
		}
	}
	return model.Evaluate(scaled, assign, opts)
}
