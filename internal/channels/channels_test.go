package channels

import (
	"math"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/topology"
)

func lineTopology(positions []float64) *topology.Topology {
	topo := &topology.Topology{Width: 200, Height: 10}
	for j, x := range positions {
		topo.Extenders = append(topo.Extenders, topology.Extender{
			ID:              j,
			Pos:             topology.Point{X: x, Y: 0},
			PLCCapacityMbps: 100,
		})
	}
	return topo
}

func TestAllocateValidation(t *testing.T) {
	if _, err := Allocate(nil, nil, 10); err == nil {
		t.Error("nil topology: want error")
	}
	if _, err := Allocate(lineTopology([]float64{0}), nil, 0); err == nil {
		t.Error("zero range: want error")
	}
}

func TestThreeSpreadExtendersGetDistinctChannels(t *testing.T) {
	// Three extenders all within range: a proper coloring uses all three
	// orthogonal channels — the paper's assumption realized.
	topo := lineTopology([]float64{0, 10, 20})
	alloc, err := Allocate(topo, nil, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, ch := range alloc {
		seen[ch] = true
	}
	if len(seen) != 3 {
		t.Errorf("allocation %v uses %d channels, want 3", alloc, len(seen))
	}
	contenders, err := Contenders(topo, alloc, 50)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range contenders {
		if c != 1 {
			t.Errorf("extender %d has %d contenders, want 1", j, c)
		}
	}
}

func TestFarApartExtendersCanReuse(t *testing.T) {
	// Two extenders far apart may share a channel without contention.
	topo := lineTopology([]float64{0, 150})
	alloc, err := Allocate(topo, []int{1}, 50) // single channel forces reuse
	if err != nil {
		t.Fatal(err)
	}
	contenders, err := Contenders(topo, alloc, 50)
	if err != nil {
		t.Fatal(err)
	}
	for j, c := range contenders {
		if c != 1 {
			t.Errorf("extender %d has %d contenders despite distance", j, c)
		}
	}
}

func TestOverloadedColoringMinimizesConflicts(t *testing.T) {
	// Five mutually interfering extenders on three channels: at least
	// two pairs must share, but no channel should carry three when two
	// suffice (greedy least-used choice).
	topo := lineTopology([]float64{0, 5, 10, 15, 20})
	alloc, err := Allocate(topo, nil, 100)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, ch := range alloc {
		counts[ch]++
	}
	for ch, c := range counts {
		if c > 2 {
			t.Errorf("channel %d carries %d extenders; balanced coloring puts ≤2", ch, c)
		}
	}
}

func TestContendersValidation(t *testing.T) {
	topo := lineTopology([]float64{0, 10})
	if _, err := Contenders(topo, Allocation{1}, 50); err == nil {
		t.Error("short allocation: want error")
	}
}

func TestEvaluateWithChannelsNoContentionMatchesModel(t *testing.T) {
	n := &model.Network{
		WiFiRates: [][]float64{{15, 10}, {40, 20}},
		PLCCaps:   []float64{60, 20},
	}
	assign := model.Assignment{1, 0}
	opts := model.Options{Redistribute: true}
	plain, err := model.Evaluate(n, assign, opts)
	if err != nil {
		t.Fatal(err)
	}
	withCh, err := EvaluateWithChannels(n, assign, []int{1, 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(plain.Aggregate-withCh.Aggregate) > 1e-12 {
		t.Errorf("contender-free evaluation %v != plain %v", withCh.Aggregate, plain.Aggregate)
	}
}

func TestEvaluateWithChannelsContentionHurts(t *testing.T) {
	n := &model.Network{
		WiFiRates: [][]float64{{15, 10}, {40, 20}},
		PLCCaps:   []float64{1000, 1000}, // WiFi-bound so contention shows
	}
	assign := model.Assignment{0, 1}
	opts := model.Options{Redistribute: true}
	free, err := EvaluateWithChannels(n, assign, []int{1, 1}, opts)
	if err != nil {
		t.Fatal(err)
	}
	contended, err := EvaluateWithChannels(n, assign, []int{2, 2}, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(contended.Aggregate-free.Aggregate/2) > 1e-9 {
		t.Errorf("2-way contention aggregate %v, want half of %v", contended.Aggregate, free.Aggregate)
	}
}

func TestEvaluateWithChannelsValidation(t *testing.T) {
	n := &model.Network{
		WiFiRates: [][]float64{{15, 10}},
		PLCCaps:   []float64{60, 20},
	}
	if _, err := EvaluateWithChannels(n, model.Assignment{0}, []int{1}, model.Options{}); err == nil {
		t.Error("short contender slice: want error")
	}
	if _, err := EvaluateWithChannels(n, model.Assignment{0}, []int{0, 1}, model.Options{}); err == nil {
		t.Error("zero contender count: want error")
	}
}

// TestChannelScarcityShape quantifies the assumption the paper makes:
// with ≤3 extenders, orthogonal channels make contention vanish; with
// many extenders in range, co-channel sharing bites.
func TestChannelScarcityShape(t *testing.T) {
	topo := lineTopology([]float64{0, 5, 10, 15, 20, 25, 30, 35, 40})
	n := &model.Network{
		WiFiRates: make([][]float64, 18),
		PLCCaps:   make([]float64, 9),
	}
	for j := range n.PLCCaps {
		n.PLCCaps[j] = 1000
	}
	assign := make(model.Assignment, 18)
	for i := range n.WiFiRates {
		n.WiFiRates[i] = make([]float64, 9)
		for j := range n.WiFiRates[i] {
			n.WiFiRates[i][j] = 54
		}
		assign[i] = i % 9
	}
	aggAt := func(numChannels int) float64 {
		chans := make([]int, numChannels)
		for k := range chans {
			chans[k] = k + 1
		}
		alloc, err := Allocate(topo, chans, 100)
		if err != nil {
			t.Fatal(err)
		}
		contenders, err := Contenders(topo, alloc, 100)
		if err != nil {
			t.Fatal(err)
		}
		res, err := EvaluateWithChannels(n, assign, contenders, model.Options{Redistribute: true})
		if err != nil {
			t.Fatal(err)
		}
		return res.Aggregate
	}
	one, three, nine := aggAt(1), aggAt(3), aggAt(9)
	if !(one < three && three < nine) {
		t.Errorf("aggregate should grow with channels: %v, %v, %v", one, three, nine)
	}
	// Nine orthogonal channels remove contention entirely: 18 users at
	// 54 Mbps across 9 cells of 2 = 9 × 54.
	if math.Abs(nine-9*54) > 1e-9 {
		t.Errorf("contention-free aggregate %v, want %v", nine, 9*54.0)
	}
}
