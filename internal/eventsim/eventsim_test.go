package eventsim

import (
	"errors"
	"math/rand"
	"sort"
	"testing"
)

func TestZeroValueUsable(t *testing.T) {
	var s Sim
	if s.Now() != 0 || s.Pending() != 0 {
		t.Errorf("zero value: now=%v pending=%d", s.Now(), s.Pending())
	}
	if s.Step() {
		t.Error("Step on empty queue should report false")
	}
}

func TestEventsRunInTimeOrder(t *testing.T) {
	s := New()
	var order []float64
	for _, at := range []float64{5, 1, 3, 2, 4} {
		at := at
		if err := s.ScheduleAt(at, func(sim *Sim) {
			order = append(order, sim.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(100)
	if !sort.Float64sAreSorted(order) {
		t.Errorf("events ran out of order: %v", order)
	}
	if len(order) != 5 {
		t.Errorf("ran %d events, want 5", len(order))
	}
	if s.Now() != 5 {
		t.Errorf("clock = %v, want 5", s.Now())
	}
}

func TestSimultaneousEventsAreFIFO(t *testing.T) {
	s := New()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if err := s.ScheduleAt(7, func(*Sim) { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(100)
	for i, v := range order {
		if v != i {
			t.Fatalf("simultaneous events not FIFO: %v", order)
		}
	}
}

func TestScheduleRelative(t *testing.T) {
	s := New()
	var at float64
	if err := s.Schedule(2, func(sim *Sim) {
		if err := sim.Schedule(3, func(sim2 *Sim) { at = sim2.Now() }); err != nil {
			t.Error(err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	s.Run(10)
	if at != 5 {
		t.Errorf("nested event at %v, want 5", at)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	s := New()
	if err := s.ScheduleAt(5, func(*Sim) {}); err != nil {
		t.Fatal(err)
	}
	s.Run(1)
	if err := s.ScheduleAt(1, func(*Sim) {}); !errors.Is(err, ErrPast) {
		t.Errorf("past event error = %v, want ErrPast", err)
	}
	if err := s.Schedule(-1, func(*Sim) {}); !errors.Is(err, ErrPast) {
		t.Errorf("negative delay error = %v, want ErrPast", err)
	}
	if err := s.ScheduleAt(10, nil); err == nil {
		t.Error("nil handler: want error")
	}
}

func TestRunUntilHorizon(t *testing.T) {
	s := New()
	ran := make(map[float64]bool)
	for _, at := range []float64{1, 2, 3, 4, 5} {
		at := at
		if err := s.ScheduleAt(at, func(*Sim) { ran[at] = true }); err != nil {
			t.Fatal(err)
		}
	}
	s.RunUntil(3)
	if !ran[1] || !ran[2] || !ran[3] {
		t.Errorf("events up to horizon should run: %v", ran)
	}
	if ran[4] || ran[5] {
		t.Errorf("events beyond horizon ran: %v", ran)
	}
	if s.Now() != 3 {
		t.Errorf("clock = %v, want 3", s.Now())
	}
	if s.Pending() != 2 {
		t.Errorf("pending = %d, want 2", s.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := New()
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Errorf("idle clock = %v, want 42", s.Now())
	}
}

func TestRunMaxEvents(t *testing.T) {
	s := New()
	count := 0
	var reschedule Handler
	reschedule = func(sim *Sim) {
		count++
		_ = sim.Schedule(1, reschedule)
	}
	if err := s.Schedule(0, reschedule); err != nil {
		t.Fatal(err)
	}
	n := s.Run(50)
	if n != 50 || count != 50 {
		t.Errorf("ran %d/%d events, want 50", n, count)
	}
	if s.Processed() != 50 {
		t.Errorf("Processed = %d, want 50", s.Processed())
	}
}

func TestManyRandomEventsStaySorted(t *testing.T) {
	s := New()
	rng := rand.New(rand.NewSource(17))
	var times []float64
	for i := 0; i < 5000; i++ {
		at := rng.Float64() * 1000
		if err := s.ScheduleAt(at, func(sim *Sim) {
			times = append(times, sim.Now())
		}); err != nil {
			t.Fatal(err)
		}
	}
	s.Run(10000)
	if len(times) != 5000 {
		t.Fatalf("ran %d events", len(times))
	}
	if !sort.Float64sAreSorted(times) {
		t.Error("execution times not sorted")
	}
}

// TestNextAtPeeks covers the open-loop driver's peek API.
func TestNextAtPeeks(t *testing.T) {
	s := New()
	if _, ok := s.NextAt(); ok {
		t.Error("empty queue: NextAt reported an event")
	}
	for _, at := range []float64{5, 2, 9} {
		if err := s.ScheduleAt(at, func(*Sim) {}); err != nil {
			t.Fatal(err)
		}
	}
	if at, ok := s.NextAt(); !ok || at != 2 {
		t.Fatalf("NextAt = %v,%v, want 2,true", at, ok)
	}
	if s.Now() != 0 || s.Processed() != 0 {
		t.Error("NextAt advanced the simulation")
	}
	s.Step()
	if at, ok := s.NextAt(); !ok || at != 5 {
		t.Fatalf("after one step NextAt = %v,%v, want 5,true", at, ok)
	}
}

// TestSteadyStateAllocFree pins the event free-list: a self-rescheduling
// chain (the shape of every open-loop generator) recycles one event
// struct instead of allocating per occurrence.
func TestSteadyStateAllocFree(t *testing.T) {
	s := New()
	var tick Handler
	tick = func(s2 *Sim) {
		if s2.Now() < 1000 {
			if err := s2.Schedule(1, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if err := s.Schedule(1, tick); err != nil {
		t.Fatal(err)
	}
	// Warm up: the first step seeds the free list.
	s.Step()
	avg := testing.AllocsPerRun(100, func() { s.Step() })
	if avg > 0 {
		t.Errorf("steady-state Step allocates %v per event, want 0", avg)
	}
}
