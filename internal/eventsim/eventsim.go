// Package eventsim is a minimal discrete-event simulation kernel: a
// monotonic clock plus a time-ordered event queue. The network simulator
// uses it to drive user arrival/departure dynamics; it is generic enough
// for any future event-driven substrate.
package eventsim

import (
	"container/heap"
	"errors"
	"fmt"
)

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("eventsim: event scheduled in the past")

// Handler is an event callback. It runs with the simulation clock set to
// the event's time and may schedule further events.
type Handler func(sim *Sim)

type event struct {
	at      float64
	seq     uint64 // FIFO tie-break for simultaneous events
	handler Handler
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}

// Sim is a discrete-event simulator. The zero value is ready to use with
// the clock at 0.
type Sim struct {
	queue eventQueue
	now   float64
	seq   uint64
	// processed counts executed events.
	processed uint64
	// free recycles executed events: a long open-loop run (the city
	// harness schedules one event per arrival/departure/roam across
	// millions of users) stays at a steady handful of live event structs
	// instead of allocating one per occurrence.
	free []*event
}

// New returns a fresh simulator with the clock at 0.
func New() *Sim {
	return &Sim{}
}

// Now returns the current simulation time.
func (s *Sim) Now() float64 { return s.now }

// Processed returns the number of events executed so far.
func (s *Sim) Processed() uint64 { return s.processed }

// Pending returns the number of queued events.
func (s *Sim) Pending() int { return len(s.queue) }

// ScheduleAt queues handler to run at absolute time t.
func (s *Sim) ScheduleAt(t float64, handler Handler) error {
	if t < s.now {
		return fmt.Errorf("%w: t=%v now=%v", ErrPast, t, s.now)
	}
	if handler == nil {
		return errors.New("eventsim: nil handler")
	}
	s.seq++
	ev := s.alloc()
	ev.at, ev.seq, ev.handler = t, s.seq, handler
	heap.Push(&s.queue, ev)
	return nil
}

// alloc pops a recycled event or makes a fresh one.
func (s *Sim) alloc() *event {
	if n := len(s.free); n > 0 {
		ev := s.free[n-1]
		s.free[n-1] = nil
		s.free = s.free[:n-1]
		return ev
	}
	return &event{}
}

// Schedule queues handler to run delay time units from now.
func (s *Sim) Schedule(delay float64, handler Handler) error {
	if delay < 0 {
		return fmt.Errorf("%w: negative delay %v", ErrPast, delay)
	}
	return s.ScheduleAt(s.now+delay, handler)
}

// NextAt peeks at the next event's time without executing it, reporting
// false on an empty queue. Open-loop drivers interleave their own work
// with the simulation by stepping while NextAt stays below a boundary.
func (s *Sim) NextAt() (float64, bool) {
	if len(s.queue) == 0 {
		return 0, false
	}
	return s.queue[0].at, true
}

// Step executes the next event, advancing the clock to it. It reports
// whether an event was executed.
func (s *Sim) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	ev := heap.Pop(&s.queue).(*event)
	// Recycle the struct BEFORE running the handler: the handler may
	// schedule (and its schedulees reuse the slot), but ev's fields have
	// already been copied out.
	h := ev.handler
	s.now = ev.at
	ev.handler = nil
	s.free = append(s.free, ev)
	s.processed++
	h(s)
	return true
}

// RunUntil executes events in time order until the queue is empty or the
// next event lies beyond horizon; the clock ends at min(horizon, last
// event time). Events scheduled exactly at the horizon run.
func (s *Sim) RunUntil(horizon float64) {
	for len(s.queue) > 0 && s.queue[0].at <= horizon {
		s.Step()
	}
	if s.now < horizon {
		s.now = horizon
	}
}

// Run executes every queued event (including ones scheduled during the
// run) up to maxEvents, returning the number executed.
func (s *Sim) Run(maxEvents uint64) uint64 {
	var n uint64
	for n < maxEvents && s.Step() {
		n++
	}
	return n
}
