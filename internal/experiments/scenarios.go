// Package experiments regenerates every table and figure of the paper's
// evaluation (§III measurement study, §V testbed and simulation results).
// Each Fig*/Table* function is self-contained, deterministic for a given
// seed, and returns a typed result that also renders as a printable
// table; cmd/woltsim, the examples and the root benchmarks all drive
// these entry points.
package experiments

import (
	"context"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/topology"
	"github.com/plcwifi/wolt/internal/workload"
)

// Redistribute is the evaluation model used throughout: PLC time-fair
// sharing with leftover redistribution, as measured on the testbed
// (§III-B, Fig 3c).
var Redistribute = model.Options{Redistribute: true}

// TestbedScenario mirrors the paper's physical testbed (§V-A): a ~2400 m²
// university laboratory (49 m × 49 m), three TP-Link extenders plugged
// into randomly picked outlets with isolation capacities in the measured
// 60–160 Mbps range (Fig 2b), and seven laptops.
type TestbedScenario struct {
	Topology topology.Config
	Radio    radio.Model
}

// NewTestbedScenario returns the testbed calibration with the given seed.
// The radio is calibrated so that rates across the lab span the full
// 1–54 Mbps range (median ≈ 24 Mbps at the lab's typical distances): the
// paper's per-policy differences require cells that are WiFi-demand
// limited at least part of the time, which is what a large cluttered lab
// produces. With uniformly strong WiFi the PLC backhaul saturates and all
// spreading policies deliver the same Σc_j/A (see DESIGN.md).
func NewTestbedScenario(seed int64) TestbedScenario {
	rm := radio.DefaultModel()
	rm.Channel.TxPowerDBm = 6
	rm.Channel.PathLossExponent = 3.5
	rm.ShadowSeed = seed
	return TestbedScenario{
		Topology: topology.Config{
			Width:              49,
			Height:             49,
			NumExtenders:       3,
			NumUsers:           7,
			PLCCapacityMinMbps: 60,
			PLCCapacityMaxMbps: 160,
			Seed:               seed,
		},
		Radio: rm,
	}
}

// EnterpriseScenario mirrors the paper's large-scale simulation (§V-A):
// a 100 m × 100 m enterprise floor with extenders in random outlets and
// uniformly placed users. The PLC links are calibrated as HomePlug-AV2-
// class enterprise links (300–800 Mbps isolation capacity; see DESIGN.md
// — with the testbed's 60–160 Mbps links and 10+ extenders the PLC
// backhaul saturates under every spreading policy and the association
// problem degenerates), and the radio uses a 14 dBm/3.5-exponent indoor
// channel with 7 dB wall shadowing so user channel qualities span the
// full good-to-poor mix the paper describes.
type EnterpriseScenario struct {
	Topology topology.Config
	Radio    radio.Model
	Churn    workload.Config
	EpochLen float64
}

// NewEnterpriseScenario returns the enterprise calibration with the given
// number of extenders and initial users.
func NewEnterpriseScenario(numExtenders, numUsers int, seed int64) EnterpriseScenario {
	rm := radio.DefaultModel()
	rm.Channel.PathLossExponent = 3.5
	rm.Channel.TxPowerDBm = 14
	rm.ShadowSeed = seed
	return EnterpriseScenario{
		Topology: topology.Config{
			Width:              100,
			Height:             100,
			NumExtenders:       numExtenders,
			NumUsers:           numUsers,
			PLCCapacityMinMbps: 300,
			PLCCapacityMaxMbps: 800,
			Seed:               seed,
		},
		Radio: rm,
		Churn: workload.Config{
			ArrivalRate:   3,
			DepartureRate: 1,
			Horizon:       48,
			Seed:          seed,
		},
		EpochLen: 16,
	}
}

// Options tunes experiment runtime vs fidelity. The zero value selects
// paper-scale parameters; tests use reduced settings.
type Options struct {
	// Seed drives all randomness (default 2020, the paper's year).
	Seed int64
	// Trials overrides the number of independent topologies where the
	// paper specifies one (Fig 4a: 25 testbed topologies; Fig 6a: 100
	// simulation trials).
	Trials int
	// MACDuration overrides the simulated seconds of the MAC-level runs
	// (Fig 2a/2c; default 20 s).
	MACDuration float64
	// EmuDuration overrides the wall-clock measurement window of
	// emulated-testbed flows (default 1 s; shaped flows track their
	// model share within ±4% at that window, ±25% at 100 ms).
	EmuDuration time.Duration
	// Users overrides the simulated user count where the paper uses 36.
	Users int
	// Extenders overrides the simulated extender count where the paper
	// uses 10–15.
	Extenders int
	// Workers bounds the goroutines running independent units of work
	// (trials, grid cells, MAC runs, mobility worlds) in every driver
	// with a fan-out loop; <= 0 uses all available cores. Results are
	// identical for every worker count.
	Workers int
	// Strategy restricts strategy-iterating experiments (Solve) to one
	// registry name; empty runs all registered strategies.
	Strategy string
	// Concurrency adds a worker-lane axis to the city experiment: when
	// > 1, each shard count runs both sequentially and with this many
	// dispatch lanes (city.Config.Concurrency). <= 1 keeps the
	// sequential-only table.
	Concurrency int
	// Plane selects the city experiment's control plane: "" or
	// "coordinator" for the in-process sharded coordinator, "tcp" for
	// real sockets with the binary wire codec, "tcp-json" for sockets
	// with the legacy JSON framing (the codec-comparison row).
	Plane string
	// Ctx cancels a running experiment between units of work; nil means
	// context.Background(). On cancellation the driver returns promptly
	// with the context's error (the lowest-index task error otherwise).
	Ctx context.Context
}

// context returns the experiment's cancellation context, defaulting to
// context.Background().
func (o Options) context() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	return context.Background()
}

func (o Options) withDefaults(defaultTrials int) Options {
	if o.Seed == 0 {
		o.Seed = 2020
	}
	if o.Trials <= 0 {
		o.Trials = defaultTrials
	}
	if o.MACDuration <= 0 {
		o.MACDuration = 20
	}
	if o.EmuDuration <= 0 {
		o.EmuDuration = time.Second
	}
	if o.Users <= 0 {
		o.Users = 36
	}
	if o.Extenders <= 0 {
		o.Extenders = 10
	}
	return o
}
