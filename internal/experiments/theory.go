package experiments

import (
	"fmt"
	"strconv"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/nphard"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/topology"
)

// NPHardResult demonstrates the Theorem 1 reduction: solving the
// transformed user-assignment instance answers PARTITION exactly as the
// direct dynamic program does.
type NPHardResult struct {
	Instances int
	Agreed    int
	// Positives counts instances with a perfect partition.
	Positives int
}

// NPHard runs Options.Trials random PARTITION instances (default 50)
// through both the Theorem 1 reduction and the subset-sum DP. Instances
// fan out over Options.Workers goroutines; each trial draws its weights
// from its own derived stream, so results are bit-identical for any
// worker count.
func NPHard(opts Options) (*NPHardResult, error) {
	opts = opts.withDefaults(50)
	type verdict struct{ agreed, positive bool }
	verdicts, err := parallel.Map(opts.context(), opts.Trials, opts.Workers, func(trial int) (verdict, error) {
		rng := seed.Rand(opts.Seed, seed.NPHardTrial, int64(trial))
		m := 2 + rng.Intn(9)
		weights := make([]int, m)
		for i := range weights {
			weights[i] = 1 + rng.Intn(15)
		}
		in := nphard.Instance{Weights: weights}
		viaReduction, _, err := nphard.SolvePartition(in)
		if err != nil {
			return verdict{}, fmt.Errorf("reduction on %v: %w", weights, err)
		}
		viaDP, err := nphard.PartitionDP(in)
		if err != nil {
			return verdict{}, err
		}
		return verdict{agreed: viaReduction == viaDP, positive: viaDP}, nil
	})
	if err != nil {
		return nil, err
	}
	res := &NPHardResult{}
	for _, v := range verdicts {
		res.Instances++
		if v.agreed {
			res.Agreed++
		}
		if v.positive {
			res.Positives++
		}
	}
	return res, nil
}

// Tables implements Tabler.
func (r *NPHardResult) Tables() []Table {
	return []Table{{
		Caption: "Theorem 1 — PARTITION ↔ Problem 1 reduction cross-check",
		Header:  []string{"instances", "reduction agrees with DP", "perfect partitions"},
		Rows: [][]string{{
			strconv.Itoa(r.Instances), strconv.Itoa(r.Agreed), strconv.Itoa(r.Positives),
		}},
	}}
}

// GapResult measures WOLT's optimality gap against brute force on small
// instances (an ablation beyond the paper).
type GapResult struct {
	Instances int
	// Ratios are per-instance WOLT/optimal aggregate ratios.
	Ratios []float64
	// GreedyRatios and RSSIRatios are the baselines' ratios for context.
	GreedyRatios []float64
	RSSIRatios   []float64
}

// gapStrategies are the policies Gap compares against the exhaustive
// optimum, resolved through the strategy registry.
var gapStrategies = []string{"wolt", "greedy", "rssi"}

// Gap runs Options.Trials small random networks (default 40) and compares
// every policy against the exhaustive optimum under the redistribution
// model. Instances fan out over Options.Workers goroutines with
// bit-identical results for any worker count (each trial creates its own
// strategy instances, so no scratch state is shared across workers).
func Gap(opts Options) (*GapResult, error) {
	opts = opts.withDefaults(40)
	ratios, err := parallel.Map(opts.context(), opts.Trials, opts.Workers, func(trial int) ([3]float64, error) {
		scen := NewTestbedScenario(seed.Derive(opts.Seed, seed.GapTrial, int64(trial)))
		scen.Topology.NumExtenders = 3
		scen.Topology.NumUsers = 6
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return [3]float64{}, err
		}
		inst := netsim.Build(topo, scen.Radio)

		reference, err := strategy.New("optimal", strategy.Config{ModelOpts: Redistribute})
		if err != nil {
			return [3]float64{}, err
		}
		optAssign, err := reference.Solve(inst.Net)
		if err != nil {
			return [3]float64{}, err
		}
		opt := model.Aggregate(inst.Net, optAssign, Redistribute)

		var out [3]float64
		for k, name := range gapStrategies {
			st, err := strategy.New(name, strategy.Config{ModelOpts: Redistribute})
			if err != nil {
				return [3]float64{}, err
			}
			assign, err := st.Solve(inst.Net)
			if err != nil {
				return [3]float64{}, fmt.Errorf("%s: %w", name, err)
			}
			out[k] = stats.Ratio(model.Aggregate(inst.Net, assign, Redistribute), opt)
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	res := &GapResult{}
	for _, r := range ratios {
		res.Instances++
		res.Ratios = append(res.Ratios, r[0])
		res.GreedyRatios = append(res.GreedyRatios, r[1])
		res.RSSIRatios = append(res.RSSIRatios, r[2])
	}
	return res, nil
}

// Tables implements Tabler.
func (r *GapResult) Tables() []Table {
	row := func(name string, ratios []float64) []string {
		lo, _ := stats.Percentile(ratios, 10)
		return []string{name, f2(stats.Mean(ratios)), f2(lo), f2(stats.Min(ratios))}
	}
	return []Table{{
		Caption: "Optimality gap vs brute force (small instances; 1.00 = optimal)",
		Header:  []string{"policy", "mean ratio", "p10 ratio", "worst ratio"},
		Rows: [][]string{
			row("WOLT", r.Ratios),
			row("Greedy", r.GreedyRatios),
			row("RSSI", r.RSSIRatios),
		},
	}}
}
