package experiments

import (
	"fmt"
	"math"
	"sort"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// Claim is one falsifiable statement from the paper, with a check that
// measures it on this implementation.
type Claim struct {
	ID        string
	Statement string
	// Paper is the paper's reported value, as text.
	Paper string
	// Check measures the claim; it returns the measured value (as text)
	// and whether the claim's *shape* held.
	Check func(opts Options) (measured string, ok bool, err error)
}

// claimContext memoizes the expensive shared experiment runs so that
// multiple claims can reuse one Fig 4 (emulated testbed) execution.
type claimContext struct {
	fig4     *Fig4Result
	fig4Err  error
	fig4Done bool
}

func (c *claimContext) getFig4(opts Options) (*Fig4Result, error) {
	if !c.fig4Done {
		c.fig4, c.fig4Err = Fig4(opts)
		c.fig4Done = true
	}
	return c.fig4, c.fig4Err
}

// Claims returns every checked claim in paper order.
func Claims() []Claim {
	ctx := &claimContext{}
	return []Claim{
		{
			ID:        "fig2a-fair",
			Statement: "802.11 sharing is throughput-fair; a far client degrades both clients",
			Paper:     "equal per-user throughputs; both drop as client 2 moves away",
			Check: func(opts Options) (string, bool, error) {
				res, err := Fig2a(opts)
				if err != nil {
					return "", false, err
				}
				fair := true
				for _, loc := range res.Locations {
					if rel := math.Abs(loc.User1Mbps-loc.User2Mbps) / loc.User1Mbps; rel > 0.1 {
						fair = false
					}
				}
				monotone := res.Locations[0].User1Mbps > res.Locations[1].User1Mbps &&
					res.Locations[1].User1Mbps > res.Locations[2].User1Mbps
				return fmt.Sprintf("per-user gap ≤10%%; stationary client %s",
					map[bool]string{true: "degrades monotonically", false: "does not degrade"}[monotone]), fair && monotone, nil
			},
		},
		{
			ID:        "fig2c-timefair",
			Statement: "PLC sharing is time-fair: A active extenders each deliver ≈ solo/A",
			Paper:     "1/2, 1/3, 1/4 of isolation throughput",
			Check: func(opts Options) (string, bool, error) {
				res, err := Fig2c(opts)
				if err != nil {
					return "", false, err
				}
				worst := 0.0
				for a, row := range res.Shared {
					for j, tp := range row {
						want := res.Solo[j] / float64(a+1)
						if rel := math.Abs(tp-want) / want; rel > worst {
							worst = rel
						}
					}
				}
				return fmt.Sprintf("worst deviation from solo/A: %.0f%%", worst*100), worst < 0.25, nil
			},
		},
		{
			ID:        "fig3-numbers",
			Statement: "case study: RSSI 22, Greedy 30, Optimal 40 Mbps; WOLT finds the optimum",
			Paper:     "22 / 30 / 40",
			Check: func(Options) (string, bool, error) {
				res, err := Fig3()
				if err != nil {
					return "", false, err
				}
				ok := math.Abs(res.RSSIMbps-240.0/11.0) < 1e-6 &&
					math.Abs(res.GreedyMbps-30) < 1e-6 &&
					math.Abs(res.OptimalMbps-40) < 1e-6 &&
					math.Abs(res.WOLTMbps-40) < 1e-6
				return fmt.Sprintf("%.1f / %.1f / %.1f (WOLT %.1f)",
					res.RSSIMbps, res.GreedyMbps, res.OptimalMbps, res.WOLTMbps), ok, nil
			},
		},
		{
			ID:        "fig4a-ordering",
			Statement: "testbed: WOLT beats Greedy and RSSI on mean aggregate throughput",
			Paper:     "+26% vs Greedy, +70% vs RSSI",
			Check: func(opts Options) (string, bool, error) {
				res, err := ctx.getFig4(opts)
				if err != nil {
					return "", false, err
				}
				ok := res.ImprovementOverGreedy > 0 && res.ImprovementOverRSSI > 0
				return fmt.Sprintf("%+.0f%% vs Greedy, %+.0f%% vs RSSI",
					res.ImprovementOverGreedy*100, res.ImprovementOverRSSI*100), ok, nil
			},
		},
		{
			ID:        "fig4c-fidelity",
			Statement: "simulation results are consistent with the testbed",
			Paper:     "\"very consistent\"",
			Check: func(opts Options) (string, bool, error) {
				res, err := ctx.getFig4(opts)
				if err != nil {
					return "", false, err
				}
				ratios := make([]float64, len(res.Policies[0].ModelMbps))
				worst := 0.0
				for k := range ratios {
					rel := math.Abs(res.Policies[0].MeasuredMbps[k]/res.Policies[0].ModelMbps[k] - 1)
					if rel > worst {
						worst = rel
					}
				}
				// Shaped flows track the model within ±4% at the 1 s
				// paper-scale window; short test windows (and CPU
				// contention from parallel suites) warrant extra slack.
				tolerance := 0.3
				if opts.withDefaults(1).EmuDuration < 500*time.Millisecond {
					tolerance = 0.5
				}
				return fmt.Sprintf("worst measured/model deviation: %.0f%%", worst*100), worst < tolerance, nil
			},
		},
		{
			ID:        "fig5-tradeoff",
			Statement: "the worst users' loss under WOLT is modest next to the best users' gain",
			Paper:     "-6 Mbps vs +38 Mbps",
			// The check uses the deterministic model-predicted per-user
			// throughputs; the Fig5 experiment itself measures the same
			// assignment with real (noisy) TCP flows.
			Check: func(opts Options) (string, bool, error) {
				worst, best, err := fig5ModelDeltas(opts)
				if err != nil {
					return "", false, err
				}
				ok := best > 0 && best > -worst
				return fmt.Sprintf("worst-3 Δ %.1f, best-3 Δ %+.1f Mbps (model)", worst, best), ok, nil
			},
		},
		{
			ID:        "fig6a-dominance",
			Statement: "simulation: WOLT outperforms every baseline across the aggregate CDF",
			Paper:     "2.5x over greedy on average",
			Check: func(opts Options) (string, bool, error) {
				res, err := Fig6a(opts)
				if err != nil {
					return "", false, err
				}
				ok := true
				for _, ratio := range res.MeanImprovement {
					if ratio <= 1 {
						ok = false
					}
				}
				return fmt.Sprintf("mean ratios: %.2fx Greedy, %.2fx Selfish, %.2fx RSSI",
					res.MeanImprovement["Greedy"], res.MeanImprovement["Selfish"],
					res.MeanImprovement["RSSI"]), ok, nil
			},
		},
		{
			ID:        "fig6c-overhead",
			Statement: "WOLT re-assigns at most ~2 users per arrival",
			Paper:     "up to twice the arrivals",
			Check: func(opts Options) (string, bool, error) {
				res, err := Fig6bc(opts)
				if err != nil {
					return "", false, err
				}
				var reassigned, arrivals float64
				for _, er := range res.WOLT {
					reassigned += float64(er.Reassignments)
					arrivals += float64(er.Arrivals)
				}
				ratio := stats.Ratio(reassigned, arrivals)
				return fmt.Sprintf("%.2f re-assignments per arrival", ratio), ratio <= 2, nil
			},
		},
		{
			ID:        "fairness",
			Statement: "WOLT's Jain fairness is at least comparable to Greedy's",
			Paper:     "0.66 vs 0.52 (and RSSI 0.65)",
			Check: func(opts Options) (string, bool, error) {
				res, err := Fairness(opts)
				if err != nil {
					return "", false, err
				}
				wolt, greedy, rssi := res.MeanJain("WOLT"), res.MeanJain("Greedy"), res.MeanJain("RSSI")
				return fmt.Sprintf("%.2f / %.2f / %.2f (WOLT/Greedy/RSSI)", wolt, greedy, rssi),
					wolt >= greedy, nil
			},
		},
		{
			ID:        "nphard",
			Statement: "Problem 1 is NP-hard (PARTITION reduction is sound)",
			Paper:     "Theorem 1",
			Check: func(opts Options) (string, bool, error) {
				res, err := NPHard(opts)
				if err != nil {
					return "", false, err
				}
				return fmt.Sprintf("reduction agreed with DP on %d/%d instances",
					res.Agreed, res.Instances), res.Agreed == res.Instances, nil
			},
		},
	}
}

// fig5ModelDeltas replays the Fig 5 comparison against the analytic
// model, averaged over Options.Trials testbed topologies (the paper
// reports "the results are very similar with all our scenarios"):
// per-user WOLT-vs-Greedy deltas for the three WOLT-worst and three
// WOLT-best users. Trials fan out over Options.Workers goroutines with
// bit-identical sums for any worker count.
func fig5ModelDeltas(opts Options) (worstDelta, bestDelta float64, err error) {
	opts = opts.withDefaults(8)
	deltas, err := parallel.Map(opts.context(), opts.Trials, opts.Workers, func(trial int) ([2]float64, error) {
		scen := NewTestbedScenario(seed.Derive(opts.Seed, seed.ClaimsFig5Trial, int64(trial)))
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return [2]float64{}, err
		}
		inst := netsim.Build(topo, scen.Radio)
		perUser := make(map[string][]float64)
		for _, policy := range []netsim.Policy{netsim.WOLTPolicy{}, netsim.GreedyPolicy{ModelOpts: Redistribute}} {
			assign, err := assignStatic(inst, policy)
			if err != nil {
				return [2]float64{}, err
			}
			eval, err := model.Evaluate(inst.Net, assign, Redistribute)
			if err != nil {
				return [2]float64{}, err
			}
			perUser[policy.Name()] = eval.PerUser
		}
		order := make([]int, len(inst.UserIDs))
		for i := range order {
			order[i] = i
		}
		sort.Slice(order, func(a, b int) bool {
			return perUser["WOLT"][order[a]] < perUser["WOLT"][order[b]]
		})
		k := 3
		if len(order) < 2*k {
			k = len(order) / 2
		}
		var d [2]float64
		for _, i := range order[:k] {
			d[0] += perUser["WOLT"][i] - perUser["Greedy"][i]
		}
		for _, i := range order[len(order)-k:] {
			d[1] += perUser["WOLT"][i] - perUser["Greedy"][i]
		}
		return d, nil
	})
	if err != nil {
		return 0, 0, err
	}
	// Sum in trial order so the float accumulation is scheduling-free.
	for _, d := range deltas {
		worstDelta += d[0]
		bestDelta += d[1]
	}
	n := float64(opts.Trials)
	return worstDelta / n, bestDelta / n, nil
}

// VerifyResult is the outcome of running every claim.
type VerifyResult struct {
	Rows []VerifyRow
}

// VerifyRow is one claim's verdict.
type VerifyRow struct {
	Claim    Claim
	Measured string
	OK       bool
	Err      error
}

// Verify runs every claim check.
func Verify(opts Options) (*VerifyResult, error) {
	out := &VerifyResult{}
	for _, c := range Claims() {
		measured, ok, err := c.Check(opts)
		out.Rows = append(out.Rows, VerifyRow{Claim: c, Measured: measured, OK: ok, Err: err})
		if err != nil {
			return out, fmt.Errorf("claim %s: %w", c.ID, err)
		}
	}
	return out, nil
}

// Passed counts holding claims.
func (r *VerifyResult) Passed() int {
	n := 0
	for _, row := range r.Rows {
		if row.OK && row.Err == nil {
			n++
		}
	}
	return n
}

// Tables implements Tabler.
func (r *VerifyResult) Tables() []Table {
	t := Table{
		Caption: fmt.Sprintf("Claim verification — %d/%d paper claims hold in shape", r.Passed(), len(r.Rows)),
		Header:  []string{"claim", "paper", "measured", "verdict"},
	}
	for _, row := range r.Rows {
		verdict := "HOLDS"
		if row.Err != nil {
			verdict = "ERROR"
		} else if !row.OK {
			verdict = "DEVIATES"
		}
		t.Rows = append(t.Rows, []string{row.Claim.ID, row.Claim.Paper, row.Measured, verdict})
	}
	return []Table{t}
}
