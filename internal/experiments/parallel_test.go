package experiments

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// parOpts is a fast option set for the parallel-engine tests.
func parOpts(workers int) Options {
	return Options{
		Seed:        424242,
		Trials:      3,
		MACDuration: 2,
		EmuDuration: 80 * time.Millisecond,
		Users:       12,
		Extenders:   6,
		Workers:     workers,
	}
}

// TestDriversDeterministicAcrossWorkers verifies the determinism
// contract on every newly parallelized driver: Workers=1 and Workers=8
// produce bit-identical results.
func TestDriversDeterministicAcrossWorkers(t *testing.T) {
	drivers := []struct {
		name string
		run  func(Options) (any, error)
	}{
		{"Fig2a", func(o Options) (any, error) { return Fig2a(o) }},
		{"Fig2c", func(o Options) (any, error) { return Fig2c(o) }},
		{"Channels", func(o Options) (any, error) { return Channels(o) }},
		{"QoS", func(o Options) (any, error) { return QoS(o) }},
		{"NPHard", func(o Options) (any, error) { return NPHard(o) }},
		{"Gap", func(o Options) (any, error) { return Gap(o) }},
		{"Mobility", func(o Options) (any, error) { return Mobility(o) }},
		{"Anytime", func(o Options) (any, error) { return Anytime(o) }},
		{"Frontier", func(o Options) (any, error) { return Frontier(o) }},
		{"City", func(o Options) (any, error) {
			res, err := City(o)
			if err != nil {
				return nil, err
			}
			// Strip the wall-clock columns; everything else is covered by
			// the §7 contract.
			for i := range res.Runs {
				res.Runs[i].JoinsPerSec = 0
				res.Runs[i].P50Micros = 0
				res.Runs[i].P99Micros = 0
			}
			return res, nil
		}},
		{"fig5ModelDeltas", func(o Options) (any, error) {
			worst, best, err := fig5ModelDeltas(o)
			return [2]float64{worst, best}, err
		}},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			seq, err := d.run(parOpts(1))
			if err != nil {
				t.Fatal(err)
			}
			par, err := d.run(parOpts(8))
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(seq, par) {
				t.Errorf("Workers=1 and Workers=8 differ:\n%+v\nvs\n%+v", seq, par)
			}
		})
	}
}

// TestFig4ModelDeterministicAcrossWorkers pins down the part of Fig4
// that can be deterministic: the measured numbers carry the emulator's
// real TCP noise, but the model-side per-topology series must be
// bit-identical for any worker count.
func TestFig4ModelDeterministicAcrossWorkers(t *testing.T) {
	opts := parOpts(1)
	opts.Trials = 2
	seq, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := Fig4(opts)
	if err != nil {
		t.Fatal(err)
	}
	for p := range seq.Policies {
		if !reflect.DeepEqual(seq.Policies[p].ModelMbps, par.Policies[p].ModelMbps) {
			t.Errorf("%s model series differ: %v vs %v",
				seq.Policies[p].Name, seq.Policies[p].ModelMbps, par.Policies[p].ModelMbps)
		}
	}
}

// TestChannelsDedupesEqualBudgets covers the duplicate-point bug: with
// Extenders=6 the explicit 6-channel budget and the "unlimited" (0)
// sentinel resolve to the same allocation, which must be evaluated once
// and reported identically under both labels.
func TestChannelsDedupesEqualBudgets(t *testing.T) {
	opts := parOpts(4) // Extenders=6 collides with the listed budget 6
	res, err := Channels(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d points, want all 5 labels", len(res.Points))
	}
	six, unlimited := res.Points[3], res.Points[4]
	if six.Channels != 6 || unlimited.Channels != 0 {
		t.Fatalf("unexpected labels: %d, %d", six.Channels, unlimited.Channels)
	}
	if six.AggregateMbps != unlimited.AggregateMbps || six.MeanContenders != unlimited.MeanContenders {
		t.Errorf("equal budgets diverged: %+v vs %+v", six, unlimited)
	}
	// Sanity: scarcity still bites — one shared channel contends harder
	// than the full budget.
	if !(res.Points[0].MeanContenders > unlimited.MeanContenders) {
		t.Errorf("contention ordering broken: %v vs %v",
			res.Points[0].MeanContenders, unlimited.MeanContenders)
	}
	if math.IsNaN(unlimited.AggregateMbps) {
		t.Error("NaN aggregate")
	}
}

// TestDriversHonorCancelledContext verifies the cancellation path on
// every driver that fans out: a context cancelled before the run must
// surface context.Canceled instead of results.
func TestDriversHonorCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	drivers := []struct {
		name string
		run  func(Options) error
	}{
		{"Fig2a", func(o Options) error { _, err := Fig2a(o); return err }},
		{"Fig2c", func(o Options) error { _, err := Fig2c(o); return err }},
		{"Fig4", func(o Options) error { _, err := Fig4(o); return err }},
		{"Channels", func(o Options) error { _, err := Channels(o); return err }},
		{"QoS", func(o Options) error { _, err := QoS(o); return err }},
		{"NPHard", func(o Options) error { _, err := NPHard(o); return err }},
		{"Gap", func(o Options) error { _, err := Gap(o); return err }},
		{"Mobility", func(o Options) error { _, err := Mobility(o); return err }},
		{"Frontier", func(o Options) error { _, err := Frontier(o); return err }},
		{"City", func(o Options) error { _, err := City(o); return err }},
		{"Fig6a", func(o Options) error { _, err := Fig6a(o); return err }},
		{"Fairness", func(o Options) error { _, err := Fairness(o); return err }},
		{"Sweep", func(o Options) error { _, err := Sweep(o); return err }},
	}
	for _, d := range drivers {
		d := d
		t.Run(d.name, func(t *testing.T) {
			t.Parallel()
			opts := parOpts(4)
			opts.Ctx = ctx
			err := d.run(opts)
			if !errors.Is(err, context.Canceled) {
				t.Errorf("got %v, want context.Canceled", err)
			}
		})
	}
}

// TestMidRunCancellationReturnsPromptly cancels a large NPHard run while
// it is in flight: the driver must stop claiming trials and return
// context.Canceled well before the full run would complete.
func TestMidRunCancellationReturnsPromptly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	opts := Options{Seed: 7, Trials: 2_000_000, Workers: 4, Ctx: ctx}
	time.AfterFunc(10*time.Millisecond, cancel)
	start := time.Now()
	_, err := NPHard(opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("got %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("cancellation took %v", elapsed)
	}
}
