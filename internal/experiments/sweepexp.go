package experiments

import (
	"strconv"

	"github.com/plcwifi/wolt/internal/sweep"
)

// SweepResult is the parameter-sensitivity sweep (beyond the paper's
// single-point results): WOLT's advantage over each baseline across a
// grid of deployment sizes and PLC capacity classes, annotated with the
// PLC-saturation index that explains where the advantage lives.
type SweepResult struct {
	Results []sweep.Result
}

// Sweep runs the default sensitivity grid: {5, 10, 15} extenders ×
// {36, 72, 124} users × {testbed-class 60–160, AV2-class 300–800} Mbps
// capacity ranges. Options.Trials topologies per point (default 10).
func Sweep(opts Options) (*SweepResult, error) {
	opts = opts.withDefaults(10)
	var points []sweep.Point
	for _, caps := range [][2]float64{{60, 160}, {300, 800}} {
		points = append(points,
			sweep.Grid([]int{5, 10, 15}, []int{36, 72, 124}, caps[0], caps[1])...)
	}
	results, err := sweep.Run(sweep.Config{
		Ctx:       opts.Ctx,
		Points:    points,
		Trials:    opts.Trials,
		Seed:      opts.Seed,
		ModelOpts: Redistribute,
		Workers:   opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	return &SweepResult{Results: results}, nil
}

// Tables implements Tabler.
func (r *SweepResult) Tables() []Table {
	t := Table{
		Caption: "Sensitivity sweep — WOLT's advantage by deployment size and PLC class",
		Header: []string{
			"extenders", "users", "PLC Mbps", "WOLT Mbps",
			"vs Greedy", "vs Selfish", "vs RSSI", "PLC-saturation",
		},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(res.Point.Extenders),
			strconv.Itoa(res.Point.Users),
			f1(res.Point.CapMin) + "-" + f1(res.Point.CapMax),
			f1(res.WOLT),
			f2(res.VsGreedy), f2(res.VsSelfish), f2(res.VsRSSI),
			f2(res.SaturationIndex),
		})
	}
	return []Table{t}
}
