package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/shard"
	"github.com/plcwifi/wolt/internal/topology"
)

// shardCounts are the shard-plane sizes compared against the global
// solve (K=1 IS the global solve: one member owning every extender).
var shardCounts = []int{1, 2, 4}

// ShardRun is one (user count, shard count) cell of the shard
// experiment, averaged over trials.
type ShardRun struct {
	Users  int
	Shards int
	// GlobalMbps is the aggregate throughput of the single global WOLT
	// solve (the K=1 plane); ShardedMbps is the K-shard plane's. GapPct
	// is the relative loss of partitioning the solve,
	// (global-sharded)/global. All three are bit-identical for any
	// Options.Workers (DESIGN.md §7).
	GlobalMbps  float64
	ShardedMbps float64
	GapPct      float64
	// MeanJoinMicros/P95JoinMicros are wall-clock per-join latencies of
	// the sharded plane — the scaling payoff: each join solves only its
	// shard's sub-instance. Timing is inherently non-deterministic and
	// excluded from the determinism contract.
	MeanJoinMicros float64
	P95JoinMicros  float64
}

// ShardResult is the sharded-control-plane experiment: the aggregate-
// throughput gap and per-join latency of K consistent-hash shards vs.
// the single global WOLT solve, across user counts.
type ShardResult struct {
	Extenders int
	Trials    int
	Runs      []ShardRun
}

// shardUnit is one (user count, trial) work unit's measurements.
type shardUnit struct {
	perK []shardOutcome
}

type shardOutcome struct {
	aggregate float64
	joinUs    []float64
}

// Shard measures how much association quality a sharded control plane
// gives up (and how much per-join latency it wins) as the extender set
// is partitioned across 1, 2 and 4 consistent-hash shards. Every trial
// builds an enterprise instance, joins its users in ID order through a
// shard.Coordinator per K, and evaluates the merged assignment on the
// full network model. Units fan out over Options.Workers with
// bit-identical aggregates for any worker count.
func Shard(opts Options) (*ShardResult, error) {
	opts = opts.withDefaults(3)
	userCounts := shardUserCounts(opts.Users)

	units := len(userCounts) * opts.Trials
	measured, err := parallel.Map(opts.context(), units, opts.Workers, func(i int) (shardUnit, error) {
		uc := i / opts.Trials
		seedT := seed.Derive(opts.Seed, seed.ShardTrial, int64(i))
		scen := NewEnterpriseScenario(opts.Extenders, userCounts[uc], seedT)
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return shardUnit{}, err
		}
		inst := netsim.Build(topo, scen.Radio)

		unit := shardUnit{perK: make([]shardOutcome, len(shardCounts))}
		for ki, k := range shardCounts {
			out, err := runShardPlane(inst, k, seedT, opts.Workers)
			if err != nil {
				return shardUnit{}, err
			}
			unit.perK[ki] = out
		}
		return unit, nil
	})
	if err != nil {
		return nil, err
	}

	res := &ShardResult{Extenders: opts.Extenders, Trials: opts.Trials}
	for uc, users := range userCounts {
		for ki, k := range shardCounts {
			var global, sharded float64
			var joins []float64
			for t := 0; t < opts.Trials; t++ {
				unit := measured[uc*opts.Trials+t]
				global += unit.perK[0].aggregate
				sharded += unit.perK[ki].aggregate
				joins = append(joins, unit.perK[ki].joinUs...)
			}
			global /= float64(opts.Trials)
			sharded /= float64(opts.Trials)
			gap := 0.0
			if global > 0 {
				gap = (global - sharded) / global * 100
			}
			res.Runs = append(res.Runs, ShardRun{
				Users:          users,
				Shards:         k,
				GlobalMbps:     global,
				ShardedMbps:    sharded,
				GapPct:         gap,
				MeanJoinMicros: meanFloat(joins),
				P95JoinMicros:  percentile(joins, 0.95),
			})
		}
	}
	return res, nil
}

// runShardPlane joins every user of the instance (ascending row order,
// the arrival order of the static scenario) through a K-shard
// coordinator and evaluates the merged assignment on the FULL network:
// each extender belongs to exactly one shard, so the union of per-shard
// assignments is a valid global association.
func runShardPlane(inst *netsim.Instance, shards int, seedT int64, workers int) (shardOutcome, error) {
	coord, err := shard.NewCoordinator(shard.Config{
		Shards:    shards,
		PLCCaps:   inst.Net.PLCCaps,
		Policy:    "wolt",
		ModelOpts: Redistribute,
		Workers:   workers,
		Seed:      seedT,
	})
	if err != nil {
		return shardOutcome{}, err
	}
	n := inst.Net.NumUsers()
	out := shardOutcome{joinUs: make([]float64, 0, n)}
	for i := 0; i < n; i++ {
		start := time.Now()
		if _, err := coord.Join(i, inst.Net.WiFiRates[i], inst.RSSI[i]); err != nil {
			return shardOutcome{}, fmt.Errorf("shard experiment: join user %d (K=%d): %w", i, shards, err)
		}
		out.joinUs = append(out.joinUs, float64(time.Since(start))/float64(time.Microsecond))
	}
	st := coord.StatsWithAssignment()
	assign := make(model.Assignment, n)
	for i := range assign {
		assign[i] = model.Unassigned
		if ext, ok := st.Assignment[i]; ok {
			assign[i] = ext
		}
	}
	out.aggregate = model.Aggregate(inst.Net, assign, Redistribute)
	return out, nil
}

// shardUserCounts spans the experiment's population axis: one third,
// two thirds and the full Options.Users (at least 2 users each).
func shardUserCounts(users int) []int {
	counts := []int{users / 3, 2 * users / 3, users}
	for i, c := range counts {
		if c < 2 {
			counts[i] = 2
		}
	}
	// Deduplicate (tiny -users settings collapse the axis).
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

func meanFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// percentile returns the p-quantile (0..1) by nearest-rank on a sorted
// copy.
func percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	idx := int(p*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// Tables implements Tabler.
func (r *ShardResult) Tables() []Table {
	t := Table{
		Caption: fmt.Sprintf("Shard experiment — K consistent-hash shards vs the global WOLT solve (%d extenders, %d trials)",
			r.Extenders, r.Trials),
		Header: []string{"users", "shards", "global Mbps", "sharded Mbps", "gap %",
			"mean join us", "p95 join us"},
	}
	for _, run := range r.Runs {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(run.Users), strconv.Itoa(run.Shards),
			f1(run.GlobalMbps), f1(run.ShardedMbps),
			strconv.FormatFloat(run.GapPct, 'f', 2, 64),
			f1(run.MeanJoinMicros), f1(run.P95JoinMicros),
		})
	}
	return []Table{t}
}
