package experiments

import (
	"errors"
	"strconv"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/qos"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// QoSPoint is the outcome at one guaranteed-rate level.
type QoSPoint struct {
	// GuaranteeMbps is the per-user guaranteed rate requested for the
	// priority users.
	GuaranteeMbps float64
	// Admitted is the fraction of trials where all guarantees fit the
	// TDMA budget.
	Admitted float64
	// ReservedTime is the mean total medium-time fraction reserved
	// (admitted trials only).
	ReservedTime float64
	// BestEffortMbps is the mean best-effort aggregate (admitted trials).
	BestEffortMbps float64
	// TotalMbps is guarantees + best-effort (admitted trials).
	TotalMbps float64
	// PlainWOLTMbps is the no-QoS WOLT aggregate on the same topologies,
	// the price-of-guarantees reference.
	PlainWOLTMbps float64
}

// QoSResult is the guaranteed-rate ablation (beyond the paper, built on
// the §II TDMA capability): five priority users request growing
// guarantees; the table reports admission, reservations, and what the
// guarantees cost the best-effort crowd.
type QoSResult struct {
	PriorityUsers int
	Points        []QoSPoint
}

// QoS runs the guaranteed-rate ablation on the testbed scenario
// (3 extenders, 60–160 Mbps links), averaging over Options.Trials
// topologies (default 10). The full (level × trial) grid fans out over
// Options.Workers goroutines with bit-identical results for any worker
// count; trial t sees the same topology at every guarantee level.
func QoS(opts Options) (*QoSResult, error) {
	opts = opts.withDefaults(10)
	const priorityUsers = 3
	levels := []float64{2, 5, 10, 20, 40}

	// qosCell is one (level, trial) outcome.
	type qosCell struct {
		plain      float64
		admitted   bool
		reserved   float64
		bestEffort float64
		total      float64
	}
	nTasks := len(levels) * opts.Trials
	cells, err := parallel.Map(opts.context(), nTasks, opts.Workers, func(t int) (qosCell, error) {
		level := levels[t/opts.Trials]
		trial := t % opts.Trials
		// The topology seed ignores the level, so every guarantee level
		// is measured on the same sequence of topologies.
		scen := NewTestbedScenario(seed.Derive(opts.Seed, seed.QoSTrial, int64(trial)))
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return qosCell{}, err
		}
		inst := netsim.Build(topo, scen.Radio)

		woltRes, err := core.Assign(inst.Net, core.Options{})
		if err != nil {
			return qosCell{}, err
		}
		cell := qosCell{plain: model.Aggregate(inst.Net, woltRes.Assign, Redistribute)}

		demands := make([]qos.Demand, priorityUsers)
		for u := range demands {
			demands[u] = qos.Demand{User: u, Mbps: level}
		}
		plan, err := qos.Build(qos.Config{
			Net:      inst.Net,
			Priority: demands,
			Eval:     Redistribute,
		})
		if errors.Is(err, qos.ErrInfeasible) {
			return cell, nil
		}
		if err != nil {
			return qosCell{}, err
		}
		cell.admitted = true
		cell.reserved = plan.TotalReserved
		if plan.BestEffort != nil {
			cell.bestEffort = plan.BestEffort.Aggregate
		}
		cell.total = plan.AggregateMbps()
		return cell, nil
	})
	if err != nil {
		return nil, err
	}

	res := &QoSResult{PriorityUsers: priorityUsers}
	for li, level := range levels {
		var (
			admitted                           int
			reserved, bestEffort, total, plain []float64
		)
		for trial := 0; trial < opts.Trials; trial++ {
			cell := cells[li*opts.Trials+trial]
			plain = append(plain, cell.plain)
			if !cell.admitted {
				continue
			}
			admitted++
			reserved = append(reserved, cell.reserved)
			bestEffort = append(bestEffort, cell.bestEffort)
			total = append(total, cell.total)
		}
		res.Points = append(res.Points, QoSPoint{
			GuaranteeMbps:  level,
			Admitted:       float64(admitted) / float64(opts.Trials),
			ReservedTime:   stats.Mean(reserved),
			BestEffortMbps: stats.Mean(bestEffort),
			TotalMbps:      stats.Mean(total),
			PlainWOLTMbps:  stats.Mean(plain),
		})
	}
	return res, nil
}

// Tables implements Tabler.
func (r *QoSResult) Tables() []Table {
	t := Table{
		Caption: "QoS ablation — " + strconv.Itoa(r.PriorityUsers) +
			" priority users on TDMA guarantees (testbed scenario)",
		Header: []string{
			"guarantee Mbps/user", "admitted", "reserved time",
			"best-effort Mbps", "total Mbps", "plain WOLT Mbps",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			f1(p.GuaranteeMbps), pct(p.Admitted), f2(p.ReservedTime),
			f1(p.BestEffortMbps), f1(p.TotalMbps), f1(p.PlainWOLTMbps),
		})
	}
	return []Table{t}
}
