package experiments

import (
	"errors"
	"strconv"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/qos"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// QoSPoint is the outcome at one guaranteed-rate level.
type QoSPoint struct {
	// GuaranteeMbps is the per-user guaranteed rate requested for the
	// priority users.
	GuaranteeMbps float64
	// Admitted is the fraction of trials where all guarantees fit the
	// TDMA budget.
	Admitted float64
	// ReservedTime is the mean total medium-time fraction reserved
	// (admitted trials only).
	ReservedTime float64
	// BestEffortMbps is the mean best-effort aggregate (admitted trials).
	BestEffortMbps float64
	// TotalMbps is guarantees + best-effort (admitted trials).
	TotalMbps float64
	// PlainWOLTMbps is the no-QoS WOLT aggregate on the same topologies,
	// the price-of-guarantees reference.
	PlainWOLTMbps float64
}

// QoSResult is the guaranteed-rate ablation (beyond the paper, built on
// the §II TDMA capability): five priority users request growing
// guarantees; the table reports admission, reservations, and what the
// guarantees cost the best-effort crowd.
type QoSResult struct {
	PriorityUsers int
	Points        []QoSPoint
}

// QoS runs the guaranteed-rate ablation on the testbed scenario
// (3 extenders, 60–160 Mbps links), averaging over Options.Trials
// topologies (default 10).
func QoS(opts Options) (*QoSResult, error) {
	opts = opts.withDefaults(10)
	const priorityUsers = 3
	levels := []float64{2, 5, 10, 20, 40}

	res := &QoSResult{PriorityUsers: priorityUsers}
	for _, level := range levels {
		var (
			admitted                           int
			reserved, bestEffort, total, plain []float64
			demands                            []qos.Demand
		)
		for u := 0; u < priorityUsers; u++ {
			demands = append(demands, qos.Demand{User: u, Mbps: level})
		}
		for trial := 0; trial < opts.Trials; trial++ {
			scen := NewTestbedScenario(opts.Seed + int64(trial))
			topo, err := topology.Generate(scen.Topology)
			if err != nil {
				return nil, err
			}
			inst := netsim.Build(topo, scen.Radio)

			woltRes, err := core.Assign(inst.Net, core.Options{})
			if err != nil {
				return nil, err
			}
			plain = append(plain, model.Aggregate(inst.Net, woltRes.Assign, Redistribute))

			plan, err := qos.Build(qos.Config{
				Net:      inst.Net,
				Priority: demands,
				Eval:     Redistribute,
			})
			if errors.Is(err, qos.ErrInfeasible) {
				continue
			}
			if err != nil {
				return nil, err
			}
			admitted++
			reserved = append(reserved, plan.TotalReserved)
			be := 0.0
			if plan.BestEffort != nil {
				be = plan.BestEffort.Aggregate
			}
			bestEffort = append(bestEffort, be)
			total = append(total, plan.AggregateMbps())
		}
		res.Points = append(res.Points, QoSPoint{
			GuaranteeMbps:  level,
			Admitted:       float64(admitted) / float64(opts.Trials),
			ReservedTime:   stats.Mean(reserved),
			BestEffortMbps: stats.Mean(bestEffort),
			TotalMbps:      stats.Mean(total),
			PlainWOLTMbps:  stats.Mean(plain),
		})
	}
	return res, nil
}

// Tables implements Tabler.
func (r *QoSResult) Tables() []Table {
	t := Table{
		Caption: "QoS ablation — " + strconv.Itoa(r.PriorityUsers) +
			" priority users on TDMA guarantees (testbed scenario)",
		Header: []string{
			"guarantee Mbps/user", "admitted", "reserved time",
			"best-effort Mbps", "total Mbps", "plain WOLT Mbps",
		},
	}
	for _, p := range r.Points {
		t.Rows = append(t.Rows, []string{
			f1(p.GuaranteeMbps), pct(p.Admitted), f2(p.ReservedTime),
			f1(p.BestEffortMbps), f1(p.TotalMbps), f1(p.PlainWOLTMbps),
		})
	}
	return []Table{t}
}
