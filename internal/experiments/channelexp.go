package experiments

import (
	"fmt"
	"strconv"

	"github.com/plcwifi/wolt/internal/channels"
	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// ChannelPoint is the evaluation under one channel budget.
type ChannelPoint struct {
	Channels int
	// MeanContenders is the average co-channel contender count per
	// extender (1.0 = the paper's interference-free assumption holds).
	MeanContenders float64
	// AggregateMbps is WOLT's aggregate under co-channel contention.
	AggregateMbps float64
}

// ChannelsResult quantifies the paper's non-overlapping-channel
// assumption (§V-A): how much aggregate throughput survives when the
// enterprise's extenders must share 1, 2, 3 (the real 2.4 GHz budget) or
// unlimited orthogonal channels.
type ChannelsResult struct {
	Extenders         int
	Users             int
	InterferenceRange float64
	Points            []ChannelPoint
}

// Channels runs the channel-scarcity ablation on the enterprise
// scenario, averaging over Options.Trials topologies (default 10).
// Trials fan out over Options.Workers goroutines with bit-identical
// results for any worker count.
//
// The listed budgets resolve the sentinel 0 to one channel per extender
// before evaluation, and budgets that resolve to the same channel count
// (e.g. Extenders=6 makes the 6-budget and the "unlimited" point the
// same allocation) are evaluated once and reported under both labels
// instead of being solved twice.
func Channels(opts Options) (*ChannelsResult, error) {
	opts = opts.withDefaults(10)
	const interferenceRange = 45.0 // meters; cells overlap well inside it

	budgets := []int{1, 2, 3, 6, 0} // 0 = one channel per extender
	res := &ChannelsResult{
		Extenders:         opts.Extenders,
		Users:             opts.Users,
		InterferenceRange: interferenceRange,
	}
	// Deduplicate after resolving the sentinel: evalOf[b] indexes the
	// unique resolved channel counts in `resolved`.
	var resolved []int
	evalOf := make([]int, len(budgets))
	seen := make(map[int]int, len(budgets))
	for b, budget := range budgets {
		numCh := budget
		if numCh == 0 {
			numCh = opts.Extenders
		}
		k, ok := seen[numCh]
		if !ok {
			k = len(resolved)
			seen[numCh] = k
			resolved = append(resolved, numCh)
		}
		evalOf[b] = k
	}

	// trialPoint is one (trial, resolved budget) evaluation.
	type trialPoint struct {
		aggregate  float64
		contenders float64
	}
	trials, err := parallel.Map(opts.context(), opts.Trials, opts.Workers, func(trial int) ([]trialPoint, error) {
		scen := NewEnterpriseScenario(opts.Extenders, opts.Users,
			seed.Derive(opts.Seed, seed.ChannelsTrial, int64(trial)))
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return nil, err
		}
		inst := netsim.Build(topo, scen.Radio)
		wolt, err := core.Assign(inst.Net, core.Options{})
		if err != nil {
			return nil, err
		}
		points := make([]trialPoint, len(resolved))
		for k, numCh := range resolved {
			chans := make([]int, numCh)
			for c := range chans {
				chans[c] = c + 1
			}
			alloc, err := channels.Allocate(topo, chans, interferenceRange)
			if err != nil {
				return nil, err
			}
			cont, err := channels.Contenders(topo, alloc, interferenceRange)
			if err != nil {
				return nil, err
			}
			eval, err := channels.EvaluateWithChannels(inst.Net, wolt.Assign, cont, Redistribute)
			if err != nil {
				return nil, err
			}
			var mean float64
			for _, c := range cont {
				mean += float64(c)
			}
			points[k] = trialPoint{
				aggregate:  eval.Aggregate,
				contenders: mean / float64(len(cont)),
			}
		}
		return points, nil
	})
	if err != nil {
		return nil, err
	}

	aggregates := make([][]float64, len(resolved))
	contenders := make([][]float64, len(resolved))
	for _, points := range trials {
		for k, pt := range points {
			aggregates[k] = append(aggregates[k], pt.aggregate)
			contenders[k] = append(contenders[k], pt.contenders)
		}
	}
	for b, budget := range budgets {
		k := evalOf[b]
		res.Points = append(res.Points, ChannelPoint{
			Channels:       budget,
			MeanContenders: stats.Mean(contenders[k]),
			AggregateMbps:  stats.Mean(aggregates[k]),
		})
	}
	return res, nil
}

// Tables implements Tabler.
func (r *ChannelsResult) Tables() []Table {
	t := Table{
		Caption: fmt.Sprintf(
			"Channel scarcity — WOLT aggregate under co-channel contention (%d extenders, %d users, %.0f m range)",
			r.Extenders, r.Users, r.InterferenceRange),
		Header: []string{"orthogonal channels", "mean co-channel contenders", "aggregate Mbps"},
	}
	for _, p := range r.Points {
		label := strconv.Itoa(p.Channels)
		if p.Channels == 0 {
			label = "unlimited"
		}
		t.Rows = append(t.Rows, []string{label, f2(p.MeanContenders), f1(p.AggregateMbps)})
	}
	return []Table{t}
}
