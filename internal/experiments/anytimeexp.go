package experiments

import (
	"fmt"
	"strconv"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/topology"
)

// anytimeStrategies are the local-search family members priced by the
// quality-vs-budget curve, in table order.
var anytimeStrategies = []string{"wolt-hillclimb", "wolt-kopt", "wolt-anneal"}

// anytimeBudgets is the probe-budget sweep: 10^2 … 10^6 single-move
// probes per cold solve.
var anytimeBudgets = []int{100, 1_000, 10_000, 100_000, 1_000_000}

// AnytimeRun is one (strategy, probe budget) cell of the curve. All
// fields are deterministic for any worker count (wall-clock timings are
// deliberately absent; bench-anytime.sh measures latency separately).
type AnytimeRun struct {
	Strategy string
	// Budget is the probe cap handed to strategy.Config.Budget.Probes.
	Budget int
	// Aggregate is the achieved objective, re-scored by the full
	// evaluator (bit-identical to the search's own bookkeeping).
	Aggregate float64
	// Probes/Commits/Improving are the search's own counters.
	Probes, Commits, Improving int
	// Stop is the anytime stop reason ("optimum", "probes", …).
	Stop string
}

// AnytimeResult is the quality-vs-probe-budget curve of the anytime
// local-search family on one enterprise instance: every strategy solves
// cold at each budget, and the achieved aggregate is compared against
// the full two-phase WOLT solve (and the exhaustive optimum when the
// instance is small enough to enumerate).
type AnytimeResult struct {
	Users, Extenders int
	// WOLT is the full two-phase solve's aggregate — the quality
	// reference every budgeted run is gapped against.
	WOLT float64
	// Optimal is the exhaustive optimum, or 0 when the instance exceeds
	// the optimal strategy's size guard (the default 36-user enterprise
	// instance does; small test instances do not).
	Optimal float64
	Runs    []AnytimeRun
}

// Anytime runs the quality-vs-probe-budget experiment: one enterprise
// instance (Options.Users × Options.Extenders), the full WOLT reference
// solve, then the (strategy × budget) grid fanned over Options.Workers
// goroutines. Each cell owns a fresh strategy instance seeded only by
// Options.Seed, so results are bit-identical for any worker count
// (DESIGN.md §7; time budgets are never used here).
func Anytime(opts Options) (*AnytimeResult, error) {
	opts = opts.withDefaults(1)
	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	topo, err := topology.Generate(scen.Topology)
	if err != nil {
		return nil, err
	}
	inst := netsim.Build(topo, scen.Radio)

	res := &AnytimeResult{
		Users:     inst.Net.NumUsers(),
		Extenders: inst.Net.NumExtenders(),
	}

	wolt, err := strategy.New("wolt", strategy.Config{ModelOpts: Redistribute, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	refAssign, err := wolt.Solve(inst.Net)
	if err != nil {
		return nil, err
	}
	res.WOLT = model.Aggregate(inst.Net, refAssign, Redistribute)

	// The exhaustive reference only exists when |A|^|U| is enumerable.
	// The optimal strategy's own size guard decides: a rejection means
	// the curve is gapped against WOLT alone (the default 36-user
	// enterprise instance; small test instances get the extra column).
	optimal, err := strategy.New("optimal", strategy.Config{ModelOpts: Redistribute})
	if err != nil {
		return nil, err
	}
	if optAssign, err := optimal.Solve(inst.Net); err == nil {
		res.Optimal = model.Aggregate(inst.Net, optAssign, Redistribute)
	}

	cells := len(anytimeStrategies) * len(anytimeBudgets)
	runs, err := parallel.Map(opts.context(), cells, opts.Workers, func(c int) (AnytimeRun, error) {
		name := anytimeStrategies[c/len(anytimeBudgets)]
		budget := anytimeBudgets[c%len(anytimeBudgets)]
		var got []strategy.Stats
		st, err := strategy.New(name, strategy.Config{
			ModelOpts: Redistribute,
			Seed:      opts.Seed,
			Budget:    strategy.Budget{Probes: budget},
			Observer:  func(s strategy.Stats) { got = append(got, s) },
		})
		if err != nil {
			return AnytimeRun{}, err
		}
		assign, err := st.Solve(inst.Net)
		if err != nil {
			return AnytimeRun{}, fmt.Errorf("%s @ %d probes: %w", name, budget, err)
		}
		if len(got) == 0 {
			return AnytimeRun{}, fmt.Errorf("experiments: strategy %q emitted no stats", name)
		}
		s := got[len(got)-1]
		return AnytimeRun{
			Strategy:  name,
			Budget:    budget,
			Aggregate: model.Aggregate(inst.Net, assign, Redistribute),
			Probes:    s.DeltaProbes,
			Commits:   s.Commits,
			Improving: s.Improving,
			Stop:      s.Stop,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Runs = runs
	return res, nil
}

// Tables implements Tabler.
func (r *AnytimeResult) Tables() []Table {
	optCaption := "instance too large to enumerate"
	if r.Optimal > 0 {
		optCaption = "optimal " + f1(r.Optimal) + " Mbps"
	}
	t := Table{
		Caption: fmt.Sprintf(
			"Anytime local search — quality vs probe budget (%d users × %d extenders; WOLT %s Mbps; %s)",
			r.Users, r.Extenders, f1(r.WOLT), optCaption),
		Header: []string{"strategy", "probe budget", "aggregate Mbps",
			"vs WOLT", "vs optimal", "probes", "commits", "improving", "stop"},
	}
	for _, run := range r.Runs {
		vsOpt := "-"
		if r.Optimal > 0 {
			vsOpt = f2(stats.Ratio(run.Aggregate, r.Optimal))
		}
		t.Rows = append(t.Rows, []string{
			run.Strategy, strconv.Itoa(run.Budget), f1(run.Aggregate),
			f2(stats.Ratio(run.Aggregate, r.WOLT)), vsOpt,
			strconv.Itoa(run.Probes), strconv.Itoa(run.Commits),
			strconv.Itoa(run.Improving), run.Stop,
		})
	}
	return []Table{t}
}
