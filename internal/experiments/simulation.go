package experiments

import (
	"strconv"

	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/strategy"
)

// simulationPolicies are the policies compared in the large-scale
// simulations. Greedy is the paper's §V-B description (each arrival
// maximizes the aggregate); Selfish is the §III-B narration (each arrival
// maximizes its own throughput) — see DESIGN.md on the ambiguity.
func simulationPolicies() []netsim.Policy {
	return []netsim.Policy{
		netsim.WOLTPolicy{},
		netsim.GreedyPolicy{ModelOpts: Redistribute},
		netsim.SelfishPolicy{ModelOpts: Redistribute},
		netsim.RSSIPolicy{},
	}
}

// Fig6aResult covers Fig 6a: the CDF of aggregate throughput across
// independent trials at |U| users, and WOLT's improvement factors.
type Fig6aResult struct {
	// Results holds per-policy static outcomes (trial aggregates).
	Results []netsim.StaticResult
	// CDFs[p] is the empirical CDF of policy p's trial aggregates.
	CDFs map[string][]stats.CDFPoint
	// MeanImprovement maps baseline name to WOLT's ratio of mean
	// aggregates over that baseline.
	MeanImprovement map[string]float64
	// MeanOfRatios maps baseline name to the mean of per-trial
	// WOLT/baseline ratios (how the paper's "average improvement of
	// 2.5x" is most plausibly computed).
	MeanOfRatios map[string]float64
}

// Fig6a runs the static enterprise simulation (paper: 100 trials, 36
// users).
func Fig6a(opts Options) (*Fig6aResult, error) {
	opts = opts.withDefaults(100)
	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	cfg := netsim.StaticConfig{
		Ctx:       opts.Ctx,
		Topology:  scen.Topology,
		Radio:     &scen.Radio,
		Trials:    opts.Trials,
		ModelOpts: Redistribute,
		Workers:   opts.Workers,
	}
	results, err := netsim.RunStatic(cfg, simulationPolicies())
	if err != nil {
		return nil, err
	}
	res := &Fig6aResult{
		Results:         results,
		CDFs:            make(map[string][]stats.CDFPoint, len(results)),
		MeanImprovement: make(map[string]float64),
		MeanOfRatios:    make(map[string]float64),
	}
	for _, r := range results {
		res.CDFs[r.Policy] = stats.CDF(r.Aggregates())
	}
	wolt := results[0]
	for _, r := range results[1:] {
		res.MeanImprovement[r.Policy] = stats.Ratio(wolt.MeanAggregate(), r.MeanAggregate())
		ratios := make([]float64, len(r.Trials))
		for k := range r.Trials {
			ratios[k] = stats.Ratio(wolt.Trials[k].Aggregate, r.Trials[k].Aggregate)
		}
		res.MeanOfRatios[r.Policy] = stats.Mean(ratios)
	}
	return res, nil
}

// Tables implements Tabler.
func (r *Fig6aResult) Tables() []Table {
	summary := Table{
		Caption: "Fig 6a — enterprise simulation aggregates (paper: WOLT ≈2.5x Greedy on average)",
		Header:  []string{"policy", "mean Mbps", "p10", "p50", "p90", "WOLT ratio (means)", "WOLT ratio (per-trial)"},
	}
	for _, pr := range r.Results {
		aggs := pr.Aggregates()
		p10, _ := stats.Percentile(aggs, 10)
		p50, _ := stats.Percentile(aggs, 50)
		p90, _ := stats.Percentile(aggs, 90)
		meanRatio, trialRatio := "-", "-"
		if pr.Policy != "WOLT" {
			meanRatio = f2(r.MeanImprovement[pr.Policy])
			trialRatio = f2(r.MeanOfRatios[pr.Policy])
		}
		summary.Rows = append(summary.Rows, []string{
			pr.Policy, f1(stats.Mean(aggs)), f1(p10), f1(p50), f1(p90), meanRatio, trialRatio,
		})
	}
	cdf := Table{
		Caption: "Fig 6a — CDF of aggregate throughput (deciles)",
		Header:  []string{"percentile"},
	}
	for _, pr := range r.Results {
		cdf.Header = append(cdf.Header, pr.Policy+" Mbps")
	}
	for p := 10; p <= 90; p += 10 {
		row := []string{strconv.Itoa(p)}
		for _, pr := range r.Results {
			v, _ := stats.Percentile(pr.Aggregates(), float64(p))
			row = append(row, f1(v))
		}
		cdf.Rows = append(cdf.Rows, row)
	}
	return []Table{summary, cdf}
}

// Fig6bcResult covers Fig 6b (aggregate throughput at epoch boundaries
// under Poisson churn) and Fig 6c (WOLT re-assignments per epoch).
type Fig6bcResult struct {
	// WOLT and Greedy are per-epoch results for each policy.
	WOLT   []netsim.EpochResult
	Greedy []netsim.EpochResult
	// Anytime prices the warm local-search re-solve (wolt-hillclimb
	// with a probe budget) against the full per-epoch WOLT solve: same
	// churn trace, a fraction of the work.
	Anytime []netsim.EpochResult
}

// Fig6bc runs the dynamic simulation (paper: arrival rate 3, departure
// rate 1, population growing 36 → 66 → 102 across epochs).
func Fig6bc(opts Options) (*Fig6bcResult, error) {
	opts = opts.withDefaults(1)
	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	cfg := netsim.DynamicConfig{
		Topology:  scen.Topology,
		Radio:     &scen.Radio,
		Churn:     scen.Churn,
		EpochLen:  scen.EpochLen,
		ModelOpts: Redistribute,
	}
	wolt, err := netsim.RunDynamic(cfg, netsim.WOLTPolicy{})
	if err != nil {
		return nil, err
	}
	greedy, err := netsim.RunDynamic(cfg, netsim.GreedyPolicy{ModelOpts: Redistribute})
	if err != nil {
		return nil, err
	}
	anytime, err := netsim.RunDynamic(cfg, netsim.StrategyPolicy{
		Strategy: "wolt-hillclimb",
		Display:  "Anytime",
		Config: strategy.Config{
			ModelOpts: Redistribute,
			Seed:      opts.Seed,
			Budget:    strategy.Budget{Probes: anytimeEpochProbes},
		},
	})
	if err != nil {
		return nil, err
	}
	return &Fig6bcResult{WOLT: wolt, Greedy: greedy, Anytime: anytime}, nil
}

// anytimeEpochProbes is the per-epoch probe budget of the anytime
// policy in the dynamic and mobility harnesses: enough for several full
// improvement passes at enterprise scale (users × DefaultNeighborhood ≈
// 300 probes per pass at 36 users), still ~1000× cheaper than the
// two-phase solve it replaces.
const anytimeEpochProbes = 2000

// Tables implements Tabler.
func (r *Fig6bcResult) Tables() []Table {
	b := Table{
		Caption: "Fig 6b — aggregate throughput per epoch under Poisson churn (paper: WOLT above Greedy throughout; anytime = budgeted warm local search)",
		Header:  []string{"epoch", "users", "WOLT Mbps", "Greedy Mbps", "Anytime Mbps", "ratio", "anytime/wolt"},
	}
	for k := range r.WOLT {
		anytime, anyRatio := "-", "-"
		if k < len(r.Anytime) {
			anytime = f1(r.Anytime[k].Aggregate)
			anyRatio = f2(stats.Ratio(r.Anytime[k].Aggregate, r.WOLT[k].Aggregate))
		}
		b.Rows = append(b.Rows, []string{
			strconv.Itoa(k + 1), strconv.Itoa(r.WOLT[k].Users),
			f1(r.WOLT[k].Aggregate), f1(r.Greedy[k].Aggregate), anytime,
			f2(stats.Ratio(r.WOLT[k].Aggregate, r.Greedy[k].Aggregate)), anyRatio,
		})
	}
	c := Table{
		Caption: "Fig 6c — WOLT re-assignments per epoch (paper: ≈ up to 2x the epoch's arrivals)",
		Header:  []string{"epoch", "arrivals", "departures", "reassignments", "reassign/arrival"},
	}
	for k, er := range r.WOLT {
		ratio := "-"
		if er.Arrivals > 0 {
			ratio = f2(float64(er.Reassignments) / float64(er.Arrivals))
		}
		c.Rows = append(c.Rows, []string{
			strconv.Itoa(k + 1), strconv.Itoa(er.Arrivals), strconv.Itoa(er.Departures),
			strconv.Itoa(er.Reassignments), ratio,
		})
	}
	return []Table{b, c}
}

// FairnessResult covers the §V-E fairness table: mean Jain's index per
// policy (paper: WOLT 0.66, Greedy 0.52, RSSI 0.65).
type FairnessResult struct {
	Results []netsim.StaticResult
}

// Fairness reuses the static enterprise simulation to compute Jain's
// fairness index per policy.
func Fairness(opts Options) (*FairnessResult, error) {
	opts = opts.withDefaults(30)
	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	cfg := netsim.StaticConfig{
		Ctx:       opts.Ctx,
		Topology:  scen.Topology,
		Radio:     &scen.Radio,
		Trials:    opts.Trials,
		ModelOpts: Redistribute,
		Workers:   opts.Workers,
	}
	results, err := netsim.RunStatic(cfg, simulationPolicies())
	if err != nil {
		return nil, err
	}
	return &FairnessResult{Results: results}, nil
}

// MeanJain returns the mean Jain index of the named policy, or 0.
func (r *FairnessResult) MeanJain(policy string) float64 {
	for _, pr := range r.Results {
		if pr.Policy == policy {
			return pr.MeanJain()
		}
	}
	return 0
}

// Tables implements Tabler.
func (r *FairnessResult) Tables() []Table {
	t := Table{
		Caption: "§V-E fairness — Jain's index (paper: WOLT 0.66, Greedy 0.52, RSSI 0.65)",
		Header:  []string{"policy", "mean Jain index", "mean aggregate Mbps"},
	}
	for _, pr := range r.Results {
		t.Rows = append(t.Rows, []string{pr.Policy, f2(pr.MeanJain()), f1(pr.MeanAggregate())})
	}
	return []Table{t}
}
