package experiments

import (
	"math"
	"strings"
	"testing"
	"time"
)

// fastOpts keeps experiment tests quick: fewer trials, shorter MAC runs
// and emulation windows. The seed is chosen so the paper's qualitative
// shapes hold at these small trial counts under the seed.Derive streams.
func fastOpts() Options {
	return Options{
		Seed:        2027,
		Trials:      4,
		MACDuration: 5,
		EmuDuration: 120 * time.Millisecond,
		Users:       24,
		Extenders:   8,
	}
}

func TestFig2aShape(t *testing.T) {
	res, err := Fig2a(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Locations) != 3 {
		t.Fatalf("got %d locations", len(res.Locations))
	}
	for _, loc := range res.Locations {
		// Throughput-fair: both users within 10% of each other.
		if rel := math.Abs(loc.User1Mbps-loc.User2Mbps) / loc.User1Mbps; rel > 0.1 {
			t.Errorf("%s: users differ %.0f%%", loc.Name, rel*100)
		}
	}
	// Anomaly: the stationary user's throughput decreases monotonically
	// as the other user moves away.
	if !(res.Locations[0].User1Mbps > res.Locations[1].User1Mbps &&
		res.Locations[1].User1Mbps > res.Locations[2].User1Mbps) {
		t.Errorf("anomaly shape broken: %v, %v, %v",
			res.Locations[0].User1Mbps, res.Locations[1].User1Mbps, res.Locations[2].User1Mbps)
	}
	assertRenders(t, res)
}

func TestFig2bShape(t *testing.T) {
	res, err := Fig2b(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Links) != 4 || len(res.Estimated) != 4 {
		t.Fatalf("got %d links, %d estimates", len(res.Links), len(res.Estimated))
	}
	// Capacities spread over a meaningful range and estimation tracks
	// truth.
	for k, link := range res.Links {
		if link.CapacityMbps <= 0 {
			t.Errorf("link %d capacity %v", k, link.CapacityMbps)
		}
		if rel := math.Abs(res.Estimated[k]-link.CapacityMbps) / link.CapacityMbps; rel > 0.15 {
			t.Errorf("link %d estimate %.0f%% off", k, rel*100)
		}
	}
	if res.Links[0].CapacityMbps <= res.Links[3].CapacityMbps {
		t.Error("short clean path should beat long branched path")
	}
	assertRenders(t, res)
}

func TestFig2cShape(t *testing.T) {
	res, err := Fig2c(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shared) != 4 {
		t.Fatalf("got %d active-set sizes", len(res.Shared))
	}
	for a, row := range res.Shared {
		active := a + 1
		for j, tp := range row {
			want := res.Solo[j] / float64(active)
			if rel := math.Abs(tp-want) / want; rel > 0.25 {
				t.Errorf("A=%d extender %d: %v, want ≈ solo/%d = %v", active, j, tp, active, want)
			}
		}
	}
	assertRenders(t, res)
}

func TestFig3GoldenNumbers(t *testing.T) {
	res, err := Fig3()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.RSSIMbps-240.0/11.0) > 1e-9 {
		t.Errorf("RSSI = %v, want 240/11 ≈ 21.8", res.RSSIMbps)
	}
	if math.Abs(res.GreedyMbps-30) > 1e-9 {
		t.Errorf("Greedy = %v, want 30", res.GreedyMbps)
	}
	if math.Abs(res.OptimalMbps-40) > 1e-9 {
		t.Errorf("Optimal = %v, want 40", res.OptimalMbps)
	}
	if math.Abs(res.WOLTMbps-40) > 1e-9 {
		t.Errorf("WOLT = %v, want 40 (matches optimal)", res.WOLTMbps)
	}
	assertRenders(t, res)
}

func TestFig4Shape(t *testing.T) {
	res, err := Fig4(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Policies) != 3 {
		t.Fatalf("got %d policies", len(res.Policies))
	}
	if res.ImprovementOverRSSI <= 0 {
		t.Errorf("WOLT improvement over RSSI = %v, want positive", res.ImprovementOverRSSI)
	}
	// Fractions are sane.
	for _, v := range []float64{res.BetterVsGreedy, res.WorseVsGreedy, res.BetterVsRSSI, res.WorseVsRSSI} {
		if v < 0 || v > 1 {
			t.Errorf("fraction %v outside [0,1]", v)
		}
	}
	// Fidelity (Fig 4c): measured tracks model within 30% on every
	// topology.
	for k := range res.Policies[0].ModelMbps {
		m, meas := res.Policies[0].ModelMbps[k], res.Policies[0].MeasuredMbps[k]
		if rel := math.Abs(meas-m) / m; rel > 0.3 {
			t.Errorf("topology %d: measured %v vs model %v (%.0f%%)", k, meas, m, rel*100)
		}
	}
	assertRenders(t, res)
}

func TestFig5Shape(t *testing.T) {
	res, err := Fig5(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Worst) != 3 || len(res.Best) != 3 {
		t.Fatalf("got %d worst, %d best", len(res.Worst), len(res.Best))
	}
	// The best WOLT users outperform the worst (by construction of the
	// sort) and the net effect favors the best group, the paper's story.
	if res.Best[0].WOLTMbps < res.Worst[2].WOLTMbps {
		t.Error("best/worst ordering broken")
	}
	assertRenders(t, res)
}

func TestFig6aShape(t *testing.T) {
	res, err := Fig6a(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 4 {
		t.Fatalf("got %d policies", len(res.Results))
	}
	if res.Results[0].Policy != "WOLT" {
		t.Fatalf("first policy %q", res.Results[0].Policy)
	}
	// WOLT improves on every baseline on average.
	for name, ratio := range res.MeanImprovement {
		if ratio <= 1 {
			t.Errorf("WOLT/%s mean ratio = %v, want > 1", name, ratio)
		}
	}
	for _, points := range res.CDFs {
		if len(points) == 0 {
			t.Error("empty CDF")
		}
	}
	assertRenders(t, res)
}

func TestFig6bcShape(t *testing.T) {
	res, err := Fig6bc(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WOLT) != 3 || len(res.Greedy) != 3 {
		t.Fatalf("got %d/%d epochs", len(res.WOLT), len(res.Greedy))
	}
	var woltTotal, greedyTotal float64
	for k := range res.WOLT {
		woltTotal += res.WOLT[k].Aggregate
		greedyTotal += res.Greedy[k].Aggregate
		if res.Greedy[k].Reassignments != 0 {
			t.Errorf("greedy reassigned in epoch %d", k)
		}
	}
	if woltTotal <= greedyTotal {
		t.Errorf("WOLT total %v not above Greedy %v", woltTotal, greedyTotal)
	}
	// Population grows under the paper's churn rates.
	if res.WOLT[2].Users <= res.WOLT[0].Users {
		t.Errorf("population did not grow: %d -> %d", res.WOLT[0].Users, res.WOLT[2].Users)
	}
	assertRenders(t, res)
}

func TestFairnessShape(t *testing.T) {
	res, err := Fairness(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	wolt := res.MeanJain("WOLT")
	greedy := res.MeanJain("Greedy")
	if wolt <= 0 || wolt > 1 {
		t.Errorf("WOLT Jain = %v", wolt)
	}
	// The paper's §V-E finding: WOLT's fairness is at least comparable to
	// (in their runs, better than) Greedy's.
	if wolt < greedy*0.9 {
		t.Errorf("WOLT Jain %v far below Greedy %v", wolt, greedy)
	}
	if res.MeanJain("nope") != 0 {
		t.Error("unknown policy should report 0")
	}
	assertRenders(t, res)
}

func TestNPHardAgreement(t *testing.T) {
	res, err := NPHard(Options{Seed: 7, Trials: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res.Agreed != res.Instances {
		t.Errorf("reduction agreed on %d/%d instances", res.Agreed, res.Instances)
	}
	if res.Positives == 0 || res.Positives == res.Instances {
		t.Errorf("degenerate instance mix: %d/%d positive", res.Positives, res.Instances)
	}
	assertRenders(t, res)
}

func TestGapNearOptimal(t *testing.T) {
	res, err := Gap(Options{Seed: 3, Trials: 10})
	if err != nil {
		t.Fatal(err)
	}
	if res.Instances != 10 {
		t.Fatalf("ran %d instances", res.Instances)
	}
	for k, ratio := range res.Ratios {
		if ratio > 1+1e-9 {
			t.Errorf("instance %d: WOLT ratio %v exceeds optimal", k, ratio)
		}
		if ratio < 0.5 {
			t.Errorf("instance %d: WOLT ratio %v below 0.5", k, ratio)
		}
	}
	assertRenders(t, res)
}

// assertRenders checks the Tabler output is well-formed.
func assertRenders(t *testing.T, r Tabler) {
	t.Helper()
	tables := r.Tables()
	if len(tables) == 0 {
		t.Fatal("no tables")
	}
	for _, tab := range tables {
		s := tab.String()
		if !strings.Contains(s, tab.Header[0]) {
			t.Errorf("table missing header: %q", s)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Header) {
				t.Errorf("row width %d != header width %d in %q", len(row), len(tab.Header), tab.Caption)
			}
		}
	}
}

func TestSweepShape(t *testing.T) {
	res, err := Sweep(Options{Seed: 11, Trials: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Results) != 18 { // 3 extenders × 3 users × 2 capacity classes
		t.Fatalf("got %d sweep points, want 18", len(res.Results))
	}
	for _, r := range res.Results {
		if r.WOLT <= 0 {
			t.Errorf("point %+v: non-positive WOLT aggregate", r.Point)
		}
	}
	assertRenders(t, res)
}

func TestMobilityShape(t *testing.T) {
	res, err := Mobility(Options{Seed: 5, Trials: 6, Users: 18, Extenders: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ticks) != 6 {
		t.Fatalf("got %d ticks", len(res.Ticks))
	}
	_, _, full, budgeted := res.Means()
	staticMean, _, _, _ := res.Means()
	// Re-associating must not lose to never re-associating under motion.
	if full < staticMean*0.98 {
		t.Errorf("full recompute mean %v below static %v", full, staticMean)
	}
	// The budgeted variant should track the full recompute closely.
	if budgeted < 0.85*full {
		t.Errorf("budgeted mean %v far below full %v", budgeted, full)
	}
	_, fullMoves, budgetMoves := res.TotalMoves()
	if budgetMoves > res.Budget*len(res.Ticks) {
		t.Errorf("budget violated: %d moves over %d ticks", budgetMoves, len(res.Ticks))
	}
	if fullMoves < budgetMoves {
		t.Errorf("full recompute moved less (%d) than budgeted (%d)?", fullMoves, budgetMoves)
	}
	assertRenders(t, res)
}

func TestChannelsShape(t *testing.T) {
	res, err := Channels(Options{Seed: 13, Trials: 2, Users: 18, Extenders: 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d channel points", len(res.Points))
	}
	// More channels → fewer contenders and at least as much throughput.
	for k := 1; k < len(res.Points); k++ {
		if res.Points[k].MeanContenders > res.Points[k-1].MeanContenders+1e-9 {
			t.Errorf("contenders increased with more channels: %+v", res.Points)
		}
		if res.Points[k].AggregateMbps < res.Points[k-1].AggregateMbps-1e-9 {
			t.Errorf("aggregate decreased with more channels: %+v", res.Points)
		}
	}
	// Unlimited channels restore the interference-free assumption.
	last := res.Points[len(res.Points)-1]
	if last.MeanContenders != 1 {
		t.Errorf("unlimited channels still contended: %v", last.MeanContenders)
	}
	assertRenders(t, res)
}

func TestVerifyAllClaimsHold(t *testing.T) {
	res, err := Verify(fastOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(Claims()) {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.Err != nil {
			t.Errorf("claim %s errored: %v", row.Claim.ID, row.Err)
		}
		if !row.OK {
			t.Errorf("claim %s deviates: %s (paper: %s)", row.Claim.ID, row.Measured, row.Claim.Paper)
		}
	}
	if res.Passed() != len(res.Rows) {
		t.Errorf("passed %d/%d", res.Passed(), len(res.Rows))
	}
	assertRenders(t, res)
}

func TestQoSShape(t *testing.T) {
	res, err := QoS(Options{Seed: 3, Trials: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 5 {
		t.Fatalf("got %d points", len(res.Points))
	}
	prevAdmitted := 1.1
	for _, p := range res.Points {
		if p.Admitted < 0 || p.Admitted > 1 {
			t.Errorf("admitted %v outside [0,1]", p.Admitted)
		}
		// Admission can only get harder as guarantees grow.
		if p.Admitted > prevAdmitted+1e-9 {
			t.Errorf("admission grew with demand: %+v", res.Points)
		}
		prevAdmitted = p.Admitted
		if p.Admitted > 0 && p.TotalMbps <= 0 {
			t.Errorf("admitted level %v with no throughput", p.GuaranteeMbps)
		}
	}
	// Small guarantees are admitted at least sometimes (a priority user
	// out of WiFi range of every extender — floor rate 1 Mbps — is
	// legitimately inadmissible even at 2 Mbps).
	if res.Points[0].Admitted == 0 {
		t.Errorf("2 Mbps guarantees never admitted: %+v", res.Points[0])
	}
	assertRenders(t, res)
}

// TestAnytimeCurve runs the quality-vs-probe-budget experiment on an
// instance small enough to enumerate, so the optimal column is live:
// no budgeted run may beat the exhaustive optimum, and the
// deterministic climbers (hillclimb, kopt) must be monotone in budget.
func TestAnytimeCurve(t *testing.T) {
	res, err := Anytime(Options{Seed: 7, Users: 8, Extenders: 4})
	if err != nil {
		t.Fatal(err)
	}
	if want := len(anytimeStrategies) * len(anytimeBudgets); len(res.Runs) != want {
		t.Fatalf("got %d runs, want %d", len(res.Runs), want)
	}
	if res.WOLT <= 0 {
		t.Fatal("non-positive WOLT reference")
	}
	if res.Optimal <= 0 {
		t.Fatal("8 users x 4 extenders should be enumerable")
	}
	prev := map[string]float64{}
	for _, run := range res.Runs {
		if run.Aggregate <= 0 {
			t.Errorf("%s @ %d: non-positive aggregate", run.Strategy, run.Budget)
		}
		if run.Aggregate > res.Optimal+1e-9 {
			t.Errorf("%s @ %d: aggregate %v beats optimal %v",
				run.Strategy, run.Budget, run.Aggregate, res.Optimal)
		}
		if run.Probes > run.Budget {
			t.Errorf("%s @ %d: %d probes exceed the budget",
				run.Strategy, run.Budget, run.Probes)
		}
		if run.Stop == "" {
			t.Errorf("%s @ %d: empty stop reason", run.Strategy, run.Budget)
		}
		// Hill climbing and k-opt follow one deterministic trajectory;
		// a larger budget only ever extends it.
		if run.Strategy != "wolt-anneal" {
			if p, ok := prev[run.Strategy]; ok && run.Aggregate < p-1e-9 {
				t.Errorf("%s @ %d: aggregate %v below smaller budget's %v",
					run.Strategy, run.Budget, run.Aggregate, p)
			}
			prev[run.Strategy] = run.Aggregate
		}
	}
	// At the top budget every strategy should have converged close to
	// the WOLT reference on an instance this small.
	for _, run := range res.Runs {
		if run.Budget == anytimeBudgets[len(anytimeBudgets)-1] && run.Aggregate < 0.9*res.WOLT {
			t.Errorf("%s @ %d: aggregate %v below 0.9x WOLT %v",
				run.Strategy, run.Budget, run.Aggregate, res.WOLT)
		}
	}
	assertRenders(t, res)
}
