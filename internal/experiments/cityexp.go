package experiments

import (
	"fmt"
	"strconv"

	"github.com/plcwifi/wolt/internal/city"
	"github.com/plcwifi/wolt/internal/control"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/strategy"
)

// cityShardCounts is the experiment's shard-plane axis.
var cityShardCounts = []int{2, 4}

// CityRun is one (shard count, lane count) row of the city experiment,
// averaged over trials. The event/handoff columns are bit-identical for
// any Options.Workers (DESIGN.md §7); the latency/throughput columns are
// wall-clock measurements of this host and excluded from the determinism
// contract.
type CityRun struct {
	// Plane names the control plane driven: "coordinator" (in-process),
	// "tcp" (sockets, binary codec) or "tcp-json" (sockets, legacy JSON).
	Plane       string
	Shards      int
	TargetUsers int
	// Lanes is the number of dispatch worker lanes driving the plane
	// (city.Config.Concurrency); 1 is the sequential reference mode.
	Lanes int
	// Events/Joins/Leaves/Updates/Directives are mean per-trial operation
	// counts driven into the plane.
	Events     float64
	Joins      float64
	Leaves     float64
	Updates    float64
	Directives float64
	// PeakUsers/FinalUsers describe the sustained population.
	PeakUsers  float64
	FinalUsers float64
	// Handoffs/HandoffRate price roaming across shard boundaries;
	// Reassociations counts policy-initiated moves.
	Handoffs       float64
	HandoffRate    float64
	Reassociations float64
	// JoinsPerSec/P50Micros/P99Micros are wall-clock (non-deterministic).
	JoinsPerSec float64
	P50Micros   float64
	P99Micros   float64
}

// CityResult is the city-harness experiment: an event-driven
// arrival/departure/roaming stream with a diurnal load curve, driven
// against sharded planes of increasing width under the anytime policy.
type CityResult struct {
	Trials int
	Runs   []CityRun
}

// City prices the sharded control plane under the event-driven city
// workload (internal/city): M/M/∞ churn toward a target population of
// 10×Options.Users, diurnal arrival shaping, per-user roaming, the
// wolt-hillclimb policy under a 200-probe budget with leave-time
// repairs. Each (shard count, trial) unit fans out over Options.Workers
// with bit-identical event counters for any worker count.
func City(opts Options) (*CityResult, error) {
	opts = opts.withDefaults(3)
	target := 10 * opts.Users
	planeName := opts.Plane
	if planeName == "" {
		planeName = "coordinator"
	}
	switch planeName {
	case "coordinator", "tcp", "tcp-json":
	default:
		return nil, fmt.Errorf("experiments: unknown city plane %q", planeName)
	}

	// Lane axis: sequential only by default; Options.Concurrency > 1 adds
	// a concurrent-dispatch row per shard count. Trial seeds are derived
	// from (shard index, trial) only, so the lane-1 and lane-N rows replay
	// the same event streams and their event counters compare. In lane>1
	// rows the directive/reassociation counts join the wall-clock columns
	// as interleaving-dependent: re-solving policies see operations in
	// scheduler order across lanes.
	laneChoices := []int{1}
	if opts.Concurrency > 1 {
		laneChoices = append(laneChoices, opts.Concurrency)
	}

	units := len(cityShardCounts) * len(laneChoices) * opts.Trials
	perShard := len(laneChoices) * opts.Trials
	measured, err := parallel.Map(opts.context(), units, opts.Workers, func(i int) (city.Result, error) {
		si := i / perShard
		li := (i % perShard) / opts.Trials
		trial := i % opts.Trials
		shards := cityShardCounts[si]
		eps := opts.Extenders / shards
		if eps < 1 {
			eps = 1
		}
		return runCityPlane(city.Config{
			Shards:            shards,
			ExtendersPerShard: eps,
			TargetUsers:       target,
			Horizon:           40,
			DwellMean:         20,
			UpdateMean:        30,
			DiurnalFloor:      0.4,
			Policy:            "wolt-hillclimb",
			Budget:            strategy.Budget{Probes: 200},
			ReassignOnLeave:   true,
			Workers:           opts.Workers,
			Concurrency:       laneChoices[li],
			Seed:              seed.Derive(opts.Seed, seed.CityTrial, int64(si*opts.Trials+trial)),
		}, planeName)
	})
	if err != nil {
		return nil, err
	}

	res := &CityResult{Trials: opts.Trials}
	for si, shards := range cityShardCounts {
		for li, lanes := range laneChoices {
			run := CityRun{Plane: planeName, Shards: shards, TargetUsers: target, Lanes: lanes}
			for t := 0; t < opts.Trials; t++ {
				r := measured[si*perShard+li*opts.Trials+t]
				run.Events += float64(r.Events)
				run.Joins += float64(r.Joins)
				run.Leaves += float64(r.Leaves)
				run.Updates += float64(r.Updates)
				run.Directives += float64(r.Directives)
				run.PeakUsers += float64(r.PeakUsers)
				run.FinalUsers += float64(r.FinalUsers)
				run.Handoffs += float64(r.Handoffs)
				run.HandoffRate += r.HandoffRate
				run.Reassociations += float64(r.Reassociations)
				run.JoinsPerSec += r.JoinsPerSec
				run.P50Micros += float64(r.P50Latency.Microseconds())
				run.P99Micros += float64(r.P99Latency.Microseconds())
			}
			n := float64(opts.Trials)
			run.Events /= n
			run.Joins /= n
			run.Leaves /= n
			run.Updates /= n
			run.Directives /= n
			run.PeakUsers /= n
			run.FinalUsers /= n
			run.Handoffs /= n
			run.HandoffRate /= n
			run.Reassociations /= n
			run.JoinsPerSec /= n
			run.P50Micros /= n
			run.P99Micros /= n
			res.Runs = append(res.Runs, run)
		}
	}
	return res, nil
}

// runCityPlane prepares a city and replays it against the selected
// plane kind: the in-process coordinator, or a TCP plane hosting its
// shard members in-process on ephemeral ports (binary or JSON codec).
func runCityPlane(cfg city.Config, planeName string) (city.Result, error) {
	c, err := city.New(cfg)
	if err != nil {
		return city.Result{}, err
	}
	if planeName == "coordinator" {
		coord, err := c.NewCoordinator()
		if err != nil {
			return city.Result{}, err
		}
		return c.Run(coord)
	}
	codec := control.CodecBinary
	if planeName == "tcp-json" {
		codec = control.CodecJSON
	}
	plane, err := c.NewTCPPlane(city.TCPConfig{Codec: codec})
	if err != nil {
		return city.Result{}, err
	}
	defer plane.Close()
	return c.Run(plane)
}

// Tables implements Tabler.
func (r *CityResult) Tables() []Table {
	t := Table{
		Caption: fmt.Sprintf("City harness — event-driven churn/roaming on sharded planes, wolt-hillclimb @200 probes (%d trials; latency columns are wall-clock)",
			r.Trials),
		Header: []string{"plane", "shards", "lanes", "target users", "events", "joins", "updates",
			"handoffs", "handoff rate", "reassoc", "joins/sec", "p50 us", "p99 us"},
	}
	for _, run := range r.Runs {
		t.Rows = append(t.Rows, []string{
			run.Plane, strconv.Itoa(run.Shards), strconv.Itoa(run.Lanes), strconv.Itoa(run.TargetUsers),
			f1(run.Events), f1(run.Joins), f1(run.Updates),
			f1(run.Handoffs), strconv.FormatFloat(run.HandoffRate, 'f', 3, 64),
			f1(run.Reassociations), f1(run.JoinsPerSec), f1(run.P50Micros), f1(run.P99Micros),
		})
	}
	return []Table{t}
}
