package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment output: a caption, a header row and
// data rows. Every experiment result renders to one or more Tables so
// cmd/woltsim can print paper-style output uniformly.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// String renders the table with aligned columns.
func (t Table) String() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Tabler is implemented by every experiment result.
type Tabler interface {
	Tables() []Table
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func pct(v float64) string {
	return fmt.Sprintf("%.0f%%", v*100)
}
