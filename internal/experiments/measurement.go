package experiments

import (
	"fmt"
	"strconv"

	"github.com/plcwifi/wolt/internal/mac1901"
	"github.com/plcwifi/wolt/internal/mac80211"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/plc"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/strategy"
)

// Fig2aResult reproduces Fig 2a: two saturated WiFi clients on one
// extender, with client 2 moved progressively farther (location 1 → 3),
// demonstrating throughput-fair sharing and the performance anomaly.
type Fig2aResult struct {
	Locations []Fig2aLocation
}

// Fig2aLocation is one position of the mobile client.
type Fig2aLocation struct {
	Name          string
	Rate1, Rate2  float64 // PHY rates of the stationary and mobile client
	User1Mbps     float64
	User2Mbps     float64
	AggregateMbps float64
}

// Fig2a runs the WiFi-only medium-sharing experiment on the DCF MAC
// simulator. The per-location runs are independent and fan out over
// Options.Workers goroutines, each on its own derived seed stream.
func Fig2a(opts Options) (*Fig2aResult, error) {
	opts = opts.withDefaults(1)
	// Location 1: both clients next to the extender (54 Mbps each).
	// Location 2: client 2 mid-room (24 Mbps). Location 3: far (6 Mbps).
	configs := []struct {
		name         string
		rate1, rate2 float64
	}{
		{"location 1 (equal)", 54, 54},
		{"location 2 (mid)", 54, 24},
		{"location 3 (far)", 54, 6},
	}
	locations, err := parallel.Map(opts.context(), len(configs), opts.Workers, func(k int) (Fig2aLocation, error) {
		cfg := configs[k]
		sim, err := mac80211.Simulate(
			[]float64{cfg.rate1, cfg.rate2},
			opts.MACDuration,
			mac80211.DefaultParams(),
			seed.Rand(opts.Seed, seed.Fig2aLocation, int64(k)),
		)
		if err != nil {
			return Fig2aLocation{}, err
		}
		return Fig2aLocation{
			Name:          cfg.name,
			Rate1:         cfg.rate1,
			Rate2:         cfg.rate2,
			User1Mbps:     sim.Stations[0].ThroughputMbps,
			User2Mbps:     sim.Stations[1].ThroughputMbps,
			AggregateMbps: sim.AggregateMbps,
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig2aResult{Locations: locations}, nil
}

// Tables implements Tabler.
func (r *Fig2aResult) Tables() []Table {
	t := Table{
		Caption: "Fig 2a — WiFi-only sharing: throughput-fair, and one far client drags both down",
		Header:  []string{"client-2 position", "rate1", "rate2", "user1 Mbps", "user2 Mbps", "aggregate"},
	}
	for _, loc := range r.Locations {
		t.Rows = append(t.Rows, []string{
			loc.Name, f1(loc.Rate1), f1(loc.Rate2),
			f1(loc.User1Mbps), f1(loc.User2Mbps), f1(loc.AggregateMbps),
		})
	}
	return []Table{t}
}

// Fig2bResult reproduces Fig 2b: isolation capacities of PLC links on
// different outlets.
type Fig2bResult struct {
	Links []plc.Link
	// Estimated is the offline iperf-style estimate per link.
	Estimated []float64
}

// Fig2b synthesizes four outlet paths with the line model and runs the
// offline capacity estimation over them.
func Fig2b(opts Options) (*Fig2bResult, error) {
	opts = opts.withDefaults(1)
	rng := seed.Rand(opts.Seed, seed.Fig2bLines, 0)
	lineModel := plc.DefaultLineModel()
	// Four outlets of clearly different line quality, mirroring the
	// paper's 60–160 Mbps spread.
	paths := []plc.OutletPath{
		{ExtenderID: 0, WireLenM: 12, Branches: 1},
		{ExtenderID: 1, WireLenM: 25, Branches: 2},
		{ExtenderID: 2, WireLenM: 40, Branches: 4},
		{ExtenderID: 3, WireLenM: 55, Branches: 6},
	}
	links := lineModel.BuildLinks(paths, rng)
	estimator := plc.Estimator{Probe: plc.NoisyProbe(0.03, rng), Samples: 3}
	estimated, err := estimator.Estimate(links)
	if err != nil {
		return nil, err
	}
	return &Fig2bResult{Links: links, Estimated: estimated}, nil
}

// Tables implements Tabler.
func (r *Fig2bResult) Tables() []Table {
	t := Table{
		Caption: "Fig 2b — PLC isolation capacities across outlets (paper: 60-160 Mbps)",
		Header:  []string{"extender", "PHY Mbps", "capacity Mbps", "iperf estimate"},
	}
	for k, link := range r.Links {
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(link.ExtenderID), f1(link.PHYRateMbps),
			f1(link.CapacityMbps), f1(r.Estimated[k]),
		})
	}
	return []Table{t}
}

// Fig2cResult reproduces Fig 2c: time-fair sharing of the PLC medium as
// 1–4 extenders are active simultaneously.
type Fig2cResult struct {
	// Solo[j] is extender j's throughput alone.
	Solo []float64
	// Shared[a][j] is extender j's throughput with a+1 extenders active.
	Shared [][]float64
}

// Fig2c runs the IEEE 1901 MAC simulator with growing active sets. The
// solo and shared runs are all independent and fan out together over
// Options.Workers goroutines. Solo run j and shared run a draw from the
// distinct Fig2cSolo and Fig2cShared seed streams — under the old
// additive scheme (Seed+j vs Seed+100+active) the two loops could
// collide and replay each other's randomness.
func Fig2c(opts Options) (*Fig2cResult, error) {
	opts = opts.withDefaults(1)
	caps := []float64{160, 120, 90, 60}
	// Tasks 0..len(caps)-1 are the solo runs; the rest are the shared
	// runs with 1..len(caps) active extenders.
	nTasks := 2 * len(caps)
	rows, err := parallel.Map(opts.context(), nTasks, opts.Workers, func(t int) ([]float64, error) {
		if t < len(caps) {
			sim, err := mac1901.Simulate([]float64{caps[t]}, opts.MACDuration,
				mac1901.DefaultParams(),
				seed.Rand(opts.Seed, seed.Fig2cSolo, int64(t)))
			if err != nil {
				return nil, err
			}
			return []float64{sim.Stations[0].ThroughputMbps}, nil
		}
		active := t - len(caps) + 1
		sim, err := mac1901.Simulate(caps[:active], opts.MACDuration,
			mac1901.DefaultParams(),
			seed.Rand(opts.Seed, seed.Fig2cShared, int64(active)))
		if err != nil {
			return nil, err
		}
		row := make([]float64, active)
		for j := 0; j < active; j++ {
			row[j] = sim.Stations[j].ThroughputMbps
		}
		return row, nil
	})
	if err != nil {
		return nil, err
	}
	res := &Fig2cResult{Solo: make([]float64, len(caps))}
	for j := range caps {
		res.Solo[j] = rows[j][0]
	}
	res.Shared = rows[len(caps):]
	return res, nil
}

// Tables implements Tabler.
func (r *Fig2cResult) Tables() []Table {
	t := Table{
		Caption: "Fig 2c — PLC time-fair sharing: with A active extenders each delivers ≈ solo/A",
		Header:  []string{"active", "extender", "solo Mbps", "shared Mbps", "share of solo"},
	}
	for a, row := range r.Shared {
		for j, tp := range row {
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(a + 1), strconv.Itoa(j),
				f1(r.Solo[j]), f1(tp), f2(tp / r.Solo[j]),
			})
		}
	}
	return []Table{t}
}

// Fig3Result reproduces the Fig 3 case study: the three association
// policies on the two-extender, two-user network, plus WOLT's answer.
type Fig3Result struct {
	RSSIMbps    float64
	GreedyMbps  float64
	OptimalMbps float64
	WOLTMbps    float64
	// PerUser holds each policy's per-user throughputs.
	PerUser map[string][]float64
	// WOLTAssign is WOLT's computed association.
	WOLTAssign model.Assignment
}

// Fig3Network returns the case-study network (PLC 60/20 Mbps; WiFi rates
// 15/10 and 40/20 Mbps).
func Fig3Network() *model.Network {
	return &model.Network{
		WiFiRates: [][]float64{
			{15, 10},
			{40, 20},
		},
		PLCCaps: []float64{60, 20},
	}
}

// Fig3 evaluates the case study, resolving every policy through the
// strategy registry.
func Fig3() (*Fig3Result, error) {
	n := Fig3Network()
	res := &Fig3Result{PerUser: make(map[string][]float64)}

	policies := []struct {
		display, name string
		mbps          *float64
	}{
		{"RSSI", "rssi", &res.RSSIMbps},
		{"Greedy", "greedy", &res.GreedyMbps},
		{"Optimal", "optimal", &res.OptimalMbps},
		{"WOLT", "wolt", &res.WOLTMbps},
	}
	for _, p := range policies {
		st, err := strategy.New(p.name, strategy.Config{ModelOpts: Redistribute})
		if err != nil {
			return nil, err
		}
		assign, err := st.Solve(n)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.display, err)
		}
		eval, err := model.Evaluate(n, assign, Redistribute)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", p.display, err)
		}
		res.PerUser[p.display] = eval.PerUser
		*p.mbps = eval.Aggregate
		if p.display == "WOLT" {
			res.WOLTAssign = assign
		}
	}
	return res, nil
}

// Tables implements Tabler.
func (r *Fig3Result) Tables() []Table {
	t := Table{
		Caption: "Fig 3 — association case study (paper: RSSI 22, Greedy 30, Optimal 40 Mbps)",
		Header:  []string{"policy", "user1 Mbps", "user2 Mbps", "aggregate Mbps"},
	}
	for _, name := range []string{"RSSI", "Greedy", "Optimal", "WOLT"} {
		per := r.PerUser[name]
		var agg float64
		switch name {
		case "RSSI":
			agg = r.RSSIMbps
		case "Greedy":
			agg = r.GreedyMbps
		case "Optimal":
			agg = r.OptimalMbps
		case "WOLT":
			agg = r.WOLTMbps
		}
		t.Rows = append(t.Rows, []string{name, f1(per[0]), f1(per[1]), f1(agg)})
	}
	return []Table{t}
}
