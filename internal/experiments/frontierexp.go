package experiments

import (
	"fmt"
	"math"
	"strconv"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/topology"
)

// frontierAlphas is the α sweep of the fairness frontier, from pure
// throughput (α=0, plain wolt) through proportional fairness (α=1) to
// the max-min limit (α=∞, solved via its smooth Phase II surrogate).
var frontierAlphas = []float64{0, 0.5, 1, 2, 4, math.Inf(1)}

// FrontierRun is one α cell of the frontier: the two-phase solve under
// U_α, re-priced by the full evaluator. All fields are deterministic
// for any worker count (wall-clock latencies live in bench-frontier.sh,
// not here).
type FrontierRun struct {
	// Alpha is the utility exponent (math.Inf(1) = max-min).
	Alpha float64
	// Utility is the achieved objective value under U_α itself.
	Utility float64
	// Aggregate is the sum-rate (Mbps) the α-solve pays for its
	// fairness; Jain and MinUser price what it buys.
	Aggregate float64
	Jain      float64
	// MinUser is the worst user's throughput in Mbps.
	MinUser float64
	// Moved counts users assigned differently than the α=0 reference.
	Moved int
}

// FrontierResult is the throughput-vs-fairness frontier on one
// enterprise instance: one two-phase solve per utility member, each
// row priced by aggregate, Jain index, and worst-user throughput.
type FrontierResult struct {
	Users, Extenders int
	Runs             []FrontierRun
}

// Frontier sweeps the α-fair utility family over one enterprise
// instance (Options.Users × Options.Extenders): each α cell runs the
// full two-phase wolt-alpha solve and is priced by the sum-rate
// evaluator, fanned over Options.Workers goroutines. The α=0 cell is
// cross-checked bit-for-bit — assignment and aggregate — against a
// plain wolt solve, pinning the tentpole's compatibility contract
// inside the experiment itself. Results are bit-identical for any
// worker count (DESIGN.md §7).
func Frontier(opts Options) (*FrontierResult, error) {
	opts = opts.withDefaults(1)
	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	topo, err := topology.Generate(scen.Topology)
	if err != nil {
		return nil, err
	}
	inst := netsim.Build(topo, scen.Radio)

	res := &FrontierResult{
		Users:     inst.Net.NumUsers(),
		Extenders: inst.Net.NumExtenders(),
	}

	// The α=0 compatibility reference: plain wolt through the original
	// sum-rate path.
	wolt, err := strategy.New("wolt", strategy.Config{ModelOpts: Redistribute, Workers: opts.Workers})
	if err != nil {
		return nil, err
	}
	refAssign, err := wolt.Solve(inst.Net)
	if err != nil {
		return nil, err
	}
	refAggregate := model.Aggregate(inst.Net, refAssign, Redistribute)

	runs, err := parallel.Map(opts.context(), len(frontierAlphas), opts.Workers, func(c int) (FrontierRun, error) {
		alpha := frontierAlphas[c]
		st, err := strategy.New("wolt-alpha", strategy.Config{
			ModelOpts: Redistribute,
			Workers:   1, // per-cell solves stay sequential; the sweep is the fan-out
			Alpha:     alpha,
		})
		if err != nil {
			return FrontierRun{}, err
		}
		assign, err := st.Solve(inst.Net)
		if err != nil {
			return FrontierRun{}, fmt.Errorf("wolt-alpha α=%g: %w", alpha, err)
		}

		evalOpts := Redistribute
		evalOpts.Utility = model.AlphaFair(alpha)
		ev, err := model.Evaluate(inst.Net, assign, evalOpts)
		if err != nil {
			return FrontierRun{}, err
		}
		if alpha == 0 {
			// The tentpole's acceptance criterion, enforced in-line: the
			// α=0 member must reproduce plain wolt bit-for-bit.
			if moved := assign.Diff(refAssign); moved != 0 {
				return FrontierRun{}, fmt.Errorf(
					"experiments: α=0 frontier solve moved %d users off the wolt reference", moved)
			}
			if ev.Aggregate != refAggregate {
				return FrontierRun{}, fmt.Errorf(
					"experiments: α=0 aggregate %v != wolt reference %v", ev.Aggregate, refAggregate)
			}
		}
		return FrontierRun{
			Alpha:     alpha,
			Utility:   ev.Utility,
			Aggregate: ev.Aggregate,
			Jain:      stats.JainIndex(ev.PerUser),
			MinUser:   stats.Min(ev.PerUser),
			Moved:     assign.Diff(refAssign),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	res.Runs = runs
	return res, nil
}

// Tables implements Tabler.
func (r *FrontierResult) Tables() []Table {
	t := Table{
		Caption: fmt.Sprintf(
			"α-fair frontier — throughput vs fairness (%d users × %d extenders; α=0 is plain wolt)",
			r.Users, r.Extenders),
		Header: []string{"utility", "aggregate Mbps", "Jain", "min-user Mbps", "utility value", "moved vs α=0"},
	}
	var ref float64
	for _, run := range r.Runs {
		if run.Alpha == 0 {
			ref = run.Aggregate
		}
	}
	for _, run := range r.Runs {
		agg := f1(run.Aggregate)
		if ref > 0 {
			agg += " (" + f2(stats.Ratio(run.Aggregate, ref)) + "×)"
		}
		t.Rows = append(t.Rows, []string{
			model.AlphaFair(run.Alpha).String(), agg, f2(run.Jain),
			f1(run.MinUser), f2(run.Utility), strconv.Itoa(run.Moved),
		})
	}
	return []Table{t}
}
