package experiments

import (
	"fmt"
	"sort"
	"strconv"

	"github.com/plcwifi/wolt/internal/emu"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// testbedPolicies are the three systems compared on the paper's testbed.
func testbedPolicies() []netsim.Policy {
	return []netsim.Policy{
		netsim.WOLTPolicy{},
		netsim.GreedyPolicy{ModelOpts: Redistribute},
		netsim.RSSIPolicy{},
	}
}

// assignStatic runs one policy over a static instance using the testbed
// procedure: users join one at a time (online rule), then the controller
// recomputes once.
func assignStatic(inst *netsim.Instance, policy netsim.Policy) (model.Assignment, error) {
	assign := make(model.Assignment, len(inst.UserIDs))
	for i := range assign {
		assign[i] = model.Unassigned
	}
	for i := range inst.UserIDs {
		if err := policy.OnArrival(inst, assign, i); err != nil {
			return nil, fmt.Errorf("%s arrival: %w", policy.Name(), err)
		}
	}
	return policy.OnEpoch(inst, assign)
}

// Fig4PolicyResult is one policy's outcome over all testbed topologies.
type Fig4PolicyResult struct {
	Name string
	// ModelMbps and MeasuredMbps are per-topology aggregates: the
	// flow-level model's prediction and the emulated testbed's real-TCP
	// measurement.
	ModelMbps    []float64
	MeasuredMbps []float64
}

// Fig4Result covers the paper's Fig 4a (mean aggregate throughput per
// policy), Fig 4b (per-user win/loss fractions of WOLT vs each baseline)
// and Fig 4c (simulation-vs-testbed fidelity).
type Fig4Result struct {
	Policies []Fig4PolicyResult

	// BetterVsGreedy is the fraction of users with strictly higher
	// throughput under WOLT than under Greedy (paper: 35%); WorseVsGreedy
	// is the complement with strictly lower (paper: 65%).
	BetterVsGreedy, WorseVsGreedy float64
	// BetterVsRSSI / WorseVsRSSI mirror the RSSI comparison (paper:
	// 55% / 45%).
	BetterVsRSSI, WorseVsRSSI float64

	// ImprovementOverGreedy/RSSI are mean-aggregate ratios minus one
	// (paper: +26% and +70%).
	ImprovementOverGreedy float64
	ImprovementOverRSSI   float64
}

// fig4Trial is one topology's outcome across all policies: the model
// prediction, the emulated measurement and the per-user measured rates.
type fig4Trial struct {
	model    []float64   // per policy
	measured []float64   // per policy
	perUser  [][]float64 // [policy][user] measured Mbps
}

// Fig4 runs the emulated-testbed comparison: Options.Trials random
// topologies of the testbed scenario (default 25, as in the paper), all
// three policies, real TCP measurement per run. Trials fan out over
// Options.Workers goroutines; the model-side numbers are bit-identical
// for any worker count (the measured numbers carry the emulator's real
// TCP noise either way).
func Fig4(opts Options) (*Fig4Result, error) {
	opts = opts.withDefaults(25)
	policies := testbedPolicies()
	res := &Fig4Result{Policies: make([]Fig4PolicyResult, len(policies))}
	for p, policy := range policies {
		res.Policies[p].Name = policy.Name()
	}

	trials, err := parallel.Map(opts.context(), opts.Trials, opts.Workers, func(trial int) (fig4Trial, error) {
		scen := NewTestbedScenario(seed.Derive(opts.Seed, seed.Fig4Trial, int64(trial)))
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return fig4Trial{}, err
		}
		inst := netsim.Build(topo, scen.Radio)

		out := fig4Trial{
			model:    make([]float64, len(policies)),
			measured: make([]float64, len(policies)),
			perUser:  make([][]float64, len(policies)),
		}
		for p, policy := range policies {
			assign, err := assignStatic(inst, policy)
			if err != nil {
				return fig4Trial{}, err
			}
			run, err := emu.Run(emu.Config{
				Net:      inst.Net,
				Assign:   assign,
				Opts:     Redistribute,
				Duration: opts.EmuDuration,
			})
			if err != nil {
				return fig4Trial{}, err
			}
			out.model[p] = run.ModelAggregateMbps
			out.measured[p] = run.AggregateMbps
			users := make([]float64, len(inst.UserIDs))
			for _, f := range run.Flows {
				users[f.User] = f.MeasuredMbps
			}
			out.perUser[p] = users
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}

	// Aggregate in trial order so float summation and the per-topology
	// series are independent of scheduling.
	var betterG, worseG, betterR, worseR, totalUsers int
	for _, tr := range trials {
		for p := range policies {
			res.Policies[p].ModelMbps = append(res.Policies[p].ModelMbps, tr.model[p])
			res.Policies[p].MeasuredMbps = append(res.Policies[p].MeasuredMbps, tr.measured[p])
		}
		// Per-user win/loss fractions (Fig 4b): WOLT is policy 0, Greedy
		// 1, RSSI 2. A 2% band absorbs emulation measurement noise.
		const band = 0.02
		for i := range tr.perUser[0] {
			totalUsers++
			switch {
			case tr.perUser[0][i] > tr.perUser[1][i]*(1+band):
				betterG++
			case tr.perUser[0][i] < tr.perUser[1][i]*(1-band):
				worseG++
			}
			switch {
			case tr.perUser[0][i] > tr.perUser[2][i]*(1+band):
				betterR++
			case tr.perUser[0][i] < tr.perUser[2][i]*(1-band):
				worseR++
			}
		}
	}

	if totalUsers > 0 {
		res.BetterVsGreedy = float64(betterG) / float64(totalUsers)
		res.WorseVsGreedy = float64(worseG) / float64(totalUsers)
		res.BetterVsRSSI = float64(betterR) / float64(totalUsers)
		res.WorseVsRSSI = float64(worseR) / float64(totalUsers)
	}
	wolt := stats.Mean(res.Policies[0].MeasuredMbps)
	res.ImprovementOverGreedy = stats.Ratio(wolt, stats.Mean(res.Policies[1].MeasuredMbps)) - 1
	res.ImprovementOverRSSI = stats.Ratio(wolt, stats.Mean(res.Policies[2].MeasuredMbps)) - 1
	return res, nil
}

// Tables implements Tabler.
func (r *Fig4Result) Tables() []Table {
	a := Table{
		Caption: "Fig 4a — emulated testbed, mean aggregate throughput (paper: WOLT +26% vs Greedy, +70% vs RSSI)",
		Header:  []string{"policy", "mean measured Mbps", "mean model Mbps", "topologies"},
	}
	for _, p := range r.Policies {
		a.Rows = append(a.Rows, []string{
			p.Name, f1(stats.Mean(p.MeasuredMbps)), f1(stats.Mean(p.ModelMbps)),
			strconv.Itoa(len(p.MeasuredMbps)),
		})
	}
	b := Table{
		Caption: "Fig 4b — per-user effects of WOLT (paper: 35% better vs Greedy, 55% better vs RSSI)",
		Header:  []string{"comparison", "better", "worse", "unchanged"},
		Rows: [][]string{
			{"WOLT vs Greedy", pct(r.BetterVsGreedy), pct(r.WorseVsGreedy),
				pct(1 - r.BetterVsGreedy - r.WorseVsGreedy)},
			{"WOLT vs RSSI", pct(r.BetterVsRSSI), pct(r.WorseVsRSSI),
				pct(1 - r.BetterVsRSSI - r.WorseVsRSSI)},
		},
	}
	c := Table{
		Caption: "Fig 4c — fidelity: emulated-testbed measurement vs flow-level model (WOLT runs)",
		Header:  []string{"topology", "model Mbps", "measured Mbps", "ratio"},
	}
	for k := range r.Policies[0].ModelMbps {
		c.Rows = append(c.Rows, []string{
			strconv.Itoa(k), f1(r.Policies[0].ModelMbps[k]), f1(r.Policies[0].MeasuredMbps[k]),
			f2(stats.Ratio(r.Policies[0].MeasuredMbps[k], r.Policies[0].ModelMbps[k])),
		})
	}
	return []Table{a, b, c}
}

// Fig5User is one user's throughput under WOLT and Greedy.
type Fig5User struct {
	User       int
	WOLTMbps   float64
	GreedyMbps float64
}

// Fig5Result covers Fig 5a/5b: the per-user WOLT-vs-Greedy comparison for
// the three worst and three best WOLT users on one testbed topology.
type Fig5Result struct {
	Worst []Fig5User
	Best  []Fig5User
	// WorstDeltaMbps is the total throughput the worst-3 users lose under
	// WOLT relative to Greedy (paper: ≈6 Mbps); BestDeltaMbps is the
	// total the best-3 gain (paper: ≈38 Mbps).
	WorstDeltaMbps float64
	BestDeltaMbps  float64
}

// Fig5 measures per-user effects on one emulated-testbed topology.
func Fig5(opts Options) (*Fig5Result, error) {
	opts = opts.withDefaults(1)
	scen := NewTestbedScenario(opts.Seed)
	topo, err := topology.Generate(scen.Topology)
	if err != nil {
		return nil, err
	}
	inst := netsim.Build(topo, scen.Radio)

	perUser := make(map[string][]float64)
	for _, policy := range []netsim.Policy{netsim.WOLTPolicy{}, netsim.GreedyPolicy{ModelOpts: Redistribute}} {
		assign, err := assignStatic(inst, policy)
		if err != nil {
			return nil, err
		}
		run, err := emu.Run(emu.Config{
			Net:      inst.Net,
			Assign:   assign,
			Opts:     Redistribute,
			Duration: opts.EmuDuration,
		})
		if err != nil {
			return nil, err
		}
		users := make([]float64, len(inst.UserIDs))
		for _, f := range run.Flows {
			users[f.User] = f.MeasuredMbps
		}
		perUser[policy.Name()] = users
	}

	users := make([]Fig5User, len(inst.UserIDs))
	for i := range users {
		users[i] = Fig5User{
			User:       i,
			WOLTMbps:   perUser["WOLT"][i],
			GreedyMbps: perUser["Greedy"][i],
		}
	}
	sort.Slice(users, func(i, j int) bool { return users[i].WOLTMbps < users[j].WOLTMbps })
	k := 3
	if len(users) < 2*k {
		k = len(users) / 2
	}
	res := &Fig5Result{
		Worst: append([]Fig5User(nil), users[:k]...),
		Best:  append([]Fig5User(nil), users[len(users)-k:]...),
	}
	for _, u := range res.Worst {
		res.WorstDeltaMbps += u.WOLTMbps - u.GreedyMbps
	}
	for _, u := range res.Best {
		res.BestDeltaMbps += u.WOLTMbps - u.GreedyMbps
	}
	return res, nil
}

// Tables implements Tabler.
func (r *Fig5Result) Tables() []Table {
	mk := func(caption string, users []Fig5User, delta float64) Table {
		t := Table{
			Caption: caption,
			Header:  []string{"user", "WOLT Mbps", "Greedy Mbps", "delta"},
		}
		for _, u := range users {
			t.Rows = append(t.Rows, []string{
				strconv.Itoa(u.User), f1(u.WOLTMbps), f1(u.GreedyMbps), f1(u.WOLTMbps - u.GreedyMbps),
			})
		}
		t.Rows = append(t.Rows, []string{"total Δ", "", "", f1(delta)})
		return t
	}
	return []Table{
		mk("Fig 5a — the three WOLT-worst users (paper: modest total loss ≈ -6 Mbps)", r.Worst, r.WorstDeltaMbps),
		mk("Fig 5b — the three WOLT-best users (paper: total gain ≈ +38 Mbps)", r.Best, r.BestDeltaMbps),
	}
}
