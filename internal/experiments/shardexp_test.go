package experiments

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// stripLatency zeroes the wall-clock fields, which are real timings and
// therefore outside the determinism contract.
func stripLatency(r *ShardResult) *ShardResult {
	out := &ShardResult{Extenders: r.Extenders, Trials: r.Trials}
	for _, run := range r.Runs {
		run.MeanJoinMicros = 0
		run.P95JoinMicros = 0
		out.Runs = append(out.Runs, run)
	}
	return out
}

// TestShardDeterministicAcrossWorkers pins the acceptance criterion for
// the shard experiment: the throughput gap between the sharded plane and
// the global solve is bit-identical for Workers=1 and Workers=8. (Join
// latencies are measured wall-clock and excluded.)
func TestShardDeterministicAcrossWorkers(t *testing.T) {
	opts := parOpts(1)
	opts.Trials = 2
	seq, err := Shard(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 8
	par, err := Shard(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripLatency(seq), stripLatency(par)) {
		t.Errorf("Workers=1 and Workers=8 differ:\n%+v\nvs\n%+v", stripLatency(seq), stripLatency(par))
	}
}

// TestShardBaselineRow sanity-checks the K=1 rows: one shard owning
// every extender IS the global solve, so its gap is exactly zero.
func TestShardBaselineRow(t *testing.T) {
	opts := parOpts(4)
	opts.Trials = 2
	res, err := Shard(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) == 0 {
		t.Fatal("no runs")
	}
	for _, run := range res.Runs {
		if run.Shards == 1 {
			if run.GapPct != 0 {
				t.Errorf("K=1 gap = %v%%, want exactly 0 (it is the baseline)", run.GapPct)
			}
			if run.GlobalMbps != run.ShardedMbps {
				t.Errorf("K=1 global %v != sharded %v", run.GlobalMbps, run.ShardedMbps)
			}
		}
		if run.GlobalMbps <= 0 {
			t.Errorf("users=%d shards=%d: non-positive global aggregate %v",
				run.Users, run.Shards, run.GlobalMbps)
		}
	}
	if tables := res.Tables(); len(tables) != 1 || len(tables[0].Rows) != len(res.Runs) {
		t.Error("Tables() does not cover every run")
	}
}

// TestShardHonorsCancelledContext mirrors the cancellation contract of
// the other drivers.
func TestShardHonorsCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := parOpts(4)
	opts.Ctx = ctx
	if _, err := Shard(opts); !errors.Is(err, context.Canceled) {
		t.Errorf("got %v, want context.Canceled", err)
	}
}
