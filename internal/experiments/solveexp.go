package experiments

import (
	"fmt"
	"strconv"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/topology"
)

// SolveRun is one strategy's instrumented solve on the shared instance.
type SolveRun struct {
	Strategy  string
	Stats     strategy.Stats
	Aggregate float64
	// Err records strategies that refuse the instance (e.g. the
	// exhaustive search's size guard) instead of aborting the table.
	Err string
}

// SolveResult is the per-strategy solve instrumentation experiment: one
// enterprise-scale instance solved by every registry strategy (or the
// one named in Options.Strategy), with the strategy.Stats observer
// records alongside the achieved aggregate throughput.
type SolveResult struct {
	Users, Extenders int
	Runs             []SolveRun
}

// Solve builds one enterprise instance (Options.Users × Options.Extenders)
// and solves it with each strategy, capturing per-solve Stats through
// the observer hook. Options.Strategy restricts the run to one registry
// name; Options.Workers feeds WOLT's intra-solve Phase II parallelism
// (bit-identical results for any value, DESIGN.md §7).
func Solve(opts Options) (*SolveResult, error) {
	opts = opts.withDefaults(1)
	names := strategy.Names()
	if opts.Strategy != "" {
		if _, err := strategy.New(opts.Strategy, strategy.Config{}); err != nil {
			return nil, err
		}
		names = []string{opts.Strategy}
	}

	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	topo, err := topology.Generate(scen.Topology)
	if err != nil {
		return nil, err
	}
	inst := netsim.Build(topo, scen.Radio)

	res := &SolveResult{Users: inst.Net.NumUsers(), Extenders: inst.Net.NumExtenders()}
	for _, name := range names {
		var got []strategy.Stats
		st, err := strategy.New(name, strategy.Config{
			ModelOpts: Redistribute,
			Workers:   opts.Workers,
			Seed:      opts.Seed,
			Observer:  func(s strategy.Stats) { got = append(got, s) },
		})
		if err != nil {
			return nil, err
		}
		run := SolveRun{Strategy: name}
		assign, err := st.Solve(inst.Net)
		if err != nil {
			run.Err = err.Error()
		} else {
			if len(got) == 0 {
				return nil, fmt.Errorf("experiments: strategy %q emitted no stats", name)
			}
			run.Stats = got[len(got)-1]
			run.Aggregate = model.Aggregate(inst.Net, assign, Redistribute)
		}
		res.Runs = append(res.Runs, run)
	}
	return res, nil
}

// Tables implements Tabler.
func (r *SolveResult) Tables() []Table {
	t := Table{
		Caption: fmt.Sprintf("Per-solve strategy stats (%d users × %d extenders)", r.Users, r.Extenders),
		Header: []string{"strategy", "phase1 ms", "phase2 ms", "total ms",
			"augment", "iters", "sweeps", "evals", "probes", "aggregate Mbps"},
	}
	ms := func(d time.Duration) string {
		return strconv.FormatFloat(float64(d)/float64(time.Millisecond), 'f', 2, 64)
	}
	for _, run := range r.Runs {
		if run.Err != "" {
			t.Rows = append(t.Rows, []string{run.Strategy, "-", "-", "-", "-", "-", "-", "-", "-",
				"error: " + run.Err})
			continue
		}
		s := run.Stats
		t.Rows = append(t.Rows, []string{
			run.Strategy, ms(s.Phase1), ms(s.Phase2), ms(s.Total),
			strconv.Itoa(s.HungarianAugmentations), strconv.Itoa(s.Phase2Iterations),
			strconv.Itoa(s.PolishSweeps), strconv.Itoa(s.Evaluations),
			strconv.Itoa(s.DeltaProbes), f1(run.Aggregate),
		})
	}
	return []Table{t}
}
