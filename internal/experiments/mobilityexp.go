package experiments

import (
	"fmt"
	"strconv"

	"github.com/plcwifi/wolt/internal/mobility"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/topology"
)

// MobilityTick is the network state at one mobility tick for all
// strategies.
type MobilityTick struct {
	Tick int
	// Aggregate throughput per strategy, Mbps. Anytime is the warm
	// local-search world (wolt-hillclimb under a probe budget): every
	// tick repairs the previous association instead of re-solving.
	Static, Roaming, FullWOLT, Budgeted, Anytime float64
	// Moves this tick per re-associating strategy.
	RoamingMoves, FullMoves, BudgetedMoves, AnytimeMoves int
}

// MobilityResult is the mobility experiment (beyond the paper): users
// walk (random waypoint), rates drift, and five re-association
// strategies are compared — assign-once, per-tick strongest-signal
// roaming, per-tick full WOLT recomputation, the budgeted incremental
// WOLT extension, and the anytime warm local search.
type MobilityResult struct {
	Ticks []MobilityTick
	// Budget is the per-tick move budget of the incremental strategy.
	Budget int
}

// Mobility runs the mobility experiment: Options.Users walkers on the
// enterprise floor for Options.Trials ticks of 10 simulated seconds
// (default 20 ticks). Ticks are inherently sequential (each continues
// the walkers' motion), but the five strategies own identical,
// independent worlds, so within a tick the worlds advance concurrently
// on Options.Workers goroutines with bit-identical results for any
// worker count.
func Mobility(opts Options) (*MobilityResult, error) {
	opts = opts.withDefaults(20)
	const (
		tickSeconds = 10.0
		moveBudget  = 3
	)

	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	// Each strategy owns an identical copy of the world so motion is
	// replayed identically. The per-tick re-association rules come from
	// the strategy registry: "" = never reassign, "rssi" = roam to the
	// strongest extender, "wolt" = full recompute, "wolt-incremental" =
	// budgeted moves toward the WOLT target.
	type world struct {
		topo     *topology.Topology
		fleet    *mobility.Fleet
		assign   model.Assignment
		strategy strategy.Reassigner // nil for the static world
	}
	newWorld := func(name string) (*world, error) {
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return nil, err
		}
		mcfg := mobility.DefaultConfig()
		mcfg.Seed = opts.Seed
		fleet, err := mobility.NewFleet(topo, mcfg)
		if err != nil {
			return nil, err
		}
		w := &world{topo: topo, fleet: fleet}
		if name != "" {
			cfg := strategy.Config{
				ModelOpts: Redistribute,
				Budget:    strategy.Budget{Moves: moveBudget},
				Seed:      opts.Seed,
			}
			if name == "wolt-hillclimb" {
				// The anytime world is probe-budgeted, not move-capped:
				// the comparison it prices is "full solve every tick"
				// vs "O(probes) warm repair every tick".
				cfg.Budget = strategy.Budget{Probes: anytimeEpochProbes}
			}
			st, err := strategy.New(name, cfg)
			if err != nil {
				return nil, err
			}
			re, ok := st.(strategy.Reassigner)
			if !ok {
				return nil, fmt.Errorf("experiments: strategy %q cannot reassign: %w",
					name, strategy.ErrNoOnlineForm)
			}
			w.strategy = re
		}
		return w, nil
	}
	// static, roaming, full, budgeted, anytime
	worldStrategies := []string{"", "rssi", "wolt", "wolt-incremental", "wolt-hillclimb"}
	worlds := make([]*world, len(worldStrategies))
	for k, name := range worldStrategies {
		w, err := newWorld(name)
		if err != nil {
			return nil, err
		}
		worlds[k] = w
	}

	// Initial association: WOLT everywhere (roaming starts from the same
	// state and drifts by signal afterwards).
	for _, w := range worlds {
		inst := netsim.Build(w.topo, scen.Radio)
		initial, err := strategy.New("wolt", strategy.Config{})
		if err != nil {
			return nil, err
		}
		w.assign, err = initial.Solve(inst.Net)
		if err != nil {
			return nil, err
		}
	}

	// stepOut is one world's outcome at one tick.
	type stepOut struct {
		aggregate float64
		moves     int
	}
	ctx := opts.context()
	result := &MobilityResult{Budget: moveBudget}
	for tick := 0; tick < opts.Trials; tick++ {
		// Each task owns world k outright (its fleet RNG, topology and
		// assignment are touched by no other task), so concurrent
		// stepping cannot reorder any random draws.
		steps, err := parallel.Map(ctx, len(worlds), opts.Workers, func(k int) (stepOut, error) {
			w := worlds[k]
			if err := w.fleet.Advance(tickSeconds); err != nil {
				return stepOut{}, err
			}
			inst := netsim.Build(w.topo, scen.Radio)
			var out stepOut
			if w.strategy != nil {
				next, err := w.strategy.Reassign(inst.Net, w.assign)
				if err != nil {
					return stepOut{}, err
				}
				out.moves = w.assign.Diff(next)
				w.assign = next
			}
			out.aggregate = model.Aggregate(inst.Net, w.assign, Redistribute)
			return out, nil
		})
		if err != nil {
			return nil, err
		}
		result.Ticks = append(result.Ticks, MobilityTick{
			Tick:          tick + 1,
			Static:        steps[0].aggregate,
			Roaming:       steps[1].aggregate,
			FullWOLT:      steps[2].aggregate,
			Budgeted:      steps[3].aggregate,
			Anytime:       steps[4].aggregate,
			RoamingMoves:  steps[1].moves,
			FullMoves:     steps[2].moves,
			BudgetedMoves: steps[3].moves,
			AnytimeMoves:  steps[4].moves,
		})
	}
	return result, nil
}

// Means returns the per-strategy mean aggregates.
func (r *MobilityResult) Means() (staticMean, roaming, full, budgeted float64) {
	var s, ro, fu, bu []float64
	for _, t := range r.Ticks {
		s = append(s, t.Static)
		ro = append(ro, t.Roaming)
		fu = append(fu, t.FullWOLT)
		bu = append(bu, t.Budgeted)
	}
	return stats.Mean(s), stats.Mean(ro), stats.Mean(fu), stats.Mean(bu)
}

// TotalMoves returns the per-strategy total re-associations.
func (r *MobilityResult) TotalMoves() (roaming, full, budgeted int) {
	for _, t := range r.Ticks {
		roaming += t.RoamingMoves
		full += t.FullMoves
		budgeted += t.BudgetedMoves
	}
	return roaming, full, budgeted
}

// AnytimeSummary returns the anytime world's mean aggregate and total
// re-associations. (Means/TotalMoves keep their original four- and
// three-value signatures for existing callers.)
func (r *MobilityResult) AnytimeSummary() (mean float64, moves int) {
	var a []float64
	for _, t := range r.Ticks {
		a = append(a, t.Anytime)
		moves += t.AnytimeMoves
	}
	return stats.Mean(a), moves
}

// Tables implements Tabler.
func (r *MobilityResult) Tables() []Table {
	perTick := Table{
		Caption: "Mobility — aggregate throughput under random-waypoint motion (10 s ticks)",
		Header: []string{"tick", "static Mbps", "roaming Mbps", "WOLT full Mbps",
			"WOLT budget Mbps", "anytime Mbps", "full moves", "budget moves", "anytime moves"},
	}
	for _, t := range r.Ticks {
		perTick.Rows = append(perTick.Rows, []string{
			strconv.Itoa(t.Tick), f1(t.Static), f1(t.Roaming), f1(t.FullWOLT), f1(t.Budgeted), f1(t.Anytime),
			strconv.Itoa(t.FullMoves), strconv.Itoa(t.BudgetedMoves), strconv.Itoa(t.AnytimeMoves),
		})
	}
	sMean, roMean, fuMean, buMean := r.Means()
	roMoves, fuMoves, buMoves := r.TotalMoves()
	anyMean, anyMoves := r.AnytimeSummary()
	summary := Table{
		Caption: "Mobility — summary (budgeted = at most " + strconv.Itoa(r.Budget) + " moves/tick; anytime = warm local search, probe-budgeted)",
		Header:  []string{"strategy", "mean Mbps", "total moves"},
		Rows: [][]string{
			{"static (assign once)", f1(sMean), "0"},
			{"roaming RSSI", f1(roMean), strconv.Itoa(roMoves)},
			{"WOLT full recompute", f1(fuMean), strconv.Itoa(fuMoves)},
			{"WOLT incremental", f1(buMean), strconv.Itoa(buMoves)},
			{"WOLT anytime (hillclimb)", f1(anyMean), strconv.Itoa(anyMoves)},
		},
	}
	return []Table{summary, perTick}
}
