package experiments

import (
	"strconv"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/mobility"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// MobilityTick is the network state at one mobility tick for all
// strategies.
type MobilityTick struct {
	Tick int
	// Aggregate throughput per strategy, Mbps.
	Static, Roaming, FullWOLT, Budgeted float64
	// Moves this tick per re-associating strategy.
	RoamingMoves, FullMoves, BudgetedMoves int
}

// MobilityResult is the mobility experiment (beyond the paper): users
// walk (random waypoint), rates drift, and four re-association
// strategies are compared — assign-once, per-tick strongest-signal
// roaming, per-tick full WOLT recomputation, and the budgeted
// incremental WOLT extension.
type MobilityResult struct {
	Ticks []MobilityTick
	// Budget is the per-tick move budget of the incremental strategy.
	Budget int
}

// Mobility runs the mobility experiment: Options.Users walkers on the
// enterprise floor for Options.Trials ticks of 10 simulated seconds
// (default 20 ticks).
func Mobility(opts Options) (*MobilityResult, error) {
	opts = opts.withDefaults(20)
	const (
		tickSeconds = 10.0
		moveBudget  = 3
	)

	scen := NewEnterpriseScenario(opts.Extenders, opts.Users, opts.Seed)
	// Each strategy owns an identical copy of the world so motion is
	// replayed identically.
	type world struct {
		topo   *topology.Topology
		fleet  *mobility.Fleet
		assign model.Assignment
	}
	newWorld := func() (*world, error) {
		topo, err := topology.Generate(scen.Topology)
		if err != nil {
			return nil, err
		}
		mcfg := mobility.DefaultConfig()
		mcfg.Seed = opts.Seed
		fleet, err := mobility.NewFleet(topo, mcfg)
		if err != nil {
			return nil, err
		}
		return &world{topo: topo, fleet: fleet}, nil
	}
	worlds := make([]*world, 4) // static, roaming, full, budgeted
	for k := range worlds {
		w, err := newWorld()
		if err != nil {
			return nil, err
		}
		worlds[k] = w
	}

	// Initial association: WOLT everywhere (roaming starts from the same
	// state and drifts by signal afterwards).
	for _, w := range worlds {
		inst := netsim.Build(w.topo, scen.Radio)
		res, err := core.Assign(inst.Net, core.Options{})
		if err != nil {
			return nil, err
		}
		w.assign = res.Assign
	}

	result := &MobilityResult{Budget: moveBudget}
	for tick := 0; tick < opts.Trials; tick++ {
		var mt MobilityTick
		mt.Tick = tick + 1
		for k, w := range worlds {
			if err := w.fleet.Advance(tickSeconds); err != nil {
				return nil, err
			}
			inst := netsim.Build(w.topo, scen.Radio)
			switch k {
			case 0: // static: never re-associate
			case 1: // roaming: strongest signal each tick
				moves := 0
				for i := range w.assign {
					best, bestSig := w.assign[i], -1e18
					for j, sig := range inst.RSSI[i] {
						if inst.Net.WiFiRates[i][j] <= 0 {
							continue
						}
						if sig > bestSig {
							best, bestSig = j, sig
						}
					}
					if best != w.assign[i] {
						w.assign[i] = best
						moves++
					}
				}
				mt.RoamingMoves = moves
			case 2: // full WOLT recomputation
				res, err := core.Assign(inst.Net, core.Options{})
				if err != nil {
					return nil, err
				}
				mt.FullMoves = w.assign.Diff(res.Assign)
				w.assign = res.Assign
			case 3: // budgeted incremental WOLT
				res, err := core.AssignIncremental(inst.Net, w.assign, moveBudget, core.Options{}, Redistribute)
				if err != nil {
					return nil, err
				}
				mt.BudgetedMoves = len(res.Moves)
				w.assign = res.Assign
			}
			agg := model.Aggregate(inst.Net, w.assign, Redistribute)
			switch k {
			case 0:
				mt.Static = agg
			case 1:
				mt.Roaming = agg
			case 2:
				mt.FullWOLT = agg
			case 3:
				mt.Budgeted = agg
			}
		}
		result.Ticks = append(result.Ticks, mt)
	}
	return result, nil
}

// Means returns the per-strategy mean aggregates.
func (r *MobilityResult) Means() (staticMean, roaming, full, budgeted float64) {
	var s, ro, fu, bu []float64
	for _, t := range r.Ticks {
		s = append(s, t.Static)
		ro = append(ro, t.Roaming)
		fu = append(fu, t.FullWOLT)
		bu = append(bu, t.Budgeted)
	}
	return stats.Mean(s), stats.Mean(ro), stats.Mean(fu), stats.Mean(bu)
}

// TotalMoves returns the per-strategy total re-associations.
func (r *MobilityResult) TotalMoves() (roaming, full, budgeted int) {
	for _, t := range r.Ticks {
		roaming += t.RoamingMoves
		full += t.FullMoves
		budgeted += t.BudgetedMoves
	}
	return roaming, full, budgeted
}

// Tables implements Tabler.
func (r *MobilityResult) Tables() []Table {
	perTick := Table{
		Caption: "Mobility — aggregate throughput under random-waypoint motion (10 s ticks)",
		Header: []string{"tick", "static Mbps", "roaming Mbps", "WOLT full Mbps",
			"WOLT budget Mbps", "full moves", "budget moves"},
	}
	for _, t := range r.Ticks {
		perTick.Rows = append(perTick.Rows, []string{
			strconv.Itoa(t.Tick), f1(t.Static), f1(t.Roaming), f1(t.FullWOLT), f1(t.Budgeted),
			strconv.Itoa(t.FullMoves), strconv.Itoa(t.BudgetedMoves),
		})
	}
	sMean, roMean, fuMean, buMean := r.Means()
	roMoves, fuMoves, buMoves := r.TotalMoves()
	summary := Table{
		Caption: "Mobility — summary (budgeted = at most " + strconv.Itoa(r.Budget) + " moves/tick)",
		Header:  []string{"strategy", "mean Mbps", "total moves"},
		Rows: [][]string{
			{"static (assign once)", f1(sMean), "0"},
			{"roaming RSSI", f1(roMean), strconv.Itoa(roMoves)},
			{"WOLT full recompute", f1(fuMean), strconv.Itoa(fuMoves)},
			{"WOLT incremental", f1(buMean), strconv.Itoa(buMoves)},
		},
	}
	return []Table{summary, perTick}
}
