package parallel

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefault(t *testing.T) {
	if w := Workers(0); w < 1 {
		t.Fatalf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-3); w < 1 {
		t.Fatalf("Workers(-3) = %d, want >= 1", w)
	}
	if w := Workers(7); w != 7 {
		t.Fatalf("Workers(7) = %d, want 7", w)
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 100} {
		n := 57
		hits := make([]int32, n)
		err := ForEach(context.Background(), n, workers, func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, h)
			}
		}
	}
}

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		out, err := Map(context.Background(), 40, workers, func(i int) (int, error) {
			return i * i, nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(out) != 40 {
			t.Fatalf("workers=%d: %d results", workers, len(out))
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestMapEmpty(t *testing.T) {
	out, err := Map(context.Background(), 0, 4, func(i int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("empty map: out=%v err=%v", out, err)
	}
}

// TestForEachLowestIndexError asserts the deterministic error contract:
// regardless of scheduling, the error reported is the one from the lowest
// failing index.
func TestForEachLowestIndexError(t *testing.T) {
	failAt := map[int]bool{13: true, 31: true, 47: true}
	for _, workers := range []int{1, 2, 8} {
		for run := 0; run < 10; run++ {
			err := ForEach(context.Background(), 64, workers, func(i int) error {
				if failAt[i] {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 13 failed" {
				t.Fatalf("workers=%d run=%d: err = %v, want task 13 failed", workers, run, err)
			}
		}
	}
}

// TestForEachStopsPromptlyOnError asserts that after the first failure no
// backlog of tasks is dispatched: each worker may finish its in-flight
// task and claim at most one more.
func TestForEachStopsPromptlyOnError(t *testing.T) {
	const n, workers = 10_000, 4
	var executed atomic.Int64
	sentinel := errors.New("boom")
	err := ForEach(context.Background(), n, workers, func(i int) error {
		executed.Add(1)
		if i == 0 {
			return sentinel
		}
		time.Sleep(time.Millisecond)
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want sentinel", err)
	}
	if got := executed.Load(); got > 3*workers {
		t.Errorf("executed %d tasks after early failure, want <= %d", got, 3*workers)
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var executed atomic.Int64
	release := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- ForEach(ctx, 10_000, 4, func(i int) error {
			executed.Add(1)
			if i < 4 {
				<-release // park the first wave until cancel fires
			}
			return nil
		})
	}()
	cancel()
	close(release)
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("ForEach did not return after cancellation")
	}
	if got := executed.Load(); got > 100 {
		t.Errorf("executed %d tasks despite cancellation, want a handful", got)
	}
}

func TestForEachPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var executed atomic.Int64
	err := ForEach(ctx, 100, 1, func(i int) error {
		executed.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if executed.Load() != 0 {
		t.Errorf("executed %d tasks on a dead context", executed.Load())
	}
}

// TestForEachDeterministicAcrossWorkerCounts is the core contract: with
// index-derived work, 1 worker and N workers produce identical outputs.
func TestForEachDeterministicAcrossWorkerCounts(t *testing.T) {
	compute := func(workers int) []float64 {
		out := make([]float64, 200)
		err := ForEach(context.Background(), len(out), workers, func(i int) error {
			v := float64(i)
			for k := 0; k < 100; k++ {
				v = v*1.0000001 + float64(k%7)
			}
			out[i] = v
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	seq := compute(1)
	for _, workers := range []int{2, 3, 16} {
		par := compute(workers)
		for i := range seq {
			if seq[i] != par[i] {
				t.Fatalf("workers=%d: out[%d] = %v, want %v (bit-identical)", workers, i, par[i], seq[i])
			}
		}
	}
}
