// Package parallel provides a bounded, deterministic worker pool for
// fanning out independent index-range work: parameter-sweep grid points,
// simulation trials, per-topology solves.
//
// Determinism contract: tasks are identified by their index in [0, n),
// results land at their index (Map) or wherever the callback writes for
// its index (ForEach), and the per-task work must derive any randomness
// from the task index alone (the convention throughout this repo is
// seed = base seed + task index). Under that contract a run with one
// worker and a run with N workers produce bit-identical results — the
// scheduler only changes *when* a task runs, never *what* it computes.
//
// Error contract: the error returned is the one raised by the lowest
// failing index, which keeps error results deterministic too. Because
// indices are dispatched in increasing order, every index below a
// dispatched failing index has itself been dispatched and run to
// completion, so the lowest failing index is always observed. After the
// first failure no new tasks start; in-flight tasks finish.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a configured worker count: non-positive values select
// runtime.GOMAXPROCS(0), the pool's default size.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// ForEach invokes fn(i) for every i in [0, n) using at most
// Workers(workers) concurrent goroutines. It returns the error of the
// lowest failing index, or ctx.Err() if the context was cancelled before
// all tasks ran. Once a task fails or ctx is cancelled, no further tasks
// are dispatched.
//
// fn is called from multiple goroutines (never twice for the same index);
// it must not mutate state shared across indices.
func ForEach(ctx context.Context, n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	next.Store(-1)
	fail := func(i int, err error) {
		mu.Lock()
		if i < firstIdx {
			firstIdx, firstErr = i, err
		}
		mu.Unlock()
		cancel()
	}
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				// Check for cancellation before claiming an index: a
				// claimed index always runs, which is what makes the
				// reported error deterministic — every index below a
				// dispatched failure has itself been dispatched, so the
				// globally lowest failing index is always observed.
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1))
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					fail(i, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return firstErr
	}
	// Our own cancel() only fires alongside a recorded error, so any
	// remaining context error came from the caller.
	return ctx.Err()
}

// Map invokes fn(i) for every i in [0, n) using at most Workers(workers)
// concurrent goroutines and returns the results in index order. On error
// the partial results are discarded and the error of the lowest failing
// index is returned (see ForEach).
func Map[T any](ctx context.Context, n, workers int, fn func(i int) (T, error)) ([]T, error) {
	if n < 0 {
		n = 0
	}
	out := make([]T, n)
	err := ForEach(ctx, n, workers, func(i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
