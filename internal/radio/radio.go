// Package radio models the WiFi physical layer between users and PLC-WiFi
// extenders: log-distance path loss, received signal strength (RSSI), and
// the mapping from RSSI to the 802.11 PHY bit-rate selected by rate
// adaptation.
//
// The paper (§V-A) uses "a simple model ... where the channel quality is a
// function of the distance between the extender and the user", citing the
// Cisco Aironet 1200 data sheet; this package implements that model as a
// log-distance path-loss channel feeding an MCS threshold table.
package radio

import (
	"fmt"
	"math"
	"sort"
)

// Channel is a log-distance path-loss channel:
//
//	PL(d) = PL(d0) + 10·n·log10(d/d0)
//	RSSI  = TxPower - PL(d)
//
// with d clamped below ReferenceDistance to avoid near-field singularities.
type Channel struct {
	// TxPowerDBm is the extender's transmit power. Typical consumer
	// extenders transmit at about 20 dBm.
	TxPowerDBm float64
	// PathLossExponent n: 2 in free space, 3–4 indoors with obstructions.
	PathLossExponent float64
	// ReferenceLossDB is PL(d0), the path loss at the reference distance.
	// About 40 dB at 1 m for 2.4 GHz.
	ReferenceLossDB float64
	// ReferenceDistanceM is d0 in meters.
	ReferenceDistanceM float64
}

// DefaultChannel returns an indoor-office channel (2.4 GHz, n=3).
func DefaultChannel() Channel {
	return Channel{
		TxPowerDBm:         20,
		PathLossExponent:   3,
		ReferenceLossDB:    40,
		ReferenceDistanceM: 1,
	}
}

// PathLossDB returns the path loss in dB at distance d meters.
func (c Channel) PathLossDB(d float64) float64 {
	if d < c.ReferenceDistanceM {
		d = c.ReferenceDistanceM
	}
	return c.ReferenceLossDB + 10*c.PathLossExponent*math.Log10(d/c.ReferenceDistanceM)
}

// RSSIDBm returns the received signal strength at distance d meters.
func (c Channel) RSSIDBm(d float64) float64 {
	return c.TxPowerDBm - c.PathLossDB(d)
}

// RateStep is one row of a rate table: the minimum RSSI at which a PHY rate
// is selected by rate adaptation.
type RateStep struct {
	MinRSSIDBm float64
	RateMbps   float64
}

// RateTable maps RSSI to the 802.11 PHY rate, mirroring receiver
// sensitivity tables. Steps must be sorted by descending MinRSSIDBm.
type RateTable struct {
	steps []RateStep
}

// NewRateTable builds a rate table from steps; the steps are copied and
// sorted by descending RSSI threshold. It returns an error if steps is
// empty or contains a non-positive rate.
func NewRateTable(steps []RateStep) (*RateTable, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("radio: empty rate table")
	}
	cp := append([]RateStep(nil), steps...)
	for _, s := range cp {
		if s.RateMbps <= 0 {
			return nil, fmt.Errorf("radio: non-positive rate %v in table", s.RateMbps)
		}
	}
	sort.Slice(cp, func(i, k int) bool { return cp[i].MinRSSIDBm > cp[k].MinRSSIDBm })
	return &RateTable{steps: cp}, nil
}

// Default80211g returns the 802.11g sensitivity table used in the Cisco
// Aironet 1200 data sheet the paper cites: 54 Mbps near the AP down to
// 6 Mbps at cell edge, then out of range.
func Default80211g() *RateTable {
	t, err := NewRateTable([]RateStep{
		{MinRSSIDBm: -71, RateMbps: 54},
		{MinRSSIDBm: -73, RateMbps: 48},
		{MinRSSIDBm: -77, RateMbps: 36},
		{MinRSSIDBm: -81, RateMbps: 24},
		{MinRSSIDBm: -84, RateMbps: 18},
		{MinRSSIDBm: -86, RateMbps: 12},
		{MinRSSIDBm: -87, RateMbps: 9},
		{MinRSSIDBm: -88, RateMbps: 6},
	})
	if err != nil {
		// The table above is a compile-time constant; failure is a bug.
		panic(err)
	}
	return t
}

// Default80211n returns a 2-stream 802.11n (HT40) sensitivity table, the
// PHY generation of the TL-WPA8630 extenders used on the paper's testbed.
func Default80211n() *RateTable {
	t, err := NewRateTable([]RateStep{
		{MinRSSIDBm: -64, RateMbps: 300},
		{MinRSSIDBm: -65, RateMbps: 270},
		{MinRSSIDBm: -69, RateMbps: 240},
		{MinRSSIDBm: -73, RateMbps: 180},
		{MinRSSIDBm: -77, RateMbps: 120},
		{MinRSSIDBm: -79, RateMbps: 90},
		{MinRSSIDBm: -81, RateMbps: 60},
		{MinRSSIDBm: -82, RateMbps: 30},
		{MinRSSIDBm: -88, RateMbps: 13},
	})
	if err != nil {
		panic(err)
	}
	return t
}

// Rate returns the PHY rate selected at the given RSSI, and whether the
// station is in range at all (false below the weakest threshold).
func (t *RateTable) Rate(rssiDBm float64) (float64, bool) {
	for _, s := range t.steps {
		if rssiDBm >= s.MinRSSIDBm {
			return s.RateMbps, true
		}
	}
	return 0, false
}

// MaxRate returns the highest rate in the table.
func (t *RateTable) MaxRate() float64 {
	return t.steps[0].RateMbps
}

// MinRate returns the lowest (cell edge) rate in the table.
func (t *RateTable) MinRate() float64 {
	return t.steps[len(t.steps)-1].RateMbps
}

// Steps returns a copy of the table rows in descending-threshold order.
func (t *RateTable) Steps() []RateStep {
	return append([]RateStep(nil), t.steps...)
}

// Model combines a channel with a rate table: distance in, PHY rate out.
type Model struct {
	Channel Channel
	Table   *RateTable
	// MinRateFloorMbps, when positive, is the rate assigned to
	// out-of-range users instead of 0. The paper's formulation requires
	// every user to be connectable to every extender (constraint (7)
	// assigns each user somewhere), so the simulator keeps a small
	// positive floor rate (a station at the extreme edge still associates
	// at the lowest MCS with heavy retries).
	MinRateFloorMbps float64
	// ShadowSigmaDB enables lognormal shadowing: each (user, extender)
	// link gets a fixed Gaussian RSSI offset with this standard
	// deviation. Office walls and furniture make links deviate ±5–10 dB
	// from pure distance laws; shadowing is what creates the "users with
	// good and poor WiFi channel qualities" mix the paper's large-scale
	// simulation relies on. Zero disables it (pure distance model).
	ShadowSigmaDB float64
	// ShadowSeed makes the shadowing field reproducible: the offset of a
	// link is a deterministic function of (ShadowSeed, userID,
	// extenderID), stable across topology rebuilds.
	ShadowSeed int64
}

// DefaultModel returns the simulation model used throughout the
// experiments: indoor channel, 802.11g table, 1 Mbps out-of-range floor,
// 7 dB wall shadowing.
func DefaultModel() Model {
	return Model{
		Channel:          DefaultChannel(),
		Table:            Default80211g(),
		MinRateFloorMbps: 1,
		ShadowSigmaDB:    7,
	}
}

// RateAt returns the PHY rate of a user at distance d meters from an
// extender, without shadowing.
func (m Model) RateAt(d float64) float64 {
	return m.rateAtRSSI(m.Channel.RSSIDBm(d))
}

// LinkRate returns the PHY rate of the (user, extender) link including
// that link's shadowing offset.
func (m Model) LinkRate(d float64, userID, extenderID int) float64 {
	return m.rateAtRSSI(m.LinkRSSI(d, userID, extenderID))
}

// LinkRSSI returns the shadowed RSSI of the (user, extender) link.
func (m Model) LinkRSSI(d float64, userID, extenderID int) float64 {
	return m.Channel.RSSIDBm(d) + m.shadowDB(userID, extenderID)
}

func (m Model) rateAtRSSI(rssi float64) float64 {
	rate, ok := m.Table.Rate(rssi)
	if !ok {
		return m.MinRateFloorMbps
	}
	return rate
}

// shadowDB returns the link's fixed shadowing offset in dB.
func (m Model) shadowDB(userID, extenderID int) float64 {
	if m.ShadowSigmaDB <= 0 {
		return 0
	}
	return m.ShadowSigmaDB * hashNormal(uint64(m.ShadowSeed), uint64(userID), uint64(extenderID))
}

// RSSIAt returns the unshadowed RSSI at distance d meters.
func (m Model) RSSIAt(d float64) float64 {
	return m.Channel.RSSIDBm(d)
}

// RateMatrix converts a |users| × |extenders| distance matrix into a PHY
// rate matrix r_ij (no shadowing; row/column indices are not stable IDs).
func (m Model) RateMatrix(distances [][]float64) [][]float64 {
	r := make([][]float64, len(distances))
	for i, row := range distances {
		r[i] = make([]float64, len(row))
		for j, d := range row {
			r[i][j] = m.RateAt(d)
		}
	}
	return r
}

// hashNormal maps (seed, a, b) to an approximately standard-normal value
// using a splitmix64 hash and the sum-of-uniforms (Irwin–Hall) transform.
// It is deterministic, which keeps a link's shadowing stable no matter
// when or how often the link matrix is rebuilt.
func hashNormal(seed, a, b uint64) float64 {
	x := seed ^ a*0x9E3779B97F4A7C15 ^ b*0xC2B2AE3D27D4EB4F
	var sum float64
	for k := 0; k < 12; k++ {
		x += 0x9E3779B97F4A7C15
		z := x
		z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
		z = (z ^ (z >> 27)) * 0x94D049BB133111EB
		z ^= z >> 31
		sum += float64(z>>11) / float64(1<<53)
	}
	return sum - 6 // Irwin–Hall(12) has mean 6, variance 1
}
