package radio

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPathLossMonotone(t *testing.T) {
	c := DefaultChannel()
	prev := c.PathLossDB(1)
	for d := 2.0; d <= 200; d += 1 {
		pl := c.PathLossDB(d)
		if pl <= prev {
			t.Fatalf("path loss not increasing at d=%v: %v <= %v", d, pl, prev)
		}
		prev = pl
	}
}

func TestPathLossReference(t *testing.T) {
	c := DefaultChannel()
	if got := c.PathLossDB(1); got != c.ReferenceLossDB {
		t.Errorf("PL(1m) = %v, want %v", got, c.ReferenceLossDB)
	}
	// Below the reference distance the loss is clamped.
	if got := c.PathLossDB(0.1); got != c.ReferenceLossDB {
		t.Errorf("PL(0.1m) = %v, want clamp to %v", got, c.ReferenceLossDB)
	}
	// One decade of distance adds 10·n dB.
	want := c.ReferenceLossDB + 10*c.PathLossExponent
	if got := c.PathLossDB(10); math.Abs(got-want) > 1e-9 {
		t.Errorf("PL(10m) = %v, want %v", got, want)
	}
}

func TestRSSI(t *testing.T) {
	c := DefaultChannel()
	if got, want := c.RSSIDBm(1), c.TxPowerDBm-c.ReferenceLossDB; got != want {
		t.Errorf("RSSI(1m) = %v, want %v", got, want)
	}
	if c.RSSIDBm(5) <= c.RSSIDBm(50) {
		t.Error("RSSI should decrease with distance")
	}
}

func TestNewRateTableValidation(t *testing.T) {
	if _, err := NewRateTable(nil); err == nil {
		t.Error("empty table: want error")
	}
	if _, err := NewRateTable([]RateStep{{MinRSSIDBm: -70, RateMbps: 0}}); err == nil {
		t.Error("zero rate: want error")
	}
}

func TestNewRateTableSortsAndCopies(t *testing.T) {
	steps := []RateStep{
		{MinRSSIDBm: -88, RateMbps: 6},
		{MinRSSIDBm: -71, RateMbps: 54},
	}
	tab, err := NewRateTable(steps)
	if err != nil {
		t.Fatal(err)
	}
	got := tab.Steps()
	if got[0].RateMbps != 54 || got[1].RateMbps != 6 {
		t.Errorf("table not sorted by descending threshold: %+v", got)
	}
	// Mutating the caller's slice must not affect the table.
	steps[0].RateMbps = 999
	if tab.Steps()[1].RateMbps == 999 {
		t.Error("NewRateTable did not copy its input")
	}
}

func TestRateSelection(t *testing.T) {
	tab := Default80211g()
	tests := []struct {
		name     string
		rssi     float64
		wantRate float64
		wantOK   bool
	}{
		{name: "strong", rssi: -30, wantRate: 54, wantOK: true},
		{name: "exact top threshold", rssi: -71, wantRate: 54, wantOK: true},
		{name: "mid", rssi: -80, wantRate: 24, wantOK: true},
		{name: "edge", rssi: -88, wantRate: 6, wantOK: true},
		{name: "out of range", rssi: -95, wantRate: 0, wantOK: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			rate, ok := tab.Rate(tt.rssi)
			if rate != tt.wantRate || ok != tt.wantOK {
				t.Errorf("Rate(%v) = (%v,%v), want (%v,%v)", tt.rssi, rate, ok, tt.wantRate, tt.wantOK)
			}
		})
	}
}

func TestRateTableExtremes(t *testing.T) {
	tab := Default80211n()
	if tab.MaxRate() != 300 {
		t.Errorf("MaxRate = %v, want 300", tab.MaxRate())
	}
	if tab.MinRate() != 13 {
		t.Errorf("MinRate = %v, want 13", tab.MinRate())
	}
}

func TestModelRateMonotoneInDistance(t *testing.T) {
	m := DefaultModel()
	prev := m.RateAt(1)
	for d := 2.0; d < 300; d += 1 {
		r := m.RateAt(d)
		if r > prev {
			t.Fatalf("rate increased with distance at d=%v: %v > %v", d, r, prev)
		}
		prev = r
	}
}

func TestModelFloorRate(t *testing.T) {
	m := DefaultModel()
	// Very far away: below any table threshold, so the floor applies.
	if got := m.RateAt(10000); got != m.MinRateFloorMbps {
		t.Errorf("RateAt(10km) = %v, want floor %v", got, m.MinRateFloorMbps)
	}
	if got := m.RateAt(1); got != 54 {
		t.Errorf("RateAt(1m) = %v, want 54", got)
	}
}

func TestModelRatePositiveProperty(t *testing.T) {
	m := DefaultModel()
	f := func(d float64) bool {
		d = math.Abs(d)
		if math.IsNaN(d) || math.IsInf(d, 0) {
			return true
		}
		return m.RateAt(d) > 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRateMatrix(t *testing.T) {
	m := DefaultModel()
	dist := [][]float64{
		{1, 100},
		{50, 2},
	}
	r := m.RateMatrix(dist)
	if len(r) != 2 || len(r[0]) != 2 {
		t.Fatalf("bad shape: %v", r)
	}
	if r[0][0] != 54 {
		t.Errorf("r[0][0] = %v, want 54", r[0][0])
	}
	if r[0][1] >= r[0][0] {
		t.Errorf("far rate %v not below near rate %v", r[0][1], r[0][0])
	}
	if r[1][1] != 54 {
		t.Errorf("r[1][1] = %v, want 54", r[1][1])
	}
}

func TestRSSIAtMatchesChannel(t *testing.T) {
	m := DefaultModel()
	if m.RSSIAt(10) != m.Channel.RSSIDBm(10) {
		t.Error("RSSIAt should delegate to the channel")
	}
}

func TestShadowingDeterministic(t *testing.T) {
	m := DefaultModel()
	m.ShadowSigmaDB = 7
	a := m.LinkRate(30, 5, 2)
	b := m.LinkRate(30, 5, 2)
	if a != b {
		t.Errorf("shadowed rate not deterministic: %v vs %v", a, b)
	}
	if m.LinkRSSI(30, 5, 2) != m.LinkRSSI(30, 5, 2) {
		t.Error("shadowed RSSI not deterministic")
	}
}

func TestShadowingZeroSigmaMatchesDistanceModel(t *testing.T) {
	m := DefaultModel()
	m.ShadowSigmaDB = 0
	for _, d := range []float64{1, 10, 40, 120} {
		if m.LinkRate(d, 3, 1) != m.RateAt(d) {
			t.Errorf("d=%v: LinkRate differs from RateAt without shadowing", d)
		}
		if m.LinkRSSI(d, 3, 1) != m.RSSIAt(d) {
			t.Errorf("d=%v: LinkRSSI differs from RSSIAt without shadowing", d)
		}
	}
}

func TestShadowingVariesAcrossLinks(t *testing.T) {
	m := DefaultModel()
	m.ShadowSigmaDB = 7
	distinct := make(map[float64]bool)
	for uid := 0; uid < 20; uid++ {
		distinct[m.LinkRSSI(30, uid, 0)] = true
	}
	if len(distinct) < 15 {
		t.Errorf("only %d distinct shadowed RSSI values across 20 links", len(distinct))
	}
}

func TestHashNormalDistribution(t *testing.T) {
	// The deterministic normal should have roughly zero mean and unit
	// variance over many links.
	var sum, sq float64
	const n = 20000
	for i := 0; i < n; i++ {
		v := hashNormal(1, uint64(i), uint64(i*31+7))
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("hashNormal mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.1 {
		t.Errorf("hashNormal variance = %v, want ≈1", variance)
	}
}

func TestShadowSeedChangesField(t *testing.T) {
	a := DefaultModel()
	a.ShadowSeed = 1
	b := DefaultModel()
	b.ShadowSeed = 2
	same := 0
	for uid := 0; uid < 10; uid++ {
		if a.LinkRSSI(30, uid, 0) == b.LinkRSSI(30, uid, 0) {
			same++
		}
	}
	if same == 10 {
		t.Error("shadow seed has no effect")
	}
}
