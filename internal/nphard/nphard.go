// Package nphard implements the paper's Theorem 1 construction: a
// polynomial-time reduction from the PARTITION problem to a particular
// instance of the PLC-WiFi user-assignment problem (Problem 1), which
// establishes that Problem 1 is NP-hard.
//
// The reduction (for a multiset of weights w_1..w_M): build 2 extenders
// with unbounded PLC rates and per-extender user caps B = (M+k)/2, and
// M+k users — M "regular" users whose WiFi rates are r_i = -1/w_i and k
// "dummy" users with rate -∞ (inverse rate 0). Filling both extenders to
// their caps makes the objective
//
//	Σ_j T_WiFi_j = -(B/W_1 + B/W_2),  W_j = Σ weights on extender j,
//
// which is maximized exactly when W_1 = W_2 = W/2 — i.e. when a perfect
// partition exists. Iterating k over 0,2,…,M-2 (or 1,3,… for odd M)
// covers partitions of every admissible size.
//
// The negative "rates" are an artifact of the proof (they never occur in a
// real network); this package therefore evaluates the transformed
// objective directly rather than going through the network model.
package nphard

import (
	"errors"
	"fmt"
	"math"
)

// ErrNoWeights is returned for an empty PARTITION instance.
var ErrNoWeights = errors.New("nphard: empty weight set")

// Instance is a PARTITION problem instance.
type Instance struct {
	Weights []int
}

// Total returns the sum of all weights.
func (in Instance) Total() int {
	total := 0
	for _, w := range in.Weights {
		total += w
	}
	return total
}

// Validate checks that all weights are positive.
func (in Instance) Validate() error {
	if len(in.Weights) == 0 {
		return ErrNoWeights
	}
	for i, w := range in.Weights {
		if w <= 0 {
			return fmt.Errorf("nphard: weight %d is %d, want positive", i, w)
		}
	}
	return nil
}

// Reduction is one transformed Problem 1 instance for a specific dummy
// count k.
type Reduction struct {
	Weights []int
	// Dummies is k, the number of dummy users with zero inverse rate.
	Dummies int
	// Cap is B = (M+k)/2, the per-extender user cap.
	Cap int
}

// Encode builds the Theorem 1 instance for a given dummy count. M+k must
// be even so the caps are integral.
func Encode(in Instance, dummies int) (*Reduction, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if dummies < 0 {
		return nil, fmt.Errorf("nphard: negative dummy count %d", dummies)
	}
	total := len(in.Weights) + dummies
	if total%2 != 0 {
		return nil, fmt.Errorf("nphard: M+k = %d must be even", total)
	}
	return &Reduction{
		Weights: append([]int(nil), in.Weights...),
		Dummies: dummies,
		Cap:     total / 2,
	}, nil
}

// Objective evaluates the transformed Problem 1 objective for the split
// where the regular users with the given weight sum w1 sit on extender 1
// (both extenders filled to the cap with dummies). A side with zero
// regular weight yields -Inf (the ratio degenerates), matching the proof's
// requirement that both partitions be non-empty.
func (r *Reduction) Objective(w1 int) float64 {
	w2 := r.weightTotal() - w1
	if w1 <= 0 || w2 <= 0 {
		return math.Inf(-1)
	}
	b := float64(r.Cap)
	return -(b/float64(w1) + b/float64(w2))
}

func (r *Reduction) weightTotal() int {
	total := 0
	for _, w := range r.Weights {
		total += w
	}
	return total
}

// Solve maximizes the transformed objective by exhaustive search over the
// admissible subsets (|S| regular users on extender 1, padded with
// dummies; both sides must respect the cap). It returns the best split as
// a membership mask over the regular users and the achieved objective.
// Exponential in M — it exists to demonstrate the reduction, not to be
// fast (PARTITION is NP-hard, after all).
func (r *Reduction) Solve() (side1 []bool, objective float64, err error) {
	m := len(r.Weights)
	if m > 24 {
		return nil, 0, fmt.Errorf("nphard: %d weights exceed the exhaustive-search budget", m)
	}
	minSize := m - r.Cap // at least this many regular users on side 1
	if minSize < 0 {
		minSize = 0
	}
	best := math.Inf(-1)
	var bestMask uint32
	found := false
	for mask := uint32(0); mask < 1<<m; mask++ {
		size := popcount(mask)
		if size < minSize || size > r.Cap {
			continue
		}
		var w1 int
		for i := 0; i < m; i++ {
			if mask&(1<<i) != 0 {
				w1 += r.Weights[i]
			}
		}
		obj := r.Objective(w1)
		if obj > best {
			best = obj
			bestMask = mask
			found = true
		}
	}
	if !found || math.IsInf(best, -1) {
		return nil, 0, fmt.Errorf("nphard: no admissible split")
	}
	side1 = make([]bool, m)
	for i := 0; i < m; i++ {
		side1[i] = bestMask&(1<<i) != 0
	}
	return side1, best, nil
}

// SolvePartition runs the complete Theorem 1 procedure: for every
// admissible dummy count k it solves the transformed instance and keeps
// the best split. It reports whether a perfect partition (W1 = W/2)
// exists and returns the best split found.
func SolvePartition(in Instance) (perfect bool, side1 []bool, err error) {
	if err := in.Validate(); err != nil {
		return false, nil, err
	}
	m := len(in.Weights)
	if m < 2 {
		return false, nil, fmt.Errorf("nphard: need at least two weights")
	}
	total := in.Total()

	startK := 0
	if m%2 != 0 {
		startK = 1
	}
	bestDiff := math.MaxInt
	for k := startK; k <= m; k += 2 {
		red, err := Encode(in, k)
		if err != nil {
			return false, nil, err
		}
		split, _, err := red.Solve()
		if err != nil {
			continue
		}
		w1 := 0
		for i, onSide1 := range split {
			if onSide1 {
				w1 += in.Weights[i]
			}
		}
		diff := abs(2*w1 - total)
		if diff < bestDiff {
			bestDiff = diff
			side1 = split
		}
		if diff == 0 {
			break
		}
	}
	if side1 == nil {
		return false, nil, fmt.Errorf("nphard: no split found")
	}
	return bestDiff == 0, side1, nil
}

// PartitionDP solves PARTITION directly with the classic pseudo-polynomial
// subset-sum dynamic program. Used to cross-validate the reduction.
func PartitionDP(in Instance) (bool, error) {
	if err := in.Validate(); err != nil {
		return false, err
	}
	total := in.Total()
	if total%2 != 0 {
		return false, nil
	}
	target := total / 2
	reachable := make([]bool, target+1)
	reachable[0] = true
	for _, w := range in.Weights {
		for s := target; s >= w; s-- {
			if reachable[s-w] {
				reachable[s] = true
			}
		}
	}
	return reachable[target], nil
}

func popcount(x uint32) int {
	count := 0
	for x != 0 {
		x &= x - 1
		count++
	}
	return count
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
