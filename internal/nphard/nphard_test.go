package nphard

import (
	"math"
	"math/rand"
	"testing"
)

func TestInstanceValidate(t *testing.T) {
	if err := (Instance{}).Validate(); err == nil {
		t.Error("empty instance: want error")
	}
	if err := (Instance{Weights: []int{1, 0}}).Validate(); err == nil {
		t.Error("zero weight: want error")
	}
	if err := (Instance{Weights: []int{3, 1}}).Validate(); err != nil {
		t.Errorf("valid instance: %v", err)
	}
}

func TestEncode(t *testing.T) {
	in := Instance{Weights: []int{3, 1, 2}}
	if _, err := Encode(in, 0); err == nil {
		t.Error("odd M+k: want error")
	}
	if _, err := Encode(in, -1); err == nil {
		t.Error("negative dummies: want error")
	}
	red, err := Encode(in, 1)
	if err != nil {
		t.Fatal(err)
	}
	if red.Cap != 2 {
		t.Errorf("cap = %d, want 2", red.Cap)
	}
	// Encode copies the weights.
	in.Weights[0] = 99
	if red.Weights[0] == 99 {
		t.Error("Encode did not copy weights")
	}
}

func TestObjectiveMaximizedAtBalancedSplit(t *testing.T) {
	red, err := Encode(Instance{Weights: []int{1, 2, 3, 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	total := 10
	balanced := red.Objective(total / 2)
	for w1 := 1; w1 < total; w1++ {
		if obj := red.Objective(w1); obj > balanced+1e-12 {
			t.Errorf("Objective(%d) = %v exceeds balanced %v", w1, obj, balanced)
		}
	}
	if !math.IsInf(red.Objective(0), -1) || !math.IsInf(red.Objective(total), -1) {
		t.Error("degenerate splits should be -Inf")
	}
}

func TestSolveFindsPerfectPartition(t *testing.T) {
	// {1,2,3,4}: perfect partition {1,4} / {2,3}.
	red, err := Encode(Instance{Weights: []int{1, 2, 3, 4}}, 0)
	if err != nil {
		t.Fatal(err)
	}
	side1, obj, err := red.Solve()
	if err != nil {
		t.Fatal(err)
	}
	w1 := 0
	for i, s := range side1 {
		if s {
			w1 += red.Weights[i]
		}
	}
	if w1 != 5 {
		t.Errorf("side-1 weight = %d, want 5 (split %v)", w1, side1)
	}
	want := -(2.0/5.0 + 2.0/5.0)
	if math.Abs(obj-want) > 1e-12 {
		t.Errorf("objective = %v, want %v", obj, want)
	}
}

func TestSolveBudget(t *testing.T) {
	weights := make([]int, 30)
	for i := range weights {
		weights[i] = i + 1
	}
	red, err := Encode(Instance{Weights: weights}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := red.Solve(); err == nil {
		t.Error("want budget error for 30 weights")
	}
}

func TestSolvePartitionKnownCases(t *testing.T) {
	tests := []struct {
		name    string
		weights []int
		want    bool
	}{
		{name: "trivial pair", weights: []int{5, 5}, want: true},
		{name: "no partition pair", weights: []int{3, 1}, want: false},
		{name: "classic yes", weights: []int{1, 2, 3}, want: true},
		{name: "all even no", weights: []int{2, 2, 2}, want: false},
		{name: "odd total", weights: []int{1, 2, 4}, want: false},
		{name: "larger yes", weights: []int{3, 1, 1, 2, 2, 1}, want: true},
		{name: "larger no", weights: []int{10, 1, 1, 1}, want: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			perfect, side1, err := SolvePartition(Instance{Weights: tt.weights})
			if err != nil {
				t.Fatal(err)
			}
			if perfect != tt.want {
				t.Errorf("perfect = %v, want %v (split %v)", perfect, tt.want, side1)
			}
			if perfect {
				w1, total := 0, 0
				for i, s := range side1 {
					total += tt.weights[i]
					if s {
						w1 += tt.weights[i]
					}
				}
				if 2*w1 != total {
					t.Errorf("claimed perfect split has W1=%d of total %d", w1, total)
				}
			}
		})
	}
}

// TestReductionMatchesDP is the Theorem 1 soundness check: solving the
// transformed Problem 1 instance answers PARTITION exactly as the direct
// dynamic program does, on random instances.
func TestReductionMatchesDP(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 80; trial++ {
		m := 2 + rng.Intn(9) // 2..10 weights
		weights := make([]int, m)
		for i := range weights {
			weights[i] = 1 + rng.Intn(12)
		}
		in := Instance{Weights: weights}
		viaReduction, _, err := SolvePartition(in)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		viaDP, err := PartitionDP(in)
		if err != nil {
			t.Fatal(err)
		}
		if viaReduction != viaDP {
			t.Errorf("trial %d: reduction says %v, DP says %v (weights %v)",
				trial, viaReduction, viaDP, weights)
		}
	}
}

func TestPartitionDP(t *testing.T) {
	if got, _ := PartitionDP(Instance{Weights: []int{1, 5, 11, 5}}); !got {
		t.Error("PartitionDP([1 5 11 5]) = false, want true")
	}
	if got, _ := PartitionDP(Instance{Weights: []int{1, 5, 3}}); got {
		t.Error("PartitionDP([1 5 3]) = true, want false")
	}
	if _, err := PartitionDP(Instance{}); err == nil {
		t.Error("empty instance: want error")
	}
}

func TestSolvePartitionErrors(t *testing.T) {
	if _, _, err := SolvePartition(Instance{}); err == nil {
		t.Error("empty: want error")
	}
	if _, _, err := SolvePartition(Instance{Weights: []int{4}}); err == nil {
		t.Error("single weight: want error")
	}
}
