package mobility

import (
	"math"
	"testing"

	"github.com/plcwifi/wolt/internal/topology"
)

func makeTopo(t *testing.T, users int, seed int64) *topology.Topology {
	t.Helper()
	topo, err := topology.Generate(topology.Config{
		NumExtenders: 2,
		NumUsers:     users,
		Seed:         seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestConfigValidation(t *testing.T) {
	topo := makeTopo(t, 2, 1)
	bad := []Config{
		{SpeedMinMps: 0, SpeedMaxMps: 1},
		{SpeedMinMps: 2, SpeedMaxMps: 1},
		{SpeedMinMps: 1, SpeedMaxMps: 2, PauseSec: -1},
	}
	for _, cfg := range bad {
		if _, err := NewFleet(topo, cfg); err == nil {
			t.Errorf("config %+v: want error", cfg)
		}
	}
}

func TestAdvanceValidation(t *testing.T) {
	topo := makeTopo(t, 2, 1)
	fleet, err := NewFleet(topo, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Advance(0); err == nil {
		t.Error("zero dt: want error")
	}
	if err := fleet.Advance(-1); err == nil {
		t.Error("negative dt: want error")
	}
}

func TestWalkersStayOnFloorPlan(t *testing.T) {
	topo := makeTopo(t, 10, 3)
	cfg := DefaultConfig()
	cfg.Seed = 3
	fleet, err := NewFleet(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for tick := 0; tick < 100; tick++ {
		if err := fleet.Advance(10); err != nil {
			t.Fatal(err)
		}
		for _, u := range topo.Users {
			if u.Pos.X < 0 || u.Pos.X > topo.Width || u.Pos.Y < 0 || u.Pos.Y > topo.Height {
				t.Fatalf("tick %d: user %d escaped the floor plan: %+v", tick, u.ID, u.Pos)
			}
		}
	}
}

func TestSpeedBound(t *testing.T) {
	// Over a small dt, no walker may travel farther than max speed
	// allows.
	topo := makeTopo(t, 10, 4)
	cfg := DefaultConfig()
	cfg.Seed = 4
	cfg.PauseSec = 0
	fleet, err := NewFleet(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	prev := make(map[int]topology.Point, len(topo.Users))
	for _, u := range topo.Users {
		prev[u.ID] = u.Pos
	}
	const dt = 1.0
	for tick := 0; tick < 50; tick++ {
		if err := fleet.Advance(dt); err != nil {
			t.Fatal(err)
		}
		for _, u := range topo.Users {
			// Crossing a waypoint mid-step can bend the path, so the
			// displacement (chord) is bounded by the path length.
			if d := prev[u.ID].Distance(u.Pos); d > cfg.SpeedMaxMps*dt+1e-9 {
				t.Fatalf("user %d moved %vm in %vs (max speed %v)", u.ID, d, dt, cfg.SpeedMaxMps)
			}
			prev[u.ID] = u.Pos
		}
	}
}

func TestUsersActuallyMove(t *testing.T) {
	topo := makeTopo(t, 5, 5)
	start := make(map[int]topology.Point, len(topo.Users))
	for _, u := range topo.Users {
		start[u.ID] = u.Pos
	}
	cfg := DefaultConfig()
	cfg.Seed = 5
	fleet, err := NewFleet(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := fleet.Advance(60); err != nil {
		t.Fatal(err)
	}
	moved := 0
	for _, u := range topo.Users {
		if start[u.ID].Distance(u.Pos) > 1 {
			moved++
		}
	}
	if moved < 4 {
		t.Errorf("only %d/5 users moved after 60s", moved)
	}
}

func TestPauseHoldsPosition(t *testing.T) {
	topo := makeTopo(t, 1, 6)
	cfg := Config{SpeedMinMps: 1000, SpeedMaxMps: 1000, PauseSec: 1e9, Seed: 6}
	fleet, err := NewFleet(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The walker reaches its first waypoint almost instantly, then
	// pauses effectively forever.
	if err := fleet.Advance(10); err != nil {
		t.Fatal(err)
	}
	posA, _ := fleet.Position(topo.Users[0].ID)
	if err := fleet.Advance(10); err != nil {
		t.Fatal(err)
	}
	posB, _ := fleet.Position(topo.Users[0].ID)
	if posA.Distance(posB) > 1e-9 {
		t.Errorf("walker moved while pausing: %v -> %v", posA, posB)
	}
}

func TestChurnedUsersTracked(t *testing.T) {
	topo := makeTopo(t, 3, 7)
	cfg := DefaultConfig()
	cfg.Seed = 7
	fleet, err := NewFleet(topo, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Remove one user, add another; Advance must adapt.
	removed := topo.Users[0].ID
	topo.RemoveUser(removed)
	added := topo.AddUser(topology.Point{X: 1, Y: 1})
	if err := fleet.Advance(5); err != nil {
		t.Fatal(err)
	}
	if _, ok := fleet.Position(removed); ok {
		t.Error("removed user still tracked")
	}
	if _, ok := fleet.Position(added); !ok {
		t.Error("added user not tracked")
	}
}

func TestDeterministic(t *testing.T) {
	run := func() []topology.Point {
		topo := makeTopo(t, 6, 8)
		cfg := DefaultConfig()
		cfg.Seed = 8
		fleet, err := NewFleet(topo, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 10; i++ {
			if err := fleet.Advance(7); err != nil {
				t.Fatal(err)
			}
		}
		out := make([]topology.Point, len(topo.Users))
		for i, u := range topo.Users {
			out[i] = u.Pos
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if math.Abs(a[i].X-b[i].X) > 1e-12 || math.Abs(a[i].Y-b[i].Y) > 1e-12 {
			t.Fatalf("position %d differs across identical runs", i)
		}
	}
}
