// Package mobility implements the random-waypoint model for user motion
// on the floor plan: each user walks toward a uniformly drawn waypoint
// at a per-leg speed, pauses, then picks the next waypoint. Mobility
// changes user-extender distances and therefore WiFi rates over time,
// which is what makes periodic re-association (and the incremental
// re-association extension) matter in deployments.
package mobility

import (
	"fmt"
	"math/rand"

	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/topology"
)

// Config parameterizes the random-waypoint model.
type Config struct {
	// SpeedMinMps and SpeedMaxMps bound the uniformly drawn walking
	// speed per leg (meters per second). Typical pedestrian values are
	// 0.5–1.5 m/s.
	SpeedMinMps float64
	SpeedMaxMps float64
	// PauseSec is the pause duration at each waypoint.
	PauseSec float64
	Seed     int64
}

// DefaultConfig returns pedestrian motion: 0.5–1.5 m/s with 5 s pauses.
func DefaultConfig() Config {
	return Config{
		SpeedMinMps: 0.5,
		SpeedMaxMps: 1.5,
		PauseSec:    5,
	}
}

func (c Config) validate() error {
	if c.SpeedMinMps <= 0 || c.SpeedMaxMps < c.SpeedMinMps {
		return fmt.Errorf("mobility: bad speed range [%v,%v]", c.SpeedMinMps, c.SpeedMaxMps)
	}
	if c.PauseSec < 0 {
		return fmt.Errorf("mobility: negative pause %v", c.PauseSec)
	}
	return nil
}

// Walker is one user's motion state.
type Walker struct {
	pos      topology.Point
	waypoint topology.Point
	speed    float64
	pausing  float64 // remaining pause time
}

// Fleet animates every user of a topology. It mutates the topology's
// user positions in place on Advance, so instances rebuilt from the
// topology see the new geometry.
type Fleet struct {
	cfg     Config
	topo    *topology.Topology
	rng     *rand.Rand
	walkers map[int]*Walker // keyed by user ID
}

// NewFleet builds walkers for every current user of the topology.
func NewFleet(topo *topology.Topology, cfg Config) (*Fleet, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	f := &Fleet{
		cfg:     cfg,
		topo:    topo,
		rng:     seed.Root(cfg.Seed),
		walkers: make(map[int]*Walker, len(topo.Users)),
	}
	for _, u := range topo.Users {
		f.walkers[u.ID] = f.newWalker(u.Pos)
	}
	return f, nil
}

func (f *Fleet) newWalker(start topology.Point) *Walker {
	w := &Walker{pos: start}
	f.retarget(w)
	return w
}

func (f *Fleet) retarget(w *Walker) {
	w.waypoint = f.topo.RandomPoint(f.rng)
	w.speed = f.cfg.SpeedMinMps + f.rng.Float64()*(f.cfg.SpeedMaxMps-f.cfg.SpeedMinMps)
}

// Advance moves every walker dt seconds forward and writes the new
// positions into the topology. Users added to the topology since the
// last call get fresh walkers; users removed are forgotten.
func (f *Fleet) Advance(dt float64) error {
	if dt <= 0 {
		return fmt.Errorf("mobility: non-positive dt %v", dt)
	}
	seen := make(map[int]bool, len(f.topo.Users))
	for idx := range f.topo.Users {
		u := &f.topo.Users[idx]
		seen[u.ID] = true
		w, ok := f.walkers[u.ID]
		if !ok {
			w = f.newWalker(u.Pos)
			f.walkers[u.ID] = w
		}
		f.step(w, dt)
		u.Pos = w.pos
	}
	for id := range f.walkers {
		if !seen[id] {
			delete(f.walkers, id)
		}
	}
	return nil
}

// step advances one walker by dt seconds, possibly across several
// waypoint legs.
func (f *Fleet) step(w *Walker, dt float64) {
	remaining := dt
	for remaining > 0 {
		if w.pausing > 0 {
			if w.pausing >= remaining {
				w.pausing -= remaining
				return
			}
			remaining -= w.pausing
			w.pausing = 0
			continue
		}
		dist := w.pos.Distance(w.waypoint)
		travel := w.speed * remaining
		if travel < dist {
			frac := travel / dist
			w.pos = topology.Point{
				X: w.pos.X + (w.waypoint.X-w.pos.X)*frac,
				Y: w.pos.Y + (w.waypoint.Y-w.pos.Y)*frac,
			}
			return
		}
		// Reached the waypoint: consume the travel time, pause, retarget.
		if w.speed > 0 {
			remaining -= dist / w.speed
		}
		w.pos = w.waypoint
		w.pausing = f.cfg.PauseSec
		f.retarget(w)
	}
}

// Position returns a user's current position (for tests and telemetry).
func (f *Fleet) Position(userID int) (topology.Point, bool) {
	w, ok := f.walkers[userID]
	if !ok {
		return topology.Point{}, false
	}
	return w.pos, true
}
