package wire

import (
	"bytes"
	"encoding/binary"
	"io"
	"reflect"
	"strings"
	"testing"
)

// normalize maps the encodings the binary codec deliberately collapses
// onto one representative: zero-length slices decode as their input
// scratch (nil on a fresh Message) and an empty assignment map decodes
// as nil — the same absences the JSON codec's omitempty produces.
func normalize(m Message) Message {
	if len(m.Rates) == 0 {
		m.Rates = nil
	}
	if len(m.RSSI) == 0 {
		m.RSSI = nil
	}
	if m.Stats != nil {
		st := *m.Stats
		if len(st.Assignment) == 0 {
			st.Assignment = nil
		}
		m.Stats = &st
	}
	return m
}

// roundTrip encodes m into a fresh buffer and decodes it into a fresh
// Message via the same ReadFrame path the conn layer uses.
func roundTrip(t *testing.T, m Message) Message {
	t.Helper()
	frame, err := AppendFrame(nil, &m)
	if err != nil {
		t.Fatalf("encode %+v: %v", m, err)
	}
	var out Message
	var scratch []byte
	if err := ReadFrame(bytes.NewReader(frame), &out, &scratch); err != nil {
		t.Fatalf("decode %+v: %v", m, err)
	}
	return out
}

func TestRoundTripAllShapes(t *testing.T) {
	msgs := []Message{
		{Type: MsgJoin, UserID: 7, Rates: []float64{120.5, 0, 33.25}, RSSI: []float64{-60, -71, -80}},
		{Type: MsgJoin, UserID: 0, Rates: []float64{5}},
		{Type: MsgLeave, UserID: 1 << 40},
		{Type: MsgUpdate, UserID: 3, Rates: []float64{1.5, 2.5}},
		// Extender 0 and explicit Reassociation false: the PR 4 wire
		// regressions, pinned against the binary codec too.
		{Type: MsgAssociate, UserID: 3, Extender: 0, Reassociation: false},
		{Type: MsgAssociate, UserID: 9, Extender: 4, Reassociation: true},
		{Type: MsgRedirect, UserID: 9, Addr: "127.0.0.1:4242"},
		{Type: MsgPing},
		{Type: MsgStats},
		{Type: MsgStatsReply, Stats: &Stats{
			Policy: "wolt", Users: 3, Joins: 5, Leaves: 2, Reassociations: 1,
			DroppedReassigns: 4, DroppedPushes: 6,
			Assignment: map[int]int{0: 1, 7: 0, 9: 3},
		}},
		{Type: MsgError, Error: "user 3 reaches no extender"},
		// Negative IDs are protocol nonsense but must still round-trip:
		// the codec is a faithful transport, not a validator.
		{Type: MsgAssociate, UserID: -1, Extender: -5},
	}
	for _, in := range msgs {
		out := roundTrip(t, in)
		if !reflect.DeepEqual(normalize(out), normalize(in)) {
			t.Errorf("round trip mangled the message:\n in  %+v\n out %+v", in, out)
		}
	}
}

// TestDecodeReusesScratch pins the conn layer's reuse contract: decoding
// a second message into the same Message must overwrite every field
// (no state leaking from the previous frame) while reusing the rate
// vector capacity.
func TestDecodeReusesScratch(t *testing.T) {
	first := Message{Type: MsgJoin, UserID: 1, Rates: []float64{10, 20, 30},
		RSSI: []float64{-1, -2, -3}}
	second := Message{Type: MsgAssociate, UserID: 2, Extender: 1}
	f1, err := AppendFrame(nil, &first)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := AppendFrame(nil, &second)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	var scratch []byte
	r := bytes.NewReader(append(f1, f2...))
	if err := ReadFrame(r, &m, &scratch); err != nil {
		t.Fatal(err)
	}
	ratesCap := cap(m.Rates)
	if err := ReadFrame(r, &m, &scratch); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(normalize(m), normalize(second)) {
		t.Errorf("second decode carried first-frame state: %+v", m)
	}
	if cap(m.Rates) != ratesCap {
		t.Errorf("rates capacity not reused: had %d, now %d", ratesCap, cap(m.Rates))
	}
}

// TestWireSteadyStateAllocs pins the codec's zero-allocation contract
// on the steady-state exchange: a scan report encoded and decoded into
// reused buffers costs 0 allocs/op in both directions.
func TestWireSteadyStateAllocs(t *testing.T) {
	join := Message{Type: MsgJoin, UserID: 42, Rates: make([]float64, 64), RSSI: make([]float64, 64)}
	for i := range join.Rates {
		join.Rates[i] = float64(i) * 13.25
		join.RSSI[i] = -60 - float64(i)
	}
	dir := Message{Type: MsgAssociate, UserID: 42, Extender: 17, Reassociation: true}

	// Warm the buffers outside the measured region.
	buf, err := AppendFrame(nil, &join)
	if err != nil {
		t.Fatal(err)
	}
	var m Message
	var scratch []byte
	rd := bytes.NewReader(buf)
	if err := ReadFrame(rd, &m, &scratch); err != nil {
		t.Fatal(err)
	}

	for name, fn := range map[string]func(){
		"encode scan": func() {
			buf = buf[:0]
			if buf, err = AppendFrame(buf, &join); err != nil {
				t.Fatal(err)
			}
		},
		"encode directive": func() {
			buf = buf[:0]
			if buf, err = AppendFrame(buf, &dir); err != nil {
				t.Fatal(err)
			}
		},
		"decode scan": func() {
			buf = buf[:0]
			buf, _ = AppendFrame(buf, &join)
			rd.Reset(buf)
			if err := ReadFrame(rd, &m, &scratch); err != nil {
				t.Fatal(err)
			}
		},
		"decode directive": func() {
			buf = buf[:0]
			buf, _ = AppendFrame(buf, &dir)
			rd.Reset(buf)
			if err := ReadFrame(rd, &m, &scratch); err != nil {
				t.Fatal(err)
			}
		},
	} {
		if allocs := testing.AllocsPerRun(100, fn); allocs != 0 {
			t.Errorf("%s: %v allocs/op, want 0", name, allocs)
		}
	}
}

func TestDecodeRejectsCorruptFrames(t *testing.T) {
	good, err := AppendFrame(nil, &Message{Type: MsgJoin, UserID: 1, Rates: []float64{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty body":       {1, 0, 0, 0},
		"zero length":      {0, 0, 0, 0},
		"unknown type":     {1, 0, 0, 0, 200},
		"truncated body":   good[:len(good)-3],
		"oversized length": binary.LittleEndian.AppendUint32(nil, MaxFrame+1),
	}
	// Trailing garbage after a complete message: grow the length header
	// to claim the extra byte.
	trailing := append(append([]byte(nil), good...), 0xFF)
	binary.LittleEndian.PutUint32(trailing, uint32(len(trailing)-4))
	cases["trailing bytes"] = trailing
	// A rates count larger than the remaining payload could hold must be
	// rejected before any allocation.
	hostile := []byte{4, 200, 255, 255, 255, 255, 255, 255, 255, 255}
	body := append([]byte{1, 0, 0}, hostile...)
	frame := binary.LittleEndian.AppendUint32(nil, uint32(len(body)))
	cases["hostile rates count"] = append(frame, body...)

	for name, raw := range cases {
		var m Message
		var scratch []byte
		err := ReadFrame(bytes.NewReader(raw), &m, &scratch)
		if err == nil {
			t.Errorf("%s: decode accepted corrupt frame %v", name, raw)
		} else if err == io.EOF && name != "header EOF" {
			// Truncations inside a frame must not look like clean closes.
			t.Errorf("%s: truncation surfaced as io.EOF", name)
		}
	}

	if err := ReadFrame(bytes.NewReader(nil), &Message{}, &[]byte{}); err != io.EOF {
		t.Errorf("clean close before header: got %v, want io.EOF", err)
	}
}

func TestEncodeRejectsUnknownType(t *testing.T) {
	buf := []byte{1, 2, 3}
	out, err := AppendFrame(buf, &Message{Type: MsgType("bogus")})
	if err == nil || !strings.Contains(err.Error(), "unencodable") {
		t.Fatalf("encode of unknown type: err=%v", err)
	}
	if len(out) != len(buf) {
		t.Errorf("failed encode extended the buffer: %d -> %d bytes", len(buf), len(out))
	}
}
