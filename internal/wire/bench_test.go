package wire

import (
	"bytes"
	"encoding/json"
	"testing"
)

// benchScan is the steady-state hot message: a 64-extender scan report
// (the city TCP benchmark's deployment width).
func benchScan() Message {
	m := Message{Type: MsgJoin, UserID: 123456, Rates: make([]float64, 64), RSSI: make([]float64, 64)}
	for i := range m.Rates {
		m.Rates[i] = 866.0 / float64(1+i)
		m.RSSI[i] = -55 - float64(i)
	}
	return m
}

// BenchmarkWireEncodeDecode prices one steady-state exchange — a scan
// report encoded+decoded plus a directive encoded+decoded — through
// reused buffers, the unit of work the agent↔server hot path performs
// per churn event. The allocs/op column must be 0 (also asserted by
// TestWireSteadyStateAllocs).
func BenchmarkWireEncodeDecode(b *testing.B) {
	join := benchScan()
	dir := Message{Type: MsgAssociate, UserID: 123456, Extender: 17, Reassociation: true}
	var buf, scratch []byte
	var m Message
	rd := bytes.NewReader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf = buf[:0]
		if buf, err = AppendFrame(buf, &join); err != nil {
			b.Fatal(err)
		}
		if buf, err = AppendFrame(buf, &dir); err != nil {
			b.Fatal(err)
		}
		rd.Reset(buf)
		if err := ReadFrame(rd, &m, &scratch); err != nil {
			b.Fatal(err)
		}
		if err := ReadFrame(rd, &m, &scratch); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJSONEncodeDecode is the same exchange through the legacy
// newline-delimited JSON codec — the baseline the binary codec replaces
// (BENCH_wire.json records both).
func BenchmarkJSONEncodeDecode(b *testing.B) {
	join := benchScan()
	dir := Message{Type: MsgAssociate, UserID: 123456, Extender: 17, Reassociation: true}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := enc.Encode(join); err != nil {
			b.Fatal(err)
		}
		if err := enc.Encode(dir); err != nil {
			b.Fatal(err)
		}
		dec := json.NewDecoder(&buf)
		var m Message
		if err := dec.Decode(&m); err != nil {
			b.Fatal(err)
		}
		if err := dec.Decode(&m); err != nil {
			b.Fatal(err)
		}
	}
}
