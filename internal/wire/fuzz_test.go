package wire

import (
	"bytes"
	"math"
	"reflect"
	"testing"
)

// FuzzWireRoundTrip fuzzes encode→decode == original over every Message
// shape the protocol can express, pinning the PR 4 wire regressions
// (extender 0, explicit Reassociation) against the binary codec too:
// the fixed field layout encodes Extender and Reassociation always, so
// no fuzz input can produce a frame where extender 0 is conflated with
// "no extender". Float vectors are reconstructed bit-exactly (NaN
// payloads included); comparisons normalize only the nil-vs-empty
// distinction the codec deliberately collapses (like JSON omitempty).
func FuzzWireRoundTrip(f *testing.F) {
	f.Add(byte(1), int64(0), int64(0), false, "", "", []byte{}, []byte{}, false, "", int64(0), int64(0))
	f.Add(byte(4), int64(3), int64(0), false, "", "", []byte{}, []byte{}, false, "", int64(0), int64(0))
	f.Add(byte(4), int64(9), int64(4), true, "", "", []byte{}, []byte{}, false, "", int64(0), int64(0))
	f.Add(byte(5), int64(7), int64(0), false, "127.0.0.1:9", "", []byte{}, []byte{}, false, "", int64(0), int64(0))
	f.Add(byte(1), int64(2), int64(0), false, "", "", []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, []byte{255, 0, 1}, false, "", int64(0), int64(0))
	f.Add(byte(8), int64(0), int64(0), false, "", "boom", []byte{}, []byte{}, true, "wolt", int64(12), int64(-3))
	f.Add(byte(9), int64(-4), int64(-1), true, "", "no extender", []byte{}, []byte{}, false, "", int64(0), int64(0))

	f.Fuzz(func(t *testing.T, code byte, userID, extender int64, reassoc bool,
		addr, errStr string, ratesRaw, rssiRaw []byte, withStats bool,
		policy string, statA, statB int64) {
		typ, err := codeType(code%9 + 1)
		if err != nil {
			t.Fatalf("in-range code rejected: %v", err)
		}
		in := Message{
			Type:          typ,
			UserID:        int(userID),
			Extender:      int(extender),
			Reassociation: reassoc,
			Rates:         bytesToFloats(ratesRaw),
			RSSI:          bytesToFloats(rssiRaw),
			Addr:          addr,
			Error:         errStr,
		}
		if withStats {
			in.Stats = &Stats{
				Policy: policy,
				Users:  int(statA), Joins: int(statB), Leaves: int(statA ^ statB),
				Reassociations: int(statA + statB), DroppedReassigns: int(statB - statA),
				DroppedPushes: int(statA >> 1),
				Assignment:    map[int]int{int(statA): int(statB), int(statB): 0},
			}
		}

		frame, err := AppendFrame(nil, &in)
		if err != nil {
			t.Fatalf("encode %+v: %v", in, err)
		}
		var out Message
		var scratch []byte
		if err := ReadFrame(bytes.NewReader(frame), &out, &scratch); err != nil {
			t.Fatalf("decode of own encoding failed: %v\nframe % x", err, frame)
		}
		if !equalMessages(in, out) {
			t.Errorf("round trip mangled the message:\n in  %+v\n out %+v", in, out)
		}

		// Re-encoding the decoded message must be byte-identical: the
		// codec has exactly one encoding per (normalized) message.
		frame2, err := AppendFrame(nil, &out)
		if err != nil {
			t.Fatalf("re-encode: %v", err)
		}
		if in.Stats == nil && !bytes.Equal(frame, frame2) {
			// (Stats frames iterate a map, so their byte order is not
			// canonical; every other shape is.)
			t.Errorf("re-encode not canonical:\n first  % x\n second % x", frame, frame2)
		}
	})
}

// FuzzWireDecodeRobust throws arbitrary bytes at the frame decoder: it
// must reject or accept without panicking, and anything it accepts must
// re-encode into a frame it accepts again (decode ∘ encode is total on
// the codec's image).
func FuzzWireDecodeRobust(f *testing.F) {
	good, _ := AppendFrame(nil, &Message{Type: MsgJoin, UserID: 3, Rates: []float64{1, 2, 3}})
	f.Add(good)
	f.Add([]byte{4, 0, 0, 0, 1, 0, 0, 0})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, raw []byte) {
		var m Message
		var scratch []byte
		if err := ReadFrame(bytes.NewReader(raw), &m, &scratch); err != nil {
			return
		}
		frame, err := AppendFrame(nil, &m)
		if err != nil {
			t.Fatalf("decoded message failed to re-encode: %+v: %v", m, err)
		}
		var m2 Message
		if err := ReadFrame(bytes.NewReader(frame), &m2, &scratch); err != nil {
			t.Fatalf("re-encoded frame rejected: %v", err)
		}
		if !equalMessages(m, m2) {
			t.Errorf("decode/encode/decode drifted:\n first  %+v\n second %+v", m, m2)
		}
	})
}

// bytesToFloats builds a float64 vector from fuzz bytes, 8 bytes per
// element (trailing partial group dropped), so the fuzzer explores
// arbitrary bit patterns including NaNs and infinities.
func bytesToFloats(raw []byte) []float64 {
	n := len(raw) / 8
	if n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		var bits uint64
		for j := 0; j < 8; j++ {
			bits = bits<<8 | uint64(raw[i*8+j])
		}
		out[i] = math.Float64frombits(bits)
	}
	return out
}

// equalMessages compares two messages with NaN-tolerant float equality
// and the codec's nil-vs-empty normalization.
func equalMessages(a, b Message) bool {
	if a.Type != b.Type || a.UserID != b.UserID || a.Extender != b.Extender ||
		a.Reassociation != b.Reassociation || a.Addr != b.Addr || a.Error != b.Error {
		return false
	}
	if !equalFloats(a.Rates, b.Rates) || !equalFloats(a.RSSI, b.RSSI) {
		return false
	}
	as, bs := a.Stats, b.Stats
	if (as == nil) != (bs == nil) {
		return false
	}
	if as == nil {
		return true
	}
	an, bn := *as, *bs
	if len(an.Assignment) == 0 {
		an.Assignment = nil
	}
	if len(bn.Assignment) == 0 {
		bn.Assignment = nil
	}
	return reflect.DeepEqual(an, bn)
}

func equalFloats(a, b []float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Bit equality: NaN payloads must survive the wire.
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			return false
		}
	}
	return true
}
