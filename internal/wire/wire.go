// Package wire is the WOLT control plane's wire layer: the protocol
// message types shared by agents and controllers, and a length-prefixed
// binary codec for them built for the city-scale hot path (scan reports
// up, association directives down, thousands of times per second per
// member).
//
// Frame layout (DESIGN.md §15):
//
//	[4B little-endian length][1B message type][payload]
//
// The length covers the type byte and the payload. The payload encodes
// every Message field in a fixed order — varints for the integer and
// string-length fields, one byte for booleans, raw little-endian IEEE
// 754 words for the float64 rate/RSSI vectors — so there is no field
// tagging, no reflection and no text to parse. Encoding appends to a
// caller-owned buffer and decoding reuses the slices of a caller-owned
// Message, which is how the conn layer reaches 0 allocs/op at steady
// state (pinned by TestWireSteadyStateAllocs).
//
// A connection opens with the two-byte hello [Hello, Version1]. Hello
// (0xA7) can never begin a newline-delimited JSON message, so a server
// peeking one byte at accept time distinguishes a binary-codec peer from
// a legacy JSON agent and falls back per connection — old agents keep
// working against new controllers (internal/control negotiates; this
// package only defines the bytes).
//
// The package is a stdlib-only leaf importable solely from
// internal/control and internal/shard (scripts/lint-imports.sh): every
// other layer speaks through the control plane's types, which alias the
// ones defined here.
package wire

import (
	"encoding/binary"
	"fmt"
	"io"
	"math"
)

// Handshake bytes. A binary-codec client writes [Hello, Version1]
// before its first frame; servers peek the first byte to negotiate.
const (
	// Hello is the binary-codec magic byte. 0xA7 is outside ASCII and
	// can never start a JSON message ('{' = 0x7B), so the negotiation
	// needs exactly one peeked byte.
	Hello byte = 0xA7
	// Version1 is the only frame-layout version; a server closes
	// connections offering a version it does not speak.
	Version1 byte = 1
)

// MaxFrame bounds one frame's length field (64 MiB). A stats reply
// carrying a million-user assignment map fits with an order of
// magnitude to spare; anything larger is a corrupt or hostile peer and
// is rejected before any allocation happens.
const MaxFrame = 1 << 26

// MsgType discriminates protocol messages.
type MsgType string

// Message types exchanged between agents and the controller.
const (
	// MsgJoin is sent by an agent when it needs an association. It
	// carries the agent's user ID and its scan report.
	MsgJoin MsgType = "join"
	// MsgLeave is sent by an agent that is disconnecting.
	MsgLeave MsgType = "leave"
	// MsgUpdate is sent by an associated agent whose radio environment
	// changed (mobility): it carries a fresh scan report. The controller
	// may push re-association directives in response.
	MsgUpdate MsgType = "update"
	// MsgAssociate is sent by the CC to direct an agent to an extender.
	MsgAssociate MsgType = "associate"
	// MsgRedirect is sent by a shard-member CC that does not own the
	// joining user's best-rate extender: Addr names the member that does,
	// and the agent re-sends its join there (cross-shard handoff).
	MsgRedirect MsgType = "redirect"
	// MsgPing is an agent keepalive. The controller ignores it, but the
	// bytes reset the server-side read deadline, so a healthy idle agent
	// is never dropped as stalled.
	MsgPing MsgType = "ping"
	// MsgStats asks the CC for a snapshot of controller statistics.
	MsgStats MsgType = "stats"
	// MsgStatsReply answers MsgStats.
	MsgStatsReply MsgType = "stats_reply"
	// MsgError reports a protocol or policy failure to the agent.
	MsgError MsgType = "error"
)

// Message is the single wire format; fields are used according to Type.
// The JSON tags define the legacy newline-delimited JSON encoding the
// binary codec replaced (still spoken to old agents after negotiation).
type Message struct {
	Type MsgType `json:"type"`
	// UserID identifies the agent (join, leave, associate).
	UserID int `json:"userId,omitempty"`
	// Rates is the scan report: estimated WiFi PHY rate in Mbps to each
	// extender, indexed by extender ID (join).
	Rates []float64 `json:"ratesMbps,omitempty"`
	// RSSI is the scan report's signal strengths in dBm (join).
	RSSI []float64 `json:"rssiDbm,omitempty"`
	// Extender is the association directive target (associate). It is
	// deliberately NOT omitempty: extender 0 is a valid directive target
	// and must appear explicitly on the wire rather than lean on Go's
	// zero-value decoding. (The binary codec has no optional fields at
	// all — every field is always encoded, so extender 0 cannot be
	// conflated with an absent one there either.)
	Extender int `json:"extender"`
	// Reassociation marks a directive that moves an already-associated
	// user (associate). Like Extender it is always serialized: "false"
	// is a statement (first association), not an absence.
	Reassociation bool `json:"reassociation"`
	// Addr is the address of the shard member the agent should re-join
	// (redirect).
	Addr string `json:"addr,omitempty"`
	// Stats is the controller snapshot (stats_reply).
	Stats *Stats `json:"stats,omitempty"`
	// Error carries a human-readable failure description (error).
	Error string `json:"error,omitempty"`
}

// Stats is a controller snapshot.
type Stats struct {
	Policy         string `json:"policy"`
	Users          int    `json:"users"`
	Joins          int    `json:"joins"`
	Leaves         int    `json:"leaves"`
	Reassociations int    `json:"reassociations"`
	// DroppedReassigns counts departures under ReassignOnLeave whose
	// re-solve failed: the leave stood, the rebalance was dropped.
	DroppedReassigns int `json:"droppedReassigns"`
	// DroppedPushes counts directives the server discarded because the
	// target connection's bounded outbound queue was full (a stalled
	// agent; see control.ServerConfig.PushQueueDepth).
	DroppedPushes int         `json:"droppedPushes"`
	Assignment    map[int]int `json:"assignment"`
}

// typeCode maps a MsgType to its one-byte wire code. Code 0 is reserved
// so a zeroed header byte is always invalid.
func typeCode(t MsgType) (byte, error) {
	switch t {
	case MsgJoin:
		return 1, nil
	case MsgLeave:
		return 2, nil
	case MsgUpdate:
		return 3, nil
	case MsgAssociate:
		return 4, nil
	case MsgRedirect:
		return 5, nil
	case MsgPing:
		return 6, nil
	case MsgStats:
		return 7, nil
	case MsgStatsReply:
		return 8, nil
	case MsgError:
		return 9, nil
	}
	return 0, fmt.Errorf("wire: unencodable message type %q", t)
}

// codeType is typeCode's inverse; the returned MsgType values are the
// package constants, so decoding a type never allocates.
func codeType(c byte) (MsgType, error) {
	switch c {
	case 1:
		return MsgJoin, nil
	case 2:
		return MsgLeave, nil
	case 3:
		return MsgUpdate, nil
	case 4:
		return MsgAssociate, nil
	case 5:
		return MsgRedirect, nil
	case 6:
		return MsgPing, nil
	case 7:
		return MsgStats, nil
	case 8:
		return MsgStatsReply, nil
	case 9:
		return MsgError, nil
	}
	return "", fmt.Errorf("wire: unknown message type code %d", c)
}

// AppendFrame appends m's complete frame (length header included) to dst
// and returns the extended slice. It allocates only when dst lacks
// capacity, so a conn reusing its buffer encodes at 0 allocs/op. The
// one encode error is a Type outside the protocol's message set; dst is
// returned unextended then.
func AppendFrame(dst []byte, m *Message) ([]byte, error) {
	code, err := typeCode(m.Type)
	if err != nil {
		return dst, err
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0, code)
	dst = binary.AppendVarint(dst, int64(m.UserID))
	dst = binary.AppendVarint(dst, int64(m.Extender))
	dst = appendBool(dst, m.Reassociation)
	dst = appendFloats(dst, m.Rates)
	dst = appendFloats(dst, m.RSSI)
	dst = appendString(dst, m.Addr)
	dst = appendString(dst, m.Error)
	if m.Stats == nil {
		dst = append(dst, 0)
	} else {
		dst = append(dst, 1)
		dst = appendStats(dst, m.Stats)
	}
	frameLen := len(dst) - start - 4
	if frameLen > MaxFrame {
		return dst[:start], fmt.Errorf("wire: frame length %d exceeds limit %d", frameLen, MaxFrame)
	}
	binary.LittleEndian.PutUint32(dst[start:], uint32(frameLen))
	return dst, nil
}

func appendBool(dst []byte, v bool) []byte {
	if v {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendFloats(dst []byte, v []float64) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(v)))
	for _, f := range v {
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
	}
	return dst
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendStats(dst []byte, st *Stats) []byte {
	dst = appendString(dst, st.Policy)
	dst = binary.AppendVarint(dst, int64(st.Users))
	dst = binary.AppendVarint(dst, int64(st.Joins))
	dst = binary.AppendVarint(dst, int64(st.Leaves))
	dst = binary.AppendVarint(dst, int64(st.Reassociations))
	dst = binary.AppendVarint(dst, int64(st.DroppedReassigns))
	dst = binary.AppendVarint(dst, int64(st.DroppedPushes))
	dst = binary.AppendUvarint(dst, uint64(len(st.Assignment)))
	for id, ext := range st.Assignment {
		dst = binary.AppendVarint(dst, int64(id))
		dst = binary.AppendVarint(dst, int64(ext))
	}
	return dst
}

// frameReader is a bounds-checked cursor over one frame's payload. The
// first decode error sticks; every later read returns zero values, so
// DecodeFrame checks err exactly once at the end.
type frameReader struct {
	p   []byte
	off int
	err error
}

func (r *frameReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("wire: truncated or corrupt %s at offset %d", what, r.off)
	}
}

func (r *frameReader) varint(what string) int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.p[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return int(v)
}

func (r *frameReader) uvarint(what string) int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.p[r.off:])
	if n <= 0 || v > MaxFrame {
		r.fail(what)
		return 0
	}
	r.off += n
	return int(v)
}

func (r *frameReader) bool(what string) bool {
	if r.err != nil {
		return false
	}
	if r.off >= len(r.p) || r.p[r.off] > 1 {
		r.fail(what)
		return false
	}
	v := r.p[r.off] == 1
	r.off++
	return v
}

// floats decodes a length-prefixed float64 vector into dst's capacity,
// allocating only on growth. A zero-length vector yields dst[:0] —
// which is nil when dst started nil, matching the JSON codec's
// omitempty round-trip (nil in, nil out on a fresh Message).
func (r *frameReader) floats(dst []float64, what string) []float64 {
	n := r.uvarint(what)
	if r.err != nil {
		return dst[:0]
	}
	if n > (len(r.p)-r.off)/8 {
		r.fail(what)
		return dst[:0]
	}
	if cap(dst) < n {
		dst = make([]float64, n)
	} else {
		dst = dst[:n]
	}
	for i := 0; i < n; i++ {
		dst[i] = math.Float64frombits(binary.LittleEndian.Uint64(r.p[r.off:]))
		r.off += 8
	}
	return dst
}

// string decodes a length-prefixed string. Zero-length strings are ""
// without allocating; anything longer is one string copy (redirect
// addresses and error texts — never the steady-state path).
func (r *frameReader) string(what string) string {
	n := r.uvarint(what)
	if r.err != nil || n == 0 {
		return ""
	}
	if n > len(r.p)-r.off {
		r.fail(what)
		return ""
	}
	s := string(r.p[r.off : r.off+n])
	r.off += n
	return s
}

// DecodeFrame decodes one frame body (type byte + payload, the length
// header already consumed) into m, reusing m's Rates/RSSI capacity.
// Every Message field is overwritten — a reused m never leaks state
// between frames. Trailing bytes after the last field are an error:
// frames are exact, not extensible-by-garbage.
func DecodeFrame(body []byte, m *Message) error {
	if len(body) < 1 {
		return fmt.Errorf("wire: empty frame")
	}
	t, err := codeType(body[0])
	if err != nil {
		return err
	}
	r := frameReader{p: body, off: 1}
	m.Type = t
	m.UserID = r.varint("userId")
	m.Extender = r.varint("extender")
	m.Reassociation = r.bool("reassociation")
	m.Rates = r.floats(m.Rates, "rates")
	m.RSSI = r.floats(m.RSSI, "rssi")
	m.Addr = r.string("addr")
	m.Error = r.string("error")
	if r.bool("stats presence") {
		st := &Stats{}
		st.Policy = r.string("stats.policy")
		st.Users = r.varint("stats.users")
		st.Joins = r.varint("stats.joins")
		st.Leaves = r.varint("stats.leaves")
		st.Reassociations = r.varint("stats.reassociations")
		st.DroppedReassigns = r.varint("stats.droppedReassigns")
		st.DroppedPushes = r.varint("stats.droppedPushes")
		n := r.uvarint("stats.assignment")
		if r.err == nil && n > 0 {
			// Each pair is at least 2 bytes; reject counts the remaining
			// payload cannot possibly hold before allocating the map.
			if n > (len(r.p)-r.off)/2 {
				r.fail("stats.assignment")
			} else {
				st.Assignment = make(map[int]int, n)
				for i := 0; i < n; i++ {
					id := r.varint("stats.assignment key")
					ext := r.varint("stats.assignment value")
					st.Assignment[id] = ext
				}
			}
		}
		m.Stats = st
	} else {
		m.Stats = nil
	}
	if r.err != nil {
		return r.err
	}
	if r.off != len(body) {
		return fmt.Errorf("wire: %d trailing bytes after message", len(body)-r.off)
	}
	return nil
}

// ReadFrame reads one length-prefixed frame from r and decodes it into
// m, growing *buf as the frame body scratch (reused across calls: 0
// allocs/op at steady state). Returns any transport error verbatim
// (io.EOF on a clean close before a header).
func ReadFrame(r io.Reader, m *Message, buf *[]byte) error {
	// The header is read through *buf rather than a stack array: a local
	// array passed through the io.Reader interface escapes, costing one
	// allocation per frame — the exact thing this path exists to avoid.
	if cap(*buf) < 4 {
		*buf = make([]byte, 64)
	}
	hdr := (*buf)[:4]
	if _, err := io.ReadFull(r, hdr); err != nil {
		return err
	}
	n := int(binary.LittleEndian.Uint32(hdr))
	if n < 1 || n > MaxFrame {
		return fmt.Errorf("wire: bad frame length %d", n)
	}
	if cap(*buf) < n {
		*buf = make([]byte, n)
	}
	body := (*buf)[:n]
	if _, err := io.ReadFull(r, body); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return fmt.Errorf("wire: truncated frame: %w", err)
	}
	return DecodeFrame(body, m)
}
