package sweep

import (
	"testing"

	"github.com/plcwifi/wolt/internal/model"
)

var redistribute = model.Options{Redistribute: true}

func TestGrid(t *testing.T) {
	points := Grid([]int{5, 10}, []int{20, 40, 60}, 100, 200)
	if len(points) != 6 {
		t.Fatalf("got %d points, want 6", len(points))
	}
	if points[0] != (Point{Extenders: 5, Users: 20, CapMin: 100, CapMax: 200}) {
		t.Errorf("first point = %+v", points[0])
	}
	if points[5] != (Point{Extenders: 10, Users: 60, CapMin: 100, CapMax: 200}) {
		t.Errorf("last point = %+v", points[5])
	}
}

func TestRunValidation(t *testing.T) {
	if _, err := Run(Config{}); err == nil {
		t.Error("empty grid: want error")
	}
	if _, err := Run(Config{Points: []Point{{Extenders: 0, Users: 5, CapMin: 1, CapMax: 2}}}); err == nil {
		t.Error("bad point: want error")
	}
	if _, err := Run(Config{Points: []Point{{Extenders: 2, Users: 5, CapMin: 10, CapMax: 5}}}); err == nil {
		t.Error("inverted cap range: want error")
	}
}

func TestRunSmallSweep(t *testing.T) {
	cfg := Config{
		Points:    Grid([]int{4}, []int{12, 20}, 300, 800),
		Trials:    3,
		Seed:      7,
		ModelOpts: redistribute,
	}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if r.WOLT <= 0 || r.Greedy <= 0 || r.Selfish <= 0 || r.RSSI <= 0 {
			t.Errorf("non-positive aggregates: %+v", r)
		}
		if r.VsGreedy <= 0 || r.VsSelfish <= 0 || r.VsRSSI <= 0 {
			t.Errorf("non-positive ratios: %+v", r)
		}
		if r.SaturationIndex < 0 || r.SaturationIndex > 1 {
			t.Errorf("saturation index %v outside [0,1]", r.SaturationIndex)
		}
	}
}

// TestSaturationRegimeDetected is the sweep's reason to exist: with the
// testbed's 60–160 Mbps capacities and many extenders the PLC side
// saturates (index near 1) and the policy ratios collapse toward 1.0;
// with AV2-class links the index drops and WOLT's edge appears.
func TestSaturationRegimeDetected(t *testing.T) {
	cfg := Config{
		Points: []Point{
			{Extenders: 10, Users: 36, CapMin: 60, CapMax: 160},
			{Extenders: 10, Users: 36, CapMin: 300, CapMax: 800},
		},
		Trials:    4,
		Seed:      500,
		ModelOpts: redistribute,
	}
	results, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	low, high := results[0], results[1]
	if low.SaturationIndex <= high.SaturationIndex {
		t.Errorf("saturation index should fall with capacity: %v -> %v",
			low.SaturationIndex, high.SaturationIndex)
	}
	if low.SaturationIndex < 0.8 {
		t.Errorf("60-160 Mbps regime not saturated: index %v", low.SaturationIndex)
	}
	// In the saturated regime the spreading policies tie within a few
	// percent.
	if low.VsRSSI > 1.05 || low.VsRSSI < 0.95 {
		t.Errorf("saturated regime should tie WOLT vs RSSI, got ratio %v", low.VsRSSI)
	}
	// In the WiFi-bound regime WOLT pulls ahead of Selfish.
	if high.VsSelfish < 1.02 {
		t.Errorf("WiFi-bound regime: WOLT/Selfish ratio %v, want > 1.02", high.VsSelfish)
	}
}

func TestDeterministic(t *testing.T) {
	cfg := Config{
		Points:    []Point{{Extenders: 3, Users: 10, CapMin: 300, CapMax: 800}},
		Trials:    2,
		Seed:      9,
		ModelOpts: redistribute,
	}
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != b[0] {
		t.Errorf("sweep not deterministic:\n%+v\n%+v", a[0], b[0])
	}
}
