// Package sweep runs parameter sweeps over the enterprise simulation:
// grids of (extenders × users × PLC capacity range) with every policy,
// producing the sensitivity picture behind the paper's single-point
// results ("up to 15 extenders and 124 clients", §V-E) — where WOLT's
// advantage grows, where it vanishes, and where the PLC-saturation
// degeneracy (DESIGN.md §6) sets in.
package sweep

import (
	"fmt"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// Point is one grid cell of the sweep.
type Point struct {
	Extenders int
	Users     int
	// CapMin/CapMax bound the PLC isolation capacities (Mbps).
	CapMin, CapMax float64
}

// Config parameterizes a sweep.
type Config struct {
	// Points is the grid to evaluate.
	Points []Point
	// Trials is the number of random topologies per point (default 10).
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Radio is the WiFi model; nil selects the enterprise calibration
	// (14 dBm, exponent 3.5, 7 dB shadowing).
	Radio *radio.Model
	// ModelOpts selects the evaluation model (redistribution on by
	// default-zero semantics is NOT applied here; set explicitly).
	ModelOpts model.Options
}

// Grid builds the cartesian product of the given axes with a fixed
// capacity range.
func Grid(extenders, users []int, capMin, capMax float64) []Point {
	var points []Point
	for _, e := range extenders {
		for _, u := range users {
			points = append(points, Point{Extenders: e, Users: u, CapMin: capMin, CapMax: capMax})
		}
	}
	return points
}

// Result is the outcome at one grid point.
type Result struct {
	Point Point
	// Mean aggregate throughput per policy, Mbps.
	WOLT, Greedy, Selfish, RSSI float64
	// Ratios of WOLT's mean over each baseline's.
	VsGreedy, VsSelfish, VsRSSI float64
	// SaturationIndex is the mean fraction of extenders whose PLC side
	// is the end-to-end bottleneck under WOLT — near 1.0 flags the
	// degenerate regime where association stops mattering.
	SaturationIndex float64
}

// Run evaluates every grid point.
func Run(cfg Config) ([]Result, error) {
	if len(cfg.Points) == 0 {
		return nil, fmt.Errorf("sweep: no grid points")
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 10
	}
	rm := cfg.radioModel()

	results := make([]Result, 0, len(cfg.Points))
	for pi, pt := range cfg.Points {
		if pt.Extenders <= 0 || pt.Users <= 0 || pt.CapMin <= 0 || pt.CapMax < pt.CapMin {
			return nil, fmt.Errorf("sweep: bad point %+v", pt)
		}
		topoCfg := topology.Config{
			Width: 100, Height: 100,
			NumExtenders:       pt.Extenders,
			NumUsers:           pt.Users,
			PLCCapacityMinMbps: pt.CapMin,
			PLCCapacityMaxMbps: pt.CapMax,
			Seed:               cfg.Seed + int64(pi)*1000,
		}
		static := netsim.StaticConfig{
			Topology:  topoCfg,
			Radio:     &rm,
			Trials:    trials,
			ModelOpts: cfg.ModelOpts,
		}
		policies := []netsim.Policy{
			netsim.WOLTPolicy{},
			netsim.GreedyPolicy{ModelOpts: cfg.ModelOpts},
			netsim.SelfishPolicy{ModelOpts: cfg.ModelOpts},
			netsim.RSSIPolicy{},
		}
		runs, err := netsim.RunStatic(static, policies)
		if err != nil {
			return nil, fmt.Errorf("sweep point %+v: %w", pt, err)
		}
		res := Result{
			Point:   pt,
			WOLT:    runs[0].MeanAggregate(),
			Greedy:  runs[1].MeanAggregate(),
			Selfish: runs[2].MeanAggregate(),
			RSSI:    runs[3].MeanAggregate(),
		}
		res.VsGreedy = stats.Ratio(res.WOLT, res.Greedy)
		res.VsSelfish = stats.Ratio(res.WOLT, res.Selfish)
		res.VsRSSI = stats.Ratio(res.WOLT, res.RSSI)

		sat, err := saturationIndex(topoCfg, rm, trials, cfg.ModelOpts)
		if err != nil {
			return nil, err
		}
		res.SaturationIndex = sat
		results = append(results, res)
	}
	return results, nil
}

func (c Config) radioModel() radio.Model {
	if c.Radio != nil {
		return *c.Radio
	}
	rm := radio.DefaultModel()
	rm.Channel.TxPowerDBm = 14
	rm.Channel.PathLossExponent = 3.5
	rm.ShadowSeed = c.Seed
	return rm
}

// saturationIndex measures, under WOLT, the mean fraction of active
// extenders whose delivered throughput is PLC-limited (the WiFi demand
// strictly exceeds what the backhaul share carried).
func saturationIndex(topoCfg topology.Config, rm radio.Model, trials int, opts model.Options) (float64, error) {
	var total float64
	for trial := 0; trial < trials; trial++ {
		tc := topoCfg
		tc.Seed += int64(trial)
		topo, err := topology.Generate(tc)
		if err != nil {
			return 0, err
		}
		inst := netsim.Build(topo, rm)
		assign, err := netsim.WOLTPolicy{}.OnEpoch(inst, nil)
		if err != nil {
			return 0, err
		}
		eval, err := model.Evaluate(inst.Net, assign, opts)
		if err != nil {
			return 0, err
		}
		saturated, active := 0, 0
		for j := range eval.PerExtender {
			if eval.WiFiDemand[j] <= 0 {
				continue
			}
			active++
			if eval.PerExtender[j] < eval.WiFiDemand[j]-1e-9 {
				saturated++
			}
		}
		if active > 0 {
			total += float64(saturated) / float64(active)
		}
	}
	return total / float64(trials), nil
}
