// Package sweep runs parameter sweeps over the enterprise simulation:
// grids of (extenders × users × PLC capacity range) with every policy,
// producing the sensitivity picture behind the paper's single-point
// results ("up to 15 extenders and 124 clients", §V-E) — where WOLT's
// advantage grows, where it vanishes, and where the PLC-saturation
// degeneracy (DESIGN.md §6) sets in.
package sweep

import (
	"context"
	"fmt"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/netsim"
	"github.com/plcwifi/wolt/internal/parallel"
	"github.com/plcwifi/wolt/internal/radio"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/topology"
)

// Point is one grid cell of the sweep.
type Point struct {
	Extenders int
	Users     int
	// CapMin/CapMax bound the PLC isolation capacities (Mbps).
	CapMin, CapMax float64
}

// Config parameterizes a sweep.
type Config struct {
	// Points is the grid to evaluate.
	Points []Point
	// Trials is the number of random topologies per point (default 10).
	Trials int
	// Seed drives all randomness.
	Seed int64
	// Radio is the WiFi model; nil selects the enterprise calibration
	// (14 dBm, exponent 3.5, 7 dB shadowing).
	Radio *radio.Model
	// ModelOpts selects the evaluation model (redistribution on by
	// default-zero semantics is NOT applied here; set explicitly).
	ModelOpts model.Options
	// Workers bounds the goroutines evaluating (point, trial) tasks
	// concurrently; <= 0 uses all available cores. Results are identical
	// for every worker count: each task's seed depends only on its grid
	// point and trial index, never on scheduling.
	Workers int
	// Ctx cancels a running sweep between tasks; nil means
	// context.Background(). On cancellation Run returns promptly with
	// the context's error.
	Ctx context.Context
}

// Grid builds the cartesian product of the given axes with a fixed
// capacity range.
func Grid(extenders, users []int, capMin, capMax float64) []Point {
	var points []Point
	for _, e := range extenders {
		for _, u := range users {
			points = append(points, Point{Extenders: e, Users: u, CapMin: capMin, CapMax: capMax})
		}
	}
	return points
}

// Result is the outcome at one grid point.
type Result struct {
	Point Point
	// Mean aggregate throughput per policy, Mbps.
	WOLT, Greedy, Selfish, RSSI float64
	// Ratios of WOLT's mean over each baseline's.
	VsGreedy, VsSelfish, VsRSSI float64
	// SaturationIndex is the mean fraction of extenders whose PLC side
	// is the end-to-end bottleneck under WOLT — near 1.0 flags the
	// degenerate regime where association stops mattering.
	SaturationIndex float64
}

// Run evaluates every grid point. The (point × trial) task grid is
// flattened and fanned out over cfg.Workers goroutines; the task for
// point pi, trial t seeds its topology with the nested derivation
// seed.Derive(seed.Derive(Seed, SweepPoint, pi), SweepTrial, t), so the
// output is bit-identical for every worker count. The saturation index
// is computed from the WOLT evaluation each trial already performs —
// the trials are not re-solved for it.
func Run(cfg Config) ([]Result, error) {
	if len(cfg.Points) == 0 {
		return nil, fmt.Errorf("sweep: no grid points")
	}
	for _, pt := range cfg.Points {
		if pt.Extenders <= 0 || pt.Users <= 0 || pt.CapMin <= 0 || pt.CapMax < pt.CapMin {
			return nil, fmt.Errorf("sweep: bad point %+v", pt)
		}
	}
	trials := cfg.Trials
	if trials <= 0 {
		trials = 10
	}
	rm := cfg.radioModel()
	// The policy values are stateless and shared by all workers.
	policies := []netsim.Policy{
		netsim.WOLTPolicy{},
		netsim.GreedyPolicy{ModelOpts: cfg.ModelOpts},
		netsim.SelfishPolicy{ModelOpts: cfg.ModelOpts},
		netsim.RSSIPolicy{},
	}

	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	workers := parallel.Workers(cfg.Workers)
	nTasks := len(cfg.Points) * trials
	trialGrid, err := parallel.Map(ctx, nTasks, workers, func(t int) ([]netsim.TrialResult, error) {
		pi, trial := t/trials, t%trials
		pt := cfg.Points[pi]
		pointSeed := seed.Derive(cfg.Seed, seed.SweepPoint, int64(pi))
		topoCfg := topology.Config{
			Width: 100, Height: 100,
			NumExtenders:       pt.Extenders,
			NumUsers:           pt.Users,
			PLCCapacityMinMbps: pt.CapMin,
			PLCCapacityMaxMbps: pt.CapMax,
			Seed:               seed.Derive(pointSeed, seed.SweepTrial, int64(trial)),
		}
		trs, err := netsim.RunTrial(topoCfg, rm, policies, cfg.ModelOpts)
		if err != nil {
			return nil, fmt.Errorf("sweep point %+v: %w", pt, err)
		}
		return trs, nil
	})
	if err != nil {
		return nil, err
	}

	results := make([]Result, len(cfg.Points))
	agg := make([]float64, trials)
	sat := make([]float64, trials)
	for pi, pt := range cfg.Points {
		var means [4]float64
		for p := range policies {
			for trial := 0; trial < trials; trial++ {
				agg[trial] = trialGrid[pi*trials+trial][p].Aggregate
			}
			means[p] = stats.Mean(agg)
		}
		for trial := 0; trial < trials; trial++ {
			sat[trial] = trialGrid[pi*trials+trial][0].SaturationFraction
		}
		res := Result{
			Point:           pt,
			WOLT:            means[0],
			Greedy:          means[1],
			Selfish:         means[2],
			RSSI:            means[3],
			SaturationIndex: stats.Mean(sat),
		}
		res.VsGreedy = stats.Ratio(res.WOLT, res.Greedy)
		res.VsSelfish = stats.Ratio(res.WOLT, res.Selfish)
		res.VsRSSI = stats.Ratio(res.WOLT, res.RSSI)
		results[pi] = res
	}
	return results, nil
}

func (c Config) radioModel() radio.Model {
	if c.Radio != nil {
		return *c.Radio
	}
	rm := radio.DefaultModel()
	rm.Channel.TxPowerDBm = 14
	rm.Channel.PathLossExponent = 3.5
	rm.ShadowSeed = c.Seed
	return rm
}
