package sweep

import (
	"reflect"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
)

// TestRunDeterministicAcrossWorkers asserts the sweep determinism
// contract: every grid-point mean, ratio and saturation index is
// bit-identical for any worker count, because task (point, trial) seeds
// only off its indices.
func TestRunDeterministicAcrossWorkers(t *testing.T) {
	cfg := Config{
		Points: Grid([]int{3, 5}, []int{12, 24}, 60, 160),
		Trials: 4,
		Seed:   42,
		ModelOpts: model.Options{
			Redistribute: true,
		},
	}
	cfg.Workers = 1
	want, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(want) != 4 {
		t.Fatalf("got %d results, want 4", len(want))
	}
	for _, workers := range []int{2, 4, 8, 0} {
		cfg.Workers = workers
		got, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Workers:%d result differs from Workers:1", workers)
		}
	}
}

func TestRunRejectsBadPointBeforeSpawning(t *testing.T) {
	cfg := Config{
		Points: []Point{
			{Extenders: 3, Users: 12, CapMin: 60, CapMax: 160},
			{Extenders: 0, Users: 12, CapMin: 60, CapMax: 160},
		},
		Trials: 2,
		Seed:   1,
	}
	if _, err := Run(cfg); err == nil {
		t.Fatal("bad grid point: want error")
	}
}

func BenchmarkSweep(b *testing.B) {
	cfg := Config{
		Points: Grid([]int{4, 8}, []int{24, 48}, 60, 160),
		Trials: 4,
		Seed:   7,
		ModelOpts: model.Options{
			Redistribute: true,
		},
	}
	for _, bc := range []struct {
		name    string
		workers int
	}{{"Workers1", 1}, {"WorkersAll", 0}} {
		cfg.Workers = bc.workers
		b.Run(bc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Run(cfg); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
