// Package city is the event-driven enterprise-campus harness: it drives
// a sharded WOLT control plane with open-loop arrival/departure/mobility
// streams at the scale the ROADMAP north star names (10^5–10^6 users
// over tens to hundreds of shards).
//
// The harness composes the repo's existing substrates instead of
// inventing new ones: internal/workload generates the churn trace
// (M/M/∞ dwell departures, optional diurnal arrival shaping),
// internal/eventsim schedules the roaming scan updates that interleave
// with it, and internal/seed derives every draw — per-user randomness is
// counter-mode (one int64 counter per user, draws hashed on demand), so
// a million users cost eight bytes of RNG state each instead of a live
// *rand.Rand. The plane under test is anything with the control-plane
// operation surface: a shard.Coordinator or a bare control.Engine
// (which is how the differential test replays one stream against both).
//
// Layering (enforced by scripts/lint-imports.sh): city drives the plane
// only through internal/shard and internal/control — never internal/model
// or the algorithm layers directly. DESIGN.md §12 documents the event
// model and the measurement contract.
package city

import (
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"github.com/plcwifi/wolt/internal/control"
	"github.com/plcwifi/wolt/internal/seed"
	"github.com/plcwifi/wolt/internal/shard"
	"github.com/plcwifi/wolt/internal/stats"
	"github.com/plcwifi/wolt/internal/strategy"
	"github.com/plcwifi/wolt/internal/workload"
)

// Plane is the control-plane operation surface the harness drives.
// *shard.Coordinator, *control.Engine and *TCPPlane all satisfy it (the
// last drives real sockets and the binary wire codec; see tcpplane.go).
type Plane interface {
	Join(userID int, rates, rssi []float64) ([]control.Directive, error)
	Update(userID int, rates, rssi []float64) ([]control.Directive, error)
	Leave(userID int) ([]control.Directive, bool)
}

// Deployment geometry: extenders sit on a square grid with cellSize
// meter spacing (a dense enterprise deployment); the WiFi PHY rate
// follows a smooth distance falloff calibrated so a user mid-cell sees
// several hundred Mbps and coverage dies out within ~2 cells.
const (
	cellSize = 60.0 // meters between neighboring extenders
	rateAt0  = 866.0
	rateHalf = 25.0 // distance (m) where the rate halves... roughly
	rateMin  = 5.0  // below this the extender is out of reach
)

// Config parameterizes one city run.
type Config struct {
	// Shards is the member count of the sharded plane (>= 1).
	Shards int
	// ExtendersPerShard sizes the deployment: the grid holds
	// Shards*ExtendersPerShard extenders (default 4).
	ExtendersPerShard int
	// TargetUsers is the steady-state population the open-loop streams
	// aim for: the arrival rate is TargetUsers/DwellMean (M/M/∞).
	TargetUsers int
	// InitialFill is the fraction of TargetUsers present at time 0
	// (default 0.9 — the run starts near steady state instead of
	// spending the horizon ramping up).
	InitialFill float64
	// Horizon is the simulated duration in seconds (default
	// 2*DwellMean).
	Horizon float64
	// DwellMean is a user's mean dwell time in seconds (default 60).
	DwellMean float64
	// UpdateMean is a user's mean time between roaming scan updates in
	// seconds; 0 disables mobility.
	UpdateMean float64
	// StepFrac is the roam step length as a fraction of the extender
	// grid spacing (default 0.5): each update moves the user a uniform
	// step up to StepFrac*cellSize in a uniform direction.
	StepFrac float64
	// DiurnalFloor, when positive, shapes arrivals with
	// workload.Diurnal(DiurnalPeriod, DiurnalFloor): the arrival rate
	// swings between floor*peak at the period boundaries and the peak
	// mid-period.
	DiurnalFloor float64
	// DiurnalPeriod is the diurnal cycle length (default Horizon).
	DiurnalPeriod float64
	// Policy is the member engines' association policy (default
	// wolt-hillclimb — the anytime solver the harness was built to
	// exercise).
	Policy string
	// Budget bounds each member's per-event re-solve (default
	// 200 probes when the policy is budget-aware and no budget is set).
	Budget strategy.Budget
	// ReassignOnLeave lets departures trigger warm repairs.
	ReassignOnLeave bool
	// Workers bounds each member's intra-solve parallelism
	// (bit-identical results for any value).
	Workers int
	// Seed roots every stream of the run: trace, user draws, extender
	// capacities, ring positions.
	Seed int64
	// Concurrency is the worker-lane count plane operations are
	// dispatched on (<= 1 = sequential, bit-identical to previous
	// releases). Operations of one user always land on the same lane
	// (hash user→lane), preserving the per-user join→update→leave order;
	// different users' operations interleave freely, which is exactly the
	// concurrency the lock-striped coordinator admits. Deterministic
	// Result fields stay deterministic (the event stream is generated
	// before dispatch); Directives/Reassociations counts under
	// re-solving policies become interleaving-dependent.
	Concurrency int
	// PlacementOnlyJoins routes member-engine joins through the policy's
	// online placement form (control.EngineConfig.PlacementOnlyJoins) —
	// the O(budget) warm path instead of a full per-join re-solve.
	PlacementOnlyJoins bool
	// FullResolveEvery, under PlacementOnlyJoins, forces a full re-solve
	// on every Nth join per member engine.
	FullResolveEvery int
	// SkipFinalAssignment leaves Result.FinalAssignment nil: at 10^6
	// users the merged map is an O(n) stop-the-world copy the sustained
	// benchmarks don't want to price.
	SkipFinalAssignment bool
}

func (cfg Config) withDefaults() Config {
	if cfg.ExtendersPerShard <= 0 {
		cfg.ExtendersPerShard = 4
	}
	if cfg.InitialFill == 0 {
		cfg.InitialFill = 0.9
	}
	if cfg.DwellMean <= 0 {
		cfg.DwellMean = 60
	}
	if cfg.Horizon <= 0 {
		cfg.Horizon = 2 * cfg.DwellMean
	}
	if cfg.StepFrac <= 0 {
		cfg.StepFrac = 0.5
	}
	if cfg.DiurnalPeriod <= 0 {
		cfg.DiurnalPeriod = cfg.Horizon
	}
	if cfg.Policy == "" {
		cfg.Policy = "wolt-hillclimb"
	}
	if cfg.Budget == (strategy.Budget{}) {
		switch cfg.Policy {
		case "wolt-hillclimb", "wolt-kopt", "wolt-anneal", "wolt-incremental":
			cfg.Budget = strategy.Budget{Probes: 200}
		}
	}
	return cfg
}

func (cfg Config) validate() error {
	if cfg.Shards < 1 {
		return fmt.Errorf("city: need at least 1 shard, got %d", cfg.Shards)
	}
	if cfg.TargetUsers < 1 {
		return fmt.Errorf("city: need a positive user target, got %d", cfg.TargetUsers)
	}
	if cfg.InitialFill < 0 || cfg.InitialFill > 1 {
		return fmt.Errorf("city: initial fill %v outside [0,1]", cfg.InitialFill)
	}
	if cfg.DiurnalFloor < 0 || cfg.DiurnalFloor > 1 {
		return fmt.Errorf("city: diurnal floor %v outside [0,1]", cfg.DiurnalFloor)
	}
	return nil
}

// Result is one run's outcome. The counter and assignment fields are
// bit-identical for a given Config regardless of Workers or wall-clock
// conditions; the latency/throughput fields (Elapsed, JoinsPerSec,
// P50Latency, P99Latency) are measurements of this host and must be
// excluded from determinism comparisons.
type Result struct {
	// Extenders/Users describe the instance: deployment size, peak and
	// final population.
	Extenders  int
	PeakUsers  int
	FinalUsers int

	// Events is the total operation count driven into the plane
	// (joins + leaves + updates); Directives the total directives it
	// returned.
	Events     int
	Joins      int
	Leaves     int
	Updates    int
	Directives int

	// Handoffs/Reassociations/DroppedReassigns are the plane's own
	// counters (zero when driving a bare engine, which has no handoffs).
	Handoffs         int
	Reassociations   int
	DroppedReassigns int
	// Redirects counts cross-member redirect hops agents followed (TCP
	// plane only; 0 when client-side routing dialed every owner
	// directly).
	Redirects int
	// DroppedPushes counts directives the members' bounded outbound
	// queues shed at stalled connections (TCP plane only; a host-load
	// measurement, not a deterministic counter).
	DroppedPushes int
	// HandoffRate is Handoffs per mobility update (0 when mobility is
	// off) — the cross-shard cost of roaming.
	HandoffRate float64

	// FinalAssignment is the plane's final user→extender map.
	FinalAssignment map[int]int

	// Wall-clock measurements (non-deterministic).
	Elapsed     time.Duration
	JoinsPerSec float64
	P50Latency  time.Duration
	P99Latency  time.Duration
}

// ScrubHostMetrics zeroes the fields that measure this host rather than
// the simulated system — Elapsed, JoinsPerSec and the latency
// percentiles. Determinism comparisons (tests, the replay harness) call
// it instead of hand-maintaining the field list; everything left is
// bit-identical for a given Config in sequential mode.
func (r *Result) ScrubHostMetrics() {
	r.Elapsed = 0
	r.JoinsPerSec = 0
	r.P50Latency = 0
	r.P99Latency = 0
	r.DroppedPushes = 0
}

// City is a prepared run: deployment, churn trace and per-user streams,
// reusable across planes (the differential test replays one City against
// a sharded and a single-engine plane).
type City struct {
	cfg   Config
	caps  []float64     // per-extender PLC capacities
	extX  []float64     // extender grid positions
	extY  []float64
	trace []workload.Event
	// users is indexed by user ID (workload IDs are dense ascending).
	users []userState
	// rates is the per-event scan scratch; planes copy what they keep.
	rates []float64
	side  int // grid side length (extenders per row)
}

// userState is the harness's own view of one user: position and the
// counter-mode randomness cursor. Presence is tracked by the run loop.
type userState struct {
	x, y    float64
	present bool
	ctr     int64
	nextUpd float64 // next scheduled roam time (mobility bookkeeping)
}

// New prepares a city: extender grid, PLC capacities and the churn
// trace. The returned City is reusable — each Run replays the same
// streams from scratch.
func New(cfg Config) (*City, error) {
	cfg = cfg.withDefaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	numExt := cfg.Shards * cfg.ExtendersPerShard
	side := int(math.Ceil(math.Sqrt(float64(numExt))))

	c := &City{
		cfg:  cfg,
		caps: make([]float64, numExt),
		extX: make([]float64, numExt),
		extY: make([]float64, numExt),
		side: side,
	}
	for j := 0; j < numExt; j++ {
		// PLC capacities in 300–800 Mbps: realistic spread for in-wall
		// powerline backhaul, seeded per extender.
		u := u01(seed.Derive(cfg.Seed, seed.CityExtender, int64(j)))
		c.caps[j] = 300 + 500*u
		c.extX[j] = float64(j%side) * cellSize
		c.extY[j] = float64(j/side) * cellSize
	}

	wcfg := workload.Config{
		ArrivalRate:  float64(cfg.TargetUsers) / cfg.DwellMean,
		DwellRate:    1 / cfg.DwellMean,
		Horizon:      cfg.Horizon,
		InitialUsers: int(math.Round(cfg.InitialFill * float64(cfg.TargetUsers))),
		Seed:         seed.Derive(cfg.Seed, seed.CityTrace, 0),
	}
	if cfg.DiurnalFloor > 0 {
		wcfg.RateShape = workload.Diurnal(cfg.DiurnalPeriod, cfg.DiurnalFloor)
	}
	trace, err := workload.Generate(wcfg)
	if err != nil {
		return nil, fmt.Errorf("city: %w", err)
	}
	c.trace = trace

	maxID := wcfg.InitialUsers
	for _, ev := range trace {
		if ev.UserID >= maxID {
			maxID = ev.UserID + 1
		}
	}
	c.users = make([]userState, maxID)
	c.rates = make([]float64, numExt)
	return c, nil
}

// NumExtenders returns the deployment size.
func (c *City) NumExtenders() int { return len(c.caps) }

// PLCCaps returns the deployment's per-extender PLC capacities (shared
// slice; callers must not mutate).
func (c *City) PLCCaps() []float64 { return c.caps }

// InitialUsers returns the population present at time 0.
func (c *City) InitialUsers() int {
	n := int(math.Round(c.cfg.InitialFill * float64(c.cfg.TargetUsers)))
	return n
}

// TraceLen returns the churn trace's event count.
func (c *City) TraceLen() int { return len(c.trace) }

// NewCoordinator builds the sharded plane this city was sized for.
func (c *City) NewCoordinator() (*shard.Coordinator, error) {
	return shard.NewCoordinator(shard.Config{
		Shards:             c.cfg.Shards,
		PLCCaps:            c.caps,
		Policy:             c.cfg.Policy,
		Workers:            c.cfg.Workers,
		Seed:               c.cfg.Seed,
		Budget:             c.cfg.Budget,
		ReassignOnLeave:    c.cfg.ReassignOnLeave,
		PlacementOnlyJoins: c.cfg.PlacementOnlyJoins,
		FullResolveEvery:   c.cfg.FullResolveEvery,
	})
}

// NewEngine builds an unsharded single-CC plane over the same deployment
// and policy — the differential-test reference.
func (c *City) NewEngine() (*control.Engine, error) {
	return control.NewEngine(control.EngineConfig{
		PLCCaps:            c.caps,
		Policy:             c.cfg.Policy,
		Workers:            c.cfg.Workers,
		Seed:               c.cfg.Seed,
		Budget:             c.cfg.Budget,
		ReassignOnLeave:    c.cfg.ReassignOnLeave,
		PlacementOnlyJoins: c.cfg.PlacementOnlyJoins,
		FullResolveEvery:   c.cfg.FullResolveEvery,
	})
}

// u01 maps a derived seed to a uniform float64 in [0,1) (the standard
// 53-bit mantissa construction).
func u01(z int64) float64 {
	return float64(uint64(z)>>11) / (1 << 53)
}

// draw returns user id's next uniform [0,1) variate, advancing its
// counter. Pure function of (seed, id, counter): replays and worker
// counts cannot perturb it.
func (c *City) draw(id int) float64 {
	base := seed.Derive(c.cfg.Seed, seed.CityUser, int64(id))
	u := c.users[id]
	v := u01(seed.Derive(base, seed.CityDraw, u.ctr))
	c.users[id].ctr++
	return v
}

// placeNew samples user id's initial position uniformly over the grid's
// bounding box.
func (c *City) placeNew(id int) {
	w := float64(c.side-1) * cellSize
	if w <= 0 {
		w = cellSize // single-extender degenerate grid: a small cell
	}
	c.users[id].x = c.draw(id) * w
	c.users[id].y = c.draw(id) * w
}

// roam moves user id one mobility step: a uniform direction, a uniform
// step length up to StepFrac*cellSize, clamped to the grid.
func (c *City) roam(id int) {
	theta := 2 * math.Pi * c.draw(id)
	r := c.cfg.StepFrac * cellSize * c.draw(id)
	w := float64(c.side-1) * cellSize
	if w <= 0 {
		w = cellSize
	}
	u := &c.users[id]
	u.x = clamp(u.x+r*math.Cos(theta), 0, w)
	u.y = clamp(u.y+r*math.Sin(theta), 0, w)
}

func clamp(v, lo, hi float64) float64 {
	return math.Min(hi, math.Max(lo, v))
}

// scanRates fills the shared rate scratch with user id's current PHY
// rates: smooth distance falloff, zeroed out of reach.
func (c *City) scanRates(id int) []float64 {
	u := &c.users[id]
	for j := range c.caps {
		dx, dy := u.x-c.extX[j], u.y-c.extY[j]
		d := math.Sqrt(dx*dx + dy*dy)
		r := rateAt0 / (1 + math.Pow(d/rateHalf, 3))
		if r < rateMin {
			r = 0
		}
		c.rates[j] = r
	}
	return c.rates
}

// expDraw turns user id's next uniform draw into an Exp(1/mean) delay.
func (c *City) expDraw(id int, mean float64) float64 {
	return -mean * math.Log(1-c.draw(id))
}

// opKind tags one plane operation in flight between the event generator
// and the dispatch path.
type opKind uint8

const (
	opJoin opKind = iota
	opUpdate
	opLeave
)

// planeOp is one generated operation. rates aliases the generator's
// shared scan scratch; a dispatch path that outlives the emit call must
// copy it (the concurrent lanes do).
type planeOp struct {
	kind  opKind
	id    int
	rates []float64
}

// applyOp drives one operation into the plane and returns its
// directives.
func applyOp(plane Plane, op planeOp) ([]control.Directive, error) {
	switch op.kind {
	case opJoin:
		dirs, err := plane.Join(op.id, op.rates, nil)
		if err != nil {
			return nil, fmt.Errorf("city: join user %d: %w", op.id, err)
		}
		return dirs, nil
	case opUpdate:
		dirs, err := plane.Update(op.id, op.rates, nil)
		if err != nil {
			return nil, fmt.Errorf("city: update user %d: %w", op.id, err)
		}
		return dirs, nil
	default:
		dirs, ok := plane.Leave(op.id)
		if !ok {
			return nil, fmt.Errorf("city: leave of absent user %d", op.id)
		}
		return dirs, nil
	}
}

// generate replays the churn trace merged with the roam queue, doing
// every per-user draw itself — placement, roam steps, scan rates,
// update scheduling, presence — so the operation stream handed to emit
// is bit-identical whether the operations execute inline (sequential
// mode) or on worker lanes. All deterministic Result counters (Joins,
// Leaves, Updates, Events, PeakUsers) are the generator's; only
// Directives and the latency sketches belong to the dispatch path.
//
// Mobility is a time-ordered queue of pending roam updates. Instead of
// a closure per event (allocation per roam), the eventsim kernel is
// bypassed for updates: users store their own nextUpd time and a binary
// heap of IDs orders them. A plain slice-heap keyed by (time, id) keeps
// scheduling allocation-free after warm-up.
func (c *City) generate(res *Result, emit func(planeOp) error) (present int, err error) {
	cfg := c.cfg
	heap := roamHeap{city: c}
	apply := func(id int, kind workload.EventKind, now float64) error {
		switch kind {
		case workload.Arrival:
			c.placeNew(id)
			c.users[id].present = true
			res.Joins++
			present++
			if present > res.PeakUsers {
				res.PeakUsers = present
			}
			if err := emit(planeOp{kind: opJoin, id: id, rates: c.scanRates(id)}); err != nil {
				return err
			}
			if cfg.UpdateMean > 0 {
				c.users[id].nextUpd = now + c.expDraw(id, cfg.UpdateMean)
				heap.push(id)
			}
		case workload.Departure:
			c.users[id].present = false
			res.Leaves++
			present--
			if err := emit(planeOp{kind: opLeave, id: id}); err != nil {
				return err
			}
		}
		res.Events++
		return nil
	}
	update := func(id int, now float64) error {
		u := &c.users[id]
		if !u.present {
			return nil // departed between schedule and fire
		}
		c.roam(id)
		res.Updates++
		res.Events++
		if err := emit(planeOp{kind: opUpdate, id: id, rates: c.scanRates(id)}); err != nil {
			return err
		}
		u.nextUpd = now + c.expDraw(id, cfg.UpdateMean)
		heap.push(id)
		return nil
	}

	// The trace only carries churn; the initial population joins at
	// time 0, in ID order.
	for id := 0; id < c.InitialUsers(); id++ {
		if err := apply(id, workload.Arrival, 0); err != nil {
			return present, err
		}
	}

	// Merge the churn trace with the roam queue in time order (FIFO on
	// ties: trace first, matching eventsim's arrival-before-roam seq
	// order at equal times).
	for _, ev := range c.trace {
		for {
			id, at, ok := heap.peek()
			if !ok || at > ev.Time {
				break
			}
			heap.pop()
			if err := update(id, at); err != nil {
				return present, err
			}
		}
		if err := apply(ev.UserID, ev.Kind, ev.Time); err != nil {
			return present, err
		}
	}
	for {
		id, at, ok := heap.peek()
		if !ok || at > cfg.Horizon {
			break
		}
		heap.pop()
		if err := update(id, at); err != nil {
			return present, err
		}
	}
	return present, nil
}

// Run replays the city's streams against a plane and measures it. The
// same City may be Run multiple times (against different planes or the
// same one rebuilt); each run resets the per-user streams so the event
// sequences are identical.
func (c *City) Run(plane Plane) (Result, error) {
	cfg := c.cfg
	for i := range c.users {
		c.users[i] = userState{}
	}

	res := Result{Extenders: len(c.caps)}
	// Fixed-memory latency accounting: one P² sketch per reported
	// percentile — O(1) state however many events the run drives, where
	// the old per-operation sample slice held millions of float64s at
	// city scale.
	p50, p99 := stats.MustQuantile(0.50), stats.MustQuantile(0.99)

	start := time.Now()
	var present int
	var err error
	if cfg.Concurrency > 1 {
		present, err = c.runConcurrent(plane, &res, p50, p99)
	} else {
		present, err = c.runSequential(plane, &res, p50, p99)
	}
	res.Elapsed = time.Since(start)
	res.FinalUsers = present
	if err != nil {
		return res, err
	}

	switch p := plane.(type) {
	case *shard.Coordinator:
		st := p.Stats()
		res.Handoffs = st.Handoffs
		res.Reassociations = st.Reassociations
		res.DroppedReassigns = st.DroppedReassigns
		if !cfg.SkipFinalAssignment {
			res.FinalAssignment = p.StatsWithAssignment().Assignment
		}
	case *control.Engine:
		st := p.StatsLite()
		res.Reassociations = st.Reassociations
		res.DroppedReassigns = st.DroppedReassigns
		if !cfg.SkipFinalAssignment {
			res.FinalAssignment = p.Stats().Assignment
		}
	case *TCPPlane:
		st, serr := p.Stats()
		if serr != nil {
			return res, serr
		}
		res.Reassociations = st.Reassociations
		res.DroppedReassigns = st.DroppedReassigns
		res.DroppedPushes = st.DroppedPushes
		res.Redirects = p.RedirectsSeen()
		// Join replies are the only directives the dispatch path sees
		// over TCP; the delivered count (async pushes included) is what
		// the agents metered.
		res.Directives = p.DirectivesSeen()
		if !cfg.SkipFinalAssignment {
			res.FinalAssignment = st.Assignment
		}
	}
	if res.Updates > 0 {
		res.HandoffRate = float64(res.Handoffs) / float64(res.Updates)
	}
	if sec := res.Elapsed.Seconds(); sec > 0 {
		res.JoinsPerSec = float64(res.Joins) / sec
	}
	res.P50Latency = time.Duration(p50.Value() * 1e3)
	res.P99Latency = time.Duration(p99.Value() * 1e3)
	return res, nil
}

// runSequential executes every generated operation inline — today's
// single-threaded path, bit-identical to previous releases.
func (c *City) runSequential(plane Plane, res *Result, p50, p99 *stats.Quantile) (int, error) {
	return c.generate(res, func(op planeOp) error {
		t0 := time.Now()
		dirs, err := applyOp(plane, op)
		lat := float64(time.Since(t0).Nanoseconds()) / 1e3
		p50.Add(lat)
		p99.Add(lat)
		if err != nil {
			return err
		}
		res.Directives += len(dirs)
		return nil
	})
}

// errCityAborted is the generator's stop signal once a lane worker has
// already captured the real failure.
var errCityAborted = errors.New("city: run aborted by worker error")

// runConcurrent fans generated operations out over cfg.Concurrency
// bounded worker lanes, hashing each user to a fixed lane so its
// join→update→leave order is preserved while different users'
// operations interleave — the load shape the lock-striped coordinator
// is built for. The first worker error aborts the generator; remaining
// queued operations are drained without effect.
func (c *City) runConcurrent(plane Plane, res *Result, p50, p99 *stats.Quantile) (int, error) {
	lanes := c.cfg.Concurrency
	const laneDepth = 64
	chans := make([]chan planeOp, lanes)
	for i := range chans {
		chans[i] = make(chan planeOp, laneDepth)
	}
	// Pooled scan-vector copies: the generator's scratch is reused per
	// event, so each dispatched op carries its own buffer, recycled
	// through a free channel once the worker is done with it.
	free := make(chan []float64, lanes*laneDepth+lanes)

	var (
		wg       sync.WaitGroup
		aborted  atomic.Bool
		errMu    sync.Mutex
		firstErr error
		latMu    sync.Mutex
	)
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
		aborted.Store(true)
	}
	release := func(op planeOp) {
		if op.rates == nil {
			return
		}
		select {
		case free <- op.rates:
		default:
		}
	}
	dirCounts := make([]int, lanes)
	for i := 0; i < lanes; i++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for op := range chans[lane] {
				if aborted.Load() {
					release(op)
					continue
				}
				t0 := time.Now()
				dirs, err := applyOp(plane, op)
				lat := float64(time.Since(t0).Nanoseconds()) / 1e3
				latMu.Lock()
				p50.Add(lat)
				p99.Add(lat)
				latMu.Unlock()
				release(op)
				if err != nil {
					fail(err)
					continue
				}
				dirCounts[lane] += len(dirs)
			}
		}(i)
	}

	present, genErr := c.generate(res, func(op planeOp) error {
		if aborted.Load() {
			return errCityAborted
		}
		if op.rates != nil {
			var buf []float64
			select {
			case buf = <-free:
			default:
				buf = make([]float64, len(c.caps))
			}
			copy(buf, op.rates)
			op.rates = buf
		}
		chans[uint(op.id)%uint(lanes)] <- op
		return nil
	})
	for _, ch := range chans {
		close(ch)
	}
	wg.Wait()
	for _, n := range dirCounts {
		res.Directives += n
	}
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err == nil && genErr != nil && !errors.Is(genErr, errCityAborted) {
		err = genErr
	}
	return present, err
}

// Run prepares and runs a city on its sharded plane in one call.
func Run(cfg Config) (Result, error) {
	c, err := New(cfg)
	if err != nil {
		return Result{}, err
	}
	coord, err := c.NewCoordinator()
	if err != nil {
		return Result{}, err
	}
	return c.Run(coord)
}

// roamHeap is a binary min-heap of user IDs ordered by their nextUpd
// times (ties by ID, so replays are order-stable). IDs live in a plain
// slice: no container/heap interface, no per-push allocation.
type roamHeap struct {
	city *City
	ids  []int
}

func (h *roamHeap) less(a, b int) bool {
	ua, ub := h.city.users[a], h.city.users[b]
	if ua.nextUpd != ub.nextUpd {
		return ua.nextUpd < ub.nextUpd
	}
	return a < b
}

func (h *roamHeap) push(id int) {
	h.ids = append(h.ids, id)
	i := len(h.ids) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(h.ids[i], h.ids[parent]) {
			break
		}
		h.ids[i], h.ids[parent] = h.ids[parent], h.ids[i]
		i = parent
	}
}

func (h *roamHeap) peek() (id int, at float64, ok bool) {
	if len(h.ids) == 0 {
		return 0, 0, false
	}
	id = h.ids[0]
	return id, h.city.users[id].nextUpd, true
}

func (h *roamHeap) pop() {
	n := len(h.ids)
	h.ids[0] = h.ids[n-1]
	h.ids = h.ids[:n-1]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.ids) && h.less(h.ids[l], h.ids[smallest]) {
			smallest = l
		}
		if r < len(h.ids) && h.less(h.ids[r], h.ids[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.ids[i], h.ids[smallest] = h.ids[smallest], h.ids[i]
		i = smallest
	}
}
