package city

import (
	"reflect"
	"testing"

	"github.com/plcwifi/wolt/internal/strategy"
)

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Shards: 0, TargetUsers: 10},
		{Shards: 2, TargetUsers: 0},
		{Shards: 2, TargetUsers: 10, InitialFill: 1.5},
		{Shards: 2, TargetUsers: 10, DiurnalFloor: -0.1},
	}
	for i, cfg := range bad {
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: config %+v accepted", i, cfg)
		}
	}
}

// TestCitySmallRunInvariants drives a small city end to end under the
// anytime policy and checks the bookkeeping: event counts match the
// trace, the final population matches the plane's view, and every
// present user ends associated.
func TestCitySmallRunInvariants(t *testing.T) {
	cfg := Config{
		Shards:      4,
		TargetUsers: 120,
		Horizon:     30,
		DwellMean:   15,
		UpdateMean:  20,
		Policy:      "wolt-hillclimb",
		Budget:      strategy.Budget{Probes: 100},
		Seed:        31,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := c.NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(coord)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != res.Joins+res.Leaves+res.Updates {
		t.Errorf("events %d != joins %d + leaves %d + updates %d",
			res.Events, res.Joins, res.Leaves, res.Updates)
	}
	if res.Joins != c.InitialUsers()+countArrivals(c) {
		t.Errorf("joins = %d, want initial %d + trace arrivals %d",
			res.Joins, c.InitialUsers(), countArrivals(c))
	}
	st := coord.Stats()
	if st.Users != res.FinalUsers {
		t.Errorf("plane reports %d users, harness counted %d", st.Users, res.FinalUsers)
	}
	if len(res.FinalAssignment) != res.FinalUsers {
		t.Errorf("final assignment has %d entries for %d users",
			len(res.FinalAssignment), res.FinalUsers)
	}
	for id, ext := range res.FinalAssignment {
		if ext < 0 || ext >= res.Extenders {
			t.Errorf("user %d on out-of-range extender %d", id, ext)
		}
	}
	if res.PeakUsers < res.FinalUsers {
		t.Errorf("peak %d below final %d", res.PeakUsers, res.FinalUsers)
	}
	if res.DroppedReassigns != 0 {
		t.Errorf("healthy run dropped %d reassigns", res.DroppedReassigns)
	}
}

func countArrivals(c *City) int {
	n := 0
	for _, ev := range c.trace {
		if ev.Kind == 1 { // workload.Arrival
			n++
		}
	}
	return n
}

// TestCityDifferentialShardedVsSingleEngine is the PR's differential
// satellite: the same event stream replayed against a 2-shard
// coordinator and a single global engine must end in the IDENTICAL
// association. The rssi policy makes this exact: the coordinator routes
// each user to the member owning its best-rate extender, and rssi (with
// no RSSI vectors reported) places each user on its best-rate owned
// extender — both compose to "the globally best-rate extender", sharded
// or not.
func TestCityDifferentialShardedVsSingleEngine(t *testing.T) {
	cfg := Config{
		Shards:      2,
		TargetUsers: 500,
		Horizon:     20,
		DwellMean:   10,
		UpdateMean:  15, // mobility on: handoffs exercised
		Policy:      "rssi",
		Seed:        77,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := c.NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := c.Run(coord)
	if err != nil {
		t.Fatal(err)
	}
	single, err := c.NewEngine()
	if err != nil {
		t.Fatal(err)
	}
	global, err := c.Run(single)
	if err != nil {
		t.Fatal(err)
	}

	if sharded.PeakUsers < 400 {
		t.Fatalf("peak population %d; stream too small to mean anything", sharded.PeakUsers)
	}
	for _, pair := range [][2]int{
		{sharded.Joins, global.Joins},
		{sharded.Leaves, global.Leaves},
		{sharded.Updates, global.Updates},
		{sharded.Events, global.Events},
		{sharded.FinalUsers, global.FinalUsers},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("sharded/global event streams diverged: %+v vs %+v", sharded, global)
		}
	}
	if !reflect.DeepEqual(sharded.FinalAssignment, global.FinalAssignment) {
		diff := 0
		for id, ext := range sharded.FinalAssignment {
			if global.FinalAssignment[id] != ext {
				diff++
			}
		}
		t.Errorf("final associations differ for %d/%d users", diff, len(sharded.FinalAssignment))
	}
	if sharded.Handoffs == 0 {
		t.Error("no cross-shard handoffs; mobility did not exercise the boundary")
	}
	if global.Handoffs != 0 {
		t.Errorf("single engine reported %d handoffs", global.Handoffs)
	}
}

// TestCityDifferentialConcurrentVsSequential pins the worker-lane
// contract: under the rssi policy — where each user's final extender
// depends only on its own last scan, so no operation interleaving can
// change it — a concurrent run must end in the identical association as
// the sequential one, with identical generator-side counters. Handoffs
// are included: routing depends only on the feeder-deterministic scan
// rates and the (static) ring, so the count survives reordering.
func TestCityDifferentialConcurrentVsSequential(t *testing.T) {
	run := func(lanes int) Result {
		res, err := Run(Config{
			Shards:      4,
			TargetUsers: 400,
			Horizon:     20,
			DwellMean:   10,
			UpdateMean:  15,
			Policy:      "rssi",
			Seed:        77,
			Concurrency: lanes,
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	seq, conc := run(1), run(4)
	for _, pair := range [][2]int{
		{seq.Joins, conc.Joins},
		{seq.Leaves, conc.Leaves},
		{seq.Updates, conc.Updates},
		{seq.Events, conc.Events},
		{seq.PeakUsers, conc.PeakUsers},
		{seq.FinalUsers, conc.FinalUsers},
		{seq.Handoffs, conc.Handoffs},
	} {
		if pair[0] != pair[1] {
			t.Fatalf("concurrent run diverged from sequential:\n seq:  %+v\n conc: %+v", seq, conc)
		}
	}
	if !reflect.DeepEqual(seq.FinalAssignment, conc.FinalAssignment) {
		diff := 0
		for id, ext := range seq.FinalAssignment {
			if conc.FinalAssignment[id] != ext {
				diff++
			}
		}
		t.Errorf("final associations differ for %d/%d users", diff, len(seq.FinalAssignment))
	}
	if seq.Handoffs == 0 {
		t.Error("no cross-shard handoffs; the stream did not exercise the boundary")
	}
}

// TestCityConcurrentHillclimb drives the worker lanes with the full
// re-solving policy under -race: directive counts are
// interleaving-dependent there, but the generator-side counters and the
// plane's own user accounting must still hold together.
func TestCityConcurrentHillclimb(t *testing.T) {
	cfg := Config{
		Shards:             4,
		TargetUsers:        150,
		Horizon:            20,
		DwellMean:          10,
		UpdateMean:         15,
		Policy:             "wolt-hillclimb",
		Budget:             strategy.Budget{Probes: 100},
		ReassignOnLeave:    true,
		PlacementOnlyJoins: true,
		Seed:               41,
		Concurrency:        3,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coord, err := c.NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	res, err := c.Run(coord)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events != res.Joins+res.Leaves+res.Updates {
		t.Errorf("events %d != joins %d + leaves %d + updates %d",
			res.Events, res.Joins, res.Leaves, res.Updates)
	}
	st := coord.Stats()
	if st.Users != res.FinalUsers {
		t.Errorf("plane reports %d users, harness counted %d", st.Users, res.FinalUsers)
	}
	if st.Joins != res.Joins || st.Leaves != res.Leaves {
		t.Errorf("plane counters joins=%d leaves=%d, harness joins=%d leaves=%d",
			st.Joins, st.Leaves, res.Joins, res.Leaves)
	}
	for id, ext := range res.FinalAssignment {
		if ext < 0 || ext >= res.Extenders {
			t.Errorf("user %d on out-of-range extender %d", id, ext)
		}
	}
}

// TestCityDeterministicAcrossWorkers pins the §7 contract for the
// harness: identical Results (wall-clock fields excluded) for any
// Workers value, with the full wolt-hillclimb policy in the loop.
func TestCityDeterministicAcrossWorkers(t *testing.T) {
	run := func(workers int) Result {
		res, err := Run(Config{
			Shards:          2,
			TargetUsers:     80,
			Horizon:         20,
			DwellMean:       10,
			UpdateMean:      12,
			Policy:          "wolt-hillclimb",
			Budget:          strategy.Budget{Probes: 150},
			ReassignOnLeave: true,
			Workers:         workers,
			Seed:            5150,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Strip host measurements; everything else must be bit-identical.
		res.ScrubHostMetrics()
		return res
	}
	w1, w8 := run(1), run(8)
	if !reflect.DeepEqual(w1, w8) {
		t.Errorf("city run differs across workers:\n w1: %+v\n w8: %+v", w1, w8)
	}
}

// TestCityReusableAcrossRuns pins the City replay contract: two runs of
// one City against identically-built planes produce identical
// deterministic results.
func TestCityReusableAcrossRuns(t *testing.T) {
	c, err := New(Config{
		Shards:      3,
		TargetUsers: 60,
		Horizon:     15,
		DwellMean:   10,
		UpdateMean:  10,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]Result, 2)
	for i := range results {
		coord, err := c.NewCoordinator()
		if err != nil {
			t.Fatal(err)
		}
		res, err := c.Run(coord)
		if err != nil {
			t.Fatal(err)
		}
		res.ScrubHostMetrics()
		results[i] = res
	}
	if !reflect.DeepEqual(results[0], results[1]) {
		t.Errorf("replay differs:\n 1st: %+v\n 2nd: %+v", results[0], results[1])
	}
}
