package city

import (
	"reflect"
	"testing"
	"time"

	"github.com/plcwifi/wolt/internal/control"
)

// tcpDiffConfig is the shared instance for the TCP differential tests:
// mobility off, because the TCP plane pins each user to its join-time
// member (cross-member mobility handoff is the ROADMAP's replicated-
// membership follow-up), so roaming would legitimately diverge from the
// in-process coordinator's handoffs. Under rssi with static users, both
// planes must end in the identical association.
func tcpDiffConfig() Config {
	return Config{
		Shards:      2,
		TargetUsers: 300,
		Horizon:     15,
		DwellMean:   10,
		Policy:      "rssi",
		Seed:        99,
	}
}

// TestCityTCPDifferentialVsCoordinator replays one event stream against
// the in-process coordinator and against the TCP plane under BOTH
// codecs: identical event counters, identical final association. This
// is the end-to-end proof that the wire protocol (dial, handshake,
// frame codec, directive push) is a faithful transport around the same
// engines — and that the negotiated JSON fallback still is too.
func TestCityTCPDifferentialVsCoordinator(t *testing.T) {
	c, err := New(tcpDiffConfig())
	if err != nil {
		t.Fatal(err)
	}
	coord, err := c.NewCoordinator()
	if err != nil {
		t.Fatal(err)
	}
	want, err := c.Run(coord)
	if err != nil {
		t.Fatal(err)
	}
	if want.PeakUsers < 200 {
		t.Fatalf("peak population %d; stream too small to mean anything", want.PeakUsers)
	}

	for _, codec := range []control.Codec{control.CodecBinary, control.CodecJSON} {
		t.Run(string(codec), func(t *testing.T) {
			plane, err := c.NewTCPPlane(TCPConfig{Codec: codec})
			if err != nil {
				t.Fatal(err)
			}
			defer plane.Close()
			got, err := c.Run(plane)
			if err != nil {
				t.Fatal(err)
			}
			for _, pair := range [][2]int{
				{got.Joins, want.Joins},
				{got.Leaves, want.Leaves},
				{got.Events, want.Events},
				{got.FinalUsers, want.FinalUsers},
			} {
				if pair[0] != pair[1] {
					t.Fatalf("tcp/coordinator event streams diverged:\n tcp   %+v\n coord %+v", got, want)
				}
			}
			if !reflect.DeepEqual(got.FinalAssignment, want.FinalAssignment) {
				diff := 0
				for id, ext := range want.FinalAssignment {
					if got.FinalAssignment[id] != ext {
						diff++
					}
				}
				t.Errorf("final associations differ for %d/%d users", diff, len(want.FinalAssignment))
			}
			if got.Redirects != 0 {
				t.Errorf("client-side owner routing still followed %d redirects", got.Redirects)
			}
			// Every join's reply directive must have been delivered.
			if got.Directives < got.Joins {
				t.Errorf("agents saw %d directives for %d joins", got.Directives, got.Joins)
			}
		})
	}
}

// TestCityTCPConcurrentWithMobility drives the TCP plane with worker
// lanes and mobility on — the benchmark's load shape at test scale:
// overlapping joins, roam updates and departures on live sockets, with
// the hillclimb policy pushing re-associations. Invariant checks only
// (the interleaving is timing-dependent by design).
func TestCityTCPConcurrentWithMobility(t *testing.T) {
	cfg := Config{
		Shards:             2,
		TargetUsers:        200,
		Horizon:            12,
		DwellMean:          8,
		UpdateMean:         10,
		Policy:             "wolt-hillclimb",
		PlacementOnlyJoins: true,
		Seed:               7,
		Concurrency:        4,
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	plane, err := c.NewTCPPlane(TCPConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	res, err := c.Run(plane)
	if err != nil {
		t.Fatal(err)
	}
	if res.Joins == 0 || res.Updates == 0 || res.Leaves == 0 {
		t.Fatalf("degenerate stream: %+v", res)
	}
	if res.Directives < res.Joins {
		t.Errorf("agents saw %d directives for %d joins", res.Directives, res.Joins)
	}
	// Departures are fire-and-forget on the wire; give the members a
	// moment to drain the last MsgLeave frames before comparing.
	deadline := time.Now().Add(2 * time.Second)
	for {
		st, err := plane.Stats()
		if err != nil {
			t.Fatal(err)
		}
		if st.Users == res.FinalUsers {
			break
		}
		if !time.Now().Before(deadline) {
			t.Errorf("plane tracks %d users at end of run, harness %d", st.Users, res.FinalUsers)
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
}
