package city

import (
	"os"
	"testing"

	"github.com/plcwifi/wolt/internal/strategy"
)

// benchRun drives one city run and reports the harness metrics the
// BENCH_city.json trajectory records: sustained join throughput,
// directive latency percentiles, cross-shard handoff rate and the peak
// population actually sustained.
func benchRun(b *testing.B, cfg Config) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		res, err := Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JoinsPerSec, "joins/sec")
		b.ReportMetric(float64(res.P50Latency.Microseconds()), "p50_us")
		b.ReportMetric(float64(res.P99Latency.Microseconds()), "p99_us")
		b.ReportMetric(res.HandoffRate, "handoff_rate")
		b.ReportMetric(float64(res.PeakUsers), "users_peak")
		b.ReportMetric(float64(res.Events), "events")
	}
}

// BenchmarkCitySmoke is the CI-sized run: 8 shards, ~4k users, mobility
// on — enough to exercise every code path in seconds.
func BenchmarkCitySmoke(b *testing.B) {
	benchRun(b, Config{
		Shards:          8,
		TargetUsers:     4000,
		DwellMean:       60,
		Horizon:         60,
		UpdateMean:      120,
		Policy:          "wolt-hillclimb",
		Budget:          strategy.Budget{Probes: 200},
		ReassignOnLeave: true,
		Seed:            2026,
	})
}

// BenchmarkCitySustained1M is the north-star run: 256 shards, 10^6
// users sustained, placement-only warm joins on the concurrent
// coordinator, fixed-memory latency sketches, no final-assignment copy.
// One iteration drives over a million plane operations and takes
// minutes, so it only runs when WOLT_CITY_1M is set (scripts/
// bench-city.sh sets it); the CI bench-smoke regex still compiles it.
func BenchmarkCitySustained1M(b *testing.B) {
	if os.Getenv("WOLT_CITY_1M") == "" {
		b.Skip("set WOLT_CITY_1M=1 to run the multi-minute 10^6-user benchmark")
	}
	benchRun(b, Config{
		Shards:              256,
		TargetUsers:         1_000_000,
		InitialFill:         1.0,
		DwellMean:           6000,
		Horizon:             60,
		UpdateMean:          6000,
		DiurnalFloor:        0.3,
		DiurnalPeriod:       120,
		Policy:              "wolt-hillclimb",
		Budget:              strategy.Budget{Probes: 200},
		ReassignOnLeave:     true,
		PlacementOnlyJoins:  true,
		FullResolveEvery:    64,
		Concurrency:         4,
		SkipFinalAssignment: true,
		Seed:                2026,
	})
}

// BenchmarkCitySustained is the acceptance-scale run: 32 shards,
// 10^5 users sustained, diurnal arrivals, roaming on. One iteration
// drives several hundred thousand plane operations.
func BenchmarkCitySustained(b *testing.B) {
	benchRun(b, Config{
		Shards:          32,
		TargetUsers:     100_000,
		InitialFill:     1.0,
		DwellMean:       600,
		Horizon:         120,
		UpdateMean:      600,
		DiurnalFloor:    0.3,
		DiurnalPeriod:   240,
		Policy:          "wolt-hillclimb",
		Budget:          strategy.Budget{Probes: 200},
		ReassignOnLeave: true,
		Seed:            2026,
	})
}
