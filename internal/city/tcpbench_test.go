package city

import (
	"fmt"
	"io"
	"net"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"github.com/plcwifi/wolt/internal/control"
	"github.com/plcwifi/wolt/internal/shard"
	"github.com/plcwifi/wolt/internal/strategy"
)

// TestMain doubles this test binary as a shard-member host: when
// WOLT_CITY_TCP_HELPER names a member ID the process serves that member
// of the 10^4-user benchmark deployment until stdin closes, instead of
// running tests. The big TCP benchmarks re-exec os.Args[0] into this
// mode so the parent holds only the ~10^4 client sockets while each
// child holds its shard's server sockets — one process could not stay
// inside the fd limit with both halves of 10^4 connections.
func TestMain(m *testing.M) {
	if member := os.Getenv("WOLT_CITY_TCP_HELPER"); member != "" {
		runTCPMember(member)
		return
	}
	os.Exit(m.Run())
}

// tcp10KConfig is the shared parent/child description of the 10^4-user
// TCP benchmark: every field that shapes the member engines or the ring
// must be explicit here, because the child processes rebuild the same
// deployment from this function alone.
func tcp10KConfig() Config {
	return Config{
		Shards:              8,
		ExtendersPerShard:   8,
		TargetUsers:         10_000,
		InitialFill:         1.0,
		DwellMean:           3000,
		Horizon:             30,
		UpdateMean:          1500,
		Policy:              "wolt-hillclimb",
		Budget:              strategy.Budget{Probes: 200},
		PlacementOnlyJoins:  true,
		FullResolveEvery:    64,
		Concurrency:         8,
		SkipFinalAssignment: true,
		Seed:                2026,
	}
}

// tcpPortBase is where the benchmark members listen (member k on
// base+k); WOLT_CITY_TCP_PORT overrides it if the range is taken. The
// default sits below Linux's ephemeral range (32768–60999 on stock
// kernels): the harness itself opens thousands of outgoing sockets, and
// a base inside the ephemeral range loses a bind race against its own
// clients' just-released connect() ports.
func tcpPortBase() int {
	if s := os.Getenv("WOLT_CITY_TCP_PORT"); s != "" {
		if p, err := strconv.Atoi(s); err == nil {
			return p
		}
	}
	return 23711
}

func tcpPeerAddrs(shards int) []string {
	base := tcpPortBase()
	peers := make([]string, shards)
	for m := range peers {
		peers[m] = net.JoinHostPort("127.0.0.1", strconv.Itoa(base+m))
	}
	return peers
}

// runTCPMember hosts one shard member of the benchmark deployment and
// serves until the parent closes our stdin.
func runTCPMember(memberStr string) {
	member, err := strconv.Atoi(memberStr)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bad WOLT_CITY_TCP_HELPER %q: %v\n", memberStr, err)
		os.Exit(1)
	}
	cfg := tcp10KConfig()
	c, err := New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "member %d: %v\n", member, err)
		os.Exit(1)
	}
	peers := tcpPeerAddrs(cfg.Shards)
	plane, err := shard.Listen(shard.PlaneConfig{
		Addr:               peers[member],
		Member:             member,
		Peers:              peers,
		Shards:             cfg.Shards,
		PLCCaps:            c.PLCCaps(),
		Policy:             cfg.Policy,
		Workers:            cfg.Workers,
		Seed:               cfg.Seed,
		Budget:             cfg.Budget,
		ReassignOnLeave:    cfg.ReassignOnLeave,
		PlacementOnlyJoins: cfg.PlacementOnlyJoins,
		FullResolveEvery:   cfg.FullResolveEvery,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "member %d: %v\n", member, err)
		os.Exit(1)
	}
	_, _ = io.Copy(io.Discard, os.Stdin) // serve until the parent exits
	_ = plane.Close()
	os.Exit(0)
}

// spawnTCPMembers re-execs this test binary into one member process per
// extender-owning shard and waits until every one accepts connections.
// The returned stop function shuts them all down.
func spawnTCPMembers(b *testing.B) (stop func()) {
	b.Helper()
	cfg := tcp10KConfig()
	owners := shard.OwnerMapFor(cfg.Seed, cfg.Shards, 0, cfg.Shards*cfg.ExtendersPerShard)
	owning := make(map[int]bool)
	for _, m := range owners {
		owning[m] = true
	}
	peers := tcpPeerAddrs(cfg.Shards)

	type child struct {
		cmd   *exec.Cmd
		stdin io.WriteCloser
	}
	var children []child
	shutdown := func() {
		for _, ch := range children {
			_ = ch.stdin.Close()
		}
		for _, ch := range children {
			_ = ch.cmd.Wait()
		}
	}
	for m := 0; m < cfg.Shards; m++ {
		if !owning[m] {
			continue
		}
		cmd := exec.Command(os.Args[0])
		cmd.Env = append(os.Environ(), "WOLT_CITY_TCP_HELPER="+strconv.Itoa(m))
		cmd.Stderr = os.Stderr
		stdin, err := cmd.StdinPipe()
		if err != nil {
			shutdown()
			b.Fatal(err)
		}
		if err := cmd.Start(); err != nil {
			shutdown()
			b.Fatal(err)
		}
		children = append(children, child{cmd: cmd, stdin: stdin})
	}
	for m := 0; m < cfg.Shards; m++ {
		if !owning[m] {
			continue
		}
		ok := false
		for deadline := time.Now().Add(30 * time.Second); time.Now().Before(deadline); {
			conn, err := net.DialTimeout("tcp", peers[m], time.Second)
			if err == nil {
				_ = conn.Close()
				ok = true
				break
			}
			time.Sleep(50 * time.Millisecond)
		}
		if !ok {
			shutdown()
			b.Fatalf("member %d never came up on %s", m, peers[m])
		}
	}
	return shutdown
}

// reportTCP publishes one TCP run's metrics (the BENCH_wire.json rows).
func reportTCP(b *testing.B, res Result) {
	b.Helper()
	b.ReportMetric(res.JoinsPerSec, "joins/sec")
	b.ReportMetric(float64(res.P50Latency.Microseconds()), "p50_us")
	b.ReportMetric(float64(res.P99Latency.Microseconds()), "p99_us")
	b.ReportMetric(float64(res.PeakUsers), "users_peak")
	b.ReportMetric(float64(res.Events), "events")
	b.ReportMetric(float64(res.Directives), "directives")
	b.ReportMetric(float64(res.DroppedPushes), "dropped_pushes")
	b.ReportMetric(float64(res.Redirects), "redirects")
}

// BenchmarkCityTCPSmoke is the CI-sized TCP row: members hosted
// in-process on ephemeral ports, a few hundred users over live sockets
// with mobility on — every wire-path branch (dial, handshake, binary
// frames, async pushes, leaves) in well under a second.
func BenchmarkCityTCPSmoke(b *testing.B) {
	cfg := Config{
		Shards:             2,
		ExtendersPerShard:  4,
		TargetUsers:        300,
		InitialFill:        1.0,
		DwellMean:          20,
		Horizon:            10,
		UpdateMean:         30,
		Policy:             "wolt-hillclimb",
		Budget:             strategy.Budget{Probes: 200},
		PlacementOnlyJoins: true,
		Concurrency:        4,
		Seed:               2026,
	}
	for i := 0; i < b.N; i++ {
		c, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		plane, err := c.NewTCPPlane(TCPConfig{})
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(plane)
		_ = plane.Close()
		if err != nil {
			b.Fatal(err)
		}
		reportTCP(b, res)
	}
}

// benchTCP10K drives the 10^4-user city against out-of-process members
// with the given codec — the acceptance row: the binary codec must beat
// the JSON fallback on joins/sec and p99 directive latency
// (scripts/bench-wire.sh asserts it).
func benchTCP10K(b *testing.B, codec control.Codec) {
	if os.Getenv("WOLT_CITY_TCP") == "" {
		b.Skip("set WOLT_CITY_TCP=1 to run the multi-process 10^4-user TCP benchmark")
	}
	cfg := tcp10KConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Fresh member processes per iteration: engines must start empty
		// (the run re-joins the same user IDs every replay). Spawn and
		// teardown stay off the clock.
		b.StopTimer()
		stop := spawnTCPMembers(b)
		c, err := New(cfg)
		if err != nil {
			stop()
			b.Fatal(err)
		}
		b.StartTimer()
		plane, err := c.NewTCPPlane(TCPConfig{
			Codec: codec,
			Peers: tcpPeerAddrs(cfg.Shards),
		})
		if err != nil {
			b.Fatal(err)
		}
		res, err := c.Run(plane)
		b.StopTimer()
		closeErr := plane.Close()
		stop()
		if err != nil {
			b.Fatal(err)
		}
		if closeErr != nil {
			b.Fatal(closeErr)
		}
		if res.PeakUsers < 10_000 {
			b.Fatalf("sustained only %d users, want >= 10000", res.PeakUsers)
		}
		reportTCP(b, res)
		b.StartTimer()
	}
}

func BenchmarkCityTCP10K(b *testing.B)     { benchTCP10K(b, control.CodecBinary) }
func BenchmarkCityTCP10KJSON(b *testing.B) { benchTCP10K(b, control.CodecJSON) }
