package city

import (
	"fmt"
	"log"
	"sync"
	"time"

	"github.com/plcwifi/wolt/internal/control"
	"github.com/plcwifi/wolt/internal/shard"
)

// tcpJoinTimeout is how long one TCP join waits for its association
// directive when TCPConfig leaves JoinTimeout zero.
const tcpJoinTimeout = 10 * time.Second

// TCPConfig parameterizes a TCP-backed city plane.
type TCPConfig struct {
	// Codec is the agents' wire encoding (default control.CodecBinary;
	// control.CodecJSON prices the legacy framing for comparison).
	Codec control.Codec
	// Peers, when non-empty, attaches to an already-running shard plane:
	// one advertised address per member ID (shard members hosted in
	// other processes — how the 10^4-user benchmark stays inside one
	// process's fd budget). Empty hosts every member in this process on
	// ephemeral ports.
	Peers []string
	// JoinTimeout bounds one join's wait for its directive (default
	// tcpJoinTimeout).
	JoinTimeout time.Duration
	// PushQueueDepth is forwarded to the hosted members (in-process mode
	// only; see control.ServerConfig.PushQueueDepth).
	PushQueueDepth int
	// Logger receives member-server connection errors (in-process mode
	// only); nil discards them.
	Logger *log.Logger
}

// TCPPlane drives the city's churn through real TCP sockets: one
// control.Agent per present user, joined to the shard member that owns
// its best-rate extender. It satisfies the Plane interface, so
// City.Run prices the full wire path — dial, codec, directive push —
// under the same event streams the in-process planes replay.
//
// Routing is computed client-side from the deterministic ring
// (shard.OwnerMapFor), so steady-state joins dial the owning member
// directly; the server-side redirect path stays as the safety net and
// is exercised by tests that dial the wrong member on purpose.
type TCPPlane struct {
	codec       control.Codec
	joinTimeout time.Duration
	ownerOf     []int
	addrs       []string
	plane       *shard.Plane // hosted members; nil when attached to Peers

	mu     sync.Mutex
	agents map[int]*control.Agent
	// Closed agents' lifetime counters, folded in at departure so
	// DirectivesSeen/RedirectsSeen cover the whole run.
	closedDirectives int
	closedRedirects  int
}

// NewTCPPlane builds the TCP-backed plane this city was sized for,
// either hosting every shard member in-process (Peers empty) or
// attaching to members running elsewhere.
func (c *City) NewTCPPlane(tcfg TCPConfig) (*TCPPlane, error) {
	cfg := c.cfg
	if tcfg.Codec == "" {
		tcfg.Codec = control.CodecBinary
	}
	if tcfg.JoinTimeout <= 0 {
		tcfg.JoinTimeout = tcpJoinTimeout
	}
	p := &TCPPlane{
		codec:       tcfg.Codec,
		joinTimeout: tcfg.JoinTimeout,
		ownerOf:     shard.OwnerMapFor(cfg.Seed, cfg.Shards, 0, len(c.caps)),
		agents:      make(map[int]*control.Agent),
	}
	if len(tcfg.Peers) > 0 {
		if len(tcfg.Peers) != cfg.Shards {
			return nil, fmt.Errorf("city: tcp plane needs %d peer addresses, got %d",
				cfg.Shards, len(tcfg.Peers))
		}
		p.addrs = append([]string(nil), tcfg.Peers...)
		return p, nil
	}
	plane, err := shard.Listen(shard.PlaneConfig{
		Addr:               "127.0.0.1:0",
		Member:             -1,
		Shards:             cfg.Shards,
		PLCCaps:            c.caps,
		Policy:             cfg.Policy,
		Workers:            cfg.Workers,
		Seed:               cfg.Seed,
		Budget:             cfg.Budget,
		ReassignOnLeave:    cfg.ReassignOnLeave,
		PlacementOnlyJoins: cfg.PlacementOnlyJoins,
		FullResolveEvery:   cfg.FullResolveEvery,
		PushQueueDepth:     tcfg.PushQueueDepth,
		Logger:             tcfg.Logger,
	})
	if err != nil {
		return nil, err
	}
	p.plane = plane
	p.addrs = plane.Addrs()
	return p, nil
}

// memberFor routes a scan report to the member owning its best-rate
// extender.
func (p *TCPPlane) memberFor(rates []float64) (string, error) {
	best := shard.BestExtender(rates)
	if best < 0 || best >= len(p.ownerOf) {
		return "", fmt.Errorf("city: user reaches no extender")
	}
	addr := p.addrs[p.ownerOf[best]]
	if addr == "" {
		return "", fmt.Errorf("city: no member address for extender %d's owner", best)
	}
	return addr, nil
}

// Join dials the owning member, joins, and waits for the association
// directive — the full wire round-trip the in-process planes skip.
func (p *TCPPlane) Join(userID int, rates, rssi []float64) ([]control.Directive, error) {
	addr, err := p.memberFor(rates)
	if err != nil {
		return nil, err
	}
	a, err := control.DialCodec(addr, userID, p.codec)
	if err != nil {
		return nil, err
	}
	ext, err := a.Join(rates, rssi, p.joinTimeout)
	if err != nil {
		_ = a.Close()
		return nil, fmt.Errorf("city: tcp join user %d: %w", userID, err)
	}
	p.mu.Lock()
	p.agents[userID] = a
	p.mu.Unlock()
	return []control.Directive{{UserID: userID, Extender: ext}}, nil
}

// Update reports a fresh scan on the user's existing connection.
// Resulting re-associations arrive asynchronously on the agents'
// connections and are metered by DirectivesSeen, not returned here.
func (p *TCPPlane) Update(userID int, rates, rssi []float64) ([]control.Directive, error) {
	p.mu.Lock()
	a := p.agents[userID]
	p.mu.Unlock()
	if a == nil {
		return nil, fmt.Errorf("city: tcp update of absent user %d", userID)
	}
	if err := a.UpdateScan(rates, rssi); err != nil {
		return nil, fmt.Errorf("city: tcp update user %d: %w", userID, err)
	}
	return nil, nil
}

// Leave sends the departure and tears the connection down.
func (p *TCPPlane) Leave(userID int) ([]control.Directive, bool) {
	p.mu.Lock()
	a := p.agents[userID]
	delete(p.agents, userID)
	p.mu.Unlock()
	if a == nil {
		return nil, false
	}
	err := a.Leave()
	p.mu.Lock()
	p.closedDirectives += a.Directives()
	p.closedRedirects += a.Redirects()
	p.mu.Unlock()
	if err != nil {
		return nil, false
	}
	return nil, true
}

// DirectivesSeen totals the association directives delivered to every
// agent over the run so far (departed users included) — the delivery
// count the Result reports for a TCP run.
func (p *TCPPlane) DirectivesSeen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.closedDirectives
	for _, a := range p.agents {
		n += a.Directives()
	}
	return n
}

// RedirectsSeen totals the cross-member redirect hops agents followed
// (0 when client-side routing always dialed the owner directly).
func (p *TCPPlane) RedirectsSeen() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := p.closedRedirects
	for _, a := range p.agents {
		n += a.Redirects()
	}
	return n
}

// Stats merges the member snapshots: directly from the hosted plane, or
// over the wire (one MsgStats probe per distinct member address) when
// attached to out-of-process members.
func (p *TCPPlane) Stats() (shard.Stats, error) {
	if p.plane != nil {
		return p.plane.Stats(), nil
	}
	st := shard.Stats{Shards: len(p.addrs), Assignment: make(map[int]int)}
	seen := make(map[string]bool, len(p.addrs))
	for m, addr := range p.addrs {
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		a, err := control.DialCodec(addr, -(m + 1), p.codec)
		if err != nil {
			return st, fmt.Errorf("city: stats probe to member %d: %w", m, err)
		}
		es, err := a.Stats(p.joinTimeout)
		_ = a.Close()
		if err != nil {
			return st, fmt.Errorf("city: stats probe to member %d: %w", m, err)
		}
		st.Users += es.Users
		st.Joins += es.Joins
		st.Leaves += es.Leaves
		st.Reassociations += es.Reassociations
		st.DroppedReassigns += es.DroppedReassigns
		st.DroppedPushes += es.DroppedPushes
		for id, ext := range es.Assignment {
			st.Assignment[id] = ext
		}
		st.PerShard = append(st.PerShard, es)
	}
	return st, nil
}

// Close tears down every live agent and, in hosted mode, the member
// servers.
func (p *TCPPlane) Close() error {
	p.mu.Lock()
	agents := p.agents
	p.agents = make(map[int]*control.Agent)
	p.mu.Unlock()
	for _, a := range agents {
		_ = a.Close()
	}
	p.mu.Lock()
	for _, a := range agents {
		p.closedDirectives += a.Directives()
		p.closedRedirects += a.Redirects()
	}
	p.mu.Unlock()
	if p.plane != nil {
		return p.plane.Close()
	}
	return nil
}
