package localsearch

import "github.com/plcwifi/wolt/internal/model"

// Candidates is the neighborhood cache behind the search loops: for
// every user, the top-M reachable extenders ordered by WiFi PHY rate
// (descending, ties broken by ascending extender index). Restricting
// each user's move set to its M best links turns one improvement pass
// from O(users·extenders) probes into O(users·M) — at enterprise scale
// (2000×32) that is the difference between 64k and 16k probes per pass,
// and the excluded links are exactly the ones the throughput-fair
// objective would never pick anyway (a user joining a cell at a rate
// far below its best link drags the whole cell's harmonic mean down).
//
// The cache is keyed on the network's identity and mutation counter
// (Network.Generation): Ensure is a no-op while both match and rebuilds
// otherwise, so a topology edit followed by Invalidate transparently
// refreshes the neighborhoods on the next search, mirroring the
// re-attach discipline of model.DeltaEval.
type Candidates struct {
	net *model.Network
	gen uint64
	m   int

	// flat stores all users' candidate lists back to back;
	// off[i]:off[i+1] delimits user i's slice. One backing array keeps
	// rebuilds allocation-free once warm and the per-user lookups
	// cache-friendly during a scan.
	flat []int
	off  []int

	// selection scratch: the current user's best-so-far extenders and
	// rates, insertion-sorted by (rate desc, index asc).
	selIdx  []int
	selRate []float64
}

// Ensure makes the cache current for network n with neighborhoods of
// size m (m <= 0 or m >= NumExtenders means "all reachable extenders",
// still rate-ordered). It rebuilds only when the network identity, its
// generation, or m changed since the last call.
func (c *Candidates) Ensure(n *model.Network, m int) {
	if m <= 0 || m > n.NumExtenders() {
		m = n.NumExtenders()
	}
	if c.net == n && c.gen == n.Generation() && c.m == m {
		return
	}
	c.rebuild(n, m)
}

// For returns user i's candidate extenders, best rate first. The slice
// is owned by the cache and must not be mutated; it is valid until the
// next Ensure that rebuilds.
func (c *Candidates) For(i int) []int {
	return c.flat[c.off[i]:c.off[i+1]]
}

// M returns the neighborhood size the cache was last built with.
func (c *Candidates) M() int { return c.m }

func (c *Candidates) rebuild(n *model.Network, m int) {
	users := n.NumUsers()
	if cap(c.off) < users+1 {
		c.off = make([]int, users+1)
	}
	c.off = c.off[:users+1]
	c.flat = c.flat[:0]
	if cap(c.selIdx) < m {
		c.selIdx = make([]int, m)
		c.selRate = make([]float64, m)
	}

	for i := 0; i < users; i++ {
		c.off[i] = len(c.flat)
		sel, rate := c.selIdx[:0], c.selRate[:0]
		for j, r := range n.WiFiRates[i] {
			if r <= 0 {
				continue
			}
			// Insertion position: after every strictly better rate and
			// after equal rates (which have smaller indices, since j
			// ascends).
			k := len(sel)
			for k > 0 && rate[k-1] < r {
				k--
			}
			if k == m {
				continue
			}
			if len(sel) < m {
				sel = append(sel, 0)
				rate = append(rate, 0)
			}
			copy(sel[k+1:], sel[k:])
			copy(rate[k+1:], rate[k:])
			sel[k], rate[k] = j, r
		}
		c.flat = append(c.flat, sel...)
	}
	c.off[users] = len(c.flat)
	c.net, c.gen, c.m = n, n.Generation(), m
}
