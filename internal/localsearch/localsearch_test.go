package localsearch

import (
	"context"
	"testing"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/seed"
)

// searchInstance builds a random network (with unreachable links) and a
// random partial assignment from the LocalSearchFuzz stream of base —
// the same shape as the delta-vs-full harness in internal/model.
func searchInstance(base int64, numExt, numUsers int) (*model.Network, model.Assignment) {
	rng := seed.Rand(base, seed.LocalSearchFuzz, 0)
	n := &model.Network{
		WiFiRates: make([][]float64, numUsers),
		PLCCaps:   make([]float64, numExt),
	}
	for j := range n.PLCCaps {
		n.PLCCaps[j] = 10 + rng.Float64()*150
	}
	a := make(model.Assignment, numUsers)
	for i := range n.WiFiRates {
		row := make([]float64, numExt)
		var reach []int
		for j := range row {
			if rng.Float64() < 0.25 {
				row[j] = 0
			} else {
				row[j] = 1 + rng.Float64()*60
				reach = append(reach, j)
			}
		}
		n.WiFiRates[i] = row
		if len(reach) == 0 || rng.Float64() < 0.3 {
			a[i] = model.Unassigned
		} else {
			a[i] = reach[rng.Intn(len(reach))]
		}
	}
	return n, a
}

var allMethods = []Method{HillClimbing, KOpt, Annealing}

// checkResult asserts the anytime contract's verifiable half: the
// returned assignment is valid, its fresh full evaluation is
// bit-identical to the reported aggregate, and the search never
// returned something worse than its own starting point.
func checkResult(t *testing.T, n *model.Network, res *Result, opts Options) *model.Result {
	t.Helper()
	var scratch model.EvalScratch
	full, err := model.EvaluateWith(&scratch, n, res.Assign, opts.Model)
	if err != nil {
		t.Fatalf("returned assignment invalid: %v", err)
	}
	if full.Aggregate != res.Aggregate {
		t.Fatalf("aggregate %v != fresh EvaluateWith %v (must be bit-identical)", res.Aggregate, full.Aggregate)
	}
	if res.Aggregate < res.Start {
		t.Fatalf("search lost ground: aggregate %v < start %v", res.Aggregate, res.Start)
	}
	if len(res.Trajectory) == 0 || res.Trajectory[len(res.Trajectory)-1] != res.Aggregate {
		t.Fatalf("trajectory %v does not end at aggregate %v", res.Trajectory, res.Aggregate)
	}
	for k := 1; k < len(res.Trajectory); k++ {
		if res.Trajectory[k] <= res.Trajectory[k-1] {
			t.Fatalf("trajectory not strictly increasing at %d: %v", k, res.Trajectory)
		}
	}
	return full
}

// TestSearchMatchesFullEvaluation is the differential test of the
// tentpole acceptance criterion: for every method, every budget, and
// several instances, the end state equals a fresh full evaluation.
func TestSearchMatchesFullEvaluation(t *testing.T) {
	for _, base := range []int64{1, 7, 42, 2020} {
		for _, method := range allMethods {
			for _, probes := range []int{0, 50, 5000} {
				n, start := searchInstance(base, 6, 40)
				var s Searcher
				opts := Options{Seed: base, Budget: Budget{Probes: probes}}
				res, err := s.Search(context.Background(), n, start, method, opts)
				if err != nil {
					t.Fatalf("base=%d %v probes=%d: %v", base, method, probes, err)
				}
				checkResult(t, n, res, opts)
			}
		}
	}
}

// TestSearchImprovesOverStart: on a deliberately bad start (everyone
// on their worst reachable link), hill climbing must find improving
// moves and strictly beat the seed.
func TestSearchImprovesOverStart(t *testing.T) {
	n, _ := searchInstance(3, 6, 40)
	start := make(model.Assignment, n.NumUsers())
	for i := range start {
		start[i] = model.Unassigned
		worst := 0.0
		for j, r := range n.WiFiRates[i] {
			if r > 0 && (start[i] == model.Unassigned || r < worst) {
				start[i], worst = j, r
			}
		}
	}
	var s Searcher
	opts := Options{}
	res, err := s.HillClimb(context.Background(), n, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, n, res, opts)
	if res.Aggregate <= res.Start {
		t.Fatalf("hill climb found nothing: start %v aggregate %v", res.Start, res.Aggregate)
	}
	if res.Stop != StopOptimum {
		t.Fatalf("unbudgeted climb should end at an optimum, got %v", res.Stop)
	}
	if res.Improving == 0 || res.Commits == 0 || res.Probes == 0 {
		t.Fatalf("counters not populated: %+v", res)
	}
}

// TestKOptAtLeastHillClimb: k-opt starts from the hill-climb optimum,
// so with unlimited budget it can never end below it.
func TestKOptAtLeastHillClimb(t *testing.T) {
	for _, base := range []int64{5, 11, 17} {
		n, start := searchInstance(base, 8, 60)
		var s Searcher
		hc, err := s.HillClimb(context.Background(), n, start, Options{})
		if err != nil {
			t.Fatal(err)
		}
		ko, err := s.KOpt(context.Background(), n, start, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if ko.Aggregate < hc.Aggregate {
			t.Fatalf("base=%d: k-opt %v < hill climb %v", base, ko.Aggregate, hc.Aggregate)
		}
	}
}

// TestSearchPlacesArrivals: Unassigned users in the start are placed
// for free, even under a zero move budget.
func TestSearchPlacesArrivals(t *testing.T) {
	n, start := searchInstance(9, 6, 30)
	unassigned := 0
	for _, j := range start {
		if j == model.Unassigned {
			unassigned++
		}
	}
	if unassigned == 0 {
		t.Fatal("instance has no arrivals; pick another seed")
	}
	// A move budget of 1 commits at most one re-association, but
	// placements stay free: every reachable arrival must end assigned.
	var s Searcher
	opts := Options{Budget: Budget{Moves: 1}}
	res, err := s.HillClimb(context.Background(), n, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, n, res, opts)
	for i, j := range res.Assign {
		if j == model.Unassigned {
			// Only users with no reachable extender may stay out.
			for _, r := range n.WiFiRates[i] {
				if r > 0 {
					t.Fatalf("user %d left unassigned despite reachable links", i)
				}
			}
		}
	}
	if res.Placed == 0 {
		t.Fatal("Placed not counted")
	}
}

// TestSearchCtxCancellation asserts the anytime contract mid-search: a
// context cancelled before (and during) the search still yields the
// best-so-far valid assignment, stamped StopCtx.
func TestSearchCtxCancellation(t *testing.T) {
	n, start := searchInstance(13, 8, 80)
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already cancelled: search must do no improving work
	for _, method := range allMethods {
		var s Searcher
		opts := Options{Seed: 13}
		res, err := s.Search(ctx, n, start, method, opts)
		if err != nil {
			t.Fatalf("%v: %v", method, err)
		}
		if res.Stop != StopCtx {
			t.Fatalf("%v: stop = %v, want StopCtx", method, res.Stop)
		}
		var scratch model.EvalScratch
		full, err := model.EvaluateWith(&scratch, n, res.Assign, opts.Model)
		if err != nil {
			t.Fatalf("%v: cancelled search returned invalid assignment: %v", method, err)
		}
		if full.Aggregate != res.Aggregate {
			t.Fatalf("%v: aggregate mismatch under cancellation", method)
		}
	}

	// Cancellation mid-search: run with a context that dies after a few
	// checkpoints' worth of wall time and confirm validity either way.
	ctx2, cancel2 := context.WithTimeout(context.Background(), 200*time.Microsecond)
	defer cancel2()
	var s Searcher
	opts := Options{Seed: 13}
	res, err := s.Anneal(ctx2, n, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	checkResult(t, n, res, opts)
}

// TestSearchProbeBudgetExact: the probe budget is a hard cap on delta
// probes, and the stop reason says so.
func TestSearchProbeBudgetExact(t *testing.T) {
	n, start := searchInstance(21, 8, 80)
	for _, budget := range []int{1, 10, 100, 1000} {
		var s Searcher
		opts := Options{Seed: 21, Budget: Budget{Probes: budget}}
		res, err := s.HillClimb(context.Background(), n, start, opts)
		if err != nil {
			t.Fatal(err)
		}
		if res.Probes > budget {
			t.Fatalf("budget %d: %d probes evaluated", budget, res.Probes)
		}
		checkResult(t, n, res, opts)
	}
}

// TestSearchTimeBudget: an aggressive wall-clock budget returns
// quickly with a valid state and StopTime (or a natural finish on very
// fast machines).
func TestSearchTimeBudget(t *testing.T) {
	n, start := searchInstance(23, 16, 400)
	var s Searcher
	opts := Options{Seed: 23, Budget: Budget{Time: 100 * time.Microsecond}}
	startT := time.Now()
	res, err := s.Anneal(context.Background(), n, start, opts)
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(startT); elapsed > time.Second {
		t.Fatalf("time-budgeted search ran %v", elapsed)
	}
	checkResult(t, n, res, opts)
}

// TestSearchDeterministic: with probe budgets (never time), the result
// is a pure function of (network, start, options) — byte-for-byte
// across repeated runs and across fresh vs reused Searchers.
func TestSearchDeterministic(t *testing.T) {
	n, start := searchInstance(31, 8, 60)
	for _, method := range allMethods {
		opts := Options{Seed: 31, Budget: Budget{Probes: 4000}}
		var s1 Searcher
		r1, err := s1.Search(context.Background(), n, start, method, opts)
		if err != nil {
			t.Fatal(err)
		}
		var s2 Searcher
		// Warm the second searcher with an unrelated search first: the
		// reused scratch must not leak into the next result.
		if _, err := s2.Search(context.Background(), n, start, Annealing, Options{Seed: 99, Budget: Budget{Probes: 500}}); err != nil {
			t.Fatal(err)
		}
		r2, err := s2.Search(context.Background(), n, start, method, opts)
		if err != nil {
			t.Fatal(err)
		}
		if r1.Aggregate != r2.Aggregate || r1.Probes != r2.Probes || r1.Commits != r2.Commits {
			t.Fatalf("%v: runs diverged: (%v,%d,%d) vs (%v,%d,%d)", method,
				r1.Aggregate, r1.Probes, r1.Commits, r2.Aggregate, r2.Probes, r2.Commits)
		}
		for i := range r1.Assign {
			if r1.Assign[i] != r2.Assign[i] {
				t.Fatalf("%v: assignments diverged at user %d", method, i)
			}
		}
	}
}

// TestCandidatesCache pins the cache contract: rate-descending order
// with index tie-breaks, truncation to M, rebuild on Invalidate, and
// no rebuild while the generation is unchanged.
func TestCandidatesCache(t *testing.T) {
	n := &model.Network{
		WiFiRates: [][]float64{{10, 50, 50, 0, 30}},
		PLCCaps:   []float64{100, 100, 100, 100, 100},
	}
	var c Candidates
	c.Ensure(n, 3)
	got := c.For(0)
	want := []int{1, 2, 4} // 50 (idx 1), 50 (idx 2), 30 — the 10 and 0 links truncated
	if len(got) != len(want) {
		t.Fatalf("For(0) = %v, want %v", got, want)
	}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("For(0) = %v, want %v", got, want)
		}
	}

	// Same generation: Ensure must keep the backing array.
	before := &c.flat[0]
	c.Ensure(n, 3)
	if &c.flat[0] != before {
		t.Fatal("Ensure rebuilt without a generation change")
	}

	// Mutate + Invalidate: the next Ensure sees the new rates.
	n.WiFiRates[0][3] = 60
	n.Invalidate()
	c.Ensure(n, 3)
	got = c.For(0)
	want = []int{3, 1, 2}
	for k := range want {
		if got[k] != want[k] {
			t.Fatalf("after Invalidate: For(0) = %v, want %v", got, want)
		}
	}

	// M <= 0 means all reachable links (all 5 once index 3 has a rate).
	c.Ensure(n, -1)
	if len(c.For(0)) != 5 {
		t.Fatalf("M=-1: got %d candidates, want 5 reachable", len(c.For(0)))
	}
}

// TestSearchInvalidStart: validation errors from the evaluator
// propagate instead of panicking or silently proceeding.
func TestSearchInvalidStart(t *testing.T) {
	n, start := searchInstance(37, 6, 20)
	bad := start.Clone()
	bad[0] = n.NumExtenders() + 5
	var s Searcher
	if _, err := s.HillClimb(context.Background(), n, bad, Options{}); err == nil {
		t.Fatal("expected validation error for out-of-range assignment")
	}
}

// FuzzSearchVsFull drives all three methods over fuzzer-chosen
// instances and budgets, holding the bit-identity invariant: the end
// state must equal a fresh full EvaluateWith.
func FuzzSearchVsFull(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(24), uint16(400), uint8(0))
	f.Add(int64(42), uint8(8), uint8(60), uint16(2000), uint8(1))
	f.Add(int64(7), uint8(3), uint8(10), uint16(0), uint8(2))
	f.Fuzz(func(t *testing.T, base int64, numExt, numUsers uint8, probes uint16, method uint8) {
		ne := 1 + int(numExt)%16
		nu := 1 + int(numUsers)%96
		m := allMethods[int(method)%len(allMethods)]
		n, start := searchInstance(base, ne, nu)
		var s Searcher
		opts := Options{Seed: base, Budget: Budget{Probes: int(probes)}}
		if m == Annealing && opts.Budget.Probes == 0 {
			// Unbudgeted annealing runs the full fixed cooling
			// schedule (~14k steps); keep fuzz iterations fast.
			opts.Budget.Probes = 3000
		}
		res, err := s.Search(context.Background(), n, start, m, opts)
		if err != nil {
			t.Fatal(err)
		}
		var scratch model.EvalScratch
		full, err := model.EvaluateWith(&scratch, n, res.Assign, opts.Model)
		if err != nil {
			t.Fatalf("invalid end state: %v", err)
		}
		if full.Aggregate != res.Aggregate {
			t.Fatalf("aggregate %v != fresh %v", res.Aggregate, full.Aggregate)
		}
		if res.Aggregate < res.Start {
			t.Fatalf("lost ground: %v < %v", res.Aggregate, res.Start)
		}
	})
}
