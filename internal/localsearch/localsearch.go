// Package localsearch implements the delta-native anytime local-search
// family: best-swap hill climbing, k-opt eject/reinsert chains, and
// simulated annealing over user→extender associations, all built on
// model.DeltaEval's O(Δ) ProbeMove/Commit primitives (DESIGN.md §10).
//
// The package exists for the warm path. A full WOLT solve (Hungarian
// Phase I + NLP Phase II) costs ~1.25s at enterprise scale; a single
// delta probe costs ~570ns and zero allocations. When the network
// changes by one join, leave, or rate update, the previous assignment
// is already near-optimal, so a few thousand probes of local search
// recover almost all of the objective in well under a millisecond —
// the regime BENCH_anytime.json measures.
//
// # Anytime contract
//
// Every search honors the same contract (DESIGN.md §11):
//
//   - It is interruptible at probe granularity: a context cancellation,
//     an expired time budget, or an exhausted probe/move budget stops
//     the search at the next checkpoint.
//   - It always returns the best valid assignment found so far — never
//     an error for running out of budget, never a half-applied chain
//     (tentative k-opt commits are rolled back before returning).
//   - The returned aggregate is the committed evaluator state, which is
//     bit-identical to a fresh model.EvaluateWith of the returned
//     assignment (the differential tests assert ==, not ≈).
//
// Determinism: with a probe/move budget the result is a pure function
// of (network, start, Options) for any context; only Budget.Time trades
// that away, since wall-clock checkpoints depend on machine speed.
// Deterministic pipelines (experiments, tests) must budget in probes.
package localsearch

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/seed"
)

// improveEps matches the strict-improvement threshold of
// core.AssignIncrementalWith: a move must beat the incumbent aggregate
// by more than this to count, so floating-point noise can never drive
// an endless improve/undo cycle.
const improveEps = 1e-12

// checkEvery is how many probes pass between context/deadline
// checkpoints: at ~570ns per probe that is one check every ~70µs,
// cheap enough to keep cancellation latency invisible while keeping
// the select off the hot loop.
const checkEvery = 128

// DefaultNeighborhood is the candidate-cache size M when Options leaves
// it zero: each user may move only among its 8 best-rate extenders.
const DefaultNeighborhood = 8

// DefaultDepth is the k-opt chain depth when Options leaves it zero.
const DefaultDepth = 3

// Method selects one member of the search family.
type Method int

const (
	// HillClimbing commits the single best improving move per pass
	// until no candidate move improves: the cheapest and most
	// predictable member, and the one the warm solve paths use.
	HillClimbing Method = iota
	// KOpt first climbs to a single-move optimum, then escapes it with
	// eject/reinsert chains up to Options.Depth moves deep, keeping the
	// best improving prefix of each chain and rolling back the rest.
	KOpt
	// Annealing walks random candidate moves under a Metropolis
	// acceptance rule with a geometrically cooled temperature, seeded
	// from the seed.StrategyRand stream.
	Annealing
)

// String returns the registry-style name of the method.
func (m Method) String() string {
	switch m {
	case HillClimbing:
		return "hillclimb"
	case KOpt:
		return "kopt"
	case Annealing:
		return "anneal"
	}
	return "unknown"
}

// StopReason records why a search returned.
type StopReason int

const (
	// StopOptimum: no candidate move improves (hill climb / k-opt
	// exhausted their neighborhoods; the natural end state).
	StopOptimum StopReason = iota
	// StopProbes: the probe budget ran out.
	StopProbes
	// StopMoves: the move budget ran out.
	StopMoves
	// StopTime: the wall-clock budget expired.
	StopTime
	// StopCtx: the context was cancelled.
	StopCtx
	// StopFrozen: annealing cooled below its temperature floor.
	StopFrozen
)

// String names the stop reason for stats and logs.
func (r StopReason) String() string {
	switch r {
	case StopOptimum:
		return "optimum"
	case StopProbes:
		return "probes"
	case StopMoves:
		return "moves"
	case StopTime:
		return "time"
	case StopCtx:
		return "ctx"
	case StopFrozen:
		return "frozen"
	}
	return "unknown"
}

// Budget bounds a search. Zero or negative fields mean unlimited; an
// all-zero Budget runs to the method's natural end (local optimum or
// temperature floor). This is the one budget vocabulary shared with
// strategy.Config.
type Budget struct {
	// Probes caps ProbeMove evaluations, the search's unit of work and
	// the deterministic way to bound it.
	Probes int
	// Moves caps committed re-associations of already-placed users.
	// Placing a previously unassigned user is free, mirroring the
	// arrivals-are-free rule of core.AssignIncrementalWith. A negative
	// value forbids re-associations entirely (placement only), the
	// warm-path encoding of that rule's "budget 0".
	Moves int
	// Time caps wall clock. Results under a time budget depend on
	// machine speed; use Probes where determinism matters.
	Time time.Duration
}

// Unlimited reports whether no dimension of the budget binds.
func (b Budget) Unlimited() bool {
	return b.Probes <= 0 && b.Moves == 0 && b.Time <= 0
}

// AnnealOptions tunes the Annealing method. Zero values pick defaults
// scaled to the instance, so the common configuration is empty.
type AnnealOptions struct {
	// InitTemp is the starting temperature in aggregate-throughput
	// units (Mbps). Zero means 2% of the seed assignment's aggregate:
	// early steps accept moves that cost up to a couple percent of the
	// objective, late steps only improvements.
	InitTemp float64
	// Cooling is the per-step geometric factor in (0,1). Zero picks a
	// schedule that reaches the temperature floor exactly when the
	// probe budget runs out (or 0.9995 when the budget is unlimited),
	// so the walk always gets a greedy final phase.
	Cooling float64
	// FloorFrac stops the walk when temperature falls below
	// FloorFrac×InitTemp (StopFrozen). Zero means 1e-3.
	FloorFrac float64
}

// Options configures a search.
type Options struct {
	// Model selects the throughput model the committed states are
	// evaluated under (must match what the caller compares against).
	Model model.Options
	// Neighborhood is the candidate-cache size M: each user considers
	// only its M best-rate extenders as move targets. Zero means
	// DefaultNeighborhood; negative or ≥ NumExtenders means all
	// reachable extenders.
	Neighborhood int
	// Depth is the k-opt chain length (KOpt only). Zero means
	// DefaultDepth.
	Depth int
	// Seed roots the annealer's randomness via
	// seed.Rand(Seed, seed.StrategyRand, 0) when Rng is nil.
	Seed int64
	// Rng, when non-nil, supplies the annealer's randomness directly
	// (the strategy layer passes its per-instance generator here).
	Rng *rand.Rand
	// Anneal tunes the Annealing method.
	Anneal AnnealOptions
	// Budget bounds the search; see the anytime contract above.
	Budget Budget
}

func (o Options) neighborhood() int {
	if o.Neighborhood == 0 {
		return DefaultNeighborhood
	}
	return o.Neighborhood
}

func (o Options) depth() int {
	if o.Depth <= 0 {
		return DefaultDepth
	}
	return o.Depth
}

func (o Options) rng() *rand.Rand {
	if o.Rng != nil {
		return o.Rng
	}
	return seed.Rand(o.Seed, seed.StrategyRand, 0)
}

// Result reports a finished search. All slices are caller-owned copies.
type Result struct {
	// Assign is the best assignment found (a copy; always valid).
	Assign model.Assignment
	// Aggregate is Assign's total throughput, bit-identical to a fresh
	// model.EvaluateWith under the same model options.
	Aggregate float64
	// Utility is Assign's value under Options.Model.Utility — the
	// quantity the search actually maximized (equal to Aggregate for
	// the zero sum-rate utility), bit-identical to a fresh
	// model.EvaluateWith's Result.Utility.
	Utility float64
	// Start is the utility of the seed assignment after free placement
	// of unassigned users, the baseline the search improved (the
	// aggregate under the zero utility).
	Start float64
	// Placed counts previously unassigned users the seeding pass
	// placed (they do not consume the move budget).
	Placed int
	// Probes counts delta probes actually evaluated, including the
	// seeding pass and tentative k-opt chains.
	Probes int
	// Attaches counts full evaluator rebuilds: 1 when the search had to
	// attach to (network, start), 0 when the Matches fast path reused
	// the committed state of the previous search.
	Attaches int
	// Commits counts Commit operations applied, including k-opt
	// rollbacks (it measures evaluator work, not net moves).
	Commits int
	// Improving counts strict improvements of the best-so-far
	// score; Improving/Commits is the improving-move ratio
	// surfaced in strategy.Stats.
	Improving int
	// Trajectory is the best-so-far utility after seeding and after
	// each improvement (the aggregate under the zero sum-rate
	// utility): the anytime quality curve.
	Trajectory []float64
	// Stop records why the search returned.
	Stop StopReason
}

// run carries one search's interruption state: remaining budgets, the
// context, the deadline, and the first reason anything tripped.
type run struct {
	ctx        context.Context
	deadline   time.Time
	timed      bool
	probesLeft int // -1 = unlimited
	movesLeft  int // -1 = unlimited
	sinceCheck int
	stop       StopReason
	halted     bool
}

func newRun(ctx context.Context, b Budget) *run {
	if ctx == nil {
		ctx = context.Background()
	}
	r := &run{ctx: ctx, probesLeft: -1, movesLeft: -1}
	if b.Probes > 0 {
		r.probesLeft = b.Probes
	}
	if b.Moves > 0 {
		r.movesLeft = b.Moves
	} else if b.Moves < 0 {
		r.movesLeft = 0 // placement only
	}
	if b.Time > 0 {
		r.deadline = time.Now().Add(b.Time)
		r.timed = true
	}
	r.interrupted() // an already-cancelled ctx halts before any work
	return r
}

// takeProbe reserves one probe evaluation; false means the search must
// stop (budget exhausted or interrupted at a checkpoint).
func (r *run) takeProbe() bool {
	if r.halted {
		return false
	}
	if r.probesLeft == 0 {
		r.haltWith(StopProbes)
		return false
	}
	if r.probesLeft > 0 {
		r.probesLeft--
	}
	r.sinceCheck++
	if r.sinceCheck >= checkEvery {
		r.sinceCheck = 0
		if r.interrupted() {
			return false
		}
	}
	return true
}

// takeMove reserves one budgeted re-association.
func (r *run) takeMove() bool {
	if r.halted {
		return false
	}
	if r.movesLeft == 0 {
		r.haltWith(StopMoves)
		return false
	}
	if r.movesLeft > 0 {
		r.movesLeft--
	}
	return true
}

func (r *run) interrupted() bool {
	select {
	case <-r.ctx.Done():
		r.haltWith(StopCtx)
		return true
	default:
	}
	if r.timed && !time.Now().Before(r.deadline) {
		r.haltWith(StopTime)
		return true
	}
	return false
}

func (r *run) haltWith(reason StopReason) {
	if !r.halted {
		r.halted = true
		r.stop = reason
	}
}

// Searcher owns the reusable state of the family: the delta evaluator,
// the neighborhood cache, and the best-so-far buffers. Like
// core.Scratch, a Searcher is not safe for concurrent use but amortizes
// every allocation across repeated searches — the warm re-solve loop
// runs allocation-free after the first call on a given network size.
type Searcher struct {
	delta model.DeltaEval
	cands Candidates

	best      model.Assignment
	bestScore model.Score
	util      model.Utility
	traj      []float64

	placed, commits, improving int

	// k-opt chain scratch: the tentative move sequence and the set of
	// users already ejected in the current chain.
	chainUser []int
	chainFrom []int
	chainTo   []int
	moved     []bool
	movedList []int

	// anneal scratch: users that have at least one candidate, so the
	// random draw can never spin on an unreachable user.
	movable []int

	// hill-climb scratch: the deficit-ordered sweep permutation.
	sweep deficitOrder
}

// deficitOrder sorts a user permutation by descending rate deficit
// (ties by ascending index, keeping sweeps deterministic). It lives in
// the Searcher and is sorted through a pointer, so repeated passes stay
// allocation-free.
type deficitOrder struct {
	order   []int
	deficit []float64
}

func (d *deficitOrder) Len() int { return len(d.order) }
func (d *deficitOrder) Less(a, b int) bool {
	ia, ib := d.order[a], d.order[b]
	if d.deficit[ia] != d.deficit[ib] {
		return d.deficit[ia] > d.deficit[ib]
	}
	return ia < ib
}
func (d *deficitOrder) Swap(a, b int) { d.order[a], d.order[b] = d.order[b], d.order[a] }

// Search runs one method of the family from the start assignment and
// returns the best state found. The start may contain Unassigned
// entries (arrivals); they are placed greedily first, free of the move
// budget. The error is non-nil only for an invalid input (start fails
// validation against n) — budget exhaustion and cancellation are
// normal returns per the anytime contract.
func (s *Searcher) Search(ctx context.Context, n *model.Network, start model.Assignment, method Method, opts Options) (*Result, error) {
	r := newRun(ctx, opts.Budget)
	probesBefore, evalsBefore := s.delta.Probes, s.delta.Evals
	if err := s.begin(n, start, opts, r); err != nil {
		return nil, err
	}
	if !r.halted {
		switch method {
		case KOpt:
			s.kopt(n, opts, r)
		case Annealing:
			s.anneal(n, opts, r)
		default:
			s.hillClimb(r)
			if !r.halted {
				r.stop = StopOptimum
			}
		}
	}
	res := s.finish(r)
	res.Probes = s.delta.Probes - probesBefore
	res.Attaches = s.delta.Evals - evalsBefore
	return res, nil
}

// Place assigns a single unassigned user to the candidate extender
// that maximizes the aggregate, committing the choice into the
// searcher's evaluator — the online-arrival form behind the strategy
// layer's Add. It returns the chosen extender, or model.Unassigned
// when the user has no reachable candidate. Repeated Places against
// the same evolving assignment hit the Matches fast path, so a stream
// of arrivals costs O(M) probes each, not O(users) rebuilds.
func (s *Searcher) Place(n *model.Network, assign model.Assignment, user int, opts Options) (int, error) {
	if !s.delta.Matches(n, assign, opts.Model) {
		if err := s.delta.Attach(n, assign, opts.Model); err != nil {
			return model.Unassigned, err
		}
	}
	s.cands.Ensure(n, opts.neighborhood())
	if got := s.delta.Assigned(user); got != model.Unassigned {
		return model.Unassigned, fmt.Errorf("localsearch: Place(user %d): already assigned to %d", user, got)
	}
	bestTo := -1
	bestSc := model.Score{Primary: math.Inf(-1), Tie: math.Inf(-1)}
	for _, to := range s.cands.For(user) {
		if sc := s.delta.ProbeMoveScore(user, model.Unassigned, to); sc.Better(bestSc) {
			bestTo, bestSc = to, sc
		}
	}
	if bestTo < 0 {
		return model.Unassigned, nil
	}
	s.delta.Commit(user, model.Unassigned, bestTo)
	return bestTo, nil
}

// HillClimb is Search(ctx, n, start, HillClimbing, opts).
func (s *Searcher) HillClimb(ctx context.Context, n *model.Network, start model.Assignment, opts Options) (*Result, error) {
	return s.Search(ctx, n, start, HillClimbing, opts)
}

// KOpt is Search(ctx, n, start, KOpt, opts).
func (s *Searcher) KOpt(ctx context.Context, n *model.Network, start model.Assignment, opts Options) (*Result, error) {
	return s.Search(ctx, n, start, KOpt, opts)
}

// Anneal is Search(ctx, n, start, Annealing, opts).
func (s *Searcher) Anneal(ctx context.Context, n *model.Network, start model.Assignment, opts Options) (*Result, error) {
	return s.Search(ctx, n, start, Annealing, opts)
}

// begin attaches the evaluator to (n, start), refreshes the candidate
// cache, places unassigned users, and snapshots the post-placement
// state as the initial best.
func (s *Searcher) begin(n *model.Network, start model.Assignment, opts Options, r *run) error {
	if !s.delta.Matches(n, start, opts.Model) {
		if err := s.delta.Attach(n, start, opts.Model); err != nil {
			return err
		}
	}
	s.cands.Ensure(n, opts.neighborhood())
	s.util = opts.Model.Utility
	s.placed, s.commits, s.improving = 0, 0, 0
	s.place(n, r)
	s.bestScore = s.delta.Score()
	s.best = s.delta.AppendAssignment(s.best)
	s.traj = append(s.traj[:0], s.bestScore.Primary)
	return nil
}

// place greedily assigns every Unassigned user to the candidate that
// maximizes the score (the aggregate, under the zero utility) — the
// same arrivals-are-free rule as core.AssignIncrementalWith, so the
// move budget is untouched. Probes still count (they are real work),
// and an exhausted budget leaves the remaining users unassigned, which
// is still a valid state.
func (s *Searcher) place(n *model.Network, r *run) {
	for i := 0; i < n.NumUsers(); i++ {
		if s.delta.Assigned(i) != model.Unassigned {
			continue
		}
		bestTo := -1
		bestSc := model.Score{Primary: math.Inf(-1), Tie: math.Inf(-1)}
		for _, to := range s.cands.For(i) {
			if !r.takeProbe() {
				break
			}
			if sc := s.delta.ProbeMoveScore(i, model.Unassigned, to); sc.Better(bestSc) {
				bestTo, bestSc = to, sc
			}
		}
		if bestTo >= 0 {
			s.delta.Commit(i, model.Unassigned, bestTo)
			s.commits++
			s.placed++
		}
		if r.halted {
			return
		}
	}
}

// noteBest snapshots the committed state as the new best.
func (s *Searcher) noteBest() {
	s.bestScore = s.delta.Score()
	s.best = s.delta.AppendAssignment(s.best)
	s.traj = append(s.traj, s.bestScore.Primary)
	s.improving++
}

// hillClimb runs deficit-ordered greedy sweeps: each pass visits users
// in descending rate deficit (the user's best candidate rate minus its
// current rate — plain arithmetic over the candidate cache, no probes)
// and commits each user's best improving move the moment it is found.
// The ordering is what makes warm re-solves sub-millisecond: users
// parked far below their best link — churned arrivals, roamed users —
// are examined within the first few hundred probes, so a tight budget
// repairs the damage long before a full pass would finish. The
// local-optimum certificate is unchanged: only a complete pass that
// commits nothing (and therefore probed every candidate of every user)
// ends the climb. Each commit strictly increases the aggregate by more
// than improveEps, so the loop terminates; the visit order is a pure
// function of the committed state, so trajectories are deterministic
// and a larger probe budget only ever extends a smaller one's.
func (s *Searcher) hillClimb(r *run) {
	for {
		s.sweepOrder()
		committed := false
		for _, i := range s.sweep.order {
			from := s.delta.Assigned(i)
			if from == model.Unassigned {
				continue // unplaced only when placement ran out of budget
			}
			bestTo, bestSc := -1, s.bestScore
			for _, to := range s.cands.For(i) {
				if to == from {
					continue
				}
				if !r.takeProbe() {
					break
				}
				if sc := s.delta.ProbeMoveScore(i, from, to); sc.BetterEps(bestSc, improveEps) {
					bestTo, bestSc = to, sc
				}
			}
			if bestTo >= 0 && r.takeMove() {
				s.delta.Commit(i, from, bestTo)
				s.commits++
				s.noteBest()
				committed = true
			}
			if r.halted {
				return
			}
		}
		if !committed {
			return // a full clean pass: single-move local optimum
		}
	}
}

// sweepOrder rebuilds the pass permutation: every user, sorted by
// descending rate deficit in the utility's own units
// (model.Utility.Deficit of the best candidate rate vs the current
// rate — plain arithmetic over the candidate cache, no probes). The
// zero sum-rate utility keeps today's raw rate difference bit-for-bit;
// fairness-hungry members send users at or near zero throughput to the
// front. Unassigned users keep their full best rate as the deficit
// (+∞ under finite α > 0), so any user the placement pass could not
// afford sorts first.
func (s *Searcher) sweepOrder() {
	users := len(s.best)
	if cap(s.sweep.order) < users {
		s.sweep.order = make([]int, users)
		s.sweep.deficit = make([]float64, users)
	}
	s.sweep.order = s.sweep.order[:users]
	s.sweep.deficit = s.sweep.deficit[:users]
	for i := 0; i < users; i++ {
		s.sweep.order[i] = i
		cand := s.cands.For(i)
		if len(cand) == 0 {
			s.sweep.deficit[i] = math.Inf(-1)
			continue
		}
		best := s.cands.net.WiFiRates[i][cand[0]]
		cur := 0.0
		if from := s.delta.Assigned(i); from != model.Unassigned {
			cur = s.cands.net.WiFiRates[i][from]
		}
		s.sweep.deficit[i] = s.util.Deficit(best, cur)
	}
	sort.Sort(&s.sweep)
}

// kopt escapes single-move local optima with eject/reinsert chains:
// climb to an optimum, then from each seed user build a chain of up to
// depth moves — move the user to its best candidate even if that
// worsens the objective, then eject the weakest member of the
// destination cell and continue. The best improving prefix of the
// chain is kept; the rest is rolled back by committing the moves in
// reverse, which restores the evaluator bit-identically (DESIGN.md
// §10: a cell's sum depends only on its member set). When any chain
// improves, the climb restarts, Lin-Kernighan style.
func (s *Searcher) kopt(n *model.Network, opts Options, r *run) {
	depth := opts.depth()
	if cap(s.moved) < len(s.best) {
		s.moved = make([]bool, len(s.best))
	}
	s.moved = s.moved[:len(s.best)]
	for {
		s.hillClimb(r)
		if r.halted {
			return
		}
		improved := false
		for u := 0; u < len(s.best); u++ {
			if s.tryChain(n, u, depth, r) {
				improved = true
			}
			if r.halted {
				return
			}
		}
		if !improved {
			r.stop = StopOptimum
			return
		}
	}
}

// tryChain builds one eject/reinsert chain seeded at user u and keeps
// its best improving prefix. Returns whether the best aggregate
// improved. On any exit — including budget exhaustion mid-chain — every
// tentative commit beyond the kept prefix has been rolled back.
func (s *Searcher) tryChain(n *model.Network, u0 int, depth int, r *run) bool {
	s.chainUser = s.chainUser[:0]
	s.chainFrom = s.chainFrom[:0]
	s.chainTo = s.chainTo[:0]
	for _, u := range s.movedList {
		s.moved[u] = false
	}
	s.movedList = s.movedList[:0]

	bestDepth := 0
	bestChainSc := s.bestScore
	u := u0
	for len(s.chainUser) < depth {
		from := s.delta.Assigned(u)
		if from == model.Unassigned {
			break
		}
		bestTo := -1
		bestSc := model.Score{Primary: math.Inf(-1), Tie: math.Inf(-1)}
		for _, to := range s.cands.For(u) {
			if to == from {
				continue
			}
			if !r.takeProbe() {
				break
			}
			if sc := s.delta.ProbeMoveScore(u, from, to); sc.Better(bestSc) {
				bestTo, bestSc = to, sc
			}
		}
		if bestTo < 0 {
			break
		}
		s.delta.Commit(u, from, bestTo)
		s.commits++
		s.chainUser = append(s.chainUser, u)
		s.chainFrom = append(s.chainFrom, from)
		s.chainTo = append(s.chainTo, bestTo)
		s.moved[u] = true
		s.movedList = append(s.movedList, u)
		if bestSc.BetterEps(bestChainSc, improveEps) {
			bestChainSc = bestSc
			bestDepth = len(s.chainUser)
		}
		if r.halted {
			break
		}
		// Eject the destination cell's weakest link (lowest rate to
		// bestTo, lowest index on ties) that the chain hasn't moved
		// yet: the member whose departure would help that cell most.
		u = -1
		worst := math.Inf(1)
		for _, m := range s.delta.Members(bestTo) {
			if s.moved[m] {
				continue
			}
			if rate := n.WiFiRates[m][bestTo]; rate < worst {
				u, worst = m, rate
			}
		}
		if u < 0 {
			break
		}
	}

	// The move budget caps net re-associations: truncate the kept
	// prefix to what remains.
	if r.movesLeft >= 0 && bestDepth > r.movesLeft {
		bestDepth = r.movesLeft
		bestChainSc = s.bestScore // prefix score unknown; recheck below
	}
	for k := len(s.chainUser) - 1; k >= bestDepth; k-- {
		s.delta.Commit(s.chainUser[k], s.chainTo[k], s.chainFrom[k])
		s.commits++
	}
	if bestDepth == 0 {
		return false
	}
	if s.delta.Score().BetterEps(s.bestScore, improveEps) {
		for k := 0; k < bestDepth; k++ {
			r.takeMove()
		}
		s.noteBest()
		return true
	}
	// Truncation left a non-improving prefix: unwind it too.
	for k := bestDepth - 1; k >= 0; k-- {
		s.delta.Commit(s.chainUser[k], s.chainTo[k], s.chainFrom[k])
		s.commits++
	}
	return false
}

// anneal performs a Metropolis walk over random candidate moves with a
// geometrically cooled temperature: accept any improvement, accept a
// degradation Δ<0 with probability exp(Δ/T). The best-so-far state is
// tracked separately, so a wandering walk still returns its peak.
func (s *Searcher) anneal(n *model.Network, opts Options, r *run) {
	s.movable = s.movable[:0]
	for i := 0; i < len(s.best); i++ {
		if s.delta.Assigned(i) != model.Unassigned && len(s.cands.For(i)) > 0 {
			s.movable = append(s.movable, i)
		}
	}
	if len(s.movable) == 0 {
		r.stop = StopOptimum
		return
	}

	rng := opts.rng()
	t0 := opts.Anneal.InitTemp
	if t0 <= 0 {
		// Utility units, not Mbps, when a non-zero utility is chosen:
		// 2% of the seed score's magnitude (the aggregate under the
		// zero utility, where |score| == score — today's temperature
		// bit-for-bit).
		t0 = 0.02 * math.Max(math.Abs(s.bestScore.Primary), 1)
	}
	floorFrac := opts.Anneal.FloorFrac
	if floorFrac <= 0 {
		floorFrac = 1e-3
	}
	cool := opts.Anneal.Cooling
	if cool <= 0 || cool >= 1 {
		if opts.Budget.Probes > 0 {
			// Reach the floor exactly when the probe budget runs out,
			// so every budget gets a full hot-to-greedy schedule.
			cool = math.Pow(floorFrac, 1/float64(opts.Budget.Probes))
		} else {
			cool = 0.9995
		}
	}
	floor := t0 * floorFrac

	curScore := s.delta.Score()
	temp := t0
	for {
		if temp < floor {
			r.haltWith(StopFrozen)
			return
		}
		i := s.movable[rng.Intn(len(s.movable))]
		cl := s.cands.For(i)
		to := cl[rng.Intn(len(cl))]
		from := s.delta.Assigned(i)
		if !r.takeProbe() {
			return
		}
		// Metropolis Δ is the primary (utility) delta; the rng draw
		// sequence — one Float64 per non-improving candidate — is
		// independent of the utility choice, so the zero utility
		// replays today's walk bit-for-bit.
		sc := s.delta.ProbeMoveScore(i, from, to)
		if to != from {
			delta := sc.Primary - curScore.Primary
			if delta > 0 || rng.Float64() < math.Exp(delta/temp) {
				if !r.takeMove() {
					return
				}
				s.delta.Commit(i, from, to)
				s.commits++
				curScore = s.delta.Score()
				if curScore.BetterEps(s.bestScore, improveEps) {
					s.noteBest()
				}
			}
		}
		temp *= cool
	}
}

// finish assembles the caller-owned Result from the search state. The
// Start entry is trajectory[0] (the post-placement baseline).
func (s *Searcher) finish(r *run) *Result {
	res := &Result{
		Assign:     append(model.Assignment(nil), s.best...),
		Aggregate:  s.bestScore.Tie,
		Utility:    s.bestScore.Primary,
		Placed:     s.placed,
		Commits:    s.commits,
		Improving:  s.improving,
		Trajectory: append([]float64(nil), s.traj...),
		Stop:       r.stop,
	}
	if len(s.traj) > 0 {
		res.Start = s.traj[0]
	}
	return res
}
