package localsearch

import (
	"context"
	"reflect"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
)

// utilityInstance is the hand-checked 3-user network from the model
// package's max-min tests: u0 and u1 reach only extender 0 (rate 100);
// u2 reaches extender 0 at rate 30 and extender 1 at rate 5. All three
// on extender 0 ("A-join") gives everyone 18.75 (aggregate ≈ 56.25);
// u2 alone on extender 1 ("B-join") gives aggregate 105 but a 5 Mbps
// minimum. Sum-rate and max-min therefore pull the search in opposite
// directions.
func utilityInstance() (*model.Network, model.Assignment, model.Assignment) {
	n := &model.Network{
		WiFiRates: [][]float64{
			{100, 0},
			{100, 0},
			{30, 5},
		},
		PLCCaps: []float64{1000, 1000},
	}
	return n, model.Assignment{0, 0, 0}, model.Assignment{0, 0, 1}
}

// TestHillClimbFollowsUtility: the identical instance, the identical
// start, opposite optima — the chosen utility member decides which way
// hill climbing moves.
func TestHillClimbFollowsUtility(t *testing.T) {
	n, aJoin, bJoin := utilityInstance()

	// Sum-rate: starting from the fair optimum, the search must walk to
	// the throughput optimum (move u2 off the shared extender).
	var s Searcher
	opts := Options{Model: model.Options{Redistribute: true}}
	res, err := s.Search(context.Background(), n, aJoin, HillClimbing, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Assign, bJoin) {
		t.Fatalf("sum-rate hill climb ended at %v, want B-join %v", res.Assign, bJoin)
	}
	if res.Utility != res.Aggregate {
		t.Fatalf("sum-rate Utility %v != Aggregate %v", res.Utility, res.Aggregate)
	}

	// Max-min: starting from the throughput optimum, the search must
	// walk back to the fair one.
	var sm Searcher
	mmOpts := Options{Model: model.Options{Redistribute: true, Utility: model.MaxMinFairness()}}
	mmRes, err := sm.Search(context.Background(), n, bJoin, HillClimbing, mmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mmRes.Assign, aJoin) {
		t.Fatalf("max-min hill climb ended at %v, want A-join %v", mmRes.Assign, aJoin)
	}
	if mmRes.Utility >= mmRes.Aggregate {
		t.Fatalf("max-min Utility %v should be the min share, below Aggregate %v",
			mmRes.Utility, mmRes.Aggregate)
	}
}

// TestSearchUtilityMatchesFullEvaluation extends the differential
// anytime contract across the utility family: for every method and
// several instances, the reported Utility and Aggregate are
// bit-identical (==) to a fresh full EvaluateWith of the returned
// assignment under the same options.
func TestSearchUtilityMatchesFullEvaluation(t *testing.T) {
	utilities := []model.Utility{
		model.ProportionalFairness(),
		model.AlphaFair(2),
		model.AlphaFair(0.5),
		model.MaxMinFairness(),
	}
	var scratch model.EvalScratch
	for _, u := range utilities {
		for _, base := range []int64{1, 42, 2020} {
			for _, method := range allMethods {
				n, start := searchInstance(base, 6, 40)
				var s Searcher
				opts := Options{
					Seed:  base,
					Model: model.Options{Redistribute: true, Utility: u},
				}
				res, err := s.Search(context.Background(), n, start, method, opts)
				if err != nil {
					t.Fatalf("%v base=%d %v: %v", u, base, method, err)
				}
				full, err := model.EvaluateWith(&scratch, n, res.Assign, opts.Model)
				if err != nil {
					t.Fatalf("%v base=%d %v: returned assignment invalid: %v", u, base, method, err)
				}
				if res.Utility != full.Utility {
					t.Fatalf("%v base=%d %v: Utility %v != fresh EvaluateWith %v",
						u, base, method, res.Utility, full.Utility)
				}
				if res.Aggregate != full.Aggregate {
					t.Fatalf("%v base=%d %v: Aggregate %v != fresh EvaluateWith %v",
						u, base, method, res.Aggregate, full.Aggregate)
				}
				if res.Utility < res.Start {
					t.Fatalf("%v base=%d %v: search lost ground: %v < start %v",
						u, base, method, res.Utility, res.Start)
				}
			}
		}
	}
}
