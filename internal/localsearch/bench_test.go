// Benchmarks for the warm re-solve path, in package localsearch_test so
// they can price the anytime search against the full two-phase solve in
// internal/core without an import cycle. scripts/bench-anytime.sh runs
// these and records the numbers in BENCH_anytime.json.
package localsearch_test

import (
	"context"
	"fmt"
	"sync"
	"testing"

	"github.com/plcwifi/wolt/internal/core"
	"github.com/plcwifi/wolt/internal/localsearch"
	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/seed"
)

// warmBenchNetwork mirrors internal/core's benchNetwork (unexported
// there): the 2000×32 enterprise instance of BenchmarkLargeSolve, with
// one deliberate change — PLC capacities are scaled 10×. The stock
// instance is PLC-saturated under the redistribute model (Σ demand/cap
// ≈ 3.5 > 1), where water-filling hands every active cell time 1/|A|
// and the aggregate collapses to Σcaps/|A| for ANY assignment — a
// degenerate quality reference. The scaled caps put the instance in the
// WiFi-bound regime (Σ need ≈ 0.35) where the objective actually
// responds to association choices, so the gap metric means something.
// Wall-clock comparability with BenchmarkLargeSolve is unaffected: the
// solve and probe costs depend on instance shape, not cap magnitude.
func warmBenchNetwork(users, extenders int) *model.Network {
	rng := seed.Root(2020)
	steps := []float64{6, 9, 12, 18, 24, 36, 48, 54}
	n := &model.Network{
		WiFiRates: make([][]float64, users),
		PLCCaps:   make([]float64, extenders),
	}
	for j := range n.PLCCaps {
		n.PLCCaps[j] = 10 * (300 + 500*rng.Float64())
	}
	for i := range n.WiFiRates {
		n.WiFiRates[i] = make([]float64, extenders)
		reachable := false
		for j := range n.WiFiRates[i] {
			if rng.Float64() < 0.5 {
				n.WiFiRates[i][j] = steps[rng.Intn(len(steps))]
				reachable = true
			}
		}
		if !reachable {
			n.WiFiRates[i][rng.Intn(extenders)] = steps[rng.Intn(len(steps))]
		}
	}
	return n
}

// warmFixture is the shared benchmark state: the instance, the full
// WOLT solve (the quality reference), and a churned copy of that
// solution — the "previous association" a warm re-solve starts from.
type warmFixture struct {
	net     *model.Network
	full    model.Assignment
	fullAgg float64
	churned model.Assignment
}

var (
	warmOnce sync.Once
	warm     warmFixture
	warmErr  error
)

// warmSetup solves the 2000×32 instance once with the full two-phase
// pipeline, then applies a deterministic churn burst: 16 users hop to a
// random reachable extender and 4 depart-and-rejoin (arrive
// unassigned). Every benchmark iteration repairs this same start, so
// ns/op is the latency of one warm re-solve under that churn.
func warmSetup() {
	warm.net = warmBenchNetwork(2000, 32)
	var ws core.Scratch
	res, err := core.AssignWith(&ws, warm.net, core.Options{})
	if err != nil {
		warmErr = err
		return
	}
	warm.full = res.Assign
	warm.fullAgg = model.Aggregate(warm.net, warm.full, model.Options{Redistribute: true})

	warm.churned = append(model.Assignment(nil), warm.full...)
	rng := seed.Rand(2020, seed.AnytimeBench, 0)
	users := warm.net.NumUsers()
	for k := 0; k < 16; k++ {
		i := rng.Intn(users)
		for {
			j := rng.Intn(warm.net.NumExtenders())
			if warm.net.WiFiRates[i][j] > 0 {
				warm.churned[i] = j
				break
			}
		}
	}
	for k := 0; k < 4; k++ {
		warm.churned[rng.Intn(users)] = model.Unassigned
	}
}

// benchWarmResolve measures one warm re-solve at the given method and
// probe budget, reporting the objective gap vs the full solve as
// "gap_pct" (the acceptance target is ≤ 3%).
func benchWarmResolve(b *testing.B, method localsearch.Method, probes int) {
	warmOnce.Do(warmSetup)
	if warmErr != nil {
		b.Fatal(warmErr)
	}
	opts := localsearch.Options{
		Model:  model.Options{Redistribute: true},
		Seed:   2020,
		Budget: localsearch.Budget{Probes: probes},
	}
	ctx := context.Background()
	var s localsearch.Searcher
	var last *localsearch.Result
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := s.Search(ctx, warm.net, warm.churned, method, opts)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.StopTimer()
	gap := 100 * (warm.fullAgg - last.Aggregate) / warm.fullAgg
	b.ReportMetric(gap, "gap_pct")
	b.ReportMetric(100*(warm.fullAgg-last.Start)/warm.fullAgg, "startgap_pct")
	b.ReportMetric(float64(last.Probes), "probes/op")
}

// BenchmarkWarmResolve is the headline number: hill-climbing repair of
// a churn burst on the BenchmarkLargeSolve instance. Compare ns/op
// against BenchmarkLargeSolve in internal/core — the full solve this
// path replaces.
func BenchmarkWarmResolve(b *testing.B) {
	for _, probes := range []int{100, 500, 1000, 2000, 10000} {
		b.Run(fmt.Sprintf("hillclimb/probes=%d", probes), func(b *testing.B) {
			benchWarmResolve(b, localsearch.HillClimbing, probes)
		})
	}
}

func BenchmarkWarmResolveKOpt(b *testing.B) {
	benchWarmResolve(b, localsearch.KOpt, 2000)
}

func BenchmarkWarmResolveAnneal(b *testing.B) {
	benchWarmResolve(b, localsearch.Annealing, 2000)
}
