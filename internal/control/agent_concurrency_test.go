package control

import (
	"testing"
	"time"
)

// TestStatsConcurrentWithWaitForMove is the regression test for the
// reply-stealing bug: WaitForMove and Stats both used to drain the one
// directives channel, so a WaitForMove blocked on the channel could
// swallow a MsgStatsReply (timing Stats out) and a concurrent Stats
// could swallow the MsgAssociate WaitForMove needed. Stats replies now
// travel on their own channel; both calls must succeed concurrently.
// Run with -race.
func TestStatsConcurrentWithWaitForMove(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 1)
	ext, err := a.Join([]float64{15, 10}, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ext != 0 {
		t.Fatalf("initial extender %d, want 0", ext)
	}

	// WaitForMove parks on the directive stream while Stats hammers the
	// controller; every stats reply lands while the waiter is draining.
	moveDone := make(chan error, 1)
	go func() {
		moved, err := a.WaitForMove(0, testTimeout)
		if err == nil && moved != 1 {
			t.Errorf("re-associated to %d, want 1", moved)
		}
		moveDone <- err
	}()

	statsDone := make(chan error, 1)
	go func() {
		for i := 0; i < 50; i++ {
			if _, err := a.Stats(testTimeout); err != nil {
				statsDone <- err
				return
			}
		}
		statsDone <- nil
	}()

	// Let both loops get going, then trigger the re-association.
	time.Sleep(20 * time.Millisecond)
	if err := a.UpdateScan([]float64{1, 50}, nil); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 2; i++ {
		select {
		case err := <-moveDone:
			if err != nil {
				t.Errorf("WaitForMove: %v", err)
			}
			moveDone = nil
		case err := <-statsDone:
			if err != nil {
				t.Errorf("Stats: %v", err)
			}
			statsDone = nil
		case <-time.After(2 * testTimeout):
			t.Fatal("concurrent WaitForMove/Stats deadlocked")
		}
	}
}
