// Package control implements WOLT's control plane (§V-A of the paper): a
// Central Controller (CC) process and per-user agents that talk JSON over
// TCP. An agent scans the reachable extenders, estimates its WiFi rate to
// each (from the NIC's modulation and coding feedback — here, the radio
// model), and reports the estimates to the CC; the CC runs the configured
// association policy (WOLT, Greedy or RSSI) and pushes association
// directives back. WOLT may re-associate existing users when topology
// changes; Greedy and RSSI never do.
package control

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
)

// MsgType discriminates protocol messages.
type MsgType string

// Message types exchanged between agents and the controller.
const (
	// MsgJoin is sent by an agent when it needs an association. It
	// carries the agent's user ID and its scan report.
	MsgJoin MsgType = "join"
	// MsgLeave is sent by an agent that is disconnecting.
	MsgLeave MsgType = "leave"
	// MsgUpdate is sent by an associated agent whose radio environment
	// changed (mobility): it carries a fresh scan report. The controller
	// may push re-association directives in response.
	MsgUpdate MsgType = "update"
	// MsgAssociate is sent by the CC to direct an agent to an extender.
	MsgAssociate MsgType = "associate"
	// MsgStats asks the CC for a snapshot of controller statistics.
	MsgStats MsgType = "stats"
	// MsgStatsReply answers MsgStats.
	MsgStatsReply MsgType = "stats_reply"
	// MsgError reports a protocol or policy failure to the agent.
	MsgError MsgType = "error"
)

// Message is the single wire format; fields are used according to Type.
type Message struct {
	Type MsgType `json:"type"`
	// UserID identifies the agent (join, leave, associate).
	UserID int `json:"userId,omitempty"`
	// Rates is the scan report: estimated WiFi PHY rate in Mbps to each
	// extender, indexed by extender ID (join).
	Rates []float64 `json:"ratesMbps,omitempty"`
	// RSSI is the scan report's signal strengths in dBm (join).
	RSSI []float64 `json:"rssiDbm,omitempty"`
	// Extender is the association directive target (associate).
	Extender int `json:"extender,omitempty"`
	// Reassociation marks a directive that moves an already-associated
	// user (associate).
	Reassociation bool `json:"reassociation,omitempty"`
	// Stats is the controller snapshot (stats_reply).
	Stats *Stats `json:"stats,omitempty"`
	// Error carries a human-readable failure description (error).
	Error string `json:"error,omitempty"`
}

// Stats is a controller snapshot.
type Stats struct {
	Policy         string      `json:"policy"`
	Users          int         `json:"users"`
	Joins          int         `json:"joins"`
	Leaves         int         `json:"leaves"`
	Reassociations int         `json:"reassociations"`
	Assignment     map[int]int `json:"assignment"`
}

// conn wraps a TCP connection with newline-delimited JSON framing.
type jsonConn struct {
	c   net.Conn
	r   *bufio.Reader
	enc *json.Encoder
}

func newJSONConn(c net.Conn) *jsonConn {
	return &jsonConn{c: c, r: bufio.NewReader(c), enc: json.NewEncoder(c)}
}

func (jc *jsonConn) send(m Message) error {
	return jc.enc.Encode(m)
}

func (jc *jsonConn) recv() (Message, error) {
	line, err := jc.r.ReadBytes('\n')
	if err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("control: bad message %q: %w", line, err)
	}
	return m, nil
}

func (jc *jsonConn) close() error {
	return jc.c.Close()
}
