// Package control implements WOLT's control plane (§V-A of the paper): a
// Central Controller (CC) process and per-user agents that talk a
// length-prefixed binary protocol over TCP (newline-delimited JSON
// remains as a negotiated fallback for old agents). An agent scans the
// reachable extenders, estimates its WiFi rate to each (from the NIC's
// modulation and coding feedback — here, the radio model), and reports
// the estimates to the CC; the CC runs the configured association
// policy (WOLT, Greedy or RSSI) and pushes association directives back.
// WOLT may re-associate existing users when topology changes; Greedy
// and RSSI never do.
//
// The package is layered (DESIGN.md §9): Engine is the transport-free
// policy/state core (association bookkeeping plus strategy execution),
// Server is a thin TCP adapter over an Engine, and Agent is the
// user-side client. internal/shard composes several Engines behind a
// consistent-hash ring; the MsgRedirect message is how a shard member
// bounces an agent to the shard that owns its best-rate extender.
//
// The message types and the binary frame codec live in internal/wire
// (DESIGN.md §15) and are aliased here; this file owns the two conn
// implementations (wireConn, jsonConn) and the per-connection codec
// negotiation both ends perform.
package control

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"

	"github.com/plcwifi/wolt/internal/wire"
)

// MsgType discriminates protocol messages (defined in internal/wire).
type MsgType = wire.MsgType

// Message types exchanged between agents and the controller; see the
// internal/wire constants for per-type semantics.
const (
	MsgJoin       = wire.MsgJoin
	MsgLeave      = wire.MsgLeave
	MsgUpdate     = wire.MsgUpdate
	MsgAssociate  = wire.MsgAssociate
	MsgRedirect   = wire.MsgRedirect
	MsgPing       = wire.MsgPing
	MsgStats      = wire.MsgStats
	MsgStatsReply = wire.MsgStatsReply
	MsgError      = wire.MsgError
)

// Message is the single wire format; fields are used according to Type
// (defined in internal/wire, which also owns both encodings).
type Message = wire.Message

// Stats is a controller snapshot (defined in internal/wire so stats
// replies can cross the wire in either codec).
type Stats = wire.Stats

// Codec selects a connection's message encoding. Servers never need
// one — they negotiate per connection from the client's first byte.
type Codec string

const (
	// CodecBinary is the length-prefixed binary framing (internal/wire),
	// the default: 0 allocs/op at steady state and an order of magnitude
	// cheaper than JSON per message.
	CodecBinary Codec = "binary"
	// CodecJSON is the legacy newline-delimited JSON framing, kept as a
	// negotiated fallback so old agents still connect (and as the
	// differential baseline the codec tests compare against).
	CodecJSON Codec = "json"
)

// link is the framed-connection surface both codecs implement: one
// message out (send), a burst coalesced into one write (sendBatch), one
// message in (recv), plus deadline plumbing. Server and Agent speak
// only to this interface; which codec backs it is decided per
// connection at handshake time.
type link interface {
	send(m Message) error
	sendBatch(msgs []Message) error
	recv() (Message, error)
	close() error
	setTimeouts(read, write time.Duration)
}

// negotiate inspects a just-accepted connection's first byte and builds
// the matching link (server side). Binary clients open with
// wire.Hello+version; anything else — in practice '{' — is a legacy
// JSON agent. The peek honors readTimeout so a connect-and-say-nothing
// client cannot pin the handler goroutine.
func negotiate(c net.Conn, readTimeout, writeTimeout time.Duration) (link, error) {
	br := bufio.NewReaderSize(c, connReadBuf)
	if readTimeout > 0 {
		if err := c.SetReadDeadline(time.Now().Add(readTimeout)); err != nil {
			return nil, err
		}
	}
	first, err := br.Peek(1)
	if err != nil {
		return nil, fmt.Errorf("control: handshake read: %w", err)
	}
	var lk link
	if first[0] == wire.Hello {
		version, err := handshakeVersion(br)
		if err != nil {
			return nil, err
		}
		if version != wire.Version1 {
			return nil, fmt.Errorf("control: unsupported wire version %d", version)
		}
		lk = newWireConn(c, br)
	} else {
		lk = newJSONConnReader(c, br)
	}
	lk.setTimeouts(readTimeout, writeTimeout)
	return lk, nil
}

// handshakeVersion consumes the two-byte binary hello and returns the
// offered version.
func handshakeVersion(br *bufio.Reader) (byte, error) {
	if _, err := br.Discard(1); err != nil {
		return 0, err
	}
	version, err := br.ReadByte()
	if err != nil {
		return 0, fmt.Errorf("control: handshake read: %w", err)
	}
	return version, nil
}

// connReadBuf sizes each connection's buffered reader. Steady-state
// frames are a few hundred bytes (a scan report is 8 bytes per
// extender); at city scale (10^4+ concurrent connections in one
// process) the default 4 KiB bufio buffers are the dominant per-user
// memory cost, so both codecs share this smaller size.
const connReadBuf = 1024

// wireConn wraps a TCP connection with the internal/wire binary
// framing. sendMu serializes writers (the server's outbound writer
// goroutine vs the handler's direct replies; the agent's keepalive
// ticker vs Join/UpdateScan) and guards the reused encode buffer.
// recvMsg/recvBuf are the decode scratch: recv is only ever called from
// one goroutine (the server handler or the agent read loop), and each
// returned Message is consumed before the next recv, so its slices may
// alias the scratch — the discipline that makes the steady-state
// exchange allocation-free in both directions.
type wireConn struct {
	c net.Conn
	r *bufio.Reader

	sendMu sync.Mutex
	encBuf []byte

	recvMsg Message
	recvBuf []byte

	readTimeout  time.Duration
	writeTimeout time.Duration
}

func newWireConn(c net.Conn, r *bufio.Reader) *wireConn {
	if r == nil {
		r = bufio.NewReaderSize(c, connReadBuf)
	}
	return &wireConn{c: c, r: r}
}

// dialWireConn builds the client side of a binary connection: the
// two-byte hello is written eagerly so the server can negotiate before
// the first frame arrives.
func dialWireConn(c net.Conn) (*wireConn, error) {
	if _, err := c.Write([]byte{wire.Hello, wire.Version1}); err != nil {
		_ = c.Close()
		return nil, fmt.Errorf("control: wire handshake: %w", err)
	}
	return newWireConn(c, nil), nil
}

func (wc *wireConn) setTimeouts(read, write time.Duration) {
	wc.readTimeout, wc.writeTimeout = read, write
}

func (wc *wireConn) send(m Message) error {
	wc.sendMu.Lock()
	defer wc.sendMu.Unlock()
	var err error
	wc.encBuf, err = wire.AppendFrame(wc.encBuf[:0], &m)
	if err != nil {
		return err
	}
	if err := armWrite(wc.c, wc.writeTimeout); err != nil {
		return err
	}
	_, err = wc.c.Write(wc.encBuf)
	return err
}

// sendBatch coalesces a burst of messages at the frame level: every
// frame is appended to one reused buffer under ONE lock acquisition and
// handed to the kernel as ONE write — a recompute that moves k users
// costs one syscall per connection, not k.
func (wc *wireConn) sendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	wc.sendMu.Lock()
	defer wc.sendMu.Unlock()
	buf := wc.encBuf[:0]
	var err error
	for i := range msgs {
		if buf, err = wire.AppendFrame(buf, &msgs[i]); err != nil {
			wc.encBuf = buf[:0]
			return err
		}
	}
	wc.encBuf = buf
	if err := armWrite(wc.c, wc.writeTimeout); err != nil {
		return err
	}
	_, err = wc.c.Write(buf)
	return err
}

func (wc *wireConn) recv() (Message, error) {
	if wc.readTimeout > 0 {
		if err := wc.c.SetReadDeadline(time.Now().Add(wc.readTimeout)); err != nil {
			return Message{}, err
		}
	}
	if err := wire.ReadFrame(wc.r, &wc.recvMsg, &wc.recvBuf); err != nil {
		return Message{}, err
	}
	return wc.recvMsg, nil
}

func (wc *wireConn) close() error {
	return wc.c.Close()
}

// armWrite applies a write deadline to the burst that follows. Callers
// hold the conn's send mutex.
func armWrite(c net.Conn, timeout time.Duration) error {
	if timeout > 0 {
		return c.SetWriteDeadline(time.Now().Add(timeout))
	}
	return nil
}

// jsonConn wraps a TCP connection with newline-delimited JSON framing —
// the legacy codec, negotiated per connection for old agents. sendMu
// serializes writers exactly like wireConn's.
type jsonConn struct {
	c      net.Conn
	r      *bufio.Reader
	sendMu sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	// readTimeout/writeTimeout bound a single recv/send; zero disables
	// the deadline. The server arms these from ServerConfig so a stalled
	// agent cannot pin a handler goroutine forever.
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func newJSONConn(c net.Conn) *jsonConn {
	return newJSONConnReader(c, bufio.NewReaderSize(c, connReadBuf))
}

// newJSONConnReader builds a jsonConn over an existing buffered reader
// (the negotiation path has already peeked into it).
func newJSONConnReader(c net.Conn, r *bufio.Reader) *jsonConn {
	w := bufio.NewWriter(c)
	return &jsonConn{c: c, r: r, w: w, enc: json.NewEncoder(w)}
}

func (jc *jsonConn) setTimeouts(read, write time.Duration) {
	jc.readTimeout, jc.writeTimeout = read, write
}

func (jc *jsonConn) send(m Message) error {
	jc.sendMu.Lock()
	defer jc.sendMu.Unlock()
	if err := armWrite(jc.c, jc.writeTimeout); err != nil {
		return err
	}
	if err := jc.enc.Encode(m); err != nil {
		return err
	}
	return jc.w.Flush()
}

// sendBatch writes a burst of messages under ONE lock acquisition, one
// write deadline and one flush — the coalescing contract the churn-burst
// push path relies on (a recompute that moves k users costs one syscall
// per connection, not k lock/flush round-trips).
func (jc *jsonConn) sendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	jc.sendMu.Lock()
	defer jc.sendMu.Unlock()
	if err := armWrite(jc.c, jc.writeTimeout); err != nil {
		return err
	}
	for i := range msgs {
		if err := jc.enc.Encode(msgs[i]); err != nil {
			return err
		}
	}
	return jc.w.Flush()
}

func (jc *jsonConn) recv() (Message, error) {
	if jc.readTimeout > 0 {
		if err := jc.c.SetReadDeadline(time.Now().Add(jc.readTimeout)); err != nil {
			return Message{}, err
		}
	}
	line, err := jc.r.ReadBytes('\n')
	if err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("control: bad message %q: %w", line, err)
	}
	return m, nil
}

func (jc *jsonConn) close() error {
	return jc.c.Close()
}
