// Package control implements WOLT's control plane (§V-A of the paper): a
// Central Controller (CC) process and per-user agents that talk JSON over
// TCP. An agent scans the reachable extenders, estimates its WiFi rate to
// each (from the NIC's modulation and coding feedback — here, the radio
// model), and reports the estimates to the CC; the CC runs the configured
// association policy (WOLT, Greedy or RSSI) and pushes association
// directives back. WOLT may re-associate existing users when topology
// changes; Greedy and RSSI never do.
//
// The package is layered (DESIGN.md §9): Engine is the transport-free
// policy/state core (association bookkeeping plus strategy execution),
// Server is a thin TCP adapter over an Engine, and Agent is the
// user-side client. internal/shard composes several Engines behind a
// consistent-hash ring; the MsgRedirect message is how a shard member
// bounces an agent to the shard that owns its best-rate extender.
package control

import (
	"bufio"
	"encoding/json"
	"fmt"
	"net"
	"sync"
	"time"
)

// MsgType discriminates protocol messages.
type MsgType string

// Message types exchanged between agents and the controller.
const (
	// MsgJoin is sent by an agent when it needs an association. It
	// carries the agent's user ID and its scan report.
	MsgJoin MsgType = "join"
	// MsgLeave is sent by an agent that is disconnecting.
	MsgLeave MsgType = "leave"
	// MsgUpdate is sent by an associated agent whose radio environment
	// changed (mobility): it carries a fresh scan report. The controller
	// may push re-association directives in response.
	MsgUpdate MsgType = "update"
	// MsgAssociate is sent by the CC to direct an agent to an extender.
	MsgAssociate MsgType = "associate"
	// MsgRedirect is sent by a shard-member CC that does not own the
	// joining user's best-rate extender: Addr names the member that does,
	// and the agent re-sends its join there (cross-shard handoff).
	MsgRedirect MsgType = "redirect"
	// MsgPing is an agent keepalive. The controller ignores it, but the
	// bytes reset the server-side read deadline, so a healthy idle agent
	// is never dropped as stalled.
	MsgPing MsgType = "ping"
	// MsgStats asks the CC for a snapshot of controller statistics.
	MsgStats MsgType = "stats"
	// MsgStatsReply answers MsgStats.
	MsgStatsReply MsgType = "stats_reply"
	// MsgError reports a protocol or policy failure to the agent.
	MsgError MsgType = "error"
)

// Message is the single wire format; fields are used according to Type.
type Message struct {
	Type MsgType `json:"type"`
	// UserID identifies the agent (join, leave, associate).
	UserID int `json:"userId,omitempty"`
	// Rates is the scan report: estimated WiFi PHY rate in Mbps to each
	// extender, indexed by extender ID (join).
	Rates []float64 `json:"ratesMbps,omitempty"`
	// RSSI is the scan report's signal strengths in dBm (join).
	RSSI []float64 `json:"rssiDbm,omitempty"`
	// Extender is the association directive target (associate). It is
	// deliberately NOT omitempty: extender 0 is a valid directive target
	// and must appear explicitly on the wire rather than lean on Go's
	// zero-value decoding.
	Extender int `json:"extender"`
	// Reassociation marks a directive that moves an already-associated
	// user (associate). Like Extender it is always serialized: "false"
	// is a statement (first association), not an absence.
	Reassociation bool `json:"reassociation"`
	// Addr is the address of the shard member the agent should re-join
	// (redirect).
	Addr string `json:"addr,omitempty"`
	// Stats is the controller snapshot (stats_reply).
	Stats *Stats `json:"stats,omitempty"`
	// Error carries a human-readable failure description (error).
	Error string `json:"error,omitempty"`
}

// Stats is a controller snapshot.
type Stats struct {
	Policy         string      `json:"policy"`
	Users          int         `json:"users"`
	Joins          int         `json:"joins"`
	Leaves         int         `json:"leaves"`
	Reassociations int         `json:"reassociations"`
	// DroppedReassigns counts departures under ReassignOnLeave whose
	// re-solve failed: the leave stood, the rebalance was dropped.
	DroppedReassigns int         `json:"droppedReassigns"`
	Assignment       map[int]int `json:"assignment"`
}

// jsonConn wraps a TCP connection with newline-delimited JSON framing.
// sendMu serializes writers: the server pushes directives to a connection
// from recompute paths while that connection's own handler goroutine may
// be replying to a stats request, and the agent's keepalive ticker writes
// concurrently with Join/UpdateScan.
type jsonConn struct {
	c      net.Conn
	r      *bufio.Reader
	sendMu sync.Mutex
	w      *bufio.Writer
	enc    *json.Encoder
	// readTimeout/writeTimeout bound a single recv/send; zero disables
	// the deadline. The server arms these from ServerConfig so a stalled
	// agent cannot pin a handler goroutine forever.
	readTimeout  time.Duration
	writeTimeout time.Duration
}

func newJSONConn(c net.Conn) *jsonConn {
	w := bufio.NewWriter(c)
	return &jsonConn{c: c, r: bufio.NewReader(c), w: w, enc: json.NewEncoder(w)}
}

func (jc *jsonConn) send(m Message) error {
	jc.sendMu.Lock()
	defer jc.sendMu.Unlock()
	if err := jc.armWrite(); err != nil {
		return err
	}
	if err := jc.enc.Encode(m); err != nil {
		return err
	}
	return jc.w.Flush()
}

// sendBatch writes a burst of messages under ONE lock acquisition, one
// write deadline and one flush — the coalescing contract the churn-burst
// push path relies on (a recompute that moves k users costs one syscall
// per connection, not k lock/flush round-trips).
func (jc *jsonConn) sendBatch(msgs []Message) error {
	if len(msgs) == 0 {
		return nil
	}
	jc.sendMu.Lock()
	defer jc.sendMu.Unlock()
	if err := jc.armWrite(); err != nil {
		return err
	}
	for i := range msgs {
		if err := jc.enc.Encode(msgs[i]); err != nil {
			return err
		}
	}
	return jc.w.Flush()
}

// armWrite applies the connection's write deadline to the burst that
// follows. Callers hold sendMu.
func (jc *jsonConn) armWrite() error {
	if jc.writeTimeout > 0 {
		return jc.c.SetWriteDeadline(time.Now().Add(jc.writeTimeout))
	}
	return nil
}

func (jc *jsonConn) recv() (Message, error) {
	if jc.readTimeout > 0 {
		if err := jc.c.SetReadDeadline(time.Now().Add(jc.readTimeout)); err != nil {
			return Message{}, err
		}
	}
	line, err := jc.r.ReadBytes('\n')
	if err != nil {
		return Message{}, err
	}
	var m Message
	if err := json.Unmarshal(line, &m); err != nil {
		return Message{}, fmt.Errorf("control: bad message %q: %w", line, err)
	}
	return m, nil
}

func (jc *jsonConn) close() error {
	return jc.c.Close()
}
