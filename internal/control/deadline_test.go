package control

import (
	"net"
	"testing"
	"time"

	"github.com/plcwifi/wolt/internal/model"
)

// deadlineServer starts a controller whose read deadline is short enough
// to trip inside a test.
func deadlineServer(t *testing.T, readTimeout time.Duration) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps:     []float64{60, 20},
		Policy:      PolicyWOLT,
		ModelOpts:   model.Options{Redistribute: true},
		ReadTimeout: readTimeout,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

// TestSlowClientDroppedBeforeJoin pins the satellite contract: a client
// that connects and then never sends a byte is disconnected when the
// read deadline expires, instead of pinning a handler goroutine forever.
func TestSlowClientDroppedBeforeJoin(t *testing.T) {
	s := deadlineServer(t, 150*time.Millisecond)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()

	// The server should close the connection shortly after the deadline;
	// our read unblocks with EOF/reset well inside the test timeout.
	_ = conn.SetReadDeadline(time.Now().Add(testTimeout))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept a silent connection alive past its read deadline")
	}
}

// TestSlowClientAfterJoinTreatedAsDeparted joins through a raw
// connection (no agent, so no MsgPing keepalives) and then goes silent:
// the expired deadline must count as an implicit leave and free the
// user's capacity.
func TestSlowClientAfterJoinTreatedAsDeparted(t *testing.T) {
	s := deadlineServer(t, 150*time.Millisecond)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	jc := newJSONConn(conn)
	if err := jc.send(Message{Type: MsgJoin, UserID: 1, Rates: []float64{15, 10}}); err != nil {
		t.Fatal(err)
	}
	// First reply is our own associate directive.
	msg, err := jc.recv()
	if err != nil || msg.Type != MsgAssociate {
		t.Fatalf("got (%+v, %v), want an associate directive", msg, err)
	}
	waitFor(t, func() bool { return s.StatsSnapshot().Users == 1 })

	// Now stall. The server must drop us and record the leave.
	waitFor(t, func() bool {
		st := s.StatsSnapshot()
		return st.Users == 0 && st.Leaves == 1
	})
}

// TestKeepaliveMessageAccepted checks that a MsgPing is silently
// consumed — it must neither error nor disturb the session.
func TestKeepaliveMessageAccepted(t *testing.T) {
	s := deadlineServer(t, time.Second)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	jc := newJSONConn(conn)
	if err := jc.send(Message{Type: MsgJoin, UserID: 1, Rates: []float64{15, 10}}); err != nil {
		t.Fatal(err)
	}
	if msg, err := jc.recv(); err != nil || msg.Type != MsgAssociate {
		t.Fatalf("got (%+v, %v), want an associate directive", msg, err)
	}
	if err := jc.send(Message{Type: MsgPing}); err != nil {
		t.Fatal(err)
	}
	// The session is still live: a stats request round-trips.
	if err := jc.send(Message{Type: MsgStats}); err != nil {
		t.Fatal(err)
	}
	msg, err := jc.recv()
	if err != nil || msg.Type != MsgStatsReply || msg.Stats == nil || msg.Stats.Users != 1 {
		t.Fatalf("got (%+v, %v), want a stats reply with 1 user", msg, err)
	}
}

// TestServerRedirectHook wires two servers together through the
// Redirect hook (the shard layer's handoff mechanism) and checks that
// the agent transparently follows MsgRedirect to the owning server.
func TestServerRedirectHook(t *testing.T) {
	owner, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps:   []float64{60, 20},
		Policy:    PolicyWOLT,
		ModelOpts: model.Options{Redistribute: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = owner.Close() })

	front, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps:   []float64{60, 20},
		Policy:    PolicyWOLT,
		ModelOpts: model.Options{Redistribute: true},
		Redirect: func(userID int, rates []float64) (string, bool) {
			return owner.Addr(), true
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = front.Close() })

	a := dial(t, front, 1)
	ext, err := a.Join([]float64{15, 10}, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ext == model.Unassigned {
		t.Fatal("redirected join produced no association")
	}
	if st := owner.StatsSnapshot(); st.Users != 1 {
		t.Errorf("owner has %d users, want 1 (join should land there)", st.Users)
	}
	if st := front.StatsSnapshot(); st.Users != 0 {
		t.Errorf("front server has %d users, want 0 (it redirected)", st.Users)
	}
}
