package control

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/strategy"
)

// PolicyKind names the controller's association policy. Any name from the
// internal/strategy registry is accepted; PolicyRSSI additionally uses
// the agents' reported RSSI values (the registry's rates-based "rssi"
// strategy never sees them).
//
// Deprecated: PolicyKind is a plain string alias kept for source
// compatibility. Policies are strategy-registry names, validated against
// the registry at NewEngine/NewServer time; use string directly.
type PolicyKind = string

// Common controller policies (any strategy registry name works).
const (
	PolicyWOLT   PolicyKind = "wolt"
	PolicyGreedy PolicyKind = "greedy"
	PolicyRSSI   PolicyKind = "rssi"
)

// EngineConfig configures a policy engine.
type EngineConfig struct {
	// PLCCaps are the offline-estimated PLC isolation capacities c_j,
	// indexed by GLOBAL extender ID (§V-A: measured by saturating each
	// link). Every scan report the engine sees is this wide.
	PLCCaps []float64
	// Owned restricts the engine to a subset of global extender IDs (a
	// shard member's share of the consistent-hash ring). The engine only
	// ever assigns users to owned extenders; directives still carry
	// global IDs. Empty means the engine owns every extender.
	Owned []int
	// Policy is the association policy: a strategy-registry name
	// (default PolicyWOLT). The name is validated against the registry
	// at construction, so the control plane cannot drift from
	// internal/strategy.
	Policy string
	// ModelOpts selects the evaluation model used by evaluation-driven
	// policies (greedy, selfish, incremental candidates).
	ModelOpts model.Options
	// Workers bounds WOLT's intra-solve Phase II parallelism; results
	// are bit-identical for every value (DESIGN.md §7).
	Workers int
	// Seed derives the policy instance's private randomness (e.g. the
	// random baseline's draws).
	Seed int64
	// Budget bounds budget-aware policies per operation (the anytime
	// local-search family and wolt-incremental): a probe budget makes
	// every per-join/leave re-solve an O(budget) warm repair instead of
	// a full two-phase solve. Zero is unlimited (DESIGN.md §11).
	Budget strategy.Budget
	// ReassignOnLeave lets reassigning policies re-solve when a user
	// departs, returning rebalancing directives from Leave. The paper's
	// CC only recomputes on joins — departures free capacity silently —
	// so this is off by default; it exists for the anytime policies,
	// whose leave-time repair costs microseconds, not a full solve.
	ReassignOnLeave bool
	// PlacementOnlyJoins routes joins through the policy's online form
	// (strategy.Online.Add) when it has one: the arriving user is placed
	// on its best candidate extender and nobody else moves — the
	// engine-level encoding of the §11 anytime contract's
	// Budget.Moves < 0 ("arrivals are free, re-associations forbidden").
	// Setting Budget.Moves < 0 directly implies it. At city scale this
	// turns each join from a budgeted hill-climb (which still pays a
	// deficit-ordered sweep over the whole user table) into an O(M)
	// candidate probe, and emits exactly one directive per join.
	// Updates and leave-time repairs still use the configured budget's
	// full re-solve path. Policies without an online form fall back to
	// their re-solve form unchanged.
	PlacementOnlyJoins bool
	// FullResolveEvery, under PlacementOnlyJoins, runs the full
	// recompute path on every Nth join anyway (counting from the first),
	// so placement drift is periodically repaired by a real re-solve
	// under the configured Budget. Zero never forces one — the periodic
	// repair is an explicit knob, not a default.
	FullResolveEvery int
}

// Engine is the transport-free policy/state core of a central
// controller: it owns the user table, applies the configured association
// strategy on joins and scan updates, and reports the directives each
// operation produced. The TCP Server, the in-process tests and the
// internal/shard members all drive the same Engine; none of them carry
// policy logic of their own.
//
// The user table is a flat, ID-sorted row slice with pooled per-row
// buffers rather than a map of heap nodes: a departed user's rate
// vectors park at the slice tail and the next arrival reuses them, and
// the recompute path replays the table into a persistent model.Network
// scratch instead of rebuilding slices. The steady-state per-event path
// (join, update, leave under an anytime policy) performs O(1)
// allocations regardless of table size — the discipline the million-user
// city harness depends on (DESIGN.md §12).
//
// All methods are safe for concurrent use; each operation runs under the
// engine's lock (strategy instances are not safe for concurrent solves).
type Engine struct {
	cfg    EngineConfig
	policy string
	// owned lists the global extender IDs this engine may assign, in
	// increasing order; localOf inverts it. identity is true when the
	// engine owns every extender in order (the common single-CC case),
	// which lets recompute point the network rows at per-user rate
	// slices without projection.
	owned     []int
	localOf   map[int]int
	ownedCaps []float64
	identity  bool
	// strategy is the policy instance (nil for PolicyRSSI, which places
	// users by their reported signal instead). Only used under mu.
	strategy strategy.Strategy
	// placementJoins routes joins through the online placement form
	// (EngineConfig.PlacementOnlyJoins, or Budget.Moves < 0).
	placementJoins bool

	mu sync.Mutex
	// rows is the user table, sorted by ascending user ID. Rows beyond
	// len(rows) (up to cap) hold pooled buffers from departed users.
	rows           []userRow
	joins          int
	leaves         int
	reassociations int
	// droppedReassigns counts departures under ReassignOnLeave whose
	// re-solve failed: the departure stands, but the rebalancing the
	// operator asked for was silently impossible. Surfaced via Stats so
	// a misconfigured policy cannot hide behind successful leaves.
	droppedReassigns int

	// recompute scratch, reused across operations: the network the
	// strategy sees (rows aliased, generation bumped per recompute) and
	// the working assignment in local extender indices.
	net    model.Network
	assign model.Assignment
	// prevRates/prevRSSI snapshot a row's report across Update so a
	// failed re-solve can restore it atomically.
	prevRates, prevRSSI []float64
}

// userRow is one user's slot in the flat table. The slices keep their
// capacity across occupants: global-width rates/rssi plus, for shard
// members, the owned-subset projection the network rows alias.
type userRow struct {
	id int
	// extender is the user's current association as a GLOBAL extender ID
	// (model.Unassigned before the first directive).
	extender int
	rates    []float64 // global width
	rssi     []float64 // global width or empty
	local    []float64 // owned-width projection (nil in identity mode)
}

// Directive is one association order produced by an engine operation:
// user UserID moves to (global) extender Extender. The transport layer
// forwards directives to agents as MsgAssociate messages.
type Directive struct {
	UserID        int
	Extender      int
	Reassociation bool
}

// NewEngine builds a policy engine. The policy name is validated against
// the strategy registry; unknown names fail here, not at first join.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if len(cfg.PLCCaps) == 0 {
		return nil, errors.New("control: no PLC capacities configured")
	}
	for j, c := range cfg.PLCCaps {
		if c <= 0 {
			return nil, fmt.Errorf("control: extender %d has non-positive capacity %v", j, c)
		}
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyWOLT
	}
	// Every policy name — including "rssi" — must exist in the registry:
	// the registry is the single catalogue of association policies, and
	// validating here keeps the control plane from drifting from it.
	st, err := strategy.New(cfg.Policy, strategy.Config{
		ModelOpts: cfg.ModelOpts,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		Budget:    cfg.Budget,
	})
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}
	if cfg.Policy == PolicyRSSI {
		// The controller's RSSI policy places users by their REPORTED
		// signal strengths; the registry's rates-based instance is only
		// used to validate the name.
		st = nil
	}

	e := &Engine{
		cfg:            cfg,
		policy:         cfg.Policy,
		strategy:       st,
		placementJoins: cfg.PlacementOnlyJoins || cfg.Budget.Moves < 0,
	}
	if err := e.resolveOwned(cfg.Owned); err != nil {
		return nil, err
	}
	return e, nil
}

// resolveOwned normalizes the owned-extender subset (sorted, unique,
// in range) and precomputes the local projection tables.
func (e *Engine) resolveOwned(owned []int) error {
	numExt := len(e.cfg.PLCCaps)
	if len(owned) == 0 {
		e.owned = make([]int, numExt)
		for j := range e.owned {
			e.owned[j] = j
		}
	} else {
		e.owned = append([]int(nil), owned...)
		sort.Ints(e.owned)
	}
	e.localOf = make(map[int]int, len(e.owned))
	e.ownedCaps = make([]float64, len(e.owned))
	for l, g := range e.owned {
		if g < 0 || g >= numExt {
			return fmt.Errorf("control: owned extender %d out of range [0,%d)", g, numExt)
		}
		if _, dup := e.localOf[g]; dup {
			return fmt.Errorf("control: extender %d owned twice", g)
		}
		e.localOf[g] = l
		e.ownedCaps[l] = e.cfg.PLCCaps[g]
	}
	e.identity = len(e.owned) == numExt
	return nil
}

// Policy returns the engine's policy name.
func (e *Engine) Policy() string { return e.policy }

// NumExtenders returns the GLOBAL extender count (scan-report width).
func (e *Engine) NumExtenders() int { return len(e.cfg.PLCCaps) }

// Owned returns a copy of the global extender IDs this engine assigns.
func (e *Engine) Owned() []int { return append([]int(nil), e.owned...) }

// validateScan checks a scan report's shape and that the user reaches at
// least one extender this engine owns.
func (e *Engine) validateScan(userID int, rates, rssi []float64) error {
	numExt := len(e.cfg.PLCCaps)
	if len(rates) != numExt {
		return fmt.Errorf("scan report has %d rates, controller manages %d extenders",
			len(rates), numExt)
	}
	if len(rssi) != 0 && len(rssi) != numExt {
		return fmt.Errorf("scan report has %d RSSI entries, want %d", len(rssi), numExt)
	}
	for _, g := range e.owned {
		if rates[g] > 0 {
			return nil
		}
	}
	if e.identity {
		return fmt.Errorf("user %d reaches no extender", userID)
	}
	return fmt.Errorf("user %d reaches no extender owned by this shard", userID)
}

// rowIndex locates userID in the sorted table: (insertion position,
// whether the user is present).
func (e *Engine) rowIndex(userID int) (int, bool) {
	pos := sort.Search(len(e.rows), func(i int) bool { return e.rows[i].id >= userID })
	return pos, pos < len(e.rows) && e.rows[pos].id == userID
}

// setReport copies a scan report into a row's pooled buffers and
// refreshes the owned-subset projection.
func (e *Engine) setReport(r *userRow, rates, rssi []float64) {
	r.rates = append(r.rates[:0], rates...)
	r.rssi = append(r.rssi[:0], rssi...)
	e.project(r)
}

// project refreshes a row's owned-width rate projection (no-op for
// identity engines, whose network rows alias the global vector).
func (e *Engine) project(r *userRow) {
	if e.identity {
		return
	}
	if cap(r.local) < len(e.owned) {
		r.local = make([]float64, len(e.owned))
	}
	r.local = r.local[:len(e.owned)]
	for l, g := range e.owned {
		r.local[l] = r.rates[g]
	}
}

// insertRow opens the sorted slot pos for a new user, reusing the pooled
// buffers parked at the slice tail by earlier departures.
func (e *Engine) insertRow(pos, userID int) *userRow {
	n := len(e.rows)
	if cap(e.rows) > n {
		e.rows = e.rows[:n+1]
	} else {
		e.rows = append(e.rows, userRow{})
	}
	spare := e.rows[n] // pooled buffers (or zero row) past the old end
	copy(e.rows[pos+1:n+1], e.rows[pos:n])
	spare.id = userID
	spare.extender = model.Unassigned
	e.rows[pos] = spare
	return &e.rows[pos]
}

// removeRow closes the slot pos, parking its buffers at the tail for the
// next arrival to reuse.
func (e *Engine) removeRow(pos int) {
	n := len(e.rows)
	spare := e.rows[pos]
	copy(e.rows[pos:n-1], e.rows[pos+1:n])
	e.rows[n-1] = spare
	e.rows = e.rows[:n-1]
}

// Join admits a user with its scan report, runs the policy and returns
// the directives it produced (always including one for the new user on
// success). A failed join leaves the engine unchanged.
func (e *Engine) Join(userID int, rates, rssi []float64) ([]Directive, error) {
	if err := e.validateScan(userID, rates, rssi); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	pos, present := e.rowIndex(userID)
	if present {
		return nil, fmt.Errorf("user %d already joined", userID)
	}
	r := e.insertRow(pos, userID)
	e.setReport(r, rates, rssi)
	e.joins++
	// Placement-only joins skip the full re-solve unless this is a
	// scheduled periodic repair (FullResolveEvery counts joins from 1).
	placementOnly := e.placementJoins &&
		!(e.cfg.FullResolveEvery > 0 && e.joins%e.cfg.FullResolveEvery == 0)
	dirs, err := e.recomputeLocked(pos, placementOnly)
	if err != nil {
		e.removeRow(pos)
		e.joins--
		return nil, err
	}
	return dirs, nil
}

// Update refreshes an associated user's scan report and lets the policy
// react: WOLT recomputes the full association (it may move anyone), RSSI
// re-places just the reporting user (client roaming), and arrival-only
// strategies (greedy, selfish, random) never reassign — the refreshed
// report only affects placements of future arrivals.
//
// Update is atomic: when the policy's re-solve fails, the prior scan
// report is restored, so the engine never holds fresh rates with a stale
// assignment (the failure mode Join already rolled back cleanly).
func (e *Engine) Update(userID int, rates, rssi []float64) ([]Directive, error) {
	if err := e.validateScan(userID, rates, rssi); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	pos, present := e.rowIndex(userID)
	if !present {
		return nil, fmt.Errorf("user %d not joined", userID)
	}
	r := &e.rows[pos]
	recompute := false
	if e.policy == PolicyRSSI {
		// Client roaming: re-place just the reporting user.
		recompute = true
	} else if _, ok := e.strategy.(strategy.Reassigner); ok {
		// Recomputing strategies (the WOLT variants) may move anyone.
		recompute = true
	}
	if !recompute {
		e.setReport(r, rates, rssi)
		return nil, nil
	}
	e.prevRates = append(e.prevRates[:0], r.rates...)
	e.prevRSSI = append(e.prevRSSI[:0], r.rssi...)
	e.setReport(r, rates, rssi)
	dirs, err := e.recomputeLocked(pos, false)
	if err != nil {
		e.setReport(r, e.prevRates, e.prevRSSI)
		return nil, err
	}
	return dirs, nil
}

// Leave removes a user (explicit leave or dropped connection) and
// reports whether it was present. The paper's CC recomputes on joins
// (directives accompany new associations) and departures simply free
// capacity — unless EngineConfig.ReassignOnLeave is set and the policy
// can reassign, in which case the departure triggers a re-solve (an
// anytime warm repair under EngineConfig.Budget) and the rebalancing
// directives are returned. A failed re-solve must not resurrect the
// user: the departure stands, and the dropped rebalance is counted in
// Stats.DroppedReassigns.
func (e *Engine) Leave(userID int) ([]Directive, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pos, present := e.rowIndex(userID)
	if !present {
		return nil, false
	}
	e.removeRow(pos)
	e.leaves++
	if e.cfg.ReassignOnLeave && len(e.rows) > 0 {
		if _, ok := e.strategy.(strategy.Reassigner); ok {
			// recomputeLocked tolerates the no-new-user form (-1) only
			// on the Reassigner path, which never dereferences the new
			// row.
			dirs, err := e.recomputeLocked(-1, false)
			if err == nil {
				return dirs, true
			}
			e.droppedReassigns++
		}
	}
	return nil, true
}

// Extender returns the user's current global extender assignment.
func (e *Engine) Extender(userID int) (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	pos, present := e.rowIndex(userID)
	if !present {
		return model.Unassigned, false
	}
	return e.rows[pos].extender, true
}

// Stats returns the engine's counters and current assignment (global
// extender IDs).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	assignment := make(map[int]int, len(e.rows))
	for i := range e.rows {
		assignment[e.rows[i].id] = e.rows[i].extender
	}
	return Stats{
		Policy:           e.policy,
		Users:            len(e.rows),
		Joins:            e.joins,
		Leaves:           e.leaves,
		Reassociations:   e.reassociations,
		DroppedReassigns: e.droppedReassigns,
		Assignment:       assignment,
	}
}

// StatsLite returns the engine's counters without materializing the
// assignment map — Stats.Assignment is nil. At city scale the full map
// copy is an O(n) allocation per poll; callers that only want counters
// (the sharded coordinator's merged stats, progress reporting) use this
// form.
func (e *Engine) StatsLite() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return Stats{
		Policy:           e.policy,
		Users:            len(e.rows),
		Joins:            e.joins,
		Leaves:           e.leaves,
		Reassociations:   e.reassociations,
		DroppedReassigns: e.droppedReassigns,
	}
}

// recomputeLocked runs the policy after the user at row newRow joined or
// reported fresh rates, updates the user table and returns the resulting
// directives. newRow may be -1 (a departure under ReassignOnLeave) only
// when the policy is a Reassigner, which never dereferences the new row.
// placementOnly asks applyStrategy for the online placement form instead
// of the full re-solve when the policy has one (join path under
// PlacementOnlyJoins). Callers hold e.mu.
//
// The network the strategy sees is persistent scratch: its rows alias
// the user table's pooled rate vectors and its generation is bumped per
// recompute, so delta evaluators and candidate caches re-attach instead
// of trusting stale state (DESIGN.md §10). Steady state this path
// allocates only the returned directive slice.
func (e *Engine) recomputeLocked(newRow int, placementOnly bool) ([]Directive, error) {
	n := len(e.rows)
	e.assign = growAssign(e.assign, n)

	if e.policy == PolicyRSSI {
		// Signal-strength placement touches only the reporting user; no
		// network build, no strategy call.
		for i := range e.rows {
			e.assign[i] = e.localIndex(e.rows[i].extender)
		}
		u := &e.rows[newRow]
		best, bestSig := model.Unassigned, -1e18
		for l, g := range e.owned {
			r := u.rates[g]
			if r <= 0 {
				continue
			}
			sig := r
			if len(u.rssi) == len(u.rates) {
				sig = u.rssi[g]
			}
			if sig > bestSig {
				best, bestSig = l, sig
			}
		}
		e.assign[newRow] = best
		return e.emitLocked(e.assign), nil
	}

	if cap(e.net.WiFiRates) < n {
		e.net.WiFiRates = make([][]float64, n, 2*n)
	}
	e.net.WiFiRates = e.net.WiFiRates[:n]
	e.net.PLCCaps = e.ownedCaps
	for i := range e.rows {
		r := &e.rows[i]
		if e.identity {
			e.net.WiFiRates[i] = r.rates
		} else {
			e.net.WiFiRates[i] = r.local
		}
		e.assign[i] = e.localIndex(r.extender)
	}
	e.net.Invalidate()

	assign, err := e.applyStrategy(&e.net, e.assign, newRow, placementOnly)
	if err != nil {
		return nil, err
	}
	return e.emitLocked(assign), nil
}

// emitLocked folds a solved assignment (local extender indices, row
// order) back into the user table and returns the changed users'
// directives — exactly one allocation, sized to the change set.
func (e *Engine) emitLocked(assign model.Assignment) []Directive {
	changed := 0
	for i := range e.rows {
		if e.globalOf(assign[i]) != e.rows[i].extender {
			changed++
		}
	}
	if changed == 0 {
		return nil
	}
	dirs := make([]Directive, 0, changed)
	for i := range e.rows {
		r := &e.rows[i]
		globalExt := e.globalOf(assign[i])
		if globalExt == r.extender {
			continue
		}
		reassoc := r.extender != model.Unassigned
		r.extender = globalExt
		if reassoc {
			e.reassociations++
		}
		dirs = append(dirs, Directive{UserID: r.id, Extender: globalExt, Reassociation: reassoc})
	}
	return dirs
}

// globalOf maps a local extender index to its global ID
// (model.Unassigned passes through).
func (e *Engine) globalOf(local int) int {
	if local == model.Unassigned {
		return model.Unassigned
	}
	return e.owned[local]
}

// localIndex maps a global extender ID to this engine's local index
// (model.Unassigned passes through).
func (e *Engine) localIndex(globalExt int) int {
	if globalExt == model.Unassigned {
		return model.Unassigned
	}
	l, ok := e.localOf[globalExt]
	if !ok {
		return model.Unassigned
	}
	return l
}

// growAssign resizes an assignment scratch slice, preserving capacity.
func growAssign(a model.Assignment, n int) model.Assignment {
	if cap(a) < n {
		return make(model.Assignment, n, 2*n)
	}
	return a[:n]
}

// applyStrategy runs the configured strategy after newRow joined (or
// reported fresh rates): recomputing strategies may move anyone, online
// strategies place just the new user, and offline-only strategies (the
// exhaustive "optimal") are rejected with a typed error wrapping
// strategy.ErrNoOnlineForm — the controller never silently falls back
// to a different policy than the one configured.
//
// With placementOnly set the preference inverts: a policy with an online
// form places just the arriving user (O(budget) probes, no full sweep),
// falling back to its re-solve form only when it has no online one. The
// placement repair honours the §11 anytime contract — it is exactly what
// Budget.Moves < 0 buys on the solver side, surfaced here as the join
// fast path.
func (e *Engine) applyStrategy(n *model.Network, assign model.Assignment, newRow int, placementOnly bool) (model.Assignment, error) {
	if placementOnly && newRow >= 0 {
		if on, ok := e.strategy.(strategy.Online); ok {
			if _, err := on.Add(n, assign, newRow); err != nil {
				return nil, err
			}
			return assign, nil
		}
	}
	if re, ok := e.strategy.(strategy.Reassigner); ok {
		return re.Reassign(n, assign)
	}
	if on, ok := e.strategy.(strategy.Online); ok {
		if _, err := on.Add(n, assign, newRow); err != nil {
			return nil, err
		}
		return assign, nil
	}
	return nil, fmt.Errorf("control: policy %q cannot place an arriving user: %w",
		e.policy, strategy.ErrNoOnlineForm)
}
