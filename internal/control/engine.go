package control

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/strategy"
)

// PolicyKind names the controller's association policy. Any name from the
// internal/strategy registry is accepted; PolicyRSSI additionally uses
// the agents' reported RSSI values (the registry's rates-based "rssi"
// strategy never sees them).
//
// Deprecated: PolicyKind is a plain string alias kept for source
// compatibility. Policies are strategy-registry names, validated against
// the registry at NewEngine/NewServer time; use string directly.
type PolicyKind = string

// Common controller policies (any strategy registry name works).
const (
	PolicyWOLT   PolicyKind = "wolt"
	PolicyGreedy PolicyKind = "greedy"
	PolicyRSSI   PolicyKind = "rssi"
)

// EngineConfig configures a policy engine.
type EngineConfig struct {
	// PLCCaps are the offline-estimated PLC isolation capacities c_j,
	// indexed by GLOBAL extender ID (§V-A: measured by saturating each
	// link). Every scan report the engine sees is this wide.
	PLCCaps []float64
	// Owned restricts the engine to a subset of global extender IDs (a
	// shard member's share of the consistent-hash ring). The engine only
	// ever assigns users to owned extenders; directives still carry
	// global IDs. Empty means the engine owns every extender.
	Owned []int
	// Policy is the association policy: a strategy-registry name
	// (default PolicyWOLT). The name is validated against the registry
	// at construction, so the control plane cannot drift from
	// internal/strategy.
	Policy string
	// ModelOpts selects the evaluation model used by evaluation-driven
	// policies (greedy, selfish, incremental candidates).
	ModelOpts model.Options
	// Workers bounds WOLT's intra-solve Phase II parallelism; results
	// are bit-identical for every value (DESIGN.md §7).
	Workers int
	// Seed derives the policy instance's private randomness (e.g. the
	// random baseline's draws).
	Seed int64
	// Budget bounds budget-aware policies per operation (the anytime
	// local-search family and wolt-incremental): a probe budget makes
	// every per-join/leave re-solve an O(budget) warm repair instead of
	// a full two-phase solve. Zero is unlimited (DESIGN.md §11).
	Budget strategy.Budget
	// ReassignOnLeave lets reassigning policies re-solve when a user
	// departs, returning rebalancing directives from Leave. The paper's
	// CC only recomputes on joins — departures free capacity silently —
	// so this is off by default; it exists for the anytime policies,
	// whose leave-time repair costs microseconds, not a full solve.
	ReassignOnLeave bool
}

// Engine is the transport-free policy/state core of a central
// controller: it owns the user table, applies the configured association
// strategy on joins and scan updates, and reports the directives each
// operation produced. The TCP Server, the in-process tests and the
// internal/shard members all drive the same Engine; none of them carry
// policy logic of their own.
//
// All methods are safe for concurrent use; each operation runs under the
// engine's lock (strategy instances are not safe for concurrent solves).
type Engine struct {
	cfg    EngineConfig
	policy string
	// owned lists the global extender IDs this engine may assign, in
	// increasing order; localOf inverts it. identity is true when the
	// engine owns every extender in order (the common single-CC case),
	// which lets recompute reuse per-user rate slices without projection.
	owned     []int
	localOf   map[int]int
	ownedCaps []float64
	identity  bool
	// strategy is the policy instance (nil for PolicyRSSI, which places
	// users by their reported signal instead). Only used under mu.
	strategy strategy.Strategy

	mu             sync.Mutex
	users          map[int]*userState
	joins          int
	leaves         int
	reassociations int
}

type userState struct {
	rates []float64 // global width
	rssi  []float64 // global width or empty
	// extender is the user's current association as a GLOBAL extender ID
	// (model.Unassigned before the first directive).
	extender int
}

// Directive is one association order produced by an engine operation:
// user UserID moves to (global) extender Extender. The transport layer
// forwards directives to agents as MsgAssociate messages.
type Directive struct {
	UserID        int
	Extender      int
	Reassociation bool
}

// NewEngine builds a policy engine. The policy name is validated against
// the strategy registry; unknown names fail here, not at first join.
func NewEngine(cfg EngineConfig) (*Engine, error) {
	if len(cfg.PLCCaps) == 0 {
		return nil, errors.New("control: no PLC capacities configured")
	}
	for j, c := range cfg.PLCCaps {
		if c <= 0 {
			return nil, fmt.Errorf("control: extender %d has non-positive capacity %v", j, c)
		}
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyWOLT
	}
	// Every policy name — including "rssi" — must exist in the registry:
	// the registry is the single catalogue of association policies, and
	// validating here keeps the control plane from drifting from it.
	st, err := strategy.New(cfg.Policy, strategy.Config{
		ModelOpts: cfg.ModelOpts,
		Workers:   cfg.Workers,
		Seed:      cfg.Seed,
		Budget:    cfg.Budget,
	})
	if err != nil {
		return nil, fmt.Errorf("control: %w", err)
	}
	if cfg.Policy == PolicyRSSI {
		// The controller's RSSI policy places users by their REPORTED
		// signal strengths; the registry's rates-based instance is only
		// used to validate the name.
		st = nil
	}

	e := &Engine{
		cfg:      cfg,
		policy:   cfg.Policy,
		strategy: st,
		users:    make(map[int]*userState),
	}
	if err := e.resolveOwned(cfg.Owned); err != nil {
		return nil, err
	}
	return e, nil
}

// resolveOwned normalizes the owned-extender subset (sorted, unique,
// in range) and precomputes the local projection tables.
func (e *Engine) resolveOwned(owned []int) error {
	numExt := len(e.cfg.PLCCaps)
	if len(owned) == 0 {
		e.owned = make([]int, numExt)
		for j := range e.owned {
			e.owned[j] = j
		}
	} else {
		e.owned = append([]int(nil), owned...)
		sort.Ints(e.owned)
	}
	e.localOf = make(map[int]int, len(e.owned))
	e.ownedCaps = make([]float64, len(e.owned))
	for l, g := range e.owned {
		if g < 0 || g >= numExt {
			return fmt.Errorf("control: owned extender %d out of range [0,%d)", g, numExt)
		}
		if _, dup := e.localOf[g]; dup {
			return fmt.Errorf("control: extender %d owned twice", g)
		}
		e.localOf[g] = l
		e.ownedCaps[l] = e.cfg.PLCCaps[g]
	}
	e.identity = len(e.owned) == numExt
	return nil
}

// Policy returns the engine's policy name.
func (e *Engine) Policy() string { return e.policy }

// NumExtenders returns the GLOBAL extender count (scan-report width).
func (e *Engine) NumExtenders() int { return len(e.cfg.PLCCaps) }

// Owned returns a copy of the global extender IDs this engine assigns.
func (e *Engine) Owned() []int { return append([]int(nil), e.owned...) }

// validateScan checks a scan report's shape and that the user reaches at
// least one extender this engine owns.
func (e *Engine) validateScan(userID int, rates, rssi []float64) error {
	numExt := len(e.cfg.PLCCaps)
	if len(rates) != numExt {
		return fmt.Errorf("scan report has %d rates, controller manages %d extenders",
			len(rates), numExt)
	}
	if len(rssi) != 0 && len(rssi) != numExt {
		return fmt.Errorf("scan report has %d RSSI entries, want %d", len(rssi), numExt)
	}
	for _, g := range e.owned {
		if rates[g] > 0 {
			return nil
		}
	}
	if e.identity {
		return fmt.Errorf("user %d reaches no extender", userID)
	}
	return fmt.Errorf("user %d reaches no extender owned by this shard", userID)
}

// Join admits a user with its scan report, runs the policy and returns
// the directives it produced (always including one for the new user on
// success). A failed join leaves the engine unchanged.
func (e *Engine) Join(userID int, rates, rssi []float64) ([]Directive, error) {
	if err := e.validateScan(userID, rates, rssi); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.users[userID]; ok {
		return nil, fmt.Errorf("user %d already joined", userID)
	}
	e.users[userID] = &userState{
		rates:    append([]float64(nil), rates...),
		rssi:     append([]float64(nil), rssi...),
		extender: model.Unassigned,
	}
	e.joins++
	dirs, err := e.recomputeLocked(userID)
	if err != nil {
		delete(e.users, userID)
		e.joins--
		return nil, err
	}
	return dirs, nil
}

// Update refreshes an associated user's scan report and lets the policy
// react: WOLT recomputes the full association (it may move anyone), RSSI
// re-places just the reporting user (client roaming), and arrival-only
// strategies (greedy, selfish, random) never reassign — the refreshed
// report only affects placements of future arrivals.
func (e *Engine) Update(userID int, rates, rssi []float64) ([]Directive, error) {
	if err := e.validateScan(userID, rates, rssi); err != nil {
		return nil, err
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	u, ok := e.users[userID]
	if !ok {
		return nil, fmt.Errorf("user %d not joined", userID)
	}
	u.rates = append([]float64(nil), rates...)
	u.rssi = append([]float64(nil), rssi...)
	if e.policy == PolicyRSSI {
		// Client roaming: re-place just the reporting user.
		return e.recomputeLocked(userID)
	}
	if _, ok := e.strategy.(strategy.Reassigner); ok {
		// Recomputing strategies (the WOLT variants) may move anyone.
		return e.recomputeLocked(userID)
	}
	return nil, nil
}

// Leave removes a user (explicit leave or dropped connection) and
// reports whether it was present. The paper's CC recomputes on joins
// (directives accompany new associations) and departures simply free
// capacity — unless EngineConfig.ReassignOnLeave is set and the policy
// can reassign, in which case the departure triggers a re-solve (an
// anytime warm repair under EngineConfig.Budget) and the rebalancing
// directives are returned.
func (e *Engine) Leave(userID int) ([]Directive, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if _, ok := e.users[userID]; !ok {
		return nil, false
	}
	delete(e.users, userID)
	e.leaves++
	if e.cfg.ReassignOnLeave && len(e.users) > 0 {
		if _, ok := e.strategy.(strategy.Reassigner); ok {
			// recomputeLocked tolerates the no-new-user form (-1) only
			// on the Reassigner path, which never dereferences newRow.
			dirs, err := e.recomputeLocked(-1)
			if err == nil {
				return dirs, true
			}
			// A failed re-solve must not resurrect the user: the
			// departure stands, capacity frees without rebalancing.
		}
	}
	return nil, true
}

// Extender returns the user's current global extender assignment.
func (e *Engine) Extender(userID int) (int, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	u, ok := e.users[userID]
	if !ok {
		return model.Unassigned, false
	}
	return u.extender, true
}

// Stats returns the engine's counters and current assignment (global
// extender IDs).
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	assignment := make(map[int]int, len(e.users))
	for id, u := range e.users {
		assignment[id] = u.extender
	}
	return Stats{
		Policy:         e.policy,
		Users:          len(e.users),
		Joins:          e.joins,
		Leaves:         e.leaves,
		Reassociations: e.reassociations,
		Assignment:     assignment,
	}
}

// recomputeLocked runs the policy after newUser joined or reported fresh
// rates, updates the user table and returns the resulting directives.
// newUser may be -1 (a departure under ReassignOnLeave) only when the
// policy is a Reassigner, which never dereferences the new row.
// Callers hold e.mu.
func (e *Engine) recomputeLocked(newUser int) ([]Directive, error) {
	ids := make([]int, 0, len(e.users))
	for id := range e.users {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	n := &model.Network{
		WiFiRates: make([][]float64, len(ids)),
		PLCCaps:   e.ownedCaps,
	}
	assign := make(model.Assignment, len(ids))
	newRow := -1
	for row, id := range ids {
		u := e.users[id]
		if e.identity {
			n.WiFiRates[row] = u.rates
		} else {
			local := make([]float64, len(e.owned))
			for l, g := range e.owned {
				local[l] = u.rates[g]
			}
			n.WiFiRates[row] = local
		}
		assign[row] = e.localIndex(u.extender)
		if id == newUser {
			newRow = row
		}
	}

	if e.policy == PolicyRSSI {
		u := e.users[newUser]
		best, bestSig := model.Unassigned, -1e18
		for l, g := range e.owned {
			r := u.rates[g]
			if r <= 0 {
				continue
			}
			sig := r
			if len(u.rssi) == len(u.rates) {
				sig = u.rssi[g]
			}
			if sig > bestSig {
				best, bestSig = l, sig
			}
		}
		assign[newRow] = best
	} else {
		var err error
		if assign, err = e.applyStrategy(n, assign, newRow); err != nil {
			return nil, err
		}
	}

	// Record every changed user and emit its directive.
	var dirs []Directive
	for row, id := range ids {
		u := e.users[id]
		globalExt := model.Unassigned
		if assign[row] != model.Unassigned {
			globalExt = e.owned[assign[row]]
		}
		if globalExt == u.extender {
			continue
		}
		reassoc := u.extender != model.Unassigned
		u.extender = globalExt
		if reassoc {
			e.reassociations++
		}
		dirs = append(dirs, Directive{UserID: id, Extender: globalExt, Reassociation: reassoc})
	}
	return dirs, nil
}

// localIndex maps a global extender ID to this engine's local index
// (model.Unassigned passes through).
func (e *Engine) localIndex(globalExt int) int {
	if globalExt == model.Unassigned {
		return model.Unassigned
	}
	l, ok := e.localOf[globalExt]
	if !ok {
		return model.Unassigned
	}
	return l
}

// applyStrategy runs the configured strategy after newRow joined (or
// reported fresh rates): recomputing strategies may move anyone, online
// strategies place just the new user, and offline-only strategies (the
// exhaustive "optimal") are rejected with a typed error wrapping
// strategy.ErrNoOnlineForm — the controller never silently falls back
// to a different policy than the one configured.
func (e *Engine) applyStrategy(n *model.Network, assign model.Assignment, newRow int) (model.Assignment, error) {
	if re, ok := e.strategy.(strategy.Reassigner); ok {
		return re.Reassign(n, assign)
	}
	if on, ok := e.strategy.(strategy.Online); ok {
		if _, err := on.Add(n, assign, newRow); err != nil {
			return nil, err
		}
		return assign, nil
	}
	return nil, fmt.Errorf("control: policy %q cannot place an arriving user: %w",
		e.policy, strategy.ErrNoOnlineForm)
}
