package control

import (
	"net"
	"testing"
	"time"

	"github.com/plcwifi/wolt/internal/wire"
)

// TestSlowReaderShedsPushes pins the back-pressure contract of the
// bounded per-connection outbox: a stalled reader fills its own queue
// and sheds directives (counted in Stats.DroppedPushes) while a healthy
// agent on the same server keeps receiving every push — one stuck
// socket must not stall the push path for everyone else.
func TestSlowReaderShedsPushes(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps:        []float64{100, 100},
		Policy:         PolicyRSSI,
		PushQueueDepth: 2,
		WriteTimeout:   200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	healthy, err := Dial(srv.Addr(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer healthy.Close()
	if _, err := healthy.Join([]float64{80, 20}, []float64{-50, -70}, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	// The stalled user is a raw socket that completes the handshake and
	// the join but never reads another byte.
	const stalledID = 2
	raw, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	if tc, ok := raw.(*net.TCPConn); ok {
		_ = tc.SetReadBuffer(2048) // shrink the kernel's slack so the stall bites fast
	}
	if _, err := raw.Write([]byte{wire.Hello, wire.Version1}); err != nil {
		t.Fatal(err)
	}
	frame, err := wire.AppendFrame(nil, &Message{
		Type: MsgJoin, UserID: stalledID,
		Rates: []float64{20, 80}, RSSI: []float64{-70, -50},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := raw.Write(frame); err != nil {
		t.Fatal(err)
	}

	// Wait until the server has mapped the stalled user's connection,
	// then shrink its kernel-side write buffer too.
	var stalledConn *serverConn
	for deadline := time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		srv.mu.Lock()
		stalledConn = srv.userConns[stalledID]
		srv.mu.Unlock()
		if stalledConn != nil {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if stalledConn == nil {
		t.Fatal("stalled user never joined")
	}
	if tc, ok := stalledConn.c.(*net.TCPConn); ok {
		_ = tc.SetWriteBuffer(2048)
	}

	// Flood the stalled connection: each push is one outbox batch, big
	// enough that the first one overruns the kernel buffers and parks the
	// writer goroutine until its write deadline. Queue depth 2 means
	// almost everything after that is shed and counted.
	burst := make([]Directive, 1000)
	for i := range burst {
		burst[i] = Directive{UserID: stalledID, Extender: i % 2, Reassociation: true}
	}
	for i := 0; i < 20; i++ {
		srv.pushDirectives(burst)
	}

	// The healthy connection must still drain its pushes promptly even
	// while the stalled writer is parked: each push, awaited to delivery,
	// proves the stalled socket isn't blocking anyone else. (Pushes are
	// paced because the tiny test queue depth applies to the healthy
	// connection too.)
	const extraPushes = 5
	before := healthy.Directives()
	for i := 1; i <= extraPushes; i++ {
		srv.pushDirectives([]Directive{{UserID: 1, Extender: 0, Reassociation: true}})
		for deadline := time.Now().Add(2 * time.Second); healthy.Directives() < before+i; {
			if !time.Now().Before(deadline) {
				t.Fatalf("healthy agent saw %d of %d pushes while a peer was stalled",
					healthy.Directives()-before, i)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}

	if st := srv.StatsSnapshot(); st.DroppedPushes == 0 {
		t.Error("flooding a stalled reader dropped nothing: back-pressure is unbounded")
	} else {
		t.Logf("dropped %d directives at the stalled connection", st.DroppedPushes)
	}
}
