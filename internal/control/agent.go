package control

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"net"

	"github.com/plcwifi/wolt/internal/model"
)

// Agent is a user-side client of the central controller. It sends the
// user's scan report on Join and tracks the association directives the
// controller pushes (including later re-associations).
type Agent struct {
	userID int
	jc     *jsonConn

	mu       sync.Mutex
	extender int
	moves    int // directives that changed an existing association
	lastErr  error

	directives chan Message
	// statsReplies carries MsgStatsReply messages only. Stats replies get
	// their own channel so a concurrent WaitForMove (which drains
	// directives) can never steal them — and vice versa.
	statsReplies chan Message
	done         chan struct{}
	readerWG     sync.WaitGroup
}

// Dial connects an agent to the controller at addr.
func Dial(addr string, userID int) (*Agent, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("control: dial %s: %w", addr, err)
	}
	a := &Agent{
		userID:       userID,
		jc:           newJSONConn(conn),
		extender:     model.Unassigned,
		directives:   make(chan Message, 16),
		statsReplies: make(chan Message, 16),
		done:         make(chan struct{}),
	}
	a.readerWG.Add(1)
	go a.readLoop()
	return a, nil
}

func (a *Agent) readLoop() {
	defer a.readerWG.Done()
	defer close(a.directives)
	defer close(a.statsReplies)
	for {
		msg, err := a.jc.recv()
		if err != nil {
			return
		}
		switch msg.Type {
		case MsgAssociate:
			a.mu.Lock()
			if a.extender != model.Unassigned && msg.Extender != a.extender {
				a.moves++
			}
			a.extender = msg.Extender
			a.mu.Unlock()
		case MsgError:
			a.mu.Lock()
			a.lastErr = errors.New(msg.Error)
			a.mu.Unlock()
		case MsgStatsReply:
			select {
			case a.statsReplies <- msg:
			default:
			}
			continue // never mixed into the directive stream
		}
		select {
		case a.directives <- msg:
		default:
			// Slow consumer: drop the notification; state above is
			// already updated.
		}
	}
}

// Join sends the agent's scan report (per-extender WiFi rates and RSSI)
// and waits for the controller's first association directive.
func (a *Agent) Join(rates, rssi []float64, timeout time.Duration) (int, error) {
	if err := a.jc.send(Message{
		Type:   MsgJoin,
		UserID: a.userID,
		Rates:  rates,
		RSSI:   rssi,
	}); err != nil {
		return 0, fmt.Errorf("control: join: %w", err)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case msg, ok := <-a.directives:
			if !ok {
				return 0, errors.New("control: connection closed before directive")
			}
			switch msg.Type {
			case MsgAssociate:
				if msg.UserID == a.userID {
					return msg.Extender, nil
				}
			case MsgError:
				return 0, errors.New(msg.Error)
			}
		case <-deadline.C:
			return 0, errors.New("control: timed out waiting for association directive")
		}
	}
}

// Extender returns the agent's current association (model.Unassigned
// before the first directive).
func (a *Agent) Extender() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.extender
}

// Moves returns how many times the controller re-associated this agent.
func (a *Agent) Moves() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.moves
}

// Err returns the last error message the controller pushed to this agent
// (nil if none). Asynchronous rejections — e.g. an invalid scan update —
// surface here.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

// WaitForMove blocks until the agent's association changes from the given
// extender or the timeout expires, returning the new extender.
func (a *Agent) WaitForMove(from int, timeout time.Duration) (int, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if cur := a.Extender(); cur != from && cur != model.Unassigned {
			return cur, nil
		}
		select {
		case _, ok := <-a.directives:
			if !ok {
				if cur := a.Extender(); cur != from && cur != model.Unassigned {
					return cur, nil
				}
				return 0, errors.New("control: connection closed while waiting for move")
			}
		case <-deadline.C:
			return 0, errors.New("control: timed out waiting for re-association")
		}
	}
}

// Stats asks the controller for its snapshot. Replies arrive on a
// dedicated channel, so Stats is safe to call concurrently with
// WaitForMove or Join.
func (a *Agent) Stats(timeout time.Duration) (Stats, error) {
	if err := a.jc.send(Message{Type: MsgStats}); err != nil {
		return Stats{}, err
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case msg, ok := <-a.statsReplies:
			if !ok {
				return Stats{}, errors.New("control: connection closed before stats reply")
			}
			if msg.Stats != nil {
				return *msg.Stats, nil
			}
		case <-deadline.C:
			return Stats{}, errors.New("control: timed out waiting for stats")
		}
	}
}

// UpdateScan reports a fresh radio scan to the controller (mobility).
// Any resulting re-association arrives asynchronously; use Extender or
// WaitForMove to observe it.
func (a *Agent) UpdateScan(rates, rssi []float64) error {
	return a.jc.send(Message{
		Type:   MsgUpdate,
		UserID: a.userID,
		Rates:  rates,
		RSSI:   rssi,
	})
}

// Leave tells the controller the user is departing and closes the
// connection.
func (a *Agent) Leave() error {
	err := a.jc.send(Message{Type: MsgLeave, UserID: a.userID})
	closeErr := a.Close()
	if err != nil {
		return err
	}
	return closeErr
}

// Close tears the connection down without a leave message (an abrupt
// disconnect, which the controller also treats as a departure).
func (a *Agent) Close() error {
	select {
	case <-a.done:
		return nil
	default:
		close(a.done)
	}
	err := a.jc.close()
	a.readerWG.Wait()
	return err
}
