package control

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/plcwifi/wolt/internal/model"
)

// keepaliveInterval is how often an idle agent pings the controller so
// the server-side read deadline (DefaultIOTimeout) never fires on a
// healthy connection.
const keepaliveInterval = 10 * time.Second

// maxRedirectHops bounds how many MsgRedirect bounces one Join follows
// before giving up (a misconfigured shard ring could otherwise loop).
const maxRedirectHops = 8

// Agent is a user-side client of the central controller. It sends the
// user's scan report on Join, follows cross-shard redirects to the
// controller that owns its best-rate extender, and tracks the
// association directives the controller pushes (including later
// re-associations).
type Agent struct {
	userID int
	codec  Codec

	mu       sync.Mutex
	lk       link
	extender int
	moves    int // directives that changed an existing association
	lastErr  error

	// associates and redirects count protocol events across the agent's
	// lifetime (every MsgAssociate seen and every redirect hop followed);
	// unlike the directives channel they never drop, so harnesses can
	// meter delivered directives exactly.
	associates atomic.Int64
	redirects  atomic.Int64

	// directives and statsReplies are replaced wholesale when a Join
	// follows a redirect to another shard; always read them through
	// dirCh/statsCh. Stats replies get their own channel so a concurrent
	// WaitForMove (which drains directives) can never steal them — and
	// vice versa.
	directives   chan Message
	statsReplies chan Message

	done     chan struct{}
	readerWG sync.WaitGroup
}

// Dial connects an agent to the controller at addr with the default
// binary codec.
func Dial(addr string, userID int) (*Agent, error) {
	return DialCodec(addr, userID, CodecBinary)
}

// DialCodec connects an agent with an explicit codec: CodecBinary (the
// default framing) or CodecJSON (the legacy fallback — what a
// not-yet-upgraded agent speaks). The server auto-detects either.
func DialCodec(addr string, userID int, codec Codec) (*Agent, error) {
	if codec == "" {
		codec = CodecBinary
	}
	lk, err := dialLink(addr, codec)
	if err != nil {
		return nil, err
	}
	a := &Agent{
		userID:       userID,
		codec:        codec,
		lk:           lk,
		extender:     model.Unassigned,
		directives:   make(chan Message, 16),
		statsReplies: make(chan Message, 16),
		done:         make(chan struct{}),
	}
	a.readerWG.Add(1)
	go a.readLoop(lk, a.directives, a.statsReplies)
	go a.keepaliveLoop()
	return a, nil
}

// dialLink opens a TCP connection to addr speaking the given codec
// (binary links announce themselves with the two-byte hello).
func dialLink(addr string, codec Codec) (link, error) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return nil, fmt.Errorf("control: dial %s: %w", addr, err)
	}
	switch codec {
	case CodecBinary:
		return dialWireConn(conn)
	case CodecJSON:
		return newJSONConn(conn), nil
	default:
		_ = conn.Close()
		return nil, fmt.Errorf("control: unknown codec %q", codec)
	}
}

// send writes a message on the agent's current connection. Both conn
// types serialize concurrent writers (keepalive vs Join/UpdateScan).
func (a *Agent) send(m Message) error {
	a.mu.Lock()
	lk := a.lk
	a.mu.Unlock()
	return lk.send(m)
}

func (a *Agent) dirCh() chan Message {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.directives
}

func (a *Agent) statsCh() chan Message {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.statsReplies
}

// readLoop drains one connection; it exits (closing that connection's
// channels) when the connection dies or is replaced by a redirect.
func (a *Agent) readLoop(lk link, directives, statsReplies chan Message) {
	defer a.readerWG.Done()
	defer close(directives)
	defer close(statsReplies)
	for {
		msg, err := lk.recv()
		if err != nil {
			return
		}
		// The binary codec's recv reuses its decode scratch, so slice
		// fields are only valid until the next recv. No server→agent
		// message carries meaningful vectors; drop them before the
		// message outlives this iteration via a channel.
		msg.Rates, msg.RSSI = nil, nil
		switch msg.Type {
		case MsgAssociate:
			a.associates.Add(1)
			a.mu.Lock()
			if a.extender != model.Unassigned && msg.Extender != a.extender {
				a.moves++
			}
			a.extender = msg.Extender
			a.mu.Unlock()
		case MsgError:
			a.mu.Lock()
			a.lastErr = errors.New(msg.Error)
			a.mu.Unlock()
		case MsgStatsReply:
			select {
			case statsReplies <- msg:
			default:
			}
			continue // never mixed into the directive stream
		}
		select {
		case directives <- msg:
		default:
			// Slow consumer: drop the notification; state above is
			// already updated.
		}
	}
}

// keepaliveLoop pings the controller while the agent is alive, so the
// server's per-read deadline never drops a healthy idle connection.
func (a *Agent) keepaliveLoop() {
	ticker := time.NewTicker(keepaliveInterval)
	defer ticker.Stop()
	for {
		select {
		case <-a.done:
			return
		case <-ticker.C:
			// A failed ping means the connection is gone; the read loop
			// observes that independently.
			_ = a.send(Message{Type: MsgPing})
		}
	}
}

// redial replaces the agent's connection with one to addr (following a
// cross-shard MsgRedirect), keeping the codec it dialed with. Only Join
// triggers redials, before the agent is associated; concurrent
// WaitForMove/Stats calls started before the redial observe a
// closed-connection error.
func (a *Agent) redial(addr string) error {
	a.mu.Lock()
	old := a.lk
	a.mu.Unlock()
	_ = old.close()
	a.readerWG.Wait()

	lk, err := dialLink(addr, a.codec)
	if err != nil {
		return fmt.Errorf("control: redirect to %s: %w", addr, err)
	}
	directives := make(chan Message, 16)
	statsReplies := make(chan Message, 16)
	a.mu.Lock()
	a.lk = lk
	a.directives = directives
	a.statsReplies = statsReplies
	a.mu.Unlock()
	a.readerWG.Add(1)
	go a.readLoop(lk, directives, statsReplies)
	return nil
}

// Join sends the agent's scan report (per-extender WiFi rates and RSSI)
// and waits for the controller's first association directive. When a
// shard-member controller answers with a redirect, Join re-dials the
// owning member and re-sends the report (at most maxRedirectHops times).
func (a *Agent) Join(rates, rssi []float64, timeout time.Duration) (int, error) {
	joinMsg := Message{
		Type:   MsgJoin,
		UserID: a.userID,
		Rates:  rates,
		RSSI:   rssi,
	}
	if err := a.send(joinMsg); err != nil {
		return 0, fmt.Errorf("control: join: %w", err)
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	hops := 0
	for {
		select {
		case msg, ok := <-a.dirCh():
			if !ok {
				return 0, errors.New("control: connection closed before directive")
			}
			switch msg.Type {
			case MsgAssociate:
				if msg.UserID == a.userID {
					return msg.Extender, nil
				}
			case MsgRedirect:
				hops++
				a.redirects.Add(1)
				if hops > maxRedirectHops {
					return 0, fmt.Errorf("control: join: gave up after %d redirects", hops-1)
				}
				if err := a.redial(msg.Addr); err != nil {
					return 0, err
				}
				if err := a.send(joinMsg); err != nil {
					return 0, fmt.Errorf("control: join after redirect: %w", err)
				}
			case MsgError:
				return 0, errors.New(msg.Error)
			}
		case <-deadline.C:
			return 0, errors.New("control: timed out waiting for association directive")
		}
	}
}

// Extender returns the agent's current association (model.Unassigned
// before the first directive).
func (a *Agent) Extender() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.extender
}

// Moves returns how many times the controller re-associated this agent.
func (a *Agent) Moves() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.moves
}

// Directives returns how many association directives this agent has
// received over its lifetime (join confirmations and re-associations;
// exact — unlike the notification channel, this count never drops).
func (a *Agent) Directives() int {
	return int(a.associates.Load())
}

// Redirects returns how many cross-shard redirect hops this agent has
// followed.
func (a *Agent) Redirects() int {
	return int(a.redirects.Load())
}

// Err returns the last error message the controller pushed to this agent
// (nil if none). Asynchronous rejections — e.g. an invalid scan update —
// surface here.
func (a *Agent) Err() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.lastErr
}

// WaitForMove blocks until the agent's association changes from the given
// extender or the timeout expires, returning the new extender.
func (a *Agent) WaitForMove(from int, timeout time.Duration) (int, error) {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		if cur := a.Extender(); cur != from && cur != model.Unassigned {
			return cur, nil
		}
		select {
		case _, ok := <-a.dirCh():
			if !ok {
				if cur := a.Extender(); cur != from && cur != model.Unassigned {
					return cur, nil
				}
				return 0, errors.New("control: connection closed while waiting for move")
			}
		case <-deadline.C:
			return 0, errors.New("control: timed out waiting for re-association")
		}
	}
}

// Stats asks the controller for its snapshot. Replies arrive on a
// dedicated channel, so Stats is safe to call concurrently with
// WaitForMove or Join.
func (a *Agent) Stats(timeout time.Duration) (Stats, error) {
	if err := a.send(Message{Type: MsgStats}); err != nil {
		return Stats{}, err
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		select {
		case msg, ok := <-a.statsCh():
			if !ok {
				return Stats{}, errors.New("control: connection closed before stats reply")
			}
			if msg.Stats != nil {
				return *msg.Stats, nil
			}
		case <-deadline.C:
			return Stats{}, errors.New("control: timed out waiting for stats")
		}
	}
}

// UpdateScan reports a fresh radio scan to the controller (mobility).
// Any resulting re-association arrives asynchronously; use Extender or
// WaitForMove to observe it.
func (a *Agent) UpdateScan(rates, rssi []float64) error {
	return a.send(Message{
		Type:   MsgUpdate,
		UserID: a.userID,
		Rates:  rates,
		RSSI:   rssi,
	})
}

// Leave tells the controller the user is departing and closes the
// connection.
func (a *Agent) Leave() error {
	err := a.send(Message{Type: MsgLeave, UserID: a.userID})
	closeErr := a.Close()
	if err != nil {
		return err
	}
	return closeErr
}

// Close tears the connection down without a leave message (an abrupt
// disconnect, which the controller also treats as a departure).
func (a *Agent) Close() error {
	select {
	case <-a.done:
		return nil
	default:
		close(a.done)
	}
	a.mu.Lock()
	lk := a.lk
	a.mu.Unlock()
	err := lk.close()
	a.readerWG.Wait()
	return err
}
