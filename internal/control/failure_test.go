package control

import (
	"net"
	"testing"
	"time"
)

// Failure-injection tests: the controller must survive malformed input,
// half-open connections and shutdown races without leaking users or
// goroutines.

func TestServerSurvivesGarbageBytes(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("this is not json\n{\"also\": bad\n")); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	// The controller must still serve well-formed agents.
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatalf("join after garbage: %v", err)
	}
}

func TestServerSurvivesPartialMessageThenDisconnect(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	// A JSON prefix with no terminating newline, then a hard close.
	if _, err := conn.Write([]byte(`{"type":"join","userId":9`)); err != nil {
		t.Fatal(err)
	}
	_ = conn.Close()

	a := dial(t, s, 2)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	if got := s.StatsSnapshot().Users; got != 1 {
		t.Errorf("users = %d, want 1 (half-open join must not register)", got)
	}
}

func TestServerSurvivesUnknownMessageType(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	jc := newJSONConn(conn)
	if err := jc.send(Message{Type: "frobnicate"}); err != nil {
		t.Fatal(err)
	}
	msg, err := jc.recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgError {
		t.Errorf("reply type = %q, want error", msg.Type)
	}
}

func TestAgentDisconnectDuringRecompute(t *testing.T) {
	// User 1 joins, then its connection dies. User 2's join triggers a
	// WOLT recompute whose directive push to user 1 fails; the server
	// must carry on.
	s := fig3Server(t, PolicyWOLT)
	a1 := dial(t, s, 1)
	if _, err := a1.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	_ = a1.Close()
	// The server may or may not have processed the disconnect yet; both
	// orders must work.
	a2 := dial(t, s, 2)
	if _, err := a2.Join([]float64{40, 20}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.StatsSnapshot().Users == 1 })
}

func TestServerCloseWithLiveAgents(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps: []float64{60, 20},
		Policy:  PolicyWOLT,
	})
	if err != nil {
		t.Fatal(err)
	}
	var agents []*Agent
	for i := 0; i < 5; i++ {
		a, err := Dial(s.Addr(), i)
		if err != nil {
			t.Fatal(err)
		}
		agents = append(agents, a)
		if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
			t.Fatal(err)
		}
	}
	// Close must return (no goroutine deadlock) even with live agents.
	done := make(chan error, 1)
	go func() { done <- s.Close() }()
	select {
	case <-done:
	case <-time.After(testTimeout):
		t.Fatal("server Close deadlocked with live agents")
	}
	for _, a := range agents {
		_ = a.Close()
	}
}

func TestAgentJoinAfterServerGone(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps: []float64{60, 20},
	})
	if err != nil {
		t.Fatal(err)
	}
	addr := s.Addr()
	a, err := Dial(addr, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Join([]float64{15, 10}, nil, 500*time.Millisecond); err == nil {
		t.Error("join against closed server: want error")
	}
}

func TestAgentStatsTimeout(t *testing.T) {
	// A server that accepts but never replies: Stats must time out.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ln.Close() }()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer func() { _ = conn.Close() }()
		buf := make([]byte, 1024)
		for {
			if _, err := conn.Read(buf); err != nil {
				return
			}
		}
	}()
	a, err := Dial(ln.Addr().String(), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = a.Close() }()
	if _, err := a.Stats(200 * time.Millisecond); err == nil {
		t.Error("stats against mute server: want timeout error")
	}
}

func TestRapidChurn(t *testing.T) {
	// Joins and leaves in quick succession must keep counters coherent.
	s := fig3Server(t, PolicyWOLT)
	for round := 0; round < 10; round++ {
		a, err := Dial(s.Addr(), round)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
			t.Fatal(err)
		}
		if err := a.Leave(); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, func() bool {
		st := s.StatsSnapshot()
		return st.Users == 0 && st.Joins == 10 && st.Leaves == 10
	})
}
