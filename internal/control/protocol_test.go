package control

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestAssociateExtenderZeroRoundTrip pins the wire contract for
// extender 0: the first extender is a perfectly ordinary directive
// target, so "extender":0 and "reassociation":false must be serialized
// explicitly — an omitempty here would make the directive
// indistinguishable from a malformed message on the wire.
func TestAssociateExtenderZeroRoundTrip(t *testing.T) {
	in := Message{Type: MsgAssociate, UserID: 3, Extender: 0, Reassociation: false}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"extender":0`, `"reassociation":false`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("encoded directive %s missing %s", raw, want)
		}
	}
	var out Message
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgAssociate || out.UserID != 3 || out.Extender != 0 || out.Reassociation {
		t.Errorf("round trip mangled the message: %+v", out)
	}
}

// TestRedirectRoundTrip covers the shard handoff message.
func TestRedirectRoundTrip(t *testing.T) {
	in := Message{Type: MsgRedirect, UserID: 9, Addr: "127.0.0.1:4242"}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgRedirect || out.UserID != 9 || out.Addr != "127.0.0.1:4242" {
		t.Errorf("round trip mangled the message: %+v", out)
	}
}
