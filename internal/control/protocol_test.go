package control

import (
	"bufio"
	"encoding/json"
	"net"
	"strings"
	"sync/atomic"
	"testing"
)

// TestAssociateExtenderZeroRoundTrip pins the wire contract for
// extender 0: the first extender is a perfectly ordinary directive
// target, so "extender":0 and "reassociation":false must be serialized
// explicitly — an omitempty here would make the directive
// indistinguishable from a malformed message on the wire.
func TestAssociateExtenderZeroRoundTrip(t *testing.T) {
	in := Message{Type: MsgAssociate, UserID: 3, Extender: 0, Reassociation: false}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"extender":0`, `"reassociation":false`} {
		if !strings.Contains(string(raw), want) {
			t.Errorf("encoded directive %s missing %s", raw, want)
		}
	}
	var out Message
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgAssociate || out.UserID != 3 || out.Extender != 0 || out.Reassociation {
		t.Errorf("round trip mangled the message: %+v", out)
	}
}

// TestRedirectRoundTrip covers the shard handoff message.
func TestRedirectRoundTrip(t *testing.T) {
	in := Message{Type: MsgRedirect, UserID: 9, Addr: "127.0.0.1:4242"}
	raw, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Message
	if err := json.Unmarshal(raw, &out); err != nil {
		t.Fatal(err)
	}
	if out.Type != MsgRedirect || out.UserID != 9 || out.Addr != "127.0.0.1:4242" {
		t.Errorf("round trip mangled the message: %+v", out)
	}
}

// countingConn wraps a net.Conn and counts Write calls — each Write from
// the buffered jsonConn corresponds to one flush (one syscall on a real
// socket).
type countingConn struct {
	net.Conn
	writes atomic.Int64
}

func (c *countingConn) Write(p []byte) (int, error) {
	c.writes.Add(1)
	return c.Conn.Write(p)
}

// TestSendBatchCoalesces pins the batching contract behind
// Server.pushDirectives: a burst of k messages reaches the wire as ONE
// buffered write (one flush), not k, and every message survives intact
// and in order.
func TestSendBatchCoalesces(t *testing.T) {
	client, server := net.Pipe()
	defer client.Close()
	defer server.Close()

	cc := &countingConn{Conn: client}
	jc := newJSONConn(cc)

	const k = 25
	msgs := make([]Message, k)
	for i := range msgs {
		msgs[i] = Message{Type: MsgAssociate, UserID: i, Extender: i % 4}
	}

	done := make(chan error, 1)
	go func() { done <- jc.sendBatch(msgs) }()

	r := bufio.NewReader(server)
	for i := 0; i < k; i++ {
		line, err := r.ReadBytes('\n')
		if err != nil {
			t.Fatal(err)
		}
		var m Message
		if err := json.Unmarshal(line, &m); err != nil {
			t.Fatal(err)
		}
		if m.UserID != i || m.Extender != i%4 {
			t.Fatalf("message %d out of order or mangled: %+v", i, m)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// net.Pipe has no kernel buffer, so a single bufio flush of 25 small
	// messages is exactly one Write; per-message sends would be 25.
	if n := cc.writes.Load(); n != 1 {
		t.Errorf("batch of %d messages took %d writes, want 1 coalesced flush", k, n)
	}
	if err := jc.sendBatch(nil); err != nil {
		t.Errorf("empty batch: %v", err)
	}
}
