package control

import (
	"net"
	"reflect"
	"testing"
	"time"
)

// runTranscript drives one fixed agent session — join, scan update, a
// topology-forced move, a stats query, leave — against a fresh server,
// and returns the observable outcome. The codec under test is the only
// variable; TestCodecDifferential asserts the outcome is identical.
type transcriptResult struct {
	joinExt  int
	movedExt int
	stats    Stats
}

func runTranscript(t *testing.T, codec Codec) transcriptResult {
	t.Helper()
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps: []float64{100, 100, 100},
		Policy:  PolicyWOLT,
		Seed:    42,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// A bystander pinned to extender 2 so the mover's directives have an
	// audience beyond itself.
	other, err := DialCodec(srv.Addr(), 2, codec)
	if err != nil {
		t.Fatal(err)
	}
	defer other.Close()
	if _, err := other.Join([]float64{0, 0, 50}, []float64{-90, -90, -50}, 2*time.Second); err != nil {
		t.Fatal(err)
	}

	a, err := DialCodec(srv.Addr(), 1, codec)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	ext, err := a.Join([]float64{120, 30, 0}, []float64{-50, -70, -90}, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	// Mobility: the user walks away from its extender toward another;
	// the policy must move it.
	if err := a.UpdateScan([]float64{5, 200, 0}, []float64{-85, -45, -90}); err != nil {
		t.Fatal(err)
	}
	moved, err := a.WaitForMove(ext, 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}

	stats, err := a.Stats(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Leave(); err != nil {
		t.Fatal(err)
	}
	return transcriptResult{joinExt: ext, movedExt: moved, stats: stats}
}

// TestCodecDifferential replays the same session transcript under the
// binary codec and the legacy JSON codec against identically-seeded
// servers: every observable — join placement, re-association target,
// stats snapshot — must match. This is the compatibility proof for the
// negotiated fallback: an old JSON agent sees exactly what a new binary
// agent sees.
func TestCodecDifferential(t *testing.T) {
	bin := runTranscript(t, CodecBinary)
	js := runTranscript(t, CodecJSON)
	if !reflect.DeepEqual(bin, js) {
		t.Errorf("codecs diverged:\n binary %+v\n json   %+v", bin, js)
	}
	if bin.joinExt != 0 {
		t.Errorf("join placed user 1 on extender %d, want 0", bin.joinExt)
	}
	if bin.movedExt != 1 {
		t.Errorf("update moved user 1 to extender %d, want 1", bin.movedExt)
	}
}

// TestMixedCodecsOneServer joins a binary agent and a JSON agent to the
// SAME server: per-connection negotiation must keep both working side
// by side (the rollout reality — upgraded and legacy agents coexist).
func TestMixedCodecsOneServer(t *testing.T) {
	srv, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps: []float64{100, 100},
		Policy:  PolicyRSSI,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	bin, err := DialCodec(srv.Addr(), 10, CodecBinary)
	if err != nil {
		t.Fatal(err)
	}
	defer bin.Close()
	js, err := DialCodec(srv.Addr(), 11, CodecJSON)
	if err != nil {
		t.Fatal(err)
	}
	defer js.Close()

	extB, err := bin.Join([]float64{80, 20}, []float64{-50, -70}, 2*time.Second)
	if err != nil {
		t.Fatalf("binary join: %v", err)
	}
	extJ, err := js.Join([]float64{20, 80}, []float64{-70, -50}, 2*time.Second)
	if err != nil {
		t.Fatalf("json join: %v", err)
	}
	if extB != 0 || extJ != 1 {
		t.Errorf("mixed-codec joins landed on (%d,%d), want (0,1)", extB, extJ)
	}
	st, err := js.Stats(2 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if st.Users != 2 {
		t.Errorf("server sees %d users, want 2", st.Users)
	}
}

// TestWireSendBatchCoalesces asserts a wireConn burst reaches the kernel
// as ONE write, mirroring the JSON coalescing test (same countingConn).
func TestWireSendBatchCoalesces(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	cw := &countingConn{Conn: client}
	wc := newWireConn(cw, nil)
	defer wc.close()

	msgs := make([]Message, 25)
	for i := range msgs {
		msgs[i] = Message{Type: MsgAssociate, UserID: i, Extender: i % 3}
	}
	done := make(chan error, 1)
	go func() { done <- wc.sendBatch(msgs) }()

	// Drain the server side: read every frame back and check the burst
	// arrived intact and in order.
	rc := newWireConn(server, nil)
	for i := range msgs {
		got, err := rc.recv()
		if err != nil {
			t.Fatalf("recv of message %d: %v", i, err)
		}
		if got.UserID != msgs[i].UserID || got.Extender != msgs[i].Extender {
			t.Fatalf("message %d arrived as %+v, want %+v", i, got, msgs[i])
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("sendBatch: %v", err)
	}
	if n := cw.writes.Load(); n != 1 {
		t.Errorf("burst of %d messages used %d writes, want 1", len(msgs), n)
	}
}
