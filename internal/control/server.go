package control

import (
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/strategy"
)

// DefaultIOTimeout bounds a single read or write on a server-side
// connection when ServerConfig leaves the timeouts zero. Agents keep
// idle connections alive with MsgPing well inside this window.
const DefaultIOTimeout = 30 * time.Second

// DefaultPushQueueDepth bounds each connection's outbound directive
// queue (in batches) when ServerConfig leaves PushQueueDepth zero.
const DefaultPushQueueDepth = 256

// ServerConfig configures a central controller.
type ServerConfig struct {
	// PLCCaps are the offline-estimated PLC isolation capacities c_j,
	// indexed by global extender ID (§V-A).
	PLCCaps []float64
	// Owned restricts this server's engine to a subset of global
	// extender IDs (shard-member mode); empty owns all of them.
	Owned []int
	// Policy is the association policy: a strategy-registry name
	// (default PolicyWOLT), validated at NewServer time.
	Policy PolicyKind
	// ModelOpts selects the evaluation model used by evaluation-driven
	// policies.
	ModelOpts model.Options
	// Workers bounds WOLT's intra-solve Phase II parallelism.
	Workers int
	// Seed derives the policy instance's private randomness.
	Seed int64
	// Budget bounds budget-aware policies per operation (see
	// EngineConfig.Budget).
	Budget strategy.Budget
	// ReassignOnLeave lets reassigning policies re-solve on departures
	// (see EngineConfig.ReassignOnLeave).
	ReassignOnLeave bool
	// PlacementOnlyJoins routes joins through the policy's online
	// placement form (see EngineConfig.PlacementOnlyJoins).
	PlacementOnlyJoins bool
	// FullResolveEvery, under PlacementOnlyJoins, forces a full re-solve
	// on every Nth join (see EngineConfig.FullResolveEvery).
	FullResolveEvery int
	// ReadTimeout bounds one message read per connection: a stalled
	// agent is disconnected (and treated as departed if it had joined)
	// instead of pinning a server goroutine forever. Zero selects
	// DefaultIOTimeout; negative disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds one message write per connection. Zero selects
	// DefaultIOTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// PushQueueDepth bounds each connection's outbound directive queue,
	// in batches. When a slow reader's queue is full, further pushes to
	// it are dropped and counted in Stats.DroppedPushes instead of
	// stalling the engine-order push path behind one stuck socket. Zero
	// selects DefaultPushQueueDepth.
	PushQueueDepth int
	// Redirect, when set, is consulted before every join: returning
	// (addr, true) answers the agent with MsgRedirect instead of
	// admitting it — the shard layer's cross-shard handoff hook.
	Redirect func(userID int, rates []float64) (addr string, ok bool)
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
}

// Server is the WOLT Central Controller's TCP transport: it accepts
// agent connections, negotiates a codec per connection (binary framing
// for new agents, newline JSON for old ones), decodes protocol
// messages, and forwards them to a policy Engine. All association
// policy and user state live in the Engine; the Server only moves
// messages.
type Server struct {
	cfg      ServerConfig
	engine   *Engine
	listener net.Listener

	// opMu serializes engine-operation + directive-push pairs so that
	// directives reach agents in the order the engine produced them
	// (two concurrent joins must not interleave their pushes, or an
	// agent could end on a stale extender).
	opMu sync.Mutex

	mu        sync.Mutex
	conns     map[*serverConn]struct{}
	userConns map[int]*serverConn

	// droppedPushes counts directives discarded because their target
	// connection's outbound queue was full (surfaced in StatsSnapshot).
	droppedPushes atomic.Int64

	wg     sync.WaitGroup
	closed chan struct{}
}

// serverConn is one accepted connection: the raw conn (registered
// before codec negotiation so Close can unblock the handshake read),
// the negotiated link, and a bounded outbound queue drained by a
// dedicated writer goroutine. The queue decouples the engine's
// lock-ordered push path from each socket's drain rate: a stalled
// reader fills its own queue and starts shedding directives instead of
// blocking pushes to everyone else behind its write deadline.
type serverConn struct {
	c  net.Conn
	lk link // set by handle after negotiation, before the writer starts

	outMu     sync.Mutex
	out       chan []Message
	outClosed bool

	// dead flips after the first write error so queued batches behind it
	// are skipped instead of each eating a full write-deadline stall.
	dead atomic.Bool
}

// enqueue hands a batch to the connection's writer without blocking.
// It reports how many directives were shed (queue full); a closed
// outbox (connection tearing down) sheds silently — those users are
// departing, not stalled.
func (sc *serverConn) enqueue(msgs []Message) (dropped int) {
	sc.outMu.Lock()
	defer sc.outMu.Unlock()
	if sc.outClosed {
		return 0
	}
	select {
	case sc.out <- msgs:
		return 0
	default:
		return len(msgs)
	}
}

func (sc *serverConn) closeOutbox() {
	sc.outMu.Lock()
	defer sc.outMu.Unlock()
	if !sc.outClosed {
		sc.outClosed = true
		close(sc.out)
	}
}

// close tears down the transport. The raw conn is closed directly (not
// through lk, which may not exist yet mid-handshake); both codecs close
// the same underlying socket.
func (sc *serverConn) close() error {
	return sc.c.Close()
}

// NewServer starts a controller listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	engine, err := NewEngine(EngineConfig{
		PLCCaps:            cfg.PLCCaps,
		Owned:              cfg.Owned,
		Policy:             cfg.Policy,
		ModelOpts:          cfg.ModelOpts,
		Workers:            cfg.Workers,
		Seed:               cfg.Seed,
		Budget:             cfg.Budget,
		ReassignOnLeave:    cfg.ReassignOnLeave,
		PlacementOnlyJoins: cfg.PlacementOnlyJoins,
		FullResolveEvery:   cfg.FullResolveEvery,
	})
	if err != nil {
		return nil, err
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultIOTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultIOTimeout
	}
	if cfg.PushQueueDepth <= 0 {
		cfg.PushQueueDepth = DefaultPushQueueDepth
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: listen: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		engine:    engine,
		listener:  ln,
		conns:     make(map[*serverConn]struct{}),
		userConns: make(map[int]*serverConn),
		closed:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the controller's listen address.
func (s *Server) Addr() string {
	return s.listener.Addr().String()
}

// Engine returns the server's policy engine (shared state; the shard
// coordinator and tests read stats or drive in-process operations
// through it).
func (s *Server) Engine() *Engine {
	return s.engine
}

// Close shuts the controller down and waits for its goroutines. Every
// open connection is closed, whether or not its agent ever joined.
func (s *Server) Close() error {
	close(s.closed)
	err := s.listener.Close()
	s.mu.Lock()
	for sc := range s.conns {
		_ = sc.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// StatsSnapshot returns the controller's counters and current
// assignment, including the transport-level DroppedPushes count (the
// engine knows nothing about sockets).
func (s *Server) StatsSnapshot() Stats {
	st := s.engine.Stats()
	st.DroppedPushes = int(s.droppedPushes.Load())
	return st
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("accept: %v", err)
				return
			}
		}
		sc := &serverConn{c: conn, out: make(chan []Message, s.cfg.PushQueueDepth)}
		s.wg.Add(1)
		go s.handle(sc)
	}
}

// connWriter drains one connection's outbound queue. Batches enqueued
// after a write error are skipped (not re-counted as drops — the
// handler is already tearing the connection down as a departure).
func (s *Server) connWriter(sc *serverConn) {
	defer s.wg.Done()
	for msgs := range sc.out {
		if sc.dead.Load() {
			continue
		}
		if err := sc.lk.sendBatch(msgs); err != nil {
			sc.dead.Store(true)
			s.logf("push %d directives: %v", len(msgs), err)
		}
	}
}

func (s *Server) handle(sc *serverConn) {
	defer s.wg.Done()
	// Register under the same lock that Close sweeps the map with, and
	// re-check the shutdown flag: a connection accepted concurrently
	// with Close could otherwise register after the sweep and leave this
	// goroutine blocked in the handshake read forever. Registration
	// happens BEFORE negotiation for the same reason.
	s.mu.Lock()
	s.conns[sc] = struct{}{}
	var shuttingDown bool
	select {
	case <-s.closed:
		shuttingDown = true
	default:
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, sc)
		s.mu.Unlock()
		sc.closeOutbox()
		_ = sc.close()
	}()
	if shuttingDown {
		return
	}
	lk, err := negotiate(sc.c, s.cfg.ReadTimeout, s.cfg.WriteTimeout)
	if err != nil {
		s.logf("handshake: %v", err)
		return
	}
	sc.lk = lk
	s.wg.Add(1)
	go s.connWriter(sc)
	var joinedUser = -1
	for {
		msg, err := lk.recv()
		if err != nil {
			// Connection gone (or its read deadline expired): treat as
			// an implicit leave.
			if joinedUser >= 0 {
				s.removeUser(joinedUser, sc)
			}
			return
		}
		switch msg.Type {
		case MsgJoin:
			if s.cfg.Redirect != nil {
				if addr, ok := s.cfg.Redirect(msg.UserID, msg.Rates); ok {
					_ = lk.send(Message{Type: MsgRedirect, UserID: msg.UserID, Addr: addr})
					continue
				}
			}
			if err := s.join(sc, msg); err != nil {
				_ = lk.send(Message{Type: MsgError, Error: err.Error()})
				continue
			}
			joinedUser = msg.UserID
		case MsgUpdate:
			if joinedUser < 0 || msg.UserID != joinedUser {
				_ = lk.send(Message{Type: MsgError, Error: "update before join"})
				continue
			}
			if err := s.update(msg); err != nil {
				_ = lk.send(Message{Type: MsgError, Error: err.Error()})
			}
		case MsgLeave:
			if joinedUser >= 0 {
				s.removeUser(joinedUser, sc)
				joinedUser = -1
			}
			return
		case MsgPing:
			// Keepalive: the read itself refreshed the deadline.
		case MsgStats:
			stats := s.StatsSnapshot()
			if err := lk.send(Message{Type: MsgStatsReply, Stats: &stats}); err != nil {
				return
			}
		default:
			_ = lk.send(Message{Type: MsgError, Error: fmt.Sprintf("unexpected message %q", msg.Type)})
		}
	}
}

// join admits the agent through the engine and pushes the resulting
// directives (the joining user's own directive included).
func (s *Server) join(sc *serverConn, msg Message) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	dirs, err := s.engine.Join(msg.UserID, msg.Rates, msg.RSSI)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.userConns[msg.UserID] = sc
	s.mu.Unlock()
	s.pushDirectives(dirs)
	return nil
}

func (s *Server) update(msg Message) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	dirs, err := s.engine.Update(msg.UserID, msg.Rates, msg.RSSI)
	if err != nil {
		return err
	}
	s.pushDirectives(dirs)
	return nil
}

// removeUser drops a departed user from the engine. The connection guard
// prevents a stale handler (e.g. a user ID that re-joined on a new
// connection) from unmapping the live one.
func (s *Server) removeUser(id int, sc *serverConn) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.mu.Lock()
	if cur, ok := s.userConns[id]; ok && cur == sc {
		delete(s.userConns, id)
	} else if ok {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	// With ReassignOnLeave policies the departure may rebalance the
	// remaining users; forward those directives like any other.
	if dirs, ok := s.engine.Leave(id); ok && len(dirs) > 0 {
		s.pushDirectives(dirs)
	}
}

// pushDirectives forwards engine directives to the affected agents'
// connections. Callers hold opMu, which keeps pushes in engine order.
//
// A churn burst is coalesced: one pass under s.mu resolves every
// directive's connection, directives sharing a connection are grouped
// (preserving engine order within each), and each connection's batch is
// handed to its writer goroutine as one unit — the writer turns it into
// a single coalesced write. Enqueueing never blocks: each connection's
// queue is bounded, and a slow reader's overflow is shed and counted
// (Stats.DroppedPushes) rather than stalling every other agent's push
// behind one stuck socket. Per-connection FIFO order is preserved by
// the queue, so the directives an agent does receive are in engine
// order even when some in between were shed.
func (s *Server) pushDirectives(dirs []Directive) {
	if len(dirs) == 0 {
		return
	}
	type batch struct {
		sc   *serverConn
		msgs []Message
	}
	// Directive bursts rarely span many distinct connections relative to
	// their size; a small slice keyed by identity beats a map until the
	// fan-out is genuinely wide.
	batches := make([]batch, 0, 8)
	s.mu.Lock()
	for _, d := range dirs {
		sc := s.userConns[d.UserID]
		if sc == nil {
			continue
		}
		msg := Message{
			Type:          MsgAssociate,
			UserID:        d.UserID,
			Extender:      d.Extender,
			Reassociation: d.Reassociation,
		}
		found := false
		for i := range batches {
			if batches[i].sc == sc {
				batches[i].msgs = append(batches[i].msgs, msg)
				found = true
				break
			}
		}
		if !found {
			batches = append(batches, batch{sc: sc, msgs: []Message{msg}})
		}
	}
	s.mu.Unlock()
	for i := range batches {
		if dropped := batches[i].sc.enqueue(batches[i].msgs); dropped > 0 {
			s.droppedPushes.Add(int64(dropped))
			s.logf("push queue full: dropped %d directives", dropped)
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}
