package control

import (
	"errors"
	"fmt"
	"log"
	"net"
	"sort"
	"sync"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/strategy"
)

// PolicyKind selects the controller's association policy. Any name from
// the internal/strategy registry is accepted; PolicyRSSI additionally
// uses the agents' reported RSSI values (the registry's rates-based
// "rssi" strategy never sees them).
type PolicyKind string

// Common controller policies (any strategy registry name works).
const (
	PolicyWOLT   PolicyKind = "wolt"
	PolicyGreedy PolicyKind = "greedy"
	PolicyRSSI   PolicyKind = "rssi"
)

// ServerConfig configures a central controller.
type ServerConfig struct {
	// PLCCaps are the offline-estimated PLC isolation capacities c_j,
	// indexed by extender ID (§V-A: measured by saturating each link).
	PLCCaps []float64
	// Policy is the association policy (default PolicyWOLT).
	Policy PolicyKind
	// ModelOpts selects the evaluation model used by the greedy policy.
	ModelOpts model.Options
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
}

// Server is the WOLT Central Controller: it accepts agent connections,
// collects scan reports, computes associations and pushes directives.
type Server struct {
	cfg      ServerConfig
	listener net.Listener
	// strategy is the configured association strategy (nil for
	// PolicyRSSI, which places users by their reported signal instead).
	// It is only used under mu: strategy instances are not safe for
	// concurrent solves.
	strategy strategy.Strategy

	mu             sync.Mutex
	users          map[int]*userState
	conns          map[*jsonConn]struct{}
	joins          int
	leaves         int
	reassociations int

	wg     sync.WaitGroup
	closed chan struct{}
}

type userState struct {
	rates    []float64
	rssi     []float64
	extender int
	conn     *jsonConn
}

// NewServer starts a controller listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	if len(cfg.PLCCaps) == 0 {
		return nil, errors.New("control: no PLC capacities configured")
	}
	for j, c := range cfg.PLCCaps {
		if c <= 0 {
			return nil, fmt.Errorf("control: extender %d has non-positive capacity %v", j, c)
		}
	}
	if cfg.Policy == "" {
		cfg.Policy = PolicyWOLT
	}
	var st strategy.Strategy
	if cfg.Policy != PolicyRSSI {
		var err error
		st, err = strategy.New(string(cfg.Policy), strategy.Config{ModelOpts: cfg.ModelOpts})
		if err != nil {
			return nil, fmt.Errorf("control: %w", err)
		}
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: listen: %w", err)
	}
	s := &Server{
		cfg:      cfg,
		listener: ln,
		strategy: st,
		users:    make(map[int]*userState),
		conns:    make(map[*jsonConn]struct{}),
		closed:   make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the controller's listen address.
func (s *Server) Addr() string {
	return s.listener.Addr().String()
}

// Close shuts the controller down and waits for its goroutines. Every
// open connection is closed, whether or not its agent ever joined.
func (s *Server) Close() error {
	close(s.closed)
	err := s.listener.Close()
	s.mu.Lock()
	for jc := range s.conns {
		_ = jc.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// StatsSnapshot returns the controller's counters and current assignment.
func (s *Server) StatsSnapshot() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statsLocked()
}

func (s *Server) statsLocked() Stats {
	assignment := make(map[int]int, len(s.users))
	for id, u := range s.users {
		assignment[id] = u.extender
	}
	return Stats{
		Policy:         string(s.cfg.Policy),
		Users:          len(s.users),
		Joins:          s.joins,
		Leaves:         s.leaves,
		Reassociations: s.reassociations,
		Assignment:     assignment,
	}
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("accept: %v", err)
				return
			}
		}
		s.wg.Add(1)
		go s.handle(newJSONConn(conn))
	}
}

func (s *Server) handle(jc *jsonConn) {
	defer s.wg.Done()
	// Register under the same lock that Close sweeps the map with, and
	// re-check the shutdown flag: a connection accepted concurrently
	// with Close could otherwise register after the sweep and leave this
	// goroutine blocked in recv forever.
	s.mu.Lock()
	s.conns[jc] = struct{}{}
	var shuttingDown bool
	select {
	case <-s.closed:
		shuttingDown = true
	default:
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, jc)
		s.mu.Unlock()
		_ = jc.close()
	}()
	if shuttingDown {
		return
	}
	var joinedUser = -1
	for {
		msg, err := jc.recv()
		if err != nil {
			// Connection gone: treat as an implicit leave.
			if joinedUser >= 0 {
				s.removeUser(joinedUser)
			}
			return
		}
		switch msg.Type {
		case MsgJoin:
			if err := s.handleJoin(jc, msg); err != nil {
				_ = jc.send(Message{Type: MsgError, Error: err.Error()})
				continue
			}
			joinedUser = msg.UserID
		case MsgUpdate:
			if joinedUser < 0 || msg.UserID != joinedUser {
				_ = jc.send(Message{Type: MsgError, Error: "update before join"})
				continue
			}
			if err := s.handleUpdate(msg); err != nil {
				_ = jc.send(Message{Type: MsgError, Error: err.Error()})
			}
		case MsgLeave:
			if joinedUser >= 0 {
				s.removeUser(joinedUser)
				joinedUser = -1
			}
			return
		case MsgStats:
			s.mu.Lock()
			stats := s.statsLocked()
			s.mu.Unlock()
			if err := jc.send(Message{Type: MsgStatsReply, Stats: &stats}); err != nil {
				return
			}
		default:
			_ = jc.send(Message{Type: MsgError, Error: fmt.Sprintf("unexpected message %q", msg.Type)})
		}
	}
}

func (s *Server) handleJoin(jc *jsonConn, msg Message) error {
	numExt := len(s.cfg.PLCCaps)
	if len(msg.Rates) != numExt {
		return fmt.Errorf("scan report has %d rates, controller manages %d extenders",
			len(msg.Rates), numExt)
	}
	if len(msg.RSSI) != 0 && len(msg.RSSI) != numExt {
		return fmt.Errorf("scan report has %d RSSI entries, want %d", len(msg.RSSI), numExt)
	}
	reachable := false
	for _, r := range msg.Rates {
		if r > 0 {
			reachable = true
			break
		}
	}
	if !reachable {
		return fmt.Errorf("user %d reaches no extender", msg.UserID)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[msg.UserID]; ok {
		return fmt.Errorf("user %d already joined", msg.UserID)
	}
	s.users[msg.UserID] = &userState{
		rates:    append([]float64(nil), msg.Rates...),
		rssi:     append([]float64(nil), msg.RSSI...),
		extender: model.Unassigned,
		conn:     jc,
	}
	s.joins++
	if err := s.recomputeLocked(msg.UserID); err != nil {
		delete(s.users, msg.UserID)
		s.joins--
		return err
	}
	return nil
}

// handleUpdate refreshes an associated user's scan report and lets the
// policy react: WOLT recomputes the full association (it may move
// anyone), RSSI re-places just the reporting user (client roaming), and
// Greedy — which never reassigns — leaves everything as is.
func (s *Server) handleUpdate(msg Message) error {
	numExt := len(s.cfg.PLCCaps)
	if len(msg.Rates) != numExt {
		return fmt.Errorf("scan report has %d rates, controller manages %d extenders",
			len(msg.Rates), numExt)
	}
	if len(msg.RSSI) != 0 && len(msg.RSSI) != numExt {
		return fmt.Errorf("scan report has %d RSSI entries, want %d", len(msg.RSSI), numExt)
	}
	reachable := false
	for _, r := range msg.Rates {
		if r > 0 {
			reachable = true
			break
		}
	}
	if !reachable {
		return fmt.Errorf("user %d reaches no extender", msg.UserID)
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	u, ok := s.users[msg.UserID]
	if !ok {
		return fmt.Errorf("user %d not joined", msg.UserID)
	}
	u.rates = append([]float64(nil), msg.Rates...)
	u.rssi = append([]float64(nil), msg.RSSI...)
	if s.cfg.Policy == PolicyRSSI {
		// Client roaming: re-place just the reporting user.
		return s.recomputeLocked(msg.UserID)
	}
	if _, ok := s.strategy.(strategy.Reassigner); ok {
		// Recomputing strategies (the WOLT variants) may move anyone.
		return s.recomputeLocked(msg.UserID)
	}
	// Arrival-only strategies (greedy, selfish, random) never reassign;
	// the refreshed report only affects placements of future arrivals.
	return nil
}

func (s *Server) removeUser(id int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.users[id]; !ok {
		return
	}
	delete(s.users, id)
	s.leaves++
	// The paper's CC recomputes on joins (directives accompany new
	// associations); departures simply free capacity.
}

// recomputeLocked runs the policy after newUser joined and pushes
// directives. Callers hold s.mu.
func (s *Server) recomputeLocked(newUser int) error {
	ids := make([]int, 0, len(s.users))
	for id := range s.users {
		ids = append(ids, id)
	}
	sort.Ints(ids)

	n := &model.Network{
		WiFiRates: make([][]float64, len(ids)),
		PLCCaps:   s.cfg.PLCCaps,
	}
	assign := make(model.Assignment, len(ids))
	newRow := -1
	for row, id := range ids {
		u := s.users[id]
		n.WiFiRates[row] = u.rates
		assign[row] = u.extender
		if id == newUser {
			newRow = row
		}
	}

	switch {
	case s.cfg.Policy == PolicyRSSI:
		u := s.users[newUser]
		best, bestSig := model.Unassigned, -1e18
		for j, r := range u.rates {
			if r <= 0 {
				continue
			}
			sig := r
			if len(u.rssi) == len(u.rates) {
				sig = u.rssi[j]
			}
			if sig > bestSig {
				best, bestSig = j, sig
			}
		}
		assign[newRow] = best
	default:
		var err error
		if assign, err = s.applyStrategy(n, assign, newRow); err != nil {
			return err
		}
	}

	// Push directives for every changed user.
	for row, id := range ids {
		u := s.users[id]
		if assign[row] == u.extender {
			continue
		}
		reassoc := u.extender != model.Unassigned
		u.extender = assign[row]
		if reassoc {
			s.reassociations++
		}
		if u.conn != nil {
			if err := u.conn.send(Message{
				Type:          MsgAssociate,
				UserID:        id,
				Extender:      u.extender,
				Reassociation: reassoc,
			}); err != nil {
				s.logf("push directive to user %d: %v", id, err)
			}
		}
	}
	return nil
}

// applyStrategy runs the configured strategy after newRow joined (or
// reported fresh rates): recomputing strategies may move anyone, online
// strategies place just the new user, and offline-only strategies (the
// exhaustive "optimal") are rejected with a typed error wrapping
// strategy.ErrNoOnlineForm — the controller never silently falls back
// to a different policy than the one configured.
func (s *Server) applyStrategy(n *model.Network, assign model.Assignment, newRow int) (model.Assignment, error) {
	if re, ok := s.strategy.(strategy.Reassigner); ok {
		return re.Reassign(n, assign)
	}
	if on, ok := s.strategy.(strategy.Online); ok {
		if _, err := on.Add(n, assign, newRow); err != nil {
			return nil, err
		}
		return assign, nil
	}
	return nil, fmt.Errorf("control: policy %q cannot place an arriving user: %w",
		s.cfg.Policy, strategy.ErrNoOnlineForm)
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}
