package control

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/strategy"
)

// DefaultIOTimeout bounds a single read or write on a server-side
// connection when ServerConfig leaves the timeouts zero. Agents keep
// idle connections alive with MsgPing well inside this window.
const DefaultIOTimeout = 30 * time.Second

// ServerConfig configures a central controller.
type ServerConfig struct {
	// PLCCaps are the offline-estimated PLC isolation capacities c_j,
	// indexed by global extender ID (§V-A).
	PLCCaps []float64
	// Owned restricts this server's engine to a subset of global
	// extender IDs (shard-member mode); empty owns all of them.
	Owned []int
	// Policy is the association policy: a strategy-registry name
	// (default PolicyWOLT), validated at NewServer time.
	Policy PolicyKind
	// ModelOpts selects the evaluation model used by evaluation-driven
	// policies.
	ModelOpts model.Options
	// Workers bounds WOLT's intra-solve Phase II parallelism.
	Workers int
	// Seed derives the policy instance's private randomness.
	Seed int64
	// Budget bounds budget-aware policies per operation (see
	// EngineConfig.Budget).
	Budget strategy.Budget
	// ReassignOnLeave lets reassigning policies re-solve on departures
	// (see EngineConfig.ReassignOnLeave).
	ReassignOnLeave bool
	// ReadTimeout bounds one message read per connection: a stalled
	// agent is disconnected (and treated as departed if it had joined)
	// instead of pinning a server goroutine forever. Zero selects
	// DefaultIOTimeout; negative disables the deadline.
	ReadTimeout time.Duration
	// WriteTimeout bounds one message write per connection. Zero selects
	// DefaultIOTimeout; negative disables the deadline.
	WriteTimeout time.Duration
	// Redirect, when set, is consulted before every join: returning
	// (addr, true) answers the agent with MsgRedirect instead of
	// admitting it — the shard layer's cross-shard handoff hook.
	Redirect func(userID int, rates []float64) (addr string, ok bool)
	// Logger receives connection-level errors; nil discards them.
	Logger *log.Logger
}

// Server is the WOLT Central Controller's TCP transport: it accepts
// agent connections, decodes protocol messages, and forwards them to a
// policy Engine. All association policy and user state live in the
// Engine; the Server only moves messages.
type Server struct {
	cfg      ServerConfig
	engine   *Engine
	listener net.Listener

	// opMu serializes engine-operation + directive-push pairs so that
	// directives reach agents in the order the engine produced them
	// (two concurrent joins must not interleave their pushes, or an
	// agent could end on a stale extender).
	opMu sync.Mutex

	mu        sync.Mutex
	conns     map[*jsonConn]struct{}
	userConns map[int]*jsonConn

	wg     sync.WaitGroup
	closed chan struct{}
}

// NewServer starts a controller listening on addr (e.g. "127.0.0.1:0").
func NewServer(addr string, cfg ServerConfig) (*Server, error) {
	engine, err := NewEngine(EngineConfig{
		PLCCaps:         cfg.PLCCaps,
		Owned:           cfg.Owned,
		Policy:          cfg.Policy,
		ModelOpts:       cfg.ModelOpts,
		Workers:         cfg.Workers,
		Seed:            cfg.Seed,
		Budget:          cfg.Budget,
		ReassignOnLeave: cfg.ReassignOnLeave,
	})
	if err != nil {
		return nil, err
	}
	if cfg.ReadTimeout == 0 {
		cfg.ReadTimeout = DefaultIOTimeout
	}
	if cfg.WriteTimeout == 0 {
		cfg.WriteTimeout = DefaultIOTimeout
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("control: listen: %w", err)
	}
	s := &Server{
		cfg:       cfg,
		engine:    engine,
		listener:  ln,
		conns:     make(map[*jsonConn]struct{}),
		userConns: make(map[int]*jsonConn),
		closed:    make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the controller's listen address.
func (s *Server) Addr() string {
	return s.listener.Addr().String()
}

// Engine returns the server's policy engine (shared state; the shard
// coordinator and tests read stats or drive in-process operations
// through it).
func (s *Server) Engine() *Engine {
	return s.engine
}

// Close shuts the controller down and waits for its goroutines. Every
// open connection is closed, whether or not its agent ever joined.
func (s *Server) Close() error {
	close(s.closed)
	err := s.listener.Close()
	s.mu.Lock()
	for jc := range s.conns {
		_ = jc.close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	return err
}

// StatsSnapshot returns the controller's counters and current assignment.
func (s *Server) StatsSnapshot() Stats {
	return s.engine.Stats()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				s.logf("accept: %v", err)
				return
			}
		}
		jc := newJSONConn(conn)
		if s.cfg.ReadTimeout > 0 {
			jc.readTimeout = s.cfg.ReadTimeout
		}
		if s.cfg.WriteTimeout > 0 {
			jc.writeTimeout = s.cfg.WriteTimeout
		}
		s.wg.Add(1)
		go s.handle(jc)
	}
}

func (s *Server) handle(jc *jsonConn) {
	defer s.wg.Done()
	// Register under the same lock that Close sweeps the map with, and
	// re-check the shutdown flag: a connection accepted concurrently
	// with Close could otherwise register after the sweep and leave this
	// goroutine blocked in recv forever.
	s.mu.Lock()
	s.conns[jc] = struct{}{}
	var shuttingDown bool
	select {
	case <-s.closed:
		shuttingDown = true
	default:
	}
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		delete(s.conns, jc)
		s.mu.Unlock()
		_ = jc.close()
	}()
	if shuttingDown {
		return
	}
	var joinedUser = -1
	for {
		msg, err := jc.recv()
		if err != nil {
			// Connection gone (or its read deadline expired): treat as
			// an implicit leave.
			if joinedUser >= 0 {
				s.removeUser(joinedUser, jc)
			}
			return
		}
		switch msg.Type {
		case MsgJoin:
			if s.cfg.Redirect != nil {
				if addr, ok := s.cfg.Redirect(msg.UserID, msg.Rates); ok {
					_ = jc.send(Message{Type: MsgRedirect, UserID: msg.UserID, Addr: addr})
					continue
				}
			}
			if err := s.join(jc, msg); err != nil {
				_ = jc.send(Message{Type: MsgError, Error: err.Error()})
				continue
			}
			joinedUser = msg.UserID
		case MsgUpdate:
			if joinedUser < 0 || msg.UserID != joinedUser {
				_ = jc.send(Message{Type: MsgError, Error: "update before join"})
				continue
			}
			if err := s.update(msg); err != nil {
				_ = jc.send(Message{Type: MsgError, Error: err.Error()})
			}
		case MsgLeave:
			if joinedUser >= 0 {
				s.removeUser(joinedUser, jc)
				joinedUser = -1
			}
			return
		case MsgPing:
			// Keepalive: the read itself refreshed the deadline.
		case MsgStats:
			stats := s.engine.Stats()
			if err := jc.send(Message{Type: MsgStatsReply, Stats: &stats}); err != nil {
				return
			}
		default:
			_ = jc.send(Message{Type: MsgError, Error: fmt.Sprintf("unexpected message %q", msg.Type)})
		}
	}
}

// join admits the agent through the engine and pushes the resulting
// directives (the joining user's own directive included).
func (s *Server) join(jc *jsonConn, msg Message) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	dirs, err := s.engine.Join(msg.UserID, msg.Rates, msg.RSSI)
	if err != nil {
		return err
	}
	s.mu.Lock()
	s.userConns[msg.UserID] = jc
	s.mu.Unlock()
	s.pushDirectives(dirs)
	return nil
}

func (s *Server) update(msg Message) error {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	dirs, err := s.engine.Update(msg.UserID, msg.Rates, msg.RSSI)
	if err != nil {
		return err
	}
	s.pushDirectives(dirs)
	return nil
}

// removeUser drops a departed user from the engine. The connection guard
// prevents a stale handler (e.g. a user ID that re-joined on a new
// connection) from unmapping the live one.
func (s *Server) removeUser(id int, jc *jsonConn) {
	s.opMu.Lock()
	defer s.opMu.Unlock()
	s.mu.Lock()
	if cur, ok := s.userConns[id]; ok && cur == jc {
		delete(s.userConns, id)
	} else if ok {
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	// With ReassignOnLeave policies the departure may rebalance the
	// remaining users; forward those directives like any other.
	if dirs, ok := s.engine.Leave(id); ok && len(dirs) > 0 {
		s.pushDirectives(dirs)
	}
}

// pushDirectives forwards engine directives to the affected agents'
// connections. Callers hold opMu, which keeps pushes in engine order.
//
// A churn burst is coalesced: one pass under s.mu resolves every
// directive's connection, directives sharing a connection are grouped
// (preserving engine order within each), and each connection gets a
// single batched write — one lock round-trip and one flush per
// connection instead of one per directive.
func (s *Server) pushDirectives(dirs []Directive) {
	if len(dirs) == 0 {
		return
	}
	type batch struct {
		jc   *jsonConn
		msgs []Message
	}
	// Directive bursts rarely span many distinct connections relative to
	// their size; a small slice keyed by identity beats a map until the
	// fan-out is genuinely wide.
	batches := make([]batch, 0, 8)
	s.mu.Lock()
	for _, d := range dirs {
		jc := s.userConns[d.UserID]
		if jc == nil {
			continue
		}
		msg := Message{
			Type:          MsgAssociate,
			UserID:        d.UserID,
			Extender:      d.Extender,
			Reassociation: d.Reassociation,
		}
		found := false
		for i := range batches {
			if batches[i].jc == jc {
				batches[i].msgs = append(batches[i].msgs, msg)
				found = true
				break
			}
		}
		if !found {
			batches = append(batches, batch{jc: jc, msgs: []Message{msg}})
		}
	}
	s.mu.Unlock()
	for i := range batches {
		if err := batches[i].jc.sendBatch(batches[i].msgs); err != nil {
			s.logf("push %d directives: %v", len(batches[i].msgs), err)
		}
	}
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logger != nil {
		s.cfg.Logger.Printf(format, args...)
	}
}
