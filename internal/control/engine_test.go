package control

import (
	"errors"
	"strings"
	"testing"

	"github.com/plcwifi/wolt/internal/model"
	"github.com/plcwifi/wolt/internal/strategy"
)

// fig3Engine builds a transport-free engine over the paper's Fig 3
// network (two extenders with PLC capacities 60 and 20 Mbps).
func fig3Engine(t *testing.T, policy string) *Engine {
	t.Helper()
	e, err := NewEngine(EngineConfig{
		PLCCaps:   []float64{60, 20},
		Policy:    policy,
		ModelOpts: model.Options{Redistribute: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// directiveFor returns the directive addressed to the given user, or
// fails the test.
func directiveFor(t *testing.T, dirs []Directive, userID int) Directive {
	t.Helper()
	for _, d := range dirs {
		if d.UserID == userID {
			return d
		}
	}
	t.Fatalf("no directive for user %d in %v", userID, dirs)
	return Directive{}
}

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Error("no capacities: want error")
	}
	if _, err := NewEngine(EngineConfig{PLCCaps: []float64{10, -3}}); err == nil {
		t.Error("negative capacity: want error")
	}
	if _, err := NewEngine(EngineConfig{PLCCaps: []float64{10}, Policy: "bogus"}); err == nil {
		t.Error("unknown policy: want error")
	}
	if _, err := NewEngine(EngineConfig{PLCCaps: []float64{10, 20}, Owned: []int{0, 2}}); err == nil {
		t.Error("owned extender out of range: want error")
	}
	if _, err := NewEngine(EngineConfig{PLCCaps: []float64{10, 20}, Owned: []int{1, 1}}); err == nil {
		t.Error("duplicate owned extender: want error")
	}
}

// TestEngineRegistryNamesAccepted pins the satellite contract that any
// strategy-registry name is a valid policy — the control plane no longer
// has its own closed policy enum.
func TestEngineRegistryNamesAccepted(t *testing.T) {
	for _, name := range []string{"wolt", "wolt-coordinate", "wolt-incremental", "greedy", "selfish", "rssi"} {
		if _, err := NewEngine(EngineConfig{PLCCaps: []float64{60, 20}, Policy: name}); err != nil {
			t.Errorf("policy %q rejected: %v", name, err)
		}
	}
}

// TestEngineFig3Semantics replays the Fig 3 case study directly against
// the engine: user 2's arrival makes WOLT move user 1 to extender 2
// (a reassociation directive) so both PLC links carry traffic.
func TestEngineFig3Semantics(t *testing.T) {
	e := fig3Engine(t, PolicyWOLT)

	dirs, err := e.Join(1, []float64{15, 10}, []float64{-60, -70})
	if err != nil {
		t.Fatal(err)
	}
	d1 := directiveFor(t, dirs, 1)
	if d1.Reassociation {
		t.Error("first join: want initial association, got reassociation")
	}

	dirs, err = e.Join(2, []float64{40, 5}, []float64{-55, -80})
	if err != nil {
		t.Fatal(err)
	}
	d2 := directiveFor(t, dirs, 2)
	if d2.Extender != 0 {
		t.Errorf("user 2 on extender %d, want 0 (the 60 Mbps link)", d2.Extender)
	}
	if ext, _ := e.Extender(1); ext != 1 {
		t.Errorf("user 1 on extender %d, want 1 after WOLT rebalances", ext)
	}

	st := e.Stats()
	if st.Users != 2 || st.Joins != 2 {
		t.Errorf("stats = %+v, want 2 users / 2 joins", st)
	}
	if st.Reassociations == 0 {
		t.Error("want at least one reassociation when user 2 displaces user 1")
	}
}

func TestEngineJoinRejections(t *testing.T) {
	e := fig3Engine(t, PolicyWOLT)
	if _, err := e.Join(1, []float64{15}, nil); err == nil {
		t.Error("short scan report: want error")
	}
	if _, err := e.Join(1, []float64{0, 0}, nil); err == nil ||
		!strings.Contains(err.Error(), "reaches no extender") {
		t.Errorf("unreachable user: got %v, want 'reaches no extender'", err)
	}
	if _, err := e.Join(1, []float64{15, 10}, []float64{-60}); err == nil {
		t.Error("short RSSI vector: want error")
	}
	if _, err := e.Join(1, []float64{15, 10}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Join(1, []float64{15, 10}, nil); err == nil {
		t.Error("duplicate join: want error")
	}
	// A failed join must leave no trace: user 5's rejection does not
	// bump the join counter.
	if _, err := e.Join(5, []float64{0, 0}, nil); err == nil {
		t.Fatal("want rejection")
	}
	if st := e.Stats(); st.Users != 1 || st.Joins != 1 {
		t.Errorf("stats after rejected join = %+v, want 1 user / 1 join", st)
	}
}

func TestEngineLeave(t *testing.T) {
	e := fig3Engine(t, PolicyWOLT)
	if _, ok := e.Leave(1); ok {
		t.Error("leave of unknown user: want false")
	}
	if _, err := e.Join(1, []float64{15, 10}, nil); err != nil {
		t.Fatal(err)
	}
	if _, ok := e.Leave(1); !ok {
		t.Error("leave of joined user: want true")
	}
	if st := e.Stats(); st.Users != 0 || st.Leaves != 1 {
		t.Errorf("stats = %+v, want 0 users / 1 leave", st)
	}
	// The departed user's ID is free for a fresh join.
	if _, err := e.Join(1, []float64{15, 10}, nil); err != nil {
		t.Errorf("rejoin after leave: %v", err)
	}
}

// TestEngineReassignOnLeave: with the anytime policy and
// ReassignOnLeave, a departure triggers a warm re-solve that may
// rebalance the remaining users, and the resulting directives come
// back from Leave. Without the flag, departures stay silent.
func TestEngineReassignOnLeave(t *testing.T) {
	build := func(reassign bool) *Engine {
		e, err := NewEngine(EngineConfig{
			PLCCaps:         []float64{60, 20},
			Policy:          "wolt-hillclimb",
			ModelOpts:       model.Options{Redistribute: true},
			Budget:          strategy.Budget{Probes: 1000},
			ReassignOnLeave: reassign,
		})
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	// Three users crowd extender 0; when user 1 (its strongest) leaves,
	// the repair may shuffle the survivors — and must at minimum run
	// without error and leave a consistent table.
	seed := func(e *Engine) {
		for id, rates := range map[int][]float64{
			1: {50, 1}, 2: {40, 12}, 3: {35, 14},
		} {
			if _, err := e.Join(id, rates, nil); err != nil {
				t.Fatal(err)
			}
		}
	}

	e := build(true)
	seed(e)
	dirs, ok := e.Leave(1)
	if !ok {
		t.Fatal("leave of joined user: want true")
	}
	for _, d := range dirs {
		if d.UserID == 1 {
			t.Errorf("departed user received a directive: %+v", d)
		}
		if got, _ := e.Extender(d.UserID); got != d.Extender {
			t.Errorf("user %d: directive says %d, table says %d", d.UserID, d.Extender, got)
		}
	}
	if st := e.Stats(); st.Users != 2 || st.Leaves != 1 {
		t.Errorf("stats = %+v, want 2 users / 1 leave", st)
	}

	// Default behavior unchanged: no directives on leave.
	e2 := build(false)
	seed(e2)
	if dirs, _ := e2.Leave(1); len(dirs) != 0 {
		t.Errorf("ReassignOnLeave off: got directives %+v", dirs)
	}
}

func TestEngineUpdateSemantics(t *testing.T) {
	t.Run("before join", func(t *testing.T) {
		e := fig3Engine(t, PolicyWOLT)
		if _, err := e.Update(9, []float64{15, 10}, nil); err == nil {
			t.Error("update before join: want error")
		}
	})
	t.Run("wolt reassociates", func(t *testing.T) {
		e := fig3Engine(t, PolicyWOLT)
		if _, err := e.Join(1, []float64{15, 10}, nil); err != nil {
			t.Fatal(err)
		}
		if _, err := e.Join(2, []float64{40, 5}, nil); err != nil {
			t.Fatal(err)
		}
		// User 2's link to extender 1 collapses; WOLT must move it off.
		dirs, err := e.Update(2, []float64{1, 30}, nil)
		if err != nil {
			t.Fatal(err)
		}
		d := directiveFor(t, dirs, 2)
		if d.Extender != 1 || !d.Reassociation {
			t.Errorf("got %+v, want reassociation to extender 1", d)
		}
	})
	t.Run("greedy stays put", func(t *testing.T) {
		e := fig3Engine(t, PolicyGreedy)
		if _, err := e.Join(1, []float64{15, 10}, nil); err != nil {
			t.Fatal(err)
		}
		dirs, err := e.Update(1, []float64{1, 100}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if len(dirs) != 0 {
			t.Errorf("greedy produced directives on update: %v", dirs)
		}
	})
	t.Run("rssi roams the reporting user", func(t *testing.T) {
		e := fig3Engine(t, PolicyRSSI)
		if _, err := e.Join(1, []float64{15, 10}, []float64{-60, -80}); err != nil {
			t.Fatal(err)
		}
		if ext, _ := e.Extender(1); ext != 0 {
			t.Fatalf("user 1 on extender %d, want 0 (strongest signal)", ext)
		}
		dirs, err := e.Update(1, []float64{15, 10}, []float64{-85, -50})
		if err != nil {
			t.Fatal(err)
		}
		d := directiveFor(t, dirs, 1)
		if d.Extender != 1 || !d.Reassociation {
			t.Errorf("got %+v, want roam to extender 1", d)
		}
	})
}

// TestEngineOfflineOnlyPolicy pins the typed-error contract: a policy
// with no online form (the exhaustive "optimal") is accepted by the
// registry but rejects arrivals with strategy.ErrNoOnlineForm.
func TestEngineOfflineOnlyPolicy(t *testing.T) {
	e := fig3Engine(t, "optimal")
	_, err := e.Join(1, []float64{15, 10}, nil)
	if !errors.Is(err, strategy.ErrNoOnlineForm) {
		t.Errorf("got %v, want strategy.ErrNoOnlineForm", err)
	}
	if st := e.Stats(); st.Users != 0 || st.Joins != 0 {
		t.Errorf("failed join left state behind: %+v", st)
	}
}

// TestEngineOwnedSubset exercises the shard-member projection: an engine
// owning only extender 1 of a 3-extender deployment sees global-width
// scans, assigns only its own extender, and reports global IDs.
func TestEngineOwnedSubset(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		PLCCaps: []float64{60, 20, 40},
		Owned:   []int{1},
		Policy:  PolicyWOLT,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The user's best global extender is 0, but this engine only owns 1.
	dirs, err := e.Join(7, []float64{50, 12, 0}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if d := directiveFor(t, dirs, 7); d.Extender != 1 {
		t.Errorf("shard engine assigned global extender %d, want 1", d.Extender)
	}
	// A user reaching only unowned extenders is rejected with the
	// shard-specific message.
	_, err = e.Join(8, []float64{50, 0, 30}, nil)
	if err == nil || !strings.Contains(err.Error(), "owned by this shard") {
		t.Errorf("got %v, want shard-ownership rejection", err)
	}
}

// failingReassigner is a stub strategy whose re-solve always errors.
// Engine tests live in package control, so they can swap it into
// e.strategy to exercise the failure paths no registry strategy hits
// deterministically.
type failingReassigner struct{ err error }

func (f *failingReassigner) Name() string { return "failing" }
func (f *failingReassigner) Solve(*model.Network) (model.Assignment, error) {
	return nil, f.err
}
func (f *failingReassigner) Reassign(*model.Network, model.Assignment) (model.Assignment, error) {
	return nil, f.err
}

// TestEngineUpdateAtomic pins the Update bugfix: a failed re-solve must
// restore the prior scan report, not leave fresh rates with a stale
// assignment. Verified by breaking the strategy, pushing a poisoned
// update, then healing the strategy and checking the next recompute
// still sees the ORIGINAL rates (user stays on extender 0; with the
// poisoned rates committed it would move to extender 1).
func TestEngineUpdateAtomic(t *testing.T) {
	e := fig3Engine(t, PolicyWOLT)
	if _, err := e.Join(1, []float64{50, 10}, nil); err != nil {
		t.Fatal(err)
	}
	if ext, _ := e.Extender(1); ext != 0 {
		t.Fatalf("user 1 on extender %d, want 0", ext)
	}

	healthy := e.strategy
	boom := errors.New("solver exploded")
	e.strategy = &failingReassigner{err: boom}
	if _, err := e.Update(1, []float64{1, 55}, nil); !errors.Is(err, boom) {
		t.Fatalf("poisoned update: got err %v, want %v", err, boom)
	}
	if ext, _ := e.Extender(1); ext != 0 {
		t.Fatalf("failed update moved user to extender %d", ext)
	}

	// Heal the strategy and trigger a recompute via a second user's
	// arrival: if the failed update had committed rates {1, 55}, WOLT
	// would now move user 1 to extender 1. With the rollback it stays.
	e.strategy = healthy
	if _, err := e.Join(2, []float64{40, 20}, nil); err != nil {
		t.Fatal(err)
	}
	if ext, _ := e.Extender(1); ext != 0 {
		t.Errorf("user 1 on extender %d after rollback; poisoned rates leaked into the table", ext)
	}
}

// TestEngineLeaveDroppedReassigns pins the Leave bugfix: a failed
// re-solve under ReassignOnLeave must keep the departure, return no
// directives, and surface the dropped rebalance in Stats.
func TestEngineLeaveDroppedReassigns(t *testing.T) {
	e, err := NewEngine(EngineConfig{
		PLCCaps:         []float64{60, 20},
		Policy:          PolicyWOLT,
		ModelOpts:       model.Options{Redistribute: true},
		ReassignOnLeave: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 1; u <= 3; u++ {
		if _, err := e.Join(u, []float64{30, 25}, nil); err != nil {
			t.Fatal(err)
		}
	}
	e.strategy = &failingReassigner{err: errors.New("solver exploded")}

	dirs, ok := e.Leave(2)
	if !ok {
		t.Fatal("leave of joined user reported not present")
	}
	if len(dirs) != 0 {
		t.Fatalf("failed re-solve returned directives %v", dirs)
	}
	st := e.Stats()
	if st.Users != 2 {
		t.Errorf("users = %d after leave, want 2 (departure must stand)", st.Users)
	}
	if st.DroppedReassigns != 1 {
		t.Errorf("DroppedReassigns = %d, want 1", st.DroppedReassigns)
	}
	if _, present := e.Extender(2); present {
		t.Error("departed user still in table")
	}

	// A healthy leave must not bump the counter.
	e.strategy = nil
	e.cfg.ReassignOnLeave = false
	if _, ok := e.Leave(1); !ok {
		t.Fatal("second leave failed")
	}
	if st := e.Stats(); st.DroppedReassigns != 1 {
		t.Errorf("DroppedReassigns = %d after healthy leave, want 1", st.DroppedReassigns)
	}
}

// TestEngineSteadyStateAllocs pins the memory discipline the city
// harness depends on (DESIGN.md §12): once the user table has seen its
// peak population, a leave + rejoin + update cycle under the anytime
// policy performs O(1) allocations — independent of table size. The
// bound is a small constant (directive slices + solver Result); the
// point of asserting at two population sizes is that it does not grow
// with n.
func TestEngineSteadyStateAllocs(t *testing.T) {
	if testing.Short() {
		t.Skip("allocation counting under -short")
	}
	for _, n := range []int{100, 400} {
		e, err := NewEngine(EngineConfig{
			PLCCaps:         []float64{60, 20, 40, 30},
			Policy:          "wolt-hillclimb",
			ModelOpts:       model.Options{Redistribute: true},
			Budget:          strategy.Budget{Probes: 200},
			ReassignOnLeave: true,
			Seed:            7,
		})
		if err != nil {
			t.Fatal(err)
		}
		rates := make([][]float64, n)
		for u := 0; u < n; u++ {
			rates[u] = []float64{
				20 + float64(u%17),
				15 + float64(u%11),
				25 + float64(u%13),
				10 + float64(u%7),
			}
			if _, err := e.Join(u, rates[u], nil); err != nil {
				t.Fatal(err)
			}
		}
		victim := n / 2
		fresh := []float64{30, 20, 10, 25}
		avg := testing.AllocsPerRun(50, func() {
			if _, ok := e.Leave(victim); !ok {
				t.Fatal("leave failed")
			}
			if _, err := e.Join(victim, rates[victim], nil); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Update(victim, fresh, nil); err != nil {
				t.Fatal(err)
			}
			if _, err := e.Update(victim, rates[victim], nil); err != nil {
				t.Fatal(err)
			}
		})
		// 4 operations, each allowed a handful of allocations (directive
		// slice, solver Result + assignment/trajectory copies). What
		// matters is the bound holds at n=100 AND n=400.
		if avg > 32 {
			t.Errorf("n=%d: %v allocs per churn cycle, want O(1) (<=32)", n, avg)
		}
	}
}

// BenchmarkEngineChurnEvent prices the steady-state per-event path the
// city harness hammers: leave + rejoin + scan update against a warm
// 400-user engine under the anytime policy. AllocsPerOp here is the
// benchmark-asserted face of the O(1)-allocation discipline
// (TestEngineSteadyStateAllocs enforces the bound).
func BenchmarkEngineChurnEvent(b *testing.B) {
	const n = 400
	e, err := NewEngine(EngineConfig{
		PLCCaps:         []float64{60, 20, 40, 30},
		Policy:          "wolt-hillclimb",
		ModelOpts:       model.Options{Redistribute: true},
		Budget:          strategy.Budget{Probes: 200},
		ReassignOnLeave: true,
		Seed:            7,
	})
	if err != nil {
		b.Fatal(err)
	}
	rates := make([][]float64, n)
	for u := 0; u < n; u++ {
		rates[u] = []float64{
			20 + float64(u%17),
			15 + float64(u%11),
			25 + float64(u%13),
			10 + float64(u%7),
		}
		if _, err := e.Join(u, rates[u], nil); err != nil {
			b.Fatal(err)
		}
	}
	victim := n / 2
	fresh := []float64{30, 20, 10, 25}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := e.Leave(victim); !ok {
			b.Fatal("leave failed")
		}
		if _, err := e.Join(victim, rates[victim], nil); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Update(victim, fresh, nil); err != nil {
			b.Fatal(err)
		}
		if _, err := e.Update(victim, rates[victim], nil); err != nil {
			b.Fatal(err)
		}
	}
}
