package control

import (
	"reflect"
	"testing"

	"github.com/plcwifi/wolt/internal/strategy"
)

// placementEngine builds a Fig 3 engine over the anytime hill-climb
// policy with the given placement-only configuration.
func placementEngine(t *testing.T, cfg EngineConfig) *Engine {
	t.Helper()
	cfg.PLCCaps = []float64{60, 20}
	if cfg.Policy == "" {
		cfg.Policy = "wolt-hillclimb"
	}
	e, err := NewEngine(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// fig3Displace replays the Fig 3 arrival pattern: user 1 settles on the
// strong link, then user 2 arrives with rates that make a full re-solve
// want to displace user 1 onto the weaker extender.
func fig3Displace(t *testing.T, e *Engine) []Directive {
	t.Helper()
	if _, err := e.Join(1, []float64{15, 10}, []float64{-60, -70}); err != nil {
		t.Fatal(err)
	}
	dirs, err := e.Join(2, []float64{40, 5}, []float64{-55, -80})
	if err != nil {
		t.Fatal(err)
	}
	return dirs
}

// TestEnginePlacementOnlyJoins pins the join fast path: with
// PlacementOnlyJoins the second arrival is placed by the policy's online
// form — exactly one directive, for the arriving user, and nobody else
// moves.
func TestEnginePlacementOnlyJoins(t *testing.T) {
	// Baseline: the full re-solve path displaces user 1.
	full := placementEngine(t, EngineConfig{})
	dirs := fig3Displace(t, full)
	directiveFor(t, dirs, 2)
	if ext, _ := full.Extender(1); ext != 1 {
		t.Fatalf("full re-solve: user 1 on extender %d, want displaced to 1", ext)
	}

	// Placement-only: user 2 is placed, user 1 stays put.
	po := placementEngine(t, EngineConfig{PlacementOnlyJoins: true})
	dirs = fig3Displace(t, po)
	if len(dirs) != 1 {
		t.Fatalf("placement-only join emitted %d directives %v, want 1", len(dirs), dirs)
	}
	d := directiveFor(t, dirs, 2)
	if d.Reassociation {
		t.Error("arriving user's directive marked as reassociation")
	}
	if ext, _ := po.Extender(1); ext != 0 {
		t.Errorf("placement-only: user 1 moved to extender %d, want untouched on 0", ext)
	}
	if st := po.Stats(); st.Reassociations != 0 {
		t.Errorf("placement-only joins counted %d reassociations, want 0", st.Reassociations)
	}
}

// TestEngineBudgetMovesImpliesPlacementOnly: Budget.Moves < 0 is the §11
// placement-only contract; setting it on the engine config implies
// PlacementOnlyJoins without the explicit flag.
func TestEngineBudgetMovesImpliesPlacementOnly(t *testing.T) {
	e := placementEngine(t, EngineConfig{Budget: strategy.Budget{Moves: -1}})
	if !e.placementJoins {
		t.Fatal("Budget.Moves < 0 did not imply placement-only joins")
	}
	dirs := fig3Displace(t, e)
	if len(dirs) != 1 {
		t.Fatalf("join emitted %d directives %v, want 1", len(dirs), dirs)
	}
	if ext, _ := e.Extender(1); ext != 0 {
		t.Errorf("user 1 moved to extender %d, want untouched on 0", ext)
	}
}

// TestEngineFullResolveEvery: the periodic-repair knob forces the full
// re-solve path on every Nth join, so deferred rebalances still happen.
func TestEngineFullResolveEvery(t *testing.T) {
	e := placementEngine(t, EngineConfig{PlacementOnlyJoins: true, FullResolveEvery: 2})
	// Join #2 is a scheduled full re-solve: user 1 gets displaced just
	// like the unconfigured engine would.
	dirs := fig3Displace(t, e)
	d := directiveFor(t, dirs, 1)
	if !d.Reassociation || d.Extender != 1 {
		t.Errorf("scheduled full re-solve directive for user 1 = %+v, want reassociation to 1", d)
	}
	if ext, _ := e.Extender(1); ext != 1 {
		t.Errorf("user 1 on extender %d, want 1 after the scheduled re-solve", ext)
	}
}

// TestEnginePlacementOnlyUpdatesStillResolve: placement-only applies to
// joins; a scan-report update keeps the full recompute path so drifting
// users are still rebalanced.
func TestEnginePlacementOnlyUpdatesStillResolve(t *testing.T) {
	e := placementEngine(t, EngineConfig{PlacementOnlyJoins: true})
	fig3Displace(t, e)
	if ext, _ := e.Extender(1); ext != 0 {
		t.Fatalf("precondition: user 1 should still sit on extender 0, got %d", ext)
	}
	// User 1 re-reports the same rates; the update-path re-solve now
	// performs the displacement the placement-only joins deferred.
	dirs, err := e.Update(1, []float64{15, 10}, []float64{-60, -70})
	if err != nil {
		t.Fatal(err)
	}
	d := directiveFor(t, dirs, 1)
	if d.Extender != 1 {
		t.Errorf("update-path directive = %+v, want move to extender 1", d)
	}
}

// TestEngineStatsLite pins the counters-only stats form: identical
// counters to Stats, no assignment map allocation.
func TestEngineStatsLite(t *testing.T) {
	e := fig3Engine(t, PolicyWOLT)
	fig3Displace(t, e)
	full, lite := e.Stats(), e.StatsLite()
	if lite.Assignment != nil {
		t.Errorf("StatsLite allocated an assignment map of %d entries", len(lite.Assignment))
	}
	full.Assignment = nil
	if !reflect.DeepEqual(full, lite) {
		t.Errorf("StatsLite counters diverge: %+v vs Stats %+v", lite, full)
	}
}
