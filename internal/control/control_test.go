package control

import (
	"net"
	"strings"
	"testing"
	"time"

	"github.com/plcwifi/wolt/internal/model"
)

const testTimeout = 5 * time.Second

// fig3Server starts a controller managing the paper's Fig 3 network.
func fig3Server(t *testing.T, policy PolicyKind) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps:   []float64{60, 20},
		Policy:    policy,
		ModelOpts: model.Options{Redistribute: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s
}

func dial(t *testing.T, s *Server, userID int) *Agent {
	t.Helper()
	a, err := Dial(s.Addr(), userID)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = a.Close() })
	return a
}

func TestServerValidation(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", ServerConfig{}); err == nil {
		t.Error("no capacities: want error")
	}
	if _, err := NewServer("127.0.0.1:0", ServerConfig{PLCCaps: []float64{0}}); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := NewServer("127.0.0.1:0", ServerConfig{PLCCaps: []float64{10}, Policy: "bogus"}); err == nil {
		t.Error("unknown policy: want error")
	}
}

// TestWOLTFig3EndToEnd drives the Fig 3 case study through real sockets:
// user 1 joins and lands somewhere; when user 2 joins, the WOLT controller
// computes the optimal configuration (user1→ext2, user2→ext1) and pushes a
// re-association to user 1 if needed.
func TestWOLTFig3EndToEnd(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)

	a1 := dial(t, s, 1)
	ext1, err := a1.Join([]float64{15, 10}, []float64{-60, -70}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// Alone, user 1's best utility is extender 0 (min(30,15)=15 > 10).
	if ext1 != 0 {
		t.Errorf("user 1 initially on %d, want 0", ext1)
	}

	a2 := dial(t, s, 2)
	ext2, err := a2.Join([]float64{40, 20}, []float64{-55, -65}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ext2 != 0 {
		t.Errorf("user 2 on %d, want 0", ext2)
	}
	// User 1 must be pushed to extender 1 (the paper's optimal Fig 3d).
	moved, err := a1.WaitForMove(0, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Errorf("user 1 re-associated to %d, want 1", moved)
	}

	stats, err := a2.Stats(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Users != 2 || stats.Joins != 2 {
		t.Errorf("stats = %+v", stats)
	}
	if stats.Reassociations != 1 {
		t.Errorf("reassociations = %d, want 1", stats.Reassociations)
	}
	if stats.Assignment[1] != 1 || stats.Assignment[2] != 0 {
		t.Errorf("assignment = %v, want {1:1, 2:0}", stats.Assignment)
	}
	if stats.Policy != "wolt" {
		t.Errorf("policy = %q", stats.Policy)
	}
}

func TestGreedyPolicyNeverMovesExistingUsers(t *testing.T) {
	s := fig3Server(t, PolicyGreedy)

	a1 := dial(t, s, 1)
	ext1, err := a1.Join([]float64{15, 10}, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ext1 != 0 {
		t.Errorf("user 1 on %d, want 0", ext1)
	}
	a2 := dial(t, s, 2)
	ext2, err := a2.Join([]float64{40, 20}, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Fig 3c greedy outcome: user 2 picks extender 2.
	if ext2 != 1 {
		t.Errorf("user 2 on %d, want 1", ext2)
	}
	stats, err := a1.Stats(testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Reassociations != 0 {
		t.Errorf("greedy reassociated %d users, want 0", stats.Reassociations)
	}
	if a1.Moves() != 0 {
		t.Errorf("user 1 moved %d times under greedy", a1.Moves())
	}
}

func TestRSSIPolicy(t *testing.T) {
	s := fig3Server(t, PolicyRSSI)
	a1 := dial(t, s, 1)
	ext, err := a1.Join([]float64{15, 10}, []float64{-80, -50}, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ext != 1 {
		t.Errorf("RSSI put user on %d, want strongest-signal extender 1", ext)
	}
}

func TestRSSIPolicyFallsBackToRates(t *testing.T) {
	s := fig3Server(t, PolicyRSSI)
	a1 := dial(t, s, 1)
	// No RSSI vector supplied: the controller uses rates as the signal.
	ext, err := a1.Join([]float64{15, 10}, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ext != 0 {
		t.Errorf("RSSI-by-rate put user on %d, want 0", ext)
	}
}

func TestJoinValidation(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{1, 2, 3}, nil, testTimeout); err == nil ||
		!strings.Contains(err.Error(), "extenders") {
		t.Errorf("wrong-width scan accepted: %v", err)
	}
	b := dial(t, s, 2)
	if _, err := b.Join([]float64{0, 0}, nil, testTimeout); err == nil {
		t.Error("unreachable user accepted")
	}
	// A valid join still works after errors on the same connection.
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatalf("valid join after error: %v", err)
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 7)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	b := dial(t, s, 7)
	if _, err := b.Join([]float64{15, 10}, nil, testTimeout); err == nil {
		t.Error("duplicate user ID accepted")
	}
}

func TestLeaveFreesUser(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	if err := a.Leave(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return s.StatsSnapshot().Users == 0 })
	st := s.StatsSnapshot()
	if st.Leaves != 1 {
		t.Errorf("leaves = %d, want 1", st.Leaves)
	}
	// The ID can join again afterwards.
	b := dial(t, s, 1)
	if _, err := b.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestAbruptDisconnectCountsAsLeave(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 3)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	_ = a.Close()
	waitFor(t, func() bool { return s.StatsSnapshot().Users == 0 })
}

func TestManyAgents(t *testing.T) {
	s, err := NewServer("127.0.0.1:0", ServerConfig{
		PLCCaps: []float64{100, 80, 60},
		Policy:  PolicyWOLT,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()

	agents := make([]*Agent, 12)
	for i := range agents {
		a, err := Dial(s.Addr(), i)
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = a.Close() }()
		agents[i] = a
		rates := []float64{
			float64(5 + (i*7)%50),
			float64(5 + (i*13)%50),
			float64(5 + (i*23)%50),
		}
		if _, err := a.Join(rates, nil, testTimeout); err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	st := s.StatsSnapshot()
	if st.Users != 12 || st.Joins != 12 {
		t.Errorf("stats = %+v", st)
	}
	// Every user ends up associated somewhere valid.
	for id, ext := range st.Assignment {
		if ext < 0 || ext > 2 {
			t.Errorf("user %d on invalid extender %d", id, ext)
		}
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(testTimeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached before timeout")
}

func TestUpdateScanWOLTReassociates(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 1)
	ext, err := a.Join([]float64{15, 10}, nil, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if ext != 0 {
		t.Fatalf("initial extender %d, want 0", ext)
	}
	// The user walked: now its only good link is extender 1.
	if err := a.UpdateScan([]float64{1, 50}, nil); err != nil {
		t.Fatal(err)
	}
	moved, err := a.WaitForMove(0, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Errorf("re-associated to %d, want 1", moved)
	}
	waitFor(t, func() bool { return s.StatsSnapshot().Reassociations == 1 })
}

func TestUpdateScanRSSIRoams(t *testing.T) {
	s := fig3Server(t, PolicyRSSI)
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{15, 10}, []float64{-50, -80}, testTimeout); err != nil {
		t.Fatal(err)
	}
	if a.Extender() != 0 {
		t.Fatalf("initial extender %d, want 0", a.Extender())
	}
	// Signal flipped: extender 1 now strongest.
	if err := a.UpdateScan([]float64{15, 10}, []float64{-80, -50}); err != nil {
		t.Fatal(err)
	}
	moved, err := a.WaitForMove(0, testTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if moved != 1 {
		t.Errorf("roamed to %d, want 1", moved)
	}
}

func TestUpdateScanGreedyStaysPut(t *testing.T) {
	s := fig3Server(t, PolicyGreedy)
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	if err := a.UpdateScan([]float64{1, 50}, nil); err != nil {
		t.Fatal(err)
	}
	// Greedy never reassigns: allow the server a moment, then confirm.
	time.Sleep(100 * time.Millisecond)
	if a.Extender() != 0 {
		t.Errorf("greedy moved the user to %d", a.Extender())
	}
	if a.Moves() != 0 {
		t.Errorf("greedy issued %d moves", a.Moves())
	}
}

func TestUpdateBeforeJoinRejected(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	conn, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	jc := newJSONConn(conn)
	if err := jc.send(Message{Type: MsgUpdate, UserID: 5, Rates: []float64{15, 10}}); err != nil {
		t.Fatal(err)
	}
	msg, err := jc.recv()
	if err != nil {
		t.Fatal(err)
	}
	if msg.Type != MsgError {
		t.Errorf("reply = %q, want error", msg.Type)
	}
}

func TestUpdateScanValidation(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	// Wrong-width update is rejected but the session survives.
	if err := a.UpdateScan([]float64{15}, nil); err != nil {
		t.Fatal(err)
	}
	// Unreachable update rejected too.
	if err := a.UpdateScan([]float64{0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond)
	if a.Extender() != 0 {
		t.Errorf("bad updates moved the user to %d", a.Extender())
	}
	// A valid update still works afterwards.
	if err := a.UpdateScan([]float64{1, 50}, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WaitForMove(0, testTimeout); err != nil {
		t.Fatal(err)
	}
}

func TestAgentErrSurfacesAsyncRejections(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	if a.Err() != nil {
		t.Fatalf("unexpected early error: %v", a.Err())
	}
	if err := a.UpdateScan([]float64{0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, func() bool { return a.Err() != nil })
	if !strings.Contains(a.Err().Error(), "reaches no extender") {
		t.Errorf("err = %v", a.Err())
	}
}

func TestWaitForMoveTimeout(t *testing.T) {
	s := fig3Server(t, PolicyWOLT)
	a := dial(t, s, 1)
	if _, err := a.Join([]float64{15, 10}, nil, testTimeout); err != nil {
		t.Fatal(err)
	}
	if _, err := a.WaitForMove(a.Extender(), 100*time.Millisecond); err == nil {
		t.Error("want timeout error when nothing moves")
	}
}

// TestOfflineOnlyPolicySurfacesTypedError checks the controller never
// silently falls back when its policy has no online form: joining under
// the exhaustive "optimal" strategy must fail with the typed sentinel's
// message rather than hand the user an arbitrary extender.
func TestOfflineOnlyPolicySurfacesTypedError(t *testing.T) {
	s := fig3Server(t, PolicyKind("optimal"))
	a := dial(t, s, 1)
	_, err := a.Join([]float64{15, 10}, nil, testTimeout)
	if err == nil {
		t.Fatal("join under an offline-only policy should fail")
	}
	if !strings.Contains(err.Error(), "no online form") {
		t.Errorf("join error = %q, want the no-online-form sentinel surfaced", err)
	}
	if !strings.Contains(err.Error(), "optimal") {
		t.Errorf("join error = %q, want the policy named", err)
	}
}
