// Package mac80211 is a slot-level simulator of the 802.11 DCF MAC
// (CSMA/CA with binary exponential backoff) for saturated downlink
// stations sharing one WiFi cell.
//
// Its purpose in this repository is to demonstrate — from MAC first
// principles rather than by assumption — the sharing behaviour the paper
// measures in §III-A (Fig 2a): 802.11 is *throughput-fair*. Every station
// wins the channel equally often, and since every frame carries the same
// payload, all stations end up with the same throughput; a station with a
// poor PHY rate occupies the medium longer per frame and thereby drags
// every station's throughput down (the Heusse et al. performance
// anomaly).
package mac80211

import (
	"fmt"
	"math/rand"
)

// Params are the MAC/PHY constants of the simulated cell.
type Params struct {
	// SlotTime is the backoff slot duration in seconds (9 µs for OFDM).
	SlotTime float64
	// OverheadPerFrame is the fixed per-frame duration in seconds not
	// spent on payload bits: PHY preamble, SIFS, ACK and DIFS.
	OverheadPerFrame float64
	// PayloadBytes is the (fixed) frame payload; 802.11 frames carry the
	// same payload regardless of PHY rate, which is what makes the MAC
	// throughput-fair.
	PayloadBytes int
	// CWMin and CWMax bound the contention window (16 and 1024 for DCF).
	CWMin int
	CWMax int
}

// DefaultParams returns 802.11g-like constants.
func DefaultParams() Params {
	return Params{
		SlotTime:         9e-6,
		OverheadPerFrame: 150e-6,
		PayloadBytes:     1500,
		CWMin:            16,
		CWMax:            1024,
	}
}

func (p Params) validate() error {
	if p.SlotTime <= 0 || p.OverheadPerFrame < 0 {
		return fmt.Errorf("mac80211: bad timing params %+v", p)
	}
	if p.PayloadBytes <= 0 {
		return fmt.Errorf("mac80211: non-positive payload %d", p.PayloadBytes)
	}
	if p.CWMin < 1 || p.CWMax < p.CWMin {
		return fmt.Errorf("mac80211: bad CW range [%d,%d]", p.CWMin, p.CWMax)
	}
	return nil
}

// StationStats is the per-station outcome of a simulation.
type StationStats struct {
	RateMbps       float64
	Successes      int
	Collisions     int
	AirtimeSec     float64 // time spent in successful transmissions
	ThroughputMbps float64
}

// Result is the outcome of a cell simulation.
type Result struct {
	Stations      []StationStats
	DurationSec   float64
	AggregateMbps float64
	// CollisionRate is collisions / (collisions + successes) over all
	// transmission attempts.
	CollisionRate float64
}

type station struct {
	rate    float64 // Mbps
	backoff int
	cw      int
	stats   StationStats
}

// Simulate runs a saturated cell of stations with the given PHY rates for
// the given simulated duration. rng drives the backoff draws.
func Simulate(ratesMbps []float64, duration float64, params Params, rng *rand.Rand) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(ratesMbps) == 0 {
		return nil, fmt.Errorf("mac80211: no stations")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("mac80211: non-positive duration %v", duration)
	}
	if rng == nil {
		return nil, fmt.Errorf("mac80211: nil rng")
	}
	stations := make([]*station, len(ratesMbps))
	for i, r := range ratesMbps {
		if r <= 0 {
			return nil, fmt.Errorf("mac80211: station %d has non-positive rate %v", i, r)
		}
		stations[i] = &station{
			rate:    r,
			cw:      params.CWMin,
			backoff: rng.Intn(params.CWMin),
			stats:   StationStats{RateMbps: r},
		}
	}

	payloadBits := float64(params.PayloadBytes) * 8
	frameTime := func(s *station) float64 {
		return payloadBits/(s.rate*1e6) + params.OverheadPerFrame
	}

	var (
		now        float64
		collisions int
		successes  int
	)
	for now < duration {
		// Advance through idle slots until the minimum backoff expires.
		minBackoff := stations[0].backoff
		for _, s := range stations[1:] {
			if s.backoff < minBackoff {
				minBackoff = s.backoff
			}
		}
		now += float64(minBackoff) * params.SlotTime
		if now >= duration {
			break
		}

		var winners []*station
		for _, s := range stations {
			s.backoff -= minBackoff
			if s.backoff == 0 {
				winners = append(winners, s)
			}
		}

		if len(winners) == 1 {
			s := winners[0]
			ft := frameTime(s)
			now += ft
			s.stats.Successes++
			s.stats.AirtimeSec += ft
			s.cw = params.CWMin
			s.backoff = 1 + rng.Intn(s.cw)
			successes++
			continue
		}
		// Collision: the medium is busy for the longest colliding frame;
		// every collider doubles its window and redraws.
		var busy float64
		for _, s := range winners {
			if ft := frameTime(s); ft > busy {
				busy = ft
			}
			s.stats.Collisions++
			s.cw *= 2
			if s.cw > params.CWMax {
				s.cw = params.CWMax
			}
			s.backoff = 1 + rng.Intn(s.cw)
			collisions++
		}
		now += busy
	}

	res := &Result{
		Stations:    make([]StationStats, len(stations)),
		DurationSec: now,
	}
	for i, s := range stations {
		s.stats.ThroughputMbps = float64(s.stats.Successes) * payloadBits / (now * 1e6)
		res.Stations[i] = s.stats
		res.AggregateMbps += s.stats.ThroughputMbps
	}
	if attempts := collisions + successes; attempts > 0 {
		res.CollisionRate = float64(collisions) / float64(attempts)
	}
	return res, nil
}
