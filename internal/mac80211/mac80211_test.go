package mac80211

import (
	"math"
	"math/rand"
	"testing"
)

func simulate(t *testing.T, rates []float64, seed int64) *Result {
	t.Helper()
	res, err := Simulate(rates, 20, DefaultParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(nil, 1, DefaultParams(), rng); err == nil {
		t.Error("no stations: want error")
	}
	if _, err := Simulate([]float64{54}, 0, DefaultParams(), rng); err == nil {
		t.Error("zero duration: want error")
	}
	if _, err := Simulate([]float64{0}, 1, DefaultParams(), rng); err == nil {
		t.Error("zero rate: want error")
	}
	if _, err := Simulate([]float64{54}, 1, DefaultParams(), nil); err == nil {
		t.Error("nil rng: want error")
	}
	bad := DefaultParams()
	bad.CWMax = 1
	if _, err := Simulate([]float64{54}, 1, bad, rng); err == nil {
		t.Error("bad CW range: want error")
	}
	bad = DefaultParams()
	bad.PayloadBytes = 0
	if _, err := Simulate([]float64{54}, 1, bad, rng); err == nil {
		t.Error("zero payload: want error")
	}
	bad = DefaultParams()
	bad.SlotTime = 0
	if _, err := Simulate([]float64{54}, 1, bad, rng); err == nil {
		t.Error("zero slot: want error")
	}
}

func TestSingleStationNearLinkRate(t *testing.T) {
	// A lone 54 Mbps station should achieve payload/(frame time) with no
	// contention losses beyond backoff idles.
	res := simulate(t, []float64{54}, 1)
	p := DefaultParams()
	payloadBits := float64(p.PayloadBytes) * 8
	perFrame := payloadBits/54e6 + p.OverheadPerFrame
	upper := payloadBits / (perFrame * 1e6)
	if res.AggregateMbps > upper {
		t.Errorf("throughput %v exceeds physical bound %v", res.AggregateMbps, upper)
	}
	// Mean backoff idle (~8.5 slots of 9 µs) against a 372 µs frame costs
	// about 17%, so 80% of the no-idle bound is the expected floor.
	if res.AggregateMbps < 0.8*upper {
		t.Errorf("lone station throughput %v below 80%% of bound %v", res.AggregateMbps, upper)
	}
	if res.CollisionRate != 0 {
		t.Errorf("lone station collided: rate %v", res.CollisionRate)
	}
}

func TestThroughputFairSharing(t *testing.T) {
	// Fig 2a behaviour: equal-rate stations split the cell equally, and
	// mixed-rate stations still receive (nearly) identical throughputs.
	tests := []struct {
		name  string
		rates []float64
	}{
		{name: "two equal", rates: []float64{54, 54}},
		{name: "fast and slow", rates: []float64{54, 6}},
		{name: "three mixed", rates: []float64{54, 24, 6}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res := simulate(t, tt.rates, 2)
			base := res.Stations[0].ThroughputMbps
			for i, s := range res.Stations {
				if rel := math.Abs(s.ThroughputMbps-base) / base; rel > 0.05 {
					t.Errorf("station %d throughput %v deviates %.1f%% from station 0's %v",
						i, s.ThroughputMbps, rel*100, base)
				}
			}
		})
	}
}

func TestPerformanceAnomaly(t *testing.T) {
	// The paper's Fig 2a narrative: moving one client far away (6 Mbps)
	// hurts the stationary 54 Mbps client too.
	alone := simulate(t, []float64{54, 54}, 3)
	fastWithSlow := simulate(t, []float64{54, 6}, 3)
	fastBefore := alone.Stations[0].ThroughputMbps
	fastAfter := fastWithSlow.Stations[0].ThroughputMbps
	if fastAfter >= fastBefore {
		t.Errorf("fast station unaffected by slow peer: %v -> %v", fastBefore, fastAfter)
	}
	// The drop should be drastic (the slow frame dominates airtime).
	if fastAfter > 0.5*fastBefore {
		t.Errorf("anomaly too weak: %v -> %v", fastBefore, fastAfter)
	}
	// Aggregate should be close to the analytic throughput-fair form,
	// modulo MAC overhead: 2/(1/54+1/6) = 10.8 Mbps is an upper bound.
	analytic := 2 / (1.0/54 + 1.0/6)
	if fastWithSlow.AggregateMbps > analytic {
		t.Errorf("aggregate %v exceeds analytic bound %v", fastWithSlow.AggregateMbps, analytic)
	}
	if fastWithSlow.AggregateMbps < 0.6*analytic {
		t.Errorf("aggregate %v below 60%% of analytic %v", fastWithSlow.AggregateMbps, analytic)
	}
}

func TestAnomalyMatchesHarmonicModel(t *testing.T) {
	// The flow-level model the optimizer uses (WiFiAggregate) tracks what
	// the MAC delivers up to per-frame overhead. The overhead is a fixed
	// duration per frame, so its relative cost shrinks as frames get
	// longer (slower rates): efficiency vs the analytic form should grow
	// monotonically from ~0.5 (two fast stations) towards ~0.85 (fast +
	// very slow) and always stay within (0.45, 1].
	mixes := [][]float64{
		{54, 54},
		{54, 24},
		{54, 12},
		{54, 6},
	}
	prevEff := 0.0
	for _, rates := range mixes {
		res := simulate(t, rates, 4)
		var invSum float64
		for _, r := range rates {
			invSum += 1 / r
		}
		analytic := float64(len(rates)) / invSum
		eff := res.AggregateMbps / analytic
		if eff < 0.45 || eff > 1.0 {
			t.Errorf("rates %v: MAC efficiency %v outside [0.45,1.0] (sim %v analytic %v)",
				rates, eff, res.AggregateMbps, analytic)
		}
		if eff < prevEff {
			t.Errorf("rates %v: efficiency %v decreased from %v", rates, eff, prevEff)
		}
		prevEff = eff
	}
}

func TestMoreStationsMoreCollisions(t *testing.T) {
	few := simulate(t, []float64{54, 54}, 5)
	many := simulate(t, []float64{54, 54, 54, 54, 54, 54, 54, 54}, 5)
	if many.CollisionRate <= few.CollisionRate {
		t.Errorf("collision rate did not grow with stations: %v -> %v",
			few.CollisionRate, many.CollisionRate)
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := simulate(t, []float64{54, 24, 6}, 42)
	b := simulate(t, []float64{54, 24, 6}, 42)
	for i := range a.Stations {
		if a.Stations[i] != b.Stations[i] {
			t.Fatalf("station %d differs across identical seeds", i)
		}
	}
}

func TestStatsConsistency(t *testing.T) {
	res := simulate(t, []float64{54, 12}, 6)
	var agg float64
	for _, s := range res.Stations {
		if s.Successes < 0 || s.AirtimeSec < 0 {
			t.Errorf("negative stats: %+v", s)
		}
		agg += s.ThroughputMbps
	}
	if math.Abs(agg-res.AggregateMbps) > 1e-9 {
		t.Errorf("aggregate %v != sum of stations %v", res.AggregateMbps, agg)
	}
	if res.DurationSec < 20 {
		t.Errorf("simulation ended early at %v", res.DurationSec)
	}
}
