package mac1901

import (
	"math"
	"math/rand"
	"testing"
)

func simulate(t *testing.T, caps []float64, seed int64) *Result {
	t.Helper()
	res, err := Simulate(caps, 60, DefaultParams(), rand.New(rand.NewSource(seed)))
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := Simulate(nil, 1, DefaultParams(), rng); err == nil {
		t.Error("no stations: want error")
	}
	if _, err := Simulate([]float64{100}, 0, DefaultParams(), rng); err == nil {
		t.Error("zero duration: want error")
	}
	if _, err := Simulate([]float64{0}, 1, DefaultParams(), rng); err == nil {
		t.Error("zero capacity: want error")
	}
	if _, err := Simulate([]float64{100}, 1, DefaultParams(), nil); err == nil {
		t.Error("nil rng: want error")
	}
	bad := DefaultParams()
	bad.PPDUDuration = 0
	if _, err := Simulate([]float64{100}, 1, bad, rng); err == nil {
		t.Error("zero PPDU: want error")
	}
	if _, err := SimulateTDMA(nil, 1, DefaultParams()); err == nil {
		t.Error("TDMA no stations: want error")
	}
	if _, err := SimulateTDMA([]float64{100}, 0, DefaultParams()); err == nil {
		t.Error("TDMA zero duration: want error")
	}
	if _, err := SimulateTDMA([]float64{0}, 1, DefaultParams()); err == nil {
		t.Error("TDMA zero capacity: want error")
	}
}

func TestIsolationThroughputNearCapacity(t *testing.T) {
	// Fig 2b behaviour: a lone extender sustains (nearly) its isolation
	// capacity; only inter-frame overhead and backoff idles are lost.
	for _, c := range []float64{60, 100, 160} {
		res := simulate(t, []float64{c}, 2)
		if res.AggregateMbps > c {
			t.Errorf("capacity %v: throughput %v exceeds capacity", c, res.AggregateMbps)
		}
		if res.AggregateMbps < 0.8*c {
			t.Errorf("capacity %v: lone throughput %v below 80%% of capacity", c, res.AggregateMbps)
		}
	}
}

// TestTimeFairSharing is the package's reason to exist: with A saturated
// extenders, each obtains ≈1/A of the successful airtime and thus
// ≈c_j/A throughput (the paper's Fig 2c). Fairness is measured against
// the busy time — the remainder of the wall clock is backoff idle,
// inter-frame overhead and collisions, which belong to no station.
func TestTimeFairSharing(t *testing.T) {
	caps := []float64{160, 120, 90, 60}
	for active := 1; active <= 4; active++ {
		res := simulate(t, caps[:active], 3)
		var busy float64
		for _, s := range res.Stations {
			busy += s.AirtimeSec
		}
		// The medium should be productively occupied most of the time.
		if frac := busy / res.DurationSec; frac < 0.7 || frac > 0.95 {
			t.Errorf("A=%d: busy fraction %v outside [0.7,0.95]", active, frac)
		}
		fairShare := 1.0 / float64(active)
		for j, s := range res.Stations {
			share := s.AirtimeSec / busy
			if rel := math.Abs(share-fairShare) / fairShare; rel > 0.1 {
				t.Errorf("A=%d extender %d busy-time share %v deviates %.0f%% from 1/%d",
					active, j, share, rel*100, active)
			}
			// Throughput tracks c_j × airtime share.
			wantTp := caps[j] * s.AirtimeShare
			if math.Abs(s.ThroughputMbps-wantTp) > 1e-9 {
				t.Errorf("A=%d extender %d throughput %v, want %v",
					active, j, s.ThroughputMbps, wantTp)
			}
		}
	}
}

func TestHalvesThirdsQuarters(t *testing.T) {
	// The paper's Fig 2c narrative: with 2/3/4 active extenders each
	// delivers 1/2, 1/3, 1/4 of its isolation throughput.
	caps := []float64{160, 120, 90, 60}
	solo := make([]float64, len(caps))
	for j, c := range caps {
		res := simulate(t, []float64{c}, int64(10+j))
		solo[j] = res.AggregateMbps
	}
	for active := 2; active <= 4; active++ {
		res := simulate(t, caps[:active], int64(20+active))
		for j := 0; j < active; j++ {
			want := solo[j] / float64(active)
			got := res.Stations[j].ThroughputMbps
			if rel := math.Abs(got-want) / want; rel > 0.2 {
				t.Errorf("A=%d extender %d: throughput %v, want ≈ solo/%d = %v (%.0f%% off)",
					active, j, got, active, want, rel*100)
			}
		}
	}
}

func TestBetterLinkStillGetsMoreThroughput(t *testing.T) {
	// Time-fair sharing preserves the capacity ordering: with equal
	// airtime, the 160 Mbps link outperforms the 60 Mbps link.
	res := simulate(t, []float64{160, 60}, 4)
	if res.Stations[0].ThroughputMbps <= res.Stations[1].ThroughputMbps {
		t.Errorf("capacity ordering lost: %v vs %v",
			res.Stations[0].ThroughputMbps, res.Stations[1].ThroughputMbps)
	}
	ratio := res.Stations[0].ThroughputMbps / res.Stations[1].ThroughputMbps
	if math.Abs(ratio-160.0/60.0) > 0.5 {
		t.Errorf("throughput ratio %v far from capacity ratio %v", ratio, 160.0/60.0)
	}
}

func TestDeferralCounterEngages(t *testing.T) {
	// With several contenders the 1901 deferral mechanism must fire; it
	// is the distinguishing feature vs 802.11.
	res := simulate(t, []float64{100, 100, 100, 100}, 5)
	totalDeferrals := 0
	for _, s := range res.Stations {
		totalDeferrals += s.Deferrals
	}
	if totalDeferrals == 0 {
		t.Error("deferral counter never engaged with 4 contenders")
	}
}

func TestTDMAExactShares(t *testing.T) {
	caps := []float64{160, 120, 90}
	res, err := SimulateTDMA(caps, 30, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if res.CollisionRate != 0 {
		t.Errorf("TDMA collision rate %v, want 0", res.CollisionRate)
	}
	// Round-robin grants: success counts differ by at most one.
	minS, maxS := res.Stations[0].Successes, res.Stations[0].Successes
	for _, s := range res.Stations[1:] {
		if s.Successes < minS {
			minS = s.Successes
		}
		if s.Successes > maxS {
			maxS = s.Successes
		}
	}
	if maxS-minS > 1 {
		t.Errorf("TDMA grants uneven: min %d max %d", minS, maxS)
	}
	for j, s := range res.Stations {
		want := caps[j] * s.AirtimeShare
		if math.Abs(s.ThroughputMbps-want) > 1e-9 {
			t.Errorf("TDMA extender %d throughput %v, want %v", j, s.ThroughputMbps, want)
		}
	}
}

func TestCSMAAndTDMAAgreeOnShares(t *testing.T) {
	// Both access modes should deliver time-fair sharing; TDMA exactly,
	// CSMA statistically.
	caps := []float64{140, 70}
	csma := simulate(t, caps, 6)
	tdma, err := SimulateTDMA(caps, 60, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	for j := range caps {
		diff := math.Abs(csma.Stations[j].AirtimeShare - tdma.Stations[j].AirtimeShare)
		if diff > 0.1 {
			t.Errorf("extender %d: CSMA share %v vs TDMA share %v",
				j, csma.Stations[j].AirtimeShare, tdma.Stations[j].AirtimeShare)
		}
	}
}

func TestDeterministicPerSeed(t *testing.T) {
	a := simulate(t, []float64{120, 80}, 42)
	b := simulate(t, []float64{120, 80}, 42)
	for i := range a.Stations {
		if a.Stations[i] != b.Stations[i] {
			t.Fatalf("station %d differs across identical seeds", i)
		}
	}
}

func TestPriorityValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := SimulateWithPriorities([]float64{100}, []Priority{CA1, CA1}, 1, DefaultParams(), rng); err == nil {
		t.Error("length mismatch: want error")
	}
	if _, err := SimulateWithPriorities([]float64{100}, []Priority{Priority(9)}, 1, DefaultParams(), rng); err == nil {
		t.Error("invalid priority: want error")
	}
}

func TestStrictPriorityStarvesLowerClasses(t *testing.T) {
	// Saturated CA3 and CA1 stations: priority resolution gives the CA3
	// stations the whole medium — the standard's strict-priority
	// behaviour (and the reason the QoS planner uses TDMA slots).
	res, err := SimulateWithPriorities(
		[]float64{100, 100, 100},
		[]Priority{CA3, CA1, CA1},
		30, DefaultParams(), rand.New(rand.NewSource(2)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stations[0].ThroughputMbps < 70 {
		t.Errorf("CA3 station got %v Mbps, want near-full medium", res.Stations[0].ThroughputMbps)
	}
	for i := 1; i < 3; i++ {
		if res.Stations[i].ThroughputMbps != 0 {
			t.Errorf("CA1 station %d got %v Mbps under saturation, want 0",
				i, res.Stations[i].ThroughputMbps)
		}
	}
}

func TestEqualHighPrioritySharesTimeFairly(t *testing.T) {
	// Two CA3 stations behave like the base simulation: time-fair split.
	res, err := SimulateWithPriorities(
		[]float64{160, 60},
		[]Priority{CA3, CA3},
		60, DefaultParams(), rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	var busy float64
	for _, s := range res.Stations {
		busy += s.AirtimeSec
	}
	for j, s := range res.Stations {
		share := s.AirtimeSec / busy
		if math.Abs(share-0.5) > 0.06 {
			t.Errorf("CA3 station %d busy-time share %v, want ≈0.5", j, share)
		}
	}
}

func TestCA0DefaultsMatchSimulate(t *testing.T) {
	caps := []float64{120, 80}
	a, err := Simulate(caps, 20, DefaultParams(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := SimulateWithPriorities(caps, []Priority{CA1, CA1}, 20, DefaultParams(), rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Stations {
		if a.Stations[i] != b.Stations[i] {
			t.Fatalf("station %d differs between Simulate and explicit CA1", i)
		}
	}
}

func TestPrioritySchedules(t *testing.T) {
	if &CA0.schedule()[0] != &ca1Schedule[0] || &CA1.schedule()[0] != &ca1Schedule[0] {
		t.Error("CA0/CA1 should use the CA0/CA1 schedule")
	}
	if &CA2.schedule()[0] != &ca3Schedule[0] || &CA3.schedule()[0] != &ca3Schedule[0] {
		t.Error("CA2/CA3 should use the CA2/CA3 schedule")
	}
}
