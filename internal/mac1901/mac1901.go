// Package mac1901 is a slot-level simulator of the IEEE 1901 (HomePlug AV)
// MAC used on the PLC backhaul, in both of the standard's access modes:
//
//   - CSMA/CA with the 1901-specific deferral counter: on sensing the
//     medium busy with an exhausted deferral counter, a station behaves as
//     if it had collided — it advances its backoff stage and redraws —
//     which is the main difference from 802.11 DCF (Vlachou et al.).
//
//   - TDMA: the central coordinator grants fixed time slots round-robin.
//
// The key behaviour this simulator demonstrates (the paper's Fig 2c) is
// that PLC sharing is *time-fair*: a HomePlug PPDU occupies a bounded,
// rate-independent duration and carries payload proportional to the
// link's PHY rate, so each of A saturated extenders obtains ≈1/A of the
// medium time and therefore ≈ c_j/A throughput — unlike 802.11's
// throughput-fair sharing.
package mac1901

import (
	"fmt"
	"math/rand"
)

// stage is one row of the 1901 backoff schedule: contention window and
// initial deferral counter per backoff procedure counter (BPC) value.
type stage struct {
	cw int
	dc int
}

// Priority is an IEEE 1901 channel-access priority class. The standard
// defines four (CA0 lowest … CA3 highest) grouped into two backoff
// schedules; before contention, priority resolution slots let higher
// classes silence lower ones.
type Priority int

// The standard's channel-access classes.
const (
	CA0 Priority = iota
	CA1
	CA2
	CA3
)

// ca1Schedule is the standard's CA0/CA1 backoff schedule.
var ca1Schedule = []stage{
	{cw: 8, dc: 0},
	{cw: 16, dc: 1},
	{cw: 32, dc: 3},
	{cw: 64, dc: 15},
}

// ca3Schedule is the standard's CA2/CA3 backoff schedule: tighter
// windows, so high-priority traffic contends more aggressively.
var ca3Schedule = []stage{
	{cw: 8, dc: 0},
	{cw: 16, dc: 1},
	{cw: 16, dc: 3},
	{cw: 32, dc: 15},
}

// schedule returns the backoff schedule of a priority class.
func (p Priority) schedule() []stage {
	if p >= CA2 {
		return ca3Schedule
	}
	return ca1Schedule
}

// Params are the MAC/PHY constants of the simulated PLC segment.
type Params struct {
	// SlotTime is the contention slot duration in seconds (35.84 µs).
	SlotTime float64
	// PPDUDuration is the fixed frame duration in seconds. HomePlug AV
	// bounds a PPDU to ~2.5 ms regardless of PHY rate; the payload
	// carried scales with the rate, which is what yields time-fairness.
	PPDUDuration float64
	// OverheadPerFrame is the fixed inter-frame duration in seconds
	// (priority resolution slots, RIFS, SACK).
	OverheadPerFrame float64
}

// DefaultParams returns HomePlug-AV-like constants.
func DefaultParams() Params {
	return Params{
		SlotTime:         35.84e-6,
		PPDUDuration:     2.5e-3,
		OverheadPerFrame: 190e-6,
	}
}

func (p Params) validate() error {
	if p.SlotTime <= 0 || p.PPDUDuration <= 0 || p.OverheadPerFrame < 0 {
		return fmt.Errorf("mac1901: bad params %+v", p)
	}
	return nil
}

// StationStats is the per-extender outcome of a simulation.
type StationStats struct {
	// CapacityMbps is the extender's isolation capacity c_j: the goodput
	// its PLC link sustains while it holds the medium.
	CapacityMbps float64
	Successes    int
	Collisions   int
	// Deferrals counts busy observations that exhausted the deferral
	// counter (1901's virtual collisions).
	Deferrals      int
	AirtimeSec     float64
	AirtimeShare   float64
	ThroughputMbps float64
}

// Result is the outcome of a PLC segment simulation.
type Result struct {
	Stations      []StationStats
	DurationSec   float64
	AggregateMbps float64
	CollisionRate float64
}

type station struct {
	capacity float64
	priority Priority
	sched    []stage
	bpc      int // backoff procedure counter (stage index)
	dc       int
	backoff  int
	stats    StationStats
}

func (s *station) redraw(rng *rand.Rand) {
	st := s.sched[s.bpc]
	s.dc = st.dc
	s.backoff = 1 + rng.Intn(st.cw)
}

func (s *station) advanceStage(rng *rand.Rand) {
	if s.bpc < len(s.sched)-1 {
		s.bpc++
	}
	s.redraw(rng)
}

// Simulate runs saturated extenders with the given isolation capacities
// (Mbps) over the simulated duration in CSMA/CA mode, all at priority
// CA1 (the best-effort default).
func Simulate(capacitiesMbps []float64, duration float64, params Params, rng *rand.Rand) (*Result, error) {
	priorities := make([]Priority, len(capacitiesMbps))
	for i := range priorities {
		priorities[i] = CA1
	}
	return SimulateWithPriorities(capacitiesMbps, priorities, duration, params, rng)
}

// SimulateWithPriorities runs saturated extenders with per-station IEEE
// 1901 channel-access classes. Priority resolution precedes contention:
// in every round only the highest backlogged class contends, so under
// saturation strict priority starves lower classes — the standard's
// documented behaviour, and the reason the QoS planner (internal/qos)
// admits guarantees onto TDMA slots instead.
func SimulateWithPriorities(capacitiesMbps []float64, priorities []Priority, duration float64, params Params, rng *rand.Rand) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(capacitiesMbps) == 0 {
		return nil, fmt.Errorf("mac1901: no stations")
	}
	if len(priorities) != len(capacitiesMbps) {
		return nil, fmt.Errorf("mac1901: %d priorities for %d stations",
			len(priorities), len(capacitiesMbps))
	}
	if duration <= 0 {
		return nil, fmt.Errorf("mac1901: non-positive duration %v", duration)
	}
	if rng == nil {
		return nil, fmt.Errorf("mac1901: nil rng")
	}
	maxPrio := priorities[0]
	stations := make([]*station, len(capacitiesMbps))
	for i, c := range capacitiesMbps {
		if c <= 0 {
			return nil, fmt.Errorf("mac1901: station %d has non-positive capacity %v", i, c)
		}
		if priorities[i] < CA0 || priorities[i] > CA3 {
			return nil, fmt.Errorf("mac1901: station %d has invalid priority %d", i, priorities[i])
		}
		if priorities[i] > maxPrio {
			maxPrio = priorities[i]
		}
		stations[i] = &station{
			capacity: c,
			priority: priorities[i],
			sched:    priorities[i].schedule(),
			stats:    StationStats{CapacityMbps: c},
		}
		stations[i].redraw(rng)
	}
	// Under saturation, priority resolution admits only the highest
	// class to every contention round.
	var contenders []*station
	for _, s := range stations {
		if s.priority == maxPrio {
			contenders = append(contenders, s)
		}
	}

	var (
		now        float64
		collisions int
		successes  int
	)
	busyFrame := params.PPDUDuration + params.OverheadPerFrame
	for now < duration {
		minBackoff := contenders[0].backoff
		for _, s := range contenders[1:] {
			if s.backoff < minBackoff {
				minBackoff = s.backoff
			}
		}
		now += float64(minBackoff) * params.SlotTime
		if now >= duration {
			break
		}

		var winners []*station
		for _, s := range contenders {
			s.backoff -= minBackoff
			if s.backoff == 0 {
				winners = append(winners, s)
			}
		}

		if len(winners) == 1 {
			w := winners[0]
			now += busyFrame
			w.stats.Successes++
			w.stats.AirtimeSec += params.PPDUDuration
			w.bpc = 0
			w.redraw(rng)
			successes++
			// 1901 deferral behaviour: every station that saw the busy
			// medium consumes its deferral counter; at zero it reacts
			// like a collision (advance stage, redraw) — the standard's
			// mechanism for de-synchronizing contenders.
			for _, s := range contenders {
				if s == w {
					continue
				}
				if s.dc == 0 {
					s.stats.Deferrals++
					s.advanceStage(rng)
				} else {
					s.dc--
				}
			}
			continue
		}
		// Real collision: the medium is busy for one PPDU, colliders
		// advance their stage.
		now += busyFrame
		for _, s := range winners {
			s.stats.Collisions++
			s.advanceStage(rng)
			collisions++
		}
		for _, s := range contenders {
			if s.backoff == 0 {
				continue // collider, already handled
			}
			if s.dc == 0 {
				s.stats.Deferrals++
				s.advanceStage(rng)
			} else {
				s.dc--
			}
		}
	}

	return finish(stations, now, params, collisions, successes), nil
}

// SimulateTDMA runs the same extenders under the coordinator-scheduled
// TDMA mode: fixed PPDU grants handed out round-robin. Sharing is
// time-fair by construction; this is the QoS mode of the standard.
func SimulateTDMA(capacitiesMbps []float64, duration float64, params Params) (*Result, error) {
	if err := params.validate(); err != nil {
		return nil, err
	}
	if len(capacitiesMbps) == 0 {
		return nil, fmt.Errorf("mac1901: no stations")
	}
	if duration <= 0 {
		return nil, fmt.Errorf("mac1901: non-positive duration %v", duration)
	}
	stations := make([]*station, len(capacitiesMbps))
	for i, c := range capacitiesMbps {
		if c <= 0 {
			return nil, fmt.Errorf("mac1901: station %d has non-positive capacity %v", i, c)
		}
		stations[i] = &station{capacity: c, stats: StationStats{CapacityMbps: c}}
	}
	var now float64
	grant := params.PPDUDuration + params.OverheadPerFrame
	for i := 0; now+grant <= duration; i = (i + 1) % len(stations) {
		s := stations[i]
		s.stats.Successes++
		s.stats.AirtimeSec += params.PPDUDuration
		now += grant
	}
	if now == 0 {
		now = duration
	}
	return finish(stations, now, params, 0, 0), nil
}

func finish(stations []*station, now float64, params Params, collisions, successes int) *Result {
	res := &Result{
		Stations:    make([]StationStats, len(stations)),
		DurationSec: now,
	}
	for i, s := range stations {
		// Payload carried per PPDU is capacity × PPDU duration.
		deliveredMbit := s.capacity * s.stats.AirtimeSec
		s.stats.ThroughputMbps = deliveredMbit / now
		s.stats.AirtimeShare = s.stats.AirtimeSec / now
		res.Stations[i] = s.stats
		res.AggregateMbps += s.stats.ThroughputMbps
	}
	if attempts := collisions + successes; attempts > 0 {
		res.CollisionRate = float64(collisions) / float64(attempts)
	}
	return res
}
