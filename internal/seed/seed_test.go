package seed

import (
	"fmt"
	"testing"
)

func TestDeriveIsPure(t *testing.T) {
	a := Derive(2020, Fig4Trial, 17)
	b := Derive(2020, Fig4Trial, 17)
	if a != b {
		t.Fatalf("Derive not deterministic: %d vs %d", a, b)
	}
}

// TestDeriveInjectiveWithinStream exercises the in-stream guarantee:
// for a fixed (base, stream), distinct indices yield distinct seeds.
func TestDeriveInjectiveWithinStream(t *testing.T) {
	const n = 200000
	seen := make(map[int64]int64, n)
	for i := int64(0); i < n; i++ {
		s := Derive(2020, NetsimTrial, i)
		if prev, ok := seen[s]; ok {
			t.Fatalf("indices %d and %d collide on seed %d", prev, i, s)
		}
		seen[s] = i
	}
}

// TestDeriveStreamsDoNotCollideNearby reproduces the failure mode of the
// old additive scheme (seed+j vs seed+100+active overlapped for nearby
// offsets) and asserts the deriver keeps every pair of streams disjoint
// across a generous window of small indices.
func TestDeriveStreamsDoNotCollideNearby(t *testing.T) {
	streams := []Stream{
		NetsimTrial, NetsimPositions, SweepPoint, SweepTrial,
		Fig2aLocation, Fig2bLines, Fig2cSolo, Fig2cShared,
		Fig4Trial, ClaimsFig5Trial, ChannelsTrial, QoSTrial,
		NPHardTrial, GapTrial,
	}
	const window = 1024
	seen := make(map[int64]string, len(streams)*window)
	for _, st := range streams {
		for i := int64(0); i < window; i++ {
			s := Derive(2020, st, i)
			if prev, ok := seen[s]; ok {
				t.Fatalf("stream %d index %d collides with %s on seed %d", st, i, prev, s)
			}
			seen[s] = fmt.Sprintf("stream %d index %d", st, i)
		}
	}
}

// TestOldAdditiveSchemeCollides documents why the deriver exists: under
// seed+k arithmetic the Fig2c shared stream (seed+100+active) lands on
// the same integers as a solo stream shifted by 100, i.e. the streams
// are literally equal, not merely correlated.
func TestOldAdditiveSchemeCollides(t *testing.T) {
	base := int64(2020)
	soloSeed := func(j int64) int64 { return base + j }
	sharedSeed := func(active int64) int64 { return base + 100 + active }
	if soloSeed(103) != sharedSeed(3) {
		t.Fatal("premise broken: additive streams should overlap")
	}
	if Derive(base, Fig2cSolo, 103) == Derive(base, Fig2cShared, 3) {
		t.Fatal("derived streams collide where the additive scheme did")
	}
}

func TestDeriveDependsOnEveryArgument(t *testing.T) {
	ref := Derive(1, NetsimTrial, 0)
	if Derive(2, NetsimTrial, 0) == ref {
		t.Error("base ignored")
	}
	if Derive(1, NetsimPositions, 0) == ref {
		t.Error("stream ignored")
	}
	if Derive(1, NetsimTrial, 1) == ref {
		t.Error("index ignored")
	}
}
