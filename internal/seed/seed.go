// Package seed derives collision-free pseudorandom seed streams from a
// single experiment seed.
//
// The repo's determinism contract (DESIGN.md §7) requires every unit of
// parallel work — a trial, a grid cell, a MAC run — to seed its
// randomness as a pure function of its indices, never of scheduling.
// The original additive convention (seed+trial, seed+100+active,
// seed+pi*1000+trial) satisfies purity but not independence: distinct
// logical streams land on overlapping integers, so "trial 103 of stream
// A" and "trial 3 of stream B" silently share one RNG sequence and the
// averaged results correlate. This is the classic sequential-seeding
// pitfall that splittable generators were designed to eliminate (Steele,
// Lea & Flood, "Fast Splittable Pseudorandom Number Generators",
// OOPSLA 2014).
//
// Derive replaces all of that arithmetic with a SplitMix64-style keyed
// hash: each (stream, index) pair is absorbed through two rounds of the
// SplitMix64 finalizer. Within one (base, stream) pair the map
// index → seed is a bijection composed with a fixed permutation, so two
// distinct indices of the same stream can never collide; seeds of
// different streams are decorrelated by the avalanche of the finalizer
// (any colliding pair would be a 64-bit hash collision, not a
// small-offset accident).
package seed

import "math/rand"

// Stream identifies one logical consumer of randomness. Every
// experiment driver that derives per-index seeds owns a distinct
// constant, so no two drivers can ever share an RNG sequence, no matter
// how their index ranges overlap.
type Stream uint64

const (
	// streamZero is deliberately unused: a zero-valued Stream in a call
	// site is almost always a forgotten argument.
	streamZero Stream = iota

	// NetsimTrial seeds trial t's topology in netsim.RunStatic.
	NetsimTrial
	// NetsimPositions seeds arrival placement in netsim.RunDynamic.
	NetsimPositions
	// SweepPoint and SweepTrial nest: point pi's sub-base is
	// Derive(seed, SweepPoint, pi), and trial t of that point seeds with
	// Derive(sub-base, SweepTrial, t).
	SweepPoint
	SweepTrial
	// Fig2aLocation seeds the per-location 802.11 MAC runs of Fig 2a.
	Fig2aLocation
	// Fig2bLines seeds the PLC line synthesis and probe noise of Fig 2b.
	Fig2bLines
	// Fig2cSolo and Fig2cShared seed the solo-extender and shared-medium
	// IEEE 1901 MAC runs of Fig 2c (formerly seed+j vs seed+100+active,
	// which collide for nearby offsets).
	Fig2cSolo
	Fig2cShared
	// Fig4Trial seeds the emulated-testbed topologies of Fig 4.
	Fig4Trial
	// ClaimsFig5Trial seeds the model-replay topologies behind the
	// fig5-tradeoff claim check.
	ClaimsFig5Trial
	// ChannelsTrial seeds the channel-scarcity ablation topologies.
	ChannelsTrial
	// QoSTrial seeds the guaranteed-rate ablation topologies.
	QoSTrial
	// NPHardTrial seeds the random PARTITION instances of Theorem 1.
	NPHardTrial
	// GapTrial seeds the small brute-force optimality-gap instances.
	GapTrial
	// StrategyRand seeds a strategy instance's private randomness
	// (internal/strategy; e.g. the random baseline's draws).
	StrategyRand
	// ShardRing seeds the virtual-node positions of the consistent-hash
	// ring (internal/shard); the index packs (member, vnode) as
	// member*vnodes+vnode.
	ShardRing
	// ShardKey seeds the per-extender key hashes looked up on the ring.
	ShardKey
	// ShardEngine seeds shard member engines' policy randomness, indexed
	// by member ID.
	ShardEngine
	// ShardTrial seeds the per-unit topologies of the shard experiment.
	ShardTrial
	// DeltaFuzz seeds the random instances and move sequences of the
	// delta-vs-full differential fuzz harness (internal/model).
	DeltaFuzz
	// DeltaBench seeds the networks and probe schedules of the
	// delta-evaluation benchmarks behind BENCH_delta.json.
	DeltaBench
	// LocalSearchFuzz seeds the random instances, start assignments and
	// perturbations of the local-search differential harness
	// (internal/localsearch).
	LocalSearchFuzz
	// AnytimeBench seeds the churn perturbations of the warm re-solve
	// benchmarks behind BENCH_anytime.json.
	AnytimeBench
	// CityTrace seeds a city run's churn trace (internal/city via
	// internal/workload).
	CityTrace
	// CityUser roots a city user's private sub-hierarchy: the user's base
	// is Derive(citySeed, CityUser, userID) and its scalar draws come
	// from the CityDraw stream under that base.
	CityUser
	// CityDraw indexes a city user's successive scalar draws (position,
	// roam steps) under its CityUser base — a counter-mode stream, so a
	// million users don't need a million live *rand.Rand states.
	CityDraw
	// CityExtender seeds per-extender deployment draws (PLC capacities),
	// indexed by extender ID.
	CityExtender
	// CityTrial seeds the per-trial city runs of the woltsim experiment.
	CityTrial
)

// golden is the SplitMix64 increment, the odd integer closest to
// 2^64/φ; multiplying by it is a bijection on uint64 that spreads
// consecutive inputs across the word.
const golden = 0x9e3779b97f4a7c15

// mix64 is the SplitMix64 output finalizer (a bijection on uint64 with
// full avalanche).
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Derive returns the seed of element index within the given stream,
// rooted at base. It is a pure function of its three arguments, and for
// a fixed (base, stream) it is injective in index: two elements of one
// stream never share a seed.
func Derive(base int64, stream Stream, index int64) int64 {
	z := mix64(uint64(base) + golden)
	z = mix64(z + golden*uint64(stream))
	z = mix64(z + golden*uint64(index))
	return int64(z)
}

// Rand returns a generator seeded with Derive(base, stream, index). It
// is the only sanctioned way to construct a *rand.Rand for a derived
// stream: scripts/lint-seeds.sh rejects direct rand.New(rand.NewSource(
// calls outside this package, so call sites cannot silently bypass the
// stream scheme.
func Rand(base int64, stream Stream, index int64) *rand.Rand {
	return rand.New(rand.NewSource(Derive(base, stream, index)))
}

// Root returns a generator seeded directly with s, for the package
// roots of a seed hierarchy (topology generation, churn traces, walker
// fleets) whose seed is itself already a derived or user-chosen value.
func Root(s int64) *rand.Rand {
	return rand.New(rand.NewSource(s))
}
