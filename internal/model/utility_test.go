package model

import (
	"math"
	"testing"
)

func TestUtilityConstructors(t *testing.T) {
	if u := AlphaFair(math.Inf(1)); !u.MaxMin {
		t.Errorf("AlphaFair(+Inf) = %v, want max-min", u)
	}
	if u := AlphaFair(-3); u != (Utility{}) {
		t.Errorf("AlphaFair(-3) = %v, want sum-rate (clamped)", u)
	}
	if u := (Utility{}); !u.IsSumRate() {
		t.Error("zero Utility must be sum-rate")
	}
	if SumRate().IsSumRate() != true || ProportionalFairness().IsSumRate() || MaxMinFairness().IsSumRate() {
		t.Error("IsSumRate misclassifies the named members")
	}
	// Comparable value semantics: equal parameters compare equal, so
	// DeltaEval.Matches' opts != opts check keys on the family.
	if AlphaFair(1) != ProportionalFairness() || MaxMinFairness() != AlphaFair(math.Inf(1)) {
		t.Error("equal utility members must compare ==")
	}
}

func TestUtilityString(t *testing.T) {
	cases := []struct {
		u    Utility
		want string
	}{
		{Utility{}, "sumrate"},
		{AlphaFair(1), "pf"},
		{MaxMinFairness(), "maxmin"},
		{AlphaFair(2), "alpha=2"},
		{AlphaFair(0.5), "alpha=0.5"},
	}
	for _, c := range cases {
		if got := c.u.String(); got != c.want {
			t.Errorf("%#v.String() = %q, want %q", c.u, got, c.want)
		}
	}
}

func TestUtilityPerUser(t *testing.T) {
	if got := (Utility{}).PerUser(7.5); got != 7.5 {
		t.Errorf("sum-rate PerUser(7.5) = %v", got)
	}
	if got := MaxMinFairness().PerUser(7.5); got != 7.5 {
		t.Errorf("max-min PerUser(7.5) = %v", got)
	}
	if got := AlphaFair(1).PerUser(math.E); math.Abs(got-1) > 1e-15 {
		t.Errorf("pf PerUser(e) = %v, want 1", got)
	}
	if got := AlphaFair(2).PerUser(4); got != -0.25 {
		t.Errorf("alpha=2 PerUser(4) = %v, want -0.25", got)
	}
	// General α agrees with the α=2 fast path.
	want := math.Pow(4, -1) / (1 - 2)
	if got := AlphaFair(2).PerUser(4); got != want {
		t.Errorf("alpha=2 fast path %v != closed form %v", got, want)
	}
	if got := AlphaFair(0.5).PerUser(9); math.Abs(got-6) > 1e-12 {
		t.Errorf("alpha=0.5 PerUser(9) = %v, want 6", got)
	}
	// Zero-throughput edge: −∞ for α ≥ 1, 0 below it.
	if got := AlphaFair(1).PerUser(0); !math.IsInf(got, -1) {
		t.Errorf("pf PerUser(0) = %v, want -Inf", got)
	}
	if got := AlphaFair(3).PerUser(0); !math.IsInf(got, -1) {
		t.Errorf("alpha=3 PerUser(0) = %v, want -Inf", got)
	}
	if got := AlphaFair(0.5).PerUser(0); got != 0 {
		t.Errorf("alpha=0.5 PerUser(0) = %v, want 0", got)
	}
}

func TestUtilityCellUtility(t *testing.T) {
	// The α=0 fast path must return perExt itself — not n·(perExt/n),
	// whose floating-point round trip would break sum-rate bit-identity.
	per := 56.25000000000001
	if got := (Utility{}).CellUtility(3, per); got != per {
		t.Errorf("sum-rate CellUtility = %v, want the exact perExt %v", got, per)
	}
	if got := (Utility{}).CellUtility(0, 5); got != 0 {
		t.Errorf("empty cell CellUtility = %v, want 0", got)
	}
	want := 4 * math.Log(20.0/4)
	if got := AlphaFair(1).CellUtility(4, 20); got != want {
		t.Errorf("pf CellUtility(4, 20) = %v, want %v", got, want)
	}
}

func TestUtilityDeficit(t *testing.T) {
	if got := (Utility{}).Deficit(50, 30); got != 20 {
		t.Errorf("sum-rate Deficit = %v, want 20", got)
	}
	if got := MaxMinFairness().Deficit(50, 30); got != 20 {
		t.Errorf("max-min Deficit = %v, want 20", got)
	}
	if got := AlphaFair(1).Deficit(50, 0); !math.IsInf(got, 1) {
		t.Errorf("pf Deficit(best, 0) = %v, want +Inf", got)
	}
	want := math.Log(50.0) - math.Log(30.0)
	if got := AlphaFair(1).Deficit(50, 30); got != want {
		t.Errorf("pf Deficit = %v, want %v", got, want)
	}
}

func TestScoreLexicographic(t *testing.T) {
	a := Score{Primary: 2, Tie: 1}
	b := Score{Primary: 1, Tie: 100}
	if !a.Better(b) || b.Better(a) {
		t.Error("Primary must dominate Tie")
	}
	c := Score{Primary: 2, Tie: 3}
	if !c.Better(a) || a.Better(c) {
		t.Error("equal Primary must fall through to Tie")
	}
	if a.Better(a) {
		t.Error("Better must be strict")
	}

	// BetterEps: primary wins by > eps, loses by > eps, or ties within
	// eps and the tie-break decides.
	eps := 1e-12
	if !(Score{Primary: 1 + 2*eps, Tie: 0}).BetterEps(Score{Primary: 1, Tie: 100}, eps) {
		t.Error("primary win by > eps must dominate")
	}
	if (Score{Primary: 1 - 2*eps, Tie: 100}).BetterEps(Score{Primary: 1, Tie: 0}, eps) {
		t.Error("primary loss by > eps must lose")
	}
	if !(Score{Primary: 1, Tie: 1}).BetterEps(Score{Primary: 1, Tie: 0.5}, eps) {
		t.Error("primary tie must fall through to tie-break")
	}
	// Sum-rate reduction: when Primary == Tie, BetterEps is exactly the
	// old aggregate comparison agg > best+eps.
	for _, pair := range [][2]float64{{5, 5}, {5, 5 + 2e-12}, {5 + 2e-12, 5}, {5, 5 + 1e-13}} {
		s := Score{Primary: pair[0], Tie: pair[0]}
		o := Score{Primary: pair[1], Tie: pair[1]}
		if got, want := s.BetterEps(o, eps), pair[0] > pair[1]+eps; got != want {
			t.Errorf("sum-rate BetterEps(%v, %v) = %v, want %v", pair[0], pair[1], got, want)
		}
	}
}

// maxMinInstance is the hand-checked 3-user network where max-min and
// sum-rate disagree: u0 and u1 reach only extender 0 (rate 100); u2
// reaches extender 0 at rate 30 and extender 1 at rate 5. PLC capacity
// never binds.
//
// With u2 on extender 0 ("A-join"): the cell's demand is
// 3/(1/100+1/100+1/30) = 56.25, so everyone gets 18.75 — aggregate
// 56.25, min share 18.75. With u2 alone on extender 1 ("B-join"):
// cell 0 delivers 100 (50 each), cell 1 delivers 5 — aggregate 105,
// min share 5. Sum-rate prefers B-join (105 > 56.25); max-min prefers
// A-join (18.75 > 5).
func maxMinInstance() (*Network, Assignment, Assignment) {
	n := &Network{
		WiFiRates: [][]float64{
			{100, 0},
			{100, 0},
			{30, 5},
		},
		PLCCaps: []float64{1000, 1000},
	}
	aJoin := Assignment{0, 0, 0}
	bJoin := Assignment{0, 0, 1}
	return n, aJoin, bJoin
}

func TestMaxMinDisagreesWithSumRate(t *testing.T) {
	n, aJoin, bJoin := maxMinInstance()
	opts := Options{Redistribute: true}

	sumA, err := Evaluate(n, aJoin, opts)
	if err != nil {
		t.Fatal(err)
	}
	sumB, err := Evaluate(n, bJoin, opts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sumA.Aggregate-56.25) > 1e-9 || math.Abs(sumB.Aggregate-105) > 1e-9 {
		t.Fatalf("aggregates = %v, %v; want 56.25, 105", sumA.Aggregate, sumB.Aggregate)
	}
	if sumA.Utility != sumA.Aggregate || sumB.Utility != sumB.Aggregate {
		t.Fatal("sum-rate utility must equal the aggregate")
	}

	mmOpts := opts
	mmOpts.Utility = MaxMinFairness()
	mmARes, err := Evaluate(n, aJoin, mmOpts)
	if err != nil {
		t.Fatal(err)
	}
	mmBRes, err := Evaluate(n, bJoin, mmOpts)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(mmARes.Utility-18.75) > 1e-9 || math.Abs(mmBRes.Utility-5) > 1e-9 {
		t.Fatalf("max-min utilities = %v, %v; want 18.75, 5", mmARes.Utility, mmBRes.Utility)
	}

	// The two objectives pick opposite optima on the same instance.
	if !sumB.Score().Better(sumA.Score()) {
		t.Error("sum-rate must prefer B-join")
	}
	if !mmARes.Score().Better(mmBRes.Score()) {
		t.Error("max-min must prefer A-join")
	}
}

func TestUtilityOverEmptyActive(t *testing.T) {
	if got := utilityOver(MaxMinFairness(), nil, nil, nil); got != 0 {
		t.Errorf("max-min utility of empty active set = %v, want 0", got)
	}
	if got := utilityOver(AlphaFair(1), nil, nil, nil); got != 0 {
		t.Errorf("pf utility of empty active set = %v, want 0", got)
	}
}
