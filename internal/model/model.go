// Package model implements the paper's throughput model for concatenated
// PLC+WiFi links (§III–§IV):
//
//   - WiFi cells are throughput-fair (802.11): every user associated with
//     an extender receives the same long-term throughput, and the cell's
//     aggregate is the harmonic form T_WiFi = |N| / Σ_i 1/r_i (eq. 1).
//
//   - The PLC backhaul is time-fair across active extenders (IEEE 1901):
//     each of the A active extenders nominally owns 1/A of the medium time,
//     so T_PLC_j = c_j / A (eq. 2). An extender whose WiFi side demands
//     less than its time share leaves time unused, and that leftover time
//     is re-distributed among the extenders that can still use it (§III-B,
//     observed in the paper's Fig 3c greedy case study). The
//     redistribution is exactly max-min fair water-filling in the time
//     domain.
//
//   - The end-to-end throughput of an extender is the minimum of its two
//     segments, min(T_WiFi_j, T_PLC_j) (objective (3)).
package model

import (
	"errors"
	"fmt"
)

// Unassigned marks a user that is not associated with any extender.
const Unassigned = -1

// Network is the static input of the association problem: the WiFi PHY
// rate matrix r_ij and the PLC isolation capacities c_j.
type Network struct {
	// WiFiRates[i][j] is the WiFi PHY rate (Mbps) of user i when
	// connected to extender j. A non-positive entry means user i cannot
	// reach extender j.
	WiFiRates [][]float64
	// PLCCaps[j] is the PLC isolation capacity c_j (Mbps) of extender j.
	PLCCaps []float64
}

// NumUsers returns |U|.
func (n *Network) NumUsers() int { return len(n.WiFiRates) }

// NumExtenders returns |A|.
func (n *Network) NumExtenders() int { return len(n.PLCCaps) }

// Validate checks structural consistency of the network.
func (n *Network) Validate() error {
	if n.NumExtenders() == 0 {
		return errors.New("model: network has no extenders")
	}
	for j, c := range n.PLCCaps {
		if c <= 0 {
			return fmt.Errorf("model: extender %d has non-positive PLC capacity %v", j, c)
		}
	}
	for i, row := range n.WiFiRates {
		if len(row) != n.NumExtenders() {
			return fmt.Errorf("model: user %d has %d rate entries, want %d",
				i, len(row), n.NumExtenders())
		}
	}
	return nil
}

// Assignment maps each user index to an extender index (or Unassigned).
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	return append(Assignment(nil), a...)
}

// NumAssigned returns the number of users with an extender.
func (a Assignment) NumAssigned() int {
	n := 0
	for _, j := range a {
		if j != Unassigned {
			n++
		}
	}
	return n
}

// Groups partitions user indices by extender. The result has numExtenders
// slices; unassigned users are omitted.
func (a Assignment) Groups(numExtenders int) [][]int {
	groups := make([][]int, numExtenders)
	for i, j := range a {
		if j == Unassigned {
			continue
		}
		groups[j] = append(groups[j], i)
	}
	return groups
}

// Diff returns the number of users whose extender differs between a and b.
// Users appearing in only one assignment (longer slice) count as changed if
// assigned there.
func (a Assignment) Diff(b Assignment) int {
	changed := 0
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	for i := range short {
		if short[i] != long[i] {
			changed++
		}
	}
	for _, j := range long[len(short):] {
		if j != Unassigned {
			changed++
		}
	}
	return changed
}

// WiFiAggregate returns the throughput-fair aggregate WiFi throughput of a
// cell whose users have the given PHY rates (eq. 1):
//
//	T_WiFi = n / Σ_i (1/r_i)
//
// The aggregate is the harmonic mean of the user rates times the user
// count divided by n — i.e. n times the per-user share 1/Σ(1/r_i). Zero
// users yield zero. Non-positive rates yield zero (unusable cell).
func WiFiAggregate(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var invSum float64
	for _, r := range rates {
		if r <= 0 {
			return 0
		}
		invSum += 1 / r
	}
	return float64(len(rates)) / invSum
}

// Options selects the PLC sharing behaviour during evaluation.
type Options struct {
	// Redistribute enables leftover-time water-filling: time unused by
	// extenders whose WiFi demand is below their fair share is handed to
	// extenders that can use it. This matches the measured behaviour of
	// commodity extenders (§III-B) and is on in all evaluation paths. With
	// it off, each active extender is capped at exactly c_j/A, matching
	// the conservative analytic model used inside the optimization
	// (constraint (4)).
	Redistribute bool
	// FixedShare makes every plugged-in extender count towards the PLC
	// time split (A = |all extenders|), whether or not it serves users —
	// the literal reading of Problem 1's constraint (4), where the single
	// PLC contention domain spans every extender. With Redistribute on
	// this is indistinguishable from active-only sharing (idle extenders
	// have zero demand and release their time); the combination
	// FixedShare=true, Redistribute=false is the paper's pure analytic
	// model.
	FixedShare bool
}

// Result is the evaluated throughput of an assignment.
type Result struct {
	// PerUser[i] is user i's end-to-end throughput (0 if unassigned).
	PerUser []float64
	// PerExtender[j] is extender j's delivered end-to-end throughput.
	PerExtender []float64
	// WiFiDemand[j] is T_WiFi_j, the WiFi-side aggregate demand.
	WiFiDemand []float64
	// TimeShare[j] is the fraction of PLC medium time extender j uses.
	TimeShare []float64
	// Aggregate is the total end-to-end network throughput (objective 3).
	Aggregate float64
	// ActiveExtenders is A, the number of extenders with at least one
	// associated user.
	ActiveExtenders int
}

// Evaluate computes the end-to-end throughputs of an assignment under the
// PLC+WiFi sharing model.
func Evaluate(n *Network, a Assignment, opts Options) (*Result, error) {
	if err := n.Validate(); err != nil {
		return nil, err
	}
	if len(a) != n.NumUsers() {
		return nil, fmt.Errorf("model: assignment covers %d users, network has %d",
			len(a), n.NumUsers())
	}
	numExt := n.NumExtenders()
	for i, j := range a {
		if j == Unassigned {
			continue
		}
		if j < 0 || j >= numExt {
			return nil, fmt.Errorf("model: user %d assigned to invalid extender %d", i, j)
		}
		if n.WiFiRates[i][j] <= 0 {
			return nil, fmt.Errorf("model: user %d assigned to unreachable extender %d", i, j)
		}
	}

	groups := a.Groups(numExt)
	res := &Result{
		PerUser:     make([]float64, n.NumUsers()),
		PerExtender: make([]float64, numExt),
		WiFiDemand:  make([]float64, numExt),
		TimeShare:   make([]float64, numExt),
	}

	var active []int
	for j, group := range groups {
		if len(group) == 0 {
			continue
		}
		rates := make([]float64, len(group))
		for k, i := range group {
			rates[k] = n.WiFiRates[i][j]
		}
		res.WiFiDemand[j] = WiFiAggregate(rates)
		active = append(active, j)
	}
	res.ActiveExtenders = len(active)
	if len(active) == 0 {
		return res, nil
	}

	contenders := len(active)
	if opts.FixedShare {
		contenders = numExt
	}
	if opts.Redistribute {
		// Required time fraction to carry the full WiFi demand. Under
		// FixedShare the idle extenders participate with zero demand,
		// which the water-filling immediately hands back, so only the
		// active set needs to be filled.
		need := make([]float64, len(active))
		for k, j := range active {
			need[k] = res.WiFiDemand[j] / n.PLCCaps[j]
		}
		shares := waterFillTime(need)
		for k, j := range active {
			res.TimeShare[j] = shares[k]
			res.PerExtender[j] = minf(res.WiFiDemand[j], shares[k]*n.PLCCaps[j])
		}
	} else {
		fair := 1 / float64(contenders)
		for _, j := range active {
			res.TimeShare[j] = fair
			res.PerExtender[j] = minf(res.WiFiDemand[j], fair*n.PLCCaps[j])
		}
	}

	for _, j := range active {
		share := res.PerExtender[j] / float64(len(groups[j]))
		for _, i := range groups[j] {
			res.PerUser[i] = share
		}
		res.Aggregate += res.PerExtender[j]
	}
	return res, nil
}

// Aggregate is a convenience wrapper returning only the total throughput
// of an assignment; it returns 0 on evaluation errors.
func Aggregate(n *Network, a Assignment, opts Options) float64 {
	res, err := Evaluate(n, a, opts)
	if err != nil {
		return 0
	}
	return res.Aggregate
}

// ObjectiveBasic evaluates the analytic objective (3) with the constraint
// (4) PLC model (no redistribution): Σ_j min(T_WiFi_j, c_j/A). It is the
// quantity WOLT's Phase I utilities bound.
func ObjectiveBasic(n *Network, a Assignment) (float64, error) {
	res, err := Evaluate(n, a, Options{Redistribute: false})
	if err != nil {
		return 0, err
	}
	return res.Aggregate, nil
}

// waterFillTime allocates one unit of medium time max-min fairly across
// demands: each entry of need is the time fraction that flow wants; flows
// wanting less than the progressive fair share are satisfied exactly and
// their leftover is re-divided among the rest.
func waterFillTime(need []float64) []float64 {
	shares := make([]float64, len(need))
	satisfied := make([]bool, len(need))
	remainingTime := 1.0
	remainingFlows := len(need)
	for remainingFlows > 0 {
		fair := remainingTime / float64(remainingFlows)
		progressed := false
		for k := range need {
			if satisfied[k] {
				continue
			}
			if need[k] <= fair {
				shares[k] = need[k]
				satisfied[k] = true
				remainingTime -= need[k]
				remainingFlows--
				progressed = true
			}
		}
		if !progressed {
			// All remaining flows want more than the fair share:
			// split the rest equally.
			for k := range need {
				if !satisfied[k] {
					shares[k] = fair
				}
			}
			return shares
		}
	}
	return shares
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
