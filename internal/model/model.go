// Package model implements the paper's throughput model for concatenated
// PLC+WiFi links (§III–§IV):
//
//   - WiFi cells are throughput-fair (802.11): every user associated with
//     an extender receives the same long-term throughput, and the cell's
//     aggregate is the harmonic form T_WiFi = |N| / Σ_i 1/r_i (eq. 1).
//
//   - The PLC backhaul is time-fair across active extenders (IEEE 1901):
//     each of the A active extenders nominally owns 1/A of the medium time,
//     so T_PLC_j = c_j / A (eq. 2). An extender whose WiFi side demands
//     less than its time share leaves time unused, and that leftover time
//     is re-distributed among the extenders that can still use it (§III-B,
//     observed in the paper's Fig 3c greedy case study). The
//     redistribution is exactly max-min fair water-filling in the time
//     domain.
//
//   - The end-to-end throughput of an extender is the minimum of its two
//     segments, min(T_WiFi_j, T_PLC_j) (objective (3)).
package model

import (
	"errors"
	"fmt"
)

// Unassigned marks a user that is not associated with any extender.
const Unassigned = -1

// Network is the static input of the association problem: the WiFi PHY
// rate matrix r_ij and the PLC isolation capacities c_j.
type Network struct {
	// WiFiRates[i][j] is the WiFi PHY rate (Mbps) of user i when
	// connected to extender j. A non-positive entry means user i cannot
	// reach extender j.
	WiFiRates [][]float64
	// PLCCaps[j] is the PLC isolation capacity c_j (Mbps) of extender j.
	PLCCaps []float64

	// gen counts in-place mutations of the rate/capacity data. Code that
	// rewrites WiFiRates or PLCCaps of a live network must call
	// Invalidate so attached DeltaEval instances detect the change and
	// refuse to keep probing stale state. Freshly built networks start at
	// generation 0, which is always consistent with a fresh Attach.
	gen uint64
}

// Invalidate records an in-place mutation of the network's rates or
// capacities. Every DeltaEval attached before the call will panic on its
// next probe instead of silently answering from stale accumulators; the
// owner must Attach again.
func (n *Network) Invalidate() { n.gen++ }

// Generation returns the network's mutation counter: the value recorded
// by stateful evaluators (DeltaEval) and derived caches (the local-search
// neighborhood cache) at build time, compared on every use so state built
// against an older network revision is rebuilt instead of trusted.
func (n *Network) Generation() uint64 { return n.gen }

// NumUsers returns |U|.
func (n *Network) NumUsers() int { return len(n.WiFiRates) }

// NumExtenders returns |A|.
func (n *Network) NumExtenders() int { return len(n.PLCCaps) }

// Validate checks structural consistency of the network.
func (n *Network) Validate() error {
	if n.NumExtenders() == 0 {
		return errors.New("model: network has no extenders")
	}
	for j, c := range n.PLCCaps {
		if c <= 0 {
			return fmt.Errorf("model: extender %d has non-positive PLC capacity %v", j, c)
		}
	}
	for i, row := range n.WiFiRates {
		if len(row) != n.NumExtenders() {
			return fmt.Errorf("model: user %d has %d rate entries, want %d",
				i, len(row), n.NumExtenders())
		}
	}
	return nil
}

// Assignment maps each user index to an extender index (or Unassigned).
type Assignment []int

// Clone returns a copy of the assignment.
func (a Assignment) Clone() Assignment {
	return append(Assignment(nil), a...)
}

// NumAssigned returns the number of users with an extender.
func (a Assignment) NumAssigned() int {
	n := 0
	for _, j := range a {
		if j != Unassigned {
			n++
		}
	}
	return n
}

// Groups partitions user indices by extender. The result has numExtenders
// slices; unassigned users are omitted.
func (a Assignment) Groups(numExtenders int) [][]int {
	groups := make([][]int, numExtenders)
	for i, j := range a {
		if j == Unassigned {
			continue
		}
		groups[j] = append(groups[j], i)
	}
	return groups
}

// Diff returns the number of users whose extender differs between a and b.
// Users appearing in only one assignment (longer slice) count as changed if
// assigned there.
func (a Assignment) Diff(b Assignment) int {
	changed := 0
	long, short := a, b
	if len(b) > len(a) {
		long, short = b, a
	}
	for i := range short {
		if short[i] != long[i] {
			changed++
		}
	}
	for _, j := range long[len(short):] {
		if j != Unassigned {
			changed++
		}
	}
	return changed
}

// WiFiAggregate returns the throughput-fair aggregate WiFi throughput of a
// cell whose users have the given PHY rates (eq. 1):
//
//	T_WiFi = n / Σ_i (1/r_i)
//
// The aggregate is the harmonic mean of the user rates times the user
// count divided by n — i.e. n times the per-user share 1/Σ(1/r_i). Zero
// users yield zero. Non-positive rates yield zero (unusable cell).
func WiFiAggregate(rates []float64) float64 {
	if len(rates) == 0 {
		return 0
	}
	var invSum float64
	for _, r := range rates {
		if r <= 0 {
			return 0
		}
		invSum += 1 / r
	}
	return float64(len(rates)) / invSum
}

// Options selects the PLC sharing behaviour during evaluation.
type Options struct {
	// Redistribute enables leftover-time water-filling: time unused by
	// extenders whose WiFi demand is below their fair share is handed to
	// extenders that can use it. This matches the measured behaviour of
	// commodity extenders (§III-B) and is on in all evaluation paths. With
	// it off, each active extender is capped at exactly c_j/A, matching
	// the conservative analytic model used inside the optimization
	// (constraint (4)).
	Redistribute bool
	// FixedShare makes every plugged-in extender count towards the PLC
	// time split (A = |all extenders|), whether or not it serves users —
	// the literal reading of Problem 1's constraint (4), where the single
	// PLC contention domain spans every extender. With Redistribute on
	// this is indistinguishable from active-only sharing (idle extenders
	// have zero demand and release their time); the combination
	// FixedShare=true, Redistribute=false is the paper's pure analytic
	// model.
	FixedShare bool
	// SkipValidate skips the per-call structural scan (Network.Validate
	// plus the per-user bounds/reachability loop). Invariant: the caller
	// must have validated this exact (network, assignment) pair once
	// already and mutated neither since — internal probe loops that
	// re-evaluate a validated pair many times set it to keep the hot
	// path pure arithmetic. With it set, behaviour on invalid input is
	// undefined.
	SkipValidate bool
	// Utility selects the objective family Result.Utility (and the
	// lexicographic Score used by probe-driven search) is computed
	// under. The zero value is sum-rate, where Utility is defined to be
	// bit-identical to Aggregate and no extra arithmetic runs. The
	// physical throughput model — PerUser, PerExtender, Aggregate — is
	// independent of the choice; only the scoring overlay changes.
	Utility Utility
}

// Result is the evaluated throughput of an assignment.
type Result struct {
	// PerUser[i] is user i's end-to-end throughput (0 if unassigned).
	PerUser []float64
	// PerExtender[j] is extender j's delivered end-to-end throughput.
	PerExtender []float64
	// WiFiDemand[j] is T_WiFi_j, the WiFi-side aggregate demand.
	WiFiDemand []float64
	// TimeShare[j] is the fraction of PLC medium time extender j uses.
	TimeShare []float64
	// Aggregate is the total end-to-end network throughput (objective 3).
	Aggregate float64
	// Utility is the assignment's value under Options.Utility: equal to
	// Aggregate (bit-identical) for the zero sum-rate utility,
	// Σ_cells n·u_α(perExt/n) for finite α, and the minimum
	// assigned-user throughput for max-min.
	Utility float64
	// ActiveExtenders is A, the number of extenders with at least one
	// associated user.
	ActiveExtenders int
}

// Score returns the result's lexicographic objective value
// (Utility primary, Aggregate tie-break).
func (r *Result) Score() Score {
	return Score{Primary: r.Utility, Tie: r.Aggregate}
}

// EvalScratch holds the reusable buffers of the evaluation inner loop:
// per-extender accumulators, the active-set index, the water-filling
// need/share/satisfied arrays, and the Result itself. The zero value is
// ready to use; buffers grow to the largest network seen and are
// retained. A scratch is not safe for concurrent use; give each worker
// goroutine its own.
type EvalScratch struct {
	// Evals counts the evaluations performed through this scratch since
	// the caller last reset it — the natural work metric of the
	// probe-heavy strategies (greedy, selfish, optimal, incremental).
	// The counter never influences results; it exists for per-solve
	// stats reporting.
	Evals int

	invSum    []float64 // Σ 1/r_ij per extender
	count     []int     // users per extender
	active    []int     // extenders with >= 1 user
	need      []float64 // water-filling demand fractions
	shares    []float64
	satisfied []bool
	res       Result
}

// Evaluate computes the end-to-end throughputs of an assignment under the
// PLC+WiFi sharing model. It allocates a fresh Result per call; hot loops
// that evaluate many assignments should hold an EvalScratch and call
// EvaluateWith.
func Evaluate(n *Network, a Assignment, opts Options) (*Result, error) {
	return EvaluateWith(nil, n, a, opts)
}

// EvaluateWith is Evaluate with caller-provided scratch buffers. When s is
// non-nil the returned Result and its slices are owned by the scratch and
// are overwritten by the next EvaluateWith call on the same scratch —
// copy anything that must outlive it. A nil scratch behaves exactly like
// Evaluate.
func EvaluateWith(s *EvalScratch, n *Network, a Assignment, opts Options) (*Result, error) {
	if !opts.SkipValidate {
		if err := validateAssignment(n, a); err != nil {
			return nil, err
		}
	}
	numExt := n.NumExtenders()

	var local EvalScratch
	if s == nil {
		s = &local
	}
	s.Evals++
	res := &s.res
	res.PerUser = growZeroFloats(res.PerUser, n.NumUsers())
	res.PerExtender = growZeroFloats(res.PerExtender, numExt)
	res.WiFiDemand = growZeroFloats(res.WiFiDemand, numExt)
	res.TimeShare = growZeroFloats(res.TimeShare, numExt)
	res.Aggregate = 0
	res.Utility = 0
	res.ActiveExtenders = 0

	// Per-cell harmonic sums: validation above guarantees every assigned
	// rate is positive, so each cell's WiFi aggregate is count/Σ(1/r)
	// (eq. 1). Users accumulate in index order, matching the group-wise
	// summation order exactly.
	invSum := growZeroFloats(s.invSum, numExt)
	s.invSum = invSum
	count := growZeroInts(s.count, numExt)
	s.count = count
	for i, j := range a {
		if j == Unassigned {
			continue
		}
		invSum[j] += 1 / n.WiFiRates[i][j]
		count[j]++
	}
	active := s.active[:0]
	for j := 0; j < numExt; j++ {
		if count[j] > 0 {
			res.WiFiDemand[j] = float64(count[j]) / invSum[j]
			active = append(active, j)
		}
	}
	s.active = active
	res.ActiveExtenders = len(active)
	if len(active) == 0 {
		return res, nil
	}

	contenders := len(active)
	if opts.FixedShare {
		contenders = numExt
	}
	if opts.Redistribute {
		// Required time fraction to carry the full WiFi demand. Under
		// FixedShare the idle extenders participate with zero demand,
		// which the water-filling immediately hands back, so only the
		// active set needs to be filled.
		need := growFloats(s.need, len(active))
		s.need = need
		for k, j := range active {
			need[k] = res.WiFiDemand[j] / n.PLCCaps[j]
		}
		shares := growFloats(s.shares, len(active))
		s.shares = shares
		satisfied := growBools(s.satisfied, len(active))
		s.satisfied = satisfied
		waterFillTimeInto(shares, satisfied, need)
		for k, j := range active {
			res.TimeShare[j] = shares[k]
			res.PerExtender[j] = minf(res.WiFiDemand[j], shares[k]*n.PLCCaps[j])
		}
	} else {
		fair := 1 / float64(contenders)
		for _, j := range active {
			res.TimeShare[j] = fair
			res.PerExtender[j] = minf(res.WiFiDemand[j], fair*n.PLCCaps[j])
		}
	}

	for i, j := range a {
		if j != Unassigned {
			res.PerUser[i] = res.PerExtender[j] / float64(count[j])
		}
	}
	for _, j := range active {
		res.Aggregate += res.PerExtender[j]
	}
	if opts.Utility.IsSumRate() {
		res.Utility = res.Aggregate
	} else {
		res.Utility = utilityOver(opts.Utility, active, res.PerExtender, count)
	}
	return res, nil
}

// validateAssignment is the structural scan EvaluateWith performs unless
// Options.SkipValidate is set: network consistency, assignment length,
// and per-user extender bounds and reachability.
func validateAssignment(n *Network, a Assignment) error {
	if err := n.Validate(); err != nil {
		return err
	}
	if len(a) != n.NumUsers() {
		return fmt.Errorf("model: assignment covers %d users, network has %d",
			len(a), n.NumUsers())
	}
	numExt := n.NumExtenders()
	for i, j := range a {
		if j == Unassigned {
			continue
		}
		if j < 0 || j >= numExt {
			return fmt.Errorf("model: user %d assigned to invalid extender %d", i, j)
		}
		if n.WiFiRates[i][j] <= 0 {
			return fmt.Errorf("model: user %d assigned to unreachable extender %d", i, j)
		}
	}
	return nil
}

// Aggregate is a convenience wrapper returning only the total throughput
// of an assignment; it returns 0 on evaluation errors.
func Aggregate(n *Network, a Assignment, opts Options) float64 {
	res, err := Evaluate(n, a, opts)
	if err != nil {
		return 0
	}
	return res.Aggregate
}

// ObjectiveBasic evaluates the analytic objective (3) with the constraint
// (4) PLC model (no redistribution): Σ_j min(T_WiFi_j, c_j/A). It is the
// quantity WOLT's Phase I utilities bound.
func ObjectiveBasic(n *Network, a Assignment) (float64, error) {
	res, err := Evaluate(n, a, Options{Redistribute: false})
	if err != nil {
		return 0, err
	}
	return res.Aggregate, nil
}

// waterFillTime allocates one unit of medium time max-min fairly across
// demands: each entry of need is the time fraction that flow wants; flows
// wanting less than the progressive fair share are satisfied exactly and
// their leftover is re-divided among the rest.
func waterFillTime(need []float64) []float64 {
	shares := make([]float64, len(need))
	satisfied := make([]bool, len(need))
	waterFillTimeInto(shares, satisfied, need)
	return shares
}

// waterFillTimeInto is waterFillTime writing into caller-provided shares
// and satisfied buffers (both len(need)); the evaluation hot path feeds it
// scratch buffers so the water-filling allocates nothing.
func waterFillTimeInto(shares []float64, satisfied []bool, need []float64) {
	for k := range satisfied {
		satisfied[k] = false
	}
	remainingTime := 1.0
	remainingFlows := len(need)
	for remainingFlows > 0 {
		fair := remainingTime / float64(remainingFlows)
		progressed := false
		for k := range need {
			if satisfied[k] {
				continue
			}
			if need[k] <= fair {
				shares[k] = need[k]
				satisfied[k] = true
				remainingTime -= need[k]
				remainingFlows--
				progressed = true
			}
		}
		if !progressed {
			// All remaining flows want more than the fair share:
			// split the rest equally.
			for k := range need {
				if !satisfied[k] {
					shares[k] = fair
				}
			}
			return
		}
	}
}

func minf(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}

// growFloats returns s resized to n, reallocating only when capacity is
// short; contents are unspecified.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		return make([]float64, n)
	}
	return s[:n]
}

// growZeroFloats returns s resized to n with every element zeroed.
func growZeroFloats(s []float64, n int) []float64 {
	s = growFloats(s, n)
	for i := range s {
		s[i] = 0
	}
	return s
}

func growBools(s []bool, n int) []bool {
	if cap(s) < n {
		return make([]bool, n)
	}
	return s[:n]
}

func growZeroInts(s []int, n int) []int {
	if cap(s) < n {
		s = make([]int, n)
		return s
	}
	s = s[:n]
	for i := range s {
		s[i] = 0
	}
	return s
}
